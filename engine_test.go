package ros

// Lifecycle tests for the Engine resource handle: explicit cache ownership
// must change where memoized state lives and when it dies — never what a
// read returns.

import (
	"fmt"
	"sync"
	"testing"

	"ros/internal/obs"
)

// engineGaugeEntries counts the resident ros_engine_cache_entries labelsets
// in the default registry, optionally restricted to one engine id.
func engineGaugeEntries(engineID string) int {
	snap := obs.Default.Snapshot()
	n := 0
	for _, g := range snap.Gauges {
		if g.Name != "ros_engine_cache_entries" {
			continue
		}
		if engineID != "" && g.Labels["engine"] != engineID {
			continue
		}
		n++
	}
	return n
}

// TestEngineReadByteIdentical: a read through an explicit Engine is
// byte-identical to the default-cache read at every worker count — same
// decoded bits, same SNR, same raw capture bytes.
func TestEngineReadByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			opts := ReadOptions{Seed: 42, Workers: workers}
			base, baseCapture := readCaptureOpts(t, NewReader(), opts)

			e := NewEngine()
			defer e.Close()
			withEngine, engineCapture := readCaptureOpts(t, NewReader(WithEngine(e)), opts)

			if string(engineCapture) != string(baseCapture) {
				t.Error("engine-backed capture differs from default-cache capture")
			}
			if withEngine.Bits != base.Bits || withEngine.SNRdB != base.SNRdB ||
				withEngine.MedianRSSdBm != base.MedianRSSdBm {
				t.Errorf("engine outcome diverged: %q/%v/%v vs %q/%v/%v",
					withEngine.Bits, withEngine.SNRdB, withEngine.MedianRSSdBm,
					base.Bits, base.SNRdB, base.MedianRSSdBm)
			}
		})
	}
}

// TestEngineCloseDropsGauges: an engine's caches report per-engine metric
// entries while it lives, and Close retires every one of them.
func TestEngineCloseDropsGauges(t *testing.T) {
	before := engineGaugeEntries("")
	e := NewEngine()
	r := NewReader(WithEngine(e))
	tag, err := NewTag("1011")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(tag, ReadOptions{Seed: 7, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	during := engineGaugeEntries("")
	if during <= before {
		t.Fatalf("engine read registered no per-engine gauge entries (%d before, %d during)",
			before, during)
	}
	e.Close()
	if !e.Closed() {
		t.Fatal("Closed() false after Close")
	}
	after := engineGaugeEntries("")
	if after != before {
		t.Fatalf("engine gauge entries not retired by Close: %d before, %d after",
			before, after)
	}
	e.Close() // idempotent
}

// TestEngineCloseDuringReads: Close while reads against the engine are in
// flight must not corrupt them — in-flight reads complete with the right
// bits, and reads started after Close still work (cold caches).
func TestEngineCloseDuringReads(t *testing.T) {
	tag, err := NewTag("1011")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	r := NewReader(WithEngine(e))

	const readers = 4
	var wg sync.WaitGroup
	errs := make([]error, readers)
	bits := make([]string, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reading, err := r.Read(tag, ReadOptions{Seed: int64(40 + i), Workers: 2})
			if err != nil {
				errs[i] = err
				return
			}
			bits[i] = reading.Bits
		}(i)
	}
	// Close concurrently with the in-flight reads.
	e.Close()
	wg.Wait()
	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("read %d failed across Close: %v", i, errs[i])
		}
		if bits[i] != "1011" {
			t.Fatalf("read %d decoded %q across Close, want 1011", i, bits[i])
		}
	}

	// A read after Close repopulates cold caches and still decodes.
	reading, err := r.Read(tag, ReadOptions{Seed: 42, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reading.Bits != "1011" {
		t.Fatalf("post-Close read decoded %q, want 1011", reading.Bits)
	}
}

// TestEngineSharedAcrossReaders: two readers on one engine share its caches
// and still read byte-identically to independent readers.
func TestEngineSharedAcrossReaders(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	opts := ReadOptions{Seed: 42, Workers: 2}
	_, first := readCaptureOpts(t, NewReader(WithEngine(e)), opts)
	_, second := readCaptureOpts(t, NewReader(WithEngine(e)), opts)
	if string(first) != string(second) {
		t.Error("two readers sharing an engine produced different captures")
	}
}
