package ros

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"ros/internal/trace"
)

func TestNewTagDefaults(t *testing.T) {
	tag, err := NewTag("1111")
	if err != nil {
		t.Fatal(err)
	}
	if tag.Bits() != "1111" || tag.Modules() != 32 || !tag.BeamShaped() {
		t.Errorf("defaults: bits=%q modules=%d shaped=%v", tag.Bits(), tag.Modules(), tag.BeamShaped())
	}
	// Paper Sec 5.3: the 4-bit tag is 22.5 lambda (~8.5 cm) wide with a
	// ~2.9 m far field.
	if w := tag.Width(); w < 0.08 || w > 0.09 {
		t.Errorf("width = %g m, want ~0.085", w)
	}
	if ff := tag.FarFieldDistance(); ff < 2.7 || ff > 3.1 {
		t.Errorf("far field = %g m, want ~2.9", ff)
	}
	if v := tag.MaxVehicleSpeed(1000, 1.62); math.Abs(v-38.6) > 2 {
		t.Errorf("max speed = %g m/s, want ~38.5", v)
	}
}

func TestNewTagOptions(t *testing.T) {
	tag, err := NewTag("101", WithStackModules(16), WithoutBeamShaping(), WithUnitSpacing(2))
	if err != nil {
		t.Fatal(err)
	}
	if tag.Modules() != 16 || tag.BeamShaped() {
		t.Errorf("options not applied: %d modules, shaped=%v", tag.Modules(), tag.BeamShaped())
	}
}

func TestNewTagErrors(t *testing.T) {
	if _, err := NewTag(""); err == nil {
		t.Error("empty bits accepted")
	}
	if _, err := NewTag("10x"); err == nil {
		t.Error("invalid bits accepted")
	}
	if _, err := NewTag("11", WithStackModules(0)); err == nil {
		t.Error("zero modules accepted")
	}
	if _, err := NewTag("11", WithUnitSpacing(-1)); err == nil {
		t.Error("negative spacing accepted")
	}
}

func TestTagLayoutMatchesPaper(t *testing.T) {
	tag, err := NewTag("1010")
	if err != nil {
		t.Fatal(err)
	}
	layout := tag.Layout()
	if len(layout) != 5 {
		t.Fatalf("layout has %d slots, want 5", len(layout))
	}
	if !layout[0].Present || layout[0].Position != 0 {
		t.Errorf("reference slot = %+v", layout[0])
	}
	// "1010": slots 1 and 3 present, 2 and 4 absent.
	wantPresent := []bool{true, false, true, false}
	for k := 1; k <= 4; k++ {
		if layout[k].Present != wantPresent[k-1] {
			t.Errorf("slot %d present = %v, want %v", k, layout[k].Present, wantPresent[k-1])
		}
	}
	// Signs alternate (+, -, +, -).
	if layout[1].Position <= 0 || layout[2].Position >= 0 || layout[3].Position <= 0 || layout[4].Position >= 0 {
		t.Errorf("slot signs wrong: %+v", layout[1:])
	}
}

func TestPredictedSpectrumHasCodingPeaks(t *testing.T) {
	tag, err := NewTag("1111")
	if err != nil {
		t.Fatal(err)
	}
	spacing, mag, err := tag.PredictedSpectrum(0.6, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(spacing) != len(mag) || len(spacing) == 0 {
		t.Fatal("degenerate spectrum")
	}
	// The strongest coding-band bin sits near one of the designed
	// positions (6..10.5 lambda ~ 22.8-39.9 mm).
	best, bestS := 0.0, 0.0
	for i, s := range spacing {
		if s > 0.02 && s < 0.042 && mag[i] > best {
			best, bestS = mag[i], s
		}
	}
	if best == 0 {
		t.Fatal("no energy in the coding band")
	}
	lambda := 0.0037948
	positions := []float64{6, 7.5, 9, 10.5}
	ok := false
	for _, p := range positions {
		if math.Abs(bestS-p*lambda) < 0.5*lambda {
			ok = true
		}
	}
	if !ok {
		t.Errorf("strongest coding-band bin at %g m, not near any coding position", bestS)
	}
}

func TestPredictedSpectrumErrors(t *testing.T) {
	tag, _ := NewTag("11")
	if _, _, err := tag.PredictedSpectrum(0, 256); err == nil {
		t.Error("zero span accepted")
	}
	if _, _, err := tag.PredictedSpectrum(2, 256); err == nil {
		t.Error("span > 1 accepted")
	}
	if _, _, err := tag.PredictedSpectrum(0.5, 8); err == nil {
		t.Error("too few points accepted")
	}
}

func TestReaderMaxRangeMatchesPaper(t *testing.T) {
	if d := NewReader().MaxRange(); math.Abs(d-6.9) > 0.3 {
		t.Errorf("TI reader range = %g m, want ~6.9", d)
	}
	if d := NewReader(WithCommercialFrontEnd()).MaxRange(); math.Abs(d-52) > 3 {
		t.Errorf("commercial reader range = %g m, want ~52", d)
	}
}

func TestEndToEndRead(t *testing.T) {
	tag, err := NewTag("1011")
	if err != nil {
		t.Fatal(err)
	}
	reading, err := NewReader().Read(tag, ReadOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !reading.Detected {
		t.Fatal("tag not detected")
	}
	if reading.Bits != "1011" {
		t.Errorf("decoded %q, want 1011 (SNR %g dB)", reading.Bits, reading.SNRdB)
	}
	if reading.SNRdB < 14 {
		t.Errorf("SNR = %g dB, want > 14 (paper Sec 7.2)", reading.SNRdB)
	}
}

func TestReadNilTag(t *testing.T) {
	if _, err := NewReader().Read(nil, ReadOptions{}); err == nil {
		t.Error("nil tag accepted")
	}
}

func TestDecodePublicAPI(t *testing.T) {
	tag, err := NewTag("1101")
	if err != nil {
		t.Fatal(err)
	}
	// Build ideal samples from the tag's own model via PredictedSpectrum's
	// underlying gain: emulate an external capture.
	lambda := 0.0037948
	var positions []float64
	for _, p := range tag.Layout() {
		if p.Present {
			positions = append(positions, p.Position)
		}
	}
	n := 900
	us := make([]float64, n)
	rss := make([]float64, n)
	for i := range us {
		u := -0.55 + 1.1*float64(i)/float64(n-1)
		us[i] = u
		var re, im float64
		k := 4 * math.Pi * u / lambda
		for _, d := range positions {
			re += math.Cos(k * d)
			im += math.Sin(k * d)
		}
		rss[i] = re*re + im*im
	}
	out, err := Decode(us, rss, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Bits != "1101" {
		t.Errorf("Decode = %q, want 1101", out.Bits)
	}
	if len(out.PeakAmps) != 4 {
		t.Errorf("PeakAmps = %v", out.PeakAmps)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil, nil, 4); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := Decode([]float64{1}, []float64{1}, 0); err == nil {
		t.Error("zero bits accepted")
	}
}

func TestSNRToBERAnchors(t *testing.T) {
	if b := SNRToBER(15.8); math.Abs(b-0.001) > 0.0005 {
		t.Errorf("BER(15.8 dB) = %g, want ~0.1%%", b)
	}
	if b := SNRToBER(14); math.Abs(b-0.006) > 0.002 {
		t.Errorf("BER(14 dB) = %g, want ~0.6%%", b)
	}
}

func TestTagReview(t *testing.T) {
	tag, err := NewTag("1111")
	if err != nil {
		t.Fatal(err)
	}
	// A one-lane pass at city speed on the TI radar: everything passes.
	checks, err := tag.Review(Deployment{Standoff: 3, MaxSpeedMPS: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 3 {
		t.Fatalf("got %d checks, want 3", len(checks))
	}
	for _, c := range checks {
		if !c.OK {
			t.Errorf("check %q failed: %s", c.Name, c.Detail)
		}
	}
	// Too close: the far-field check trips.
	checks, err = tag.Review(Deployment{Standoff: 1, MaxSpeedMPS: 13})
	if err != nil {
		t.Fatal(err)
	}
	if checks[0].OK {
		t.Error("far-field check passed at 1 m for a 2.9 m bound")
	}
	// Too far for the TI radar; fine for the commercial one.
	checks, _ = tag.Review(Deployment{Standoff: 10, MaxSpeedMPS: 13})
	if checks[2].OK {
		t.Error("link budget passed at 10 m on the TI radar")
	}
	checks, _ = tag.Review(Deployment{Standoff: 10, MaxSpeedMPS: 13, Commercial: true})
	if !checks[2].OK {
		t.Error("link budget failed at 10 m on the commercial radar")
	}
	// Render.
	out := ReviewString(checks)
	if !strings.Contains(out, "link budget") {
		t.Errorf("report missing check names:\n%s", out)
	}
}

func TestTagReviewErrors(t *testing.T) {
	tag, _ := NewTag("11")
	if _, err := tag.Review(Deployment{Standoff: 0, MaxSpeedMPS: 1}); err == nil {
		t.Error("zero standoff accepted")
	}
	if _, err := tag.Review(Deployment{Standoff: 3, MaxSpeedMPS: 0}); err == nil {
		t.Error("zero speed accepted")
	}
}

func TestSaveCaptureRoundTrip(t *testing.T) {
	tag, err := NewTag("1010")
	if err != nil {
		t.Fatal(err)
	}
	reading, err := NewReader().Read(tag, ReadOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reading.Detected {
		t.Fatal("tag not detected")
	}
	path := filepath.Join(t.TempDir(), "read.json")
	if err := reading.SaveCapture(path, "test read"); err != nil {
		t.Fatal(err)
	}
	cap, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(cap.U, cap.RSS, cap.Bits)
	if err != nil {
		t.Fatal(err)
	}
	if out.Bits != "1010" {
		t.Errorf("capture decoded %q, want 1010", out.Bits)
	}
	// An undetected reading carries no capture.
	empty := &Reading{}
	if err := empty.SaveCapture(path, ""); err == nil {
		t.Error("empty reading saved a capture")
	}
}

func TestDecodeCaptureFile(t *testing.T) {
	tag, err := NewTag("1101")
	if err != nil {
		t.Fatal(err)
	}
	reading, err := NewReader().Read(tag, ReadOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !reading.Detected {
		t.Fatal("tag not detected")
	}
	path := filepath.Join(t.TempDir(), "cap.json")
	if err := reading.SaveCapture(path, "x"); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeCaptureFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Bits != "1101" {
		t.Errorf("capture decode = %q, want 1101", out.Bits)
	}
	if _, err := DecodeCaptureFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing capture accepted")
	}
}
