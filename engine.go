package ros

import "ros/internal/engine"

// Engine is an explicit resource handle for readers: it owns every piece of
// memoized state reads accumulate — transform plans, steering tables,
// scene-response memos, pooled frame buffers, scan states — instead of
// leaving them in process-global caches. Readers without an Engine keep the
// global-cache behavior (process-lifetime retention, shared across all
// readers); readers sharing an Engine share its caches; Close releases
// everything the Engine owns deterministically, dropping its metric entries
// with it.
//
// Use one Engine per long-lived radar+scene configuration when serving many
// configurations from one process (the rosd daemon keys an Engine LRU by
// configuration fingerprint); skip it entirely for one-shot tools.
type Engine struct {
	h *engine.Engine
}

// NewEngine returns a fresh Engine whose caches report under
// ros_engine_cache_entries{cache,engine}.
func NewEngine() *Engine {
	return &Engine{h: engine.New("")}
}

// Close drops every cache the engine owns and unregisters its metrics.
// Idempotent, and safe while reads against the engine are still in flight:
// they keep the plans and memo entries they already hold and complete
// normally. Reads started after Close simply repopulate cold caches (memory
// the closed engine retains until the last reference drops).
func (e *Engine) Close() {
	e.h.Close()
}

// Closed reports whether Close has run.
func (e *Engine) Closed() bool { return e.h.Closed() }

// WithEngine binds the reader's reads to the engine's caches instead of the
// process-global ones. Results are byte-identical either way.
func WithEngine(e *Engine) ReaderOption {
	return func(r *Reader) {
		r.engine = e.h
	}
}
