//go:build race

package ros

// raceEnabled relaxes wall-clock assertions when the race detector's 5-20x
// slowdown is in effect.
const raceEnabled = true
