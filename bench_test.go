package ros

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run `go test -bench=. -benchmem`); one benchmark per paper
// artifact, named after the experiment index in DESIGN.md, plus
// micro-benchmarks for the hot paths of the substrate.

import (
	"context"
	"math/rand"
	"testing"

	"ros/internal/cluster"
	"ros/internal/coding"
	"ros/internal/dsp"
	"ros/internal/em"
	"ros/internal/experiments"
	"ros/internal/geom"
	"ros/internal/obs"
	"ros/internal/radar"
	"ros/internal/vaa"
)

// benchTable runs one experiment generator per iteration.
func benchTable(b *testing.B, run func(context.Context) *experiments.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := run(context.Background())
		if len(t.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkFig03AntennaPairs(b *testing.B)   { benchTable(b, experiments.Fig03) }
func BenchmarkFig04aMonostatic(b *testing.B)    { benchTable(b, experiments.Fig04a) }
func BenchmarkFig04bBistatic(b *testing.B)      { benchTable(b, experiments.Fig04b) }
func BenchmarkFig05Psvaa(b *testing.B)          { benchTable(b, experiments.Fig05) }
func BenchmarkFig06PsvaaBand(b *testing.B)      { benchTable(b, experiments.Fig06) }
func BenchmarkFig08BeamShaping(b *testing.B)    { benchTable(b, experiments.Fig08) }
func BenchmarkFig10SpatialCode(b *testing.B)    { benchTable(b, experiments.Fig10) }
func BenchmarkFig11Detection(b *testing.B)      { benchTable(b, experiments.Fig11) }
func BenchmarkFig13TagFeatures(b *testing.B)    { benchTable(b, experiments.Fig13) }
func BenchmarkFig14Elevation(b *testing.B)      { benchTable(b, experiments.Fig14) }
func BenchmarkFig15Distance(b *testing.B)       { benchTable(b, experiments.Fig15) }
func BenchmarkFig16aAdjacentTag(b *testing.B)   { benchTable(b, experiments.Fig16a) }
func BenchmarkFig16bAdjacentRadar(b *testing.B) { benchTable(b, experiments.Fig16b) }
func BenchmarkFig16cFog(b *testing.B)           { benchTable(b, experiments.Fig16c) }
func BenchmarkFig16dTrackingError(b *testing.B) { benchTable(b, experiments.Fig16d) }
func BenchmarkFig17FieldOfView(b *testing.B)    { benchTable(b, experiments.Fig17) }
func BenchmarkFig18Speed(b *testing.B)          { benchTable(b, experiments.Fig18) }
func BenchmarkTableLinkBudget(b *testing.B)     { benchTable(b, experiments.LinkBudget) }
func BenchmarkTableCapacity(b *testing.B)       { benchTable(b, experiments.Capacity) }
func BenchmarkTablePairBound(b *testing.B)      { benchTable(b, experiments.PairBound) }

// Ablations and Sec 8 extensions.

func BenchmarkAblationPolSwitch(b *testing.B)  { benchTable(b, experiments.AblationPolSwitch) }
func BenchmarkAblationWindow(b *testing.B)     { benchTable(b, experiments.AblationWindow) }
func BenchmarkAblationDetrend(b *testing.B)    { benchTable(b, experiments.AblationDetrend) }
func BenchmarkAblationSampling(b *testing.B)   { benchTable(b, experiments.AblationSampling) }
func BenchmarkExtensionCP(b *testing.B)        { benchTable(b, experiments.ExtensionCP) }
func BenchmarkExtensionASK(b *testing.B)       { benchTable(b, experiments.ExtensionASK) }
func BenchmarkExtensionNFFA(b *testing.B)      { benchTable(b, experiments.ExtensionNFFA) }
func BenchmarkAblationGround(b *testing.B)     { benchTable(b, experiments.AblationGroundMultipath) }
func BenchmarkAblationWavelength(b *testing.B) { benchTable(b, experiments.AblationWavelength) }
func BenchmarkAblationADC(b *testing.B)        { benchTable(b, experiments.AblationADC) }
func BenchmarkExtensionOcclusion(b *testing.B) { benchTable(b, experiments.ExtensionOcclusion) }
func BenchmarkExtensionElevation(b *testing.B) { benchTable(b, experiments.ExtensionElevation) }
func BenchmarkExtensionLocalization(b *testing.B) {
	benchTable(b, experiments.ExtensionLocalization)
}
func BenchmarkExtensionRain(b *testing.B) { benchTable(b, experiments.ExtensionRain) }
func BenchmarkExtensionCommercial(b *testing.B) {
	benchTable(b, experiments.ExtensionCommercialRange)
}
func BenchmarkMonteCarloBER(b *testing.B) { benchTable(b, experiments.MonteCarloBER) }

// --- substrate micro-benchmarks ---

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.FFT(x)
	}
}

func BenchmarkPSVAAScatter(b *testing.B) {
	a := vaa.NewPSVAA(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MonostaticRCS(0.3, em.CenterFrequency, em.PolV, em.PolH)
	}
}

func BenchmarkFrameSynthesis(b *testing.B) {
	cfg := radar.TI1443()
	rng := rand.New(rand.NewSource(2))
	scatterers := make([]radar.Scatterer, 20)
	for i := range scatterers {
		scatterers[i] = radar.Scatterer{
			Range:     2 + rng.Float64()*5,
			Azimuth:   rng.Float64() - 0.5,
			Amplitude: 1e-5,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Synthesize(scatterers, rng)
	}
}

func BenchmarkRangeProfile(b *testing.B) {
	cfg := radar.TI1443()
	rng := rand.New(rand.NewSource(3))
	frame := cfg.Synthesize([]radar.Scatterer{{Range: 3, Amplitude: 1e-5}}, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.RangeProfile(frame)
	}
}

// BenchmarkSynthesize measures the plan executor alone: scene-static terms
// precomputed once, noiseless so only the tone kernels run.
func BenchmarkSynthesize(b *testing.B) {
	cfg := radar.TI1443()
	rng := rand.New(rand.NewSource(2))
	scatterers := make([]radar.Scatterer, 20)
	for i := range scatterers {
		scatterers[i] = radar.Scatterer{
			Range:     2 + rng.Float64()*5,
			Azimuth:   rng.Float64() - 0.5,
			Amplitude: 1e-5,
		}
	}
	plan := cfg.NewSynthPlan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		radar.ReleaseFrame(plan.Synthesize(scatterers, nil))
	}
}

// BenchmarkRangeFFTBatched measures the fused window+IFFT over all channels
// of one frame through the batched plan path.
func BenchmarkRangeFFTBatched(b *testing.B) {
	cfg := radar.TI1443()
	plan := cfg.NewSynthPlan()
	frame := plan.Synthesize([]radar.Scatterer{{Range: 3, Amplitude: 1e-5}}, dsp.NewGauss(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		radar.ReleaseProfile(plan.RangeProfile(frame))
	}
}

func BenchmarkAoASpectrum(b *testing.B) {
	cfg := radar.TI1443()
	rng := rand.New(rand.NewSource(5))
	frame := cfg.Synthesize([]radar.Scatterer{{Range: 4, Azimuth: 0.2, Amplitude: 1e-4}}, rng)
	rp := cfg.RangeProfile(frame)
	bin := cfg.BinForRange(4)
	angles := cfg.ScanAngles()
	spec := make([]float64, len(angles))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.AoASpectrumInto(spec, rp, bin, angles)
	}
}

func BenchmarkBeamPower(b *testing.B) {
	cfg := radar.TI1443()
	rng := rand.New(rand.NewSource(6))
	frame := cfg.Synthesize([]radar.Scatterer{{Range: 4, Azimuth: 0.2, Amplitude: 1e-4}}, rng)
	rp := cfg.RangeProfile(frame)
	bin := cfg.BinForRange(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.BeamPower(rp, bin, 0.2)
	}
}

func BenchmarkDBSCAN(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := make([]cluster.Point, 800)
	for i := range pts {
		pts[i] = cluster.Point{
			Pos:    geom.Vec2{X: rng.Float64() * 10, Y: rng.Float64() * 2},
			Weight: 1,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.DBSCAN(pts, 0.25, 10)
	}
}

func BenchmarkSpectrumDecode(b *testing.B) {
	bits, _ := coding.ParseBits("1111")
	layout, _ := coding.NewLayout(bits, coding.DefaultDelta())
	lambda := em.Lambda79()
	pos := layout.Positions()
	n := 600
	us := make([]float64, n)
	rss := make([]float64, n)
	for i := range us {
		u := -0.55 + 1.1*float64(i)/float64(n-1)
		us[i] = u
		rss[i] = coding.MultiStackGain(pos, u, lambda)
	}
	dec, _ := coding.NewDecoder(4, coding.DefaultDelta(), lambda)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(us, rss); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndRead(b *testing.B) {
	tag, err := NewTag("1111")
	if err != nil {
		b.Fatal(err)
	}
	r := NewReader()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Read(tag, ReadOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndReadF64 is the numerical A/B baseline: the same read
// with the float32 synthesis lane forced off. The gap against
// BenchmarkEndToEndRead is the f32 lane's end-to-end saving.
func BenchmarkEndToEndReadF64(b *testing.B) {
	tag, err := NewTag("1111")
	if err != nil {
		b.Fatal(err)
	}
	r := NewReader(WithFloat64Reference())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Read(tag, ReadOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndReadFullScan forces every per-frame point-cloud scan to
// walk all range bins — the incremental-scan A/B baseline.
func BenchmarkEndToEndReadFullScan(b *testing.B) {
	tag, err := NewTag("1111")
	if err != nil {
		b.Fatal(err)
	}
	r := NewReader()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Read(tag, ReadOptions{Seed: int64(i), DisableIncrementalScan: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndReadObsOff is the observability-overhead baseline: the
// same read with the flight recorder disabled. `make obs-overhead` compares
// it against BenchmarkEndToEndRead and fails past the 2% budget.
func BenchmarkEndToEndReadObsOff(b *testing.B) {
	tag, err := NewTag("1111")
	if err != nil {
		b.Fatal(err)
	}
	r := NewReader()
	prev := obs.DefaultFlight.SetEnabled(false)
	defer obs.DefaultFlight.SetEnabled(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Read(tag, ReadOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
