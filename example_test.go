package ros_test

import (
	"fmt"
	"log"

	"ros"
)

// ExampleNewTag designs a tag and prints its physical envelope.
func ExampleNewTag() {
	tag, err := ros.NewTag("1111")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("width %.1f cm, far field %.1f m\n", tag.Width()*100, tag.FarFieldDistance())
	// Output:
	// width 8.5 cm, far field 2.9 m
}

// ExampleReader_Read runs a full simulated drive-by.
func ExampleReader_Read() {
	tag, err := ros.NewTag("1011")
	if err != nil {
		log.Fatal(err)
	}
	reading, err := ros.NewReader().Read(tag, ros.ReadOptions{Standoff: 3, SpeedMPS: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected=%v bits=%s\n", reading.Detected, reading.Bits)
	// Output:
	// detected=true bits=1011
}

// ExampleParseSign maps decoded bits to the road-sign catalog.
func ExampleParseSign() {
	s, err := ros.ParseSign("1111")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s)
	// Output:
	// traffic light ahead
}

// ExampleTag_Review checks a design against a deployment.
func ExampleTag_Review() {
	tag, err := ros.NewTag("1111")
	if err != nil {
		log.Fatal(err)
	}
	checks, err := tag.Review(ros.Deployment{Standoff: 3, MaxSpeedMPS: 13.4})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range checks {
		fmt.Printf("%s ok=%v\n", c.Name, c.OK)
	}
	// Output:
	// far field (Eq 8) ok=true
	// Nyquist speed (Eq 9) ok=true
	// link budget (Sec 5.3) ok=true
}
