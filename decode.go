package ros

import (
	"ros/internal/coding"
	"ros/internal/dsp"
	"ros/internal/em"
	"ros/internal/trace"
)

// Decoded is the result of decoding externally supplied RCS samples.
type Decoded struct {
	// Bits is the recovered bit string.
	Bits string
	// SNRdB is the decoding SNR of Sec 7.1.
	SNRdB float64
	// BER is the implied OOK bit error rate.
	BER float64
	// PeakAmps are the normalized spectrum amplitudes at each coding slot.
	PeakAmps []float64
}

// Decode recovers bits from RCS samples measured while passing a tag:
// u[i] = cos(theta_i) is the observation coordinate (theta measured from the
// tag's axis) and rss[i] the path-loss-compensated reflected signal strength
// (any consistent linear unit). bits is the tag's coding slot count; the
// unit spacing defaults to the paper's 1.5 lambda at 79 GHz.
func Decode(u, rss []float64, bits int) (*Decoded, error) {
	dec, err := coding.NewDecoder(bits, coding.DefaultDelta(), em.Lambda79())
	if err != nil {
		return nil, err
	}
	res, err := dec.Decode(u, rss)
	if err != nil {
		return nil, err
	}
	return &Decoded{
		Bits:     coding.BitsString(res.Bits),
		SNRdB:    res.SNRdB,
		BER:      res.BER,
		PeakAmps: res.PeakAmps,
	}, nil
}

// SNRToBER converts a decoding SNR in dB to the paper's OOK bit error rate
// (Sec 7.1: 15.8 dB -> 0.1%, 14 dB -> 0.6%).
func SNRToBER(snrDB float64) float64 {
	return dsp.OOKBerFromDB(snrDB)
}

// DecodeCaptureFile loads a recorded RCS capture (see Reading.SaveCapture
// and cmd/rossim -dump) and decodes it.
func DecodeCaptureFile(path string) (*Decoded, error) {
	c, err := trace.Load(path)
	if err != nil {
		return nil, err
	}
	dec, err := coding.NewDecoder(c.Bits, c.DeltaMeters, c.LambdaMeters)
	if err != nil {
		return nil, err
	}
	res, err := dec.Decode(c.U, c.RSS)
	if err != nil {
		return nil, err
	}
	return &Decoded{
		Bits:     coding.BitsString(res.Bits),
		SNRdB:    res.SNRdB,
		BER:      res.BER,
		PeakAmps: res.PeakAmps,
	}, nil
}
