package ros

import (
	"bytes"
	"testing"
)

func TestNewSignTag(t *testing.T) {
	tag, err := NewSignTag(SignTrafficLightAhead)
	if err != nil {
		t.Fatal(err)
	}
	if tag.Bits() != "1111" {
		t.Errorf("traffic-light tag bits = %q, want 1111 (Fig 1)", tag.Bits())
	}
	s, err := ParseSign(tag.Bits())
	if err != nil {
		t.Fatal(err)
	}
	if s != SignTrafficLightAhead {
		t.Errorf("parsed %v", s)
	}
	if _, err := NewSignTag(Sign(0)); err == nil {
		t.Error("reserved sign accepted")
	}
}

func TestSignCatalogDistinct(t *testing.T) {
	seen := map[string]Sign{}
	for s := SignSpeedLimit25; s <= SignTrafficLightAhead; s++ {
		bits, err := s.Bits()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[bits]; dup {
			t.Errorf("%v and %v share bits %q", prev, s, bits)
		}
		seen[bits] = s
	}
	if len(seen) != 15 {
		t.Errorf("catalog has %d distinct codes, want 15", len(seen))
	}
}

func TestMessageRoundTripPublicAPI(t *testing.T) {
	msg := []byte("school zone")
	tags, err := EncodeMessage(msg)
	if err != nil {
		t.Fatal(err)
	}
	back, corrected, err := DecodeMessage(tags)
	if err != nil {
		t.Fatal(err)
	}
	if corrected != 0 || !bytes.Equal(back, msg) {
		t.Errorf("round trip: %q, %d corrections", back, corrected)
	}
	// Every message tag is a valid NewTag input and is never all-absent.
	for _, bits := range tags {
		tag, err := NewTag(bits)
		if err != nil {
			t.Fatalf("tag %q rejected: %v", bits, err)
		}
		any := false
		for _, p := range tag.Layout()[1:] {
			any = any || p.Present
		}
		if !any {
			t.Errorf("tag %q mounts no coding stacks", bits)
		}
	}
}

func TestEndToEndSignRead(t *testing.T) {
	tag, err := NewSignTag(SignCrosswalkAhead)
	if err != nil {
		t.Fatal(err)
	}
	reading, err := NewReader().Read(tag, ReadOptions{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if !reading.Detected {
		t.Fatal("sign tag not detected")
	}
	s, err := ParseSign(reading.Bits)
	if err != nil {
		t.Fatal(err)
	}
	if s != SignCrosswalkAhead {
		t.Errorf("read sign %v, want crosswalk ahead", s)
	}
}
