// Command rosd serves drive-by reads over HTTP: POST /v1/read takes a batch
// of read requests and answers each one independently, while the standard
// observability endpoints (/metrics, /metrics.json, /debug/flight,
// /debug/vars, /debug/pprof/) expose the process's state and /healthz and
// /readyz answer the orchestrator. Engines — the per-configuration resource
// handles holding transform plans, steering tables, scene memos and pooled
// buffers — live in a capacity-bounded LRU, so resident memory tracks the
// working set of configurations.
//
// SIGTERM or SIGINT starts a graceful drain: readiness flips to 503, new
// batches are refused, in-flight reads finish within the -drain budget, and
// the flight recorder plus a final metrics snapshot are flushed (to
// -drain-dump when set) before the process exits.
//
// Usage:
//
//	rosd [-addr localhost:8080] [-engines 64] [-queue 256] [-batch 64]
//	     [-workers 0] [-read-timeout 0] [-tenant-rate 0] [-tenant-burst 0]
//	     [-drain 10s] [-drain-dump DIR]
//
// See docs/ROSD.md for the API and tuning guidance.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ros/internal/rosd"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	engines := flag.Int("engines", 64, "engine LRU capacity (distinct resident configurations)")
	queue := flag.Int("queue", 256, "admission limit: max in-flight reads before batches get 429")
	batch := flag.Int("batch", 64, "max reads per batch")
	workers := flag.Int("workers", 0, "executor pool size (0 = GOMAXPROCS)")
	readTimeout := flag.Duration("read-timeout", 0, "per-read deadline from admission (0 disables)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant quota in reads/s (0 disables quotas)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant burst above the steady rate")
	drain := flag.Duration("drain", 10*time.Second, "graceful-drain budget on SIGTERM/SIGINT")
	drainDump := flag.String("drain-dump", "", "directory receiving flight.json and metrics.json on drain")
	flag.Parse()

	srv := rosd.New(rosd.Config{
		Addr:           *addr,
		EngineCapacity: *engines,
		MaxQueueDepth:  *queue,
		MaxBatch:       *batch,
		ExecWorkers:    *workers,
		ReadTimeout:    *readTimeout,
		TenantRate:     *tenantRate,
		TenantBurst:    *tenantBurst,
		DrainDumpDir:   *drainDump,
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "rosd:", err)
		os.Exit(1)
	}
	fmt.Printf("rosd: serving on http://%s (engines %d, queue %d, tenant-rate %g)\n",
		srv.Addr(), *engines, *queue, *tenantRate)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("rosd: %v — draining (budget %v)\n", s, *drain)
	if err := srv.Drain(*drain); err != nil {
		fmt.Fprintln(os.Stderr, "rosd: drain:", err)
		os.Exit(1)
	}
	fmt.Println("rosd: drained clean")
}
