// Command rosd serves drive-by reads over HTTP: POST /v1/read takes a batch
// of read requests and answers each one independently, while the standard
// observability endpoints (/metrics, /metrics.json, /debug/flight,
// /debug/vars, /debug/pprof/) expose the process's state. Engines — the
// per-configuration resource handles holding transform plans, steering
// tables, scene memos and pooled buffers — live in a capacity-bounded LRU,
// so resident memory tracks the working set of configurations.
//
// Usage:
//
//	rosd [-addr localhost:8080] [-engines 64] [-queue 256] [-batch 64]
//	     [-read-timeout 0]
//
// See docs/ROSD.md for the API and tuning guidance.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ros/internal/rosd"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	engines := flag.Int("engines", 64, "engine LRU capacity (distinct resident configurations)")
	queue := flag.Int("queue", 256, "admission limit: max in-flight reads before batches get 429")
	batch := flag.Int("batch", 64, "max reads per batch")
	readTimeout := flag.Duration("read-timeout", 0, "per-read execution deadline (0 disables)")
	flag.Parse()

	srv := rosd.New(rosd.Config{
		Addr:           *addr,
		EngineCapacity: *engines,
		MaxQueueDepth:  *queue,
		MaxBatch:       *batch,
		ReadTimeout:    *readTimeout,
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "rosd:", err)
		os.Exit(1)
	}
	fmt.Printf("rosd: serving on http://%s (engines %d, queue %d)\n",
		srv.Addr(), *engines, *queue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("rosd: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "rosd:", err)
		os.Exit(1)
	}
}
