// Command rossim runs one end-to-end drive-by: a radar-equipped vehicle
// passes an RoS tag, detects it among roadside objects, measures its RCS
// across the pass, and decodes the embedded bits.
//
// Usage:
//
//	rossim [-bits 1111] [-distance 3] [-speed 10] [-fog heavy]
//	       [-height 0.1] [-drift 0.04] [-clutter] [-seed 1]
//	       [-timeout 500ms] [-drop 0.1] [-corrupt 0.1]
//
// -timeout bounds the read: on expiry the run stops at the next frame
// boundary and reports the partial read. -drop and -corrupt inject
// deterministic faults (frame loss, NaN/Inf sample corruption) to
// demonstrate graceful degradation; see docs/ROBUSTNESS.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ros"
	"ros/internal/geom"
)

func main() {
	bits := flag.String("bits", "1111", "bits encoded on the tag")
	distance := flag.Float64("distance", 3, "closest radar-to-tag distance (m)")
	speedMPH := flag.Float64("speed", 10, "vehicle speed (mph)")
	fog := flag.String("fog", "clear", "weather: clear, light, heavy")
	height := flag.Float64("height", 0, "radar height offset vs tag center (m)")
	drift := flag.Float64("drift", 0, "relative self-tracking error (e.g. 0.04)")
	clutter := flag.Bool("clutter", false, "surround the tag with roadside objects")
	modules := flag.Int("modules", 32, "PSVAAs per stack")
	seed := flag.Int64("seed", 1, "random seed")
	dump := flag.String("dump", "", "write the RCS capture to this JSON file (decode later with rosdecode)")
	timeout := flag.Duration("timeout", 0, "deadline for the read; a partial read is reported on expiry (0 disables)")
	drop := flag.Float64("drop", 0, "injected per-frame drop probability (chaos demo)")
	corrupt := flag.Float64("corrupt", 0, "injected per-frame NaN/Inf corruption probability (chaos demo)")
	flag.Parse()

	tag, err := ros.NewTag(*bits, ros.WithStackModules(*modules))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rossim:", err)
		os.Exit(1)
	}

	var fogLevel ros.FogLevel
	switch *fog {
	case "clear":
		fogLevel = ros.FogClear
	case "light":
		fogLevel = ros.FogLight
	case "heavy":
		fogLevel = ros.FogHeavy
	default:
		fmt.Fprintf(os.Stderr, "rossim: unknown fog level %q\n", *fog)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := ros.ReadOptions{
		Standoff:      *distance,
		SpeedMPS:      geom.MPH(*speedMPH),
		HeightOffset:  *height,
		Fog:           fogLevel,
		TrackingError: *drift,
		WithClutter:   *clutter,
		Seed:          *seed,
	}
	if *drop > 0 || *corrupt > 0 {
		opts.Fault = &ros.FaultOptions{Seed: *seed, FrameDropRate: *drop, CorruptRate: *corrupt}
	}

	fmt.Printf("driving past a %q tag: %.1f m standoff, %.0f mph, %s\n",
		*bits, *distance, *speedMPH, fogLevel)
	start := time.Now()
	reading, err := ros.NewReader().ReadContext(ctx, tag, opts)
	if err != nil {
		if reading != nil && errors.Is(err, ros.ErrReadCancelled) {
			fmt.Printf("result: read cancelled after %v (%d frames completed, %d dropped)\n",
				time.Since(start).Round(time.Millisecond),
				reading.Stats.FramesCompleted, reading.Stats.FramesDropped)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "rossim:", err)
		os.Exit(1)
	}
	if reading.Stats.FramesDropped > 0 || reading.Stats.SamplesScrubbed > 0 {
		fmt.Printf("degraded read: %d frames dropped, %d samples scrubbed\n",
			reading.Stats.FramesDropped, reading.Stats.SamplesScrubbed)
	}

	if !reading.Detected {
		fmt.Println("result: tag NOT detected")
		os.Exit(1)
	}
	status := "OK"
	if reading.Bits != *bits {
		status = "BIT ERRORS"
	}
	fmt.Printf("result: decoded %q (%s)\n", reading.Bits, status)
	fmt.Printf("  decoding SNR:  %.1f dB (BER %.2g)\n", reading.SNRdB, reading.BER)
	fmt.Printf("  median RSS:    %.1f dBm\n", reading.MedianRSSdBm)
	fmt.Printf("  RSS loss:      %.1f dB (tag feature, Fig 13a)\n", reading.RSSLossDB)

	if *dump != "" {
		if err := reading.SaveCapture(*dump, fmt.Sprintf("rossim bits=%s d=%.1f v=%.0fmph fog=%s seed=%d",
			*bits, *distance, *speedMPH, fogLevel, *seed)); err != nil {
			fmt.Fprintln(os.Stderr, "rossim:", err)
			os.Exit(1)
		}
		fmt.Printf("  capture:       written to %s\n", *dump)
	}
}
