// Command rosbench regenerates the RoS paper's evaluation tables and
// figures. Without arguments it runs every experiment in paper order; pass
// experiment ids (e.g. "fig15", "linkbudget") to run a subset, or -list to
// enumerate them.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ros/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	outPath := flag.String("o", "", "also write the tables to this file")
	flag.Parse()

	if *list {
		for _, g := range experiments.Registry() {
			fmt.Println(g.ID)
		}
		return
	}

	gens := experiments.Registry()
	if args := flag.Args(); len(args) > 0 {
		gens = gens[:0]
		for _, id := range args {
			g := experiments.ByID(id)
			if g == nil {
				fmt.Fprintf(os.Stderr, "rosbench: unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			gens = append(gens, *g)
		}
	}

	var sink *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rosbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}
	for _, g := range gens {
		start := time.Now()
		table := g.Run()
		fmt.Println(table)
		fmt.Printf("(%s regenerated in %v)\n\n", g.ID, time.Since(start).Round(time.Millisecond))
		if sink != nil {
			fmt.Fprintln(sink, table)
		}
	}
}
