// Command rosbench regenerates the RoS paper's evaluation tables and
// figures. Without arguments it runs every experiment in paper order; pass
// experiment ids (e.g. "fig15", "linkbudget") to run a subset, or -list to
// enumerate them. After the tables it reports the engine counters of a
// canonical drive-by read; -json instead emits the whole run as a
// machine-readable benchmark record, so successive commits can track the
// performance trajectory.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"flag"

	"ros/internal/experiments"
	"ros/internal/sim"
)

// expTiming is one experiment's entry in the -json record.
type expTiming struct {
	ID string  `json:"id"`
	Ms float64 `json:"ms"`
}

// readRecord reports the canonical drive-by read that anchors the
// performance trajectory across commits.
type readRecord struct {
	Detected     bool    `json:"detected"`
	SNRdB        float64 `json:"snr_db"`
	Frames       int     `json:"frames"`
	FFTCalls     int64   `json:"fft_calls"`
	Workers      int     `json:"workers"`
	SynthesizeMs float64 `json:"synthesize_ms"`
	RangeFFTMs   float64 `json:"range_fft_ms"`
	PointCloudMs float64 `json:"point_cloud_ms"`
	ClusterMs    float64 `json:"cluster_ms"`
	SpotlightMs  float64 `json:"spotlight_ms"`
	DecodeMs     float64 `json:"decode_ms"`
	WallMs       float64 `json:"wall_ms"`
}

// benchRecord is the top-level -json document.
type benchRecord struct {
	GoVersion   string      `json:"go_version"`
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	NumCPU      int         `json:"num_cpu"`
	Experiments []expTiming `json:"experiments"`
	Read        readRecord  `json:"read"`
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// canonicalRead runs the reference pass (beam-shaped "1111" tag, defaults,
// seed 1) twice — once to warm the process-wide twiddle/window/buffer
// caches, once for the record — and returns the second outcome.
func canonicalRead() (*sim.Outcome, error) {
	cfg := sim.DriveBy{BeamShaped: true, Seed: 1}
	if _, err := sim.Run(cfg); err != nil {
		return nil, err
	}
	return sim.Run(cfg)
}

func readToRecord(out *sim.Outcome) readRecord {
	s := out.Stats
	return readRecord{
		Detected:     out.Detected,
		SNRdB:        out.SNRdB,
		Frames:       s.Frames,
		FFTCalls:     s.FFTCalls,
		Workers:      s.Workers,
		SynthesizeMs: ms(s.SynthesizeNS),
		RangeFFTMs:   ms(s.RangeFFTNS),
		PointCloudMs: ms(s.PointCloudNS),
		ClusterMs:    ms(s.ClusterNS),
		SpotlightMs:  ms(s.SpotlightNS),
		DecodeMs:     ms(s.DecodeNS),
		WallMs:       ms(s.WallNS),
	}
}

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	outPath := flag.String("o", "", "also write the tables to this file")
	jsonMode := flag.Bool("json", false, "emit a machine-readable benchmark record instead of tables")
	flag.Parse()

	if *list {
		for _, g := range experiments.Registry() {
			fmt.Println(g.ID)
		}
		return
	}

	gens := experiments.Registry()
	if args := flag.Args(); len(args) > 0 {
		gens = gens[:0]
		for _, id := range args {
			g := experiments.ByID(id)
			if g == nil {
				fmt.Fprintf(os.Stderr, "rosbench: unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			gens = append(gens, *g)
		}
	}

	var sink *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rosbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}

	var timings []expTiming
	for _, g := range gens {
		start := time.Now()
		table := g.Run()
		elapsed := time.Since(start)
		timings = append(timings, expTiming{ID: g.ID, Ms: ms(elapsed.Nanoseconds())})
		if !*jsonMode {
			fmt.Println(table)
			fmt.Printf("(%s regenerated in %v)\n\n", g.ID, elapsed.Round(time.Millisecond))
		}
		if sink != nil {
			fmt.Fprintln(sink, table)
		}
	}

	read, err := canonicalRead()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rosbench:", err)
		os.Exit(1)
	}

	if *jsonMode {
		rec := benchRecord{
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			NumCPU:      runtime.NumCPU(),
			Experiments: timings,
			Read:        readToRecord(read),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(rec); err != nil {
			fmt.Fprintln(os.Stderr, "rosbench:", err)
			os.Exit(1)
		}
		return
	}

	s := read.Stats
	fmt.Printf("canonical read: %d frames, %d FFTs, %d workers, wall %v\n",
		s.Frames, s.FFTCalls, s.Workers, time.Duration(s.WallNS).Round(time.Millisecond))
	fmt.Printf("  stages (worker-summed): synth %v | range FFT %v | cloud %v | cluster %v | spotlight %v | decode %v\n",
		time.Duration(s.SynthesizeNS).Round(time.Millisecond),
		time.Duration(s.RangeFFTNS).Round(time.Millisecond),
		time.Duration(s.PointCloudNS).Round(time.Millisecond),
		time.Duration(s.ClusterNS).Round(time.Millisecond),
		time.Duration(s.SpotlightNS).Round(time.Millisecond),
		time.Duration(s.DecodeNS).Round(time.Millisecond))
}
