// Command rosbench regenerates the RoS paper's evaluation tables and
// figures. Without arguments it runs every experiment in paper order; pass
// experiment ids (e.g. "fig15", "linkbudget") to run a subset, or -list to
// enumerate them. After the tables it reports the engine counters of a
// canonical drive-by read; -json instead emits the whole run as a
// machine-readable benchmark record, and -trend appends that record as one
// JSON line to a trend file so successive commits can track the performance
// trajectory. A failing experiment no longer loses the run: its record entry
// carries an "error" field and the remaining experiments still execute.
//
// -serve starts the observability endpoints (Prometheus /metrics, the
// flight recorder at /debug/flight, expvar /debug/vars, /debug/pprof/) and a
// runtime-metrics poller for the duration of the run, so long sweeps can be
// profiled live; -log enables structured logging at the given level.
// -flight dumps the flight-recorder ring as JSON after the run, and -trace
// writes the canonical read's span tree as Chrome trace_event JSON loadable
// in Perfetto ("-" writes either to stdout).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"flag"

	"ros/internal/experiments"
	"ros/internal/obs"
	"ros/internal/obs/httpserve"
	"ros/internal/roserr"
	"ros/internal/sim"
)

// expTiming is one experiment's entry in the -json record. Error is set when
// the experiment panicked; its table is then absent but the run continues.
type expTiming struct {
	ID    string  `json:"id"`
	Ms    float64 `json:"ms"`
	Error string  `json:"error,omitempty"`
}

// readRecord reports the canonical drive-by read that anchors the
// performance trajectory across commits. The per-stage times are the flat
// view of the read's span tree (see internal/obs).
type readRecord struct {
	Detected     bool    `json:"detected"`
	SNRdB        float64 `json:"snr_db"`
	Frames       int     `json:"frames"`
	FFTCalls     int64   `json:"fft_calls"`
	Workers      int     `json:"workers"`
	SynthesizeMs float64 `json:"synthesize_ms"`
	RangeFFTMs   float64 `json:"range_fft_ms"`
	PointCloudMs float64 `json:"point_cloud_ms"`
	ClusterMs    float64 `json:"cluster_ms"`
	SpotlightMs  float64 `json:"spotlight_ms"`
	DecodeMs     float64 `json:"decode_ms"`
	WallMs       float64 `json:"wall_ms"`
}

// benchRecord is the top-level -json / -trend document.
type benchRecord struct {
	Time        string        `json:"time"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	Experiments []expTiming   `json:"experiments"`
	Read        readRecord    `json:"read"`
	Spans       *obs.SpanView `json:"spans,omitempty"`
	Error       string        `json:"error,omitempty"`
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// canonicalRead runs the reference pass (beam-shaped "1111" tag, defaults,
// seed 1) twice — once to warm the process-wide twiddle/window/buffer
// caches, once for the record — and returns the second outcome.
func canonicalRead(ctx context.Context) (*sim.Outcome, error) {
	cfg := sim.DriveBy{BeamShaped: true, Seed: 1}
	if _, err := sim.RunContext(ctx, cfg); err != nil {
		return nil, err
	}
	return sim.RunContext(ctx, cfg)
}

func readToRecord(out *sim.Outcome) readRecord {
	s := out.Stats
	return readRecord{
		Detected:     out.Detected,
		SNRdB:        out.SNRdB,
		Frames:       s.Frames,
		FFTCalls:     s.FFTCalls,
		Workers:      s.Workers,
		SynthesizeMs: ms(s.SynthesizeNS),
		RangeFFTMs:   ms(s.RangeFFTNS),
		PointCloudMs: ms(s.PointCloudNS),
		ClusterMs:    ms(s.ClusterNS),
		SpotlightMs:  ms(s.SpotlightNS),
		DecodeMs:     ms(s.DecodeNS),
		WallMs:       ms(s.WallNS),
	}
}

// Experiment wall-time distribution, for the -serve endpoints.
var hExperiment = obs.Default.Histogram("ros_experiment_seconds",
	"wall time of one experiment generator", obs.LogBuckets(1e-3, 1e3, 2))

// runExperiment executes one generator, recovering a panic into the timing
// record so one bad experiment cannot lose the whole run.
func runExperiment(ctx context.Context, g experiments.Generator) (timing expTiming, table string) {
	timing.ID = g.ID
	start := time.Now()
	defer func() {
		elapsed := time.Since(start)
		timing.Ms = ms(elapsed.Nanoseconds())
		hExperiment.Observe(elapsed.Seconds())
		if r := recover(); r != nil {
			timing.Error = fmt.Sprint(r)
			// A cancelled sweep panics with the typed roserr.ErrReadCancelled
			// chain; keep that distinguishable in the record.
			if err, ok := r.(error); ok && errors.Is(err, roserr.ErrReadCancelled) {
				obs.Logger().Warn("rosbench: experiment cancelled", "id", g.ID)
			} else {
				obs.Logger().Error("rosbench: experiment failed",
					"id", g.ID, "err", timing.Error)
			}
		}
	}()
	return timing, g.Run(ctx).String()
}

// writeTo streams write into path, with "-" meaning stdout.
func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// appendTrend appends the record as one JSON line to path.
func appendTrend(path string, rec benchRecord) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f) // Encode terminates the record with \n
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	outPath := flag.String("o", "", "also write the tables to this file")
	jsonMode := flag.Bool("json", false, "emit a machine-readable benchmark record instead of tables")
	trendPath := flag.String("trend", "", "append the benchmark record as one JSON line to this file")
	serveAddr := flag.String("serve", "", "serve /metrics, /debug/flight, /debug/vars and /debug/pprof on this address for the duration of the run (e.g. localhost:6060)")
	flightPath := flag.String("flight", "", "after the run, dump the flight recorder (recent reads, newest first) as JSON to this file (\"-\" for stdout)")
	tracePath := flag.String("trace", "", "write the canonical read's span tree as Chrome trace_event JSON to this file (\"-\" for stdout); load in Perfetto")
	logLevel := flag.String("log", "off", "structured log level: debug, info, warn, error or off")
	timeout := flag.Duration("timeout", 0, "overall deadline for the run; on expiry experiments stop at the next drive-by boundary (0 disables)")
	flag.Parse()

	// Ctrl-C / SIGTERM and -timeout cancel the shared context; every
	// experiment and the canonical read stop at the next frame or drive-by
	// boundary and the partial record is still emitted.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if level, off, ok := obs.ParseLevel(*logLevel); !ok {
		fmt.Fprintf(os.Stderr, "rosbench: unknown -log level %q\n", *logLevel)
		os.Exit(2)
	} else if !off {
		obs.SetLogger(obs.NewTextLogger(os.Stderr, level))
	}

	if *list {
		for _, g := range experiments.Registry() {
			fmt.Println(g.ID)
		}
		return
	}

	// An explicit -flight asks for forensics on this run: record every read
	// instead of the default 1-in-N background sample, so clean runs still
	// leave a non-empty dump.
	if *flightPath != "" {
		obs.DefaultFlight.SetSampleEvery(1)
	}

	if *serveAddr != "" {
		srv, err := httpserve.Start(*serveAddr, obs.Default)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rosbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		// Poll the Go runtime (heap, GC pauses, scheduler latency) into the
		// served gauges while the run lasts.
		rt := obs.StartRuntime(obs.Default, time.Second)
		defer rt.Stop()
		fmt.Fprintf(os.Stderr, "rosbench: observability on http://%s/ (metrics, flight, expvar, pprof)\n", srv.Addr())
	}

	gens := experiments.Registry()
	if args := flag.Args(); len(args) > 0 {
		gens = gens[:0]
		for _, id := range args {
			g := experiments.ByID(id)
			if g == nil {
				fmt.Fprintf(os.Stderr, "rosbench: unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			gens = append(gens, *g)
		}
	}

	var sink *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rosbench:", err)
			os.Exit(1)
		}
		sink = f
	}

	failures := 0
	var timings []expTiming
	for _, g := range gens {
		if ctx.Err() != nil {
			// Deadline hit or interrupted: stop launching experiments but
			// still emit the record for the ones that ran.
			fmt.Fprintf(os.Stderr, "rosbench: cancelled before %s: %v\n", g.ID, context.Cause(ctx))
			failures++
			break
		}
		timing, table := runExperiment(ctx, g)
		timings = append(timings, timing)
		if timing.Error != "" {
			failures++
			fmt.Fprintf(os.Stderr, "rosbench: experiment %s failed: %s\n", g.ID, timing.Error)
			continue
		}
		if !*jsonMode {
			fmt.Println(table)
			fmt.Printf("(%s regenerated in %v)\n\n", g.ID,
				(time.Duration(timing.Ms * 1e6)).Round(time.Millisecond))
		}
		if sink != nil {
			if _, err := fmt.Fprintln(sink, table); err != nil {
				fmt.Fprintln(os.Stderr, "rosbench: writing -o file:", err)
				os.Exit(1)
			}
		}
	}
	if sink != nil {
		// An ignored Close on a written file can silently lose buffered
		// tables; surface it.
		if err := sink.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rosbench: closing -o file:", err)
			os.Exit(1)
		}
	}

	rec := benchRecord{
		Time:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Experiments: timings,
	}
	read, err := canonicalRead(ctx)
	if err != nil {
		// Still emit the partial record: losing the whole run over one
		// failure is exactly what -json used to do wrong.
		failures++
		rec.Error = fmt.Sprintf("canonical read: %v", err)
		fmt.Fprintln(os.Stderr, "rosbench:", rec.Error)
	} else {
		rec.Read = readToRecord(read)
		if read.Span != nil {
			v := read.Span.View()
			rec.Spans = &v
		}
	}

	if *tracePath != "" {
		if read == nil || read.Span == nil {
			fmt.Fprintln(os.Stderr, "rosbench: -trace: no canonical read span to export")
			failures++
		} else if err := writeTo(*tracePath, read.Span.WriteTraceEvents); err != nil {
			fmt.Fprintln(os.Stderr, "rosbench: -trace:", err)
			os.Exit(1)
		}
	}
	if *flightPath != "" {
		if err := writeTo(*flightPath, obs.DefaultFlight.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "rosbench: -flight:", err)
			os.Exit(1)
		}
	}

	if *trendPath != "" {
		if err := appendTrend(*trendPath, rec); err != nil {
			fmt.Fprintln(os.Stderr, "rosbench:", err)
			os.Exit(1)
		}
	}

	if *jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(rec); err != nil {
			fmt.Fprintln(os.Stderr, "rosbench:", err)
			os.Exit(1)
		}
	} else if read != nil {
		s := read.Stats
		fmt.Printf("canonical read: %d frames, %d FFTs, %d workers, wall %v\n",
			s.Frames, s.FFTCalls, s.Workers, time.Duration(s.WallNS).Round(time.Millisecond))
		fmt.Printf("  stages (worker-summed): synth %v | range FFT %v | cloud %v | cluster %v | spotlight %v | decode %v\n",
			time.Duration(s.SynthesizeNS).Round(time.Millisecond),
			time.Duration(s.RangeFFTNS).Round(time.Millisecond),
			time.Duration(s.PointCloudNS).Round(time.Millisecond),
			time.Duration(s.ClusterNS).Round(time.Millisecond),
			time.Duration(s.SpotlightNS).Round(time.Millisecond),
			time.Duration(s.DecodeNS).Round(time.Millisecond))
	}

	if failures > 0 {
		os.Exit(1)
	}
}
