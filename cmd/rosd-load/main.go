// Command rosd-load load-tests the read service: many concurrent clients
// posting single-tenant batches of mixed-configuration reads through the
// self-healing rosclient, exercising the engine LRU, the per-tenant quota
// and fairness layers, and the admission gate together. By default it
// starts its own in-process rosd on an ephemeral port (which also lets it
// report the server-side queue-depth histogram); -url targets a running
// daemon instead.
//
// Usage:
//
//	rosd-load [-reads 1024] [-concurrency 32] [-batch 8] [-configs 8]
//	          [-tenants 4] [-flood 1] [-frames 48] [-engines 64]
//	          [-queue 256] [-tenant-rate 0] [-tenant-burst 0] [-hedge 0]
//	          [-url http://host:port] [-trend BENCH_trend.jsonl]
//
// -flood N makes tenant-0 send N times everyone else's share, and
// -tenant-rate arms the server's quotas (in-process runs), so the printout's
// per-tenant goodput and fairness ratio show isolation under abuse.
//
// -trend appends the run's record as one JSON line to the trend file,
// alongside rosbench's records, so successive commits can track service
// latency, per-tenant goodput and fairness under load.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ros/internal/rosd"
)

// trendRecord is the -trend document: the same envelope rosbench writes,
// with the load report in place of the single-read timings.
type trendRecord struct {
	Time      string           `json:"time"`
	GoVersion string           `json:"go_version"`
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	NumCPU    int              `json:"num_cpu"`
	RosdLoad  *rosd.LoadReport `json:"rosd_load"`
}

func main() {
	reads := flag.Int("reads", 1024, "total reads to drive")
	concurrency := flag.Int("concurrency", 32, "parallel client goroutines")
	batch := flag.Int("batch", 8, "reads per POST")
	configs := flag.Int("configs", 8, "distinct configurations to mix")
	tenants := flag.Int("tenants", 4, "distinct tenant labels to cycle")
	flood := flag.Int("flood", 1, "tenant-0 sends this many times everyone else's share")
	frames := flag.Int("frames", 48, "frame budget per read")
	engines := flag.Int("engines", 64, "engine LRU capacity (in-process server)")
	queue := flag.Int("queue", 256, "admission queue depth (in-process server)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant quota in reads/s (in-process server; 0 disables)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant burst above the steady rate (in-process server)")
	hedge := flag.Duration("hedge", 0, "hedge batches slower than this (0 disables)")
	url := flag.String("url", "", "target a running rosd instead of starting one in-process")
	trendPath := flag.String("trend", "", "append the run record as one JSON line to this file")
	flag.Parse()

	report, err := rosd.RunLoad(rosd.LoadConfig{
		URL: *url,
		Server: rosd.Config{
			EngineCapacity: *engines,
			MaxQueueDepth:  *queue,
			TenantRate:     *tenantRate,
			TenantBurst:    *tenantBurst,
		},
		Reads:       *reads,
		Concurrency: *concurrency,
		BatchSize:   *batch,
		Configs:     *configs,
		Tenants:     *tenants,
		FloodFactor: *flood,
		FrameBudget: *frames,
		Hedge:       *hedge,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rosd-load:", err)
		os.Exit(1)
	}

	fmt.Printf("rosd-load: %d reads in %d batches over %d clients in %.1f ms\n",
		report.Reads, report.Batches, report.Concurrency, report.WallMS)
	fmt.Printf("  batch latency p50 %.2f ms  p99 %.2f ms  max %.2f ms\n",
		report.BatchP50MS, report.BatchP99MS, report.BatchMaxMS)
	fmt.Printf("  queue depth p50 %.0f  p99 %.0f  overloads %d  retries %d  hedges %d\n",
		report.QueueDepthP50, report.QueueDepthP99, report.Overloads,
		report.Retries, report.Hedges)
	fmt.Printf("  engines resident %d  evictions %d  outcomes %v  per-read errors %d\n",
		report.EnginesResident, report.Evictions, report.Outcomes, report.Errors)
	for _, tr := range report.Tenants {
		fmt.Printf("  %-10s reads %5d  ok %5d  throttled %5d  goodput %7.1f rps  batch p50 %.2f ms  p99 %.2f ms\n",
			tr.Tenant, tr.Reads, tr.OK, tr.Throttled, tr.GoodputRPS, tr.BatchP50MS, tr.BatchP99MS)
	}
	if report.FairnessRatio > 0 {
		fmt.Printf("  fairness ratio (min/max in-quota goodput) %.3f\n", report.FairnessRatio)
	}

	if *trendPath != "" {
		rec := trendRecord{
			Time:      time.Now().UTC().Format(time.RFC3339),
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
			RosdLoad:  report,
		}
		f, err := os.OpenFile(*trendPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rosd-load:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		if err := enc.Encode(rec); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "rosd-load:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rosd-load:", err)
			os.Exit(1)
		}
		fmt.Printf("rosd-load: appended record to %s\n", *trendPath)
	}
}
