// Command rosdecode decodes a recorded RCS capture (see cmd/rossim -dump):
// the offline half of a real deployment's workflow, where radar logs are
// archived and decoded later.
//
// Usage:
//
//	rosdecode capture.json
package main

import (
	"flag"
	"fmt"
	"os"

	"ros"
	"ros/internal/trace"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rosdecode <capture.json>")
		os.Exit(2)
	}
	cap, err := trace.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rosdecode:", err)
		os.Exit(1)
	}
	if cap.Note != "" {
		fmt.Printf("capture: %s\n", cap.Note)
	}
	fmt.Printf("%d samples, %d coding slots, u span [%.2f, %.2f]\n",
		len(cap.U), cap.Bits, minOf(cap.U), maxOf(cap.U))

	out, err := ros.Decode(cap.U, cap.RSS, cap.Bits)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rosdecode:", err)
		os.Exit(1)
	}
	fmt.Printf("decoded bits: %s\n", out.Bits)
	fmt.Printf("decoding SNR: %.1f dB (BER %.2g)\n", out.SNRdB, out.BER)
	if sign, err := ros.ParseSign(out.Bits); err == nil {
		fmt.Printf("sign:         %s\n", sign)
	}
}

func minOf(x []float64) float64 {
	m := x[0]
	for _, v := range x {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(x []float64) float64 {
	m := x[0]
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	return m
}
