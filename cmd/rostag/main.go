// Command rostag designs an RoS tag for a bit string: it prints the spatial
// layout (which PSVAA stacks to mount where), the tag's physical envelope,
// the far-field and speed bounds of Sec 5.3, and an ASCII rendering of the
// predicted RCS frequency spectrum.
//
// Usage:
//
//	rostag [-modules N] [-spacing L] [-flat=false] <bits>
//
// e.g. `rostag 1011`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ros"
)

func main() {
	modules := flag.Int("modules", 32, "PSVAAs per stack (8, 16 or 32 in the paper)")
	spacing := flag.Float64("spacing", 1.5, "coding unit spacing in wavelengths")
	flat := flag.Bool("flat", true, "apply elevation beam shaping (Sec 4.3)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rostag [flags] <bits>   e.g. rostag 1011")
		flag.PrintDefaults()
		os.Exit(2)
	}

	opts := []ros.TagOption{
		ros.WithStackModules(*modules),
		ros.WithUnitSpacing(*spacing),
	}
	if !*flat {
		opts = append(opts, ros.WithoutBeamShaping())
	}
	tag, err := ros.NewTag(flag.Arg(0), opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rostag:", err)
		os.Exit(1)
	}

	fmt.Printf("RoS tag design for bits %q\n\n", tag.Bits())
	fmt.Println("stack layout (positions relative to the reference stack):")
	for _, p := range tag.Layout() {
		mark := "mount stack"
		if !p.Present {
			mark = "leave empty"
		}
		slot := "reference"
		if p.Slot > 0 {
			slot = fmt.Sprintf("slot %d    ", p.Slot)
		}
		fmt.Printf("  %s  %+8.1f mm   %s\n", slot, p.Position*1e3, mark)
	}
	fmt.Println()
	fmt.Printf("tag width:            %.1f cm\n", tag.Width()*100)
	fmt.Printf("stack height:         %.1f cm (%d modules, shaped=%v)\n",
		tag.Height()*100, tag.Modules(), tag.BeamShaped())
	fmt.Printf("far-field distance:   %.2f m (decode beyond this, Eq 8)\n", tag.FarFieldDistance())
	fmt.Printf("max speed @1 kHz/3 m: %.1f m/s (%.0f mph, Eq 9)\n",
		tag.MaxVehicleSpeed(1000, 3), tag.MaxVehicleSpeed(1000, 3)/0.44704)
	fmt.Printf("TI-radar read range:  %.1f m\n", ros.NewReader().MaxRange())

	checks, err := tag.Review(ros.Deployment{Standoff: 3, MaxSpeedMPS: 13.4})
	if err != nil {
		// Non-fatal (the review is advisory), but not silent either.
		fmt.Fprintln(os.Stderr, "rostag: deployment review failed:", err)
	} else {
		fmt.Println("\ndeployment review (one lane away, 30 mph):")
		fmt.Print(ros.ReviewString(checks))
	}

	spacingAxis, mag, err := tag.PredictedSpectrum(0.6, 2048)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rostag:", err)
		os.Exit(1)
	}
	fmt.Println("\npredicted RCS frequency spectrum (coding band):")
	printSpectrum(spacingAxis, mag)
}

// printSpectrum renders an ASCII bar chart of the spectrum over the coding
// band (3..14 wavelengths of stack spacing).
func printSpectrum(spacing, mag []float64) {
	const lambda = 0.0037948
	peak := 0.0
	for i, s := range spacing {
		if s >= 3*lambda && s <= 14*lambda && mag[i] > peak {
			peak = mag[i]
		}
	}
	if peak == 0 {
		fmt.Println("  (no energy)")
		return
	}
	for d := 3.0; d <= 14; d += 0.5 {
		best := 0.0
		for i, s := range spacing {
			if s >= (d-0.25)*lambda && s < (d+0.25)*lambda && mag[i] > best {
				best = mag[i]
			}
		}
		bar := int(best / peak * 50)
		fmt.Printf("  %5.1f lambda |%s\n", d, strings.Repeat("#", bar))
	}
}
