// Command rosscope renders the inner life of one drive-by in the terminal —
// the ASCII version of the paper's Fig 11 panels: the merged point cloud
// with clusters, the tag's RSS samples across u = cos(theta), and the
// decoded RCS frequency spectrum with the coding slots marked.
//
// Usage:
//
//	rosscope [-bits 1111] [-distance 3] [-speed 10] [-clutter] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"ros/internal/coding"
	"ros/internal/em"
	"ros/internal/geom"
	"ros/internal/sim"
	"ros/internal/viz"
)

func main() {
	bits := flag.String("bits", "1111", "bits encoded on the tag")
	distance := flag.Float64("distance", 3, "closest radar-to-tag distance (m)")
	speedMPH := flag.Float64("speed", 10, "vehicle speed (mph)")
	clutter := flag.Bool("clutter", true, "surround the tag with roadside objects")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	out, err := sim.Run(sim.DriveBy{
		Bits:        *bits,
		BeamShaped:  true,
		Standoff:    *distance,
		Speed:       geom.MPH(*speedMPH),
		WithClutter: *clutter,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rosscope:", err)
		os.Exit(1)
	}

	// Panel 1: merged point cloud (Fig 11b).
	var pts []viz.Point
	for _, p := range out.Detection.MergedPoints {
		pts = append(pts, viz.Point{X: p.Pos.X, Y: p.Pos.Y})
	}
	for i, o := range out.Detection.Objects {
		mark := byte('1' + i)
		if o.IsTag {
			mark = 'T'
		}
		pts = append(pts, viz.Point{X: o.Centroid.X, Y: o.Centroid.Y, Mark: mark})
	}
	fmt.Print(viz.Scatter("merged point cloud (T = classified tag, digits = other clusters)",
		pts, -4, 4, -1.5, 1.5, 64, 12))
	fmt.Println()
	for i, o := range out.Detection.Objects {
		tag := " "
		if o.IsTag {
			tag = "T"
		}
		fmt.Printf("  [%c]%s cluster at (%+.2f, %+.2f): %d pts, size %.3f m, RSS loss %.1f dB\n",
			'1'+i, tag, o.Centroid.X, o.Centroid.Y, o.Points, o.Extent, o.RSSLossDB)
	}
	fmt.Println()

	if !out.Detected {
		fmt.Println("tag not detected; no decode panels")
		os.Exit(1)
	}

	// Panel 2: RSS over u (Fig 11c's tag trace, path-loss compensated),
	// plotted in dB relative to the strongest sample.
	peak := 0.0
	for _, v := range out.Detection.TagRSS {
		if v > peak {
			peak = v
		}
	}
	rel := make([]float64, len(out.Detection.TagRSS))
	for i, v := range out.Detection.TagRSS {
		rel[i] = em.DB(v / peak)
		if rel[i] < -40 {
			rel[i] = -40
		}
	}
	fmt.Print(viz.Line(fmt.Sprintf("tag RCS across u = cos(theta), dB rel. peak  (%d frames)", out.Samples),
		rel, 64, 10))
	fmt.Println()

	// Panel 3: RCS frequency spectrum with the coding slots (Fig 11d).
	if out.Decode == nil {
		// Detected but undecodable: out.Decode is nil, so there is no
		// spectrum panel to draw (dereferencing it used to crash here).
		fmt.Println("tag detected but undecodable; no spectrum panel")
		os.Exit(1)
	}
	spec := out.Decode.Spectrum
	lambda := em.Lambda79()
	var labels []string
	var values []float64
	for d := 3.0; d <= 14; d += 0.5 {
		labels = append(labels, fmt.Sprintf("%5.1f lambda", d))
		values = append(values, spec.AmplitudeAt(d*lambda, 0.2*lambda))
	}
	fmt.Print(viz.Bars("RCS frequency spectrum (coding slots at 6, 7.5, 9, 10.5 lambda)",
		labels, values, 48))
	fmt.Println()
	fmt.Printf("decoded bits %q", out.Bits)
	if len(out.Bits) == 4 {
		if _, err := coding.ParseBits(out.Bits); err == nil {
			fmt.Printf(" (SNR %.1f dB, BER %.2g)", out.SNRdB, out.BER)
		}
	}
	fmt.Println()
}
