package ros

// Cache-ownership gate: after the Engine/Session refactor, memoized state
// lives in resource handles (dsp.PlanSet, radar.Session, scene.ResponseCache,
// engine.Engine), and the only package-level cache instances allowed are the
// default-handle shims in each package's cache.go. This test walks every
// non-test source file in the module and fails on any new package-level cache
// declaration outside that allowlist, so the global-cache pattern cannot
// creep back in.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// cacheShimFiles are the files allowed to declare package-level cache
// instances: exactly the default-handle shims (and the CountedMap
// implementation itself).
var cacheShimFiles = map[string]bool{
	"internal/dsp/cache.go":   true,
	"internal/radar/cache.go": true,
	"internal/scene/cache.go": true,
	"internal/obs/cache.go":   true,
}

// cachePattern matches the constructors and types that hold memoized cache
// state. sync.Pool is deliberately absent: buffer pools recycle scratch
// memory without retaining entries, so they are not caches under this
// policy.
var cachePattern = regexp.MustCompile(
	`sync\.Map|NewCountedMap|NewPlanSet|NewSession|NewResponseCache`)

func TestNoPackageLevelCachesOutsideShims(t *testing.T) {
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		if cacheShimFiles[filepath.ToSlash(path)] {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(fset, path, src, 0)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			start := fset.Position(gd.Pos()).Offset
			end := fset.Position(gd.End()).Offset
			if m := cachePattern.FindString(string(src[start:end])); m != "" {
				t.Errorf("%s:%d: package-level cache declaration (%s) outside the default-handle shims; own it through an Engine/Session handle instead",
					path, fset.Position(gd.Pos()).Line, m)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
