package ros

import (
	"fmt"

	"ros/internal/beamshape"
	"ros/internal/coding"
	"ros/internal/em"
	"ros/internal/stack"
)

// Tag is a designed RoS road sign: a spatial code (which stacks are present
// and where) plus the vertical PSVAA stack used at every position.
type Tag struct {
	layout  *coding.Layout
	stack   *stack.Stack
	bits    string
	shaped  bool
	modules int
}

// TagOption customizes NewTag.
type TagOption func(*tagConfig) error

type tagConfig struct {
	modules      int
	beamShaped   bool
	deltaLambdas float64
}

// WithStackModules sets the number of PSVAAs stacked per position (8, 16 or
// 32 in the paper's evaluation; default 32). More modules raise the RCS —
// and the reading range — at the cost of a longer far-field distance
// (Fig 15).
func WithStackModules(n int) TagOption {
	return func(c *tagConfig) error {
		if n < 1 {
			return fmt.Errorf("ros: stack needs at least 1 module, got %d", n)
		}
		c.modules = n
		return nil
	}
}

// WithoutBeamShaping disables the elevation beam shaping of Sec 4.3,
// yielding the pencil-beam baseline of Fig 14 (only useful for ablations).
func WithoutBeamShaping() TagOption {
	return func(c *tagConfig) error {
		c.beamShaped = false
		return nil
	}
}

// WithUnitSpacing sets the coding unit spacing delta_c in wavelengths
// (default 1.5, the paper's choice).
func WithUnitSpacing(lambdas float64) TagOption {
	return func(c *tagConfig) error {
		if lambdas <= 0 {
			return fmt.Errorf("ros: unit spacing must be positive, got %g", lambdas)
		}
		c.deltaLambdas = lambdas
		return nil
	}
}

// NewTag designs a tag for the given bit string ("1011"-style, most
// significant bit first).
func NewTag(bits string, opts ...TagOption) (*Tag, error) {
	cfg := tagConfig{modules: 32, beamShaped: true, deltaLambdas: 1.5}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	parsed, err := coding.ParseBits(bits)
	if err != nil {
		return nil, err
	}
	layout, err := coding.NewLayout(parsed, cfg.deltaLambdas*em.Lambda79())
	if err != nil {
		return nil, err
	}
	var st *stack.Stack
	if cfg.beamShaped && cfg.modules >= 4 {
		st = beamshape.Shaped(cfg.modules)
	} else {
		st = stack.NewUniform(cfg.modules)
	}
	return &Tag{
		layout:  layout,
		stack:   st,
		bits:    bits,
		shaped:  cfg.beamShaped,
		modules: cfg.modules,
	}, nil
}

// Bits returns the encoded bit string.
func (t *Tag) Bits() string { return t.bits }

// Modules returns the PSVAAs per stack.
func (t *Tag) Modules() int { return t.modules }

// BeamShaped reports whether elevation beam shaping is applied.
func (t *Tag) BeamShaped() bool { return t.shaped }

// StackPlacement describes one stack slot on the tag.
type StackPlacement struct {
	// Slot is 0 for the reference stack, 1..N for coding slots.
	Slot int
	// Position is the along-tag offset from the reference stack in
	// meters.
	Position float64
	// Present tells whether a physical stack is mounted (bit "1").
	Present bool
}

// Layout returns the physical placement of every stack slot.
func (t *Tag) Layout() []StackPlacement {
	out := []StackPlacement{{Slot: 0, Position: 0, Present: true}}
	for k := 1; k <= len(t.layout.Bits); k++ {
		out = append(out, StackPlacement{
			Slot:     k,
			Position: t.layout.SlotPosition(k),
			Present:  t.layout.Bits[k-1],
		})
	}
	return out
}

// Width returns the physical tag width in meters (Sec 5.3).
func (t *Tag) Width() float64 { return t.layout.Width() }

// Height returns the stack height in meters.
func (t *Tag) Height() float64 { return t.stack.Height() }

// FarFieldDistance returns Eq 8's bound in meters: decoding is most
// effective beyond it.
func (t *Tag) FarFieldDistance() float64 {
	return t.layout.FarFieldDistance(em.CenterFrequency)
}

// MaxVehicleSpeed returns the Nyquist speed bound of Eq 9 in m/s for a radar
// frame rate (Hz) and closest passing distance (m).
func (t *Tag) MaxVehicleSpeed(frameRateHz, standoffM float64) float64 {
	return t.layout.MaxSpeed(frameRateHz, standoffM, em.CenterFrequency)
}

// PredictedSpectrum returns the ideal far-field RCS frequency spectrum of
// the tag sampled across u in [-span, span]: the positions (in meters of
// stack spacing) and magnitudes of the coding-band spectrum, for comparison
// against measured reads (Fig 10c).
func (t *Tag) PredictedSpectrum(span float64, points int) (spacing, magnitude []float64, err error) {
	if span <= 0 || span > 1 {
		return nil, nil, fmt.Errorf("ros: spectrum span must be in (0, 1], got %g", span)
	}
	if points < 64 {
		return nil, nil, fmt.Errorf("ros: need at least 64 points, got %d", points)
	}
	lambda := em.Lambda79()
	pos := t.layout.Positions()
	us := make([]float64, points)
	rss := make([]float64, points)
	for i := range us {
		u := -span + 2*span*float64(i)/float64(points-1)
		us[i] = u
		rss[i] = coding.MultiStackGain(pos, u, lambda)
	}
	spec, err := coding.ComputeSpectrum(us, rss, coding.SpectrumOptions{Lambda: lambda})
	if err != nil {
		return nil, nil, err
	}
	return spec.Spacing, spec.Mag, nil
}
