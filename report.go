package ros

import (
	"fmt"
	"math"
	"strings"

	"ros/internal/em"
)

// DeploymentCheck is one line of a tag design review.
type DeploymentCheck struct {
	// Name identifies the check.
	Name string
	// OK reports whether the deployment passes it.
	OK bool
	// Detail explains the numbers behind the verdict.
	Detail string
}

// Deployment describes where and how a tag will be read.
type Deployment struct {
	// Standoff is the closest radar-to-tag distance in meters (e.g. the
	// lane distance).
	Standoff float64
	// MaxSpeedMPS is the fastest vehicle expected to read the tag.
	MaxSpeedMPS float64
	// FrameRateHz is the reader's radar frame rate (default 1000).
	FrameRateHz float64
	// Commercial selects the Sec 8 commercial front end instead of the TI
	// evaluation radar for the link budget.
	Commercial bool
}

// Review checks a tag design against a deployment, evaluating the paper's
// three constraints: the far-field bound (Eq 8), the Nyquist speed bound
// (Eq 9), and the link budget (Sec 5.3). It returns one check per
// constraint.
func (t *Tag) Review(d Deployment) ([]DeploymentCheck, error) {
	if d.Standoff <= 0 {
		return nil, fmt.Errorf("ros: deployment needs a positive standoff, got %g", d.Standoff)
	}
	if d.MaxSpeedMPS <= 0 {
		return nil, fmt.Errorf("ros: deployment needs a positive speed, got %g", d.MaxSpeedMPS)
	}
	if d.FrameRateHz == 0 {
		d.FrameRateHz = 1000
	}
	var checks []DeploymentCheck

	ff := t.FarFieldDistance()
	checks = append(checks, DeploymentCheck{
		Name: "far field (Eq 8)",
		OK:   d.Standoff >= ff,
		Detail: fmt.Sprintf("standoff %.1f m vs far-field bound %.2f m; inside it the "+
			"plane-wave decode model distorts", d.Standoff, ff),
	})

	vMax := t.MaxVehicleSpeed(d.FrameRateHz, d.Standoff)
	checks = append(checks, DeploymentCheck{
		Name: "Nyquist speed (Eq 9)",
		OK:   d.MaxSpeedMPS <= vMax,
		Detail: fmt.Sprintf("expected %.1f m/s vs bound %.1f m/s at %.0f Hz frames",
			d.MaxSpeedMPS, vMax, d.FrameRateHz),
	})

	fe := em.TIRadar()
	if d.Commercial {
		fe = em.CommercialRadar()
	}
	// Approximate tag RCS: the 32-module reference scaled by the module
	// count (field amplitude proportional to modules).
	rcs := em.TagRCS32StackDBsm + 20*math.Log10(float64(t.Modules())/32)
	maxRange := fe.MaxRange(rcs, em.CenterFrequency)
	margin := fe.SNRAtRange(rcs, em.CenterFrequency, d.Standoff)
	checks = append(checks, DeploymentCheck{
		Name: "link budget (Sec 5.3)",
		OK:   d.Standoff <= maxRange,
		Detail: fmt.Sprintf("%s front end reads to %.1f m; margin at %.1f m is %.1f dB",
			fe.Name, maxRange, d.Standoff, margin),
	})
	return checks, nil
}

// ReviewString renders the checks as a short report.
func ReviewString(checks []DeploymentCheck) string {
	var b strings.Builder
	for _, c := range checks {
		mark := "PASS"
		if !c.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %-22s %s\n", mark, c.Name, c.Detail)
	}
	return b.String()
}
