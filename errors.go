package ros

import "ros/internal/roserr"

// Sentinel errors of the read pipeline, re-exported from the internal error
// taxonomy so callers can branch with errors.Is without importing internal
// packages. Every error the pipeline returns wraps exactly one of these.
var (
	// ErrConfig marks an invalid configuration (bad radar parameters, bad
	// fault rates, malformed bit strings). Never returned for runtime
	// conditions.
	ErrConfig = roserr.ErrConfig
	// ErrReadCancelled marks a read cut short by context cancellation or
	// deadline expiry. The same error chain also matches the context cause
	// (context.Canceled or context.DeadlineExceeded), so callers can
	// distinguish a timeout from an explicit cancel.
	ErrReadCancelled = roserr.ErrReadCancelled
	// ErrFrameCorrupt marks a read that lost more frames to drops,
	// corruption, or worker failures than the degradation budget allows.
	ErrFrameCorrupt = roserr.ErrFrameCorrupt
	// ErrNoTag marks an operation that needs a detected tag on a reading
	// without one (e.g. SaveCapture after a miss).
	ErrNoTag = roserr.ErrNoTag
	// ErrUndecodable marks a detected tag whose RCS spectrum could not be
	// decoded (degenerate sample span, empty coding band).
	ErrUndecodable = roserr.ErrUndecodable
	// ErrWorkerPanic marks a recovered panic in a parallel stage; the chain
	// carries the panic value and stack trace.
	ErrWorkerPanic = roserr.ErrWorkerPanic
	// ErrOverload marks a read service request refused by admission control
	// (queue at capacity or tenant over quota); retry after backoff.
	ErrOverload = roserr.ErrOverload
	// ErrDraining marks a read service request refused because the service
	// is shutting down gracefully; retry elsewhere or after restart.
	ErrDraining = roserr.ErrDraining
	// ErrCircuitOpen marks a client request refused locally by an open
	// circuit breaker (the request never reached the network); retry after
	// the breaker's cooldown.
	ErrCircuitOpen = roserr.ErrCircuitOpen
)
