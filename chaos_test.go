package ros

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ros/internal/fault"
	"ros/internal/obs"
	"ros/internal/rosd"
)

// TestChaosDecodeUnderFrameLoss is the graceful-degradation contract: with
// deterministic fault injection dropping and corrupting up to 20% of frames,
// the read still detects the tag and decodes the right bits at every worker
// count — the decoder reads an aggregate of azimuth samples, so partial
// frame loss costs SNR, not correctness.
func TestChaosDecodeUnderFrameLoss(t *testing.T) {
	tag, err := NewTag("1011")
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader()
	for _, rate := range []float64{0.05, 0.10, 0.20} {
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("rate=%.2f/workers=%d", rate, workers), func(t *testing.T) {
				reading, err := r.ReadContext(context.Background(), tag, ReadOptions{
					Seed:    7,
					Workers: workers,
					Fault:   &FaultOptions{Seed: 7, FrameDropRate: rate / 2, CorruptRate: rate / 2},
				})
				if err != nil {
					t.Fatalf("read failed under %.0f%% fault rate: %v", rate*100, err)
				}
				if reading.Partial {
					t.Fatal("read marked partial below the loss budget")
				}
				if !reading.Detected {
					t.Fatalf("tag not detected under %.0f%% fault rate", rate*100)
				}
				if reading.Bits != "1011" {
					t.Fatalf("decoded %q under %.0f%% fault rate, want 1011", reading.Bits, rate*100)
				}
				if rate > 0 && reading.Stats.FramesDropped == 0 && reading.Stats.SamplesScrubbed == 0 {
					t.Fatal("fault injection enabled but no drops or scrubs counted")
				}
			})
		}
	}
}

// TestChaosTypedErrorBeyondBudget: when injected loss exceeds MaxFrameLoss,
// the read must fail with the typed ErrFrameCorrupt — not a decode error,
// not a panic, not a silent wrong answer.
func TestChaosTypedErrorBeyondBudget(t *testing.T) {
	tag, err := NewTag("1011")
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewReader().ReadContext(context.Background(), tag, ReadOptions{
		Seed:  7,
		Fault: &FaultOptions{Seed: 7, FrameDropRate: 0.9},
	})
	if err == nil {
		t.Fatal("read succeeded with 90% frame loss against the default 50% budget")
	}
	if !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("excess loss not typed ErrFrameCorrupt: %v", err)
	}
}

// TestChaosWorkerPanicRecovery: injected worker panics must surface as a
// typed error carrying the panic, never crash the process.
func TestChaosWorkerPanicRecovery(t *testing.T) {
	tag, err := NewTag("1011")
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewReader().ReadContext(context.Background(), tag, ReadOptions{
		Seed:    7,
		Workers: 4,
		Fault:   &FaultOptions{Seed: 7, PanicRate: 1},
	})
	if err == nil {
		t.Fatal("read succeeded with every frame worker panicking")
	}
	if !errors.Is(err, ErrWorkerPanic) && !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("worker panic not typed: %v", err)
	}
}

// TestChaosDeadlinePromptness: a read with a 5ms deadline must return within
// 2x the deadline with a typed partial result. The frame loop checks the
// context at every frame boundary, so expiry can stall at most one frame.
func TestChaosDeadlinePromptness(t *testing.T) {
	tag, err := NewTag("1011")
	if err != nil {
		t.Fatal(err)
	}
	const deadline = 5 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	reading, err := NewReader().ReadContext(ctx, tag, ReadOptions{Seed: 7})
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("read finished inside a 5ms deadline; machine too fast to test expiry")
	}
	if !errors.Is(err, ErrReadCancelled) {
		t.Fatalf("expired read not typed ErrReadCancelled: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired read does not match context.DeadlineExceeded: %v", err)
	}
	if reading == nil || !reading.Partial {
		t.Fatalf("expired read did not return a partial Reading: %+v", reading)
	}
	// Generous 10x bound under -race and loaded CI; the enforced contract
	// (ISSUE) is 2x, checked on an idle machine by the chaos make target.
	limit := 2 * deadline
	if testing.Short() || raceEnabled {
		limit = 10 * deadline
	}
	if elapsed > limit {
		t.Fatalf("5ms-deadline read took %v, want <= %v", elapsed, limit)
	}
}

// TestChaosExplicitCancel: cancelling mid-read must surface both the typed
// sentinel and context.Canceled in one chain.
func TestChaosExplicitCancel(t *testing.T) {
	tag, err := NewTag("1011")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	reading, err := NewReader().ReadContext(ctx, tag, ReadOptions{Seed: 7})
	if err == nil {
		t.Skip("read finished before the 2ms cancel landed")
	}
	if !errors.Is(err, ErrReadCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled read error chain incomplete: %v", err)
	}
	if reading == nil || !reading.Partial {
		t.Fatal("cancelled read did not return a partial Reading")
	}
}

// TestChaosDeterminism: with injection on, equal seeds must reproduce the
// same decode, drop count, and scrub count at every worker count — fault
// decisions are a pure function of (seed, frame index).
func TestChaosDeterminism(t *testing.T) {
	tag, err := NewTag("1011")
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader()
	type fingerprint struct {
		bits              string
		snr               float64
		dropped, scrubbed int
		detected, partial bool
	}
	var want fingerprint
	for i, workers := range []int{1, 2, 4, 8} {
		reading, err := r.ReadContext(context.Background(), tag, ReadOptions{
			Seed:    11,
			Workers: workers,
			Fault:   &FaultOptions{Seed: 11, FrameDropRate: 0.08, CorruptRate: 0.05},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := fingerprint{
			bits:     reading.Bits,
			snr:      reading.SNRdB,
			dropped:  reading.Stats.FramesDropped,
			scrubbed: reading.Stats.SamplesScrubbed,
			detected: reading.Detected,
			partial:  reading.Partial,
		}
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d diverged: %+v vs %+v", workers, got, want)
		}
	}
}

// TestChaosIncrementalScanMatchesFullScan: with 20% of frames dropped or
// corrupted, the incremental point-cloud scan must still match the full-scan
// pipeline byte for byte at every worker count — fault transients are
// exactly the regime where stale hints would bite if the coverage check ever
// let one through.
func TestChaosIncrementalScanMatchesFullScan(t *testing.T) {
	tag, err := NewTag("1011")
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader()
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			opts := ReadOptions{
				Seed:    29,
				Workers: workers,
				Fault:   &FaultOptions{Seed: 29, FrameDropRate: 0.10, CorruptRate: 0.10},
			}
			inc, err := r.ReadContext(context.Background(), tag, opts)
			if err != nil {
				t.Fatalf("incremental read: %v", err)
			}
			opts.DisableIncrementalScan = true
			full, err := r.ReadContext(context.Background(), tag, opts)
			if err != nil {
				t.Fatalf("full-scan read: %v", err)
			}
			if inc.Detected != full.Detected || inc.Bits != full.Bits ||
				inc.SNRdB != full.SNRdB || inc.RSSLossDB != full.RSSLossDB ||
				inc.MedianRSSdBm != full.MedianRSSdBm ||
				inc.Stats.FramesDropped != full.Stats.FramesDropped ||
				inc.Stats.SamplesScrubbed != full.Stats.SamplesScrubbed {
				t.Fatalf("incremental scan diverged under faults:\n inc: %q snr=%v rss=%v dropped=%d\nfull: %q snr=%v rss=%v dropped=%d",
					inc.Bits, inc.SNRdB, inc.MedianRSSdBm, inc.Stats.FramesDropped,
					full.Bits, full.SNRdB, full.MedianRSSdBm, full.Stats.FramesDropped)
			}
			if !inc.Detected || inc.Bits != "1011" {
				t.Fatalf("decode failed through 20%% loss: detected=%v bits=%q", inc.Detected, inc.Bits)
			}
		})
	}
}

// TestChaosScanResetsAfterFaults: every frame that passes through sample
// corruption must restart the incremental scan from a Reset state — counted
// as full scans, one per tainted frame at minimum. Burst faults are used
// because burst frames are always finite, hence always kept and scanned.
func TestChaosScanResetsAfterFaults(t *testing.T) {
	tag, err := NewTag("1011")
	if err != nil {
		t.Fatal(err)
	}
	faultCfg := fault.Config{Seed: 31, BurstRate: 0.15}
	fullCounter := obs.Default.Counter("ros_radar_scan_full_total", "")
	before := fullCounter.Value()
	reading, err := NewReader().Read(tag, ReadOptions{
		Seed:    31,
		Fault:   &FaultOptions{Seed: faultCfg.Seed, BurstRate: faultCfg.BurstRate},
		Workers: 1, // one worker = one scan state: full scans are cold start + refreshes + resets
	})
	if err != nil {
		t.Fatal(err)
	}
	delta := fullCounter.Value() - before
	inj, err := fault.New(faultCfg)
	if err != nil {
		t.Fatal(err)
	}
	kinds := inj.Kinds(reading.Stats.Frames / 2)
	if kinds.Burst == 0 {
		t.Fatal("schedule injected no bursts; raise the rate")
	}
	if delta < int64(kinds.Burst) {
		t.Errorf("only %d full scans over a read with %d burst-tainted frames — faults rode on stale hints", delta, kinds.Burst)
	}
}

// TestChaosFlightRecorder is the forensics contract: every read with
// injected faults must be findable in the flight-recorder ring, carrying the
// injected fault kinds and degradation counters that match the injector's
// deterministic schedule exactly.
func TestChaosFlightRecorder(t *testing.T) {
	tag, err := NewTag("1011")
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader()
	// Silence the background sample so only the policy's always-record rules
	// fire; restore for the rest of the suite.
	prev := obs.DefaultFlight.SetSampleEvery(1 << 30)
	defer obs.DefaultFlight.SetSampleEvery(prev)
	cases := []struct {
		name string
		cfg  fault.Config
		kind string
	}{
		{"drop", fault.Config{Seed: 21, FrameDropRate: 0.15}, "drop"},
		{"corrupt", fault.Config{Seed: 22, CorruptRate: 0.15}, "corrupt"},
		{"burst", fault.Config{Seed: 23, BurstRate: 0.15}, "burst"},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seed := int64(91000 + i)
			reading, err := r.Read(tag, ReadOptions{
				Seed: seed,
				Fault: &FaultOptions{
					Seed:          tc.cfg.Seed,
					FrameDropRate: tc.cfg.FrameDropRate,
					CorruptRate:   tc.cfg.CorruptRate,
					BurstRate:     tc.cfg.BurstRate,
				},
			})
			if err != nil {
				t.Fatalf("read failed: %v", err)
			}
			entry := obs.DefaultFlight.Find(seed)
			if entry == nil {
				t.Fatalf("read with injected %s faults not in the flight ring", tc.kind)
			}
			if reading.FlightSeq != entry.Seq {
				t.Errorf("Reading.FlightSeq = %d, ring entry seq = %d", reading.FlightSeq, entry.Seq)
			}
			if entry.Why != obs.FlightWhyFault {
				t.Errorf("why = %q, want %q", entry.Why, obs.FlightWhyFault)
			}
			// The entry's fault kinds must reproduce the injector's schedule.
			inj, err := fault.New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			poses := reading.Stats.Frames / 2
			kinds := inj.Kinds(poses)
			if kinds.Total() == 0 {
				t.Fatalf("schedule injected nothing over %d poses; raise the rate", poses)
			}
			wantKinds := kinds.Labels()
			if fmt.Sprint(entry.FaultKinds) != fmt.Sprint(wantKinds) {
				t.Errorf("entry fault kinds = %v, want %v", entry.FaultKinds, wantKinds)
			}
			// Degradation counters agree with both the Reading and, for pure
			// frame drops, the schedule itself.
			if entry.FramesDropped != reading.Stats.FramesDropped ||
				entry.SamplesScrubbed != reading.Stats.SamplesScrubbed {
				t.Errorf("entry counters (dropped %d, scrubbed %d) disagree with Reading (%d, %d)",
					entry.FramesDropped, entry.SamplesScrubbed,
					reading.Stats.FramesDropped, reading.Stats.SamplesScrubbed)
			}
			if tc.kind == "drop" && entry.FramesDropped != kinds.Drop {
				t.Errorf("entry dropped %d frames, schedule drops %d", entry.FramesDropped, kinds.Drop)
			}
			if entry.Seed != seed || entry.Workers < 1 || entry.WallMs <= 0 {
				t.Errorf("entry identity incomplete: %+v", entry)
			}
			if entry.ConfigFP == "" {
				t.Error("recorded entry has no config fingerprint")
			}
			if entry.Spans == nil || entry.Spans.Name != "read" {
				t.Errorf("recorded entry has no read span tree: %+v", entry.Spans)
			}
		})
	}
}

// TestChaosFlightRecordsBudgetFailure: a read that fails past the loss
// budget must land in the ring as an error entry carrying the error string.
func TestChaosFlightRecordsBudgetFailure(t *testing.T) {
	tag, err := NewTag("1011")
	if err != nil {
		t.Fatal(err)
	}
	const seed = 91990
	reading, err := NewReader().Read(tag, ReadOptions{
		Seed:  seed,
		Fault: &FaultOptions{Seed: 7, FrameDropRate: 0.9},
	})
	if err == nil {
		t.Fatal("read succeeded with 90% frame loss")
	}
	if reading == nil || reading.FlightSeq < 0 {
		t.Fatalf("failed read not offered to the flight recorder: %+v", reading)
	}
	entry := obs.DefaultFlight.Find(seed)
	if entry == nil {
		t.Fatal("failed read not in the flight ring")
	}
	if entry.Why != obs.FlightWhyError {
		t.Errorf("why = %q, want %q", entry.Why, obs.FlightWhyError)
	}
	if entry.Outcome != "partial" {
		t.Errorf("outcome = %q, want partial", entry.Outcome)
	}
	if entry.Err == "" || !strings.Contains(entry.Err, "frames lost") {
		t.Errorf("entry error %q does not carry the frame-loss cause", entry.Err)
	}
}

// TestChaosRosdBatchFaultIsolation extends the graceful-degradation contract
// to the read service: inside one batched /v1/read, a request whose injected
// faults exceed the loss budget fails alone, with a typed JSON error, while
// every other request in the batch — including a moderately-faulted one —
// completes normally. One tenant's chaos never fails the batch.
func TestChaosRosdBatchFaultIsolation(t *testing.T) {
	srv := rosd.New(rosd.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	batch := rosd.BatchRequest{Reads: []rosd.ReadRequest{
		{Tenant: "clean", Bits: "1111", FrameBudget: 96, Workers: 1, Seed: 1},
		{Tenant: "doomed", Bits: "1111", FrameBudget: 96, Workers: 1, Seed: 2,
			Fault: &rosd.FaultRequest{Seed: 7, DropRate: 0.9}},
		{Tenant: "panicky", Bits: "1111", FrameBudget: 96, Workers: 1, Seed: 3,
			Fault: &rosd.FaultRequest{Seed: 7, PanicRate: 1.0}},
		{Tenant: "degraded", Bits: "1111", FrameBudget: 96, Workers: 1, Seed: 4,
			Fault: &rosd.FaultRequest{Seed: 7, DropRate: 0.05, CorruptRate: 0.05}},
	}}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/read", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("faulted batch answered %d, want 200 with per-request errors", resp.StatusCode)
	}
	var out rosd.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("%d results for 4 reads", len(out.Results))
	}

	if r := out.Results[0]; r.Error != nil || !r.Detected || r.Bits != "1111" {
		t.Errorf("clean read = %+v, want decoded 1111 without error", r)
	}
	if r := out.Results[1]; r.Error == nil || r.Error.Kind != "frame_corrupt" {
		t.Errorf("90%%-drop read = %+v, want typed frame_corrupt error", r)
	} else if !r.Partial {
		t.Error("budget-failed read not marked partial")
	}
	if r := out.Results[2]; r.Error == nil || r.Error.Kind != "frame_corrupt" {
		t.Errorf("all-panic read = %+v, want typed frame_corrupt error", r)
	}
	if r := out.Results[3]; r.Error != nil || !r.Detected || r.FramesDropped == 0 {
		t.Errorf("moderately-faulted read = %+v, want degraded success", r)
	}
}

// TestChaosRosdFaultDeterminism: the service path adds no randomness — the
// same faulted request answers identically on repeat (engine-warm) batches.
func TestChaosRosdFaultDeterminism(t *testing.T) {
	srv := rosd.New(rosd.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := rosd.BatchRequest{Reads: []rosd.ReadRequest{
		{Bits: "1111", FrameBudget: 96, Workers: 1, Seed: 11,
			Fault: &rosd.FaultRequest{Seed: 5, DropRate: 0.1, CorruptRate: 0.1}},
	}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var prev *rosd.ReadResult
	for i := 0; i < 3; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/read", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out rosd.BatchResponse
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		r := out.Results[0]
		if r.Error != nil {
			t.Fatalf("batch %d errored: %+v", i, r.Error)
		}
		if prev != nil {
			if r.Bits != prev.Bits || r.SNRdB != prev.SNRdB ||
				r.FramesDropped != prev.FramesDropped || r.Samples != prev.Samples {
				t.Fatalf("batch %d diverged from batch 0: %+v vs %+v", i, r, *prev)
			}
		} else {
			prev = &r
		}
	}
	if prev.FramesDropped == 0 {
		t.Fatal("fault injection never engaged through the service path")
	}
}
