# Developer entry points. CI runs `make ci`; the race detector is part of
# the gate because the per-frame radar loop runs on a worker pool and the
# obs registry/span substrate is exercised concurrently in its tests.

GO ?= go

# Hot-path micro-benchmarks compared by bench-compare and smoke-tested in CI.
# BenchmarkEndToEndRead exercises the default float32 synthesis lane;
# BenchmarkEndToEndReadF64 is the forced-float64 A/B baseline.
BENCH_HOT := 'BenchmarkEndToEndRead$$|BenchmarkEndToEndReadF64$$|BenchmarkSpotlight$$|BenchmarkDBSCAN|BenchmarkAoASpectrum$$|BenchmarkSynthesize$$|BenchmarkRangeFFTBatched$$'
BENCH_COUNT ?= 5

# Fuzz targets smoked by fuzz-smoke; each runs for FUZZTIME.
FUZZ_TIME ?= 30s

# Synthesis-kernel micro-benchmarks compared by bench-kernel: tone lanes
# (both precisions), batched Gaussian noise (both precisions), fused
# window+FFT plans, the scene-response memo, and the incremental scan.
BENCH_KERNEL := 'BenchmarkToneFill256$$|BenchmarkToneFill32$$|BenchmarkAccumulateRotated256$$|BenchmarkAccumulateRotated32_256$$|BenchmarkGaussNorm$$|BenchmarkGaussFill2048$$|BenchmarkGaussFill32_2048$$|BenchmarkGaussAddNoise1024$$|BenchmarkGaussAddNoise32$$|BenchmarkPlanInverse256$$|BenchmarkSceneResponseMemo$$|BenchmarkSceneResponseDirect$$|BenchmarkPointCloudIncremental$$|BenchmarkPointCloudFull$$'

# Observability overhead budget (percent) enforced by obs-overhead.
OBS_OVERHEAD_PCT ?= 2

.PHONY: ci fmt vet build test race test-purego bench bench-kernel bench-trend bench-baseline bench-compare bench-smoke obs-overhead chaos rosd-chaos fuzz-smoke profile rosd-load rosd-load-smoke

ci: fmt vet build race test-purego

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The portable scalar kernels behind the ros_purego tag, under the race
# detector: the cross-tag agreement tests only mean something if both
# kernel builds stay green.
test-purego:
	$(GO) test -race -tags ros_purego ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Micro-benchmarks of the synthesis front-end kernels under both build
# tags, so a lane-kernel change is measured against the portable baseline
# in one command.
bench-kernel:
	$(GO) test -run xxx -bench $(BENCH_KERNEL) -benchmem ./internal/dsp/ ./internal/radar/ ./internal/scene/
	$(GO) test -run xxx -bench $(BENCH_KERNEL) -benchmem -tags ros_purego ./internal/dsp/ ./internal/radar/ ./internal/scene/

# Append one machine-readable record (per-experiment wall ms + canonical-read
# span timings) to the checked-in trend file. Run before/after perf PRs.
bench-trend:
	$(GO) run ./cmd/rosbench -json -trend BENCH_trend.jsonl

# Canonical read-service load profile: 1k+ concurrent mixed-configuration
# reads against an in-process rosd, appending batch-latency, queue-depth and
# per-tenant goodput/fairness quantiles to the checked-in trend file. 96
# distinct configurations against the default LRU capacity of 64 force
# engine eviction under load (the bounded-residency contract), and the 4x
# flood against armed per-tenant quotas pins the isolation contract in the
# same run. Run alongside bench-trend in PRs that touch the service, the
# client, or the engine/cache layers.
rosd-load:
	$(GO) run ./cmd/rosd-load -reads 1024 -concurrency 32 -configs 96 \
		-tenants 4 -flood 4 -tenant-rate 2 -tenant-burst 200 -trend BENCH_trend.jsonl

# Reduced-scale load smoke for CI: same harness, no trend append.
rosd-load-smoke:
	$(GO) run ./cmd/rosd-load -reads 256 -concurrency 16

# Save the hot-path micro-benchmarks as the comparison baseline (run this on
# the commit you want to compare against, e.g. before a perf change).
bench-baseline:
	$(GO) test -run xxx -bench $(BENCH_HOT) -benchmem -count=$(BENCH_COUNT) ./... > bench-baseline.txt
	@echo "bench-compare baseline saved to bench-baseline.txt"

# Re-run the hot-path micro-benchmarks and compare against the saved
# baseline with benchstat when it is installed (golang.org/x/perf), falling
# back to printing both runs side by side. Both output files are untracked.
bench-compare:
	$(GO) test -run xxx -bench $(BENCH_HOT) -benchmem -count=$(BENCH_COUNT) ./... > bench-new.txt
	@if [ ! -f bench-baseline.txt ]; then \
		cp bench-new.txt bench-baseline.txt; \
		echo "bench-compare: no baseline found; saved this run as bench-baseline.txt"; \
	elif command -v benchstat >/dev/null 2>&1; then \
		benchstat bench-baseline.txt bench-new.txt; \
	else \
		echo "bench-compare: benchstat not installed; baseline vs new:"; \
		grep '^Benchmark' bench-baseline.txt; \
		echo "---"; \
		grep '^Benchmark' bench-new.txt; \
	fi

# One-iteration smoke run of the hot-path micro-benchmarks (CI runs this so a
# benchmark that panics or regresses to non-termination fails the build).
bench-smoke:
	$(GO) test -run xxx -bench $(BENCH_HOT) -benchtime=1x ./...

# Observability overhead gate: run the instrumented end-to-end read against
# the flight-recorder-off baseline and fail when the minimum instrumented
# ns/op regresses more than OBS_OVERHEAD_PCT percent. Run on an idle machine;
# min-of-5 filters scheduler noise.
obs-overhead:
	$(GO) test -run xxx -bench 'BenchmarkEndToEndRead$$|BenchmarkEndToEndReadObsOff$$' -benchtime=10x -count=5 . > obs-overhead.txt
	@awk -v limit=$(OBS_OVERHEAD_PCT) ' \
		$$1 ~ /^BenchmarkEndToEndRead(-[0-9]+)?$$/       { if (on  == 0 || $$3 < on)  on  = $$3 } \
		$$1 ~ /^BenchmarkEndToEndReadObsOff(-[0-9]+)?$$/ { if (off == 0 || $$3 < off) off = $$3 } \
		END { \
			if (on == 0 || off == 0) { print "obs-overhead: benchmark output incomplete"; exit 1 } \
			pct = (on - off) * 100 / off; \
			printf "obs-overhead: instrumented %d ns/op vs obs-off %d ns/op (%+.2f%%, budget %s%%)\n", on, off, pct, limit; \
			if (pct > limit) { print "obs-overhead: over budget"; exit 1 } \
		}' obs-overhead.txt

# CPU and allocation profiles of the canonical end-to-end read, written to
# the untracked profiles/ directory for `go tool pprof`. CI uploads them as
# artifacts next to the flight/trace dumps so a perf regression comes with
# its own profile attached.
profile:
	mkdir -p profiles
	$(GO) test -run xxx -bench 'BenchmarkEndToEndRead$$' -benchtime=20x \
		-cpuprofile profiles/read-cpu.prof -memprofile profiles/read-mem.prof \
		-o profiles/ros.test .
	@echo "profile: wrote profiles/read-cpu.prof and profiles/read-mem.prof"
	@echo "profile: inspect with '$(GO) tool pprof profiles/ros.test profiles/read-cpu.prof'"

# Chaos suite on an idle machine: fault injection, cancellation promptness
# (the 2x-deadline bound holds without -race), typed-error taxonomy, and
# determinism across worker counts. CI runs the same tests under -race with
# the relaxed wall-clock bound.
chaos:
	$(GO) test -run TestChaos -v .

# Service-layer chaos under -race: the rosclient network-chaos harness
# (slow-loris, mid-body drops, malformed/oversized JSON, stalled reads) and
# the rosd survival suite (fairness under flood, deadline shedding, drain
# with zero dropped reads, goroutine-leak regression). Short mode keeps it
# inside CI budgets; run without flags locally for the full-scale profile.
rosd-chaos:
	$(GO) test -race -short -v ./internal/rosclient/
	$(GO) test -race -short -run 'TestFairness|TestDeadline|TestDrain|TestGoroutineLeak|TestParseHardening|TestHealthAndReadiness' -v ./internal/rosd/

# Fuzz each native target for FUZZ_TIME (Go runs one -fuzz target per
# invocation). The checked-in corpora under testdata/fuzz replay on every
# plain `go test`, so past findings are permanent regression tests.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzDecode$$' -fuzztime $(FUZZ_TIME) ./internal/coding/
	$(GO) test -run '^$$' -fuzz 'FuzzPercentile$$' -fuzztime $(FUZZ_TIME) ./internal/dsp/
	$(GO) test -run '^$$' -fuzz 'FuzzPlanRoundTrip$$' -fuzztime $(FUZZ_TIME) ./internal/dsp/
	$(GO) test -run '^$$' -fuzz 'FuzzResample$$' -fuzztime $(FUZZ_TIME) ./internal/dsp/
