# Developer entry points. CI runs `make ci`; the race detector is part of
# the gate because the per-frame radar loop runs on a worker pool and the
# obs registry/span substrate is exercised concurrently in its tests.

GO ?= go

.PHONY: ci fmt vet build test race bench bench-trend

ci: fmt vet build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Append one machine-readable record (per-experiment wall ms + canonical-read
# span timings) to the checked-in trend file. Run before/after perf PRs.
bench-trend:
	$(GO) run ./cmd/rosbench -json -trend BENCH_trend.jsonl
