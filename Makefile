# Developer entry points. CI runs `make ci`; the race detector is part of
# the gate because the per-frame radar loop runs on a worker pool.

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .
