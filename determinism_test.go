package ros

// Determinism regression tests for the parallel radar engine: a read's
// outcome must depend only on ReadOptions.Seed — never on the worker count
// or GOMAXPROCS — because every frame draws its noise from a private
// sub-stream derived from (seed, frame index), and the parallel spotlight
// passes (object classification and decode-mode RCS sampling) draw no
// randomness and collect results in index order.

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"ros/internal/obs"
	"ros/internal/radar"
	"ros/internal/scene"
)

// readCaptureOpts runs one read with the given options and returns the
// reading plus the saved capture bytes (the raw per-frame samples backing
// the decode).
func readCaptureOpts(t *testing.T, r *Reader, opts ReadOptions) (*Reading, []byte) {
	t.Helper()
	tag, err := NewTag("1011")
	if err != nil {
		t.Fatal(err)
	}
	reading, err := r.Read(tag, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reading.Detected {
		t.Fatal("tag not detected")
	}
	path := filepath.Join(t.TempDir(), "capture.json")
	if err := reading.SaveCapture(path, "determinism"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return reading, raw
}

// readCapture runs one seeded read and returns the reading plus the saved
// capture bytes.
func readCapture(t *testing.T, workers int) (*Reading, []byte) {
	t.Helper()
	return readCaptureOpts(t, NewReader(), ReadOptions{Seed: 42, Workers: workers})
}

func TestReadIdenticalAcrossWorkerCounts(t *testing.T) {
	// Worker counts per the spotlight-parallelism acceptance criteria:
	// 1 (the base), 4, and GOMAXPROCS, plus an oversubscribed 8.
	base, baseCapture := readCapture(t, 1)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 8} {
		got, capture := readCapture(t, workers)
		if got.Bits != base.Bits || got.SNRdB != base.SNRdB ||
			got.RSSLossDB != base.RSSLossDB || got.MedianRSSdBm != base.MedianRSSdBm {
			t.Errorf("workers=%d: outcome diverged: bits %q vs %q, SNR %v vs %v",
				workers, got.Bits, base.Bits, got.SNRdB, base.SNRdB)
		}
		if string(capture) != string(baseCapture) {
			t.Errorf("workers=%d: capture samples not byte-identical", workers)
		}
	}
}

func TestReadIdenticalAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	base, baseCapture := readCapture(t, 0)
	runtime.GOMAXPROCS(max(prev, runtime.NumCPU()))
	defer runtime.GOMAXPROCS(prev)
	got, capture := readCapture(t, 0)
	if got.Bits != base.Bits || got.SNRdB != base.SNRdB {
		t.Errorf("GOMAXPROCS changed the outcome: bits %q vs %q, SNR %v vs %v",
			got.Bits, base.Bits, got.SNRdB, base.SNRdB)
	}
	if string(capture) != string(baseCapture) {
		t.Error("GOMAXPROCS changed the capture samples")
	}
}

func TestReadStatsPopulated(t *testing.T) {
	reading, _ := readCapture(t, 2)
	s := reading.Stats
	if s.Frames == 0 || s.FFTCalls == 0 {
		t.Errorf("work counters empty: %+v", s)
	}
	if s.Workers != 2 {
		t.Errorf("workers = %d, want 2", s.Workers)
	}
	if s.Synthesize <= 0 || s.RangeFFT <= 0 || s.Wall <= 0 {
		t.Errorf("stage times not recorded: %+v", s)
	}
}

// TestReadFloat32DecodeMatchesFloat64Reference is the float32 lane's
// end-to-end contract: at the default ADC word the fast lane changes no
// decoded bit. The thermal noise stream is deliberately re-contracted (the
// paired-draw float32 generator batches differently), so SNR and captures
// differ realization-to-realization; detection and the decoded bits must
// not.
func TestReadFloat32DecodeMatchesFloat64Reference(t *testing.T) {
	tag, err := NewTag("1011")
	if err != nil {
		t.Fatal(err)
	}
	fast := NewReader()
	ref := NewReader(WithFloat64Reference())
	for _, seed := range []int64{1, 9, 42} {
		f32, err := fast.Read(tag, ReadOptions{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d f32: %v", seed, err)
		}
		f64, err := ref.Read(tag, ReadOptions{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d f64: %v", seed, err)
		}
		if f32.Detected != f64.Detected || f32.Bits != f64.Bits {
			t.Errorf("seed %d: f32 lane decoded (%v, %q), f64 reference (%v, %q)",
				seed, f32.Detected, f32.Bits, f64.Detected, f64.Bits)
		}
	}
}

// TestReadIdenticalAcrossMemoState pins the scene/radar memo caches'
// value-neutrality: a cold-cache read, a warm-cache repeat, and a
// post-ResetCaches rebuild are all byte-identical.
func TestReadIdenticalAcrossMemoState(t *testing.T) {
	scene.ResetCaches()
	radar.ResetCaches()
	r := NewReader()
	opts := ReadOptions{Seed: 42, Workers: 2}
	base, cold := readCaptureOpts(t, r, opts)
	gauge := obs.Default.Gauge("ros_scene_response_entries", "")
	if gauge.Value() == 0 {
		t.Error("canonical read left the scene response memo empty — memo never engaged")
	}
	_, warm := readCaptureOpts(t, r, opts)
	if string(warm) != string(cold) {
		t.Error("memo-warm read differs from memo-cold read")
	}
	scene.ResetCaches()
	radar.ResetCaches()
	rebuilt, raw := readCaptureOpts(t, r, opts)
	if string(raw) != string(cold) {
		t.Error("post-ResetCaches read differs from the original cold read")
	}
	if rebuilt.Bits != base.Bits || rebuilt.SNRdB != base.SNRdB {
		t.Errorf("post-ResetCaches outcome diverged: %q/%v vs %q/%v",
			rebuilt.Bits, rebuilt.SNRdB, base.Bits, base.SNRdB)
	}
}

// TestReadIdenticalWithIncrementalScanDisabled is the incremental scan's
// exactness contract at the API surface: disabling it changes nothing in
// the read, at any worker count, while the default path demonstrably takes
// the restricted scan.
func TestReadIdenticalWithIncrementalScanDisabled(t *testing.T) {
	r := NewReader()
	incCounter := obs.Default.Counter("ros_radar_scan_incremental_total", "")
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			opts := ReadOptions{Seed: 42, Workers: workers}
			before := incCounter.Value()
			inc, incCap := readCaptureOpts(t, r, opts)
			if incCounter.Value() == before {
				t.Error("default read never took the incremental scan path")
			}
			opts.DisableIncrementalScan = true
			full, fullCap := readCaptureOpts(t, r, opts)
			if inc.Bits != full.Bits || inc.SNRdB != full.SNRdB ||
				inc.RSSLossDB != full.RSSLossDB || inc.MedianRSSdBm != full.MedianRSSdBm {
				t.Errorf("incremental scan changed the outcome: %q/%v vs %q/%v",
					inc.Bits, inc.SNRdB, full.Bits, full.SNRdB)
			}
			if string(incCap) != string(fullCap) {
				t.Error("incremental scan changed the capture samples")
			}
		})
	}
}

// TestReadIdenticalUnderFullTelemetry is the observability-neutrality
// contract: with the flight recorder capturing every read and the runtime
// poller sampling at a tight interval, reads must stay byte-identical across
// worker counts — the telemetry layer draws no randomness and never feeds
// back into the simulation.
func TestReadIdenticalUnderFullTelemetry(t *testing.T) {
	prevEvery := obs.DefaultFlight.SetSampleEvery(1) // record every read
	defer obs.DefaultFlight.SetSampleEvery(prevEvery)
	rt := obs.StartRuntime(obs.Default, time.Millisecond)
	defer rt.Stop()

	base, baseCapture := readCapture(t, 1)
	if base.FlightSeq < 0 {
		t.Fatal("sample-every 1 but the read was not flight-recorded")
	}
	for _, workers := range []int{2, 4, 8} {
		got, capture := readCapture(t, workers)
		if got.Bits != base.Bits || got.SNRdB != base.SNRdB ||
			got.RSSLossDB != base.RSSLossDB || got.MedianRSSdBm != base.MedianRSSdBm {
			t.Errorf("workers=%d under telemetry: outcome diverged: bits %q vs %q, SNR %v vs %v",
				workers, got.Bits, base.Bits, got.SNRdB, base.SNRdB)
		}
		if string(capture) != string(baseCapture) {
			t.Errorf("workers=%d under telemetry: capture samples not byte-identical", workers)
		}
		if got.FlightSeq < 0 {
			t.Errorf("workers=%d: read not flight-recorded at sample-every 1", workers)
		}
		// The flight entry itself agrees on everything deterministic.
		a := obs.DefaultFlight.Find(42)
		if a == nil {
			t.Fatalf("workers=%d: seed 42 missing from the flight ring", workers)
		}
		if a.Outcome != "ok" || a.FramesDropped != 0 || len(a.FaultKinds) != 0 {
			t.Errorf("workers=%d: clean read recorded as %+v", workers, a)
		}
	}
}
