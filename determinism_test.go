package ros

// Determinism regression tests for the parallel radar engine: a read's
// outcome must depend only on ReadOptions.Seed — never on the worker count
// or GOMAXPROCS — because every frame draws its noise from a private
// sub-stream derived from (seed, frame index), and the parallel spotlight
// passes (object classification and decode-mode RCS sampling) draw no
// randomness and collect results in index order.

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"ros/internal/obs"
)

// readCapture runs one seeded read and returns the reading plus the saved
// capture bytes (the raw per-frame samples backing the decode).
func readCapture(t *testing.T, workers int) (*Reading, []byte) {
	t.Helper()
	tag, err := NewTag("1011")
	if err != nil {
		t.Fatal(err)
	}
	reading, err := NewReader().Read(tag, ReadOptions{Seed: 42, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if !reading.Detected {
		t.Fatal("tag not detected")
	}
	path := filepath.Join(t.TempDir(), "capture.json")
	if err := reading.SaveCapture(path, "determinism"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return reading, raw
}

func TestReadIdenticalAcrossWorkerCounts(t *testing.T) {
	// Worker counts per the spotlight-parallelism acceptance criteria:
	// 1 (the base), 4, and GOMAXPROCS, plus an oversubscribed 8.
	base, baseCapture := readCapture(t, 1)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 8} {
		got, capture := readCapture(t, workers)
		if got.Bits != base.Bits || got.SNRdB != base.SNRdB ||
			got.RSSLossDB != base.RSSLossDB || got.MedianRSSdBm != base.MedianRSSdBm {
			t.Errorf("workers=%d: outcome diverged: bits %q vs %q, SNR %v vs %v",
				workers, got.Bits, base.Bits, got.SNRdB, base.SNRdB)
		}
		if string(capture) != string(baseCapture) {
			t.Errorf("workers=%d: capture samples not byte-identical", workers)
		}
	}
}

func TestReadIdenticalAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	base, baseCapture := readCapture(t, 0)
	runtime.GOMAXPROCS(max(prev, runtime.NumCPU()))
	defer runtime.GOMAXPROCS(prev)
	got, capture := readCapture(t, 0)
	if got.Bits != base.Bits || got.SNRdB != base.SNRdB {
		t.Errorf("GOMAXPROCS changed the outcome: bits %q vs %q, SNR %v vs %v",
			got.Bits, base.Bits, got.SNRdB, base.SNRdB)
	}
	if string(capture) != string(baseCapture) {
		t.Error("GOMAXPROCS changed the capture samples")
	}
}

func TestReadStatsPopulated(t *testing.T) {
	reading, _ := readCapture(t, 2)
	s := reading.Stats
	if s.Frames == 0 || s.FFTCalls == 0 {
		t.Errorf("work counters empty: %+v", s)
	}
	if s.Workers != 2 {
		t.Errorf("workers = %d, want 2", s.Workers)
	}
	if s.Synthesize <= 0 || s.RangeFFT <= 0 || s.Wall <= 0 {
		t.Errorf("stage times not recorded: %+v", s)
	}
}

// TestReadIdenticalUnderFullTelemetry is the observability-neutrality
// contract: with the flight recorder capturing every read and the runtime
// poller sampling at a tight interval, reads must stay byte-identical across
// worker counts — the telemetry layer draws no randomness and never feeds
// back into the simulation.
func TestReadIdenticalUnderFullTelemetry(t *testing.T) {
	prevEvery := obs.DefaultFlight.SetSampleEvery(1) // record every read
	defer obs.DefaultFlight.SetSampleEvery(prevEvery)
	rt := obs.StartRuntime(obs.Default, time.Millisecond)
	defer rt.Stop()

	base, baseCapture := readCapture(t, 1)
	if base.FlightSeq < 0 {
		t.Fatal("sample-every 1 but the read was not flight-recorded")
	}
	for _, workers := range []int{2, 4, 8} {
		got, capture := readCapture(t, workers)
		if got.Bits != base.Bits || got.SNRdB != base.SNRdB ||
			got.RSSLossDB != base.RSSLossDB || got.MedianRSSdBm != base.MedianRSSdBm {
			t.Errorf("workers=%d under telemetry: outcome diverged: bits %q vs %q, SNR %v vs %v",
				workers, got.Bits, base.Bits, got.SNRdB, base.SNRdB)
		}
		if string(capture) != string(baseCapture) {
			t.Errorf("workers=%d under telemetry: capture samples not byte-identical", workers)
		}
		if got.FlightSeq < 0 {
			t.Errorf("workers=%d: read not flight-recorded at sample-every 1", workers)
		}
		// The flight entry itself agrees on everything deterministic.
		a := obs.DefaultFlight.Find(42)
		if a == nil {
			t.Fatalf("workers=%d: seed 42 missing from the flight ring", workers)
		}
		if a.Outcome != "ok" || a.FramesDropped != 0 || len(a.FaultKinds) != 0 {
			t.Errorf("workers=%d: clean read recorded as %+v", workers, a)
		}
	}
}
