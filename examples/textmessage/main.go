// Textmessage: an error-protected multi-tag message board. A short text is
// packed onto a row of 4-bit tags with Hamming(7,4) protection (Sec 8's
// error-correction suggestion), every tag is read by a simulated drive-by,
// one tag is vandalized (a stack knocked off, flipping a bit), and the
// decoder still reconstructs the text.
package main

import (
	"fmt"
	"log"

	"ros"
)

func main() {
	message := []byte("EXIT 12")
	tags, err := ros.EncodeMessage(message)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("message %q packed onto %d five-bit tags (Hamming(7,4)+parity+framing):\n  %v\n\n",
		message, len(tags), tags)

	// Read every tag with the radar.
	reader := ros.NewReader()
	decoded := make([]string, len(tags))
	for i, bits := range tags {
		tag, err := ros.NewTag(bits)
		if err != nil {
			log.Fatal(err)
		}
		reading, err := reader.Read(tag, ros.ReadOptions{
			Standoff: 3, SpeedMPS: 5, Seed: int64(40 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		if !reading.Detected {
			log.Fatalf("tag %d (%s) missed", i, bits)
		}
		decoded[i] = reading.Bits
	}

	// Vandalize one read: flip the first bit of tag 3.
	flipped := []byte(decoded[3])
	if flipped[0] == '0' {
		flipped[0] = '1'
	} else {
		flipped[0] = '0'
	}
	decoded[3] = string(flipped)
	fmt.Printf("tag 3 vandalized: %s -> %s\n\n", tags[3], decoded[3])

	back, corrected, err := ros.DecodeMessage(decoded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed %q with %d bit(s) corrected\n", back, corrected)
	if string(back) != string(message) {
		log.Fatal("message corrupted")
	}
}
