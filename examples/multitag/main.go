// Multitag: scaling the message beyond one tag's capacity. Sec 5.3 caps a
// single practical tag at ~4 bits (far-field growth), so longer messages are
// split across side-by-side tags like advertising boards. This example also
// contrasts the TI evaluation radar with a commercial front end (Sec 8),
// which extends the reading range from ~7 m to ~52 m.
package main

import (
	"fmt"
	"log"

	"ros"
)

func main() {
	// An 8-bit message split across two 4-bit tags.
	message := [2]string{"1011", "0110"}
	fmt.Printf("8-bit message %s+%s on two side-by-side tags\n\n", message[0], message[1])

	reader := ros.NewReader()
	decoded := ""
	for i, bits := range message {
		tag, err := ros.NewTag(bits)
		if err != nil {
			log.Fatal(err)
		}
		// Tags are separated so their spread angle exceeds the radar's
		// half beamwidth (paper: >= 1.53 m at 6 m); each pass reads one.
		reading, err := reader.Read(tag, ros.ReadOptions{
			Standoff: 3,
			SpeedMPS: 5,
			Seed:     int64(10 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		if !reading.Detected {
			log.Fatalf("tag %d missed", i)
		}
		fmt.Printf("tag %d: decoded %q (SNR %.1f dB)\n", i, reading.Bits, reading.SNRdB)
		decoded += reading.Bits
	}
	fmt.Printf("\nreassembled message: %s\n\n", decoded)

	// Range comparison (Sec 5.3 / Sec 8).
	ti := ros.NewReader()
	com := ros.NewReader(ros.WithCommercialFrontEnd())
	fmt.Printf("reading range, TI eval radar:        %5.1f m\n", ti.MaxRange())
	fmt.Printf("reading range, commercial front end: %5.1f m\n", com.MaxRange())
}
