// Quickstart: design an RoS tag for a 4-bit message, print its physical
// layout, then read it back with a simulated vehicle radar.
package main

import (
	"fmt"
	"log"

	"ros"
)

func main() {
	// 1. Design a passive tag carrying the bits "1011".
	tag, err := ros.NewTag("1011")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("designed a %q tag: %.1f cm wide, %.1f cm tall\n",
		tag.Bits(), tag.Width()*100, tag.Height()*100)
	for _, p := range tag.Layout() {
		state := "mount a PSVAA stack"
		if !p.Present {
			state = "leave empty"
		}
		fmt.Printf("  slot %d at %+6.1f mm: %s\n", p.Slot, p.Position*1e3, state)
	}
	fmt.Printf("readable beyond %.1f m (far field) out to %.1f m (link budget)\n\n",
		tag.FarFieldDistance(), ros.NewReader().MaxRange())

	// 2. Drive past it with a radar-equipped vehicle and decode.
	reading, err := ros.NewReader().Read(tag, ros.ReadOptions{
		Standoff: 3, // one lane away
		SpeedMPS: 5,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !reading.Detected {
		log.Fatal("tag not detected")
	}
	fmt.Printf("radar decoded %q at %.1f dB SNR (BER %.2g)\n",
		reading.Bits, reading.SNRdB, reading.BER)
}
