// Drivethrough: the paper's motivating scenario (Fig 1) — a sedan passes a
// radar-readable speed-limit sign at driving speed, from different lanes,
// among ordinary roadside objects. Message "1111" stands for "traffic light
// ahead" as in the paper's illustration.
package main

import (
	"fmt"
	"log"

	"ros"
)

// lane maps a lane index to the radar-to-curb distance in meters.
func lane(i int) float64 { return 2.0 + 1.5*float64(i) }

func main() {
	tag, err := ros.NewSignTag(ros.SignTrafficLightAhead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("roadside sign: %q (bits %s)\n", ros.SignTrafficLightAhead, tag.Bits())
	fmt.Println("sedan at 25 mph, radar among parking meters, lamps, and trees")
	fmt.Println()

	reader := ros.NewReader()
	const mph25 = 25 * 0.44704
	for i := 1; i <= 3; i++ {
		d := lane(i)
		reading, err := reader.Read(tag, ros.ReadOptions{
			Standoff:    d,
			SpeedMPS:    mph25,
			WithClutter: true,
			Seed:        int64(100 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		status := "missed"
		if reading.Detected {
			if sign, err := ros.ParseSign(reading.Bits); err == nil && reading.Bits == tag.Bits() {
				status = fmt.Sprintf("read %q, SNR %.1f dB (BER %.2g)",
					sign, reading.SNRdB, reading.BER)
			} else {
				status = fmt.Sprintf("bit errors: got %q", reading.Bits)
			}
		}
		fmt.Printf("lane %d (%.1f m away): %s\n", i, d, status)
	}
	fmt.Println()
	fmt.Printf("(paper Sec 7.2: decodable across lanes up to ~6 m with the TI radar)\n")
}
