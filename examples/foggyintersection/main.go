// Foggyintersection: the adverse-weather scenario of Fig 16c. A camera
// would be blinded by heavy fog; the RoS tag's radar link barely notices it
// (2 dB per 100 m of one-way attenuation at 79 GHz). A crosswalk-warning
// tag is read under three fog levels and with a pedestrian standing nearby.
package main

import (
	"fmt"
	"log"

	"ros"
)

func main() {
	tag, err := ros.NewTag("1001") // "crosswalk ahead"
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("crosswalk-warning tag (bits 1001) at an intersection")
	fmt.Println()

	reader := ros.NewReader()
	for _, fog := range []ros.FogLevel{ros.FogClear, ros.FogLight, ros.FogHeavy} {
		reading, err := reader.Read(tag, ros.ReadOptions{
			Standoff:    3,
			SpeedMPS:    7,
			Fog:         fog,
			WithClutter: true,
			Seed:        7,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !reading.Detected {
			fmt.Printf("%-10s tag missed\n", fog)
			continue
		}
		fmt.Printf("%-10s decoded %q  SNR %5.1f dB  RSS %5.1f dBm\n",
			fog, reading.Bits, reading.SNRdB, reading.MedianRSSdBm)
	}
	fmt.Println()
	fmt.Println("(paper Fig 16c: median SNR stays above 15 dB at every fog level)")
}
