package ros

import "ros/internal/signs"

// Sign re-exports the 4-bit road-sign catalog (Fig 1 of the paper gives
// "1111 = traffic light ahead").
type Sign = signs.Sign

// The encodable sign catalog.
const (
	SignSpeedLimit25      = signs.SignSpeedLimit25
	SignSpeedLimit35      = signs.SignSpeedLimit35
	SignSpeedLimit45      = signs.SignSpeedLimit45
	SignSpeedLimit55      = signs.SignSpeedLimit55
	SignSpeedLimit65      = signs.SignSpeedLimit65
	SignStopAhead         = signs.SignStopAhead
	SignYieldAhead        = signs.SignYieldAhead
	SignCrosswalkAhead    = signs.SignCrosswalkAhead
	SignSchoolZone        = signs.SignSchoolZone
	SignLaneEndsMerge     = signs.SignLaneEndsMerge
	SignSharpCurve        = signs.SignSharpCurve
	SignRoadWorkAhead     = signs.SignRoadWorkAhead
	SignLowClearance      = signs.SignLowClearance
	SignRailroadCrossing  = signs.SignRailroadCrossing
	SignTrafficLightAhead = signs.SignTrafficLightAhead
)

// NewSignTag designs a tag carrying a catalog sign.
func NewSignTag(s Sign, opts ...TagOption) (*Tag, error) {
	bits, err := s.Bits()
	if err != nil {
		return nil, err
	}
	return NewTag(bits, opts...)
}

// ParseSign recovers the catalog sign from decoded tag bits.
func ParseSign(bits string) (Sign, error) {
	return signs.Parse(bits)
}

// EncodeMessage packs an arbitrary byte message onto 4-bit tags with
// Hamming(7,4) error protection (two tag pairs per byte); see
// DecodeMessage.
func EncodeMessage(data []byte) ([]string, error) {
	return signs.EncodeMessage(data)
}

// DecodeMessage reassembles a byte message from decoded tag bit strings,
// correcting up to one bit error per tag pair. It returns the message and
// how many bits were corrected.
func DecodeMessage(tags []string) (data []byte, corrected int, err error) {
	return signs.DecodeMessage(tags)
}
