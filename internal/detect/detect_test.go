package detect

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ros/internal/beamshape"
	"ros/internal/coding"
	"ros/internal/em"
	"ros/internal/geom"
	"ros/internal/radar"
	"ros/internal/scene"
)

// buildScene assembles the Fig 11 illustration: a tag at the origin plus a
// tripod 1 m down the road.
func buildScene(t testing.TB, bits string, withTripod bool, rng *rand.Rand) *scene.Scene {
	t.Helper()
	b, err := coding.ParseBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := coding.NewLayout(b, coding.DefaultDelta())
	if err != nil {
		t.Fatal(err)
	}
	tag, err := scene.NewTag(layout, beamshape.Shaped(32), geom.Vec3{})
	if err != nil {
		t.Fatal(err)
	}
	sc := &scene.Scene{Tags: []*scene.Tag{tag}}
	if withTripod {
		sc.Clutter = append(sc.Clutter, scene.NewObject(scene.ClassTripod, geom.Vec3{X: 1.0}, rng))
	}
	return sc
}

// passPositions builds a decimated drive-by: the cart pass of Sec 7.1 at
// 3 m standoff covering +/-4 m, sampled at enough frames for Nyquist.
func passPositions(standoff float64, frames int) []geom.Vec3 {
	out := make([]geom.Vec3, frames)
	for i := range out {
		x := -4 + 8*float64(i)/float64(frames-1)
		out[i] = geom.Vec3{X: x, Y: standoff, Z: 0}
	}
	return out
}

func TestPipelineDetectsAndSeparatesTagFromTripod(t *testing.T) {
	seed := int64(1)
	rng := rand.New(rand.NewSource(1))
	sc := buildScene(t, "1111", true, rng)
	p := NewPipeline(radar.TI1443())
	truth := passPositions(3, 240)
	res, err := p.Run(sc, truth, truth, geom.Vec3{X: 2}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) < 2 {
		t.Fatalf("found %d objects, want tag + tripod (merged points: %d)", len(res.Objects), len(res.MergedPoints))
	}
	if res.TagIndex < 0 {
		t.Fatalf("tag not identified; objects: %+v", res.Objects)
	}
	tag := res.Objects[res.TagIndex]
	// The tag centroid is near the origin.
	if tag.Centroid.Norm() > 0.3 {
		t.Errorf("tag centroid at %v, want near origin", tag.Centroid)
	}
	// Exactly one object classified as tag (no false alarm, Sec 7.2).
	count := 0
	for _, o := range res.Objects {
		if o.IsTag {
			count++
		}
	}
	if count != 1 {
		t.Errorf("%d objects classified as tag, want 1: %+v", count, res.Objects)
	}
}

func TestTagRSSLossNearThirteenDB(t *testing.T) {
	seed := int64(2)
	rng := rand.New(rand.NewSource(2))
	sc := buildScene(t, "1111", false, rng)
	p := NewPipeline(radar.TI1443())
	truth := passPositions(3, 240)
	res, err := p.Run(sc, truth, truth, geom.Vec3{X: 2}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.TagIndex < 0 {
		t.Fatal("tag not found")
	}
	loss := res.Objects[res.TagIndex].RSSLossDB
	// Fig 13a: the tag's median RSS loss is ~13 dB.
	if loss < 9 || loss > 15 {
		t.Errorf("tag RSS loss = %g dB, want ~13", loss)
	}
}

func TestClutterRSSLossSixteenToNineteen(t *testing.T) {
	seed := int64(3)
	rng := rand.New(rand.NewSource(3))
	sc := buildScene(t, "1111", false, rng)
	lamp := scene.NewObject(scene.ClassStreetLamp, geom.Vec3{X: 1.2}, rng)
	sc.Clutter = append(sc.Clutter, lamp)
	p := NewPipeline(radar.TI1443())
	truth := passPositions(3, 240)
	res, err := p.Run(sc, truth, truth, geom.Vec3{X: 2}, seed)
	if err != nil {
		t.Fatal(err)
	}
	// Find the lamp cluster (centroid near x = 1.2).
	found := false
	for _, o := range res.Objects {
		if math.Abs(o.Centroid.X-1.2) < 0.3 && math.Abs(o.Centroid.Y) < 0.3 {
			found = true
			if o.RSSLossDB < 14 || o.RSSLossDB > 23 {
				t.Errorf("lamp RSS loss = %g dB, want 16-19", o.RSSLossDB)
			}
			if o.IsTag {
				t.Error("lamp classified as tag")
			}
		}
	}
	if !found {
		t.Errorf("lamp cluster not found: %+v", res.Objects)
	}
}

func TestTagSamplesFeedDecoder(t *testing.T) {
	seed := int64(4)
	rng := rand.New(rand.NewSource(4))
	sc := buildScene(t, "1111", false, rng)
	p := NewPipeline(radar.TI1443())
	truth := passPositions(3, 300)
	res, err := p.Run(sc, truth, truth, geom.Vec3{X: 2}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.TagIndex < 0 {
		t.Fatal("tag not found")
	}
	if len(res.TagU) < 100 {
		t.Fatalf("only %d tag samples", len(res.TagU))
	}
	dec, err := coding.NewDecoder(4, coding.DefaultDelta(), em.Lambda79())
	if err != nil {
		t.Fatal(err)
	}
	out, err := dec.Decode(res.TagU, res.TagRSS)
	if err != nil {
		t.Fatal(err)
	}
	if got := coding.BitsString(out.Bits); got != "1111" {
		t.Errorf("end-to-end decode = %q, want 1111 (SNR %g dB)", got, out.SNRdB)
	}
	if out.SNRdB < 10 {
		t.Errorf("end-to-end SNR = %g dB, want >= 10", out.SNRdB)
	}
}

func TestMinClusterFramesDefaultAligned(t *testing.T) {
	// Regression for the 10-vs-25 inconsistency: the constructor default,
	// the zero-value fallback in Run, and the field doc must all agree on
	// the paper's Sec 6 density filter.
	p := NewPipeline(radar.TI1443())
	if p.MinClusterFrames != 25 {
		t.Fatalf("NewPipeline MinClusterFrames = %d, want 25 (Sec 6 density filter)", p.MinClusterFrames)
	}
	rng := rand.New(rand.NewSource(11))
	sc := buildScene(t, "1111", true, rng)
	truth := passPositions(3, 150)
	a, err := p.Run(sc, truth, truth, geom.Vec3{X: 2}, 11)
	if err != nil {
		t.Fatal(err)
	}
	q := NewPipeline(radar.TI1443())
	q.MinClusterFrames = 0 // Run must fall back to the same default
	b, err := q.Run(sc, truth, truth, geom.Vec3{X: 2}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Objects, b.Objects) || a.TagIndex != b.TagIndex ||
		!reflect.DeepEqual(a.TagU, b.TagU) || !reflect.DeepEqual(a.TagRSS, b.TagRSS) {
		t.Errorf("zero-value MinClusterFrames diverged from the constructor default:\n%+v\nvs\n%+v",
			a.Objects, b.Objects)
	}
}

func TestRunErrors(t *testing.T) {
	seed := int64(5)
	rng := rand.New(rand.NewSource(5))
	sc := buildScene(t, "11", false, rng)
	p := NewPipeline(radar.TI1443())
	if _, err := p.Run(sc, nil, nil, geom.Vec3{}, seed); err == nil {
		t.Error("empty trajectory accepted")
	}
	truth := passPositions(3, 10)
	if _, err := p.Run(sc, truth, truth[:5], geom.Vec3{}, seed); err == nil {
		t.Error("mismatched estimates accepted")
	}
	bad := p
	bad.Radar.NumRx = 0
	if _, err := bad.Run(sc, truth, truth, geom.Vec3{}, seed); err == nil {
		t.Error("invalid radar accepted")
	}
}

func TestNoTagScene(t *testing.T) {
	seed := int64(6)
	rng := rand.New(rand.NewSource(6))
	sc := &scene.Scene{Clutter: []*scene.Object{
		scene.NewObject(scene.ClassStreetLamp, geom.Vec3{}, rng),
	}}
	p := NewPipeline(radar.TI1443())
	truth := passPositions(3, 150)
	res, err := p.Run(sc, truth, truth, geom.Vec3{X: 2}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.TagIndex >= 0 {
		t.Errorf("false alarm: lamp classified as tag: %+v", res.Objects[res.TagIndex])
	}
}
