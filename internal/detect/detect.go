// Package detect implements the tag detection pipeline of Sec 6: per-frame
// radar point clouds are merged using the vehicle's (estimated) ego
// positions, clustered with DBSCAN, filtered by point density, and
// "spotlighted" with beamforming in both polarization modes. The two
// features of Fig 13 — polarization RSS loss and point-cloud size — then
// single out the RoS tag among roadside objects, and the tag's per-frame
// decode-mode RSS over u = cos(theta) feeds the spatial decoder.
//
// The per-frame synthesis loop — by far the dominant cost of a drive-by —
// runs on the sweep worker pool. Every frame draws its randomness from a
// private rand.Rand seeded with sweep.SubSeed(seed, frame), so a run's
// output depends only on the seed and is byte-identical at any worker
// count. The spotlight passes (per-object classification and the decode-mode
// RCS sampling) fan out on the same pool: objects and frames are independent
// and draw no randomness, and results are collected in index order, so the
// output stays byte-identical at any worker count there too.
//
// Robustness: RunContext threads a context through every stage with
// cooperative cancellation checks at frame and stage boundaries — a
// cancelled or deadline-expired run returns promptly with a partial Result
// (Partial set, frames completed so far) and an error matching both
// roserr.ErrReadCancelled and the context cause. The optional fault layer
// (Pipeline.Fault) injects deterministic frame drops, sample corruption,
// worker panics and latency; the pipeline degrades gracefully — non-finite
// samples are scrubbed before the range transform, lost frames are excluded
// from the aggregate up to MaxFrameLoss, and beyond that budget the run
// fails with a typed roserr.ErrFrameCorrupt.
package detect

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"ros/internal/cluster"
	"ros/internal/dsp"
	"ros/internal/em"
	"ros/internal/fault"
	"ros/internal/geom"
	"ros/internal/obs"
	"ros/internal/radar"
	"ros/internal/roserr"
	"ros/internal/scene"
	"ros/internal/sweep"
)

// Pipeline-level metrics, accumulated on the Default registry once per run
// (never per frame, so the hot loop pays nothing for them).
var (
	mRuns = obs.Default.Counter("ros_pipeline_runs_total",
		"detection pipeline runs")
	mFrames = obs.Default.Counter("ros_frames_synthesized_total",
		"radar frames synthesized (two polarization modes per pose)")
	mFFTs = obs.Default.Counter("ros_fft_calls_total",
		"fast-time FFTs run by the range transforms")
	mTagsFound = obs.Default.Counter("ros_tags_detected_total",
		"pipeline runs that classified a tag")
	mFramesDropped = obs.Default.Counter("ros_frames_dropped_total",
		"frame poses lost to drops, corruption, or worker failure")
	mFramesDroppedByKind = obs.Default.CounterVec("ros_frames_dropped_by_kind_total",
		"frame poses lost, by failure kind", "kind")
	mSamplesScrubbed = obs.Default.Counter("ros_samples_scrubbed_total",
		"non-finite baseband samples zeroed before the range transform")
)

// Pipeline holds the detector configuration.
type Pipeline struct {
	// Radar is the interrogating radar.
	Radar radar.Config
	// ClusterEps is the DBSCAN neighbourhood radius in meters (default
	// 0.25).
	ClusterEps float64
	// ClusterMinPts is the DBSCAN core threshold (default 10; real object
	// clusters accumulate hundreds of points over a pass, so a strict core
	// rule keeps sparse strays from bridging neighbouring objects).
	ClusterMinPts int
	// MinClusterFrames drops clusters seen in too few frames (default 25,
	// the density filter of Sec 6; real objects accumulate hundreds of
	// points over a pass while multipath ghosts appear in a handful).
	MinClusterFrames int
	// TagMaxRSSLossDB is the RSS-loss feature threshold: tags lose less
	// than this when the radar switches polarization (default 14.2 dB,
	// between the tag's ~13 and clutter's 16-19 dB, Fig 13a; weak clutter
	// reads slightly below its true rejection near the noise floor, so the
	// threshold leans toward the tag's side).
	TagMaxRSSLossDB float64
	// TagMaxExtent is the point-cloud size feature threshold in meters
	// (default 0.18: the tag's compact cloud measures 0.08-0.16 after
	// range quantization, angle-estimation blur, and platform vibration at
	// driving speeds, while meters/lamps/signs/trees measure 0.18-0.7,
	// Fig 13b; pedestrians can slip under it but fail the RSS-loss test).
	TagMaxExtent float64
	// ForceTagNear, when non-nil, marks the cluster nearest this world
	// position (within 0.5 m) as the tag regardless of the feature test —
	// the controlled micro-benchmarks of Fig 16a place tags at known
	// positions.
	ForceTagNear *geom.Vec2
	// DecodeAzimuthCapDeg limits the azimuth (degrees from boresight)
	// within which the tag's RCS is sampled for decoding; default 60, the
	// radar antenna FoV. Fig 17 sweeps it to truncate the angular view.
	DecodeAzimuthCapDeg float64
	// Workers is the worker count for the per-frame synthesis loop and the
	// spotlight passes; 0 uses GOMAXPROCS. The output is identical at any
	// worker count.
	Workers int
	// Detect options for per-frame point clouds.
	Detect radar.DetectOptions
	// Fault injects deterministic faults into the frame loop (nil = off;
	// see internal/fault). With Fault nil the pipeline's output is
	// byte-identical to a build that never loads the fault layer.
	Fault *fault.Injector
	// MaxFrameLoss is the tolerated fraction of frame poses lost to drops,
	// corruption, or worker failure before the run fails with
	// roserr.ErrFrameCorrupt (default 0.5). The decoder reads from an
	// aggregate of azimuth samples, so partial frame loss degrades SNR
	// rather than correctness.
	MaxFrameLoss float64
	// Session, when non-nil, supplies the radar resource handle the run
	// draws its synthesis plan (and with it steering tables, transform
	// plans, and frame pools) from; nil uses the process-wide default
	// session. Results are byte-identical either way.
	Session *radar.Session
	// ScanStates, when non-nil, pools the per-worker incremental scan
	// states; nil uses a process-wide pool. Like the hint state itself it
	// never affects output, only how much work the scan does.
	ScanStates *radar.ScanStatePool
}

// NewPipeline returns a pipeline with the paper's defaults around the given
// radar.
func NewPipeline(cfg radar.Config) *Pipeline {
	return &Pipeline{
		Radar:               cfg,
		ClusterEps:          0.25,
		ClusterMinPts:       10,
		MinClusterFrames:    25,
		TagMaxRSSLossDB:     14.2,
		TagMaxExtent:        0.18,
		DecodeAzimuthCapDeg: 60,
	}
}

// Validate reports whether the pipeline configuration is usable. Zero values
// mean "use the default" and pass; negative or out-of-range values are
// rejected with roserr.ErrConfig, so fault injection can never be confused
// with misconfiguration.
func (p *Pipeline) Validate() error {
	if err := p.Radar.Validate(); err != nil {
		return err
	}
	switch {
	case p.ClusterEps < 0 || math.IsNaN(p.ClusterEps):
		return fmt.Errorf("detect: %w: negative cluster eps %g", roserr.ErrConfig, p.ClusterEps)
	case p.ClusterMinPts < 0:
		return fmt.Errorf("detect: %w: negative cluster min points %d", roserr.ErrConfig, p.ClusterMinPts)
	case p.MinClusterFrames < 0:
		return fmt.Errorf("detect: %w: negative min cluster frames %d", roserr.ErrConfig, p.MinClusterFrames)
	case p.TagMaxRSSLossDB < 0 || math.IsNaN(p.TagMaxRSSLossDB):
		return fmt.Errorf("detect: %w: negative RSS-loss threshold %g", roserr.ErrConfig, p.TagMaxRSSLossDB)
	case p.TagMaxExtent < 0 || math.IsNaN(p.TagMaxExtent):
		return fmt.Errorf("detect: %w: negative extent threshold %g", roserr.ErrConfig, p.TagMaxExtent)
	case p.DecodeAzimuthCapDeg < 0 || p.DecodeAzimuthCapDeg > 90:
		return fmt.Errorf("detect: %w: decode azimuth cap %g outside [0, 90]", roserr.ErrConfig, p.DecodeAzimuthCapDeg)
	case p.Workers < 0:
		return fmt.Errorf("detect: %w: negative worker count %d", roserr.ErrConfig, p.Workers)
	case p.MaxFrameLoss < 0 || p.MaxFrameLoss > 1 || math.IsNaN(p.MaxFrameLoss):
		return fmt.Errorf("detect: %w: max frame loss %g outside [0, 1]", roserr.ErrConfig, p.MaxFrameLoss)
	}
	return nil
}

// ObjectReport describes one clustered roadside object.
type ObjectReport struct {
	// Centroid is the estimated object location (world frame).
	Centroid geom.Vec2
	// Extent is the point-cloud size feature (meters).
	Extent float64
	// Points is the number of merged point-cloud detections.
	Points int
	// RSSLossDB is the median polarization RSS loss feature.
	RSSLossDB float64
	// MedianRSSDetectDBm is the median detection-mode spotlight RSS.
	MedianRSSDetectDBm float64
	// IsTag is the two-feature classification verdict.
	IsTag bool
}

// Stats counts the work done by one pipeline run. It is a flat view derived
// from the run's span tree (Result.Span); per-stage times for the parallel
// frame loop are summed across workers (CPU time, not wall time), WallNS is
// the end-to-end wall clock of Run.
type Stats struct {
	// Frames is the number of radar frames synthesized (two polarization
	// modes per pose).
	Frames int
	// FFTCalls is the number of fast-time FFTs run by the range
	// transforms.
	FFTCalls int64
	// Workers is the resolved worker count of the frame loop.
	Workers int
	// SynthesizeNS, RangeFFTNS and PointCloudNS are the summed per-worker
	// nanoseconds spent synthesizing baseband frames, range-transforming
	// them, and extracting point clouds.
	SynthesizeNS, RangeFFTNS, PointCloudNS int64
	// ClusterNS covers DBSCAN and cluster summarization; SpotlightNS
	// covers the per-object beamforming passes (classification features
	// and decode-mode RCS sampling), summed across the spotlight workers
	// like the per-frame stage times.
	ClusterNS, SpotlightNS int64
	// WallNS is the wall-clock duration of the whole run.
	WallNS int64
}

// Result is the output of a full drive-by detection run.
type Result struct {
	// Objects lists every cluster that survived the density filter.
	Objects []ObjectReport
	// TagIndex points into Objects (-1 when no tag was found).
	TagIndex int
	// TagU and TagRSS are the tag's per-frame observation coordinate and
	// decode-mode spotlight RSS (path-loss compensated), the decoder's
	// input; TagRange holds the matching radar-to-tag distances.
	TagU, TagRSS, TagRange []float64
	// MergedPoints is the merged world-frame point cloud (diagnostics,
	// Fig 11b).
	MergedPoints []cluster.Point
	// Partial marks a run cut short by cancellation or failed past the
	// frame-loss budget; the accompanying error carries the cause.
	Partial bool
	// FramesCompleted counts frame poses that produced usable range
	// profiles; FramesDropped counts poses lost to injected drops,
	// corruption past the repair threshold, or worker failure. Poses a
	// cancelled run never reached appear in neither.
	FramesCompleted, FramesDropped int
	// SamplesScrubbed counts non-finite baseband samples zeroed before the
	// range transform across the whole run.
	SamplesScrubbed int
	// Span is the run's trace tree ("detect" with per-stage children);
	// Stats is derived from it. Callers that do not retain Span may
	// Release it to return the nodes to the span pool.
	Span *obs.Span
	// Stats counts the work done by the run (a flat view of Span).
	Stats Stats
}

// Span and stage names of the detection pipeline trace.
const (
	SpanRun        = "detect"
	SpanSynthesize = "synthesize"
	SpanRangeFFT   = "range_fft"
	SpanPointCloud = "point_cloud"
	SpanCluster    = "cluster"
	SpanSpotlight  = "spotlight"
)

// StatsFromSpan flattens a detection span tree into the legacy Stats view.
func StatsFromSpan(sp *obs.Span) Stats {
	if sp == nil {
		return Stats{}
	}
	return Stats{
		Frames:       int(sp.IntAttr("frames")),
		FFTCalls:     sp.IntAttr("fft_calls"),
		Workers:      int(sp.IntAttr("workers")),
		SynthesizeNS: sp.ChildDuration(SpanSynthesize).Nanoseconds(),
		RangeFFTNS:   sp.ChildDuration(SpanRangeFFT).Nanoseconds(),
		PointCloudNS: sp.ChildDuration(SpanPointCloud).Nanoseconds(),
		ClusterNS:    sp.ChildDuration(SpanCluster).Nanoseconds(),
		SpotlightNS:  sp.ChildDuration(SpanSpotlight).Nanoseconds(),
		WallNS:       sp.Wall().Nanoseconds(),
	}
}

// frameData is the per-frame output of the parallel synthesis stage.
type frameData struct {
	det, dec radar.RangeProfile
	points   []cluster.Point
	// ok marks frames whose profiles are valid; dropped marks frames lost
	// to injected drops or corruption past the repair threshold (a frame a
	// cancelled run never reached is neither ok nor dropped). dropKind
	// labels the loss ("drop", "corrupt", "worker") for the per-kind
	// counter; scrubbed counts non-finite samples repaired before the range
	// transform.
	ok, dropped bool
	dropKind    string
	scrubbed    int
}

// Frame-loss kinds for frameData.dropKind and the per-kind drop counter.
const (
	dropKindDrop    = "drop"    // injected whole-frame loss
	dropKindCorrupt = "corrupt" // corruption past the scrub repair threshold
	dropKindWorker  = "worker"  // worker failure (recovered panic or error)
)

// tagSample is the per-frame output of the parallel decode-mode RCS
// sampling pass; ok marks frames where the tag was within the radar's view.
type tagSample struct {
	u, rss, r float64
	ok        bool
}

// maxScrubFraction is the repair threshold: a frame with more than this
// fraction of its samples non-finite carries no trustworthy signal and is
// dropped as corrupt rather than scrubbed and kept.
const maxScrubFraction = 0.25

// noiseSeed derives the frame's thermal-noise sub-stream seed: the scene
// draws consume the frame stream SubSeed(seed, i) through their own
// rand.Rand, while the batched Gaussian noise runs on an independent
// SplitMix64 stream remixed from it — both pure functions of (seed, i), so
// the run stays byte-identical at any worker count.
func noiseSeed(seed int64, i int) int64 {
	return sweep.SubSeed(sweep.SubSeed(seed, i), 1)
}

// synthesizeFrames is pass 1 of Run: synthesize both polarization modes per
// frame, keep the range profiles, and extract the detection-mode point cloud
// in world coordinates. Frames are independent given their seed stream, so
// the loop fans out on the sweep pool; per-stage times accumulate atomically
// across workers in child spans of sp (Span.Add is one atomic add). All
// workers share one immutable frame front-end plan (scene-static synthesis
// terms + the fused window+FFT range plan); only the frame and profile
// scratch buffers are pooled. The returned profiles live in pooled buffers —
// the caller owns releasing them. The done mask marks frames that actually
// ran (cancellation stops dispatch between frames).
func (p *Pipeline) synthesizeFrames(ctx context.Context, sc *scene.Scene, truth []geom.Vec3, vel geom.Vec3, seed int64, sp *obs.Span) ([]frameData, []bool, error) {
	synthSp := sp.StartChild(SpanSynthesize)
	rangeSp := sp.StartChild(SpanRangeFFT)
	cloudSp := sp.StartChild(SpanPointCloud)
	fe := p.Radar.FrontEnd
	f := p.Radar.CenterFrequency
	plan := p.synthPlan()
	inj := p.Fault
	samples := p.Radar.Samples
	numRx := p.Radar.NumRx
	return sweep.RunCtx(ctx, len(truth), p.Workers, func(ctx context.Context, i int) (frameData, error) {
		if inj != nil {
			ff := inj.Frame(i)
			if ff.Delay > 0 {
				t := time.NewTimer(ff.Delay)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return frameData{}, context.Cause(ctx)
				}
			}
			if ff.Panic {
				panic(fmt.Errorf("fault: injected worker panic at frame %d: %w", i, roserr.ErrFrameCorrupt))
			}
			if ff.Drop {
				return frameData{dropped: true, dropKind: dropKindDrop}, nil
			}
			if ff.Corrupt || ff.Burst {
				return p.synthesizeFaultyFrame(sc, truth[i], vel, seed, i, ff, plan, fe, f,
					numRx, samples, synthSp, rangeSp, cloudSp)
			}
		}
		return p.synthesizeCleanFrame(sc, truth[i], vel, seed, i, plan, fe, f, synthSp, rangeSp, cloudSp), nil
	})
}

// synthesizeCleanFrame is the fault-free frame path — the hot loop of every
// production read.
func (p *Pipeline) synthesizeCleanFrame(sc *scene.Scene, pose geom.Vec3, vel geom.Vec3, seed int64, i int, plan *radar.SynthPlan, fe em.RadarFrontEnd, f float64, synthSp, rangeSp, cloudSp *obs.Span) frameData {
	rng := sweep.NewRand(seed, i)
	g := dsp.AcquireGauss(noiseSeed(seed, i))
	t0 := time.Now()
	detScat := sc.Scatterers(pose, vel, scene.ModeDetect, fe, f, rng)
	decScat := sc.Scatterers(pose, vel, scene.ModeDecode, fe, f, rng)
	detFrame := plan.Synthesize(detScat, g)
	decFrame := plan.Synthesize(decScat, g)
	dsp.ReleaseGauss(g)
	t1 := time.Now()
	fd := frameData{
		det: plan.RangeProfile(detFrame),
		dec: plan.RangeProfile(decFrame),
		ok:  true,
	}
	radar.ReleaseFrame(detFrame)
	radar.ReleaseFrame(decFrame)
	t2 := time.Now()

	p.extractPoints(&fd, pose, plan, false)
	t3 := time.Now()
	synthSp.Add(t1.Sub(t0))
	rangeSp.Add(t2.Sub(t1))
	cloudSp.Add(t3.Sub(t2))
	return fd
}

// synthesizeFaultyFrame is the corrupted-frame path: synthesize both modes,
// apply the injected sample faults, scrub non-finite samples before the
// range transform, and drop the frame as corrupt when the scrub count
// exceeds the repair threshold.
func (p *Pipeline) synthesizeFaultyFrame(sc *scene.Scene, pose geom.Vec3, vel geom.Vec3, seed int64, i int, ff fault.FrameFaults, plan *radar.SynthPlan, fe em.RadarFrontEnd, f float64, numRx, samples int, synthSp, rangeSp, cloudSp *obs.Span) (frameData, error) {
	rng := sweep.NewRand(seed, i)
	g := dsp.AcquireGauss(noiseSeed(seed, i))
	t0 := time.Now()
	detScat := sc.Scatterers(pose, vel, scene.ModeDetect, fe, f, rng)
	decScat := sc.Scatterers(pose, vel, scene.ModeDecode, fe, f, rng)
	detFrame := plan.Synthesize(detScat, g)
	decFrame := plan.Synthesize(decScat, g)
	dsp.ReleaseGauss(g)
	ff.Apply(detFrame.Data, numRx, samples)
	ff.Apply(decFrame.Data, numRx, samples)
	scrubbed := radar.ScrubFrame(detFrame) + radar.ScrubFrame(decFrame)
	t1 := time.Now()
	synthSp.Add(t1.Sub(t0))
	if float64(scrubbed) > maxScrubFraction*float64(2*len(detFrame.Data)) {
		radar.ReleaseFrame(detFrame)
		radar.ReleaseFrame(decFrame)
		return frameData{dropped: true, dropKind: dropKindCorrupt, scrubbed: scrubbed}, nil
	}
	fd := frameData{
		det:      plan.RangeProfile(detFrame),
		dec:      plan.RangeProfile(decFrame),
		ok:       true,
		scrubbed: scrubbed,
	}
	radar.ReleaseFrame(detFrame)
	radar.ReleaseFrame(decFrame)
	t2 := time.Now()
	p.extractPoints(&fd, pose, plan, true)
	rangeSp.Add(t2.Sub(t1))
	cloudSp.Add(time.Since(t2))
	return fd, nil
}

// synthPlan resolves the run's frame front-end plan through the configured
// resource handle, falling back to the process-wide default session.
func (p *Pipeline) synthPlan() *radar.SynthPlan {
	if p.Session != nil {
		return p.Session.SynthPlanFor(p.Radar)
	}
	return p.Radar.NewSynthPlan()
}

// defaultScanStates pools incremental-scan state for pipelines without an
// explicit handle. Workers interleave frames arbitrarily, so a pooled
// state's hints describe whichever frame its last holder processed — which
// is exactly as much as the incremental scan needs: the hint set is a
// performance prior, never an output input (radar.PointCloudScan falls back
// to a full scan whenever the hints fail its coverage check), so any
// provenance keeps the run byte-identical at every worker count.
var defaultScanStates radar.ScanStatePool

// extractPoints converts the frame's detection-mode point cloud into world
// coordinates via the plan's scan path. tainted marks frames that passed
// through the fault layer's sample corruption: their scan starts from a
// Reset state, so no fault-adjacent frame ever rides on hints and the hint
// chain restarts from the scrubbed profile's own full scan.
func (p *Pipeline) extractPoints(fd *frameData, pose geom.Vec3, plan *radar.SynthPlan, tainted bool) {
	pool := p.ScanStates
	if pool == nil {
		pool = &defaultScanStates
	}
	st := pool.Get()
	if tainted {
		st.Reset()
	}
	for _, d := range plan.PointCloudScan(fd.det, p.Detect, st) {
		// Radar at y > 0 looks toward -y; a detection at (range, az)
		// sits at radar + range*(sin az, -cos az).
		world := pose.XY().Add(geom.Vec2{
			X: d.Range * math.Sin(d.Azimuth),
			Y: -d.Range * math.Cos(d.Azimuth),
		})
		fd.points = append(fd.points, cluster.Point{Pos: world, Weight: d.Power})
	}
	pool.Put(st)
}

// classifyObject spotlights one cluster in both polarization modes across
// the pass and fills in the two classification features of Fig 13. It draws
// no randomness and touches only read-only state, so objects classify
// concurrently on the sweep pool. Frames without usable profiles (dropped or
// never synthesized) are skipped.
func (p *Pipeline) classifyObject(st cluster.Stats, frames []frameData, truth []geom.Vec3, lossThresh, extThresh float64) ObjectReport {
	report := ObjectReport{Centroid: st.Centroid, Extent: st.Extent, Points: st.Count}
	// Subtract the expected beamformed noise power so weak decode-mode
	// readings do not bias the loss feature low.
	noise := 1.5 * p.Radar.NoisePerBin() / float64(p.Radar.NumRx)
	var lossSamples, detSamples []float64
	for i := range truth {
		if !frames[i].ok {
			continue
		}
		rel := st.Centroid.Sub(truth[i].XY())
		r := rel.Norm()
		az := math.Atan2(rel.X, -rel.Y)
		if math.Abs(az) > geom.Rad(60) || r >= p.Radar.MaxRange() || r <= 4*p.Radar.RangeBinSize() {
			continue
		}
		bin := p.Radar.BinForRange(r)
		det := p.Radar.BeamPower(frames[i].det, bin, az) - noise
		dec := p.Radar.BeamPower(frames[i].dec, bin, az) - noise
		if det > 4*noise {
			detSamples = append(detSamples, em.DBm(det))
			if dec > 2*noise {
				lossSamples = append(lossSamples, em.DB(det/dec))
			}
		}
	}
	if len(lossSamples) > 0 {
		report.RSSLossDB = dsp.Median(lossSamples)
	} else {
		report.RSSLossDB = math.Inf(1)
	}
	if len(detSamples) > 0 {
		report.MedianRSSDetectDBm = dsp.Median(detSamples)
	} else {
		report.MedianRSSDetectDBm = math.Inf(-1)
	}
	report.IsTag = report.RSSLossDB < lossThresh && report.Extent < extThresh
	return report
}

// sampleTagFrame is pass 2 for one frame: the tag's decode-mode spotlight
// RSS using the estimated geometry (the tag axis is parallel to the road /
// x axis), path-loss compensated per Eq 1 (d^4) using the tracked range so
// the sample is proportional to RCS.
func (p *Pipeline) sampleTagFrame(dec radar.RangeProfile, est geom.Vec3, tagPos geom.Vec2, azCap float64) tagSample {
	rel := est.XY().Sub(tagPos)
	r := rel.Norm()
	if r == 0 {
		return tagSample{}
	}
	azRel := tagPos.Sub(est.XY())
	az := math.Atan2(azRel.X, -azRel.Y)
	if math.Abs(az) > geom.Rad(azCap) || r >= p.Radar.MaxRange() {
		return tagSample{}
	}
	rss := p.Radar.BeamPower(dec, p.Radar.BinForRange(r), az)
	rss *= r * r * r * r
	return tagSample{u: rel.X / r, rss: rss, r: r, ok: true}
}

// Run drives the full pipeline without cancellation; see RunContext.
func (p *Pipeline) Run(sc *scene.Scene, truth, est []geom.Vec3, vel geom.Vec3, seed int64) (*Result, error) {
	return p.RunContext(context.Background(), sc, truth, est, vel, seed)
}

// RunContext drives the full pipeline: truth are the radar's true per-frame
// positions (used to synthesize physics, and for the short-horizon
// operations of clustering and spotlighting, which integrate over windows
// where dead-reckoning drift is negligible), est the vehicle's self-tracked
// estimates (used for the full-pass RCS sampling that decoding depends on —
// the error injection point of Fig 16d), vel the vehicle velocity, and seed
// the root of the per-frame noise streams (equal seeds reproduce the run
// exactly, at any worker count).
//
// Cancellation is cooperative with frame granularity: when ctx is cancelled
// or its deadline expires, RunContext stops at the next frame or stage
// boundary and returns a partial Result (Partial set, FramesCompleted
// counted) plus an error matching roserr.ErrReadCancelled and the context
// cause. Frames completed before the cut are exactly the frames a full run
// would have produced.
func (p *Pipeline) RunContext(ctx context.Context, sc *scene.Scene, truth, est []geom.Vec3, vel geom.Vec3, seed int64) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := obs.StartSpan(SpanRun)
	if len(truth) == 0 || len(truth) != len(est) {
		sp.Release()
		return nil, fmt.Errorf("detect: %w: %d truth vs %d estimated positions", roserr.ErrConfig, len(truth), len(est))
	}
	if err := p.Validate(); err != nil {
		sp.Release()
		return nil, err
	}
	if err := context.Cause(ctx); err != nil {
		sp.Release()
		return nil, fmt.Errorf("detect: read cancelled before the first frame: %w: %w", roserr.ErrReadCancelled, err)
	}
	eps := p.ClusterEps
	if eps <= 0 {
		eps = 0.25
	}
	minPts := p.ClusterMinPts
	if minPts <= 0 {
		minPts = 10
	}
	minFrames := p.MinClusterFrames
	if minFrames <= 0 {
		minFrames = 25
	}
	lossThresh := p.TagMaxRSSLossDB
	if lossThresh == 0 {
		lossThresh = 14.2
	}
	extThresh := p.TagMaxExtent
	if extThresh == 0 {
		extThresh = 0.18
	}
	maxLoss := p.MaxFrameLoss
	if maxLoss == 0 {
		maxLoss = 0.5
	}

	// Pass 1: synthesize both modes per frame, keep range profiles, and
	// build the merged world-frame point cloud from detection mode.
	n := len(truth)
	sp.SetAttr("frames", 2*n)
	sp.SetAttr("fft_calls", int64(2*n)*int64(p.Radar.NumRx))
	sp.SetAttr("fft_size", p.Radar.Samples)
	sp.SetAttr("workers", resolveWorkers(p.Workers, n))
	frames, done, ferr := p.synthesizeFrames(ctx, sc, truth, vel, seed, sp)
	mRuns.Inc()
	mFrames.Add(int64(2 * n))
	mFFTs.Add(int64(2*n) * int64(p.Radar.NumRx))
	// The profiles live in pooled buffers; hand them back once the run is
	// done with them (nothing in Result references them). Dropped or
	// never-run frames hold zero-value profiles, which release as no-ops.
	defer func() {
		for _, fd := range frames {
			radar.ReleaseProfile(fd.det)
			radar.ReleaseProfile(fd.dec)
		}
	}()

	// A frame whose worker failed (recovered panic, injected or real) is a
	// lost frame, not a lost read: mark it dropped and let the degradation
	// budget decide.
	cancelled := errors.Is(ferr, roserr.ErrReadCancelled)
	if ferr != nil {
		pointErrs := sweep.PointErrors(ferr)
		if len(pointErrs) == 0 && !cancelled {
			sp.Release()
			return nil, ferr
		}
		for _, pe := range pointErrs {
			if pe.Index < 0 || pe.Index >= len(frames) {
				continue
			}
			fd := &frames[pe.Index]
			if fd.ok || fd.dropped {
				continue
			}
			if errors.Is(pe.Err, roserr.ErrReadCancelled) || errors.Is(pe.Err, context.Canceled) ||
				errors.Is(pe.Err, context.DeadlineExceeded) {
				// The frame never produced data because the read was cut
				// short mid-frame, not because it was lost.
				done[pe.Index] = false
				continue
			}
			fd.dropped = true
			fd.dropKind = dropKindWorker
		}
	}
	completed, dropped, scrubbed := 0, 0, 0
	dropKinds := map[string]int64{}
	for i := range frames {
		if frames[i].ok {
			completed++
		} else if done[i] && frames[i].dropped {
			dropped++
			dropKinds[frames[i].dropKind]++
		}
		scrubbed += frames[i].scrubbed
	}
	if dropped > 0 {
		mFramesDropped.Add(int64(dropped))
		for kind, n := range dropKinds {
			mFramesDroppedByKind.With(kind).Add(n)
		}
	}
	if scrubbed > 0 {
		mSamplesScrubbed.Add(int64(scrubbed))
	}

	// partial finalizes a run cut short at a frame or stage boundary.
	partial := func(res *Result) *Result {
		if res == nil {
			res = &Result{TagIndex: -1}
		}
		res.Partial = true
		res.FramesCompleted = completed
		res.FramesDropped = dropped
		res.SamplesScrubbed = scrubbed
		sp.End()
		res.Span = sp
		res.Stats = StatsFromSpan(sp)
		return res
	}

	if cancelled {
		obs.Logger().Warn("detect: run cancelled during frame synthesis",
			"completed", completed, "of", n, "seed", seed)
		return partial(nil), fmt.Errorf("detect: read cancelled after %d/%d frames: %w", completed, n, ferr)
	}
	if float64(dropped) > maxLoss*float64(n) {
		obs.Logger().Error("detect: frame loss beyond budget",
			"dropped", dropped, "of", n, "budget", maxLoss, "seed", seed)
		return partial(nil), fmt.Errorf("detect: %d/%d frames lost (budget %.0f%%): %w",
			dropped, n, 100*maxLoss, roserr.ErrFrameCorrupt)
	}
	if dropped > 0 || scrubbed > 0 {
		obs.Logger().Warn("detect: degraded run continues",
			"dropped", dropped, "of", n, "scrubbed_samples", scrubbed, "seed", seed)
	}

	total := 0
	for _, fd := range frames {
		total += len(fd.points)
	}
	merged := make([]cluster.Point, 0, total)
	for _, fd := range frames {
		merged = append(merged, fd.points...)
	}

	clusterSp := sp.StartChild(SpanCluster)
	labels := cluster.DBSCAN(merged, eps, minPts)
	stats := cluster.Summarize(merged, labels, p.Radar.RangeResolution())
	clusterSp.End()
	clusterSp.SetAttr("points", len(merged))

	res := &Result{TagIndex: -1, MergedPoints: merged,
		FramesCompleted: completed, FramesDropped: dropped, SamplesScrubbed: scrubbed}

	// Stage boundary: clustering done, spotlighting next.
	if err := context.Cause(ctx); err != nil {
		return partial(res), fmt.Errorf("detect: read cancelled after clustering: %w: %w", roserr.ErrReadCancelled, err)
	}

	// Spotlight pass: classify every cluster that survived the density
	// filter. Objects are independent and draw no randomness, so they fan
	// out on the sweep pool; sweep.Run returns reports in candidate order,
	// keeping the output byte-identical at any worker count. The span
	// accumulates worker-summed self time, like the per-frame stages.
	spotSp := sp.StartChild(SpanSpotlight)
	var cands []cluster.Stats
	for _, st := range stats {
		if st.Count >= minFrames {
			cands = append(cands, st)
		}
	}
	spotSp.SetAttr("objects", len(cands))
	spotSp.SetAttr("workers", resolveWorkers(p.Workers, max(len(cands), n)))
	if len(cands) > 0 {
		reports, _, err := sweep.RunCtx(ctx, len(cands), p.Workers, func(_ context.Context, ci int) (ObjectReport, error) {
			t0 := time.Now()
			report := p.classifyObject(cands[ci], frames, truth, lossThresh, extThresh)
			spotSp.Add(time.Since(t0))
			return report, nil
		})
		if err != nil {
			spotSp.End()
			if errors.Is(err, roserr.ErrReadCancelled) {
				return partial(res), fmt.Errorf("detect: read cancelled during spotlighting: %w", err)
			}
			obs.Logger().Error("detect: spotlight pass failed", "objects", len(cands), "seed", seed, "err", err)
			sp.Release()
			return nil, err
		}
		res.Objects = reports
	}

	if p.ForceTagNear != nil {
		best, bestDist := -1, 0.5
		for i, o := range res.Objects {
			if d := o.Centroid.Dist(*p.ForceTagNear); d < bestDist {
				best, bestDist = i, d
			}
		}
		if best >= 0 {
			res.Objects[best].IsTag = true
		}
	}

	// Pick the best tag candidate (lowest RSS loss among classified tags).
	for i, o := range res.Objects {
		if !o.IsTag {
			continue
		}
		if res.TagIndex < 0 || o.RSSLossDB < res.Objects[res.TagIndex].RSSLossDB {
			res.TagIndex = i
		}
	}

	if res.TagIndex < 0 {
		obs.Logger().Info("detect: no tag classified",
			"objects", len(res.Objects), "seed", seed)
		spotSp.End()
		sp.End()
		res.Span = sp
		res.Stats = StatsFromSpan(sp)
		return res, nil
	}
	mTagsFound.Inc()

	// Pass 2: sample the tag's decode-mode RSS over u using the estimated
	// geometry. Frames are independent here too, so the sampling fans out
	// on the pool and the samples are appended in frame order. Frames
	// without usable profiles contribute no samples — the decoder reads
	// from the remaining aggregate at reduced confidence.
	azCap := p.DecodeAzimuthCapDeg
	if azCap <= 0 {
		azCap = 60
	}
	tagPos := res.Objects[res.TagIndex].Centroid
	samples, _, err := sweep.RunCtx(ctx, n, p.Workers, func(_ context.Context, i int) (tagSample, error) {
		if !frames[i].ok {
			return tagSample{}, nil
		}
		t0 := time.Now()
		s := p.sampleTagFrame(frames[i].dec, est[i], tagPos, azCap)
		spotSp.Add(time.Since(t0))
		return s, nil
	})
	if err != nil {
		spotSp.End()
		if errors.Is(err, roserr.ErrReadCancelled) {
			return partial(res), fmt.Errorf("detect: read cancelled during RCS sampling: %w", err)
		}
		obs.Logger().Error("detect: decode sampling pass failed", "frames", n, "seed", seed, "err", err)
		sp.Release()
		return nil, err
	}
	for _, s := range samples {
		if !s.ok {
			continue
		}
		res.TagU = append(res.TagU, s.u)
		res.TagRSS = append(res.TagRSS, s.rss)
		res.TagRange = append(res.TagRange, s.r)
	}
	spotSp.End()
	spotSp.SetAttr("samples", len(res.TagU))
	sp.End()
	res.Span = sp
	res.Stats = StatsFromSpan(sp)
	obs.Logger().Debug("detect: run complete",
		"objects", len(res.Objects), "tag_index", res.TagIndex,
		"samples", len(res.TagU), "wall_ms", float64(res.Stats.WallNS)/1e6)
	return res, nil
}

// resolveWorkers mirrors sweep.Run's worker-count resolution for reporting.
func resolveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}
