package detect

import (
	"errors"
	"math"
	"testing"

	"ros/internal/radar"
	"ros/internal/roserr"
)

// TestPipelineValidateRejections drives every rejection branch of
// Pipeline.Validate. Zero values mean "use the default" and must pass;
// negative or out-of-range values must fail with a typed ErrConfig.
func TestPipelineValidateRejections(t *testing.T) {
	if err := NewPipeline(radar.TI1443()).Validate(); err != nil {
		t.Fatalf("default pipeline must validate: %v", err)
	}
	zero := &Pipeline{Radar: radar.TI1443()}
	if err := zero.Validate(); err != nil {
		t.Fatalf("all-zero thresholds mean defaults and must validate: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Pipeline)
	}{
		{"bad radar", func(p *Pipeline) { p.Radar.Samples = 0 }},
		{"negative cluster eps", func(p *Pipeline) { p.ClusterEps = -0.1 }},
		{"NaN cluster eps", func(p *Pipeline) { p.ClusterEps = math.NaN() }},
		{"negative min points", func(p *Pipeline) { p.ClusterMinPts = -1 }},
		{"negative min frames", func(p *Pipeline) { p.MinClusterFrames = -1 }},
		{"negative rss-loss threshold", func(p *Pipeline) { p.TagMaxRSSLossDB = -1 }},
		{"negative extent", func(p *Pipeline) { p.TagMaxExtent = -0.5 }},
		{"azimuth cap above 90", func(p *Pipeline) { p.DecodeAzimuthCapDeg = 91 }},
		{"negative workers", func(p *Pipeline) { p.Workers = -2 }},
		{"frame loss above 1", func(p *Pipeline) { p.MaxFrameLoss = 1.5 }},
		{"NaN frame loss", func(p *Pipeline) { p.MaxFrameLoss = math.NaN() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPipeline(radar.TI1443())
			tc.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid pipeline")
			}
			if !errors.Is(err, roserr.ErrConfig) {
				t.Fatalf("rejection not typed ErrConfig: %v", err)
			}
		})
	}
}
