package detect

import (
	"context"
	"math/rand"
	"testing"

	"ros/internal/cluster"
	"ros/internal/geom"
	"ros/internal/obs"
	"ros/internal/radar"
)

// spotlightFixture synthesizes one drive-by pass and clusters it, returning
// everything the spotlight stage consumes. The returned profiles stay pooled
// for the benchmark's lifetime (never released), which is fine for a test
// process.
func spotlightFixture(b *testing.B) (*Pipeline, []frameData, []cluster.Stats, []geom.Vec3) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	sc := buildScene(b, "1111", true, rng)
	p := NewPipeline(radar.TI1443())
	truth := passPositions(3, 240)
	sp := obs.StartSpan("bench")
	frames, _, err := p.synthesizeFrames(context.Background(), sc, truth, geom.Vec3{X: 2}, 1, sp)
	sp.Release()
	if err != nil {
		b.Fatal(err)
	}
	var merged []cluster.Point
	for _, fd := range frames {
		merged = append(merged, fd.points...)
	}
	labels := cluster.DBSCAN(merged, p.ClusterEps, p.ClusterMinPts)
	stats := cluster.Summarize(merged, labels, p.Radar.RangeResolution())
	var cands []cluster.Stats
	for _, st := range stats {
		if st.Count >= p.MinClusterFrames {
			cands = append(cands, st)
		}
	}
	if len(cands) == 0 {
		b.Fatal("no clusters survived the density filter")
	}
	return p, frames, cands, truth
}

// BenchmarkSpotlight measures the per-object classification kernel (both
// polarization modes spotlighted across the whole pass per object) — the
// sequential-tail stage the parallel spotlight pass distributes.
func BenchmarkSpotlight(b *testing.B) {
	p, frames, cands, truth := spotlightFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, st := range cands {
			p.classifyObject(st, frames, truth, 14.2, 0.18)
		}
	}
}

// BenchmarkTagSampling measures the pass-2 decode-mode RCS sampling kernel
// for one full pass.
func BenchmarkTagSampling(b *testing.B) {
	p, frames, cands, truth := spotlightFixture(b)
	tagPos := cands[0].Centroid
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range truth {
			p.sampleTagFrame(frames[j].dec, truth[j], tagPos, 60)
		}
	}
}
