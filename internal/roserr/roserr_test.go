package roserr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestSentinelsDistinct guards against two sentinels aliasing each other:
// errors.Is on one must never match another.
func TestSentinelsDistinct(t *testing.T) {
	all := []error{ErrConfig, ErrReadCancelled, ErrFrameCorrupt, ErrNoTag,
		ErrUndecodable, ErrWorkerPanic}
	for i, a := range all {
		for j, b := range all {
			if (i == j) != errors.Is(a, b) {
				t.Errorf("sentinel %d vs %d: Is = %v", i, j, errors.Is(a, b))
			}
		}
	}
}

// TestDualWrap verifies the cancellation convention: an error wrapping both
// ErrReadCancelled and a context cause matches each independently.
func TestDualWrap(t *testing.T) {
	err := fmt.Errorf("read stopped after 3 frames: %w: %w",
		ErrReadCancelled, context.DeadlineExceeded)
	if !errors.Is(err, ErrReadCancelled) {
		t.Error("does not match ErrReadCancelled")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("does not match context.DeadlineExceeded")
	}
	if errors.Is(err, context.Canceled) {
		t.Error("matches context.Canceled spuriously")
	}
}
