// Package roserr defines the typed error taxonomy of the read pipeline.
// Every non-transient failure mode that crosses a package boundary wraps one
// of these sentinels, so callers branch on errors.Is instead of string
// matching, and the public ros package re-exports them verbatim.
//
// Cancellation errors additionally wrap the context cause, so both
// errors.Is(err, roserr.ErrReadCancelled) and
// errors.Is(err, context.DeadlineExceeded) hold for a deadline-expired read.
package roserr

import "errors"

var (
	// ErrConfig marks an invalid or inconsistent configuration: bad radar
	// parameters, impossible sweep geometry, malformed decoder settings.
	// Configuration errors are programmer errors, never degradation — the
	// fault-injection layer refuses to start on one rather than masking it
	// as a runtime fault.
	ErrConfig = errors.New("invalid configuration")

	// ErrReadCancelled marks a read cut short by context cancellation or a
	// deadline. The wrapped chain also carries the context cause, so
	// errors.Is(err, context.DeadlineExceeded) distinguishes a deadline from
	// an explicit cancel.
	ErrReadCancelled = errors.New("read cancelled")

	// ErrFrameCorrupt marks frame-level data corruption: non-finite samples
	// beyond the scrubber's repair threshold, dropped frames past the
	// degradation budget, or a worker that died synthesizing a frame.
	ErrFrameCorrupt = errors.New("frame corrupt")

	// ErrNoTag marks a read that completed but produced no decodable tag:
	// nothing classified, or too few RCS samples to archive or decode.
	ErrNoTag = errors.New("no tag detected")

	// ErrUndecodable marks a detected tag whose RCS samples defeated the
	// spectral decoder (degenerate u span, empty coding band).
	ErrUndecodable = errors.New("tag undecodable")

	// ErrWorkerPanic marks a recovered panic on the sweep worker pool; the
	// concrete sweep.PanicError carries the panic value and stack trace.
	ErrWorkerPanic = errors.New("worker panicked")

	// ErrOverload marks a request refused by admission control: the serving
	// queue is already at its configured depth and accepting more work would
	// push latency past its envelope instead of shedding load. Overload is a
	// transient server condition, never a statement about the request —
	// retrying after backoff is the expected response.
	ErrOverload = errors.New("server overloaded")

	// ErrDraining marks a request refused because the service is shutting
	// down gracefully: admissions are closed while in-flight work finishes.
	// Like overload it is transient from the client's point of view — retry
	// against another instance, or the same one after it restarts.
	ErrDraining = errors.New("server draining")

	// ErrCircuitOpen marks a request the client refused to send because the
	// endpoint's circuit breaker is open: recent calls failed consecutively
	// and the breaker is failing fast until its cooldown elapses. The request
	// never reached the network; retry after the cooldown.
	ErrCircuitOpen = errors.New("circuit open")
)
