package roserr

import "errors"

// KindInternal is the kind reported for errors outside the taxonomy.
const KindInternal = "internal"

// kinds pairs every sentinel with its stable wire tag, in match order (each
// pipeline error wraps exactly one sentinel, so order only matters for
// hand-built chains wrapping several).
var kinds = []struct {
	kind string
	err  error
}{
	{"config", ErrConfig},
	{"cancelled", ErrReadCancelled},
	{"frame_corrupt", ErrFrameCorrupt},
	{"no_tag", ErrNoTag},
	{"undecodable", ErrUndecodable},
	{"worker_panic", ErrWorkerPanic},
	{"overload", ErrOverload},
	{"draining", ErrDraining},
	{"circuit_open", ErrCircuitOpen},
}

// Kind maps an error chain onto its stable wire tag ("config", "cancelled",
// ..., or "internal" for anything outside the taxonomy). The read service
// renders this into error bodies; the client parses it back with ForKind, so
// a typed error survives the HTTP round trip.
func Kind(err error) string {
	for _, k := range kinds {
		if errors.Is(err, k.err) {
			return k.kind
		}
	}
	return KindInternal
}

// ForKind returns the sentinel behind a wire tag, or nil for "internal" and
// unknown tags. Clients wrap the returned sentinel into their error chains
// so errors.Is works across the service boundary.
func ForKind(kind string) error {
	for _, k := range kinds {
		if k.kind == kind {
			return k.err
		}
	}
	return nil
}
