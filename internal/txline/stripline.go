// Package txline models the strip-line transmission lines that interconnect
// the Van Atta antenna pairs (Sec 4.2 of the RoS paper). The model captures
// the two TL properties the paper's design analysis depends on:
//
//   - dispersion: a line's electrical phase 2*pi*L*f*sqrt(eps_eff)/c grows
//     linearly with frequency, so lines whose lengths differ by multiples of
//     the guided wavelength are phase-aligned only at the design frequency —
//     this drives the delta_l <= 4.94*lambda_g bound of Sec 4.1;
//   - loss: dielectric + conductor loss per unit length, calibrated to the
//     paper's figure of 11 dB for a 10.8 cm line (Sec 4.3).
package txline

import (
	"fmt"
	"math"

	"ros/internal/em"
)

// Stripline describes a strip-line in the RoS stackup (Rogers 4350B cores
// with a 4450F bonding ply).
type Stripline struct {
	// EpsEff is the effective relative permittivity seen by the guided
	// wave. For a homogeneously filled stripline this equals the substrate
	// eps_r; the default is calibrated so the guided wavelength at 79 GHz
	// matches the paper's 2027 um.
	EpsEff float64
	// LossDBPerMeterAt79 is the total (dielectric + conductor) attenuation
	// at 79 GHz in dB/m. The default reproduces the paper's 11 dB over
	// 10.8 cm. Loss scales as sqrt(f/79 GHz) * (dielectric fraction scales
	// linearly); a single linear-in-f term is used as the dielectric loss
	// dominates at W band.
	LossDBPerMeterAt79 float64
}

// GuidedWavelength79 is the paper's quoted guided wavelength at 79 GHz
// (Sec 4.2): lambda_g = 2027 um.
const GuidedWavelength79 = 2027e-6

// Default returns the stripline of the RoS stackup.
func Default() Stripline {
	lg := GuidedWavelength79
	f := em.CenterFrequency
	epsEff := (em.C / (f * lg)) * (em.C / (f * lg))
	return Stripline{
		EpsEff:             epsEff,
		LossDBPerMeterAt79: 11.0 / 0.108,
	}
}

// Validate reports whether the line parameters are physical.
func (s Stripline) Validate() error {
	if s.EpsEff < 1 {
		return fmt.Errorf("txline: eps_eff must be >= 1, got %g", s.EpsEff)
	}
	if s.LossDBPerMeterAt79 < 0 {
		return fmt.Errorf("txline: loss must be non-negative, got %g dB/m", s.LossDBPerMeterAt79)
	}
	return nil
}

// PhaseVelocity returns the propagation speed c_p = c/sqrt(eps_eff) in m/s.
func (s Stripline) PhaseVelocity() float64 {
	return em.C / math.Sqrt(s.EpsEff)
}

// GuidedWavelength returns lambda_g(f) = c_p / f in meters.
func (s Stripline) GuidedWavelength(f float64) float64 {
	if f <= 0 {
		panic(fmt.Sprintf("txline: GuidedWavelength at non-positive frequency %g", f))
	}
	return s.PhaseVelocity() / f
}

// Phase returns the electrical phase accumulated over a line of the given
// length at frequency f, in radians: beta*L = 2*pi*L/lambda_g(f).
func (s Stripline) Phase(length, f float64) float64 {
	return 2 * math.Pi * length / s.GuidedWavelength(f)
}

// LossDB returns the attenuation in dB of a line of the given length at
// frequency f; loss scales linearly with frequency around the 79 GHz
// calibration point (dielectric-loss dominated).
func (s Stripline) LossDB(length, f float64) float64 {
	if length < 0 {
		panic(fmt.Sprintf("txline: LossDB of negative length %g", length))
	}
	return s.LossDBPerMeterAt79 * length * (f / em.CenterFrequency)
}

// Amplitude returns the linear amplitude transmission factor of a line of
// the given length at frequency f (10^(-LossDB/20)).
func (s Stripline) Amplitude(length, f float64) float64 {
	return math.Pow(10, -s.LossDB(length, f)/20)
}

// Through returns the full complex transmission coefficient of the line:
// amplitude loss and electrical phase delay exp(-j*beta*L).
func (s Stripline) Through(length, f float64) complex128 {
	a := s.Amplitude(length, f)
	ph := s.Phase(length, f)
	return complex(a*math.Cos(ph), -a*math.Sin(ph))
}

// MaxLengthDifference returns the paper's Sec 4.1 bound on the maximum TL
// length difference delta_l such that the worst-case phase misalignment
// across a radar bandwidth B stays below pi/2:
//
//	2*pi * (B/c_p) * delta_l < pi/2  =>  delta_l < c_p / (4*B).
func (s Stripline) MaxLengthDifference(bandwidth float64) float64 {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("txline: MaxLengthDifference with non-positive bandwidth %g", bandwidth))
	}
	return s.PhaseVelocity() / (4 * bandwidth)
}

// MaxAntennaPairs evaluates the design rule of Sec 4.1: with adjacent TLs
// differing by deltaL (at least 2*lambda_g to avoid overlap), the number of
// antenna pairs a retroreflective VAA can sustain over the given bandwidth is
//
//	floor(maxLengthDifference / deltaL) + 1.
func (s Stripline) MaxAntennaPairs(bandwidth, deltaL float64) int {
	if deltaL <= 0 {
		panic(fmt.Sprintf("txline: MaxAntennaPairs with non-positive deltaL %g", deltaL))
	}
	return int(s.MaxLengthDifference(bandwidth)/deltaL) + 1
}

// PaperTLLengths returns the three optimized TL lengths of the fabricated
// PSVAA (Fig 7b): 4.106 mm, 9.148 mm and 12.171 mm, ordered from the
// innermost to the outermost antenna pair.
func PaperTLLengths() [3]float64 {
	return [3]float64{4.106e-3, 9.148e-3, 12.171e-3}
}
