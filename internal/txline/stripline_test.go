package txline

import (
	"math"
	"math/cmplx"
	"testing"

	"ros/internal/em"
)

func TestDefaultGuidedWavelength(t *testing.T) {
	s := Default()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sec 4.2: lambda_g = 2027 um at 79 GHz.
	lg := s.GuidedWavelength(em.CenterFrequency)
	if math.Abs(lg-2027e-6) > 1e-9 {
		t.Errorf("lambda_g(79 GHz) = %g m, want 2027 um", lg)
	}
	// Implied eps_eff should be near the Rogers 4350B/4450F mix (~3.5).
	if s.EpsEff < 3.3 || s.EpsEff > 3.7 {
		t.Errorf("eps_eff = %g, want ~3.5", s.EpsEff)
	}
}

func TestLossCalibration(t *testing.T) {
	// Sec 4.3: a 10.8 cm line loses ~11 dB.
	s := Default()
	if got := s.LossDB(0.108, em.CenterFrequency); math.Abs(got-11) > 1e-9 {
		t.Errorf("loss(10.8 cm) = %g dB, want 11", got)
	}
	// Loss scales with frequency.
	if s.LossDB(0.01, 81e9) <= s.LossDB(0.01, 76e9) {
		t.Error("loss should increase with frequency")
	}
	if s.LossDB(0, em.CenterFrequency) != 0 {
		t.Error("zero-length line should be lossless")
	}
}

func TestPhaseLinearInLengthAndFrequency(t *testing.T) {
	s := Default()
	f := em.CenterFrequency
	lg := s.GuidedWavelength(f)
	// One guided wavelength of line = 2*pi of phase.
	if got := s.Phase(lg, f); math.Abs(got-2*math.Pi) > 1e-9 {
		t.Errorf("phase over one lambda_g = %g, want 2*pi", got)
	}
	if got := s.Phase(2.5*lg, f); math.Abs(got-5*math.Pi) > 1e-9 {
		t.Errorf("phase over 2.5 lambda_g = %g, want 5*pi", got)
	}
}

func TestThroughCombinesLossAndPhase(t *testing.T) {
	s := Default()
	f := em.CenterFrequency
	l := 0.01
	tr := s.Through(l, f)
	if math.Abs(cmplx.Abs(tr)-s.Amplitude(l, f)) > 1e-12 {
		t.Errorf("|through| = %g, want %g", cmplx.Abs(tr), s.Amplitude(l, f))
	}
	wantPhase := -s.Phase(l, f)
	gotPhase := cmplx.Phase(tr)
	// Compare modulo 2*pi.
	diff := math.Mod(gotPhase-wantPhase, 2*math.Pi)
	if diff > math.Pi {
		diff -= 2 * math.Pi
	}
	if diff < -math.Pi {
		diff += 2 * math.Pi
	}
	if math.Abs(diff) > 1e-9 {
		t.Errorf("through phase = %g, want %g (mod 2pi)", gotPhase, wantPhase)
	}
}

func TestMaxLengthDifferenceMatchesPaper(t *testing.T) {
	// Sec 4.1: for B = 4 GHz, delta_l <= 4.94 lambda_g.
	s := Default()
	dl := s.MaxLengthDifference(4e9)
	inLG := dl / s.GuidedWavelength(em.CenterFrequency)
	if math.Abs(inLG-4.94) > 0.05 {
		t.Errorf("delta_l bound = %g lambda_g, want ~4.94", inLG)
	}
}

func TestMaxAntennaPairsMatchesPaper(t *testing.T) {
	// Sec 4.1: with deltaL = 2 lambda_g and B = 4 GHz, the optimal number
	// of antenna pairs is floor(4.94/2) + 1 = 3.
	s := Default()
	lg := s.GuidedWavelength(em.CenterFrequency)
	if got := s.MaxAntennaPairs(4e9, 2*lg); got != 3 {
		t.Errorf("max pairs = %d, want 3", got)
	}
}

func TestPaperTLLengthsRelations(t *testing.T) {
	// Fig 7b: the 2nd and 3rd TLs are ~2.5 and ~4 lambda_g longer than the
	// 1st.
	ls := PaperTLLengths()
	lg := GuidedWavelength79
	d2 := (ls[1] - ls[0]) / lg
	d3 := (ls[2] - ls[0]) / lg
	if math.Abs(d2-2.5) > 0.05 {
		t.Errorf("TL2 - TL1 = %g lambda_g, want ~2.5", d2)
	}
	if math.Abs(d3-4) > 0.05 {
		t.Errorf("TL3 - TL1 = %g lambda_g, want ~4", d3)
	}
}

func TestValidate(t *testing.T) {
	if err := (Stripline{EpsEff: 0.5, LossDBPerMeterAt79: 1}).Validate(); err == nil {
		t.Error("eps_eff < 1 accepted")
	}
	if err := (Stripline{EpsEff: 3, LossDBPerMeterAt79: -1}).Validate(); err == nil {
		t.Error("negative loss accepted")
	}
}

func TestPanics(t *testing.T) {
	s := Default()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("GuidedWavelength(0)", func() { s.GuidedWavelength(0) })
	mustPanic("LossDB(-1)", func() { s.LossDB(-1, em.CenterFrequency) })
	mustPanic("MaxLengthDifference(0)", func() { s.MaxLengthDifference(0) })
	mustPanic("MaxAntennaPairs deltaL=0", func() { s.MaxAntennaPairs(4e9, 0) })
}

func TestDispersionMisalignment(t *testing.T) {
	// Two lines differing by 4 lambda_g are phase-aligned at 79 GHz but
	// misaligned at the band edges; the misalignment at +/-2 GHz should be
	// 2*pi*deltaL*B/2/c_p < pi/2 for deltaL <= 4.94 lambda_g.
	s := Default()
	lg := s.GuidedWavelength(em.CenterFrequency)
	deltaL := 4 * lg
	phi0 := s.Phase(deltaL, em.CenterFrequency)
	// At center, the differential phase is an exact multiple of 2*pi.
	if r := math.Mod(phi0, 2*math.Pi); math.Abs(r) > 1e-6 && math.Abs(r-2*math.Pi) > 1e-6 {
		t.Errorf("differential phase at center = %g rad (mod 2pi), want 0", r)
	}
	// Worst-case misalignment is between the two band edges fc +/- B/2.
	mis := math.Abs(s.Phase(deltaL, em.CenterFrequency+2e9) - s.Phase(deltaL, em.CenterFrequency-2e9))
	if mis >= math.Pi/2 {
		t.Errorf("misalignment across the band = %g rad, want < pi/2 for 4 lambda_g", mis)
	}
	// And 6 lambda_g (a 4-pair design) violates the bound.
	phi6 := math.Abs(s.Phase(6*lg, em.CenterFrequency+2e9) - s.Phase(6*lg, em.CenterFrequency-2e9))
	if phi6 < math.Pi/2 {
		t.Errorf("6 lambda_g misalignment = %g rad, expected >= pi/2", phi6)
	}
}
