package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// cellFloat parses a numeric table cell.
func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func TestTableString(t *testing.T) {
	tab := &Table{
		ID:      "Fig X",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Notes:   "shape",
	}
	tab.AddRow("1", "2")
	s := tab.String()
	for _, want := range []string{"Fig X", "demo", "a", "b", "1", "2", "note: shape"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestRegistryCoversAllPaperArtifacts(t *testing.T) {
	want := []string{
		"Fig 3", "Fig 4a", "Fig 4b", "Fig 5", "Fig 6", "Fig 8",
		"Fig 10", "Fig 11", "Fig 13", "Fig 14", "Fig 15",
		"Fig 16a", "Fig 16b", "Fig 16c", "Fig 16d", "Fig 17", "Fig 18",
		"Link budget", "Capacity", "Pair bound",
		"Ablation: polarization switching", "Ablation: spectrum window",
		"Ablation: envelope detrending", "Ablation: RCS sampling density",
		"Ablation: ground multipath", "Ablation: wavelength assumption",
		"Ablation: ADC resolution",
		"Extension: circular polarization", "Extension: ASK modulation",
		"Extension: near-field focusing", "Extension: occlusion",
		"Extension: elevation monopulse", "Extension: localization",
		"Extension: rain", "Extension: commercial range",
		"Monte Carlo BER", "Chaos",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %q, want %q", i, reg[i].ID, id)
		}
		if reg[i].Run == nil {
			t.Errorf("registry[%d] has nil generator", i)
		}
	}
}

func TestByID(t *testing.T) {
	if g := ByID("fig15"); g == nil || g.ID != "Fig 15" {
		t.Errorf("ByID(fig15) = %+v", g)
	}
	if g := ByID("LINK BUDGET"); g == nil {
		t.Error("ByID case-insensitivity broken")
	}
	if g := ByID("fig 99"); g != nil {
		t.Errorf("ByID(fig 99) = %+v, want nil", g)
	}
}

func TestFig03ShapePerPairOptimum(t *testing.T) {
	tab := Fig03(context.Background())
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "best" || last[1] != "3" {
		t.Errorf("Fig 3 best pairs = %v, want 3", last)
	}
}

func TestFig04aShape(t *testing.T) {
	tab := Fig04a(context.Background())
	// Locate the broadside and 60-degree rows.
	var vaa0, ula0, vaa60, ula60 float64
	for _, r := range tab.Rows {
		switch r[0] {
		case "0.0":
			vaa0, ula0 = cellFloat(t, r[1]), cellFloat(t, r[2])
		case "60.0":
			vaa60, ula60 = cellFloat(t, r[1]), cellFloat(t, r[2])
		}
	}
	if vaa0-vaa60 > 8 {
		t.Errorf("VAA rolls off %g dB at 60 deg, want flat", vaa0-vaa60)
	}
	if ula0-ula60 < 15 {
		t.Errorf("ULA rolls off only %g dB at 60 deg, want specular", ula0-ula60)
	}
}

func TestFig05ShapeCrossPolGap(t *testing.T) {
	tab := Fig05(context.Background())
	for _, r := range tab.Rows {
		if r[0] != "0.0" {
			continue
		}
		psvaa := cellFloat(t, r[1])
		vaaLeak := cellFloat(t, r[2])
		if gap := psvaa - vaaLeak; gap < 9 || gap > 15 {
			t.Errorf("cross-pol gap = %g dB, want ~12", gap)
		}
	}
}

func TestLinkBudgetShape(t *testing.T) {
	tab := LinkBudget(context.Background())
	for _, r := range tab.Rows {
		if r[0] == "max range (m)" {
			ti := cellFloat(t, r[1])
			com := cellFloat(t, r[2])
			if ti < 6.4 || ti > 7.5 {
				t.Errorf("TI max range = %g, want ~6.9", ti)
			}
			if com < 48 || com > 57 {
				t.Errorf("commercial max range = %g, want ~52", com)
			}
		}
	}
}

func TestCapacityShape(t *testing.T) {
	tab := Capacity(context.Background())
	// Far field grows with bits; the 4-bit row matches the paper's 2.9 m.
	prev := 0.0
	for _, r := range tab.Rows {
		ff := cellFloat(t, r[3])
		if ff <= prev {
			t.Errorf("far field not monotone at %s bits", r[0])
		}
		prev = ff
		if r[0] == "4" {
			if w := cellFloat(t, r[1]); w != 22.5 {
				t.Errorf("4-bit width = %g lambda, want 22.5", w)
			}
			if ff < 2.7 || ff > 3.1 {
				t.Errorf("4-bit far field = %g, want ~2.9", ff)
			}
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tab := Fig10(context.Background())
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[0], "peak @") {
			if v := cellFloat(t, r[1]); v < 3 {
				t.Errorf("%s only %g dB over floor", r[0], v)
			}
		}
	}
}

func TestPairBoundShape(t *testing.T) {
	tab := PairBound(context.Background())
	found := false
	for _, r := range tab.Rows {
		if r[0] == "max antenna pairs" {
			found = true
			if r[1] != "3" {
				t.Errorf("max pairs = %s, want 3", r[1])
			}
		}
	}
	if !found {
		t.Error("pair-bound row missing")
	}
}
