package experiments

import (
	"context"
	"math"

	"ros/internal/coding"
	"ros/internal/dsp"
	"ros/internal/em"
	"ros/internal/radar"
	"ros/internal/sim"
)

// Ablations of the design choices DESIGN.md calls out, beyond the paper's
// own figures: each quantifies how much one mechanism contributes to the
// working system.

// decodeWith re-decodes a pass's tag samples with custom spectrum options.
func decodeWith(out *sim.Outcome, window dsp.Window, disableDetrend bool) float64 {
	if !out.Detected || len(out.Detection.TagU) < 16 {
		return math.Inf(-1)
	}
	dec, err := coding.NewDecoder(4, coding.DefaultDelta(), em.Lambda79())
	if err != nil {
		panic(err)
	}
	dec.Options.Window = window
	dec.Options.DisableDetrend = disableDetrend
	res, err := dec.Decode(out.Detection.TagU, out.Detection.TagRSS)
	if err != nil {
		return math.Inf(-1)
	}
	return res.SNRdB
}

// AblationPolSwitch quantifies Sec 4.2's claim that "the benefit from
// polarization switching is more than 14 dB": decoding with the PSVAA
// against the same pass with a plain (co-polarized) VAA tag amid clutter.
func AblationPolSwitch(ctx context.Context) *Table {
	t := &Table{
		ID:      "Ablation: polarization switching",
		Title:   "decoding with vs without the PSVAA's polarization switching (clutter present)",
		Columns: []string{"configuration", "SNR (dB)", "bits"},
		Notes: "paper Sec 4.2: switching costs 6 dB of RCS but buys > 14 dB " +
			"of clutter suppression — a clear net win near clutter",
	}
	on := mustRun(ctx, sim.DriveBy{BeamShaped: true, WithClutter: true, Seed: 500})
	off := mustRun(ctx, sim.DriveBy{BeamShaped: true, WithClutter: true, DisablePolSwitching: true, Seed: 500})
	t.AddRow("PSVAA (switching on)", snrCell(on), on.Bits)
	t.AddRow("plain VAA (switching off)", snrCell(off), off.Bits)
	if on.Detected && off.Detected && !math.IsInf(off.SNRdB, -1) {
		t.AddRow("switching benefit (dB)", f1(on.SNRdB-off.SNRdB), "")
	}
	return t
}

// AblationWindow compares spectral windows in the decoder.
func AblationWindow(ctx context.Context) *Table {
	t := &Table{
		ID:      "Ablation: spectrum window",
		Title:   "decoder window choice on the same pass",
		Columns: []string{"window", "SNR (dB)"},
		Notes: "rectangular leaks strong coding peaks into neighbouring " +
			"slots; Hann (the default) balances leakage and resolution",
	}
	out := mustRun(ctx, sim.DriveBy{BeamShaped: true, WithClutter: true, Seed: 501})
	for _, w := range []dsp.Window{dsp.Rectangular, dsp.Hann, dsp.Hamming, dsp.Blackman} {
		snr := decodeWith(out, w, false)
		cell := "lost"
		if !math.IsInf(snr, -1) {
			cell = f1(snr)
		}
		t.AddRow(w.String(), cell)
	}
	return t
}

// AblationDetrend compares decoding with and without stripping the
// single-stack envelope r_T(theta) before the FFT (Sec 5.1/6).
func AblationDetrend(ctx context.Context) *Table {
	t := &Table{
		ID:      "Ablation: envelope detrending",
		Title:   "decoding with vs without r_T(theta) envelope removal",
		Columns: []string{"configuration", "SNR (dB)"},
		Notes: "the slowly varying single-stack envelope leaks low-frequency " +
			"energy across the coding band unless removed (Sec 6's " +
			"normalization step)",
	}
	out := mustRun(ctx, sim.DriveBy{BeamShaped: true, Seed: 502})
	with := decodeWith(out, dsp.Hann, false)
	without := decodeWith(out, dsp.Hann, true)
	cell := func(v float64) string {
		if math.IsInf(v, -1) {
			return "lost"
		}
		return f1(v)
	}
	t.AddRow("with detrending", cell(with))
	t.AddRow("without detrending", cell(without))
	return t
}

// AblationSampling sweeps the per-pass frame budget against Eq 9's Nyquist
// requirement.
func AblationSampling(ctx context.Context) *Table {
	t := &Table{
		ID:      "Ablation: RCS sampling density",
		Title:   "decoding SNR vs frames per pass (Eq 9 Nyquist bound)",
		Columns: []string{"frames", "SNR (dB)", "bits"},
		Notes: "the fastest coding tone needs ~60 samples over the pass " +
			"(Sec 5.3); oversampling beyond that buys averaging gain",
	}
	for _, frames := range []int{48, 96, 192, 280} {
		out := mustRun(ctx, sim.DriveBy{BeamShaped: true, FrameBudget: frames, Seed: 503})
		t.AddRow(itoa(frames), snrCell(out), out.Bits)
	}
	return t
}

// AblationGroundMultipath adds the two-ray road bounce the paper's
// evaluation setup avoids (tags on tripods, short ranges) and shows the
// frequency-domain code shrugging it off.
func AblationGroundMultipath(ctx context.Context) *Table {
	t := &Table{
		ID:      "Ablation: ground multipath",
		Title:   "two-ray road-surface bounce on vs off",
		Columns: []string{"distance (m)", "flat channel", "with ground bounce"},
		Notes: "the bounce adds a slowly varying interference envelope; " +
			"detrending strips most of it so decoding usually survives with a " +
			"few dB penalty, though a deep bounce null can still defeat " +
			"detection at unlucky geometries",
	}
	for _, d := range []float64{2, 3, 4} {
		flat := mustRun(ctx, sim.DriveBy{BeamShaped: true, Standoff: d, Seed: 800 + int64(d)})
		bounce := mustRun(ctx, sim.DriveBy{BeamShaped: true, Standoff: d, GroundMultipath: true, Seed: 800 + int64(d)})
		t.AddRow(f1(d), snrCell(flat), snrCell(bounce))
	}
	return t
}

// AblationADC sweeps the baseband converter resolution.
func AblationADC(ctx context.Context) *Table {
	t := &Table{
		ID:      "Ablation: ADC resolution",
		Title:   "decoding SNR vs baseband ADC bits",
		Columns: []string{"ADC bits", "SNR (dB)", "bits"},
		Notes: "the TI radar digitizes at 12+ bits; the spatial code keeps " +
			"working down to coarse converters because the coding information " +
			"lives in peak positions, not fine amplitudes",
	}
	for _, bits := range []int{4, 6, 8, 12} {
		cfg := radar.TI1443()
		cfg.ADCBits = bits
		out := mustRun(ctx, sim.DriveBy{BeamShaped: true, Radar: &cfg, Seed: 801})
		t.AddRow(itoa(bits), snrCell(out), out.Bits)
	}
	ideal := mustRun(ctx, sim.DriveBy{BeamShaped: true, Seed: 801})
	t.AddRow("ideal", snrCell(ideal), ideal.Bits)
	return t
}

// AblationWavelength probes the decoder's sensitivity to an incorrect
// wavelength assumption: the spacing axis of the RCS spectrum scales with
// lambda, so a mis-assumed carrier shifts every coding peak off its slot.
func AblationWavelength(ctx context.Context) *Table {
	t := &Table{
		ID:      "Ablation: wavelength assumption",
		Title:   "decoding with a wrong carrier-frequency assumption",
		Columns: []string{"assumed carrier (GHz)", "SNR (dB)", "bits"},
		Notes: "peaks live at 2*d/lambda cycles per unit u; a ~3 GHz (4%) " +
			"carrier error shifts the 10.5-lambda peak by ~0.4 lambda, " +
			"half a slot tolerance — the decoder must know the band it reads",
	}
	out := mustRun(ctx, sim.DriveBy{BeamShaped: true, Seed: 810})
	if !out.Detected {
		t.AddRow("n/a", "lost", "")
		return t
	}
	for _, ghz := range []float64{73, 76, 79, 82, 85} {
		lambda := em.C / (ghz * 1e9)
		dec, err := coding.NewDecoder(4, coding.DefaultDelta(), lambda)
		if err != nil {
			panic(err)
		}
		res, err := dec.Decode(out.Detection.TagU, out.Detection.TagRSS)
		if err != nil {
			t.AddRow(f1(ghz), "lost", "")
			continue
		}
		t.AddRow(f1(ghz), f1(res.SNRdB), coding.BitsString(res.Bits))
	}
	return t
}
