package experiments

import (
	"context"
	"math"

	"ros/internal/em"
	"ros/internal/geom"
	"ros/internal/obs"
	"ros/internal/sim"
	"ros/internal/sweep"
)

// mustRun executes a drive-by and panics on configuration errors
// (experiment definitions are static, so errors are programmer errors). A
// cancelled context also surfaces as a panic — carrying the typed
// roserr.ErrReadCancelled — which cmd/rosbench recovers into a clean exit.
// The failing configuration is logged first so the panic has context.
func mustRun(ctx context.Context, cfg sim.DriveBy) *sim.Outcome {
	out, err := sim.RunContext(ctx, cfg)
	if err != nil {
		obs.Logger().Error("experiments: drive-by failed",
			"bits", cfg.Bits, "seed", cfg.Seed, "standoff", cfg.Standoff, "err", err)
		panic(err)
	}
	return out
}

// runAll executes independent drive-bys on a worker pool, preserving order.
// The pool has already logged each failing point with its index; like
// mustRun, failures (including cancellation) surface as a panic carrying the
// typed error.
func runAll(ctx context.Context, cfgs []sim.DriveBy) []*sim.Outcome {
	outs, _, err := sweep.MapCtx(ctx, cfgs, 0, func(ctx context.Context, cfg sim.DriveBy) (*sim.Outcome, error) {
		return sim.RunContext(ctx, cfg)
	})
	if err != nil {
		obs.Logger().Error("experiments: sweep failed",
			"points", len(cfgs), "err", err)
		panic(err)
	}
	return outs
}

// snrCell formats an SNR, marking failed reads.
func snrCell(o *sim.Outcome) string {
	if !o.Detected || math.IsInf(o.SNRdB, -1) {
		return "lost"
	}
	return f1(o.SNRdB)
}

// rssCell formats a median RSS.
func rssCell(o *sim.Outcome) string {
	if !o.Detected || math.IsInf(o.MedianRSSdBm, -1) {
		return "lost"
	}
	return f1(o.MedianRSSdBm)
}

// Fig14 regenerates Fig 14: RSS and decoding SNR vs elevation angle for
// beam-shaped tags and the unshaped baseline, radar fixed 3 m away.
func Fig14(ctx context.Context) *Table {
	t := &Table{
		ID:    "Fig 14",
		Title: "elevation misalignment, 3 m standoff: beam shaping vs baseline",
		Columns: []string{"elevation (deg)", "shaped RSS (dBm)", "baseline RSS (dBm)",
			"shaped SNR (dB)", "baseline SNR (dB)"},
		Notes: "paper: shaped tags stay > 15 dB SNR across 0-4 deg; the " +
			"baseline varies wildly and dips to ~10 dB",
	}
	degs := []float64{0, 1, 2, 3, 4}
	var cfgs []sim.DriveBy
	for _, deg := range degs {
		h := 3 * math.Tan(geom.Rad(deg))
		cfgs = append(cfgs,
			sim.DriveBy{BeamShaped: true, HeightOffset: h, Seed: 140 + int64(deg*10)},
			sim.DriveBy{BeamShaped: false, HeightOffset: h, Seed: 140 + int64(deg*10)})
	}
	outs := runAll(ctx, cfgs)
	for i, deg := range degs {
		shaped, base := outs[2*i], outs[2*i+1]
		t.AddRow(f1(deg), rssCell(shaped), rssCell(base), snrCell(shaped), snrCell(base))
	}
	return t
}

// Fig15 regenerates Fig 15: RSS and SNR vs radar-to-tag distance for tags
// with 8, 16 and 32 PSVAAs per stack.
func Fig15(ctx context.Context) *Table {
	t := &Table{
		ID:    "Fig 15",
		Title: "radar-to-tag distance sweep for 8/16/32-module stacks",
		Columns: []string{"distance (m)", "RSS 8 (dBm)", "RSS 16", "RSS 32",
			"SNR 8 (dB)", "SNR 16", "SNR 32"},
		Notes: "paper: RSS follows the d^-4 law; 8/16/32-module tags decodable " +
			"to ~4/5/6 m; the 32-module tag pays a near-field SNR penalty " +
			"(its far field is ~6 m), so 8/16 show statistically higher SNR",
	}
	dists := []float64{2, 3, 4, 5, 6}
	mods := []int{8, 16, 32}
	var cfgs []sim.DriveBy
	for _, d := range dists {
		for _, mod := range mods {
			cfgs = append(cfgs, sim.DriveBy{
				BeamShaped: true, StackModules: mod, Standoff: d,
				Seed: 150 + int64(d*10) + int64(mod),
			})
		}
	}
	outs := runAll(ctx, cfgs)
	for i, d := range dists {
		row := []string{f1(d)}
		group := outs[i*len(mods) : (i+1)*len(mods)]
		for _, o := range group {
			row = append(row, rssCell(o))
		}
		for _, o := range group {
			row = append(row, snrCell(o))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig16a regenerates Fig 16a: two tags side by side at spread angles of
// 10-30 degrees.
func Fig16a(ctx context.Context) *Table {
	t := &Table{
		ID:      "Fig 16a",
		Title:   "adjacent-tag interference vs spread angle (two tags, 3 m)",
		Columns: []string{"spread angle (deg)", "SNR (dB)"},
		Notes:   "paper: SNR only slightly increases with spread angle, staying well above 15 dB",
	}
	angles := []float64{10, 15, 20, 25, 30}
	var cfgs []sim.DriveBy
	for _, a := range angles {
		cfgs = append(cfgs, sim.DriveBy{BeamShaped: true, SecondTagSpreadDeg: a, Seed: 160 + int64(a)})
	}
	outs := runAll(ctx, cfgs)
	for i, a := range angles {
		t.AddRow(f1(a), snrCell(outs[i]))
	}
	return t
}

// Fig16b regenerates Fig 16b: a second interrogating radar 1-3 m away.
func Fig16b(ctx context.Context) *Table {
	t := &Table{
		ID:      "Fig 16b",
		Title:   "adjacent-radar interference vs radar separation",
		Columns: []string{"separation (m)", "SNR (dB)"},
		Notes: "paper: SNR slightly increases with separation and stays above " +
			"15 dB even at 1 m (retroreflection suppresses cross-radar paths)",
	}
	seps := []float64{1, 1.5, 2, 2.5, 3}
	var cfgs []sim.DriveBy
	for _, s := range seps {
		cfgs = append(cfgs, sim.DriveBy{BeamShaped: true, InterfererSeparation: s, Seed: 161 + int64(s*10)})
	}
	outs := runAll(ctx, cfgs)
	for i, s := range seps {
		t.AddRow(f1(s), snrCell(outs[i]))
	}
	return t
}

// Fig16c regenerates Fig 16c: decoding under fog.
func Fig16c(ctx context.Context) *Table {
	t := &Table{
		ID:      "Fig 16c",
		Title:   "decoding SNR under fog",
		Columns: []string{"fog level", "SNR (dB)"},
		Notes:   "paper: median SNR stays above 15 dB at every fog level",
	}
	for _, fog := range []em.FogLevel{em.FogClear, em.FogLight, em.FogHeavy} {
		out := mustRun(ctx, sim.DriveBy{BeamShaped: true, Fog: fog, Seed: 162 + int64(fog)})
		t.AddRow(fog.String(), snrCell(out))
	}
	return t
}

// Fig16d regenerates Fig 16d: decoding vs relative self-tracking error.
func Fig16d(ctx context.Context) *Table {
	t := &Table{
		ID:      "Fig 16d",
		Title:   "decoding SNR vs relative tracking error",
		Columns: []string{"tracking error (%)", "SNR (dB)", "bits"},
		Notes: "paper: ~20 dB below 6% error, decreasing beyond as the coding " +
			"peaks distort",
	}
	pcts := []float64{0, 2, 4, 6, 8, 10}
	var cfgs []sim.DriveBy
	for _, pct := range pcts {
		for s := int64(0); s < 3; s++ {
			cfgs = append(cfgs, sim.DriveBy{BeamShaped: true, TrackingError: pct / 100, Seed: 163 + s})
		}
	}
	outs := runAll(ctx, cfgs)
	for i, pct := range pcts {
		// Median over three drift realizations (the paper reports
		// medians across repeated reads).
		var snrs []float64
		bits := ""
		for _, out := range outs[3*i : 3*i+3] {
			if out.Detected && !math.IsInf(out.SNRdB, -1) {
				snrs = append(snrs, out.SNRdB)
				bits = out.Bits
			}
		}
		if len(snrs) == 0 {
			t.AddRow(f1(pct), "lost", "")
			continue
		}
		t.AddRow(f1(pct), f1(median(snrs)), bits)
	}
	return t
}

// Fig17 regenerates Fig 17: decoding vs the angular field of view over which
// the RCS is sampled.
func Fig17(ctx context.Context) *Table {
	t := &Table{
		ID:      "Fig 17",
		Title:   "decoding SNR vs angular field of view",
		Columns: []string{"FoV (deg)", "SNR (dB)", "bits"},
		Notes: "paper: SNR rises from 20 to ~80 deg and dips slightly at 100 " +
			"(samples beyond the radar's 60 deg antenna FoV are noise); 60 deg " +
			"suffices",
	}
	fovs := []float64{20, 40, 60, 80, 100}
	var cfgs []sim.DriveBy
	for _, fov := range fovs {
		cfgs = append(cfgs, sim.DriveBy{BeamShaped: true, FoVDeg: fov, Seed: 170})
	}
	outs := runAll(ctx, cfgs)
	for i, fov := range fovs {
		t.AddRow(f1(fov), snrCell(outs[i]), outs[i].Bits)
	}
	return t
}

// Fig18 regenerates Fig 18: decoding vs vehicle speed.
func Fig18(ctx context.Context) *Table {
	t := &Table{
		ID:      "Fig 18",
		Title:   "decoding SNR vs vehicle speed",
		Columns: []string{"speed (mph)", "SNR (dB)", "bits"},
		Notes: "paper: SNR varies with driving dynamics but consistently " +
			"exceeds 14 dB; Doppler is negligible",
	}
	mphs := []float64{10, 15, 20, 25, 30}
	var cfgs []sim.DriveBy
	for _, mph := range mphs {
		cfgs = append(cfgs, sim.DriveBy{BeamShaped: true, Speed: geom.MPH(mph), Seed: 180 + int64(mph)})
	}
	outs := runAll(ctx, cfgs)
	for i, mph := range mphs {
		t.AddRow(f1(mph), snrCell(outs[i]), outs[i].Bits)
	}
	return t
}

// LinkBudget regenerates the Sec 5.3 / Sec 8 link-budget table.
func LinkBudget(ctx context.Context) *Table {
	t := &Table{
		ID:      "Link budget",
		Title:   "Sec 5.3 link budget and maximum reading range",
		Columns: []string{"quantity", "TI IWR1443", "commercial", "paper"},
		Notes:   "paper: -62 dBm floor and 6.9 m for the TI radar; 52 m for a commercial radar",
	}
	ti := em.TIRadar()
	com := em.CommercialRadar()
	t.AddRow("EIRP (dBm)", f1(ti.EIRPdBm), f1(com.EIRPdBm), "21 / 50")
	t.AddRow("noise figure (dB)", f1(ti.NoiseFigureDB), f1(com.NoiseFigureDB), "15 / 9")
	t.AddRow("Rx gain (dB)", f1(ti.RxGainDB()), f1(com.RxGainDB()), "55")
	t.AddRow("noise floor (dBm)", f1(ti.NoiseFloorDBm()), f1(com.NoiseFloorDBm()), "-62 (TI)")
	t.AddRow("tag RCS (dBsm)", f1(em.TagRCS32StackDBsm), f1(em.TagRCS32StackDBsm), "-23")
	t.AddRow("max range (m)",
		f2(ti.MaxRange(em.TagRCS32StackDBsm, fc)),
		f2(com.MaxRange(em.TagRCS32StackDBsm, fc)),
		"6.9 / 52")
	return t
}
