package experiments

import (
	"context"
	"fmt"
	"math"

	"ros/internal/dsp"
	"ros/internal/radar"
	"ros/internal/sim"
)

// MonteCarloBER does what Sec 7.1 says the hardware evaluation cannot:
// measure the bit error rate directly. The paper converts decoding SNR to
// BER through the analytic OOK model because "directly computing bit error
// rate entails repeating the drive-through experiments millions of times
// which is infeasible" — for a simulator it is merely expensive. This
// experiment runs hundreds of noisy passes at a deliberately degraded
// operating point, counts actual bit errors, and compares the measured BER
// against the OOK prediction at the measured median SNR, closing the loop
// on the paper's Sec 7.1 methodology.
func MonteCarloBER(ctx context.Context) *Table {
	t := &Table{
		ID:    "Monte Carlo BER",
		Title: "measured bit errors vs the Sec 7.1 OOK model across a noise sweep",
		Columns: []string{"extra NF (dB)", "passes", "missed", "bits", "errors",
			"measured BER", "median SNR (dB)", "OOK BER @ median"},
		Notes: "the paper maps SNR to BER analytically because hardware " +
			"drive-throughs cannot be repeated millions of times; the " +
			"simulator counts real errors and reproduces the waterfall " +
			"(error-free at nominal noise, degrading as the link erodes). " +
			"Note the analytic OOK mapping at the MEDIAN SNR is optimistic: " +
			"errors concentrate in the low-SNR tail of reads, which a " +
			"median-based conversion cannot see",
	}

	const reads = 120
	patterns := []string{"1011", "0111", "1101", "1110", "1001", "0101", "0011", "1111"}
	for _, boost := range []float64{0, 6, 8, 10} {
		rcfg := radar.TI1443()
		rcfg.FrontEnd.NoiseFigureDB += boost
		cfgs := make([]sim.DriveBy, reads)
		for i := range cfgs {
			cfgs[i] = sim.DriveBy{
				Bits:         patterns[i%len(patterns)],
				BeamShaped:   true,
				StackModules: 8,
				Radar:        &rcfg,
				Seed:         int64(9000 + i),
			}
		}
		outs := runAll(ctx, cfgs)

		bitsTotal, bitErrors, missed := 0, 0, 0
		var snrs []float64
		for i, out := range outs {
			if !out.Detected || len(out.Bits) != len(cfgs[i].Bits) {
				missed++
				continue
			}
			for j := range out.Bits {
				bitsTotal++
				if out.Bits[j] != cfgs[i].Bits[j] {
					bitErrors++
				}
			}
			if !math.IsInf(out.SNRdB, -1) {
				snrs = append(snrs, out.SNRdB)
			}
		}

		measured := "n/a"
		if bitsTotal > 0 {
			measured = fmt.Sprintf("%.4f", float64(bitErrors)/float64(bitsTotal))
		}
		medCell, ookCell := "n/a", "n/a"
		if len(snrs) > 0 {
			medSNR := median(snrs)
			medCell = f1(medSNR)
			ookCell = fmt.Sprintf("%.4f", dsp.OOKBerFromDB(medSNR))
		}
		t.AddRow(f1(boost), itoa(reads), itoa(missed), itoa(bitsTotal),
			itoa(bitErrors), measured, medCell, ookCell)
	}
	return t
}
