package experiments

import (
	"context"

	"ros/internal/fault"
	"ros/internal/sim"
)

// ChaosFaultSweep measures graceful degradation under injected faults: one
// canonical drive-by per frame-loss rate, reporting how many frames survived,
// how many samples were scrubbed, and whether the tag still decoded. It backs
// the measured fault-rate curve of docs/ROBUSTNESS.md: the decoder reads from
// the aggregate of azimuth samples, so losing a random subset of frames
// lowers SNR smoothly instead of breaking the read.
func ChaosFaultSweep(ctx context.Context) *Table {
	t := &Table{
		ID:    "Chaos",
		Title: "decoding under injected frame loss and sample corruption",
		Columns: []string{"drop rate", "frames kept", "dropped", "scrubbed",
			"SNR (dB)", "bits", "correct"},
		Notes: "expected: correct decode with gently falling SNR through 20% " +
			"frame loss; reads fail typed (ErrFrameCorrupt) only past the " +
			"50% loss budget",
	}
	rates := []float64{0, 0.05, 0.1, 0.2, 0.3}
	var cfgs []sim.DriveBy
	for i, rate := range rates {
		cfgs = append(cfgs, sim.DriveBy{
			BeamShaped: true,
			Seed:       190 + int64(i),
			Fault: &fault.Config{
				Seed:          190 + int64(i),
				FrameDropRate: rate,
				CorruptRate:   rate,
			},
		})
	}
	outs := runAll(ctx, cfgs)
	for i, rate := range rates {
		o := outs[i]
		correct := "no"
		if o.Correct {
			correct = "yes"
		}
		t.AddRow(f2(rate), itoa(o.FramesCompleted), itoa(o.FramesDropped),
			itoa(o.SamplesScrubbed), snrCell(o), o.Bits, correct)
	}
	return t
}
