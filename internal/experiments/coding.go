package experiments

import (
	"context"
	"ros/internal/coding"
	"ros/internal/em"
)

// Fig10 regenerates Fig 10: the 4-bit example tag (M = 5, delta_c = 1.5
// lambda) — its layout, the multi-stack RCS across azimuth, and the RCS
// frequency spectrum with four coding peaks at 6, 7.5, 9, 10.5 lambda.
func Fig10(ctx context.Context) *Table {
	t := &Table{
		ID:      "Fig 10",
		Title:   "4-bit spatial code: layout and RCS frequency spectrum",
		Columns: []string{"quantity", "value"},
		Notes: "paper: coding stacks at 6, -7.5, 9, -10.5 lambda; 4 coding " +
			"peaks at those spacings; secondary peaks outside the coding band",
	}
	bits, err := coding.ParseBits("1111")
	if err != nil {
		panic(err)
	}
	l, err := coding.NewLayout(bits, coding.DefaultDelta())
	if err != nil {
		panic(err)
	}
	lambda := em.Lambda79()
	for k := 1; k <= 4; k++ {
		t.AddRow("stack "+itoa(k)+" position (lambda)", f2(l.SlotPosition(k)/lambda))
	}
	lo, hi := l.CodingBand()
	t.AddRow("coding band (lambda)", f1(lo/lambda)+" .. "+f1(hi/lambda))
	t.AddRow("tag width (lambda)", f1(l.Width()/lambda))

	// Synthesize the far-field RCS over u and take its spectrum.
	pos := l.Positions()
	n := 1200
	us := make([]float64, n)
	rss := make([]float64, n)
	for i := range us {
		u := -0.6 + 1.2*float64(i)/float64(n-1)
		us[i] = u
		rss[i] = coding.MultiStackGain(pos, u, lambda)
	}
	spec, err := coding.ComputeSpectrum(us, rss, coding.SpectrumOptions{Lambda: lambda})
	if err != nil {
		panic(err)
	}
	floor := spec.AmplitudeAt(12*lambda, 0.1*lambda)
	for _, dk := range []float64{6, 7.5, 9, 10.5} {
		peak := spec.AmplitudeAt(dk*lambda, 0.3*lambda)
		t.AddRow("peak @"+f1(dk)+" lambda (dB over floor)", f1(em.DB(peak/floor)))
	}
	t.AddRow("secondary peak @13.5 lambda (dB over floor)",
		f1(em.DB(spec.AmplitudeAt(13.5*lambda, 0.3*lambda)/floor)))
	return t
}

// Capacity regenerates the Sec 5.3 capacity/tradeoff table: tag width,
// far-field distance and maximum vehicle speed versus coding bits.
func Capacity(ctx context.Context) *Table {
	t := &Table{
		ID:    "Capacity",
		Title: "Sec 5.3 encoding capacity model (delta_c = 1.5 lambda)",
		Columns: []string{"bits", "width (lambda)", "width (cm)",
			"far field (m)", "max speed @1kHz, 1.6m (m/s)"},
		Notes: "paper anchors: 4 bits -> 22.5 lambda wide, ~2.9 m far field, " +
			"~38.5 m/s; 6 bits -> 34.5 lambda, ~9 m far field (computed there " +
			"with the full width)",
	}
	lambda := em.Lambda79()
	for bits := 2; bits <= 8; bits++ {
		bs := make([]bool, bits)
		for i := range bs {
			bs[i] = true
		}
		l, err := coding.NewLayout(bs, coding.DefaultDelta())
		if err != nil {
			panic(err)
		}
		t.AddRow(
			itoa(bits),
			f1(l.Width()/lambda),
			f1(l.Width()*100),
			f2(l.FarFieldDistance(fc)),
			f1(l.MaxSpeed(1000, 1.62, fc)),
		)
	}
	return t
}
