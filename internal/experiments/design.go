package experiments

import (
	"context"
	"math/rand"

	"ros/internal/beamshape"
	"ros/internal/em"
	"ros/internal/geom"
	"ros/internal/stack"
	"ros/internal/txline"
	"ros/internal/vaa"
)

const fc = em.CenterFrequency

// Fig03 regenerates Fig 3: band-averaged monostatic RCS of VAAs with 1-6
// antenna pairs across 76-81 GHz, reported per pair. The paper's takeaway:
// the per-pair contribution is maximized at 3 pairs and only changes
// marginally beyond.
func Fig03(ctx context.Context) *Table {
	t := &Table{
		ID:      "Fig 3",
		Title:   "RCS vs number of antenna pairs, 76-81 GHz band average",
		Columns: []string{"pairs", "total RCS (dBsm)", "per-pair RCS (dB)"},
		Notes: "paper: per-pair RCS contribution maximized at 3 pairs " +
			"(TL dispersion bound delta_l <= 4.94 lambda_g plus line loss); " +
			"total RCS grows marginally beyond 3 pairs",
	}
	best, bestPairs := 0.0, 0
	for n := 1; n <= 6; n++ {
		a := vaa.NewVAA(n)
		avg := a.BandAveragedRCS(0, 76e9, 81e9, 26, em.PolV, em.PolV)
		perPair := avg / float64(n)
		if perPair > best {
			best, bestPairs = perPair, n
		}
		t.AddRow(itoa(n), f1(em.DBsm(avg)), f1(em.DB(perPair)))
	}
	t.AddRow("best", itoa(bestPairs), "")
	return t
}

// Fig04a regenerates Fig 4a: monostatic RCS of a 3-pair VAA vs the 6-patch
// ULA across azimuth. VAA: flat within ~120 deg; ULA: specular.
func Fig04a(ctx context.Context) *Table {
	t := &Table{
		ID:      "Fig 4a",
		Title:   "monostatic RCS vs azimuth: VAA (retro) vs ULA (specular)",
		Columns: []string{"azimuth (deg)", "VAA (dBsm)", "ULA (dBsm)"},
		Notes: "paper: VAA relatively flat within ~120 deg FoV; ULA responds " +
			"strongly only at broadside",
	}
	v := vaa.NewVAA(3)
	u := vaa.NewULA(3)
	for deg := -75.0; deg <= 75; deg += 15 {
		th := geom.Rad(deg)
		t.AddRow(f1(deg),
			f1(v.MonostaticRCSdB(th, fc, em.PolV, em.PolV)),
			f1(u.MonostaticRCSdB(th, fc, em.PolV, em.PolV)))
	}
	return t
}

// Fig04b regenerates Fig 4b: bistatic RCS with illumination at 30 deg. The
// VAA redirects to +30 deg, the ULA mirrors to -30 deg; VAA leakage
// elsewhere is 5-13 dB below its retro lobe.
func Fig04b(ctx context.Context) *Table {
	t := &Table{
		ID:      "Fig 4b",
		Title:   "bistatic RCS, illumination at 30 deg",
		Columns: []string{"observation (deg)", "VAA (dBsm)", "ULA (dBsm)"},
		Notes: "paper: VAA peak at the incidence angle (+30), ULA at the " +
			"mirror angle (-30); VAA leakage 5-13 dB below its retro lobe",
	}
	v := vaa.NewVAA(3)
	u := vaa.NewULA(3)
	in := geom.Rad(30)
	for deg := -60.0; deg <= 60; deg += 10 {
		th := geom.Rad(deg)
		t.AddRow(f1(deg),
			f1(em.DBsm(v.BistaticRCS(in, th, fc, em.PolV, em.PolV))),
			f1(em.DBsm(u.BistaticRCS(in, th, fc, em.PolV, em.PolV))))
	}
	return t
}

// Fig05 regenerates Fig 5: PSVAA vs original VAA under cross-polarized and
// co-polarized Tx/Rx.
func Fig05(ctx context.Context) *Table {
	t := &Table{
		ID:    "Fig 5",
		Title: "PSVAA vs VAA monostatic RCS, cross-pol and co-pol Tx/Rx",
		Columns: []string{"azimuth (deg)", "PSVAA x-pol", "VAA x-pol",
			"PSVAA co-pol", "VAA co-pol"},
		Notes: "paper (5a): PSVAA ~-43 dBsm flat vs VAA leakage ~-55 dBsm " +
			"(12 dB gap); (5b): co-pol PSVAA is specular only, VAA retroreflects",
	}
	p := vaa.NewPSVAA(3)
	v := vaa.NewVAA(3)
	for deg := -60.0; deg <= 60; deg += 15 {
		th := geom.Rad(deg)
		t.AddRow(f1(deg),
			f1(p.MonostaticRCSdB(th, fc, em.PolV, em.PolH)),
			f1(v.MonostaticRCSdB(th, fc, em.PolV, em.PolH)),
			f1(p.MonostaticRCSdB(th, fc, em.PolV, em.PolV)),
			f1(v.MonostaticRCSdB(th, fc, em.PolV, em.PolV)))
	}
	return t
}

// Fig06 regenerates Fig 6: PSVAA RCS across 76-81 GHz for both polarization
// pairings, at broadside and 30 deg.
func Fig06(ctx context.Context) *Table {
	t := &Table{
		ID:    "Fig 6",
		Title: "PSVAA RCS across the 76-81 GHz band",
		Columns: []string{"frequency (GHz)", "x-pol @0deg", "x-pol @30deg",
			"co-pol @0deg"},
		Notes: "paper: cross-pol response varies < 4 dB across the band; " +
			"co-pol keeps only the specular structure",
	}
	p := vaa.NewPSVAA(3)
	for f := 76e9; f <= 81e9+1e6; f += 1e9 {
		t.AddRow(f1(f/1e9),
			f1(p.MonostaticRCSdB(0, f, em.PolV, em.PolH)),
			f1(p.MonostaticRCSdB(geom.Rad(30), f, em.PolV, em.PolH)),
			f1(p.MonostaticRCSdB(0, f, em.PolV, em.PolV)))
	}
	return t
}

// Fig08 regenerates Fig 8: the elevation pattern of an 8-module stack with
// DE-GA beam shaping vs the uniform baseline, plus the paper's fabricated
// phase layout.
func Fig08(ctx context.Context) *Table {
	t := &Table{
		ID:    "Fig 8",
		Title: "elevation pattern: DE-GA beam shaping vs uniform stack (8 modules)",
		Columns: []string{"elevation (deg)", "shaped (dB)", "paper layout (dB)",
			"uniform (dB)"},
		Notes: "paper: shaping flattens the beam to ~10 deg (from ~2) with a " +
			"symmetric pattern",
	}
	rng := rand.New(rand.NewSource(42))
	res, err := beamshape.Shape(8, beamshape.DefaultTargetWidth, rng)
	if err != nil {
		panic(err)
	}
	paper, err := beamshape.Build(beamshape.PaperPhases8())
	if err != nil {
		panic(err)
	}
	uniform := stack.NewUniform(8)
	norm := func(s *stack.Stack) func(float64) float64 {
		peak := 0.0
		for el := -0.3; el <= 0.3; el += 1e-3 {
			if g := s.ElevationGain(el, fc); g > peak {
				peak = g
			}
		}
		return func(el float64) float64 {
			return em.DB(s.ElevationGain(el, fc) / peak)
		}
	}
	gs, gp, gu := norm(res.Stack), norm(paper), norm(uniform)
	for deg := -15.0; deg <= 15; deg += 2.5 {
		el := geom.Rad(deg)
		t.AddRow(f1(deg), f1(gs(el)), f1(gp(el)), f1(gu(el)))
	}
	t.AddRow("-3dB width", f1(geom.Deg(res.Stack.MeasuredBeamwidth(fc))),
		f1(geom.Deg(paper.MeasuredBeamwidth(fc))),
		f1(geom.Deg(uniform.MeasuredBeamwidth(fc))))
	return t
}

// PairBound regenerates the Sec 4.1 design-rule table: the TL dispersion
// bound and the implied maximum pair count.
func PairBound(ctx context.Context) *Table {
	t := &Table{
		ID:      "Pair bound",
		Title:   "Sec 4.1 TL dispersion bound",
		Columns: []string{"quantity", "value", "paper"},
		Notes:   "paper: delta_l <= 4.94 lambda_g for B = 4 GHz, hence <= 3 antenna pairs",
	}
	line := txline.Default()
	lg := line.GuidedWavelength(fc)
	dl := line.MaxLengthDifference(4e9)
	t.AddRow("guided wavelength (um)", f1(lg*1e6), "2027")
	t.AddRow("delta_l bound (lambda_g)", f2(dl/lg), "4.94")
	t.AddRow("max antenna pairs", itoa(line.MaxAntennaPairs(4e9, 2*lg)), "3")
	ls := txline.PaperTLLengths()
	t.AddRow("fabricated TL lengths (mm)",
		f3(ls[0]*1e3)+", "+f3(ls[1]*1e3)+", "+f3(ls[2]*1e3),
		"4.106, 9.148, 12.171")
	return t
}
