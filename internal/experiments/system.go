package experiments

import (
	"context"
	"math"
	"math/rand"

	"ros/internal/beamshape"
	"ros/internal/coding"
	"ros/internal/detect"
	"ros/internal/em"
	"ros/internal/geom"
	"ros/internal/obs"
	"ros/internal/radar"
	"ros/internal/scene"
)

// fig11Scene builds the Fig 11 illustration: a "1111" tag on one tripod and
// a bare tripod 1 m away.
func fig11Scene(rng *rand.Rand) *scene.Scene {
	bits, err := coding.ParseBits("1111")
	if err != nil {
		panic(err)
	}
	layout, err := coding.NewLayout(bits, coding.DefaultDelta())
	if err != nil {
		panic(err)
	}
	tag, err := scene.NewTag(layout, beamshape.Shaped(32), geom.Vec3{})
	if err != nil {
		panic(err)
	}
	return &scene.Scene{
		Tags:    []*scene.Tag{tag},
		Clutter: []*scene.Object{scene.NewObject(scene.ClassTripod, geom.Vec3{X: 1}, rng)},
	}
}

// runPipeline drives the Fig 11 pass and returns the pipeline result. The
// seed roots the pipeline's per-frame noise streams.
func runPipeline(sc *scene.Scene, seed int64) *detect.Result {
	p := detect.NewPipeline(radar.TI1443())
	frames := 260
	truth := make([]geom.Vec3, frames)
	for i := range truth {
		truth[i] = geom.Vec3{X: -4 + 8*float64(i)/float64(frames-1), Y: 3}
	}
	res, err := p.Run(sc, truth, truth, geom.Vec3{X: 2}, seed)
	if err != nil {
		obs.Logger().Error("experiments: Fig 11 pipeline failed", "seed", seed, "err", err)
		panic(err)
	}
	return res
}

// Fig11 regenerates Fig 11: detecting and decoding a tag next to a tripod —
// merged point-cloud clusters, per-object features, and the tag's decoded
// spectrum peaks.
func Fig11(ctx context.Context) *Table {
	t := &Table{
		ID:      "Fig 11",
		Title:   "tag + tripod scene: clusters, RSS features, decoded peaks",
		Columns: []string{"quantity", "tag", "tripod"},
		Notes: "paper: two dense clusters; tag spectrum shows 4 coding peaks " +
			"around 6, 7.5, 9, 10.5 lambda, tripod spectrum shows none",
	}
	rng := rand.New(rand.NewSource(11))
	res := runPipeline(fig11Scene(rng), 11)

	var tag, tripod *detect.ObjectReport
	for i := range res.Objects {
		o := &res.Objects[i]
		if o.Centroid.Norm() < 0.5 {
			tag = o
		} else if math.Abs(o.Centroid.X-1) < 0.5 {
			tripod = o
		}
	}
	cell := func(o *detect.ObjectReport, f func(*detect.ObjectReport) string) string {
		if o == nil {
			return "missing"
		}
		return f(o)
	}
	t.AddRow("cluster points",
		cell(tag, func(o *detect.ObjectReport) string { return itoa(o.Points) }),
		cell(tripod, func(o *detect.ObjectReport) string { return itoa(o.Points) }))
	t.AddRow("point-cloud size (m)",
		cell(tag, func(o *detect.ObjectReport) string { return f3(o.Extent) }),
		cell(tripod, func(o *detect.ObjectReport) string { return f3(o.Extent) }))
	t.AddRow("RSS loss (dB)",
		cell(tag, func(o *detect.ObjectReport) string { return f1(o.RSSLossDB) }),
		cell(tripod, func(o *detect.ObjectReport) string { return f1(o.RSSLossDB) }))
	t.AddRow("classified as tag",
		cell(tag, func(o *detect.ObjectReport) string { return boolCell(o.IsTag) }),
		cell(tripod, func(o *detect.ObjectReport) string { return boolCell(o.IsTag) }))

	if res.TagIndex >= 0 && len(res.TagU) > 16 {
		dec, err := coding.NewDecoder(4, coding.DefaultDelta(), em.Lambda79())
		if err != nil {
			panic(err)
		}
		out, err := dec.Decode(res.TagU, res.TagRSS)
		if err == nil {
			t.AddRow("decoded bits", coding.BitsString(out.Bits), "-")
			t.AddRow("decoding SNR (dB)", f1(out.SNRdB), "-")
		} else {
			// This decode failure used to vanish (the table just lost two
			// rows); keep the table shape tolerant but say why.
			obs.Logger().Warn("experiments: Fig 11 tag decode failed",
				"samples", len(res.TagU), "err", err)
			t.AddRow("decoded bits", "undecodable", "-")
		}
	}
	return t
}

func boolCell(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Fig13 regenerates Fig 13: RSS loss and point-cloud size for the tag next
// to each ordinary object class.
func Fig13(ctx context.Context) *Table {
	t := &Table{
		ID:      "Fig 13",
		Title:   "tag-detection features per object class",
		Columns: []string{"object", "RSS loss (dB)", "cloud size (m)", "classified tag"},
		Notes: "paper: tag loses ~13 dB vs 16-19 dB for ordinary objects, and " +
			"has the smallest cloud; detection had no miss or false alarm",
	}
	classes := []scene.Class{
		scene.ClassParkingMeter, scene.ClassStreetLamp, scene.ClassRoadSign,
		scene.ClassHuman, scene.ClassTree,
	}
	rng := rand.New(rand.NewSource(13))
	misses, falseAlarms := 0, 0
	var tagLoss, tagExtent []float64
	for i, cl := range classes {
		sc := fig11Scene(rng)
		sc.Clutter = []*scene.Object{scene.NewObject(cl, geom.Vec3{X: 1.2, Y: -0.2}, rng)}
		res := runPipeline(sc, 1300+int64(i))
		var tag, other *detect.ObjectReport
		for i := range res.Objects {
			o := &res.Objects[i]
			if o.Centroid.Norm() < 0.5 {
				tag = o
			} else {
				other = o
			}
		}
		if tag == nil || !tag.IsTag {
			misses++
		} else {
			tagLoss = append(tagLoss, tag.RSSLossDB)
			tagExtent = append(tagExtent, tag.Extent)
		}
		if other != nil {
			if other.IsTag {
				falseAlarms++
			}
			t.AddRow(cl.String(), f1(other.RSSLossDB), f3(other.Extent), boolCell(other.IsTag))
		} else {
			t.AddRow(cl.String(), "n/a", "n/a", "n/a")
		}
	}
	if len(tagLoss) > 0 {
		t.AddRow("RoS tag (median over runs)", f1(median(tagLoss)), f3(median(tagExtent)), "yes")
	}
	t.AddRow("misses", itoa(misses), "", "")
	t.AddRow("false alarms", itoa(falseAlarms), "", "")
	return t
}

func median(x []float64) float64 {
	s := append([]float64(nil), x...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s) == 0 {
		return 0
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
