// Package experiments regenerates every table and figure of the RoS paper's
// evaluation as text tables: the design studies of Sec 4 (Figs 3-8), the
// spatial-coding verification of Sec 5 (Fig 10, capacity model), the
// detection pipeline of Sec 6 (Figs 11, 13), and the full evaluation of
// Sec 7 (Figs 14-18), plus the link-budget table of Sec 5.3/8.
//
// Each generator returns a Table whose Notes record the shape the paper
// reports, so EXPERIMENTS.md can compare paper-vs-measured side by side.
package experiments

import (
	"context"
	"fmt"
	"strings"
)

// Table is one regenerated figure or table.
type Table struct {
	// ID names the paper artifact ("Fig 3", "Sec 5.3 link budget").
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows hold formatted cells.
	Rows [][]string
	// Notes describe the expected shape from the paper and how the
	// measured series compares.
	Notes string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// AddRow appends formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// itoa formats an integer cell.
func itoa(v int) string { return fmt.Sprintf("%d", v) }

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f3 formats a float with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// Generator produces one experiment table. Run takes the sweep's context:
// generators stop at the next drive-by boundary when it is cancelled
// (surfacing the typed cancellation via panic, which cmd/rosbench recovers).
type Generator struct {
	ID  string
	Run func(context.Context) *Table
}

// Registry lists every experiment in paper order. It is the backing of
// cmd/rosbench and of the top-level benchmark suite.
func Registry() []Generator {
	return []Generator{
		{"Fig 3", Fig03}, {"Fig 4a", Fig04a}, {"Fig 4b", Fig04b},
		{"Fig 5", Fig05}, {"Fig 6", Fig06}, {"Fig 8", Fig08},
		{"Fig 10", Fig10}, {"Fig 11", Fig11}, {"Fig 13", Fig13},
		{"Fig 14", Fig14}, {"Fig 15", Fig15},
		{"Fig 16a", Fig16a}, {"Fig 16b", Fig16b}, {"Fig 16c", Fig16c},
		{"Fig 16d", Fig16d}, {"Fig 17", Fig17}, {"Fig 18", Fig18},
		{"Link budget", LinkBudget}, {"Capacity", Capacity},
		{"Pair bound", PairBound},
		{"Ablation: polarization switching", AblationPolSwitch},
		{"Ablation: spectrum window", AblationWindow},
		{"Ablation: envelope detrending", AblationDetrend},
		{"Ablation: RCS sampling density", AblationSampling},
		{"Ablation: ground multipath", AblationGroundMultipath},
		{"Ablation: wavelength assumption", AblationWavelength},
		{"Ablation: ADC resolution", AblationADC},
		{"Extension: circular polarization", ExtensionCP},
		{"Extension: ASK modulation", ExtensionASK},
		{"Extension: near-field focusing", ExtensionNFFA},
		{"Extension: occlusion", ExtensionOcclusion},
		{"Extension: elevation monopulse", ExtensionElevation},
		{"Extension: localization", ExtensionLocalization},
		{"Extension: rain", ExtensionRain},
		{"Extension: commercial range", ExtensionCommercialRange},
		{"Monte Carlo BER", MonteCarloBER},
		{"Chaos", ChaosFaultSweep},
	}
}

// ByID returns the generator whose ID matches (case-insensitive, ignoring
// spaces), or nil.
func ByID(id string) *Generator {
	norm := func(s string) string {
		return strings.ToLower(strings.ReplaceAll(s, " ", ""))
	}
	for _, g := range Registry() {
		if norm(g.ID) == norm(id) {
			g := g
			return &g
		}
	}
	return nil
}
