package experiments

import (
	"context"
	"math"
	"math/rand"

	"ros/internal/beamshape"
	"ros/internal/coding"
	"ros/internal/em"
	"ros/internal/geom"
	"ros/internal/radar"
	"ros/internal/scene"
	"ros/internal/sim"
	"ros/internal/stack"
	"ros/internal/vaa"
)

// Extensions implement and quantify the future-work directions of Sec 8:
// circular polarization, ASK multi-level coding, and near-field focusing.

// ExtensionCP regenerates the Sec 8 circular-polarization argument: a CP
// Van Atta preserves handedness (clutter flips it) and recovers the 6 dB
// PSVAA loss, stretching the link budget.
func ExtensionCP(ctx context.Context) *Table {
	t := &Table{
		ID:      "Extension: circular polarization",
		Title:   "Sec 8 CP-PSVAA: handedness separation without the 6 dB loss",
		Columns: []string{"quantity", "value", "paper/expected"},
		Notes: "Sec 8: CP elements keep the handedness ordinary reflectors " +
			"flip, recovering the 6 dB and extending every reading range by " +
			"10^(6/40) ~ 1.41x",
	}
	cp := vaa.NewCPVAA(3)
	ps := vaa.NewPSVAA(3)
	co := cp.MonostaticRCS(0, fc, em.PolRHC, em.PolRHC)
	cross := ps.MonostaticRCS(0, fc, em.PolV, em.PolH)
	t.AddRow("CP gain over PSVAA (dB)", f1(em.DB(co/cross)), "~6")
	t.AddRow("CP handedness discrimination (dB)", f1(cp.HandednessDiscriminationDB(0, fc)), ">> 0")
	ula := vaa.NewULA(3)
	t.AddRow("mirror (ULA) handedness rejection (dB)",
		f1(em.HandednessRejectionDB(ula.Scatter(0, 0, fc))), "strongly negative")
	ti := em.TIRadar()
	t.AddRow("TI range, linear PSVAA (m)", f2(ti.MaxRange(em.TagRCS32StackDBsm, fc)), "6.9")
	t.AddRow("TI range, CP (m)", f2(vaa.CPMaxRange(ti, fc)), "~9.9")
	com := em.CommercialRadar()
	t.AddRow("commercial range, linear (m)", f2(com.MaxRange(em.TagRCS32StackDBsm, fc)), "52")
	t.AddRow("commercial range, CP (m)", f2(vaa.CPMaxRange(com, fc)), "~74")
	return t
}

// ExtensionASK regenerates the Sec 8 ASK argument: multi-level peak
// amplitudes multiply the per-tag capacity.
func ExtensionASK(ctx context.Context) *Table {
	t := &Table{
		ID:      "Extension: ASK modulation",
		Title:   "Sec 8 multi-level (ASK) spatial coding",
		Columns: []string{"quantity", "OOK", "ASK-4"},
		Notes: "Sec 8: varying the PSVAA count per stack sets multiple RCS " +
			"levels, multiplying capacity; the price is a smaller per-level " +
			"decision margin",
	}
	lambda := em.Lambda79()
	symbols := []int{3, 1, 2, 0}
	ask, err := coding.NewASKLayout(symbols, 4, coding.DefaultDelta())
	if err != nil {
		panic(err)
	}
	t.AddRow("bits per 4-slot tag", itoa(4), itoa(ask.Capacity()))

	// Decode a synthetic far-field read of the ASK tag.
	pos, w := ask.PositionsAndWeights()
	n := 1100
	us := make([]float64, n)
	rss := make([]float64, n)
	rng := rand.New(rand.NewSource(600))
	for i := range us {
		u := -0.55 + 1.1*float64(i)/float64(n-1)
		us[i] = u
		rss[i] = (1 - 0.3*u*u) * coding.WeightedMultiStackGain(pos, w, u, lambda) * (1 + 0.03*rng.NormFloat64())
	}
	dec, err := coding.NewASKDecoder(4, 4, coding.DefaultDelta(), lambda)
	if err != nil {
		panic(err)
	}
	res, err := dec.Decode(us, rss)
	if err != nil {
		panic(err)
	}
	ok := "error"
	if coding.SymbolsEqual(res.Symbols, symbols) {
		ok = "correct"
	}
	t.AddRow("synthetic read of symbols 3,1,2,0", "-", ok)
	t.AddRow("worst decision margin (dB)", "-", f1(res.MarginDB))
	return t
}

// ExtensionNFFA regenerates the Sec 8 near-field-focusing argument: a
// focused tall stack stays coherent inside its Fraunhofer bound.
func ExtensionNFFA(ctx context.Context) *Table {
	t := &Table{
		ID:      "Extension: near-field focusing",
		Title:   "Sec 8 NFFA: focused vs uniform stacks read at 3 m",
		Columns: []string{"modules", "uniform gain (dB)", "focused gain (dB)", "focusing benefit (dB)"},
		Notes: "Sec 8: NFFAs let larger (higher-RCS) stacks work inside the " +
			"near field; the benefit grows with stack height",
	}
	for _, n := range []int{16, 32, 64} {
		uniform := stack.NewUniform(n)
		focused, err := stack.NewFocused(n, 3, fc)
		if err != nil {
			panic(err)
		}
		gu := uniform.NearFieldBoresightGain(3, fc)
		gf := focused.NearFieldBoresightGain(3, fc)
		t.AddRow(itoa(n), f1(em.DB(gu)), f1(em.DB(gf)), f1(em.DB(gf/gu)))
	}
	return t
}

// ExtensionOcclusion quantifies the Sec 7.3 blockage discussion: a parked
// vehicle shadows part of the pass; longer blockers erode the usable angular
// view until the read fails, and a redundant tag down the road restores it.
func ExtensionOcclusion(ctx context.Context) *Table {
	t := &Table{
		ID:      "Extension: occlusion",
		Title:   "Sec 7.3 blockage: parked vehicle between the lane and the tag",
		Columns: []string{"blocker half-length (m)", "single tag", "with redundant tag +8 m"},
		Notes: "paper Sec 7.3: decoding fails when the tag is fully blocked; " +
			"installing redundant RoS tags along the road restores the read",
	}
	for _, half := range []float64{0, 0.5, 1.5, 3, 4.5} {
		single := mustRun(ctx, sim.DriveBy{BeamShaped: true, BlockerHalfLength: half, Seed: 700})
		spare := mustRun(ctx, sim.DriveBy{
			BeamShaped: true, BlockerHalfLength: half, Seed: 700,
			RedundantTagOffset: 8, HalfSpan: 12, FrameBudget: 520,
		})
		t.AddRow(f1(half), snrCell(single), snrCell(spare))
	}
	return t
}

// ExtensionElevation exercises the IWR1443's elevated transmitter: phase
// monopulse between the two Tx illuminations recovers a tag's mounting
// height — the measurement a 3-D-aware deployment of Sec 7.3's
// "mount the tags high" mitigation needs.
func ExtensionElevation(ctx context.Context) *Table {
	t := &Table{
		ID:      "Extension: elevation monopulse",
		Title:   "tag mounting-height estimation with the elevation Tx",
		Columns: []string{"true height (m)", "estimated height (m)", "error (cm)"},
		Notes: "the half-wavelength elevated Tx resolves target height to a " +
			"few centimeters at tag ranges, enough to pick high-mounted tags " +
			"out of bumper-height clutter",
	}
	e := radar.TI1443Elevation()
	rng := rand.New(rand.NewSource(900))
	for _, h := range []float64{-0.5, 0, 0.5, 1.0, 1.5} {
		bits, err := coding.ParseBits("1111")
		if err != nil {
			panic(err)
		}
		layout, err := coding.NewLayout(bits, coding.DefaultDelta())
		if err != nil {
			panic(err)
		}
		tag, err := scene.NewTag(layout, beamshape.Shaped(32), geom.Vec3{Z: h})
		if err != nil {
			panic(err)
		}
		sc := &scene.Scene{Tags: []*scene.Tag{tag}}
		radarPos := geom.Vec3{Y: 3.5}
		scat := sc.Scatterers(radarPos, geom.Vec3{}, scene.ModeDecode, e.FrontEnd, e.CenterFrequency, rng)
		if len(scat) == 0 {
			t.AddRow(f2(h), "no return", "")
			continue
		}
		burst := e.SynthesizeElevation(scat, rng)
		el, err := e.EstimateElevation(burst, scat[0].Range, scat[0].Azimuth)
		if err != nil {
			t.AddRow(f2(h), "ambiguous", "")
			continue
		}
		ground := math.Hypot(radarPos.X-tag.Position.X, radarPos.Y-tag.Position.Y)
		est := radar.HeightOf(el, ground)
		t.AddRow(f2(h), f2(est), f1(math.Abs(est-h)*100))
	}
	return t
}

// ExtensionLocalization measures how precisely the pipeline localizes the
// tag — Sec 1's premise: "A vehicle passing by the tag can localize it,
// measure its reflection pattern, and decode the embedded information."
func ExtensionLocalization(ctx context.Context) *Table {
	t := &Table{
		ID:      "Extension: localization",
		Title:   "tag localization error across pass distances",
		Columns: []string{"distance (m)", "position error (cm)", "SNR (dB)"},
		Notes: "the merged point cloud's weighted centroid localizes the tag " +
			"to centimeters at lane distances, the precision the decode's " +
			"u-resampling relies on",
	}
	dists := []float64{2, 3, 4, 5}
	var cfgs []sim.DriveBy
	for _, d := range dists {
		cfgs = append(cfgs, sim.DriveBy{BeamShaped: true, Standoff: d, Seed: 910 + int64(d)})
	}
	outs := runAll(ctx, cfgs)
	for i, d := range dists {
		out := outs[i]
		if !out.Detected {
			t.AddRow(f1(d), "lost", "")
			continue
		}
		errM := out.Detection.Objects[out.Detection.TagIndex].Centroid.Norm()
		t.AddRow(f1(d), f1(errM*100), snrCell(out))
	}
	return t
}

// ExtensionRain sweeps precipitation (Sec 7.3 quotes 3.2 dB/100 m at
// 100 mm/h): like fog, rain barely dents a 79 GHz link at tag ranges.
func ExtensionRain(ctx context.Context) *Table {
	t := &Table{
		ID:      "Extension: rain",
		Title:   "decoding SNR under rain",
		Columns: []string{"rain (mm/h)", "SNR (dB)"},
		Notes: "Sec 7.3: heavy rain costs ~3.2 dB per 100 m one-way — " +
			"negligible over a 3 m read, the radar's whole advantage over " +
			"cameras in weather",
	}
	rates := []float64{0, 25, 100}
	var cfgs []sim.DriveBy
	for _, r := range rates {
		cfgs = append(cfgs, sim.DriveBy{BeamShaped: true, RainMMPerHour: r, Seed: 920})
	}
	outs := runAll(ctx, cfgs)
	for i, r := range rates {
		t.AddRow(f1(r), snrCell(outs[i]))
	}
	return t
}

// ExtensionCommercialRange reads tags at multi-lane distances with the
// Sec 8 commercial front end on a long-range chirp.
func ExtensionCommercialRange(ctx context.Context) *Table {
	t := &Table{
		ID:      "Extension: commercial range",
		Title:   "Sec 8 commercial front end: reads far beyond the TI radar",
		Columns: []string{"distance (m)", "SNR (dB)", "bits"},
		Notes: "the TI evaluation radar dies at ~7 m; the commercial link " +
			"budget (NF 9 dB, EIRP 50 dBm) reads the same tag tens of meters " +
			"out, matching the 52 m bound of Sec 8",
	}
	rcfg := radar.Commercial()
	dists := []float64{5, 10, 20, 30}
	var cfgs []sim.DriveBy
	for _, d := range dists {
		cfgs = append(cfgs, sim.DriveBy{
			BeamShaped: true, Standoff: d, Radar: &rcfg,
			Speed: 10, Seed: 930 + int64(d),
		})
	}
	outs := runAll(ctx, cfgs)
	for i, d := range dists {
		t.AddRow(f1(d), snrCell(outs[i]), outs[i].Bits)
	}
	return t
}
