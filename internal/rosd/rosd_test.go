package rosd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postReads posts a batch against a test server and decodes the response,
// failing the test on transport or decode errors (not on HTTP status).
func postReads(t *testing.T, ts *httptest.Server, reads []ReadRequest) (int, *BatchResponse) {
	t.Helper()
	body, err := json.Marshal(BatchRequest{Reads: reads})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/read", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode, &out
}

// fastRead returns a quick but end-to-end valid read request: 96 frames is
// the smallest budget that still decodes the default tag correctly.
func fastRead(seed int64) ReadRequest {
	return ReadRequest{Bits: "1111", FrameBudget: 96, Workers: 1, Seed: seed}
}

// TestServeBatch is the service smoke test: a mixed batch answers 200 with
// one result per request, successful reads decode the tag, and the
// observability endpoints expose the service metrics and flight entries.
func TestServeBatch(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	faulted := fastRead(3)
	faulted.Fault = &FaultRequest{Seed: 3, DropRate: 0.1}
	reads := []ReadRequest{
		fastRead(1),
		{Tenant: "acme", Bits: "1011", FrameBudget: 96, Workers: 1, Seed: 2, WithClutter: true},
		{Bits: ""}, // invalid: must degrade to a per-request config error
		faulted,    // fault-injected: degrades in-band AND pins a flight entry
	}
	status, out := postReads(t, ts, reads)
	if status != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", status)
	}
	if len(out.Results) != len(reads) {
		t.Fatalf("got %d results for %d reads", len(out.Results), len(reads))
	}
	if r := out.Results[0]; r.Error != nil || !r.Detected || r.Bits != "1111" {
		t.Fatalf("read 0 = %+v, want detected 1111 without error", r)
	}
	if r := out.Results[1]; r.Error != nil || !r.Detected || r.Bits == "" {
		t.Fatalf("read 1 = %+v, want a decoded tag without error", r)
	}
	if r := out.Results[2]; r.Error == nil || r.Error.Kind != "config" {
		t.Fatalf("read 2 = %+v, want a config error", r)
	}
	if r := out.Results[3]; r.Error != nil || !r.Detected || r.FramesDropped == 0 {
		t.Fatalf("read 3 = %+v, want a degraded-but-successful faulted read", r)
	}
	if out.Results[0].Engine == out.Results[1].Engine {
		t.Fatal("distinct configurations mapped to the same engine")
	}
	if out.EnginesResident < 2 {
		t.Fatalf("engines resident = %d, want >= 2", out.EnginesResident)
	}

	for _, probe := range []struct{ path, want string }{
		{"/metrics", "ros_rosd_reads_total"},
		{"/metrics", "ros_rosd_queue_depth"},
		{"/metrics.json", "ros_rosd_engines_resident"},
		{"/debug/flight", "\"seq\""},
	} {
		resp, err := ts.Client().Get(ts.URL + probe.path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", probe.path, resp.StatusCode)
		}
		if !strings.Contains(buf.String(), probe.want) {
			t.Fatalf("%s exposition missing %q", probe.path, probe.want)
		}
	}
}

// TestAdmissionOverload: a batch that would exceed MaxQueueDepth is refused
// up front with 429 and the typed overload body, before any read runs.
func TestAdmissionOverload(t *testing.T) {
	srv := New(Config{MaxQueueDepth: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(BatchRequest{Reads: []ReadRequest{fastRead(1), fastRead(2)}})
	resp, err := ts.Client().Post(ts.URL+"/v1/read", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var out struct {
		Error *ErrorInfo `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Error == nil || out.Error.Kind != "overload" {
		t.Fatalf("error = %+v, want kind overload", out.Error)
	}
	if !strings.Contains(out.Error.Message, "server overloaded") {
		t.Fatalf("overload message %q does not carry the sentinel text", out.Error.Message)
	}

	// An in-budget batch on the same server still serves.
	status, bout := postReads(t, ts, []ReadRequest{fastRead(1)})
	if status != http.StatusOK || bout.Results[0].Error != nil {
		t.Fatalf("in-budget batch failed: status %d, %+v", status, bout.Results)
	}
}

// TestBadRequests: malformed, empty and oversized batches and wrong methods
// answer 4xx with typed config errors.
func TestBadRequests(t *testing.T) {
	srv := New(Config{MaxBatch: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) int {
		resp, err := ts.Client().Post(ts.URL+"/v1/read", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("{not json"); got != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", got)
	}
	if got := post(`{"reads":[]}`); got != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", got)
	}
	if got := post(`{"reads":[{"bits":"1"},{"bits":"1"},{"bits":"1"}]}`); got != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", got)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/read")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", resp.StatusCode)
	}

	// Unknown fog level degrades per-request, not per-batch.
	status, out := postReads(t, ts, []ReadRequest{{Bits: "1111", Fog: "smog"}})
	if status != http.StatusOK {
		t.Fatalf("bad fog batch status = %d, want 200", status)
	}
	if r := out.Results[0]; r.Error == nil || r.Error.Kind != "config" {
		t.Fatalf("bad fog result = %+v, want config error", r)
	}
}

// TestEngineLRUEviction: driving more distinct configurations than the LRU
// capacity keeps residency bounded, closes the evicted engines, and keeps
// serving correctly.
func TestEngineLRUEviction(t *testing.T) {
	srv := New(Config{EngineCapacity: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		req := fastRead(int64(i + 1))
		req.Standoff = 3 + 0.25*float64(i) // distinct scene -> distinct engine
		status, out := postReads(t, ts, []ReadRequest{req})
		if status != http.StatusOK {
			t.Fatalf("config %d: status %d", i, status)
		}
		if r := out.Results[0]; r.Error != nil || !r.Detected {
			t.Fatalf("config %d: result %+v", i, r)
		}
		if out.EnginesResident > 2 {
			t.Fatalf("config %d: %d engines resident, capacity 2", i, out.EnginesResident)
		}
	}
	if got := srv.engines.Len(); got != 2 {
		t.Fatalf("resident engines = %d, want 2", got)
	}
	if got := mEvictions.Value(); got < 3 {
		t.Fatalf("evictions = %d, want >= 3", got)
	}
}

// TestEngineReuseAcrossBatches: equal configurations map to the same engine
// (the key excludes seed and worker count), so repeat reads hit warm caches.
func TestEngineReuseAcrossBatches(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, first := postReads(t, ts, []ReadRequest{fastRead(1)})
	req := fastRead(99)
	req.Workers = 2
	_, second := postReads(t, ts, []ReadRequest{req})
	if first.Results[0].Engine != second.Results[0].Engine {
		t.Fatalf("same configuration mapped to engines %s and %s",
			first.Results[0].Engine, second.Results[0].Engine)
	}
}

// TestPerTenantMetrics: reads from distinct tenants land on distinct metric
// children in the exposition.
func TestPerTenantMetrics(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reads := []ReadRequest{fastRead(1), fastRead(2)}
	reads[0].Tenant = "tenant-metrics-a"
	reads[1].Tenant = "tenant-metrics-b"
	if status, _ := postReads(t, ts, reads); status != http.StatusOK {
		t.Fatalf("batch status = %d", status)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, tenant := range []string{"tenant-metrics-a", "tenant-metrics-b"} {
		want := fmt.Sprintf("tenant=%q", tenant)
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %s", want)
		}
	}
}

// TestLoadHarness runs the load harness at reduced scale (the full 1k-read
// profile belongs to cmd/rosd-load): mixed configurations and tenants over
// concurrent clients, every read accounted for, residency bounded by the
// LRU capacity.
func TestLoadHarness(t *testing.T) {
	reads, concurrency := 96, 8
	if testing.Short() {
		reads, concurrency = 32, 4
	}
	report, err := RunLoad(LoadConfig{
		Server:      Config{EngineCapacity: 3, MaxQueueDepth: 64},
		Reads:       reads,
		Concurrency: concurrency,
		BatchSize:   4,
		Configs:     5,
		Tenants:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range report.Outcomes {
		total += n
	}
	if total != reads {
		t.Fatalf("outcomes account for %d of %d reads", total, reads)
	}
	if report.Outcomes["ok"] != reads {
		t.Fatalf("outcomes = %v, want all %d ok", report.Outcomes, reads)
	}
	if report.Errors != 0 {
		t.Fatalf("%d per-read errors under clean load", report.Errors)
	}
	if report.EnginesResident > 3 {
		t.Fatalf("engines resident = %d, capacity 3", report.EnginesResident)
	}
	if report.Evictions == 0 {
		t.Fatal("5 configurations through a capacity-3 LRU evicted nothing")
	}
	if report.BatchP99MS < report.BatchP50MS {
		t.Fatalf("p99 %.2f ms below p50 %.2f ms", report.BatchP99MS, report.BatchP50MS)
	}
}
