package rosd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"ros/internal/obs"
)

// LoadConfig parameterizes RunLoad, the service's load harness: many
// concurrent clients posting batches of mixed-configuration reads against
// one server. The zero value of every field keeps the default noted on it.
type LoadConfig struct {
	// URL is the base URL of a running server ("http://host:port"); empty
	// starts an in-process server on an ephemeral port for the run and
	// closes it after. In-process runs additionally report the server-side
	// queue-depth histogram (shared process, shared metrics registry).
	URL string
	// Server configures the in-process server when URL is empty.
	Server Config
	// Reads is the total read count (default 1024).
	Reads int
	// Concurrency is the number of parallel client goroutines (default 32).
	Concurrency int
	// BatchSize is the reads per POST (default 8).
	BatchSize int
	// Configs is the number of distinct radar+scene configurations mixed
	// into the stream (default 8); each becomes one engine in the LRU.
	Configs int
	// Tenants is the number of distinct tenant labels cycled through the
	// stream (default 4).
	Tenants int
	// FrameBudget caps each read's simulated frames (default 48 — the
	// pipeline refuses passes under 32 frames; 48 exercises it end to end
	// while keeping a 1k-read run fast).
	FrameBudget int
	// MaxRetries bounds per-batch retries after a 429 (default 64).
	MaxRetries int
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Reads <= 0 {
		c.Reads = 1024
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 32
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.Configs <= 0 {
		c.Configs = 8
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.FrameBudget <= 0 {
		c.FrameBudget = 48
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 64
	}
	return c
}

// LoadReport summarizes one RunLoad: client-observed batch latency
// quantiles, per-read outcome counts, admission behavior, and (for
// in-process runs) the server's queue-depth histogram quantiles.
type LoadReport struct {
	Reads       int `json:"reads"`
	Batches     int `json:"batches"`
	Concurrency int `json:"concurrency"`
	Configs     int `json:"configs"`
	// Overloads counts 429 responses (each retried until MaxRetries).
	Overloads int `json:"overloads"`
	// Errors counts reads that returned a typed per-request error.
	Errors int `json:"errors"`
	// Outcomes counts reads by result label (ok, no_tag, ...).
	Outcomes map[string]int `json:"outcomes"`
	// EnginesResident is the server's LRU occupancy after the run.
	EnginesResident int `json:"engines_resident"`
	// Evictions counts Engines the LRU closed to stay at capacity over the
	// run (in-process runs only; zero against a remote URL). A run with more
	// distinct configurations than EngineCapacity must report a nonzero
	// count — that is the bounded-residency contract under mixed load.
	Evictions int64   `json:"evictions"`
	WallMS    float64 `json:"wall_ms"`
	// BatchP50MS/P99MS/MaxMS are client-observed per-batch latencies.
	BatchP50MS float64 `json:"batch_p50_ms"`
	BatchP99MS float64 `json:"batch_p99_ms"`
	BatchMaxMS float64 `json:"batch_max_ms"`
	// QueueDepthP50/P99 are bucket-upper-bound quantiles of the server's
	// ros_rosd_queue_depth histogram over the run (in-process runs only;
	// zero against a remote URL).
	QueueDepthP50 float64 `json:"queue_depth_p50"`
	QueueDepthP99 float64 `json:"queue_depth_p99"`
}

// RunLoad drives cfg.Reads mixed-configuration reads through the service and
// reports what the clients and the admission layer saw. Batches refused with
// 429 are retried with backoff (that is the documented client contract for
// overload), so every read completes unless the server stays saturated past
// MaxRetries.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()

	url := cfg.URL
	var inProcess *Server
	var depthBefore *obs.HistogramSnap
	var evictionsBefore int64
	if url == "" {
		srv := New(cfg.Server)
		if err := srv.Start(); err != nil {
			return nil, err
		}
		defer srv.Close()
		inProcess = srv
		url = "http://" + srv.Addr()
		depthBefore = snapHistogram("ros_rosd_queue_depth")
		evictionsBefore = snapCounter("ros_rosd_engine_evictions_total")
	}

	client := &http.Client{}
	batches := make(chan BatchRequest, cfg.Concurrency)
	var (
		mu        sync.Mutex
		latencies []float64
		report    = &LoadReport{
			Reads:       cfg.Reads,
			Concurrency: cfg.Concurrency,
			Configs:     cfg.Configs,
			Outcomes:    make(map[string]int),
		}
		firstErr error
	)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for batch := range batches {
				res, overloads, lat, err := postBatch(client, url, batch, cfg.MaxRetries)
				mu.Lock()
				report.Batches++
				report.Overloads += overloads
				latencies = append(latencies, lat)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				report.EnginesResident = res.EnginesResident
				for i := range res.Results {
					r := &res.Results[i]
					report.Outcomes[resultOutcome(r)]++
					if r.Error != nil {
						report.Errors++
					}
				}
				mu.Unlock()
			}
		}()
	}

	seed := int64(1)
	for sent := 0; sent < cfg.Reads; {
		n := cfg.BatchSize
		if rem := cfg.Reads - sent; n > rem {
			n = rem
		}
		batch := BatchRequest{Reads: make([]ReadRequest, n)}
		for i := range batch.Reads {
			batch.Reads[i] = loadRead(cfg, seed)
			seed++
		}
		batches <- batch
		sent += n
	}
	close(batches)
	wg.Wait()
	report.WallMS = float64(time.Since(start).Nanoseconds()) / 1e6

	if firstErr != nil {
		return report, firstErr
	}

	sort.Float64s(latencies)
	report.BatchP50MS = quantile(latencies, 0.50)
	report.BatchP99MS = quantile(latencies, 0.99)
	if len(latencies) > 0 {
		report.BatchMaxMS = latencies[len(latencies)-1]
	}
	if inProcess != nil {
		if after := snapHistogram("ros_rosd_queue_depth"); after != nil {
			report.QueueDepthP50 = histSnapQuantile(depthBefore, after, 0.50)
			report.QueueDepthP99 = histSnapQuantile(depthBefore, after, 0.99)
		}
		report.Evictions = snapCounter("ros_rosd_engine_evictions_total") - evictionsBefore
	}
	return report, nil
}

// loadRead builds the i-th read of the stream: configurations and tenants
// cycle so the engine LRU and the per-tenant metric vecs both see a mix, and
// standoff varies per configuration so distinct configurations really are
// distinct scenes (different fingerprints, different engines). The 2 cm
// standoff step keeps even a 96-configuration sweep inside the detectable
// envelope (~3–5 m at the default frame budget), so outcome counts measure
// the service, not the physics.
func loadRead(cfg LoadConfig, seed int64) ReadRequest {
	conf := int(seed) % cfg.Configs
	return ReadRequest{
		Tenant:      fmt.Sprintf("tenant-%d", int(seed)%cfg.Tenants),
		Bits:        "1111",
		Standoff:    3 + 0.02*float64(conf),
		WithClutter: conf%2 == 1,
		FrameBudget: cfg.FrameBudget,
		Workers:     1,
		Seed:        seed,
	}
}

// postBatch POSTs one batch, retrying 429s with linear backoff. It returns
// the decoded response, the overload count, and the total wall millis
// (including backoff — the latency a well-behaved client experiences).
func postBatch(client *http.Client, url string, batch BatchRequest, maxRetries int) (*BatchResponse, int, float64, error) {
	body, err := json.Marshal(batch)
	if err != nil {
		return nil, 0, 0, err
	}
	start := time.Now()
	overloads := 0
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url+"/v1/read", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, overloads, msSince(start), err
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, overloads, msSince(start), err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			overloads++
			if attempt >= maxRetries {
				return nil, overloads, msSince(start),
					fmt.Errorf("rosd load: still overloaded after %d retries", maxRetries)
			}
			time.Sleep(time.Duration(attempt+1) * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return nil, overloads, msSince(start),
				fmt.Errorf("rosd load: status %d: %s", resp.StatusCode, payload)
		}
		var out BatchResponse
		if err := json.Unmarshal(payload, &out); err != nil {
			return nil, overloads, msSince(start), err
		}
		return &out, overloads, msSince(start), nil
	}
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1e6 }

// quantile reads q from an ascending latency slice (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// snapCounter reads one scalar counter out of the default registry.
func snapCounter(name string) int64 {
	snap := obs.Default.Snapshot()
	for i := range snap.Counters {
		c := &snap.Counters[i]
		if c.Name == name && len(c.Labels) == 0 {
			return c.Value
		}
	}
	return 0
}

// snapHistogram copies one scalar histogram out of the default registry.
func snapHistogram(name string) *obs.HistogramSnap {
	snap := obs.Default.Snapshot()
	for i := range snap.Histograms {
		h := &snap.Histograms[i]
		if h.Name == name && len(h.Labels) == 0 {
			return h
		}
	}
	return nil
}

// histSnapQuantile estimates quantile q of the observations a histogram
// gained between two snapshots (before may be nil), reporting the upper
// bound of the bucket the quantile falls in — the same convention the
// runtime-histogram gauges use. The unbounded last bucket reports the
// previous bound.
func histSnapQuantile(before, after *obs.HistogramSnap, q float64) float64 {
	if after == nil {
		return 0
	}
	deltaAt := func(i int) int64 {
		c := after.Buckets[i].Count
		if before != nil && i < len(before.Buckets) {
			c -= before.Buckets[i].Count
		}
		return c
	}
	n := len(after.Buckets)
	total := deltaAt(n - 1)
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	for i := 0; i < n; i++ {
		if deltaAt(i) >= target {
			if math.IsInf(after.Buckets[i].LE, 1) && i > 0 {
				return after.Buckets[i-1].LE
			}
			return after.Buckets[i].LE
		}
	}
	return after.Buckets[n-1].LE
}
