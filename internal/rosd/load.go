package rosd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"ros/internal/obs"
	"ros/internal/rosclient"
	"ros/internal/roserr"
)

// LoadConfig parameterizes RunLoad, the service's load harness: many
// concurrent clients posting batches of mixed-configuration reads against
// one server. The zero value of every field keeps the default noted on it.
type LoadConfig struct {
	// URL is the base URL of a running server ("http://host:port"); empty
	// starts an in-process server on an ephemeral port for the run and
	// closes it after. In-process runs additionally report the server-side
	// queue-depth histogram (shared process, shared metrics registry).
	URL string
	// Server configures the in-process server when URL is empty.
	Server Config
	// Reads is the total read count (default 1024).
	Reads int
	// Concurrency is the number of parallel client goroutines (default 32).
	Concurrency int
	// BatchSize is the reads per POST (default 8). Batches are
	// single-tenant, so per-tenant fairness is measurable end to end.
	BatchSize int
	// Configs is the number of distinct radar+scene configurations mixed
	// into the stream (default 8); each becomes one engine in the LRU.
	Configs int
	// Tenants is the number of distinct tenant labels cycled through the
	// stream (default 4).
	Tenants int
	// FloodFactor makes tenant-0 a flooder: it sends FloodFactor times an
	// in-quota tenant's share of the stream (default 1 — uniform traffic).
	FloodFactor int
	// FrameBudget caps each read's simulated frames (default 48 — the
	// pipeline refuses passes under 32 frames; 48 exercises it end to end
	// while keeping a 1k-read run fast).
	FrameBudget int
	// MaxRetries bounds the client's retries per batch (default 64).
	MaxRetries int
	// Hedge arms hedged reads in the harness client: a second identical
	// request races any batch slower than this (0 disables). Reads are
	// seeded, so duplicated execution is safe.
	Hedge time.Duration
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Reads <= 0 {
		c.Reads = 1024
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 32
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.Configs <= 0 {
		c.Configs = 8
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.FloodFactor <= 0 {
		c.FloodFactor = 1
	}
	if c.FrameBudget <= 0 {
		c.FrameBudget = 48
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 64
	}
	return c
}

// TenantReport is one tenant's slice of a load run, as its clients saw it.
type TenantReport struct {
	Tenant string `json:"tenant"`
	// Reads is the tenant's share of the stream; OK completed successfully,
	// Throttled were refused by quota (in-result overload errors or whole
	// batches still 429 after retries), Errors is everything else typed.
	Reads     int `json:"reads"`
	OK        int `json:"ok"`
	Throttled int `json:"throttled"`
	Errors    int `json:"errors"`
	// GoodputRPS is OK reads per wall second of the run.
	GoodputRPS float64 `json:"goodput_rps"`
	// BatchP50MS/P99MS are the tenant's client-observed batch latencies
	// (including the client's backoff waits).
	BatchP50MS float64 `json:"batch_p50_ms"`
	BatchP99MS float64 `json:"batch_p99_ms"`
}

// LoadReport summarizes one RunLoad: client-observed batch latency
// quantiles, per-read outcome counts, admission behavior, per-tenant
// goodput, and (for in-process runs) the server's queue-depth histogram
// quantiles.
type LoadReport struct {
	Reads       int `json:"reads"`
	Batches     int `json:"batches"`
	Concurrency int `json:"concurrency"`
	Configs     int `json:"configs"`
	// Overloads counts backpressure responses the client observed (429
	// overload and 503 draining, each retried within MaxRetries).
	Overloads int `json:"overloads"`
	// Retries counts client retry attempts across the run.
	Retries int64 `json:"retries"`
	// Hedges counts hedge requests the client launched (0 unless Hedge set).
	Hedges int64 `json:"hedges,omitempty"`
	// Errors counts reads that returned a typed per-request error
	// (throttled reads included).
	Errors int `json:"errors"`
	// Throttled counts reads refused by tenant quota.
	Throttled int `json:"throttled"`
	// Outcomes counts reads by result label (ok, no_tag, ...).
	Outcomes map[string]int `json:"outcomes"`
	// Tenants reports each tenant's goodput, sorted by tenant name.
	Tenants []TenantReport `json:"tenants,omitempty"`
	// FairnessRatio is min/max goodput across the in-quota tenants (the
	// flood tenant excluded when FloodFactor > 1): 1.0 is perfectly fair,
	// 0 means some tenant was starved outright.
	FairnessRatio float64 `json:"fairness_ratio,omitempty"`
	// EnginesResident is the server's LRU occupancy after the run.
	EnginesResident int `json:"engines_resident"`
	// Evictions counts Engines the LRU closed to stay at capacity over the
	// run (in-process runs only; zero against a remote URL). A run with more
	// distinct configurations than EngineCapacity must report a nonzero
	// count — that is the bounded-residency contract under mixed load.
	Evictions int64   `json:"evictions"`
	WallMS    float64 `json:"wall_ms"`
	// BatchP50MS/P99MS/MaxMS are client-observed per-batch latencies.
	BatchP50MS float64 `json:"batch_p50_ms"`
	BatchP99MS float64 `json:"batch_p99_ms"`
	BatchMaxMS float64 `json:"batch_max_ms"`
	// QueueDepthP50/P99 are bucket-upper-bound quantiles of the server's
	// ros_rosd_queue_depth histogram over the run (in-process runs only;
	// zero against a remote URL).
	QueueDepthP50 float64 `json:"queue_depth_p50"`
	QueueDepthP99 float64 `json:"queue_depth_p99"`
}

// tenantAgg accumulates one tenant's outcomes during the run.
type tenantAgg struct {
	reads, ok, throttled, errs int
	lats                       []float64
}

// RunLoad drives cfg.Reads reads through the service — tenant-0 at
// FloodFactor times everyone else's share — and reports what the clients,
// the quota layer and the admission layer saw. Batches ride the
// self-healing rosclient: 429/503 are retried with seeded backoff honoring
// Retry-After, so every read completes unless its tenant stays over quota
// (those reads count as Throttled, not run failures).
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()

	url := cfg.URL
	var inProcess *Server
	var depthBefore *obs.HistogramSnap
	var evictionsBefore int64
	if url == "" {
		srv := New(cfg.Server)
		if err := srv.Start(); err != nil {
			return nil, err
		}
		defer srv.Close()
		inProcess = srv
		url = "http://" + srv.Addr()
		depthBefore = snapHistogram("ros_rosd_queue_depth")
		evictionsBefore = snapCounter("ros_rosd_engine_evictions_total")
	}

	client := rosclient.New(rosclient.Config{
		BaseURL:     url,
		Seed:        1,
		MaxRetries:  cfg.MaxRetries,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  16 * time.Millisecond,
		// The server hints whole seconds; waiting that long per 429 would
		// dominate a load run, so the harness caps the honored wait and
		// leans on its tight retry budget instead.
		MaxRetryAfter: 25 * time.Millisecond,
		HedgeDelay:    cfg.Hedge,
	})

	type tenantBatch struct {
		tenant string
		batch  BatchRequest
	}
	batches := make(chan tenantBatch, cfg.Concurrency)
	var (
		mu        sync.Mutex
		latencies []float64
		perTenant = make(map[string]*tenantAgg)
		report    = &LoadReport{
			Concurrency: cfg.Concurrency,
			Configs:     cfg.Configs,
			Outcomes:    make(map[string]int),
		}
		firstErr error
	)
	aggFor := func(name string) *tenantAgg {
		a := perTenant[name]
		if a == nil {
			a = &tenantAgg{}
			perTenant[name] = a
		}
		return a
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tb := range batches {
				var res BatchResponse
				bStart := time.Now()
				var err error
				if cfg.Hedge > 0 {
					err = client.DoHedged(context.Background(), "/v1/read", tb.batch, &res)
				} else {
					err = client.Do(context.Background(), "/v1/read", tb.batch, &res)
				}
				lat := msSince(bStart)

				mu.Lock()
				report.Batches++
				latencies = append(latencies, lat)
				agg := aggFor(tb.tenant)
				agg.reads += len(tb.batch.Reads)
				agg.lats = append(agg.lats, lat)
				if err != nil {
					if errors.Is(err, roserr.ErrOverload) {
						// The whole batch stayed over quota past the retry
						// budget: refused work, not a harness failure.
						agg.throttled += len(tb.batch.Reads)
						report.Outcomes[outcomeError] += len(tb.batch.Reads)
					} else if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				report.EnginesResident = res.EnginesResident
				for i := range res.Results {
					r := &res.Results[i]
					report.Outcomes[resultOutcome(r)]++
					switch {
					case r.Error != nil && r.Error.Kind == "overload":
						agg.throttled++
					case r.Error != nil:
						agg.errs++
					default:
						agg.ok++
					}
				}
				mu.Unlock()
			}
		}()
	}

	// Deal each tenant its share — tenant-0 gets FloodFactor shares — as
	// single-tenant batches, interleaved round-robin so arrival order mixes
	// tenants the way real traffic would.
	perTenantBatches := make([][]tenantBatch, cfg.Tenants)
	seed := int64(1)
	sent := 0
	shares := cfg.Tenants + cfg.FloodFactor - 1
	for ti := 0; ti < cfg.Tenants; ti++ {
		quota := cfg.Reads * 1 / shares
		if ti == 0 {
			quota = cfg.Reads * cfg.FloodFactor / shares
		}
		if ti == cfg.Tenants-1 {
			quota = cfg.Reads - sent // remainder balances rounding
		}
		name := fmt.Sprintf("tenant-%d", ti)
		for done := 0; done < quota; {
			n := cfg.BatchSize
			if rem := quota - done; n > rem {
				n = rem
			}
			b := BatchRequest{Reads: make([]ReadRequest, n)}
			for i := range b.Reads {
				b.Reads[i] = loadRead(cfg, name, seed)
				seed++
			}
			perTenantBatches[ti] = append(perTenantBatches[ti], tenantBatch{tenant: name, batch: b})
			done += n
			sent += n
		}
	}
	report.Reads = sent
	for round := 0; ; round++ {
		any := false
		for ti := range perTenantBatches {
			if round < len(perTenantBatches[ti]) {
				batches <- perTenantBatches[ti][round]
				any = true
			}
		}
		if !any {
			break
		}
	}
	close(batches)
	wg.Wait()
	report.WallMS = float64(time.Since(start).Nanoseconds()) / 1e6

	stats := client.Stats()
	report.Overloads = int(stats.Throttles)
	report.Retries = stats.Retries
	report.Hedges = stats.Hedges

	if firstErr != nil {
		return report, firstErr
	}

	sort.Float64s(latencies)
	report.BatchP50MS = quantile(latencies, 0.50)
	report.BatchP99MS = quantile(latencies, 0.99)
	if len(latencies) > 0 {
		report.BatchMaxMS = latencies[len(latencies)-1]
	}

	wallSec := report.WallMS / 1e3
	names := make([]string, 0, len(perTenant))
	for name := range perTenant {
		names = append(names, name)
	}
	sort.Strings(names)
	minGood, maxGood := math.Inf(1), 0.0
	for _, name := range names {
		a := perTenant[name]
		sort.Float64s(a.lats)
		tr := TenantReport{
			Tenant:     name,
			Reads:      a.reads,
			OK:         a.ok,
			Throttled:  a.throttled,
			Errors:     a.errs,
			BatchP50MS: quantile(a.lats, 0.50),
			BatchP99MS: quantile(a.lats, 0.99),
		}
		if wallSec > 0 {
			tr.GoodputRPS = float64(a.ok) / wallSec
		}
		report.Tenants = append(report.Tenants, tr)
		report.Throttled += a.throttled
		report.Errors += a.throttled + a.errs
		if cfg.FloodFactor > 1 && name == "tenant-0" {
			continue // the flooder does not vote on fairness
		}
		minGood = math.Min(minGood, tr.GoodputRPS)
		maxGood = math.Max(maxGood, tr.GoodputRPS)
	}
	if maxGood > 0 && !math.IsInf(minGood, 1) {
		report.FairnessRatio = minGood / maxGood
	}

	if inProcess != nil {
		if after := snapHistogram("ros_rosd_queue_depth"); after != nil {
			report.QueueDepthP50 = histSnapQuantile(depthBefore, after, 0.50)
			report.QueueDepthP99 = histSnapQuantile(depthBefore, after, 0.99)
		}
		report.Evictions = snapCounter("ros_rosd_engine_evictions_total") - evictionsBefore
	}
	return report, nil
}

// loadRead builds the i-th read of the stream: configurations cycle so the
// engine LRU sees a mix, and standoff varies per configuration so distinct
// configurations really are distinct scenes (different fingerprints,
// different engines). The 2 cm standoff step keeps even a 96-configuration
// sweep inside the detectable envelope (~3–5 m at the default frame budget),
// so outcome counts measure the service, not the physics.
func loadRead(cfg LoadConfig, tenant string, seed int64) ReadRequest {
	conf := int(seed) % cfg.Configs
	return ReadRequest{
		Tenant:      tenant,
		Bits:        "1111",
		Standoff:    3 + 0.02*float64(conf),
		WithClutter: conf%2 == 1,
		FrameBudget: cfg.FrameBudget,
		Workers:     1,
		Seed:        seed,
	}
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1e6 }

// quantile reads q from an ascending latency slice (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// snapCounter reads one scalar counter out of the default registry.
func snapCounter(name string) int64 {
	snap := obs.Default.Snapshot()
	for i := range snap.Counters {
		c := &snap.Counters[i]
		if c.Name == name && len(c.Labels) == 0 {
			return c.Value
		}
	}
	return 0
}

// snapHistogram copies one scalar histogram out of the default registry.
func snapHistogram(name string) *obs.HistogramSnap {
	snap := obs.Default.Snapshot()
	for i := range snap.Histograms {
		h := &snap.Histograms[i]
		if h.Name == name && len(h.Labels) == 0 {
			return h
		}
	}
	return nil
}

// histSnapQuantile estimates quantile q of the observations a histogram
// gained between two snapshots (before may be nil), reporting the upper
// bound of the bucket the quantile falls in — the same convention the
// runtime-histogram gauges use. The unbounded last bucket reports the
// previous bound.
func histSnapQuantile(before, after *obs.HistogramSnap, q float64) float64 {
	if after == nil {
		return 0
	}
	deltaAt := func(i int) int64 {
		c := after.Buckets[i].Count
		if before != nil && i < len(before.Buckets) {
			c -= before.Buckets[i].Count
		}
		return c
	}
	n := len(after.Buckets)
	total := deltaAt(n - 1)
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	for i := 0; i < n; i++ {
		if deltaAt(i) >= target {
			if math.IsInf(after.Buckets[i].LE, 1) && i > 0 {
				return after.Buckets[i-1].LE
			}
			return after.Buckets[i].LE
		}
	}
	return after.Buckets[n-1].LE
}
