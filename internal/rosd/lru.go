package rosd

import (
	"container/list"
	"fmt"
	"sync"

	"ros/internal/engine"
	"ros/internal/obs"
	"ros/internal/radar"
	"ros/internal/sim"
)

// radarDefault returns the radar configuration a nil DriveBy.Radar resolves
// to, for request translation and fingerprinting.
func radarDefault() radar.Config { return radar.TI1443() }

// engineKey condenses a pass configuration into the LRU key: everything that
// shapes the engine's memoized state (radar geometry, scene content) and
// nothing that varies read to read without touching it (seed, fault plan,
// worker count). Two requests with equal keys share an engine; the key
// doubles as the "engine" gauge label and the wire-visible engine id.
func engineKey(cfg sim.DriveBy) string {
	c := cfg
	c.Seed, c.Fault, c.Workers, c.Engine = 0, nil, 0, nil
	rc := radarDefault()
	if c.Radar != nil {
		rc = *c.Radar
	}
	c.Radar = nil
	return obs.Fingerprint(fmt.Sprintf("%+v", c), fmt.Sprintf("%+v", rc))
}

// engineLRU is the capacity-bounded engine cache of the read service. get
// returns the resident engine for a configuration or builds one, evicting
// (and closing) the least recently used engine past capacity. Eviction while
// the evicted engine still serves in-flight reads is safe: Engine.Close lets
// holders keep the state they already reference, so those reads complete
// normally against a cold-for-everyone-else engine.
type engineLRU struct {
	mu       sync.Mutex
	capacity int
	order    *list.List               // front = most recently used
	entries  map[string]*list.Element // key -> element holding *lruEntry
}

type lruEntry struct {
	key string
	eng *engine.Engine
}

func newEngineLRU(capacity int) *engineLRU {
	return &engineLRU{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// get returns the engine for the configuration and its key, building and
// possibly evicting under the lock (engine construction is cheap — the
// caches it owns fill lazily — so holding the lock keeps the
// one-engine-per-key invariant without a singleflight layer).
func (l *engineLRU) get(cfg sim.DriveBy) (*engine.Engine, string) {
	key := engineKey(cfg)
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.entries[key]; ok {
		l.order.MoveToFront(el)
		mEngineHits.Inc()
		return el.Value.(*lruEntry).eng, key
	}
	mEngineMisses.Inc()
	for l.order.Len() >= l.capacity {
		back := l.order.Back()
		ent := back.Value.(*lruEntry)
		l.order.Remove(back)
		delete(l.entries, ent.key)
		ent.eng.Close()
		mEvictions.Inc()
	}
	ent := &lruEntry{key: key, eng: engine.New(key)}
	l.entries[key] = l.order.PushFront(ent)
	gEngines.Set(float64(l.order.Len()))
	return ent.eng, key
}

// Len returns the resident engine count.
func (l *engineLRU) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.order.Len()
}

// Close evicts and closes every resident engine.
func (l *engineLRU) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for el := l.order.Front(); el != nil; el = el.Next() {
		el.Value.(*lruEntry).eng.Close()
	}
	l.order.Init()
	l.entries = make(map[string]*list.Element, l.capacity)
	gEngines.Set(0)
}
