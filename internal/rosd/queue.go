package rosd

import (
	"container/list"
	"context"
	"sync"
	"time"
)

// job is one admitted read waiting for (or holding) an executor worker. The
// batch handler owns res and blocks on wg until the executor fills it.
type job struct {
	req      ReadRequest
	ctx      context.Context
	deadline time.Time // zero means no deadline
	enqueued time.Time
	res      *ReadResult
	wg       *sync.WaitGroup
}

// fairQueue is the per-tenant admission and scheduling core: a token bucket
// per tenant (quota), a FIFO per tenant, and weighted round-robin dequeue
// across the tenants with queued work, so a tenant flooding its queue delays
// only itself. The tenant table is recency-bounded: past capacity, the least
// recently seen idle tenant is evicted (its queue-depth gauge labelset
// retired with it).
type fairQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	rate     float64 // per-tenant token rate (reads/s); <= 0 disables quotas
	burst    float64
	capacity int            // tenant table bound
	weights  map[string]int // fair-dequeue weight per tenant name (default 1)

	tenants map[string]*tenantState
	order   *list.List // recency: front = most recently seen

	ring   []*tenantState // tenants with queued jobs, in service order
	next   int            // ring index the next pop serves
	queued int
	closed bool
}

func newFairQueue(rate, burst float64, capacity int, weights map[string]int) *fairQueue {
	q := &fairQueue{
		rate:     rate,
		burst:    burst,
		capacity: capacity,
		weights:  weights,
		tenants:  make(map[string]*tenantState),
		order:    list.New(),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// tenantLocked returns the state for a tenant, creating it (and evicting the
// least recently seen idle tenant past capacity) on first contact. Callers
// hold q.mu.
func (q *fairQueue) tenantLocked(name string, now time.Time) *tenantState {
	if t, ok := q.tenants[name]; ok {
		q.order.MoveToFront(t.elem)
		return t
	}
	for len(q.tenants) >= q.capacity {
		// Evict from the cold end, skipping tenants with queued work (they
		// are busy, not idle; the global admission gate bounds how many
		// tenants can be busy at once, so the scan terminates).
		evicted := false
		for el := q.order.Back(); el != nil; el = el.Prev() {
			t := el.Value.(*tenantState)
			if t.depth() > 0 {
				continue
			}
			q.order.Remove(el)
			delete(q.tenants, t.name)
			gTenantQueue.Delete(t.name)
			mTenantEvictions.Inc()
			evicted = true
			break
		}
		if !evicted {
			break // every resident tenant is busy; grow past capacity
		}
	}
	weight := q.weights[name]
	if weight < 1 {
		weight = 1
	}
	t := &tenantState{
		name:       name,
		bucket:     newTokenBucket(q.rate, q.burst, now),
		weight:     weight,
		mThrottled: mTenantThrottled.With(name),
		gQueue:     gTenantQueue.With(name),
	}
	t.elem = q.order.PushFront(t)
	q.tenants[name] = t
	gTenants.Set(float64(len(q.tenants)))
	return t
}

// throttle draws one quota token for the tenant, reporting admission and the
// Retry-After hint when refused. With quotas disabled it always admits.
func (q *fairQueue) throttle(name string, now time.Time) (bool, time.Duration) {
	if q.rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenantLocked(name, now)
	ok, wait := t.bucket.take(now)
	if !ok {
		t.mThrottled.Inc()
	}
	return ok, wait
}

// refund returns one quota token to the tenant (the read was throttled-free
// but then refused by the global gate, so it consumed no capacity).
func (q *fairQueue) refund(name string, n int) {
	if q.rate <= 0 || n <= 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if t, ok := q.tenants[name]; ok {
		t.bucket.give(float64(n))
	}
}

// push enqueues a job on its tenant's FIFO and wakes one worker. It reports
// false when the queue is closed (the caller fails the job itself).
func (q *fairQueue) push(name string, j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	t := q.tenantLocked(name, j.enqueued)
	t.push(j)
	if !t.inRing {
		t.inRing = true
		t.served = 0
		q.ring = append(q.ring, t)
	}
	q.queued++
	gQueuedReads.Set(float64(q.queued))
	q.cond.Signal()
	return true
}

// pop blocks until a job is available and returns the next one in weighted
// round-robin order across tenants: each tenant with queued work gets up to
// weight jobs per turn, so a deep queue from one tenant cannot starve the
// others. It returns false once the queue is closed and empty.
func (q *fairQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.queued == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.queued == 0 {
		return nil, false
	}
	if q.next >= len(q.ring) {
		q.next = 0
	}
	t := q.ring[q.next]
	j := t.pop()
	q.queued--
	gQueuedReads.Set(float64(q.queued))
	t.served++
	if t.depth() == 0 {
		t.inRing = false
		t.served = 0
		q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
	} else if t.served >= t.weight {
		t.served = 0
		q.next++
	}
	if q.next >= len(q.ring) {
		q.next = 0
	}
	return j, true
}

// close marks the queue closed, wakes every worker, and returns the jobs
// still queued so the caller can fail them (handlers must never be left
// blocked on a job no worker will run).
func (q *fairQueue) close() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	var orphans []*job
	for _, t := range q.ring {
		for t.depth() > 0 {
			orphans = append(orphans, t.pop())
		}
		t.inRing = false
	}
	q.ring = nil
	q.queued = 0
	gQueuedReads.Set(0)
	q.cond.Broadcast()
	return orphans
}
