// Package rosd implements the RoS read service: a zero-dependency HTTP/JSON
// daemon serving batched drive-by reads for many radar+scene configurations
// from one process. Each distinct configuration gets an engine.Engine from a
// capacity-bounded LRU (eviction closes the engine, releasing its caches and
// metric entries deterministically), so resident memory tracks the working
// set of configurations instead of growing with every configuration ever
// seen — the failure mode the process-global caches had.
//
// Admission happens in two layers. Per tenant, a token bucket enforces each
// tenant's quota (Config.TenantRate/TenantBurst): a read past its tenant's
// quota answers a typed overload error — 429 for the whole batch when every
// read in it is over quota — so one flooding tenant is throttled at the door
// while the others keep their goodput. Globally, when accepting a batch
// would push admitted in-flight reads past Config.MaxQueueDepth, the batch
// is refused with HTTP 429 and an "overload" error body (roserr.ErrOverload)
// instead of being queued into an unbounded latency tail.
//
// Admitted reads do not run immediately: they queue per tenant and a fixed
// executor pool (Config.ExecWorkers) dequeues them in weighted round-robin
// order across tenants, so a tenant with a deep backlog delays only itself.
// Each read carries a deadline from its request (deadline_ms) or the
// server's ReadTimeout, measured from admission — a read whose deadline
// expires while still queued is shed with a typed "cancelled" result without
// burning a worker. Within an admitted batch, requests stay independent: one
// tenant's injected fault or bad configuration yields a typed per-request
// error in the response array and never fails the batch (extending the
// per-frame degradation contract of the read pipeline to the service
// boundary).
//
// Shutdown is graceful by default: Drain flips /readyz to 503, refuses new
// batches with a typed 503 "draining" body, finishes every admitted read
// within the drain budget, then flushes the flight recorder and a final
// metrics snapshot. Close is the hard variant.
//
// See docs/ROSD.md for the API reference and capacity tuning.
package rosd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ros/internal/em"
	"ros/internal/fault"
	"ros/internal/obs"
	"ros/internal/obs/httpserve"
	"ros/internal/roserr"
	"ros/internal/sim"
)

// Service metrics. Package-level because an obs.Registry panics on duplicate
// registration and tests start several servers per process. Tenant is a
// caller-supplied label; the vec's labelset cap routes an abusive cardinality
// flood to the overflow child rather than growing without bound.
var (
	mReads = obs.Default.CounterVec("ros_rosd_reads_total",
		"Read requests served, by tenant and outcome.", "tenant", "outcome")
	hReadSeconds = obs.Default.HistogramVec("ros_rosd_read_seconds",
		"Wall time of one read request inside an admitted batch.",
		obs.LogBuckets(1e-4, 10, 2), "tenant")
	hQueueDepth = obs.Default.Histogram("ros_rosd_queue_depth",
		"In-flight reads observed at each batch admission decision.",
		obs.LinearBuckets(0, 8, 33))
	mBatches = obs.Default.Counter("ros_rosd_batches_total",
		"Read batches admitted.")
	mOverload = obs.Default.Counter("ros_rosd_overload_total",
		"Read batches refused by admission control (HTTP 429).")
	gInflight = obs.Default.Gauge("ros_rosd_inflight_reads",
		"Reads currently executing.")
	gEngines = obs.Default.Gauge("ros_rosd_engines_resident",
		"Engines resident in the configuration LRU.")
	mEngineHits = obs.Default.Counter("ros_rosd_engine_hits_total",
		"Batch requests that found their configuration's engine resident.")
	mEngineMisses = obs.Default.Counter("ros_rosd_engine_misses_total",
		"Batch requests that built a fresh engine for their configuration.")
	mEvictions = obs.Default.Counter("ros_rosd_engine_evictions_total",
		"Engines evicted (and closed) to stay under the LRU capacity.")
	mTenantThrottled = obs.Default.CounterVec("ros_rosd_tenant_throttled_total",
		"Reads refused by a tenant's token bucket (quota exceeded).", "tenant")
	gTenantQueue = obs.Default.GaugeVecCapacity("ros_rosd_tenant_queue_depth",
		"Reads queued per tenant awaiting an executor worker.", 1024, "tenant")
	gQueuedReads = obs.Default.Gauge("ros_rosd_queued_reads",
		"Admitted reads waiting in the fair queue (not yet executing).")
	gTenants = obs.Default.Gauge("ros_rosd_tenants_resident",
		"Tenants resident in the recency-bounded tenant table.")
	mTenantEvictions = obs.Default.Counter("ros_rosd_tenant_evictions_total",
		"Idle tenants evicted from the tenant table past its capacity.")
	mDeadlineShed = obs.Default.Counter("ros_rosd_deadline_shed_total",
		"Reads that reached a worker past their deadline and were shed unexecuted.")
	gReady = obs.Default.Gauge("ros_rosd_ready",
		"Readiness as last probed: 1 serving, 0 draining or browned out.")
	mDrains = obs.Default.Counter("ros_rosd_drains_total",
		"Graceful drains started.")
)

// Outcome labels for ros_rosd_reads_total.
const (
	outcomeOK          = "ok"
	outcomeNoTag       = "no_tag"
	outcomeUndecodable = "undecodable"
	outcomePartial     = "partial"
	outcomeError       = "error"
)

// Config parameterizes a Server. The zero value serves with the defaults
// noted on each field.
type Config struct {
	// Addr is the listen address for Start (default "localhost:0").
	Addr string
	// EngineCapacity bounds the configuration LRU; the least recently used
	// engine is closed when a new configuration would exceed it.
	// Default 64.
	EngineCapacity int
	// MaxQueueDepth is the admission limit: a batch is refused with 429
	// when accepting it would push in-flight reads past this depth.
	// Default 256.
	MaxQueueDepth int
	// MaxBatch caps the reads in one batch; larger batches are rejected as
	// configuration errors (HTTP 400). Default 64.
	MaxBatch int
	// ReadTimeout is the default per-read deadline budget, measured from
	// admission (queue wait included); a request's deadline_ms overrides
	// it. Expiry yields a per-request "cancelled" error, and a read whose
	// deadline passes while it is still queued is shed without burning a
	// worker. Default 0 (none).
	ReadTimeout time.Duration
	// ExecWorkers is the executor pool size: how many admitted reads run
	// concurrently (the rest wait in the fair queue). Default GOMAXPROCS.
	ExecWorkers int
	// TenantRate is each tenant's quota in reads per second (token-bucket
	// refill rate); a read past the quota is refused with a typed overload
	// error and counted on ros_rosd_tenant_throttled_total. Default 0
	// (quotas disabled).
	TenantRate float64
	// TenantBurst is the token-bucket depth (reads a tenant may burst
	// above its steady rate). Default max(8, TenantRate).
	TenantBurst float64
	// TenantCapacity bounds the tenant table; past it the least recently
	// seen idle tenant is evicted. Default 256.
	TenantCapacity int
	// TenantWeights sets per-tenant fair-dequeue weights (jobs served per
	// round-robin turn); absent tenants weigh 1.
	TenantWeights map[string]int
	// ShedDepth is the readiness brownout threshold: /readyz reports 503
	// once admitted in-flight reads reach it. Default 90% of
	// MaxQueueDepth.
	ShedDepth int
	// MaxBodyBytes caps the /v1/read request body. Default 1 MiB.
	MaxBodyBytes int64
	// DrainDumpDir, when set, receives flight.json and metrics.json (the
	// flight-recorder ring and a final metrics snapshot) at the end of a
	// graceful drain.
	DrainDumpDir string
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "localhost:0"
	}
	if c.EngineCapacity <= 0 {
		c.EngineCapacity = 64
	}
	if c.MaxQueueDepth <= 0 {
		c.MaxQueueDepth = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.ExecWorkers <= 0 {
		c.ExecWorkers = runtime.GOMAXPROCS(0)
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 8
		if c.TenantRate > c.TenantBurst {
			c.TenantBurst = c.TenantRate
		}
	}
	if c.TenantCapacity <= 0 {
		c.TenantCapacity = 256
	}
	if c.ShedDepth <= 0 {
		c.ShedDepth = c.MaxQueueDepth * 9 / 10
		if c.ShedDepth < 1 {
			c.ShedDepth = 1
		}
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Server is the read service. Construct with New, serve over the network
// with Start or embed Handler in a test server, release with Close (hard
// stop) or Drain (graceful: finish in-flight work first).
type Server struct {
	cfg     Config
	engines *engineLRU
	mux     *http.ServeMux
	queue   *fairQueue

	// admit guards the admission decision so depth checks against
	// MaxQueueDepth are exact rather than racy-increment-then-undo.
	// inflight counts admitted reads — queued plus executing.
	admit    sync.Mutex
	inflight int

	draining atomic.Bool
	workers  sync.WaitGroup
	stopOnce sync.Once

	lis net.Listener
	srv *http.Server
}

// New builds a Server around the observability mux: /metrics, /metrics.json,
// /debug/flight, /debug/vars and /debug/pprof/ come from
// internal/obs/httpserve; the read API mounts at /v1/read, liveness and
// readiness at /healthz and /readyz. The executor worker pool starts
// immediately (Handler works without Start).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		engines: newEngineLRU(cfg.EngineCapacity),
		mux:     httpserve.Mux(nil),
		queue:   newFairQueue(cfg.TenantRate, cfg.TenantBurst, cfg.TenantCapacity, cfg.TenantWeights),
	}
	s.mux.HandleFunc("/v1/read", s.handleRead)
	s.mux.HandleFunc("/healthz", handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	gReady.Set(1)
	for i := 0; i < cfg.ExecWorkers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the server's HTTP handler, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on cfg.Addr and serves in a background goroutine.
func (s *Server) Start() error {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("rosd: listen %s: %w", s.cfg.Addr, err)
	}
	s.lis = lis
	s.srv = &http.Server{Handler: s.mux}
	go func() {
		if err := s.srv.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
			obs.Logger().Error("rosd: serve failed", "err", err)
		}
	}()
	obs.Logger().Info("rosd: serving", "addr", lis.Addr().String(),
		"engine_capacity", s.cfg.EngineCapacity, "max_queue_depth", s.cfg.MaxQueueDepth)
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close hard-stops the service: the listener closes immediately, queued
// reads that no worker has picked up yet fail with a typed "draining" error
// (so their batch handlers return), executing reads finish, workers exit,
// and every resident engine closes. For a shutdown that finishes in-flight
// work first, use Drain.
func (s *Server) Close() error {
	var err error
	if s.srv != nil {
		err = s.srv.Close()
	}
	s.stop()
	return err
}

// stop shuts the executor down exactly once: fail still-queued jobs, wait
// for workers to finish their current reads, release the engines.
func (s *Server) stop() {
	s.stopOnce.Do(func() {
		for _, j := range s.queue.close() {
			s.failJob(j, fmt.Errorf("rosd: %w: read dropped by hard stop", roserr.ErrDraining))
		}
		s.workers.Wait()
		s.engines.Close()
	})
}

// Drain shuts the service down gracefully: readiness flips to 503 and new
// batches are refused immediately, while in-flight reads (queued and
// executing) finish within the budget. It then flushes the flight recorder
// and a final metrics snapshot (logged, and written to DrainDumpDir when
// configured) and releases every resource. A nil return means zero admitted
// reads were dropped; a budget overrun returns an error naming the count
// still in flight (those are then failed, not abandoned).
func (s *Server) Drain(budget time.Duration) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	mDrains.Inc()
	gReady.Set(0)
	start := time.Now()
	obs.Logger().Info("rosd: draining", "budget", budget)

	deadline := start.Add(budget)
	var drainErr error
	for {
		s.admit.Lock()
		n := s.inflight
		s.admit.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			drainErr = fmt.Errorf("rosd: %w: drain budget %s expired with %d reads in flight",
				roserr.ErrDraining, budget, n)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if s.srv != nil {
		// In-flight handlers have produced their results; give their
		// response writes a short grace before the connections die.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := s.srv.Shutdown(ctx); err != nil && drainErr == nil {
			drainErr = fmt.Errorf("rosd: shutdown: %w", err)
		}
		cancel()
	}
	s.flushTelemetry(time.Since(start))
	s.stop()
	return drainErr
}

// Draining reports whether a drain has started (readiness is down and new
// batches are being refused).
func (s *Server) Draining() bool { return s.draining.Load() }

// flushTelemetry logs the final service state and, when DrainDumpDir is set,
// writes the flight-recorder ring and a full metrics snapshot there — the
// post-mortem a crash would have lost.
func (s *Server) flushTelemetry(drainWall time.Duration) {
	dump := obs.DefaultFlight.Dump()
	snap := obs.Default.Snapshot()
	obs.Logger().Info("rosd: drained",
		"wall", drainWall,
		"flight_recorded", dump.Recorded,
		"metric_series", len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
	dir := s.cfg.DrainDumpDir
	if dir == "" {
		return
	}
	write := func(name string, fn func(io.Writer) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			obs.Logger().Error("rosd: drain dump failed", "file", name, "err", err)
			return
		}
		err = fn(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			obs.Logger().Error("rosd: drain dump failed", "file", name, "err", err)
		}
	}
	write("flight.json", obs.DefaultFlight.WriteJSON)
	write("metrics.json", obs.Default.WriteJSON)
}

// handleHealthz is liveness: the process is up and serving HTTP.
func handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz is readiness with load-aware brownout: 503 while draining or
// while admitted in-flight reads sit at or above ShedDepth, so a balancer
// steers traffic away before admission starts returning 429s.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.admit.Lock()
	n := s.inflight
	s.admit.Unlock()
	draining := s.draining.Load()
	ready := !draining && n < s.cfg.ShedDepth
	if ready {
		gReady.Set(1)
	} else {
		gReady.Set(0)
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready":      ready,
		"draining":   draining,
		"inflight":   n,
		"shed_depth": s.cfg.ShedDepth,
	})
}

// BatchRequest is the body of POST /v1/read.
type BatchRequest struct {
	Reads []ReadRequest `json:"reads"`
}

// ReadRequest configures one drive-by read inside a batch. The zero value of
// every field keeps the corresponding simulator default (32-module tag at a
// 3 m standoff, 2 m/s, clear weather).
type ReadRequest struct {
	// Tenant labels the request's metrics; empty renders as "default".
	Tenant string `json:"tenant,omitempty"`
	// Bits is the tag's encoded bit string (required).
	Bits string `json:"bits"`
	// StackModules is the number of PSVAAs per stack (8, 16 or 32).
	StackModules int `json:"stack_modules,omitempty"`
	// Standoff is the closest radar-to-tag distance in meters.
	Standoff float64 `json:"standoff,omitempty"`
	// SpeedMPS is the vehicle speed in m/s.
	SpeedMPS float64 `json:"speed_mps,omitempty"`
	// HeightOffset is the radar-vs-tag-center height mismatch in meters.
	HeightOffset float64 `json:"height_offset,omitempty"`
	// Fog selects the weather: "", "clear", "light" or "heavy".
	Fog string `json:"fog,omitempty"`
	// TrackingError is the relative self-tracking drift.
	TrackingError float64 `json:"tracking_error,omitempty"`
	// WithClutter surrounds the tag with the roadside object lineup.
	WithClutter bool `json:"with_clutter,omitempty"`
	// Commercial swaps in the commercial automotive front end (Sec 8).
	Commercial bool `json:"commercial,omitempty"`
	// FrameBudget caps the simulated frames (0 keeps the default 280).
	FrameBudget int `json:"frame_budget,omitempty"`
	// Workers caps the frame-loop worker pool (0 uses GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Seed drives the read's randomness.
	Seed int64 `json:"seed,omitempty"`
	// DeadlineMS is this read's deadline budget in milliseconds, measured
	// from admission (queue wait included); it overrides the server's
	// -read-timeout. A read whose deadline passes while still queued is
	// shed with a typed "cancelled" error without executing. 0 keeps the
	// server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Fault enables deterministic fault injection for this read only.
	Fault *FaultRequest `json:"fault,omitempty"`
}

// FaultRequest is the JSON shape of a per-read fault injection plan.
type FaultRequest struct {
	Seed        int64   `json:"seed,omitempty"`
	DropRate    float64 `json:"drop_rate,omitempty"`
	CorruptRate float64 `json:"corrupt_rate,omitempty"`
	BurstRate   float64 `json:"burst_rate,omitempty"`
	PanicRate   float64 `json:"panic_rate,omitempty"`
	DelayRate   float64 `json:"delay_rate,omitempty"`
}

// BatchResponse is the body of a 200 response: Results[i] answers Reads[i].
type BatchResponse struct {
	Results []ReadResult `json:"results"`
	// EnginesResident is the LRU occupancy after the batch.
	EnginesResident int `json:"engines_resident"`
}

// ReadResult reports one read. Error is nil on success; a failed read keeps
// whatever partial fields the pipeline produced alongside the typed error.
type ReadResult struct {
	Tenant          string  `json:"tenant,omitempty"`
	Detected        bool    `json:"detected"`
	Bits            string  `json:"bits,omitempty"`
	SNRdB           float64 `json:"snr_db,omitempty"`
	BER             float64 `json:"ber,omitempty"`
	MedianRSSdBm    float64 `json:"median_rss_dbm,omitempty"`
	Samples         int     `json:"samples,omitempty"`
	Partial         bool    `json:"partial,omitempty"`
	FramesCompleted int     `json:"frames_completed,omitempty"`
	FramesDropped   int     `json:"frames_dropped,omitempty"`
	// Engine is the configuration fingerprint keying the engine that
	// served the read (the "engine" label of ros_engine_cache_entries).
	Engine string     `json:"engine,omitempty"`
	WallMS float64    `json:"wall_ms"`
	Error  *ErrorInfo `json:"error,omitempty"`
}

// ErrorInfo is the typed JSON rendering of a read or batch error.
type ErrorInfo struct {
	// Kind is the stable taxonomy tag: "config", "cancelled",
	// "frame_corrupt", "no_tag", "undecodable", "worker_panic",
	// "overload" or "internal".
	Kind string `json:"kind"`
	// Message is the human-readable error chain.
	Message string `json:"message"`
}

// errorKind maps an error chain onto its stable JSON kind via the roserr
// taxonomy (roserr.Kind is shared with the client, which parses the kind
// back into the matching sentinel).
func errorKind(err error) string { return roserr.Kind(err) }

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(body); err != nil {
		obs.Logger().Error("rosd: response encode failed", "err", err)
	}
}

func writeError(w http.ResponseWriter, status int, kind, format string, args ...any) {
	writeJSON(w, status, map[string]*ErrorInfo{
		"error": {Kind: kind, Message: fmt.Sprintf(format, args...)},
	})
}

// tryAdmit atomically admits n reads against MaxQueueDepth, reporting the
// depth observed at the decision and whether the batch was admitted.
func (s *Server) tryAdmit(n int) (depth int, ok bool) {
	s.admit.Lock()
	defer s.admit.Unlock()
	depth = s.inflight
	if depth+n > s.cfg.MaxQueueDepth {
		return depth, false
	}
	s.inflight += n
	gInflight.Set(float64(s.inflight))
	return depth, true
}

// release returns one read's admission slot.
func (s *Server) release() {
	s.admit.Lock()
	s.inflight--
	gInflight.Set(float64(s.inflight))
	s.admit.Unlock()
}

// handleRead serves POST /v1/read: decode (hardened: body size cap, unknown
// fields rejected), refuse while draining, draw each read's tenant quota
// token, admit the remainder against the global gate, enqueue on the fair
// queue, and collect per-request results.
func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "config", "use POST")
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "draining",
			"%v: shutting down, admissions closed", roserr.ErrDraining)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var batch BatchRequest
	if err := dec.Decode(&batch); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "config",
				"body exceeds the %d-byte limit", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "config", "malformed batch: %v", err)
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "config", "trailing data after batch")
		return
	}
	if len(batch.Reads) == 0 {
		writeError(w, http.StatusBadRequest, "config", "empty batch")
		return
	}
	if len(batch.Reads) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, "config",
			"batch of %d exceeds the %d-read limit", len(batch.Reads), s.cfg.MaxBatch)
		return
	}

	// Per-tenant quota: each read draws a token from its tenant's bucket.
	// Throttled reads answer in-result; a batch with nothing admittable
	// (the single-tenant flood case) is refused whole with 429 so the
	// client's backoff sees the same signal queue overload sends.
	now := time.Now()
	results := make([]ReadResult, len(batch.Reads))
	admitted := make([]bool, len(batch.Reads))
	nAdmit, throttled := 0, 0
	var maxWait time.Duration
	for i := range batch.Reads {
		tenant := displayTenant(batch.Reads[i].Tenant)
		ok, wait := s.queue.throttle(tenant, now)
		if !ok {
			throttled++
			if wait > maxWait {
				maxWait = wait
			}
			results[i] = throttledResult(batch.Reads[i], wait)
			continue
		}
		admitted[i] = true
		nAdmit++
	}
	if nAdmit == 0 && throttled > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(maxWait))
		writeError(w, http.StatusTooManyRequests, "overload",
			"%v: tenant quota exceeded for all %d reads", roserr.ErrOverload, throttled)
		return
	}

	depth, ok := s.tryAdmit(nAdmit)
	hQueueDepth.Observe(float64(depth))
	if !ok {
		// The tokens were drawn but no work ran; refund them so quota
		// accounting tracks admitted work only.
		for i := range batch.Reads {
			if admitted[i] {
				s.queue.refund(displayTenant(batch.Reads[i].Tenant), 1)
			}
		}
		mOverload.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overload",
			"%v: %d reads in flight, %d-read batch exceeds queue depth %d",
			roserr.ErrOverload, depth, nAdmit, s.cfg.MaxQueueDepth)
		return
	}
	mBatches.Inc()

	var wg sync.WaitGroup
	for i := range batch.Reads {
		if !admitted[i] {
			continue
		}
		wg.Add(1)
		j := &job{
			req:      batch.Reads[i],
			ctx:      r.Context(),
			deadline: readDeadline(now, batch.Reads[i], s.cfg.ReadTimeout),
			enqueued: now,
			res:      &results[i],
			wg:       &wg,
		}
		if !s.queue.push(displayTenant(j.req.Tenant), j) {
			// Closed between the draining check and here: fail in-result.
			wg.Done()
			s.release()
			results[i] = ReadResult{Tenant: j.req.Tenant, Error: &ErrorInfo{
				Kind:    "draining",
				Message: fmt.Sprintf("rosd: %v: shutting down", roserr.ErrDraining),
			}}
		}
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{
		Results:         results,
		EnginesResident: s.engines.Len(),
	})
}

// displayTenant resolves the metrics/queueing label of a request's tenant.
func displayTenant(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// readDeadline computes a read's absolute deadline at admission: the
// request's deadline_ms budget when set, else the server's ReadTimeout,
// else none. Queue wait counts against it — that is the point.
func readDeadline(now time.Time, req ReadRequest, fallback time.Duration) time.Time {
	if req.DeadlineMS > 0 {
		return now.Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	if fallback > 0 {
		return now.Add(fallback)
	}
	return time.Time{}
}

// retryAfterSeconds renders a wait as a Retry-After header value, rounded up
// to at least one second.
func retryAfterSeconds(wait time.Duration) string {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// throttledResult answers a read refused by its tenant's token bucket.
func throttledResult(req ReadRequest, wait time.Duration) ReadResult {
	res := ReadResult{Tenant: req.Tenant, Error: &ErrorInfo{
		Kind: "overload",
		Message: fmt.Sprintf("rosd: %v: tenant %q over quota, retry in %s",
			roserr.ErrOverload, displayTenant(req.Tenant), wait.Round(time.Millisecond)),
	}}
	mReads.With(displayTenant(req.Tenant), outcomeError).Inc()
	return res
}

// worker is one executor: it serves jobs in the fair queue's order until the
// queue closes.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.execute(j)
	}
}

// execute runs one dequeued job. A job whose deadline already passed while
// queued is shed with the typed cancelled result instead of burning the
// worker on a doomed read.
func (s *Server) execute(j *job) {
	defer j.wg.Done()
	defer s.release()
	if !j.deadline.IsZero() && !time.Now().Before(j.deadline) {
		mDeadlineShed.Inc()
		tenant := displayTenant(j.req.Tenant)
		*j.res = ReadResult{Tenant: j.req.Tenant, Error: &ErrorInfo{
			Kind: "cancelled",
			Message: fmt.Sprintf("rosd: %v: %v: deadline expired after %s in queue, read not started",
				roserr.ErrReadCancelled, context.DeadlineExceeded,
				time.Since(j.enqueued).Round(time.Millisecond)),
		}}
		mReads.With(tenant, outcomeError).Inc()
		return
	}
	ctx := j.ctx
	if !j.deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, j.deadline)
		defer cancel()
	}
	*j.res = s.runOne(ctx, j.req)
}

// failJob answers a job the executor will never run (hard stop or drain
// budget overrun) so its batch handler unblocks.
func (s *Server) failJob(j *job, err error) {
	*j.res = ReadResult{Tenant: j.req.Tenant, Error: &ErrorInfo{
		Kind:    errorKind(err),
		Message: err.Error(),
	}}
	mReads.With(displayTenant(j.req.Tenant), outcomeError).Inc()
	j.wg.Done()
	s.release()
}

// runOne executes one read of an admitted batch. It never panics the batch:
// pipeline worker panics already degrade inside the simulator, and a panic
// in this frame (a service bug) is recovered into a "worker_panic" result.
func (s *Server) runOne(ctx context.Context, req ReadRequest) (res ReadResult) {
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	res.Tenant = req.Tenant
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			res.Error = &ErrorInfo{
				Kind:    "worker_panic",
				Message: fmt.Sprintf("%v: rosd handler: %v", roserr.ErrWorkerPanic, p),
			}
			obs.Logger().Error("rosd: handler panic", "panic", p,
				"stack", string(debug.Stack()))
		}
		wall := time.Since(start)
		res.WallMS = float64(wall.Nanoseconds()) / 1e6
		hReadSeconds.With(tenant).Observe(wall.Seconds())
		mReads.With(tenant, resultOutcome(&res)).Inc()
	}()

	cfg, err := driveByFor(req)
	if err != nil {
		res.Error = &ErrorInfo{Kind: errorKind(err), Message: err.Error()}
		return res
	}
	eng, key := s.engines.get(cfg)
	cfg.Engine = eng
	res.Engine = key

	out, err := sim.RunContext(ctx, cfg)
	if out != nil {
		res.Detected = out.Detected
		res.Bits = out.Bits
		// JSON has no infinities: an undetected pass reports SNR -Inf,
		// which would abort the whole batch encode. Zero-with-omitempty
		// renders those fields absent instead.
		res.SNRdB = finite(out.SNRdB)
		res.BER = finite(out.BER)
		res.MedianRSSdBm = finite(out.MedianRSSdBm)
		res.Samples = out.Samples
		res.Partial = out.Partial
		res.FramesCompleted = out.FramesCompleted
		res.FramesDropped = out.FramesDropped
		// The service exposes the flat JSON view only; return the span tree
		// to the pool (dropping the Detection's alias into it first).
		if out.Detection != nil {
			out.Detection.Span = nil
		}
		out.Span.Release()
		out.Span = nil
	}
	if err != nil {
		res.Error = &ErrorInfo{Kind: errorKind(err), Message: err.Error()}
	}
	return res
}

// finite clamps NaN and ±Inf to zero for JSON encoding.
func finite(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// resultOutcome labels a finished read for ros_rosd_reads_total.
func resultOutcome(res *ReadResult) string {
	switch {
	case res.Partial:
		return outcomePartial
	case res.Error != nil:
		return outcomeError
	case !res.Detected:
		return outcomeNoTag
	case res.Bits == "":
		return outcomeUndecodable
	}
	return outcomeOK
}

// driveByFor translates a wire request into a validated pass configuration.
func driveByFor(req ReadRequest) (sim.DriveBy, error) {
	if req.Bits == "" {
		return sim.DriveBy{}, fmt.Errorf("rosd: %w: empty bits", roserr.ErrConfig)
	}
	var fog em.FogLevel
	switch req.Fog {
	case "", "clear":
		fog = em.FogClear
	case "light":
		fog = em.FogLight
	case "heavy":
		fog = em.FogHeavy
	default:
		return sim.DriveBy{}, fmt.Errorf("rosd: %w: unknown fog level %q", roserr.ErrConfig, req.Fog)
	}
	cfg := sim.DriveBy{
		Bits:          req.Bits,
		StackModules:  req.StackModules,
		Standoff:      req.Standoff,
		Speed:         req.SpeedMPS,
		HeightOffset:  req.HeightOffset,
		Fog:           fog,
		TrackingError: req.TrackingError,
		WithClutter:   req.WithClutter,
		FrameBudget:   req.FrameBudget,
		Workers:       req.Workers,
		Seed:          req.Seed,
	}
	if req.Commercial {
		rc := radarDefault()
		rc.FrontEnd = em.CommercialRadar()
		cfg.Radar = &rc
	}
	if f := req.Fault; f != nil {
		cfg.Fault = &fault.Config{
			Seed:          f.Seed,
			FrameDropRate: f.DropRate,
			CorruptRate:   f.CorruptRate,
			BurstRate:     f.BurstRate,
			PanicRate:     f.PanicRate,
			DelayRate:     f.DelayRate,
		}
	}
	if err := cfg.Validate(); err != nil {
		return sim.DriveBy{}, err
	}
	return cfg, nil
}
