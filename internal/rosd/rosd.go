// Package rosd implements the RoS read service: a zero-dependency HTTP/JSON
// daemon serving batched drive-by reads for many radar+scene configurations
// from one process. Each distinct configuration gets an engine.Engine from a
// capacity-bounded LRU (eviction closes the engine, releasing its caches and
// metric entries deterministically), so resident memory tracks the working
// set of configurations instead of growing with every configuration ever
// seen — the failure mode the process-global caches had.
//
// Admission control is batch-granular: when accepting a batch would push the
// number of in-flight reads past Config.MaxQueueDepth, the batch is refused
// with HTTP 429 and an "overload" error body (roserr.ErrOverload) instead of
// being queued into an unbounded latency tail. Within an admitted batch,
// requests are independent: each runs in its own goroutine and degrades on
// its own — one tenant's injected fault or bad configuration yields a typed
// per-request error in the response array and never fails the batch
// (extending the per-frame degradation contract of the read pipeline to the
// service boundary).
//
// See docs/ROSD.md for the API reference and capacity tuning.
package rosd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"ros/internal/em"
	"ros/internal/fault"
	"ros/internal/obs"
	"ros/internal/obs/httpserve"
	"ros/internal/roserr"
	"ros/internal/sim"
)

// Service metrics. Package-level because an obs.Registry panics on duplicate
// registration and tests start several servers per process. Tenant is a
// caller-supplied label; the vec's labelset cap routes an abusive cardinality
// flood to the overflow child rather than growing without bound.
var (
	mReads = obs.Default.CounterVec("ros_rosd_reads_total",
		"Read requests served, by tenant and outcome.", "tenant", "outcome")
	hReadSeconds = obs.Default.HistogramVec("ros_rosd_read_seconds",
		"Wall time of one read request inside an admitted batch.",
		obs.LogBuckets(1e-4, 10, 2), "tenant")
	hQueueDepth = obs.Default.Histogram("ros_rosd_queue_depth",
		"In-flight reads observed at each batch admission decision.",
		obs.LinearBuckets(0, 8, 33))
	mBatches = obs.Default.Counter("ros_rosd_batches_total",
		"Read batches admitted.")
	mOverload = obs.Default.Counter("ros_rosd_overload_total",
		"Read batches refused by admission control (HTTP 429).")
	gInflight = obs.Default.Gauge("ros_rosd_inflight_reads",
		"Reads currently executing.")
	gEngines = obs.Default.Gauge("ros_rosd_engines_resident",
		"Engines resident in the configuration LRU.")
	mEngineHits = obs.Default.Counter("ros_rosd_engine_hits_total",
		"Batch requests that found their configuration's engine resident.")
	mEngineMisses = obs.Default.Counter("ros_rosd_engine_misses_total",
		"Batch requests that built a fresh engine for their configuration.")
	mEvictions = obs.Default.Counter("ros_rosd_engine_evictions_total",
		"Engines evicted (and closed) to stay under the LRU capacity.")
)

// Outcome labels for ros_rosd_reads_total.
const (
	outcomeOK          = "ok"
	outcomeNoTag       = "no_tag"
	outcomeUndecodable = "undecodable"
	outcomePartial     = "partial"
	outcomeError       = "error"
)

// Config parameterizes a Server. The zero value serves with the defaults
// noted on each field.
type Config struct {
	// Addr is the listen address for Start (default "localhost:0").
	Addr string
	// EngineCapacity bounds the configuration LRU; the least recently used
	// engine is closed when a new configuration would exceed it.
	// Default 64.
	EngineCapacity int
	// MaxQueueDepth is the admission limit: a batch is refused with 429
	// when accepting it would push in-flight reads past this depth.
	// Default 256.
	MaxQueueDepth int
	// MaxBatch caps the reads in one batch; larger batches are rejected as
	// configuration errors (HTTP 400). Default 64.
	MaxBatch int
	// ReadTimeout bounds each read's execution (not the whole batch);
	// expiry yields a per-request "cancelled" error. Default 0 (none).
	ReadTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "localhost:0"
	}
	if c.EngineCapacity <= 0 {
		c.EngineCapacity = 64
	}
	if c.MaxQueueDepth <= 0 {
		c.MaxQueueDepth = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	return c
}

// Server is the read service. Construct with New, serve over the network
// with Start or embed Handler in a test server, release with Close.
type Server struct {
	cfg     Config
	engines *engineLRU
	mux     *http.ServeMux

	// admit guards the admission decision so depth checks against
	// MaxQueueDepth are exact rather than racy-increment-then-undo.
	admit    sync.Mutex
	inflight int

	lis net.Listener
	srv *http.Server
}

// New builds a Server around the observability mux: /metrics, /metrics.json,
// /debug/flight, /debug/vars and /debug/pprof/ come from
// internal/obs/httpserve; the read API mounts at /v1/read.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		engines: newEngineLRU(cfg.EngineCapacity),
		mux:     httpserve.Mux(nil),
	}
	s.mux.HandleFunc("/v1/read", s.handleRead)
	return s
}

// Handler returns the server's HTTP handler, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on cfg.Addr and serves in a background goroutine.
func (s *Server) Start() error {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("rosd: listen %s: %w", s.cfg.Addr, err)
	}
	s.lis = lis
	s.srv = &http.Server{Handler: s.mux}
	go func() {
		if err := s.srv.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
			obs.Logger().Error("rosd: serve failed", "err", err)
		}
	}()
	obs.Logger().Info("rosd: serving", "addr", lis.Addr().String(),
		"engine_capacity", s.cfg.EngineCapacity, "max_queue_depth", s.cfg.MaxQueueDepth)
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close stops the listener (when started) and closes every resident engine,
// dropping their caches and metric entries. In-flight reads keep the state
// they already hold and complete normally.
func (s *Server) Close() error {
	var err error
	if s.srv != nil {
		err = s.srv.Close()
	}
	s.engines.Close()
	return err
}

// BatchRequest is the body of POST /v1/read.
type BatchRequest struct {
	Reads []ReadRequest `json:"reads"`
}

// ReadRequest configures one drive-by read inside a batch. The zero value of
// every field keeps the corresponding simulator default (32-module tag at a
// 3 m standoff, 2 m/s, clear weather).
type ReadRequest struct {
	// Tenant labels the request's metrics; empty renders as "default".
	Tenant string `json:"tenant,omitempty"`
	// Bits is the tag's encoded bit string (required).
	Bits string `json:"bits"`
	// StackModules is the number of PSVAAs per stack (8, 16 or 32).
	StackModules int `json:"stack_modules,omitempty"`
	// Standoff is the closest radar-to-tag distance in meters.
	Standoff float64 `json:"standoff,omitempty"`
	// SpeedMPS is the vehicle speed in m/s.
	SpeedMPS float64 `json:"speed_mps,omitempty"`
	// HeightOffset is the radar-vs-tag-center height mismatch in meters.
	HeightOffset float64 `json:"height_offset,omitempty"`
	// Fog selects the weather: "", "clear", "light" or "heavy".
	Fog string `json:"fog,omitempty"`
	// TrackingError is the relative self-tracking drift.
	TrackingError float64 `json:"tracking_error,omitempty"`
	// WithClutter surrounds the tag with the roadside object lineup.
	WithClutter bool `json:"with_clutter,omitempty"`
	// Commercial swaps in the commercial automotive front end (Sec 8).
	Commercial bool `json:"commercial,omitempty"`
	// FrameBudget caps the simulated frames (0 keeps the default 280).
	FrameBudget int `json:"frame_budget,omitempty"`
	// Workers caps the frame-loop worker pool (0 uses GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Seed drives the read's randomness.
	Seed int64 `json:"seed,omitempty"`
	// Fault enables deterministic fault injection for this read only.
	Fault *FaultRequest `json:"fault,omitempty"`
}

// FaultRequest is the JSON shape of a per-read fault injection plan.
type FaultRequest struct {
	Seed        int64   `json:"seed,omitempty"`
	DropRate    float64 `json:"drop_rate,omitempty"`
	CorruptRate float64 `json:"corrupt_rate,omitempty"`
	BurstRate   float64 `json:"burst_rate,omitempty"`
	PanicRate   float64 `json:"panic_rate,omitempty"`
	DelayRate   float64 `json:"delay_rate,omitempty"`
}

// BatchResponse is the body of a 200 response: Results[i] answers Reads[i].
type BatchResponse struct {
	Results []ReadResult `json:"results"`
	// EnginesResident is the LRU occupancy after the batch.
	EnginesResident int `json:"engines_resident"`
}

// ReadResult reports one read. Error is nil on success; a failed read keeps
// whatever partial fields the pipeline produced alongside the typed error.
type ReadResult struct {
	Tenant          string  `json:"tenant,omitempty"`
	Detected        bool    `json:"detected"`
	Bits            string  `json:"bits,omitempty"`
	SNRdB           float64 `json:"snr_db,omitempty"`
	BER             float64 `json:"ber,omitempty"`
	MedianRSSdBm    float64 `json:"median_rss_dbm,omitempty"`
	Samples         int     `json:"samples,omitempty"`
	Partial         bool    `json:"partial,omitempty"`
	FramesCompleted int     `json:"frames_completed,omitempty"`
	FramesDropped   int     `json:"frames_dropped,omitempty"`
	// Engine is the configuration fingerprint keying the engine that
	// served the read (the "engine" label of ros_engine_cache_entries).
	Engine string     `json:"engine,omitempty"`
	WallMS float64    `json:"wall_ms"`
	Error  *ErrorInfo `json:"error,omitempty"`
}

// ErrorInfo is the typed JSON rendering of a read or batch error.
type ErrorInfo struct {
	// Kind is the stable taxonomy tag: "config", "cancelled",
	// "frame_corrupt", "no_tag", "undecodable", "worker_panic",
	// "overload" or "internal".
	Kind string `json:"kind"`
	// Message is the human-readable error chain.
	Message string `json:"message"`
}

// errorKind maps an error chain onto its stable JSON kind via the roserr
// taxonomy. Order matters only for chains wrapping several sentinels, which
// the pipeline never produces.
func errorKind(err error) string {
	switch {
	case errors.Is(err, roserr.ErrConfig):
		return "config"
	case errors.Is(err, roserr.ErrReadCancelled):
		return "cancelled"
	case errors.Is(err, roserr.ErrFrameCorrupt):
		return "frame_corrupt"
	case errors.Is(err, roserr.ErrNoTag):
		return "no_tag"
	case errors.Is(err, roserr.ErrUndecodable):
		return "undecodable"
	case errors.Is(err, roserr.ErrWorkerPanic):
		return "worker_panic"
	case errors.Is(err, roserr.ErrOverload):
		return "overload"
	}
	return "internal"
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(body); err != nil {
		obs.Logger().Error("rosd: response encode failed", "err", err)
	}
}

func writeError(w http.ResponseWriter, status int, kind, format string, args ...any) {
	writeJSON(w, status, map[string]*ErrorInfo{
		"error": {Kind: kind, Message: fmt.Sprintf(format, args...)},
	})
}

// tryAdmit atomically admits n reads against MaxQueueDepth, reporting the
// depth observed at the decision and whether the batch was admitted.
func (s *Server) tryAdmit(n int) (depth int, ok bool) {
	s.admit.Lock()
	defer s.admit.Unlock()
	depth = s.inflight
	if depth+n > s.cfg.MaxQueueDepth {
		return depth, false
	}
	s.inflight += n
	gInflight.Set(float64(s.inflight))
	return depth, true
}

// release returns one read's admission slot.
func (s *Server) release() {
	s.admit.Lock()
	s.inflight--
	gInflight.Set(float64(s.inflight))
	s.admit.Unlock()
}

// handleRead serves POST /v1/read: decode, admit (or 429), fan the batch
// out, collect per-request results.
func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "config", "use POST")
		return
	}
	var batch BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, "config", "malformed batch: %v", err)
		return
	}
	if len(batch.Reads) == 0 {
		writeError(w, http.StatusBadRequest, "config", "empty batch")
		return
	}
	if len(batch.Reads) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, "config",
			"batch of %d exceeds the %d-read limit", len(batch.Reads), s.cfg.MaxBatch)
		return
	}

	depth, ok := s.tryAdmit(len(batch.Reads))
	hQueueDepth.Observe(float64(depth))
	if !ok {
		mOverload.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overload",
			"%v: %d reads in flight, %d-read batch exceeds queue depth %d",
			roserr.ErrOverload, depth, len(batch.Reads), s.cfg.MaxQueueDepth)
		return
	}
	mBatches.Inc()

	results := make([]ReadResult, len(batch.Reads))
	var wg sync.WaitGroup
	for i := range batch.Reads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer s.release()
			results[i] = s.runOne(r.Context(), batch.Reads[i])
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{
		Results:         results,
		EnginesResident: s.engines.Len(),
	})
}

// runOne executes one read of an admitted batch. It never panics the batch:
// pipeline worker panics already degrade inside the simulator, and a panic
// in this frame (a service bug) is recovered into a "worker_panic" result.
func (s *Server) runOne(ctx context.Context, req ReadRequest) (res ReadResult) {
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	res.Tenant = req.Tenant
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			res.Error = &ErrorInfo{
				Kind:    "worker_panic",
				Message: fmt.Sprintf("%v: rosd handler: %v", roserr.ErrWorkerPanic, p),
			}
			obs.Logger().Error("rosd: handler panic", "panic", p,
				"stack", string(debug.Stack()))
		}
		wall := time.Since(start)
		res.WallMS = float64(wall.Nanoseconds()) / 1e6
		hReadSeconds.With(tenant).Observe(wall.Seconds())
		mReads.With(tenant, resultOutcome(&res)).Inc()
	}()

	cfg, err := driveByFor(req)
	if err != nil {
		res.Error = &ErrorInfo{Kind: errorKind(err), Message: err.Error()}
		return res
	}
	eng, key := s.engines.get(cfg)
	cfg.Engine = eng
	res.Engine = key

	if s.cfg.ReadTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.ReadTimeout)
		defer cancel()
	}
	out, err := sim.RunContext(ctx, cfg)
	if out != nil {
		res.Detected = out.Detected
		res.Bits = out.Bits
		// JSON has no infinities: an undetected pass reports SNR -Inf,
		// which would abort the whole batch encode. Zero-with-omitempty
		// renders those fields absent instead.
		res.SNRdB = finite(out.SNRdB)
		res.BER = finite(out.BER)
		res.MedianRSSdBm = finite(out.MedianRSSdBm)
		res.Samples = out.Samples
		res.Partial = out.Partial
		res.FramesCompleted = out.FramesCompleted
		res.FramesDropped = out.FramesDropped
		// The service exposes the flat JSON view only; return the span tree
		// to the pool (dropping the Detection's alias into it first).
		if out.Detection != nil {
			out.Detection.Span = nil
		}
		out.Span.Release()
		out.Span = nil
	}
	if err != nil {
		res.Error = &ErrorInfo{Kind: errorKind(err), Message: err.Error()}
	}
	return res
}

// finite clamps NaN and ±Inf to zero for JSON encoding.
func finite(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// resultOutcome labels a finished read for ros_rosd_reads_total.
func resultOutcome(res *ReadResult) string {
	switch {
	case res.Partial:
		return outcomePartial
	case res.Error != nil:
		return outcomeError
	case !res.Detected:
		return outcomeNoTag
	case res.Bits == "":
		return outcomeUndecodable
	}
	return outcomeOK
}

// driveByFor translates a wire request into a validated pass configuration.
func driveByFor(req ReadRequest) (sim.DriveBy, error) {
	if req.Bits == "" {
		return sim.DriveBy{}, fmt.Errorf("rosd: %w: empty bits", roserr.ErrConfig)
	}
	var fog em.FogLevel
	switch req.Fog {
	case "", "clear":
		fog = em.FogClear
	case "light":
		fog = em.FogLight
	case "heavy":
		fog = em.FogHeavy
	default:
		return sim.DriveBy{}, fmt.Errorf("rosd: %w: unknown fog level %q", roserr.ErrConfig, req.Fog)
	}
	cfg := sim.DriveBy{
		Bits:          req.Bits,
		StackModules:  req.StackModules,
		Standoff:      req.Standoff,
		Speed:         req.SpeedMPS,
		HeightOffset:  req.HeightOffset,
		Fog:           fog,
		TrackingError: req.TrackingError,
		WithClutter:   req.WithClutter,
		FrameBudget:   req.FrameBudget,
		Workers:       req.Workers,
		Seed:          req.Seed,
	}
	if req.Commercial {
		rc := radarDefault()
		rc.FrontEnd = em.CommercialRadar()
		cfg.Radar = &rc
	}
	if f := req.Fault; f != nil {
		cfg.Fault = &fault.Config{
			Seed:          f.Seed,
			FrameDropRate: f.DropRate,
			CorruptRate:   f.CorruptRate,
			BurstRate:     f.BurstRate,
			PanicRate:     f.PanicRate,
			DelayRate:     f.DelayRate,
		}
	}
	if err := cfg.Validate(); err != nil {
		return sim.DriveBy{}, err
	}
	return cfg, nil
}
