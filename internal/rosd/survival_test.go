package rosd

// Survival-layer tests: tenant fairness under flood, deadline shedding,
// readiness brownout, graceful drain with zero dropped reads, parse
// hardening, and a goroutine-leak regression guard.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFairnessUnderFlood is the isolation contract: one tenant floods at 4x
// everyone else's share against a tight quota, and the in-quota tenants must
// keep their full goodput while the flooder eats the throttles.
func TestFairnessUnderFlood(t *testing.T) {
	reads, burst := 224, 40.0
	if testing.Short() {
		reads, burst = 112, 20.0
	}
	report, err := RunLoad(LoadConfig{
		Server: Config{
			MaxQueueDepth: 512,
			TenantRate:    1, // refill is negligible over the run; burst is the quota
			TenantBurst:   burst,
		},
		Reads:       reads,
		Concurrency: 16,
		BatchSize:   4,
		Configs:     4,
		Tenants:     4,
		FloodFactor: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range report.Outcomes {
		total += n
	}
	if total != report.Reads {
		t.Fatalf("outcomes account for %d of %d reads", total, report.Reads)
	}
	if len(report.Tenants) != 4 {
		t.Fatalf("tenant reports = %d, want 4", len(report.Tenants))
	}
	for _, tr := range report.Tenants {
		if tr.Tenant == "tenant-0" {
			if tr.Throttled == 0 {
				t.Fatalf("flood tenant was never throttled: %+v", tr)
			}
			continue
		}
		if tr.Throttled != 0 {
			t.Fatalf("in-quota %s throttled %d reads; quota leaked across tenants", tr.Tenant, tr.Throttled)
		}
		if tr.OK < tr.Reads*9/10 {
			t.Fatalf("in-quota %s completed %d of %d reads; flood stole its goodput", tr.Tenant, tr.OK, tr.Reads)
		}
	}
	if report.FairnessRatio < 0.5 {
		t.Fatalf("fairness ratio %.3f among in-quota tenants, want >= 0.5", report.FairnessRatio)
	}
	if report.Overloads == 0 {
		t.Fatal("a 4x flood against a tight quota produced no 429s")
	}
}

// TestDeadlineShed: reads carrying a tiny deadline_ms through a one-worker
// executor degrade to typed cancelled results — the ones still queued at
// expiry are shed without burning the worker on doomed work.
func TestDeadlineShed(t *testing.T) {
	srv := New(Config{ExecWorkers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	shedBefore := mDeadlineShed.Value()
	reads := make([]ReadRequest, 4)
	for i := range reads {
		reads[i] = fastRead(int64(i + 1))
		reads[i].DeadlineMS = 1
	}
	status, out := postReads(t, ts, reads)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (deadlines degrade per read, not per batch)", status)
	}
	if len(out.Results) != len(reads) {
		t.Fatalf("got %d results for %d reads", len(out.Results), len(reads))
	}
	cancelled := 0
	for i, r := range out.Results {
		if r.Error != nil {
			if r.Error.Kind != "cancelled" {
				t.Fatalf("read %d error kind = %q, want cancelled", i, r.Error.Kind)
			}
			cancelled++
		}
	}
	if cancelled < 2 {
		t.Fatalf("%d of %d 1ms-deadline reads cancelled behind a single worker, want >= 2", cancelled, len(reads))
	}
	if mDeadlineShed.Value() == shedBefore {
		t.Fatal("no read was shed while queued; doomed reads burned the worker")
	}
}

// TestHealthAndReadiness: liveness always answers; readiness flips on the
// shed threshold and on draining.
func TestHealthAndReadiness(t *testing.T) {
	srv := New(Config{ShedDepth: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, buf.String()
	}

	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", status)
	}
	if status, body := get("/readyz"); status != http.StatusOK || !strings.Contains(body, `"ready": true`) {
		t.Fatalf("/readyz = %d %q, want 200 ready", status, body)
	}

	// Inflight at the shed threshold: brownout.
	srv.admit.Lock()
	srv.inflight = 2
	srv.admit.Unlock()
	if status, body := get("/readyz"); status != http.StatusServiceUnavailable || !strings.Contains(body, `"ready": false`) {
		t.Fatalf("/readyz at shed depth = %d %q, want 503 not-ready", status, body)
	}
	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Fatal("/healthz went down with load; liveness must not brown out")
	}
	srv.admit.Lock()
	srv.inflight = 0
	srv.admit.Unlock()
	if status, _ := get("/readyz"); status != http.StatusOK {
		t.Fatal("/readyz did not recover once inflight fell below the shed depth")
	}

	// Draining: readiness down for good.
	srv.draining.Store(true)
	if status, body := get("/readyz"); status != http.StatusServiceUnavailable || !strings.Contains(body, `"draining": true`) {
		t.Fatalf("/readyz while draining = %d %q, want 503 draining", status, body)
	}
}

// TestParseHardening: the request decoder refuses oversized bodies with 413
// and unknown fields or trailing data with typed 400s.
func TestParseHardening(t *testing.T) {
	srv := New(Config{MaxBodyBytes: 256})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) (int, string) {
		resp, err := ts.Client().Post(ts.URL+"/v1/read", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, buf.String()
	}

	big := fmt.Sprintf(`{"reads":[{"bits":"1111","fog":%q}]}`, strings.Repeat("x", 512))
	if status, body := post(big); status != http.StatusRequestEntityTooLarge || !strings.Contains(body, "config") {
		t.Fatalf("oversized body = %d %q, want 413 with typed config error", status, body)
	}
	if status, body := post(`{"reads":[{"bits":"1111","bogus":1}]}`); status != http.StatusBadRequest || !strings.Contains(body, "bogus") {
		t.Fatalf("unknown field = %d %q, want 400 naming the field", status, body)
	}
	if status, _ := post(`{"reads":[{"bits":"1111"}]} trailing`); status != http.StatusBadRequest {
		t.Fatalf("trailing data = %d, want 400", status)
	}
	// A batch that fits still serves.
	if status, _ := post(`{"reads":[{"bits":"1111","frame_budget":96,"workers":1,"seed":1}]}`); status != http.StatusOK {
		t.Fatalf("in-limit batch = %d, want 200", status)
	}
}

// TestDrainUnderLoad: SIGTERM semantics under live traffic. Every batch the
// server admitted must come back complete (zero dropped in-flight reads),
// batches arriving after the drain starts get 503, and the telemetry dump
// lands in DrainDumpDir.
func TestDrainUnderLoad(t *testing.T) {
	dumpDir := t.TempDir()
	srv := New(Config{Addr: "127.0.0.1:0", DrainDumpDir: dumpDir})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := "http://" + srv.Addr()

	const clients = 8
	const batchSize = 3
	type tally struct {
		complete, refused, failed int
		incomplete                int
	}
	var (
		mu      sync.Mutex
		sum     tally
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		httpCli = &http.Client{}
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			seed := int64(c * 1000)
			for {
				select {
				case <-stop:
					return
				default:
				}
				reads := make([]ReadRequest, batchSize)
				for i := range reads {
					seed++
					reads[i] = fastRead(seed)
				}
				body, _ := json.Marshal(BatchRequest{Reads: reads})
				resp, err := httpCli.Post(url+"/v1/read", "application/json", bytes.NewReader(body))
				mu.Lock()
				if err != nil {
					// Connection refused after shutdown completed: the
					// request was never admitted, nothing was dropped.
					sum.refused++
					mu.Unlock()
					return
				}
				var out BatchResponse
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusServiceUnavailable:
					sum.refused++
					mu.Unlock()
					return // draining — a well-behaved client backs off
				case resp.StatusCode != http.StatusOK:
					sum.failed++
				case decErr != nil || len(out.Results) != batchSize:
					sum.incomplete++
				default:
					sum.complete++
				}
				mu.Unlock()
			}
		}(c)
	}

	// Let traffic establish, then drain mid-flight.
	time.Sleep(50 * time.Millisecond)
	if err := srv.Drain(30 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	wg.Wait()

	if sum.complete == 0 {
		t.Fatal("no batch completed before the drain; the test saw no in-flight work")
	}
	if sum.incomplete != 0 {
		t.Fatalf("%d admitted batches came back incomplete; drain dropped in-flight reads", sum.incomplete)
	}
	if sum.failed != 0 {
		t.Fatalf("%d batches failed with unexpected statuses during drain", sum.failed)
	}

	// Post-drain: admissions refused, telemetry flushed.
	if _, err := httpCli.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after drain")
	}
	for _, name := range []string{"flight.json", "metrics.json"} {
		fi, err := os.Stat(filepath.Join(dumpDir, name))
		if err != nil {
			t.Fatalf("drain dump missing %s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("drain dump %s is empty", name)
		}
	}
}

// TestDrainRefusesNewBatches: a server mid-drain answers /v1/read with 503
// and Retry-After rather than queueing work it will not finish.
func TestDrainRefusesNewBatches(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.draining.Store(true)
	body, _ := json.Marshal(BatchRequest{Reads: []ReadRequest{fastRead(1)}})
	resp, err := ts.Client().Post(ts.URL+"/v1/read", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 while draining", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 without Retry-After")
	}
	var out struct {
		Error *ErrorInfo `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Error == nil || out.Error.Kind != "draining" {
		t.Fatalf("error = %+v, want kind draining", out.Error)
	}
}

// TestGoroutineLeakRegression: a load burst followed by shutdown returns the
// process to its pre-server goroutine baseline — workers, handlers and
// client connections all unwind.
func TestGoroutineLeakRegression(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srv := New(Config{ExecWorkers: 4})
	ts := httptest.NewServer(srv.Handler())
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				reads := []ReadRequest{fastRead(int64(c*100 + i))}
				body, _ := json.Marshal(BatchRequest{Reads: reads})
				resp, err := ts.Client().Post(ts.URL+"/v1/read", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(c)
	}
	wg.Wait()
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.NumGoroutine()
			sz := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, n, buf[:sz])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
