package rosd

import (
	"container/list"
	"time"

	"ros/internal/obs"
)

// tokenBucket is a refill-on-demand token bucket: take draws one token,
// refilling rate tokens per second up to burst since the last draw. It is
// not goroutine-safe — the fairQueue's lock guards every bucket.
type tokenBucket struct {
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64, now time.Time) tokenBucket {
	return tokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// refill credits the time elapsed since the last refill.
func (b *tokenBucket) refill(now time.Time) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// take draws one token, reporting success and — when the bucket is empty —
// how long until the next token frees (the Retry-After hint).
func (b *tokenBucket) take(now time.Time) (bool, time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	b.refill(now)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// give returns n tokens (a read refused downstream of the bucket refunds its
// token so quota accounting tracks work actually admitted).
func (b *tokenBucket) give(n float64) {
	b.tokens += n
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// tenantState is one tenant's slot in the fair queue: its token bucket, its
// FIFO of queued jobs, its weighted-round-robin bookkeeping, and its cached
// metric children. All fields are guarded by the owning fairQueue's lock.
type tenantState struct {
	name   string
	bucket tokenBucket

	// q/head form the FIFO: jobs push at the tail, pop at head, and the
	// backing array compacts once the dead prefix dominates.
	q    []*job
	head int

	weight int // fair-dequeue share per round (>= 1)
	served int // jobs dequeued in the current round-robin turn
	inRing bool

	elem *list.Element // position in the tenant table's recency order

	mThrottled *obs.Counter
	gQueue     *obs.Gauge
}

func (t *tenantState) depth() int { return len(t.q) - t.head }

func (t *tenantState) push(j *job) {
	t.q = append(t.q, j)
	t.gQueue.Set(float64(t.depth()))
}

func (t *tenantState) pop() *job {
	j := t.q[t.head]
	t.q[t.head] = nil
	t.head++
	if t.head > 32 && t.head*2 >= len(t.q) {
		t.q = append(t.q[:0], t.q[t.head:]...)
		t.head = 0
	}
	t.gQueue.Set(float64(t.depth()))
	return j
}
