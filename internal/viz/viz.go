// Package viz renders small ASCII visualizations for the command-line
// tools: line plots for RSS-vs-u curves, bar spectra for RCS frequency
// spectra, and scatter maps for merged radar point clouds (the terminal
// version of the paper's Fig 11 panels).
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Line renders a y-series as a fixed-height ASCII line plot with axis
// labels. Width is the number of columns used for data (the series is
// resampled by max-pooling); height the number of rows.
func Line(title string, ys []float64, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 3 {
		height = 3
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(ys) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	cols := pool(ys, width)
	lo, hi := bounds(cols)
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c, v := range cols {
		if math.IsInf(v, -1) || math.IsNaN(v) {
			continue
		}
		r := int((hi - v) / (hi - lo) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		grid[r][c] = '*'
	}
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.1f ", hi)
		case height - 1:
			label = fmt.Sprintf("%7.1f ", lo)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", width))
	return b.String()
}

// Bars renders labeled magnitudes as horizontal bars normalized to the
// largest value.
func Bars(title string, labels []string, values []float64, width int) string {
	if width < 4 {
		width = 4
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(labels) != len(values) || len(values) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	peak := 0.0
	labelW := 0
	for i, v := range values {
		if v > peak {
			peak = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	if peak <= 0 {
		peak = 1
	}
	for i, v := range values {
		n := int(v / peak * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "  %-*s |%s\n", labelW, labels[i], strings.Repeat("#", n))
	}
	return b.String()
}

// Point is one scatter-map sample.
type Point struct {
	X, Y float64
	// Mark is the glyph drawn ('*' when zero).
	Mark byte
}

// Scatter renders points into a width x height character map spanning the
// given world rectangle, with later points overdrawing earlier ones.
func Scatter(title string, pts []Point, x0, x1, y0, y1 float64, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if x1 <= x0 || y1 <= y0 {
		b.WriteString("  (degenerate extent)\n")
		return b.String()
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(".", width))
	}
	for _, p := range pts {
		if p.X < x0 || p.X > x1 || p.Y < y0 || p.Y > y1 {
			continue
		}
		c := int((p.X - x0) / (x1 - x0) * float64(width-1))
		r := int((y1 - p.Y) / (y1 - y0) * float64(height-1))
		mark := p.Mark
		if mark == 0 {
			mark = '*'
		}
		grid[r][c] = mark
	}
	fmt.Fprintf(&b, "  y=%-6.1f %s\n", y1, strings.Repeat("_", width))
	for _, row := range grid {
		fmt.Fprintf(&b, "           %s\n", string(row))
	}
	fmt.Fprintf(&b, "  y=%-6.1f x: %.1f .. %.1f\n", y0, x0, x1)
	return b.String()
}

// pool max-pools a series into the target number of columns.
func pool(ys []float64, cols int) []float64 {
	out := make([]float64, cols)
	for c := range out {
		lo := c * len(ys) / cols
		hi := (c + 1) * len(ys) / cols
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(ys) {
			hi = len(ys)
		}
		best := math.Inf(-1)
		for i := lo; i < hi; i++ {
			if ys[i] > best {
				best = ys[i]
			}
		}
		out[c] = best
	}
	return out
}

// bounds returns the finite min and max of a series.
func bounds(ys []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range ys {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	return
}
