package viz

import (
	"math"
	"strings"
	"testing"
)

func TestLineBasic(t *testing.T) {
	ys := make([]float64, 100)
	for i := range ys {
		ys[i] = math.Sin(float64(i) / 10)
	}
	out := Line("sine", ys, 40, 8)
	if !strings.Contains(out, "sine") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no data points drawn")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + height rows + axis.
	if len(lines) != 1+8+1 {
		t.Errorf("got %d lines, want 10", len(lines))
	}
	// Max and min labels present.
	if !strings.Contains(out, "1.0") || !strings.Contains(out, "-1.0") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestLineDegenerate(t *testing.T) {
	if out := Line("empty", nil, 20, 5); !strings.Contains(out, "no data") {
		t.Error("empty series not flagged")
	}
	// A flat series must not divide by zero.
	out := Line("flat", []float64{2, 2, 2, 2}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Error("flat series not drawn")
	}
	// NaN and -Inf values are skipped, not drawn.
	out = Line("gappy", []float64{1, math.NaN(), math.Inf(-1), 2}, 8, 3)
	if !strings.Contains(out, "*") {
		t.Error("finite values not drawn")
	}
}

func TestLineClampsTinyDimensions(t *testing.T) {
	out := Line("tiny", []float64{1, 2}, 1, 1)
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestBars(t *testing.T) {
	out := Bars("spectrum", []string{"6.0", "7.5"}, []float64{1, 0.5}, 10)
	if !strings.Contains(out, "6.0") || !strings.Contains(out, "7.5") {
		t.Error("labels missing")
	}
	// Full-scale bar has 10 hashes, half-scale 5.
	if !strings.Contains(out, strings.Repeat("#", 10)) {
		t.Error("full-scale bar wrong")
	}
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if strings.Contains(l, "7.5") && !strings.Contains(l, "#####") {
			t.Errorf("half-scale bar wrong: %q", l)
		}
	}
}

func TestBarsDegenerate(t *testing.T) {
	if out := Bars("x", []string{"a"}, nil, 10); !strings.Contains(out, "no data") {
		t.Error("mismatched input not flagged")
	}
	out := Bars("zeros", []string{"a"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Error("zero value drew a bar")
	}
}

func TestScatter(t *testing.T) {
	pts := []Point{
		{X: 0, Y: 0, Mark: 'T'},
		{X: 1, Y: 0},
		{X: 99, Y: 99}, // outside extent, dropped
	}
	out := Scatter("cloud", pts, -2, 2, -1, 1, 20, 6)
	if !strings.Contains(out, "T") {
		t.Error("marked point missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("default-mark point missing")
	}
	if strings.Count(out, "T") != 1 {
		t.Error("mark drawn more than once")
	}
}

func TestScatterDegenerateExtent(t *testing.T) {
	if out := Scatter("bad", nil, 1, 1, 0, 1, 10, 5); !strings.Contains(out, "degenerate") {
		t.Error("degenerate extent not flagged")
	}
}

func TestPoolCoversAllSamples(t *testing.T) {
	// The max of the pooled series equals the max of the input.
	ys := make([]float64, 1000)
	for i := range ys {
		ys[i] = float64(i % 97)
	}
	ys[503] = 1e6
	cols := pool(ys, 37)
	found := false
	for _, v := range cols {
		if v == 1e6 {
			found = true
		}
	}
	if !found {
		t.Error("max-pooling lost the peak")
	}
}
