package scene

import (
	"fmt"
	"math"
	"math/cmplx"

	"ros/internal/coding"
	"ros/internal/em"
	"ros/internal/geom"
	"ros/internal/stack"
)

// Tag is a physical RoS tag placed in the scene: a spatial-coding layout of
// identical (beam-shaped) PSVAA stacks. Its decode-mode radar response is
// computed with exact spherical wavefronts per module, so far-field spatial
// coding (Eq 6), elevation beam shaping (Sec 4.3), and near-field distortion
// (Eq 8) all emerge from one model.
type Tag struct {
	// Layout is the spatial code.
	Layout *coding.Layout
	// Stack is the vertical PSVAA stack used for every present stack
	// position.
	Stack *stack.Stack
	// Position is the reference stack's center in world coordinates. The
	// tag's horizontal axis is parallel to the road (x).
	Position geom.Vec3
	// Stats calibrates the tag's co-polarized (detection mode) appearance;
	// defaults to Stats(ClassTag).
	Stats ClassStats
}

// NewTag assembles a tag from a layout and a stack at the given position.
func NewTag(layout *coding.Layout, st *stack.Stack, pos geom.Vec3) (*Tag, error) {
	if layout == nil || st == nil {
		return nil, fmt.Errorf("scene: tag requires a layout and a stack")
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return &Tag{Layout: layout, Stack: st, Position: pos, Stats: Stats(ClassTag)}, nil
}

// Response returns the tag's decode-mode complex reflection coefficient for
// a radar at the given world position: amplitude^2 is the tag RCS in m^2 and
// the phase is relative to the tag center (the center's own round-trip phase
// is applied by the radar model through Scatterer.Range).
func (t *Tag) Response(radarPos geom.Vec3, f float64) complex128 {
	lambda := em.Wavelength(f)
	k := 4 * math.Pi / lambda
	rel := radarPos.Sub(t.Position)
	rCenter := rel.Norm()
	if rCenter == 0 {
		return 0
	}
	// Azimuth from the stack's broadside (+y): the PSVAA is retroreflective
	// here, so only the smooth envelope remains.
	az := math.Atan2(rel.X, rel.Y)
	moduleAmp := math.Sqrt(t.Stack.Module.MonostaticRCS(az, f, em.PolV, em.PolH))
	if moduleAmp == 0 {
		return 0
	}

	var sum complex128
	for _, d := range t.Layout.Positions() {
		base := t.Position.Add(geom.Vec3{X: d})
		for j, zj := range t.Stack.Heights {
			q := base.Add(geom.Vec3{Z: zj})
			rq := radarPos.Sub(q)
			r := rq.Norm()
			horiz := math.Hypot(rq.X, rq.Y)
			el := math.Atan2(rq.Z, horiz)
			elemEl := t.Stack.Module.Element.Pattern(el)
			ph := -k*(r-rCenter) + t.Stack.Phases[j]
			amp := moduleAmp * elemEl
			sum += complex(amp*math.Cos(ph), amp*math.Sin(ph))
		}
	}
	return sum
}

// RCS returns the decode-mode radar cross section in m^2 seen from
// radarPos.
func (t *Tag) RCS(radarPos geom.Vec3, f float64) float64 {
	a := cmplx.Abs(t.Response(radarPos, f))
	return a * a
}

// ElevationEnvelope returns the exact (near-field) elevation power factor of
// one stack seen from radarPos, normalized to the same position at the tag's
// height: the ratio by which height misalignment scales the tag's return.
// Both the antenna mode and the structural mode radiate from the same
// aperture, so this factor applies to detection-mode returns too.
func (t *Tag) ElevationEnvelope(radarPos geom.Vec3, f float64) float64 {
	flat := radarPos
	flat.Z = t.Position.Z
	p0 := t.stackPower(flat, f)
	if p0 <= 0 {
		return 1
	}
	return t.stackPower(radarPos, f) / p0
}

// stackPower evaluates the per-module coherent sum for the reference stack
// only (elevation structure without the spatial code).
func (t *Tag) stackPower(radarPos geom.Vec3, f float64) float64 {
	lambda := em.Wavelength(f)
	k := 4 * math.Pi / lambda
	rel := radarPos.Sub(t.Position)
	rCenter := rel.Norm()
	if rCenter == 0 {
		return 0
	}
	var re, im float64
	for j, zj := range t.Stack.Heights {
		q := t.Position.Add(geom.Vec3{Z: zj})
		rq := radarPos.Sub(q)
		r := rq.Norm()
		el := math.Atan2(rq.Z, math.Hypot(rq.X, rq.Y))
		amp := t.Stack.Module.Element.Pattern(el)
		ph := -k*(r-rCenter) + t.Stack.Phases[j]
		re += amp * math.Cos(ph)
		im += amp * math.Sin(ph)
	}
	return re*re + im*im
}

// U returns the spatial-coding observation coordinate u = cos(theta) for a
// radar at the given position, theta being the angle between the radar line
// of sight and the tag's +x axis (Sec 5.1).
func (t *Tag) U(radarPos geom.Vec3) float64 {
	rel := radarPos.Sub(t.Position)
	n := rel.Norm()
	if n == 0 {
		return 0
	}
	return rel.X / n
}
