package scene

import (
	"fmt"
	"math"
	"math/cmplx"

	"ros/internal/coding"
	"ros/internal/em"
	"ros/internal/geom"
	"ros/internal/stack"
)

// Tag is a physical RoS tag placed in the scene: a spatial-coding layout of
// identical (beam-shaped) PSVAA stacks. Its decode-mode radar response is
// computed with exact spherical wavefronts per module, so far-field spatial
// coding (Eq 6), elevation beam shaping (Sec 4.3), and near-field distortion
// (Eq 8) all emerge from one model.
type Tag struct {
	// Layout is the spatial code.
	Layout *coding.Layout
	// Stack is the vertical PSVAA stack used for every present stack
	// position.
	Stack *stack.Stack
	// Position is the reference stack's center in world coordinates. The
	// tag's horizontal axis is parallel to the road (x).
	Position geom.Vec3
	// Stats calibrates the tag's co-polarized (detection mode) appearance;
	// defaults to Stats(ClassTag).
	Stats ClassStats

	// fp fingerprints the response-relevant geometry (layout, stack,
	// position), keying the process-wide field-term memo. NewTag computes it
	// eagerly; tags built as literals carry fp 0 and always evaluate
	// directly. A non-zero fp asserts Layout, Stack, and Position stay
	// unmodified for the tag's lifetime — mutate them and the memo serves
	// stale terms.
	fp uint64
}

// NewTag assembles a tag from a layout and a stack at the given position.
func NewTag(layout *coding.Layout, st *stack.Stack, pos geom.Vec3) (*Tag, error) {
	if layout == nil || st == nil {
		return nil, fmt.Errorf("scene: tag requires a layout and a stack")
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return &Tag{
		Layout:   layout,
		Stack:    st,
		Position: pos,
		Stats:    Stats(ClassTag),
		fp:       tagFingerprint(layout, st, pos),
	}, nil
}

// FNV-1a parameters for the tag fingerprint.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func fnvFloat(h uint64, v float64) uint64 { return fnvU64(h, math.Float64bits(v)) }

func fnvFloats(h uint64, vs []float64) uint64 {
	h = fnvU64(h, uint64(len(vs)))
	for _, v := range vs {
		h = fnvFloat(h, v)
	}
	return h
}

// tagFingerprint hashes everything Response and stackPower read: the stack
// placements, the module heights and phase weights, the module model itself
// (via its printed field values — slow, but run once per tag), and the world
// position. Zero is reserved for "no memo", so a hash landing there is
// nudged off it.
func tagFingerprint(layout *coding.Layout, st *stack.Stack, pos geom.Vec3) uint64 {
	h := uint64(fnvOffset)
	h = fnvFloats(h, layout.Positions())
	h = fnvFloats(h, st.Heights)
	h = fnvFloats(h, st.Phases)
	for _, b := range []byte(fmt.Sprintf("%+v", *st.Module)) {
		h ^= uint64(b)
		h *= fnvPrime
	}
	h = fnvFloat(h, pos.X)
	h = fnvFloat(h, pos.Y)
	h = fnvFloat(h, pos.Z)
	if h == 0 {
		h = 1
	}
	return h
}

// Response returns the tag's decode-mode complex reflection coefficient for
// a radar at the given world position: amplitude^2 is the tag RCS in m^2 and
// the phase is relative to the tag center (the center's own round-trip phase
// is applied by the radar model through Scatterer.Range).
func (t *Tag) Response(radarPos geom.Vec3, f float64) complex128 {
	return t.responseCached(defaultResponses, radarPos, f)
}

// responseCached is Response memoizing through an explicit cache; nil skips
// memoization entirely.
func (t *Tag) responseCached(rc *ResponseCache, radarPos geom.Vec3, f float64) complex128 {
	if t.fp == 0 || rc == nil {
		return t.responseDirect(radarPos, f)
	}
	key := responseKey{fp: t.fp, px: radarPos.X, py: radarPos.Y, pz: radarPos.Z, f: f, kind: kindResponse}
	if v, ok := rc.load(key); ok {
		return v.(complex128)
	}
	r := t.responseDirect(radarPos, f)
	rc.store(key, r)
	return r
}

// responseDirect is Response without the memo: the full per-module coherent
// field sum.
func (t *Tag) responseDirect(radarPos geom.Vec3, f float64) complex128 {
	lambda := em.Wavelength(f)
	k := 4 * math.Pi / lambda
	rel := radarPos.Sub(t.Position)
	rCenter := rel.Norm()
	if rCenter == 0 {
		return 0
	}
	// Azimuth from the stack's broadside (+y): the PSVAA is retroreflective
	// here, so only the smooth envelope remains.
	az := math.Atan2(rel.X, rel.Y)
	moduleAmp := math.Sqrt(t.Stack.Module.MonostaticRCS(az, f, em.PolV, em.PolH))
	if moduleAmp == 0 {
		return 0
	}

	// Module loop in components: every module's offset from the radar is
	// rel minus its (x, z) placement, so the y term — and its square — are
	// loop invariants.
	elem := t.Stack.Module.Element
	heights := t.Stack.Heights
	phases := t.Stack.Phases
	ry2 := rel.Y * rel.Y
	var sumRe, sumIm float64
	for _, d := range t.Layout.Positions() {
		dx := rel.X - d
		horiz2 := dx*dx + ry2
		horiz := math.Sqrt(horiz2)
		for j, zj := range heights {
			dz := rel.Z - zj
			r := math.Sqrt(horiz2 + dz*dz)
			if r == 0 {
				continue
			}
			// cos(elevation) is horizontal over slant range directly —
			// no Atan2/Cos round trip per module, and the horizontal
			// distance is shared by the whole stack.
			elemEl := elem.PatternCos(horiz / r)
			ph := -k*(r-rCenter) + phases[j]
			sp, cp := math.Sincos(ph)
			amp := moduleAmp * elemEl
			sumRe += amp * cp
			sumIm += amp * sp
		}
	}
	return complex(sumRe, sumIm)
}

// RCS returns the decode-mode radar cross section in m^2 seen from
// radarPos.
func (t *Tag) RCS(radarPos geom.Vec3, f float64) float64 {
	a := cmplx.Abs(t.Response(radarPos, f))
	return a * a
}

// ElevationEnvelope returns the exact (near-field) elevation power factor of
// one stack seen from radarPos, normalized to the same position at the tag's
// height: the ratio by which height misalignment scales the tag's return.
// Both the antenna mode and the structural mode radiate from the same
// aperture, so this factor applies to detection-mode returns too.
func (t *Tag) ElevationEnvelope(radarPos geom.Vec3, f float64) float64 {
	flat := radarPos
	flat.Z = t.Position.Z
	p0 := t.stackPower(flat, f)
	if p0 <= 0 {
		return 1
	}
	return t.stackPower(radarPos, f) / p0
}

// stackPower evaluates the per-module coherent sum for the reference stack
// only (elevation structure without the spatial code).
func (t *Tag) stackPower(radarPos geom.Vec3, f float64) float64 {
	return t.stackPowerCached(defaultResponses, radarPos, f)
}

// stackPowerCached is stackPower memoizing through an explicit cache; nil
// skips memoization entirely.
func (t *Tag) stackPowerCached(rc *ResponseCache, radarPos geom.Vec3, f float64) float64 {
	if t.fp == 0 || rc == nil {
		return t.stackPowerDirect(radarPos, f)
	}
	key := responseKey{fp: t.fp, px: radarPos.X, py: radarPos.Y, pz: radarPos.Z, f: f, kind: kindStackPower}
	if v, ok := rc.load(key); ok {
		return v.(float64)
	}
	p := t.stackPowerDirect(radarPos, f)
	rc.store(key, p)
	return p
}

// stackPowerDirect is stackPower without the memo.
func (t *Tag) stackPowerDirect(radarPos geom.Vec3, f float64) float64 {
	lambda := em.Wavelength(f)
	k := 4 * math.Pi / lambda
	rel := radarPos.Sub(t.Position)
	rCenter := rel.Norm()
	if rCenter == 0 {
		return 0
	}
	// The reference stack is vertical: the horizontal offset — and the
	// element pattern's numerator — is shared by every module.
	elem := t.Stack.Module.Element
	phases := t.Stack.Phases
	horiz2 := rel.X*rel.X + rel.Y*rel.Y
	horiz := math.Sqrt(horiz2)
	var re, im float64
	for j, zj := range t.Stack.Heights {
		dz := rel.Z - zj
		r := math.Sqrt(horiz2 + dz*dz)
		if r == 0 {
			continue
		}
		amp := elem.PatternCos(horiz / r)
		ph := -k*(r-rCenter) + phases[j]
		sp, cp := math.Sincos(ph)
		re += amp * cp
		im += amp * sp
	}
	return re*re + im*im
}

// U returns the spatial-coding observation coordinate u = cos(theta) for a
// radar at the given position, theta being the angle between the radar line
// of sight and the tag's +x axis (Sec 5.1).
func (t *Tag) U(radarPos geom.Vec3) float64 {
	rel := radarPos.Sub(t.Position)
	n := rel.Norm()
	if n == 0 {
		return 0
	}
	return rel.X / n
}
