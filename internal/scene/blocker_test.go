package scene

import (
	"math/rand"
	"testing"

	"ros/internal/em"
	"ros/internal/geom"
)

func TestBlockerGeometry(t *testing.T) {
	b := Blocker{X0: -1, X1: 1, Y: 1.5, Top: 1.5}
	radar := geom.Vec3{X: 0, Y: 3}
	tag := geom.Vec3{}
	if !b.Blocks(radar, tag) {
		t.Error("direct path through the slab not blocked")
	}
	// Off to the side the ray crosses the slab plane outside [X0, X1].
	if b.Blocks(geom.Vec3{X: 5, Y: 3}, tag) {
		t.Error("oblique path around the slab blocked")
	}
	// A tall tag clears a low blocker: ray passes above Top at the slab.
	highTag := geom.Vec3{Z: 3.5}
	if b.Blocks(radar, highTag) {
		t.Error("path above the slab blocked")
	}
	// The slab does not block targets on the radar's side of it.
	near := geom.Vec3{X: 0, Y: 2}
	if b.Blocks(radar, near) {
		t.Error("target in front of the slab blocked")
	}
	// Degenerate: radar and target at the same Y.
	if b.Blocks(geom.Vec3{Y: 3}, geom.Vec3{X: 1, Y: 3}) {
		t.Error("parallel path blocked")
	}
}

func TestBlockedTagProducesNoScatterers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tag := testTag(t, "1111", 8)
	sc := &Scene{
		Tags:     []*Tag{tag},
		Blockers: []Blocker{{X0: -2, X1: 2, Y: 1.5, Top: 1.5}},
	}
	out := sc.Scatterers(geom.Vec3{Y: 3}, geom.Vec3{}, ModeDecode, em.TIRadar(), fc, rng)
	if len(out) != 0 {
		t.Errorf("blocked tag produced %d scatterers", len(out))
	}
	// From far down the road the ray clears the slab.
	out = sc.Scatterers(geom.Vec3{X: -8, Y: 3}, geom.Vec3{}, ModeDecode, em.TIRadar(), fc, rng)
	if len(out) == 0 {
		t.Error("tag invisible from an unblocked angle")
	}
}

func TestBlockerShadowsClutterToo(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lamp := NewObject(ClassStreetLamp, geom.Vec3{}, rng)
	sc := &Scene{
		Clutter:  []*Object{lamp},
		Blockers: []Blocker{{X0: -2, X1: 2, Y: 1.5, Top: 9}},
	}
	out := sc.Scatterers(geom.Vec3{Y: 3}, geom.Vec3{}, ModeDetect, em.TIRadar(), fc, rng)
	if len(out) != 0 {
		t.Errorf("blocked lamp produced %d scatterers", len(out))
	}
}
