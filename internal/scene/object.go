// Package scene models the roadside world an RoS-equipped vehicle drives
// through: the tag itself (an exact, per-module spherical-wavefront
// scattering model that reproduces far-field spatial coding, elevation beam
// shaping, and near-field distortion in one formula), plus the clutter
// object library of Fig 13 (parking meters, street lamps, road signs,
// pedestrians, trees) with class-calibrated RCS, spatial extent, and
// polarization behaviour, and the fog conditions of Fig 16c.
package scene

import (
	"fmt"
	"math/rand"

	"ros/internal/em"
	"ros/internal/geom"
)

// Class identifies a roadside object type (the x axis of Fig 13).
type Class int

// Object classes evaluated in Fig 13. ClassTripod is the bare mounting
// tripod of Fig 11's illustration.
const (
	ClassTag Class = iota
	ClassTripod
	ClassParkingMeter
	ClassStreetLamp
	ClassRoadSign
	ClassHuman
	ClassTree
)

// String names the class as in Fig 13.
func (c Class) String() string {
	switch c {
	case ClassTag:
		return "RoS tag"
	case ClassTripod:
		return "tripod"
	case ClassParkingMeter:
		return "parking meter"
	case ClassStreetLamp:
		return "street lamp"
	case ClassRoadSign:
		return "road sign"
	case ClassHuman:
		return "pedestrian"
	case ClassTree:
		return "tree"
	default:
		return "unknown"
	}
}

// ClassStats carries the per-class calibration used to reproduce Fig 13.
type ClassStats struct {
	// RCSdBsm is the co-polarized (detection mode) radar cross section.
	RCSdBsm float64
	// CrossRejDB is the polarization rejection: how many dB weaker the
	// object appears when the radar transmits on the switched polarization
	// (Fig 13a: 16-19 dB for ordinary objects, ~13 dB for the tag).
	CrossRejDB float64
	// CrossRejSpreadDB is the per-measurement spread of the rejection.
	CrossRejSpreadDB float64
	// Extent is the object's RMS spatial size in meters (Fig 13b).
	Extent float64
	// PointCount is how many scatter points represent the object.
	PointCount int
}

// Stats returns the calibration for a class. Values are chosen to match the
// medians and orderings of Fig 13: the tag has the smallest RSS loss
// (~13 dB) and the smallest point-cloud size except pedestrians.
func Stats(c Class) ClassStats {
	switch c {
	case ClassTag:
		// RCSdBsm is the co-polarized structural return of the tag's PCB
		// face, quoted for the beam-shaped 32-module 5-stack reference; it
		// sits ~11-13 dB above the tag's median decode-mode response
		// across shaped and unshaped variants, landing the measured RSS
		// loss near Fig 13a's ~13 dB median with margin below the
		// classification threshold.
		return ClassStats{RCSdBsm: -7, CrossRejDB: 13, CrossRejSpreadDB: 1.0, Extent: 0.02, PointCount: 3}
	case ClassTripod:
		return ClassStats{RCSdBsm: -12, CrossRejDB: 17, CrossRejSpreadDB: 1.5, Extent: 0.08, PointCount: 4}
	case ClassParkingMeter:
		return ClassStats{RCSdBsm: -6, CrossRejDB: 17, CrossRejSpreadDB: 1.5, Extent: 0.1, PointCount: 5}
	case ClassStreetLamp:
		return ClassStats{RCSdBsm: -2, CrossRejDB: 18, CrossRejSpreadDB: 1.5, Extent: 0.13, PointCount: 6}
	case ClassRoadSign:
		return ClassStats{RCSdBsm: -4, CrossRejDB: 19, CrossRejSpreadDB: 1.5, Extent: 0.1, PointCount: 7}
	case ClassHuman:
		return ClassStats{RCSdBsm: -8, CrossRejDB: 16.5, CrossRejSpreadDB: 1.5, Extent: 0.06, PointCount: 5}
	case ClassTree:
		return ClassStats{RCSdBsm: 0, CrossRejDB: 16.5, CrossRejSpreadDB: 2.5, Extent: 0.13, PointCount: 10}
	default:
		panic(fmt.Sprintf("scene: unknown class %d", c))
	}
}

// Object is a clutter object placed in the scene.
type Object struct {
	// Class selects the calibration.
	Class Class
	// Position is the object center in world coordinates (x along the
	// road, y across, z up; the tag sits at the origin).
	Position geom.Vec3
	// Stats is the class calibration (filled by NewObject; override for
	// ablations).
	Stats ClassStats
	// offsets are the scatter-point offsets from the center, drawn once at
	// construction so the object is stable across frames.
	offsets []geom.Vec3
}

// NewObject places a clutter object of the given class. The rng draws the
// object's scatter-point geometry (per-instance, stable across frames).
func NewObject(class Class, pos geom.Vec3, rng *rand.Rand) *Object {
	if rng == nil {
		panic("scene: NewObject requires an rng")
	}
	st := Stats(class)
	offsets := make([]geom.Vec3, st.PointCount)
	for i := range offsets {
		// Rod-like objects spread mostly vertically; the extent controls
		// the transverse spread seen by the 2-D point cloud.
		offsets[i] = geom.Vec3{
			X: rng.NormFloat64() * st.Extent,
			Y: rng.NormFloat64() * st.Extent,
			Z: rng.NormFloat64() * st.Extent * 3,
		}
	}
	return &Object{Class: class, Position: pos, Stats: st, offsets: offsets}
}

// pointRCS returns the per-scatter-point RCS in m^2 so the points sum
// (incoherently) to the class RCS.
func (o *Object) pointRCS() float64 {
	return em.FromDBsm(o.Stats.RCSdBsm) / float64(len(o.offsets))
}

// rejection draws the per-measurement polarization rejection in dB.
func (o *Object) rejection(rng *rand.Rand) float64 {
	r := o.Stats.CrossRejDB
	if rng != nil {
		r += rng.NormFloat64() * o.Stats.CrossRejSpreadDB
	}
	return r
}
