package scene

import (
	"math"
	"math/cmplx"
	"math/rand"

	"ros/internal/em"
	"ros/internal/geom"
	"ros/internal/radar"
)

// Mode selects the radar's transmit polarization chain (Sec 7.1: "one
// original Tx antenna for object detection and the polarization switching Tx
// antenna for tag decoding").
type Mode int

// Radar interrogation modes.
const (
	// ModeDetect uses matched Tx/Rx polarization: ordinary objects appear
	// at full strength, the tag only through its co-polarized (structural)
	// response.
	ModeDetect Mode = iota
	// ModeDecode uses the polarization-switching Tx: the tag's PSVAA
	// response dominates while clutter is suppressed by its cross-pol
	// rejection.
	ModeDecode
)

// Scene is a stretch of roadside: tags, clutter, and weather.
type Scene struct {
	// Tags are the RoS tags (usually one; Fig 16a places two).
	Tags []*Tag
	// Clutter are ordinary roadside objects.
	Clutter []*Object
	// Fog is the weather condition (Fig 16c).
	Fog em.FogLevel
	// RainMMPerHour adds rain attenuation (Sec 7.3 quotes 3.2 dB/100 m at
	// 100 mm/h from the paper's [64]); 0 means dry.
	RainMMPerHour float64
	// Blockers are opaque slabs (vehicles) that shadow lines of sight
	// (Sec 7.3's blockage discussion).
	Blockers []Blocker
	// Ground, when non-nil, adds the two-ray road-surface bounce to every
	// path (extra realism beyond the paper's anechoic-style model; the
	// frequency-domain code shrugs it off because detrending removes the
	// slowly varying interference envelope).
	Ground *GroundMultipath
	// Responses, when non-nil, memoizes tag field terms through the given
	// resource handle instead of the process-wide default cache. Results
	// are bit-identical either way; ownership is what changes — an Engine
	// dropping its cache never evicts another handle's entries.
	Responses *ResponseCache
	// DisablePolSwitching ablates Sec 4.2's PSVAA design: decode-mode
	// clutter keeps its full co-polarized strength (no cross-pol
	// rejection) and the tag re-radiates from both halves of each pair
	// (+6 dB), i.e. the tag behaves as a plain VAA read with a co-pol
	// radar. Used to quantify the paper's claim that "the benefit from
	// polarization switching is more than 14 dB".
	DisablePolSwitching bool
}

// refElevationGain is the broadside two-way elevation gain of the
// calibration reference — the beam-shaped 32-module stack
// (beamshape.Shaped(32).ElevationGain(0, 79 GHz)) — against which
// ClassStats' tag RCS is quoted. The detect package's tests pin the
// resulting ~13 dB RSS-loss feature, catching drift if the beam-shaping
// synthesis changes.
const refElevationGain = 42.5

// radarPatternExponent shapes the radar antenna's one-way amplitude element
// pattern cos^q(az); q = 1.2 puts the two-way -3 dB width at ~60 degrees,
// the typical radar antenna FoV quoted in Sec 7.3.
const radarPatternExponent = 1.2

// radarElementAmp is the two-way radar antenna pattern factor (amplitude).
func radarElementAmp(az float64) float64 {
	c := math.Cos(az)
	if c <= 0 {
		return 0
	}
	return math.Pow(c, 2*radarPatternExponent)
}

// Scatterers converts the scene into the point-scatterer list seen by a
// radar at radarPos moving with radarVel, for one frame in the given mode.
// The front end and frequency size the link budget; the rng draws
// per-measurement polarization-rejection spread (nil for deterministic
// output).
func (s *Scene) Scatterers(radarPos, radarVel geom.Vec3, mode Mode, fe em.RadarFrontEnd, f float64, rng *rand.Rand) []radar.Scatterer {
	responses := s.Responses
	if responses == nil {
		responses = defaultResponses
	}
	lambda := em.Wavelength(f)
	fogAtten := s.Fog.AttenuationDBPerMeter() + em.RainAttenuationDBPerMeter(s.RainMMPerHour)
	capHint := 3 * len(s.Tags) // detect mode emits up to 3 points per tag
	for _, o := range s.Clutter {
		capHint += len(o.offsets)
	}
	out := make([]radar.Scatterer, 0, capHint)

	// amplitudeFor evaluates Eq 1 for a given RCS (m^2) at distance d,
	// including the radar element pattern and fog.
	amplitudeFor := func(rcs float64, d, az float64) float64 {
		if rcs <= 0 || d <= 0 {
			return 0
		}
		pr := em.ReceivedPowerDBm(fe.EIRPdBm, fe.RxGainDB(), lambda, d, em.DBsm(rcs))
		amp := math.Sqrt(em.FromDBm(pr))
		amp *= radarElementAmp(az)
		amp *= math.Sqrt(em.RoundTripLoss(fogAtten, d))
		return amp
	}

	addPoint := func(pos geom.Vec3, rcs float64, extraPhase float64) {
		if s.blocked(radarPos, pos) {
			return
		}
		rel := pos.Sub(radarPos)
		d := rel.Norm()
		az := math.Atan2(rel.X, -rel.Y) // radar at y>0 looks toward -y (side-looking)
		amp := amplitudeFor(rcs, d, az)
		if amp == 0 {
			return
		}
		amp *= s.Ground.TwoWayFactor(radarPos, pos, lambda)
		vr := 0.0
		if d > 0 {
			vr = -rel.Unit().Dot(radarVel) // positive when receding
		}
		out = append(out, radar.Scatterer{
			Range:          d,
			Azimuth:        az,
			Elevation:      math.Atan2(rel.Z, math.Hypot(rel.X, rel.Y)),
			Amplitude:      amp,
			Phase:          extraPhase,
			RadialVelocity: vr,
		})
	}

	for _, o := range s.Clutter {
		rcs := o.pointRCS()
		if mode == ModeDecode && !s.DisablePolSwitching {
			rcs *= em.FromDB(-o.rejection(rng))
		}
		for _, off := range o.offsets {
			addPoint(o.Position.Add(off), rcs, 0)
		}
	}

	for _, t := range s.Tags {
		switch mode {
		case ModeDecode:
			if s.blocked(radarPos, t.Position) {
				continue
			}
			resp := t.responseCached(responses, radarPos, f)
			if s.DisablePolSwitching {
				// Both pair halves re-radiate: +6 dB RCS (Sec 4.2).
				resp *= 2
			}
			a := cmplx.Abs(resp)
			if a == 0 {
				continue
			}
			rel := t.Position.Sub(radarPos)
			d := rel.Norm()
			az := math.Atan2(rel.X, -rel.Y)
			amp := amplitudeFor(a*a, d, az)
			if amp == 0 {
				continue
			}
			amp *= s.Ground.TwoWayFactor(radarPos, t.Position, lambda)
			vr := -rel.Unit().Dot(radarVel)
			out = append(out, radar.Scatterer{
				Range:          d,
				Azimuth:        az,
				Elevation:      math.Atan2(rel.Z, math.Hypot(rel.X, rel.Y)),
				Amplitude:      amp,
				Phase:          cmplx.Phase(resp),
				RadialVelocity: vr,
			})
		case ModeDetect:
			// Co-polarized structural response: a compact bright object.
			// The structural return radiates from the same aperture as the
			// antenna mode, so it carries the same per-stack aperture
			// field sum — elevation directivity, beam-shaping spread, and
			// near-field defocus included — and scales with the number of
			// mounted stacks. Stats calibrates the beam-shaped 32-module,
			// 5-stack reference (whose broadside far-field gain is
			// refElevationGain). This pins the RSS-loss feature near
			// Fig 13a's ~13 dB for every stack size, shaping choice, and
			// bit pattern.
			aperture := t.stackPowerCached(responses, radarPos, f) / refElevationGain
			mounted := float64(len(t.Layout.Positions())) / 5
			rcs := em.FromDBsm(t.Stats.RCSdBsm) * aperture * mounted / 3
			for i := -1; i <= 1; i++ {
				off := geom.Vec3{X: float64(i) * t.Stats.Extent, Z: float64(i) * t.Stats.Extent}
				addPoint(t.Position.Add(off), rcs, 0)
			}
		}
	}
	return out
}
