// Cache registry of the scene package. Tag field responses are pure
// functions of (tag geometry, radar position, frequency), and a drive-by
// sweep interrogates the same tag from the same trajectory positions on
// every read — so the per-scatterer module sums, the dominant cost of
// decode-mode scene evaluation, are memoized process-wide. Entries are
// immutable complex/real values shared across goroutines; the entry count
// is mirrored into ros_scene_response_entries and ResetCaches drops it.
package scene

import "ros/internal/obs"

// sceneResponseCap bounds the memo. A canonical read touches a few thousand
// (position, frequency) pairs per tag; 65536 entries hold dozens of
// simultaneous sweeps. Unlike the radar caches (whose working sets are one
// entry per config), trajectories with per-read jitter could grow this
// without bound, so on hitting the cap the map is wiped and rebuilt — memo
// misses change timing, never values.
const sceneResponseCap = 1 << 16

var sceneResponses = obs.NewCountedMap(obs.Default.Gauge("ros_scene_response_entries",
	"Resident memoized tag field terms, one per (tag fingerprint, radar position, frequency, term)."))

// responseKind distinguishes the memoized field terms sharing the cache.
type responseKind uint8

const (
	kindResponse   responseKind = iota // Tag.Response (decode-mode complex field)
	kindStackPower                     // Tag.stackPower (detect-mode aperture power)
)

// responseKey addresses one memoized term. Positions and frequency are keyed
// on their exact float64 bits: any change reruns the module loop, equal bits
// return the identical stored value, so memoized and direct evaluation are
// indistinguishable byte for byte.
type responseKey struct {
	fp         uint64 // tag fingerprint from NewTag; 0 never reaches the cache
	px, py, pz float64
	f          float64
	kind       responseKind
}

// memoLoad returns the cached term for key, if present.
func memoLoad(key responseKey) (any, bool) { return sceneResponses.Load(key) }

// memoStore publishes a computed term, wiping the cache first when at
// capacity. Concurrent racers compute identical values (the term is a pure
// function of the key), so whichever store wins is indistinguishable.
func memoStore(key responseKey, v any) {
	if sceneResponses.Len() >= sceneResponseCap {
		sceneResponses.Clear()
	}
	sceneResponses.LoadOrStore(key, v)
}

// ResetCaches drops the scene memo cache and zeroes its gauge. Subsequent
// calls recompute and repopulate; results are bit-identical either way.
// Intended for long-lived processes cycling through unbounded tag or
// trajectory sets and for tests that need a cold start.
func ResetCaches() {
	sceneResponses.Clear()
}
