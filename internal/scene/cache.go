// Response memoization of the scene package. Tag field responses are pure
// functions of (tag geometry, radar position, frequency), and a drive-by
// sweep interrogates the same tag from the same trajectory positions on
// every read — so the per-scatterer module sums, the dominant cost of
// decode-mode scene evaluation, are memoized in a ResponseCache. Entries are
// immutable complex/real values shared across goroutines. The cache is a
// resource handle: Scene.Responses selects one explicitly, and callers
// without a handle fall back to the default cache behind the package-level
// entry points (its entry count is mirrored into ros_scene_response_entries
// and ResetCaches drops it).
package scene

import "ros/internal/obs"

// CacheResponses names the scene response cache for resource-handle gauge
// providers (see dsp.CacheGauge).
const CacheResponses = "scene_response"

// sceneResponseCap bounds a response cache by default. A canonical read
// touches a few thousand (position, frequency) pairs per tag; 65536 entries
// hold dozens of simultaneous sweeps. Unlike the radar caches (whose working
// sets are one entry per config), trajectories with per-read jitter could
// grow this without bound, so on hitting the cap the map is wiped and
// rebuilt — memo misses change timing, never values.
const sceneResponseCap = 1 << 16

// responseKind distinguishes the memoized field terms sharing the cache.
type responseKind uint8

const (
	kindResponse   responseKind = iota // Tag.Response (decode-mode complex field)
	kindStackPower                     // Tag.stackPower (detect-mode aperture power)
)

// responseKey addresses one memoized term. Positions and frequency are keyed
// on their exact float64 bits: any change reruns the module loop, equal bits
// return the identical stored value, so memoized and direct evaluation are
// indistinguishable byte for byte.
type responseKey struct {
	fp         uint64 // tag fingerprint from NewTag; 0 never reaches the cache
	px, py, pz float64
	f          float64
	kind       responseKind
}

// ResponseCache owns the memoized tag field terms for one resource handle.
// It is safe for concurrent use by any number of goroutines.
type ResponseCache struct {
	entries *obs.CountedMap
	cap     int
}

// NewResponseCache returns an empty cache mirroring its entry count into the
// given gauge, wiping itself whenever it reaches capacity (<= 0 selects the
// default capacity).
func NewResponseCache(gauge *obs.Gauge, capacity int) *ResponseCache {
	if capacity <= 0 {
		capacity = sceneResponseCap
	}
	return &ResponseCache{entries: obs.NewCountedMap(gauge), cap: capacity}
}

// load returns the cached term for key, if present.
func (rc *ResponseCache) load(key responseKey) (any, bool) { return rc.entries.Load(key) }

// store publishes a computed term, wiping the cache first when at capacity.
// Concurrent racers compute identical values (the term is a pure function of
// the key), so whichever store wins is indistinguishable.
func (rc *ResponseCache) store(key responseKey, v any) {
	if rc.entries.Len() >= rc.cap {
		rc.entries.Clear()
	}
	rc.entries.LoadOrStore(key, v)
}

// Len returns the resident entry count.
func (rc *ResponseCache) Len() int { return rc.entries.Len() }

// Clear drops every entry and zeroes the gauge. Subsequent calls recompute
// and repopulate; results are bit-identical either way.
func (rc *ResponseCache) Clear() { rc.entries.Clear() }

// defaultResponses is the process-wide cache behind the package-level entry
// points (Tag.Response, Tag.RCS, Scatterers on a Scene without an explicit
// handle).
var defaultResponses = NewResponseCache(obs.Default.Gauge("ros_scene_response_entries",
	"Resident memoized tag field terms, one per (tag fingerprint, radar position, frequency, term)."), 0)

// DefaultResponseCache returns the process-wide response cache.
func DefaultResponseCache() *ResponseCache { return defaultResponses }

// ResetCaches drops the default scene memo cache and zeroes its gauge.
// Intended for long-lived processes cycling through unbounded tag or
// trajectory sets and for tests that need a cold start.
func ResetCaches() {
	defaultResponses.Clear()
}
