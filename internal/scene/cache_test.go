package scene

import (
	"math/cmplx"
	"testing"

	"ros/internal/coding"
	"ros/internal/geom"
	"ros/internal/stack"
)

// literalTwin copies a NewTag-built tag into a literal (fp 0) twin that
// always evaluates directly — the bit-identity reference for the memo.
func literalTwin(tag *Tag) *Tag {
	return &Tag{Layout: tag.Layout, Stack: tag.Stack, Position: tag.Position, Stats: tag.Stats}
}

// TestTagResponseMemoMatchesDirect pins the memo's core contract: memoized
// evaluation is byte-identical to direct evaluation, cold and warm.
func TestTagResponseMemoMatchesDirect(t *testing.T) {
	ResetCaches()
	tag := testTag(t, "1011", 8)
	direct := literalTwin(tag)
	if tag.fp == 0 {
		t.Fatal("NewTag left fp zero — memo never engages")
	}
	if direct.fp != 0 {
		t.Fatal("literal tag carries a fingerprint")
	}
	probes := []geom.Vec3{
		{X: 0, Y: 10, Z: 0.5},
		{X: -3, Y: 8, Z: 0.5},
		{X: 2.5, Y: 20, Z: 1},
		{X: 0.001, Y: 10, Z: 0.5},
	}
	for _, p := range probes {
		want := direct.Response(p, fc)
		cold := tag.Response(p, fc) // computes and stores
		warm := tag.Response(p, fc) // served from the memo
		if cold != want || warm != want {
			t.Errorf("Response(%v): cold %v warm %v direct %v", p, cold, warm, want)
		}
		wantP := direct.stackPower(p, fc)
		coldP := tag.stackPower(p, fc)
		warmP := tag.stackPower(p, fc)
		if coldP != wantP || warmP != wantP {
			t.Errorf("stackPower(%v): cold %v warm %v direct %v", p, coldP, warmP, wantP)
		}
		// The derived quantities flow through the same memo.
		if tag.RCS(p, fc) != direct.RCS(p, fc) {
			t.Errorf("RCS(%v) diverges from direct", p)
		}
		if tag.ElevationEnvelope(p, fc) != direct.ElevationEnvelope(p, fc) {
			t.Errorf("ElevationEnvelope(%v) diverges from direct", p)
		}
	}
	if n := defaultResponses.Len(); n == 0 {
		t.Error("memo is empty after memoized evaluations")
	}
}

// TestResetCachesRebuildIdentical checks that dropping the memo mid-stream
// changes nothing but timing.
func TestResetCachesRebuildIdentical(t *testing.T) {
	ResetCaches()
	tag := testTag(t, "1101", 8)
	p := geom.Vec3{X: 1.5, Y: 12, Z: 0.7}
	before := tag.Response(p, fc)
	beforeP := tag.stackPower(p, fc)
	ResetCaches()
	if n := defaultResponses.Len(); n != 0 {
		t.Fatalf("ResetCaches left %d entries", n)
	}
	if got := tag.Response(p, fc); got != before {
		t.Errorf("Response after ResetCaches: %v != %v", got, before)
	}
	if got := tag.stackPower(p, fc); got != beforeP {
		t.Errorf("stackPower after ResetCaches: %v != %v", got, beforeP)
	}
}

// TestTagFingerprintSeparatesTags pins the fingerprint's injectivity over
// the inputs production varies: bit pattern, stack size, and world position
// (driveby places the same layout/stack at several offsets — a positional
// collision would serve one tag's field for another's).
func TestTagFingerprintSeparatesTags(t *testing.T) {
	ResetCaches()
	base := testTag(t, "1011", 8)
	fps := map[uint64]string{base.fp: "base"}
	add := func(name string, tag *Tag, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := fps[tag.fp]; dup {
			t.Errorf("%s collides with %s (fp %#x)", name, prev, tag.fp)
		}
		fps[tag.fp] = name
	}
	otherBits := testTag(t, "1101", 8)
	add("bits 1101", otherBits, nil)
	otherStack := testTag(t, "1011", 16)
	add("16 modules", otherStack, nil)
	shifted, err := NewTag(base.Layout, base.Stack, geom.Vec3{X: 0.35})
	add("shifted x", shifted, err)
	nudged, err := NewTag(base.Layout, base.Stack, geom.Vec3{Y: 0.0001})
	add("nudged y", nudged, err)

	// And the memo keeps them apart end to end: warm both co-located-layout
	// tags, then check each still answers with its own field.
	p := geom.Vec3{X: 0.5, Y: 9, Z: 0.4}
	rBase := base.Response(p, fc)
	rShift := shifted.Response(p, fc)
	if rBase == rShift {
		t.Fatal("test premise broken: distinct positions gave identical fields")
	}
	if got := base.Response(p, fc); got != rBase {
		t.Error("base tag's memoized field was overwritten by the shifted tag")
	}
	if got := shifted.Response(p, fc); got != rShift {
		t.Error("shifted tag's memoized field was overwritten by the base tag")
	}
}

// TestSceneMemoCapWipes fills the memo to capacity with synthetic keys and
// checks the wipe: the map never exceeds the cap and keeps absorbing new
// entries afterwards.
func TestSceneMemoCapWipes(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	for i := 0; i < sceneResponseCap; i++ {
		defaultResponses.store(responseKey{fp: 1, px: float64(i)}, complex128(0))
	}
	if n := defaultResponses.Len(); n != sceneResponseCap {
		t.Fatalf("filled memo holds %d entries, want %d", n, sceneResponseCap)
	}
	defaultResponses.store(responseKey{fp: 2}, complex128(0))
	if n := defaultResponses.Len(); n != 1 {
		t.Errorf("store at capacity left %d entries, want 1 (wipe then insert)", n)
	}
}

// TestNewTagFingerprintDeterministic: the same inputs always produce the
// same fingerprint, so memo entries survive tag reconstruction (a new
// process, or sim re-runs that rebuild the scene each read).
func TestNewTagFingerprintDeterministic(t *testing.T) {
	a := testTag(t, "1011", 8)
	b := testTag(t, "1011", 8)
	if a.fp != b.fp {
		t.Errorf("identical tags fingerprint differently: %#x vs %#x", a.fp, b.fp)
	}
}

func benchTag(b *testing.B, memo bool) *Tag {
	b.Helper()
	bits, err := coding.ParseBits("10110101")
	if err != nil {
		b.Fatal(err)
	}
	layout, err := coding.NewLayout(bits, coding.DefaultDelta())
	if err != nil {
		b.Fatal(err)
	}
	tag, err := NewTag(layout, stack.NewUniform(32), geom.Vec3{})
	if err != nil {
		b.Fatal(err)
	}
	if !memo {
		return literalTwin(tag)
	}
	return tag
}

// BenchmarkSceneResponseMemo measures the warm-memo hit path against
// BenchmarkSceneResponseDirect's full module loop — the per-frame saving a
// repeated trajectory buys.
func BenchmarkSceneResponseMemo(b *testing.B) {
	ResetCaches()
	tag := benchTag(b, true)
	p := geom.Vec3{X: 1, Y: 10, Z: 0.5}
	if tag.Response(p, fc) == 0 {
		b.Fatal("degenerate probe")
	}
	b.ReportAllocs()
	b.ResetTimer()
	var acc complex128
	for i := 0; i < b.N; i++ {
		acc += tag.Response(p, fc)
	}
	if cmplx.IsNaN(acc) {
		b.Fatal("NaN accumulator")
	}
}

func BenchmarkSceneResponseDirect(b *testing.B) {
	tag := benchTag(b, false)
	p := geom.Vec3{X: 1, Y: 10, Z: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	var acc complex128
	for i := 0; i < b.N; i++ {
		acc += tag.Response(p, fc)
	}
	if cmplx.IsNaN(acc) {
		b.Fatal("NaN accumulator")
	}
}
