package scene

import (
	"math"

	"ros/internal/geom"
)

// GroundMultipath is the classic two-ray road-surface bounce: besides the
// direct path, energy reaches the target via a reflection off the asphalt,
// and the two combine with a path-difference phase. Radar and tag heights
// here are measured above the road surface (the scene's z = 0 plane is the
// radar mounting height).
type GroundMultipath struct {
	// RadarHeight is the radar's mounting height above the road in meters
	// (z = 0 in scene coordinates corresponds to this height).
	RadarHeight float64
	// ReflectionCoeff is the road surface's field reflection coefficient
	// (asphalt at grazing incidence is around -0.7).
	ReflectionCoeff float64
}

// DefaultGround returns a bumper-height radar over asphalt.
func DefaultGround() *GroundMultipath {
	return &GroundMultipath{RadarHeight: 0.5, ReflectionCoeff: -0.7}
}

// TwoWayFactor returns the amplitude multiplier the bounce applies to a
// monostatic round trip between the radar and a point target. A nil
// receiver returns 1 (no ground model).
func (g *GroundMultipath) TwoWayFactor(radarPos, target geom.Vec3, lambda float64) float64 {
	if g == nil {
		return 1
	}
	hr := g.RadarHeight + radarPos.Z
	ht := g.RadarHeight + target.Z
	if hr <= 0 || ht <= 0 {
		return 1 // below grade: no specular bounce geometry
	}
	dx := target.X - radarPos.X
	dy := target.Y - radarPos.Y
	horiz := math.Hypot(dx, dy)
	direct := math.Sqrt(horiz*horiz + (ht-hr)*(ht-hr))
	bounced := math.Sqrt(horiz*horiz + (ht+hr)*(ht+hr))
	delta := bounced - direct
	ph := 2 * math.Pi * delta / lambda
	// One-way field: 1 + Gamma*e^{-j*ph}; the round trip squares it in
	// power, i.e. the amplitude factor is |1 + Gamma*e^{-j*ph}|^2... the
	// same composite channel is traversed twice, so the two-way amplitude
	// is the one-way power factor.
	re := 1 + g.ReflectionCoeff*math.Cos(ph)
	im := -g.ReflectionCoeff * math.Sin(ph)
	return re*re + im*im
}
