package scene

import (
	"math"
	"testing"

	"ros/internal/geom"
)

func TestNilGroundIsTransparent(t *testing.T) {
	var g *GroundMultipath
	if f := g.TwoWayFactor(geom.Vec3{Y: 3}, geom.Vec3{}, 0.004); f != 1 {
		t.Errorf("nil ground factor = %g, want 1", f)
	}
}

func TestGroundFactorOscillatesWithHeight(t *testing.T) {
	g := DefaultGround()
	lambda := 0.0037948
	radar := geom.Vec3{Y: 3}
	lo, hi := math.Inf(1), math.Inf(-1)
	for z := 0.0; z < 0.02; z += lambda / 32 {
		f := g.TwoWayFactor(radar, geom.Vec3{Z: z}, lambda)
		lo = math.Min(lo, f)
		hi = math.Max(hi, f)
	}
	// With |Gamma| = 0.7 the one-way power envelope swings between
	// (1-0.7)^2 = 0.09 and (1+0.7)^2 = 2.89.
	if hi/lo < 5 {
		t.Errorf("two-ray ripple only %gx over a height sweep", hi/lo)
	}
	if hi > 2.9 || lo < 0.08 {
		t.Errorf("factor out of physical envelope: [%g, %g]", lo, hi)
	}
}

func TestGroundBelowGradeTransparent(t *testing.T) {
	g := DefaultGround()
	if f := g.TwoWayFactor(geom.Vec3{Y: 3, Z: -1}, geom.Vec3{}, 0.004); f != 1 {
		t.Errorf("below-grade factor = %g, want 1", f)
	}
}

func TestGroundRippleFrequencyGrowsWithHeight(t *testing.T) {
	// The path difference ~ 2*hr*ht/d: doubling the target height roughly
	// doubles the phase, so the factor changes faster with distance.
	g := DefaultGround()
	lambda := 0.0037948
	count := func(ht float64) int {
		prevAbove := false
		crossings := 0
		for d := 2.0; d < 6; d += 0.002 {
			f := g.TwoWayFactor(geom.Vec3{Y: d}, geom.Vec3{Z: ht}, lambda)
			above := f > 1
			if d > 2 && above != prevAbove {
				crossings++
			}
			prevAbove = above
		}
		return crossings
	}
	if count(0.5) <= count(0.0) {
		t.Error("ripple frequency did not grow with target height")
	}
}
