package scene

import "ros/internal/geom"

// Blockage (Sec 7.3): "detection and decoding of a RoS tag fails when it is
// fully blocked by another vehicle, since mmWave signals cannot penetrate
// metal. Chances of full blockage can be reduced by mounting RoS tags higher
// than the vehicles and installing redundant RoS tags along the road."
// Blockers model parked/passing vehicles as opaque vertical slabs between
// the road and the curb.

// Blocker is an opaque slab parallel to the road: it spans [X0, X1] along
// the road at lateral position Y, up to height Top.
type Blocker struct {
	// X0 and X1 bound the slab along the road (X0 < X1).
	X0, X1 float64
	// Y is the slab's lateral position (between the radar's lane and the
	// tag).
	Y float64
	// Top is the slab's height; rays passing above it clear the blocker
	// (mounting tags high defeats low blockers, the paper's mitigation).
	Top float64
}

// Blocks reports whether the line of sight from the radar to the target is
// interrupted by the slab.
func (b Blocker) Blocks(radar, target geom.Vec3) bool {
	dy := target.Y - radar.Y
	if dy == 0 {
		return false
	}
	t := (b.Y - radar.Y) / dy
	if t <= 0 || t >= 1 {
		return false // the slab plane is not between the endpoints
	}
	x := radar.X + t*(target.X-radar.X)
	if x < b.X0 || x > b.X1 {
		return false
	}
	z := radar.Z + t*(target.Z-radar.Z)
	return z <= b.Top
}

// blocked reports whether any scene blocker interrupts the path.
func (s *Scene) blocked(radar, target geom.Vec3) bool {
	for _, b := range s.Blockers {
		if b.Blocks(radar, target) {
			return true
		}
	}
	return false
}
