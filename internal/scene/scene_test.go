package scene

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"ros/internal/beamshape"
	"ros/internal/coding"
	"ros/internal/em"
	"ros/internal/geom"
	"ros/internal/stack"
)

const fc = em.CenterFrequency

func testTag(t *testing.T, bits string, n int) *Tag {
	t.Helper()
	b, err := coding.ParseBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := coding.NewLayout(b, coding.DefaultDelta())
	if err != nil {
		t.Fatal(err)
	}
	tag, err := NewTag(layout, stack.NewUniform(n), geom.Vec3{})
	if err != nil {
		t.Fatal(err)
	}
	return tag
}

func TestClassNamesAndStats(t *testing.T) {
	classes := []Class{ClassTag, ClassTripod, ClassParkingMeter, ClassStreetLamp, ClassRoadSign, ClassHuman, ClassTree}
	for _, c := range classes {
		if c.String() == "unknown" {
			t.Errorf("class %d has no name", c)
		}
		st := Stats(c)
		if st.PointCount < 1 || st.Extent <= 0 {
			t.Errorf("%v: degenerate stats %+v", c, st)
		}
	}
	if Class(99).String() != "unknown" {
		t.Error("unknown class misnamed")
	}
}

func TestFig13aOrdering(t *testing.T) {
	// Fig 13a: the tag's polarization RSS loss (~13 dB) is smaller than
	// every ordinary object's rejection (16-19 dB).
	tagRej := Stats(ClassTag).CrossRejDB
	for _, c := range []Class{ClassParkingMeter, ClassStreetLamp, ClassRoadSign, ClassHuman, ClassTree} {
		if rej := Stats(c).CrossRejDB; rej <= tagRej+2 {
			t.Errorf("%v rejection %g dB not well above tag's %g dB", c, rej, tagRej)
		}
	}
}

func TestFig13bOrdering(t *testing.T) {
	// Fig 13b: the tag's point-cloud size is the smallest; only pedestrians
	// come close.
	tagExt := Stats(ClassTag).Extent
	for _, c := range []Class{ClassParkingMeter, ClassStreetLamp, ClassRoadSign, ClassTree} {
		if ext := Stats(c).Extent; ext <= tagExt*1.5 {
			t.Errorf("%v extent %g not well above tag's %g", c, ext, tagExt)
		}
	}
	if h := Stats(ClassHuman).Extent; h > Stats(ClassRoadSign).Extent {
		t.Error("pedestrian extent should be below road sign's")
	}
}

func TestStatsPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown class accepted")
		}
	}()
	Stats(Class(99))
}

func TestTagResponseFarFieldMatchesEq6(t *testing.T) {
	// In the far field the exact per-module model must reproduce Eq 6's
	// plane-wave multi-stack gain.
	tag := testTag(t, "1111", 8)
	lambda := em.Lambda79()
	pos := tag.Layout.Positions()
	r := 60.0
	for _, deg := range []float64{70, 90, 110} {
		th := geom.Rad(deg)
		radarPos := geom.Vec3{X: r * math.Cos(th), Y: r * math.Sin(th)}
		u := tag.U(radarPos)
		exact := tag.RCS(radarPos, fc)
		// Reference: single-stack RCS at this azimuth times Eq 6 gain.
		az := math.Atan2(radarPos.X, radarPos.Y)
		single := tag.Stack.RCS(az, 0, fc, em.PolV, em.PolH)
		want := single * coding.MultiStackGain(pos, u, lambda) / 1 // gain includes M^2 scale
		// The exact model sums stacks coherently: RCS = single *
		// gain(normalized). MultiStackGain already includes the stack
		// count, so compare ratios.
		if want == 0 {
			continue
		}
		ratio := exact / want
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("theta=%g: exact %g vs Eq6 %g (ratio %g)", deg, exact, want, ratio)
		}
	}
}

func TestTagUCoordinate(t *testing.T) {
	tag := testTag(t, "11", 8)
	if u := tag.U(geom.Vec3{X: 5, Y: 0}); math.Abs(u-1) > 1e-12 {
		t.Errorf("u along +x = %g, want 1", u)
	}
	if u := tag.U(geom.Vec3{X: 0, Y: 5}); math.Abs(u) > 1e-12 {
		t.Errorf("u broadside = %g, want 0", u)
	}
	if u := tag.U(geom.Vec3{}); u != 0 {
		t.Errorf("u at tag = %g", u)
	}
}

func TestTagRCSPeakAtBroadside(t *testing.T) {
	// All stacks align at u = 0: RCS = single-stack RCS * M^2.
	tag := testTag(t, "1111", 32)
	radarPos := geom.Vec3{Y: 50}
	got := em.DBsm(tag.RCS(radarPos, fc))
	single := em.DBsm(tag.Stack.RCS(0, 0, fc, em.PolV, em.PolH))
	want := single + 20*math.Log10(5)
	if math.Abs(got-want) > 1.5 {
		t.Errorf("broadside tag RCS = %g dBsm, want ~%g", got, want)
	}
}

func TestShapedTagRCSMatchesPaperLinkBudget(t *testing.T) {
	// Sec 5.3 uses sigma = -23 dBsm for the 32-module tag; our shaped
	// 32-module single stack at broadside should be within a few dB.
	sh := beamshape.Shaped(32)
	got := em.DBsm(sh.RCS(0, 0, fc, em.PolV, em.PolH))
	if math.Abs(got-(-23)) > 4 {
		t.Errorf("shaped 32-stack RCS = %g dBsm, want ~-23", got)
	}
}

func TestNewTagErrors(t *testing.T) {
	if _, err := NewTag(nil, stack.NewUniform(4), geom.Vec3{}); err == nil {
		t.Error("nil layout accepted")
	}
	bits, _ := coding.ParseBits("11")
	layout, _ := coding.NewLayout(bits, coding.DefaultDelta())
	if _, err := NewTag(layout, nil, geom.Vec3{}); err == nil {
		t.Error("nil stack accepted")
	}
	bad := stack.NewUniform(4)
	bad.Phases = bad.Phases[:2]
	if _, err := NewTag(layout, bad, geom.Vec3{}); err == nil {
		t.Error("invalid stack accepted")
	}
}

func TestScatterersDecodeVsDetect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tag := testTag(t, "1111", 32)
	lamp := NewObject(ClassStreetLamp, geom.Vec3{X: 1, Y: 0.5}, rng)
	sc := &Scene{Tags: []*Tag{tag}, Clutter: []*Object{lamp}}
	radarPos := geom.Vec3{Y: 4}
	fe := em.TIRadar()

	det := sc.Scatterers(radarPos, geom.Vec3{}, ModeDetect, fe, fc, rng)
	dec := sc.Scatterers(radarPos, geom.Vec3{}, ModeDecode, fe, fc, rng)
	if len(det) == 0 || len(dec) == 0 {
		t.Fatal("no scatterers generated")
	}

	power := func(list []struct {
		amp float64
	}) float64 {
		return 0
	}
	_ = power

	sum := func(scs []float64) float64 {
		s := 0.0
		for _, v := range scs {
			s += v
		}
		return s
	}
	lampPowerDet, lampPowerDec := 0.0, 0.0
	for _, s := range det {
		if s.Range < 3.9 { // lamp is closer than the tag
			lampPowerDet += s.Amplitude * s.Amplitude
		}
	}
	for _, s := range dec {
		if s.Range < 3.9 {
			lampPowerDec += s.Amplitude * s.Amplitude
		}
	}
	// Clutter drops by its cross-pol rejection (~18 dB) in decode mode.
	drop := em.DB(lampPowerDet / lampPowerDec)
	if drop < 12 || drop > 24 {
		t.Errorf("lamp decode-mode suppression = %g dB, want ~18", drop)
	}
	_ = sum
}

func TestScatterersFogReducesAmplitude(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tag := testTag(t, "1111", 32)
	clear := &Scene{Tags: []*Tag{tag}, Fog: em.FogClear}
	foggy := &Scene{Tags: []*Tag{tag}, Fog: em.FogHeavy}
	radarPos := geom.Vec3{Y: 5}
	fe := em.TIRadar()
	a := clear.Scatterers(radarPos, geom.Vec3{}, ModeDecode, fe, fc, rng)
	b := foggy.Scatterers(radarPos, geom.Vec3{}, ModeDecode, fe, fc, rng)
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("unexpected scatterer counts %d, %d", len(a), len(b))
	}
	lossDB := 2 * em.DB(a[0].Amplitude/b[0].Amplitude)
	// Two-way heavy fog at 5 m: 2 * 0.02 dB/m * 5 m = 0.2 dB.
	if lossDB < 0.05 || lossDB > 0.5 {
		t.Errorf("heavy fog loss at 5 m = %g dB, want ~0.2", lossDB)
	}
}

func TestScatterersOutsideFoVDark(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tag := testTag(t, "11", 8)
	sc := &Scene{Tags: []*Tag{tag}}
	// Radar behind the tag plane: azimuth > 90 deg off boresight.
	radarPos := geom.Vec3{Y: -3}
	out := sc.Scatterers(radarPos, geom.Vec3{}, ModeDecode, em.TIRadar(), fc, rng)
	if len(out) != 0 {
		t.Errorf("tag visible from behind: %+v", out)
	}
}

func TestScatterersDoppler(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tag := testTag(t, "11", 8)
	sc := &Scene{Tags: []*Tag{tag}}
	fe := em.TIRadar()
	// Vehicle at x=-3 moving +x at 10 m/s, tag at origin: closing.
	pos := geom.Vec3{X: -3, Y: 3}
	vel := geom.Vec3{X: 10}
	out := sc.Scatterers(pos, vel, ModeDecode, fe, fc, rng)
	if len(out) != 1 {
		t.Fatalf("got %d scatterers", len(out))
	}
	if out[0].RadialVelocity >= 0 {
		t.Errorf("closing target has radial velocity %g, want negative", out[0].RadialVelocity)
	}
}

func TestTagResponsePhaseRelative(t *testing.T) {
	// The response phase must be relative to the tag center so the radar
	// model can add the center's round-trip phase itself: at broadside in
	// the far field all stacks are symmetric, so the phase contribution of
	// +d and -d stacks cancel to something stable; more importantly the
	// response at very large distance converges.
	tag := testTag(t, "1111", 8)
	a := tag.Response(geom.Vec3{Y: 500}, fc)
	b := tag.Response(geom.Vec3{Y: 500.0001}, fc)
	if d := cmplx.Abs(a - b); d > 0.05*cmplx.Abs(a) {
		t.Errorf("response unstable over 0.1 mm at 500 m: |a-b| = %g", d)
	}
}

func TestNewObjectPanicsWithoutRng(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil rng accepted")
		}
	}()
	NewObject(ClassTree, geom.Vec3{}, nil)
}
