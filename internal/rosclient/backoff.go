package rosclient

import (
	"net/http"
	"strconv"
	"time"
)

// splitmix64 advances the jitter stream — the same generator the simulator
// uses for sub-streams, so the retry schedule is a pure function of the
// configured seed and pins exactly in tests.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// jitter maps one stream output onto [0.5, 1.0): full-jitter halves thundering
// herds while keeping every delay within 2x of its deterministic envelope.
func jitter(u uint64) float64 {
	return 0.5 + 0.5*float64(u>>11)/(1<<53)
}

// backoffDelay is the attempt'th retry delay before jitter: base doubling
// per attempt, capped at max.
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// parseRetryAfter reads a Retry-After header in either RFC form — delay
// seconds or an HTTP-date — returning 0 when absent or malformed. now
// anchors the date form so tests can pin it.
func parseRetryAfter(h http.Header, now time.Time) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}
