package rosclient

// Network chaos harness: servers that misbehave at the transport and body
// layers — slow-loris trickle writes, mid-body connection drops, malformed
// and oversized JSON, stalled reads — proving the client degrades to typed
// errors with bounded memory and no leaked goroutines.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosClient builds a client tuned for fast failure so chaos tests stay
// inside -short budgets.
func chaosClient(baseURL string, retries int) *Client {
	c := New(Config{
		BaseURL:          baseURL,
		Seed:             11,
		MaxRetries:       retries,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       2 * time.Millisecond,
		AttemptTimeout:   150 * time.Millisecond,
		BreakerThreshold: 1000, // keep the breaker out of these tests' way
		MaxResponseBytes: 1 << 16,
	})
	return c
}

func TestChaosMidBodyDrop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Promise a long body, deliver a fragment, kill the connection.
		conn, buf, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		buf.WriteString("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 65536\r\n\r\n{\"resul")
		buf.Flush()
		conn.Close()
	}))
	defer ts.Close()

	c := chaosClient(ts.URL, 1)
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	var out map[string]any
	err := c.Do(context.Background(), "/v1/read", map[string]any{}, &out)
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("err = %v, want ErrTransport for a mid-body drop", err)
	}
	if got := c.Stats(); got.Attempts != 2 {
		t.Fatalf("stats = %+v, want 2 attempts (drop is retryable)", got)
	}
}

func TestChaosMalformedJSON(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{\"results\": [{\"rss_dbm\": }"))
	}))
	defer ts.Close()

	c := chaosClient(ts.URL, 1)
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	var out map[string]any
	err := c.Do(context.Background(), "/v1/read", map[string]any{}, &out)
	if !errors.Is(err, ErrBadResponse) {
		t.Fatalf("err = %v, want ErrBadResponse for undecodable 200", err)
	}
}

func TestChaosOversizedBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// 4 MiB of padding against the client's 64 KiB cap.
		w.Write([]byte(`{"pad":"`))
		chunk := strings.Repeat("x", 1<<16)
		for i := 0; i < 64; i++ {
			if _, err := fmt.Fprint(w, chunk); err != nil {
				return // client cut us off — exactly the point
			}
		}
		w.Write([]byte(`"}`))
	}))
	defer ts.Close()

	c := chaosClient(ts.URL, 1)
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var out map[string]any
	err := c.Do(context.Background(), "/v1/read", map[string]any{}, &out)
	if !errors.Is(err, ErrBadResponse) {
		t.Fatalf("err = %v, want ErrBadResponse for oversized body", err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	// The client must buffer at most MaxResponseBytes+1 per attempt, never
	// the advertised 4 MiB. Allow generous slack for runtime noise.
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 2<<20 {
		t.Fatalf("heap grew %d bytes across an oversized response; body limit not enforced", grew)
	}
}

func TestChaosStalledRead(t *testing.T) {
	// The server must be released explicitly: Go's http server does not
	// cancel a request's context while its body sits unread, so handlers
	// parked on ctx alone would wedge ts.Close.
	done := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Accept the request and never answer.
		<-done
	}))
	defer ts.Close()
	defer close(done)

	c := chaosClient(ts.URL, 1)
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	start := time.Now()
	err := c.Do(context.Background(), "/v1/read", map[string]any{}, nil)
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("err = %v, want ErrTransport for a stalled read", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled read held the caller %v; AttemptTimeout not applied", elapsed)
	}
}

func TestChaosSlowLoris(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Trickle one byte at a time, far slower than any sane server.
		fl, _ := w.(http.Flusher)
		w.Write([]byte("{"))
		if fl != nil {
			fl.Flush()
		}
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-r.Context().Done():
				return
			case <-tick.C:
				if _, err := w.Write([]byte(" ")); err != nil {
					return
				}
				if fl != nil {
					fl.Flush()
				}
			}
		}
	}))
	defer ts.Close()

	c := chaosClient(ts.URL, 0)
	err := c.Do(context.Background(), "/v1/read", map[string]any{}, nil)
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("err = %v, want ErrTransport for a slow-loris body", err)
	}
}

// TestChaosCallerContext checks that the caller's own deadline is terminal —
// the client must not retry past it or mask it as a transport failure.
func TestChaosCallerContext(t *testing.T) {
	done := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-done
	}))
	defer ts.Close()
	defer close(done)

	c := New(Config{BaseURL: ts.URL, MaxRetries: 8, AttemptTimeout: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := c.Do(ctx, "/v1/read", map[string]any{}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := c.Stats(); got.Retries != 0 {
		t.Fatalf("stats = %+v, want 0 retries after the caller's deadline", got)
	}
}

// TestChaosNoGoroutineLeak hammers every chaos mode concurrently, then checks
// the goroutine count settles back to its pre-burst baseline.
func TestChaosNoGoroutineLeak(t *testing.T) {
	drop := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, buf, err := w.(http.Hijacker).Hijack()
		if err != nil {
			return
		}
		buf.WriteString("HTTP/1.1 200 OK\r\nContent-Length: 4096\r\n\r\n{\"x")
		buf.Flush()
		conn.Close()
	}))
	done := make(chan struct{})
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-done
	}))
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("]]not json[["))
	}))

	baseline := runtime.NumGoroutine()

	var wg sync.WaitGroup
	for _, url := range []string{drop.URL, stall.URL, garbage.URL} {
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				c := chaosClient(u, 2)
				c.sleep = func(ctx context.Context, d time.Duration) error { return nil }
				var out map[string]any
				// Hedged on top, so hedge goroutines are exercised too.
				_ = c.DoHedged(context.Background(), "/v1/read", map[string]any{}, &out)
			}(url)
		}
	}
	wg.Wait()
	close(done)
	drop.Close()
	stall.Close()
	garbage.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.NumGoroutine()
			sz := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, n, buf[:sz])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
