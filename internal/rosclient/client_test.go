package rosclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ros/internal/roserr"
)

// TestBackoffScheduleGolden pins the seeded retry schedule byte-for-byte:
// the jittered delays are a pure function of the seed, so a drift here means
// the backoff math (or the SplitMix64 stream) changed.
func TestBackoffScheduleGolden(t *testing.T) {
	c := New(Config{BaseURL: "http://unused", Seed: 42,
		BaseBackoff: 10 * time.Millisecond, MaxBackoff: 2 * time.Second})
	want := []time.Duration{
		8707824,
		13432919,
		27739485,
		70215554,
		143675520,
		259143358,
	}
	for i, w := range want {
		got := c.jitteredBackoff(i)
		if got != w {
			t.Errorf("delay[%d] = %v, want %v", i, got, w)
		}
		env := backoffDelay(10*time.Millisecond, 2*time.Second, i)
		if got < env/2 || got >= env {
			t.Errorf("delay[%d] = %v outside jitter envelope [%v, %v)", i, got, env/2, env)
		}
	}
	// Same seed, same schedule.
	c2 := New(Config{BaseURL: "http://unused", Seed: 42,
		BaseBackoff: 10 * time.Millisecond, MaxBackoff: 2 * time.Second})
	for i := range want {
		if got := c2.jitteredBackoff(i); got != want[i] {
			t.Fatalf("replay delay[%d] = %v, want %v", i, got, want[i])
		}
	}
}

func TestBackoffDelayEnvelope(t *testing.T) {
	base, max := 10*time.Millisecond, 2*time.Second
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 160 * time.Millisecond, 320 * time.Millisecond,
		640 * time.Millisecond, 1280 * time.Millisecond, 2 * time.Second,
		2 * time.Second,
	}
	for i, w := range want {
		if got := backoffDelay(base, max, i); got != w {
			t.Errorf("backoffDelay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name, value string
		want        time.Duration
	}{
		{"absent", "", 0},
		{"seconds", "3", 3 * time.Second},
		{"zero-seconds", "0", 0},
		{"negative-seconds", "-5", 0},
		{"http-date", now.Add(5 * time.Second).Format(http.TimeFormat), 5 * time.Second},
		{"http-date-past", now.Add(-time.Minute).Format(http.TimeFormat), 0},
		{"garbage", "soon", 0},
	}
	for _, tc := range cases {
		h := http.Header{}
		if tc.value != "" {
			h.Set("Retry-After", tc.value)
		}
		if got := parseRetryAfter(h, now); got != tc.want {
			t.Errorf("%s: parseRetryAfter(%q) = %v, want %v", tc.name, tc.value, got, tc.want)
		}
	}
}

func TestBreakerTransitions(t *testing.T) {
	now := time.Unix(1000, 0)
	b := &breaker{threshold: 3, cooldown: time.Second}

	// Closed counts consecutive failures; the threshold'th opens it.
	if b.failure(now) || b.failure(now) {
		t.Fatal("breaker opened before threshold")
	}
	if !b.failure(now) {
		t.Fatal("threshold'th failure did not open the breaker")
	}
	if err := b.allow(now.Add(500 * time.Millisecond)); !errors.Is(err, roserr.ErrCircuitOpen) {
		t.Fatalf("open breaker allowed a call inside cooldown: %v", err)
	}

	// Cooldown elapsed: half-open, exactly one probe at a time.
	probeAt := now.Add(time.Second)
	if err := b.allow(probeAt); err != nil {
		t.Fatalf("half-open refused the probe: %v", err)
	}
	if err := b.allow(probeAt); !errors.Is(err, roserr.ErrCircuitOpen) {
		t.Fatalf("half-open let a second call race the probe: %v", err)
	}

	// Failed probe re-opens for another full cooldown.
	if !b.failure(probeAt) {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if err := b.allow(probeAt.Add(999 * time.Millisecond)); !errors.Is(err, roserr.ErrCircuitOpen) {
		t.Fatalf("re-opened breaker allowed a call inside cooldown: %v", err)
	}

	// Successful probe closes; interleaved success resets the failure count.
	if err := b.allow(probeAt.Add(time.Second)); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.success()
	if b.state != breakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.state)
	}
	b.failure(now)
	b.failure(now)
	b.success()
	if b.failure(now) {
		t.Fatal("success did not reset the consecutive-failure count")
	}
}

// TestRetryAfterHonored checks that a server 429 with Retry-After stretches
// the wait beyond the backoff schedule (and is capped by MaxRetryAfter).
func TestRetryAfterHonored(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"kind":"overload","message":"busy"}}`))
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, Seed: 7, MaxRetries: 3,
		BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond,
		MaxRetryAfter: 90 * time.Millisecond})
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	var out struct{}
	if err := c.Do(context.Background(), "/v1/read", map[string]any{}, &out); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %d times, want 1 (delays: %v)", len(slept), slept)
	}
	// Retry-After said 2s; MaxRetryAfter caps it at 90ms, still far above
	// the <=4ms backoff envelope.
	if slept[0] != 90*time.Millisecond {
		t.Fatalf("waited %v, want the 90ms MaxRetryAfter cap", slept[0])
	}
	if got := c.Stats(); got.Retries != 1 || got.Throttles != 1 {
		t.Fatalf("stats = %+v, want 1 retry / 1 throttle", got)
	}
}

// TestTerminal4xx checks the roserr taxonomy survives the HTTP round trip and
// is not retried.
func TestTerminal4xx(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":{"kind":"config","message":"bad grid"}}`))
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxRetries: 5})
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	err := c.Do(context.Background(), "/v1/read", map[string]any{}, nil)
	if !errors.Is(err, roserr.ErrConfig) {
		t.Fatalf("err = %v, want roserr.ErrConfig", err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server hit %d times, want 1 (terminal errors must not retry)", n)
	}
}

// TestBreakerFastFail drives the breaker open through a real client and
// checks calls then fail locally, without network traffic, until cooldown.
func TestBreakerFastFail(t *testing.T) {
	var hits atomic.Int64
	fail := atomic.Bool{}
	fail.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if fail.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":{"kind":"internal","message":"boom"}}`))
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, Seed: 3, MaxRetries: 2,
		BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond,
		BreakerThreshold: 3, BreakerCooldown: time.Hour})
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	now := time.Unix(5000, 0)
	c.now = func() time.Time { return now }

	// 3 attempts (1 + 2 retries) all 5xx: breaker opens at the threshold.
	if err := c.Do(context.Background(), "/v1/read", map[string]any{}, nil); !errors.Is(err, ErrTransport) {
		t.Fatalf("err = %v, want ErrTransport for a 5xx", err)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("server hit %d times, want 3", n)
	}
	if got := c.Stats(); got.Opens != 1 {
		t.Fatalf("stats = %+v, want 1 breaker open", got)
	}

	// Open breaker: the next call fails fast, zero network traffic.
	err := c.Do(context.Background(), "/v1/read", map[string]any{}, nil)
	if !errors.Is(err, roserr.ErrCircuitOpen) {
		t.Fatalf("err = %v, want roserr.ErrCircuitOpen", err)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("open breaker still sent traffic (hits=%d)", n)
	}

	// Cooldown elapses, server healed: the single half-open probe closes it.
	fail.Store(false)
	now = now.Add(2 * time.Hour)
	if err := c.Do(context.Background(), "/v1/read", map[string]any{}, nil); err != nil {
		t.Fatalf("probe after cooldown: %v", err)
	}
	if err := c.Do(context.Background(), "/v1/read", map[string]any{}, nil); err != nil {
		t.Fatalf("call after breaker closed: %v", err)
	}
}

// TestHedgedRead checks a slow primary is overtaken by the hedge and the
// caller sees the fast answer.
func TestHedgedRead(t *testing.T) {
	var hits atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// Primary stalls until the test ends.
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		w.Write([]byte(`{"n":7}`))
	}))
	defer ts.Close()
	defer close(release)

	c := New(Config{BaseURL: ts.URL, HedgeDelay: 10 * time.Millisecond, MaxRetries: 1})
	var out struct {
		N int `json:"n"`
	}
	start := time.Now()
	if err := c.DoHedged(context.Background(), "/v1/read", map[string]any{}, &out); err != nil {
		t.Fatalf("DoHedged: %v", err)
	}
	if out.N != 7 {
		t.Fatalf("out.N = %d, want 7 (hedge answer)", out.N)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedged read took %v; hedge did not overtake the stalled primary", elapsed)
	}
	if got := c.Stats(); got.Hedges != 1 {
		t.Fatalf("stats = %+v, want 1 hedge", got)
	}
}
