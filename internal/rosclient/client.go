// Package rosclient is the self-healing HTTP client of the read service:
// the retry/backoff/circuit-breaker layer every tool that talks to rosd
// should sit behind, instead of hand-rolling its own overload handling.
//
// Failure handling is layered. Transient refusals — 429 overload (tenant
// quota or queue depth) and 503 draining — are retried with seeded-jitter
// exponential backoff, honoring the server's Retry-After header in both its
// delay-seconds and HTTP-date forms. Hard failures — transport errors,
// unknown 5xx, malformed or oversized response bodies — also retry, but
// additionally count toward a per-endpoint circuit breaker: past the
// threshold of consecutive failures the breaker opens and calls fail fast
// with roserr.ErrCircuitOpen (no network traffic) until a cooldown elapses,
// then a single half-open probe decides between closing and re-opening.
// Typed 4xx errors (the roserr taxonomy rendered by the service) are
// terminal and surface as the matching sentinel, so errors.Is works across
// the HTTP boundary.
//
// DoHedged adds optional hedged requests for idempotent calls (a seeded
// read is deterministic, so duplicated execution is safe): when the primary
// attempt has not answered within HedgeDelay, a second identical request
// races it and the first success wins, bounding tail latency under a slow
// or half-dead server.
//
// Response bodies are read through a hard size limit, so a misbehaving
// server cannot balloon client memory. The retry schedule is a pure
// function of the configured seed (SplitMix64 jitter), pinned by test.
package rosclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ros/internal/obs"
	"ros/internal/roserr"
)

// Client metrics. Package-level because the obs registry panics on duplicate
// registration and tests build many clients per process.
var (
	mAttempts = obs.Default.Counter("ros_rosclient_attempts_total",
		"HTTP attempts sent (including retries and hedges).")
	mRetries = obs.Default.Counter("ros_rosclient_retries_total",
		"Attempts that were retries of a failed call.")
	mHedges = obs.Default.Counter("ros_rosclient_hedges_total",
		"Hedge requests launched after HedgeDelay without an answer.")
	mThrottledResp = obs.Default.Counter("ros_rosclient_throttled_total",
		"Backpressure responses observed (429 overload, 503 draining).")
	mBreakerOpens = obs.Default.Counter("ros_rosclient_breaker_opens_total",
		"Circuit-breaker open transitions.")
	mFastFails = obs.Default.Counter("ros_rosclient_breaker_fastfail_total",
		"Calls refused locally by an open circuit breaker.")
)

// Client-side failure sentinels (server-side kinds live in roserr).
var (
	// ErrTransport marks a network-level failure: dial refused, connection
	// dropped mid-body, attempt timeout. Retryable; counts toward the
	// circuit breaker.
	ErrTransport = errors.New("rosclient: transport failure")
	// ErrBadResponse marks a response the client refused to trust: body
	// over MaxResponseBytes, or JSON that does not decode. Retryable;
	// counts toward the circuit breaker.
	ErrBadResponse = errors.New("rosclient: malformed response")
)

// Config parameterizes a Client. The zero value of every field keeps the
// default noted on it.
type Config struct {
	// BaseURL is the service root, e.g. "http://localhost:8080" (required).
	BaseURL string
	// HTTPClient overrides the transport (default &http.Client{}).
	HTTPClient *http.Client
	// MaxRetries bounds retries after the first attempt (default 8).
	MaxRetries int
	// BaseBackoff/MaxBackoff shape the exponential schedule: delay i is
	// min(MaxBackoff, BaseBackoff<<i) scaled into [0.5, 1.0) by seeded
	// jitter. Defaults 10ms / 2s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxRetryAfter caps how long a server Retry-After is honored
	// (default 5s) so a hostile header cannot park the client.
	MaxRetryAfter time.Duration
	// AttemptTimeout bounds each attempt (default 30s); a stalled read is
	// cut and counted as a transport failure while the caller's context
	// stays live for the retry.
	AttemptTimeout time.Duration
	// Seed drives the jitter stream; equal seeds give identical retry
	// schedules (default 1).
	Seed uint64
	// BreakerThreshold is the consecutive hard failures per endpoint that
	// open its circuit (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit fails fast before the
	// half-open probe (default 1s).
	BreakerCooldown time.Duration
	// HedgeDelay, when positive, arms DoHedged: a second identical request
	// races the first one HedgeDelay after it was sent. Keep it at or
	// above the server's p95 latency.
	HedgeDelay time.Duration
	// MaxResponseBytes bounds response bodies (default 8 MiB); larger
	// bodies yield ErrBadResponse without buffering the excess.
	MaxResponseBytes int64
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 5 * time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.MaxResponseBytes <= 0 {
		c.MaxResponseBytes = 8 << 20
	}
	return c
}

// Stats is a point-in-time copy of one client's counters, for harness
// reporting (the obs metrics aggregate across clients).
type Stats struct {
	Attempts  int64 // HTTP attempts sent
	Retries   int64 // attempts that were retries
	Hedges    int64 // hedge requests launched
	Throttles int64 // 429/503 backpressure responses observed
	FastFails int64 // calls refused by an open breaker
	Opens     int64 // breaker open transitions
}

// Client is a self-healing JSON-over-HTTP client. Safe for concurrent use.
type Client struct {
	cfg  Config
	http *http.Client

	mu       sync.Mutex
	rng      uint64
	breakers map[string]*breaker

	attempts  atomic.Int64
	retries   atomic.Int64
	hedges    atomic.Int64
	throttles atomic.Int64
	fastFails atomic.Int64
	opens     atomic.Int64

	// Test seams: wall clock and context-aware sleep.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

// New builds a Client.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		cfg:      cfg,
		http:     cfg.HTTPClient,
		rng:      cfg.Seed,
		breakers: make(map[string]*breaker),
		now:      time.Now,
		sleep:    sleepCtx,
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Stats snapshots the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		Attempts:  c.attempts.Load(),
		Retries:   c.retries.Load(),
		Hedges:    c.hedges.Load(),
		Throttles: c.throttles.Load(),
		FastFails: c.fastFails.Load(),
		Opens:     c.opens.Load(),
	}
}

// Do POSTs in as JSON to path and decodes the 200 response into out (skipped
// when out is nil), retrying transient failures and failing fast behind an
// open breaker. The returned error wraps the matching roserr sentinel (or
// ErrTransport/ErrBadResponse), so callers branch with errors.Is.
func (c *Client) Do(ctx context.Context, path string, in, out any) error {
	return c.call(ctx, path, in, out, false)
}

// DoHedged is Do for idempotent requests: when HedgeDelay is configured and
// an attempt has not answered within it, a second identical request races
// the first and the first success wins. Only use it for calls that are safe
// to execute twice — seeded reads are (deterministic physics), mutations in
// general are not.
func (c *Client) DoHedged(ctx context.Context, path string, in, out any) error {
	return c.call(ctx, path, in, out, c.cfg.HedgeDelay > 0)
}

func (c *Client) call(ctx context.Context, path string, in, out any, hedged bool) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("rosclient: encode request: %w", err)
	}
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			delay := c.jitteredBackoff(attempt - 1)
			if retryAfter > 0 {
				if retryAfter > c.cfg.MaxRetryAfter {
					retryAfter = c.cfg.MaxRetryAfter
				}
				if retryAfter > delay {
					delay = retryAfter
				}
			}
			mRetries.Inc()
			c.retries.Add(1)
			if err := c.sleep(ctx, delay); err != nil {
				return fmt.Errorf("rosclient: retry wait: %w: last error: %w", err, lastErr)
			}
		}
		payload, ra, err := c.attempt(ctx, path, body, hedged)
		if err == nil {
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(payload, out); err != nil {
				// A 200 that does not decode is a malformed response;
				// classify it like one (it already escaped the breaker
				// accounting inside attempt, so count it here).
				lastErr = fmt.Errorf("%w: decoding 200 body: %v", ErrBadResponse, err)
				c.reportBreaker(path, lastErr)
				if attempt >= c.cfg.MaxRetries {
					return lastErr
				}
				retryAfter = 0
				continue
			}
			return nil
		}
		lastErr = err
		retryAfter = ra
		if !retryable(err) || attempt >= c.cfg.MaxRetries {
			return lastErr
		}
	}
}

// retryable classifies an attempt error: backpressure and hard failures
// retry, taxonomy 4xx and caller-context errors do not.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return errors.Is(err, roserr.ErrOverload) ||
		errors.Is(err, roserr.ErrDraining) ||
		errors.Is(err, roserr.ErrCircuitOpen) ||
		errors.Is(err, ErrTransport) ||
		errors.Is(err, ErrBadResponse)
}

// jitteredBackoff returns the attempt'th delay of the seeded schedule.
func (c *Client) jitteredBackoff(attempt int) time.Duration {
	c.mu.Lock()
	c.rng = splitmix64(c.rng)
	u := c.rng
	c.mu.Unlock()
	d := backoffDelay(c.cfg.BaseBackoff, c.cfg.MaxBackoff, attempt)
	return time.Duration(float64(d) * jitter(u))
}

func (c *Client) breakerFor(path string) *breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.breakers[path]
	if !ok {
		b = &breaker{threshold: c.cfg.BreakerThreshold, cooldown: c.cfg.BreakerCooldown}
		c.breakers[path] = b
	}
	return b
}

// breakerCounts reports whether an error is a hard failure the breaker
// tracks: transport and malformed-response errors, not backpressure (the
// server is alive and shedding deliberately) and not taxonomy 4xx (the
// request's own fault).
func breakerCounts(err error) bool {
	return errors.Is(err, ErrTransport) || errors.Is(err, ErrBadResponse)
}

// reportBreaker feeds one call outcome into the endpoint's breaker.
func (c *Client) reportBreaker(path string, err error) {
	b := c.breakerFor(path)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err == nil {
		b.success()
		return
	}
	if !breakerCounts(err) {
		return
	}
	if b.failure(c.now()) {
		mBreakerOpens.Inc()
		c.opens.Add(1)
		obs.Logger().Warn("rosclient: circuit opened", "path", path, "err", err)
	}
}

// onceResult is one wire attempt's outcome.
type onceResult struct {
	payload    []byte
	retryAfter time.Duration
	err        error
}

// attempt performs one logical attempt — a single request, or a hedged pair
// when hedged — behind the endpoint's circuit breaker.
func (c *Client) attempt(ctx context.Context, path string, body []byte, hedged bool) ([]byte, time.Duration, error) {
	b := c.breakerFor(path)
	c.mu.Lock()
	allowErr := b.allow(c.now())
	c.mu.Unlock()
	if allowErr != nil {
		mFastFails.Inc()
		c.fastFails.Add(1)
		return nil, 0, allowErr
	}

	var r onceResult
	if hedged {
		r = c.hedgedOnce(ctx, path, body)
	} else {
		r = c.once(ctx, path, body)
	}
	c.reportBreaker(path, r.err)
	return r.payload, r.retryAfter, r.err
}

// hedgedOnce races a primary request against a hedge launched HedgeDelay
// later; the first success wins and cancels the loser. When both fail the
// primary's error reports.
func (c *Client) hedgedOnce(ctx context.Context, path string, body []byte) onceResult {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan onceResult, 2)
	run := func() { ch <- c.once(hctx, path, body) }
	go run()
	timer := time.NewTimer(c.cfg.HedgeDelay)
	defer timer.Stop()
	pending, launched := 1, 1
	var first *onceResult
	for pending > 0 {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				return r
			}
			if first == nil {
				first = &r
			}
		case <-timer.C:
			if launched == 1 {
				launched, pending = 2, pending+1
				mHedges.Inc()
				c.hedges.Add(1)
				go run()
			}
		}
	}
	return *first
}

// once sends one request and classifies the response.
func (c *Client) once(ctx context.Context, path string, body []byte) onceResult {
	mAttempts.Inc()
	c.attempts.Add(1)
	actx := ctx
	if c.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return onceResult{err: fmt.Errorf("rosclient: build request: %w", err)}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's context died, not the attempt's; terminal.
			return onceResult{err: fmt.Errorf("rosclient: %w", ctx.Err())}
		}
		return onceResult{err: fmt.Errorf("%w: %v", ErrTransport, err)}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxResponseBytes+1))
	if err != nil {
		if ctx.Err() != nil {
			return onceResult{err: fmt.Errorf("rosclient: %w", ctx.Err())}
		}
		return onceResult{err: fmt.Errorf("%w: reading body: %v", ErrTransport, err)}
	}
	if int64(len(payload)) > c.cfg.MaxResponseBytes {
		return onceResult{err: fmt.Errorf("%w: body exceeds %d bytes", ErrBadResponse, c.cfg.MaxResponseBytes)}
	}
	if resp.StatusCode == http.StatusOK {
		return onceResult{payload: payload}
	}
	return onceResult{retryAfter: parseRetryAfter(resp.Header, c.now()), err: c.statusError(resp.StatusCode, payload)}
}

// statusError turns a non-200 response into a typed error: the service's
// error body maps back onto the roserr taxonomy when present, and the HTTP
// class decides retryability otherwise.
func (c *Client) statusError(status int, payload []byte) error {
	var body struct {
		Error *struct {
			Kind    string `json:"kind"`
			Message string `json:"message"`
		} `json:"error"`
	}
	kind, message := "", ""
	if err := json.Unmarshal(payload, &body); err == nil && body.Error != nil {
		kind, message = body.Error.Kind, body.Error.Message
	}
	if message == "" {
		message = fmt.Sprintf("http %d", status)
	}
	if sentinel := roserr.ForKind(kind); sentinel != nil {
		if errors.Is(sentinel, roserr.ErrOverload) || errors.Is(sentinel, roserr.ErrDraining) {
			mThrottledResp.Inc()
			c.throttles.Add(1)
		}
		return fmt.Errorf("rosclient: %s (http %d): %w", message, status, sentinel)
	}
	switch {
	case status == http.StatusTooManyRequests:
		mThrottledResp.Inc()
		c.throttles.Add(1)
		return fmt.Errorf("rosclient: %s: %w", message, roserr.ErrOverload)
	case status == http.StatusServiceUnavailable:
		mThrottledResp.Inc()
		c.throttles.Add(1)
		return fmt.Errorf("rosclient: %s: %w", message, roserr.ErrDraining)
	case status >= 500:
		return fmt.Errorf("%w: %s (http %d)", ErrTransport, message, status)
	}
	return fmt.Errorf("rosclient: %s (http %d)", message, status)
}
