package rosclient

import (
	"fmt"
	"time"

	"ros/internal/roserr"
)

// breaker is a per-endpoint circuit breaker. Closed it counts consecutive
// failures; at the threshold it opens and fails calls fast (typed
// roserr.ErrCircuitOpen, no network traffic) until the cooldown elapses, at
// which point it half-opens and lets exactly one probe through — single
// flight; concurrent calls keep failing fast until the probe reports. A
// successful probe closes the breaker, a failed one re-opens it for another
// cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration

	// Guarded by the owning Client's mu (breakers are only touched through
	// Client methods, which lock around every transition).
	state    breakerState
	failures int
	openedAt time.Time
	probing  bool
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// allow decides whether a call may go out now. The error, when non-nil,
// wraps roserr.ErrCircuitOpen and names the remaining cooldown.
func (b *breaker) allow(now time.Time) error {
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if wait := b.openedAt.Add(b.cooldown).Sub(now); wait > 0 {
			return fmt.Errorf("rosclient: %w: %s left of cooldown", roserr.ErrCircuitOpen, wait)
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return fmt.Errorf("rosclient: %w: probe in flight", roserr.ErrCircuitOpen)
		}
		b.probing = true
		return nil
	}
}

// success reports a completed call: any state collapses to closed.
func (b *breaker) success() {
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

// failure reports a failed call; it returns true when this failure opened
// (or re-opened) the breaker.
func (b *breaker) failure(now time.Time) bool {
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		b.failures = 0
		return true
	}
	b.failures++
	if b.state == breakerClosed && b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
		b.failures = 0
		return true
	}
	return false
}
