package beamshape

import (
	"math"
	"math/rand"
	"testing"

	"ros/internal/em"
	"ros/internal/geom"
	"ros/internal/stack"
)

const fc = em.CenterFrequency

func TestPitchesReproducePaperLayout(t *testing.T) {
	// Fig 8a: phases (152.9, 37.6, 0, 0, 0, 0, 37.6, 152.9) deg produce
	// pitches (0.867, 0.753, 0.725, 0.725, 0.725, 0.753, 0.867) lambda.
	pitches := PitchesFromPhases(PaperPhases8())
	lambda := em.Lambda79()
	want := []float64{0.867, 0.753, 0.725, 0.725, 0.725, 0.753, 0.867}
	if len(pitches) != len(want) {
		t.Fatalf("got %d pitches", len(pitches))
	}
	for i := range want {
		got := pitches[i] / lambda
		if math.Abs(got-want[i]) > 0.002 {
			t.Errorf("pitch[%d] = %g lambda, want %g", i, got, want[i])
		}
	}
}

func TestPaperShapeWidensBeam(t *testing.T) {
	// Fig 8b: the shaped 8-module stack has a ~10 deg flat-top elevation
	// beam; the uniform baseline a narrow pencil.
	shaped, err := Build(PaperPhases8())
	if err != nil {
		t.Fatal(err)
	}
	uniform := stack.NewUniform(8)
	bwShaped := geom.Deg(shaped.MeasuredBeamwidth(fc))
	bwUniform := geom.Deg(uniform.MeasuredBeamwidth(fc))
	if bwShaped < 6 || bwShaped > 16 {
		t.Errorf("shaped beamwidth = %g deg, want ~10", bwShaped)
	}
	if bwUniform > 5 {
		t.Errorf("uniform beamwidth = %g deg, want narrow pencil", bwUniform)
	}
	if bwShaped < 2*bwUniform {
		t.Errorf("shaping widened beam only %gx", bwShaped/bwUniform)
	}
}

func TestPaperShapeSymmetric(t *testing.T) {
	shaped, err := Build(PaperPhases8())
	if err != nil {
		t.Fatal(err)
	}
	for _, el := range []float64{0.02, 0.05, 0.08, 0.12} {
		up := shaped.ElevationGain(el, fc)
		dn := shaped.ElevationGain(-el, fc)
		if math.Abs(up-dn) > 1e-6*(1+up) {
			t.Errorf("shaped pattern asymmetric at %g rad: %g vs %g", el, up, dn)
		}
	}
}

func TestShapeSynthesizesFlatTop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	res, err := Shape(8, DefaultTargetWidth, rng)
	if err != nil {
		t.Fatal(err)
	}
	bw := geom.Deg(res.BeamwidthRad)
	if bw < 6 || bw > 16 {
		t.Errorf("synthesized beamwidth = %g deg, want ~10", bw)
	}
	// Ripple within +/-4 deg stays under ~4 dB.
	minG, maxG := math.Inf(1), 0.0
	for el := -4.0; el <= 4; el += 0.25 {
		g := res.Stack.ElevationGain(geom.Rad(el), fc)
		minG = math.Min(minG, g)
		maxG = math.Max(maxG, g)
	}
	if ripple := 10 * math.Log10(maxG/minG); ripple > 4 {
		t.Errorf("flat-region ripple = %g dB, want < 4", ripple)
	}
	// The flat-top level sits several dB below the uniform pencil peak
	// (energy is conserved, spread over a wider beam).
	uniform := stack.NewUniform(8)
	peakU := uniform.ElevationGain(0, fc)
	drop := 10 * math.Log10(peakU/maxG)
	if drop < 1 || drop > 12 {
		t.Errorf("flat-top level %g dB below pencil peak, want a few dB", drop)
	}
}

func TestShapeDeterministic(t *testing.T) {
	run := func() Result {
		rng := rand.New(rand.NewSource(7))
		res, err := Shape(6, DefaultTargetWidth, rng)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Score != b.Score {
		t.Errorf("same seed, different scores: %g vs %g", a.Score, b.Score)
	}
	for i := range a.Phases {
		if a.Phases[i] != b.Phases[i] {
			t.Errorf("same seed, different phases[%d]", i)
		}
	}
}

func TestShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Shape(2, DefaultTargetWidth, rng); err == nil {
		t.Error("n < 4 accepted")
	}
	if _, err := Shape(8, 0, rng); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Shape(8, DefaultTargetWidth, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build([]float64{1}); err == nil {
		t.Error("single module accepted")
	}
	if _, err := Build([]float64{-0.1, 0}); err == nil {
		t.Error("negative phase accepted")
	}
	if _, err := Build([]float64{0, 7}); err == nil {
		t.Error("phase >= 2*pi accepted")
	}
}

func TestMirror(t *testing.T) {
	got := mirror([]float64{1, 2}, 4)
	want := []float64{1, 2, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mirror even = %v", got)
		}
	}
	got = mirror([]float64{1, 2, 3}, 5)
	want = []float64{1, 2, 3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mirror odd = %v", got)
		}
	}
}

func TestShapedStackFarFieldMatchesPaper(t *testing.T) {
	// Sec 7.2: the fabricated (shaped) 32-stack is ~10.8 cm tall with a
	// far-field distance of ~6.14 m. Shaping adds TL-growth height to the
	// uniform stack.
	rng := rand.New(rand.NewSource(3))
	res, err := Shape(32, DefaultTargetWidth, rng)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Stack.Height()
	if h < 0.088 || h > 0.125 {
		t.Errorf("shaped 32-stack height = %g m, want ~0.09-0.12 (paper: 0.108)", h)
	}
	ff := res.Stack.FarFieldDistance(fc)
	if ff < 4 || ff > 9 {
		t.Errorf("shaped 32-stack far field = %g m, want ~6 (paper: 6.14)", ff)
	}
}
