// Package beamshape implements the elevation beam shaping of Sec 4.3: a
// differential-evolution search over per-module phase weights that flattens
// a PSVAA stack's pencil beam into a wide flat-top, so the tag tolerates
// radar-tag height misalignment.
//
// A phase weight phi is imprinted by adding phi/(2*pi)*lambda_g of length to
// all three of a module's transmission lines, which makes the module
// physically taller. The vertical pitch between adjacent modules therefore
// grows with their phases:
//
//	pitch(j, j+1) = 0.725*lambda + (phi_j + phi_{j+1})/2 * lambda_g/(2*pi)
//
// This rule reproduces the fabricated layout of Fig 8a exactly: phases of
// 37.6 and 152.9 degrees yield the paper's 0.753*lambda and 0.867*lambda
// pitches. Because repositioning changes the modules' geometric phases, the
// weights cannot be solved in closed form — hence the DE-GA meta-optimizer
// (the paper's [55], implemented in package optim).
package beamshape

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"ros/internal/em"
	"ros/internal/geom"
	"ros/internal/optim"
	"ros/internal/stack"
	"ros/internal/txline"
)

// DefaultTargetWidth is the paper's target flat-top elevation beamwidth
// ("a desired wide elevation beamwidth (e.g., 10 deg)").
const DefaultTargetWidth = 10.0 * math.Pi / 180

// PitchesFromPhases derives the n-1 vertical pitches of an n-module stack
// from its phase weights using the TL-growth rule above.
func PitchesFromPhases(phases []float64) []float64 {
	lg := txline.Default().GuidedWavelength(em.CenterFrequency)
	base := stack.DefaultPitch * em.Lambda79()
	out := make([]float64, len(phases)-1)
	for j := range out {
		out[j] = base + (phases[j]+phases[j+1])/2*lg/(2*math.Pi)
	}
	return out
}

// Build assembles a shaped stack from phase weights (positions derived via
// PitchesFromPhases).
func Build(phases []float64) (*stack.Stack, error) {
	if len(phases) < 2 {
		return nil, fmt.Errorf("beamshape: need at least 2 modules, got %d", len(phases))
	}
	for i, p := range phases {
		if p < 0 || p >= 2*math.Pi {
			return nil, fmt.Errorf("beamshape: phase[%d] = %g outside [0, 2*pi)", i, p)
		}
	}
	return stack.NewShaped(PitchesFromPhases(phases), phases)
}

// PaperPhases8 returns the phase weights of the fabricated 8-module example
// of Fig 8a: +/-152.9 deg on the outermost modules, +/-37.6 deg on the next,
// zero in the middle.
func PaperPhases8() []float64 {
	p0 := geom.Rad(152.9)
	p1 := geom.Rad(37.6)
	return []float64{p0, p1, 0, 0, 0, 0, p1, p0}
}

// Result reports a beam-shaping synthesis.
type Result struct {
	// Stack is the shaped stack.
	Stack *stack.Stack
	// Phases are the optimized weights (radians).
	Phases []float64
	// Score is the final objective value (lower is better).
	Score float64
	// BeamwidthRad is the measured -3 dB elevation beamwidth of the result.
	BeamwidthRad float64
}

// Shape searches, with the DE-GA, for symmetric phase weights that widen an
// n-module stack's elevation beam to targetWidth radians. The rng makes the
// search reproducible.
func Shape(n int, targetWidth float64, rng *rand.Rand) (Result, error) {
	if n < 4 {
		return Result{}, fmt.Errorf("beamshape: need at least 4 modules, got %d", n)
	}
	if targetWidth <= 0 {
		return Result{}, fmt.Errorf("beamshape: non-positive target width %g", targetWidth)
	}
	if rng == nil {
		return Result{}, fmt.Errorf("beamshape: nil rng")
	}
	half := (n + 1) / 2
	bounds := make([]optim.Bounds, half)
	for i := range bounds {
		bounds[i] = optim.Bounds{Lo: 0, Hi: 2 * math.Pi * 0.999}
	}
	obj := func(x []float64) float64 {
		return objective(mirror(x, n), targetWidth)
	}
	res, err := optim.Minimize(obj, bounds, optim.Config{
		PopSize:     12 * half,
		Generations: 250,
		F:           0.6,
		CR:          0.9,
	}, rng)
	if err != nil {
		return Result{}, err
	}
	phases := mirror(res.X, n)
	st, err := Build(phases)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Stack:        st,
		Phases:       phases,
		Score:        res.Score,
		BeamwidthRad: st.MeasuredBeamwidth(em.CenterFrequency),
	}, nil
}

var (
	shapedMu    sync.Mutex
	shapedOnce  = map[int]*sync.Once{}
	shapedCache = map[int]*stack.Stack{}
)

// Shaped returns a beam-shaped n-module stack synthesized with a fixed,
// n-derived seed, caching the result so repeated callers (the experiment
// harness sweeps 8/16/32-module tags, often from concurrent workers) pay
// the DE search exactly once per size.
func Shaped(n int) *stack.Stack {
	shapedMu.Lock()
	once, ok := shapedOnce[n]
	if !ok {
		once = new(sync.Once)
		shapedOnce[n] = once
	}
	shapedMu.Unlock()

	once.Do(func() {
		rng := rand.New(rand.NewSource(int64(1000 + n)))
		res, err := Shape(n, DefaultTargetWidth, rng)
		if err != nil {
			panic(fmt.Sprintf("beamshape: Shaped(%d): %v", n, err))
		}
		shapedMu.Lock()
		shapedCache[n] = res.Stack
		shapedMu.Unlock()
	})

	shapedMu.Lock()
	defer shapedMu.Unlock()
	return shapedCache[n]
}

// mirror expands half-space phases to a symmetric full vector (outermost
// module first).
func mirror(half []float64, n int) []float64 {
	out := make([]float64, n)
	for i := range half {
		out[i] = half[i]
		out[n-1-i] = half[i]
	}
	return out
}

// objective scores a candidate phase vector: relative ripple inside the flat
// region, rewarded flat-region level, and penalized stop-band energy.
func objective(phases []float64, targetWidth float64) float64 {
	st, err := Build(phases)
	if err != nil {
		return math.Inf(1)
	}
	n := float64(st.N())
	flat := targetWidth / 2 * 0.85
	stop := targetWidth / 2 * 1.8

	minFlat, maxFlat := math.Inf(1), 0.0
	stopSum, stopCount := 0.0, 0
	const step = 0.5 * math.Pi / 180
	for el := -3 * targetWidth; el <= 3*targetWidth; el += step {
		g := st.ElevationGain(el, em.CenterFrequency) / (n * n)
		a := math.Abs(el)
		switch {
		case a <= flat:
			if g < minFlat {
				minFlat = g
			}
			if g > maxFlat {
				maxFlat = g
			}
		case a >= stop:
			stopSum += g
			stopCount++
		}
	}
	if maxFlat == 0 {
		return math.Inf(1)
	}
	ripple := (maxFlat - minFlat) / maxFlat
	meanStop := stopSum / float64(stopCount)
	return ripple - 2*minFlat + 4*meanStop
}
