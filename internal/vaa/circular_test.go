package vaa

import (
	"math"
	"testing"

	"ros/internal/em"
	"ros/internal/geom"
)

func TestCPVAAKind(t *testing.T) {
	a := NewCPVAA(3)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Kind.String() != "CPVAA" {
		t.Errorf("kind = %q", a.Kind)
	}
}

func TestCPVAARecoversSixDB(t *testing.T) {
	// Sec 8: CP elements recover the 6 dB the linear PSVAA loses. The CP
	// array's co-handed return should sit ~6 dB above the PSVAA's
	// cross-linear return.
	cp := NewCPVAA(3)
	ps := NewPSVAA(3)
	co := cp.MonostaticRCS(0, fc, em.PolRHC, em.PolRHC)
	cross := ps.MonostaticRCS(0, fc, em.PolV, em.PolH)
	gain := em.DB(co / cross)
	if math.Abs(gain-6) > 1.5 {
		t.Errorf("CP gain over PSVAA = %g dB, want ~6", gain)
	}
}

func TestCPVAAPreservesHandedness(t *testing.T) {
	cp := NewCPVAA(3)
	s := cp.Scatter(0, 0, fc)
	co := s.Coupling(em.PolRHC, em.PolRHC)
	cross := s.Coupling(em.PolRHC, em.PolLHC)
	coP := real(co)*real(co) + imag(co)*imag(co)
	crossP := real(cross)*real(cross) + imag(cross)*imag(cross)
	if coP < 10*crossP {
		t.Errorf("co-handed %g not dominating cross-handed %g", coP, crossP)
	}
	if d := cp.HandednessDiscriminationDB(0, fc); d < 10 {
		t.Errorf("handedness discrimination = %g dB, want > 10", d)
	}
}

func TestMirrorFlipsHandedness(t *testing.T) {
	// The ULA (pure structural/specular) must flip circular handedness:
	// co-handed return far below cross-handed.
	u := NewULA(3)
	s := u.Scatter(0, 0, fc)
	if rej := em.HandednessRejectionDB(s); rej > -20 {
		t.Errorf("ULA handedness rejection = %g dB, want strongly negative", rej)
	}
	// em-level sanity.
	if rej := em.HandednessRejectionDB(em.MirrorScatter(1)); !math.IsInf(rej, -1) {
		t.Errorf("ideal mirror rejection = %g, want -Inf", rej)
	}
	if rej := em.HandednessRejectionDB(em.HandednessPreservingScatter(1)); !math.IsInf(rej, 1) {
		t.Errorf("ideal preserver rejection = %g, want +Inf", rej)
	}
	if rej := em.HandednessRejectionDB(em.ScatterMatrix{}); rej != 0 {
		t.Errorf("null scatterer rejection = %g, want 0", rej)
	}
}

func TestCPVAARetroreflective(t *testing.T) {
	// The CP array keeps the Van Atta retro property.
	cp := NewCPVAA(3)
	broad := cp.MonostaticRCS(0, fc, em.PolRHC, em.PolRHC)
	at45 := cp.MonostaticRCS(geom.Rad(45), fc, em.PolRHC, em.PolRHC)
	if em.DB(broad/at45) > 7 {
		t.Errorf("CP array rolls off %g dB at 45 deg, want retro-flat", em.DB(broad/at45))
	}
	// Bistatic peak at the incidence angle.
	in := geom.Rad(25)
	best, bestAng := math.Inf(-1), 0.0
	for deg := -70.0; deg <= 70; deg += 1 {
		r := cp.BistaticRCS(in, geom.Rad(deg), fc, em.PolRHC, em.PolRHC)
		if r > best {
			best, bestAng = r, deg
		}
	}
	if math.Abs(bestAng-25) > 5 {
		t.Errorf("CP bistatic peak at %g deg, want ~25", bestAng)
	}
}

func TestCPMaxRangeExtendsPaper(t *testing.T) {
	// Sec 8: the 6 dB recovery stretches the link budget; ranges scale by
	// 10^(6/40) ~ 1.41x.
	ti := em.TIRadar()
	base := ti.MaxRange(em.TagRCS32StackDBsm, fc)
	cp := CPMaxRange(ti, fc)
	if ratio := cp / base; math.Abs(ratio-1.413) > 0.01 {
		t.Errorf("CP range ratio = %g, want ~1.41", ratio)
	}
	com := CPMaxRange(em.CommercialRadar(), fc)
	if com < 70 || com > 78 {
		t.Errorf("CP commercial range = %g m, want ~74", com)
	}
}

func TestCircularBasisOrthonormal(t *testing.T) {
	if n := em.PolRHC.Norm(); math.Abs(n-1) > 1e-12 {
		t.Errorf("|RHC| = %g", n)
	}
	if n := em.PolLHC.Norm(); math.Abs(n-1) > 1e-12 {
		t.Errorf("|LHC| = %g", n)
	}
	d := em.PolRHC.Dot(em.PolLHC)
	if math.Hypot(real(d), imag(d)) > 1e-12 {
		t.Errorf("RHC not orthogonal to LHC: %v", d)
	}
}
