// Package vaa models the retroreflective Van Atta arrays at the heart of the
// RoS tag (Sec 4 of the paper): the classic VAA, the polarization-switching
// variant (PSVAA), and the uniform-linear-array (ULA) baseline used as the
// "ordinary reflective object" comparison in Fig 4.
//
// The scattering model is an antenna-mode + structural-mode superposition:
//
//   - antenna mode: a plane wave arriving from angle theta_in induces a
//     signal at each element with phase k*x*sin(theta_in); the signal
//     propagates through the transmission line of its pair (loss + dispersive
//     phase from package txline) and re-radiates from the partner element,
//     contributing far-field phase k*x'*sin(theta_out). Because Van Atta
//     pairs are placed symmetrically about the array center, the monostatic
//     round-trip phase is angle-independent and the array retroreflects.
//   - structural mode: each metal patch also reflects specularly
//     (polarization preserving), which is all a plain ULA does, and which
//     gives the PSVAA its co-polarized specular response in Fig 5b.
//
// Absolute levels are calibrated once so the canonical 3-pair PSVAA presents
// the paper's HFSS figure of -43 dBsm (cross-polarized, broadside, 79 GHz),
// which puts the original VAA at ~-37 dBsm (twice the re-radiating paths)
// and, after the -18 dB polarization purity of the antenna mode, its
// cross-pol leakage at ~-55 dBsm — the three anchors of Fig 5a.
package vaa

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"ros/internal/antenna"
	"ros/internal/em"
	"ros/internal/txline"
)

// Kind discriminates the array variants of Sec 4.
type Kind int

// Array variants.
const (
	// KindVAA is the classic co-polarized Van Atta array (Sec 4.1).
	KindVAA Kind = iota
	// KindPSVAA is the polarization-switching Van Atta array (Sec 4.2).
	KindPSVAA
	// KindULA is the uniform linear array of unconnected patches used as
	// the specular baseline in Fig 4.
	KindULA
	// KindCPVAA is the circularly polarized Van Atta array of the Sec 8
	// extension: handedness-preserving retroreflection at full VAA
	// amplitude (no 6 dB polarization-switching loss).
	KindCPVAA
)

// String names the variant.
func (k Kind) String() string {
	switch k {
	case KindVAA:
		return "VAA"
	case KindPSVAA:
		return "PSVAA"
	case KindULA:
		return "ULA"
	case KindCPVAA:
		return "CPVAA"
	default:
		return "unknown"
	}
}

// Array is a linear retroreflector (or the ULA baseline).
type Array struct {
	// Kind selects the variant.
	Kind Kind
	// Pairs is the number of Van Atta antenna pairs (the ULA has
	// 2*Pairs unconnected elements for a like-for-like comparison).
	Pairs int
	// Spacing is the element pitch in meters (lambda/2 at 79 GHz by
	// default).
	Spacing float64
	// Line is the interconnecting stripline model.
	Line txline.Stripline
	// TLLengths holds one transmission-line length per pair, innermost
	// first.
	TLLengths []float64
	// Element is the patch element model.
	Element antenna.Patch
	// PolPurityDB is the antenna-mode polarization purity: re-radiated
	// fields leak into the orthogonal polarization this many dB down
	// (amplitude 10^(-PolPurityDB/20)). 18 dB reproduces the VAA's
	// -55 dBsm cross-pol leakage of Fig 5a.
	PolPurityDB float64
}

// RoutingOverheadLG is the extra meander length, in guided wavelengths, that
// transmission lines beyond the third pair accrue while routing around the
// inner pairs (quadratically in the pair index past the fabricated 3-pair
// design, whose compact routing Fig 7b demonstrates). It is the physical
// mechanism behind the paper's observation that "more antenna pairs means a
// longer TL length and more propagation loss which limits the RCS
// contribution of the outer antenna pairs" (Sec 4.1).
const RoutingOverheadLG = 8.0

// ResidualSpecularDB is how far the structural (specular) scattering of a
// TL-connected array sits below that of an unloaded ULA patch, in amplitude
// dB. A matched element forwards most captured energy into its transmission
// line (where it re-emerges retro-directed), leaving only this residual to
// scatter specularly. 12 dB puts the VAA's specular leakage 5-13 dB below
// its retro lobe, matching Fig 4b.
const ResidualSpecularDB = 12.0

// InnermostTLLength is the innermost pair's line length, matching the
// fabricated design's first TL (Fig 7b: 4.106 mm).
const InnermostTLLength = 4.106e-3

// DefaultSpacing returns the lambda/2 element pitch at 79 GHz.
func DefaultSpacing() float64 { return em.Lambda79() / 2 }

// designTLLengths builds the TL length schedule for a given pair count:
// adjacent lines differ by 2 guided wavelengths (the minimum that avoids
// antenna overlap, Sec 4.1) plus quadratic routing overhead.
func designTLLengths(pairs int, line txline.Stripline) []float64 {
	lg := line.GuidedWavelength(em.CenterFrequency)
	out := make([]float64, pairs)
	for p := range out {
		out[p] = InnermostTLLength + 2*lg*float64(p)
		if p > 2 {
			d := float64(p - 2)
			out[p] += RoutingOverheadLG * d * d * lg
		}
	}
	return out
}

// NewVAA builds a classic Van Atta array with the given number of pairs.
func NewVAA(pairs int) *Array {
	return newArray(KindVAA, pairs)
}

// NewPSVAA builds a polarization-switching Van Atta array.
func NewPSVAA(pairs int) *Array {
	return newArray(KindPSVAA, pairs)
}

// NewULA builds the unconnected-patch baseline with 2*pairs elements.
func NewULA(pairs int) *Array {
	return newArray(KindULA, pairs)
}

func newArray(kind Kind, pairs int) *Array {
	if pairs < 1 {
		panic(fmt.Sprintf("vaa: array needs at least 1 pair, got %d", pairs))
	}
	line := txline.Default()
	return &Array{
		Kind:        kind,
		Pairs:       pairs,
		Spacing:     DefaultSpacing(),
		Line:        line,
		TLLengths:   designTLLengths(pairs, line),
		Element:     antenna.Default(math.Pi / 2), // vertical patches
		PolPurityDB: 18,
	}
}

// Validate reports whether the array is consistent.
func (a *Array) Validate() error {
	if a.Pairs < 1 {
		return fmt.Errorf("vaa: need at least 1 pair, got %d", a.Pairs)
	}
	if a.Spacing <= 0 {
		return fmt.Errorf("vaa: non-positive spacing %g", a.Spacing)
	}
	if a.Kind != KindULA && len(a.TLLengths) != a.Pairs {
		return fmt.Errorf("vaa: %d TL lengths for %d pairs", len(a.TLLengths), a.Pairs)
	}
	if err := a.Line.Validate(); err != nil {
		return err
	}
	return a.Element.Validate()
}

// Elements returns the total element count (2 per pair).
func (a *Array) Elements() int { return 2 * a.Pairs }

// Width returns the physical aperture width in meters.
func (a *Array) Width() float64 {
	return float64(a.Elements()-1) * a.Spacing
}

// elementPosition returns the x coordinate of element k, centered about the
// array midpoint.
func (a *Array) elementPosition(k int) float64 {
	return (float64(k) - float64(a.Elements()-1)/2) * a.Spacing
}

// elementPolarization returns the Jones vector of element k. The VAA and
// ULA are uniformly polarized; the PSVAA alternates (adjacent elements are
// rotated 90 degrees, which automatically makes every centro-symmetric pair
// cross-polarized, Fig 7a).
func (a *Array) elementPolarization(k int) em.Polarization {
	base := a.Element.Polarization()
	if a.Kind == KindPSVAA && k%2 == 1 {
		return base.Orthogonal()
	}
	return base
}

// calibration holds the absolute amplitude scales shared by every array.
type calConstants struct {
	path       float64 // per antenna-mode path amplitude (sqrt m^2 units)
	structural float64
}

var (
	calOnce sync.Once
	cal     calConstants
)

// Calibration anchors (paper values).
const (
	// psvaaRefDBsm is the HFSS RCS of a single 3-pair PSVAA (Sec 4.2).
	psvaaRefDBsm = -43.0
	// ulaRefDBsm is the broadside specular RCS of the 6-patch ULA baseline
	// (Fig 4a peak).
	ulaRefDBsm = -36.0
)

// calibrate computes the shared amplitude constants from the paper anchors.
func calibrate() calConstants {
	calOnce.Do(func() {
		ref := NewPSVAA(3)
		raw := ref.rawScatter(0, 0, em.CenterFrequency, 1, 0)
		crossAmp := cmplx.Abs(raw.Coupling(em.PolV, em.PolH))
		if crossAmp == 0 {
			panic("vaa: reference PSVAA has zero cross-pol response")
		}
		cal.path = math.Pow(10, psvaaRefDBsm/20) / crossAmp

		ula := NewULA(3)
		rawU := ula.rawScatter(0, 0, em.CenterFrequency, 0, 1)
		coAmp := cmplx.Abs(rawU.Coupling(em.PolV, em.PolV))
		if coAmp == 0 {
			panic("vaa: reference ULA has zero co-pol response")
		}
		cal.structural = math.Pow(10, ulaRefDBsm/20) / coAmp
	})
	return cal
}

// Scatter returns the full Jones scattering matrix of the array for a wave
// arriving from thetaIn and observed at thetaOut (radians off broadside) at
// frequency f. Entries are in sqrt(m^2): the RCS toward a receive
// polarization is |<rx, S tx>|^2 in m^2.
func (a *Array) Scatter(thetaIn, thetaOut, f float64) em.ScatterMatrix {
	c := calibrate()
	return a.rawScatter(thetaIn, thetaOut, f, c.path, c.structural)
}

// rawScatter evaluates the scattering model with explicit calibration
// constants (used during calibration itself with unit constants).
func (a *Array) rawScatter(thetaIn, thetaOut, f, pathCal, structCal float64) em.ScatterMatrix {
	var s em.ScatterMatrix
	k := 2 * math.Pi * f / em.C
	patIn := a.Element.Pattern(thetaIn)
	patOut := a.Element.Pattern(thetaOut)
	eff := a.Element.MatchEfficiency(f)
	leak := math.Pow(10, -a.PolPurityDB/20)

	// Antenna mode: only for connected arrays.
	if a.Kind != KindULA && pathCal != 0 {
		base := pathCal * patIn * patOut * eff
		n := a.Elements()
		for p := 0; p < a.Pairs; p++ {
			r := a.Pairs - 1 - p // inner element of pair p on the left half
			t := n - 1 - r       // its partner
			tl := a.Line.Through(a.TLLengths[p], f)
			if a.Kind == KindCPVAA {
				// Handedness-preserving CP coupling, both directions,
				// shared between the two linear channels.
				g1 := pathGain(a, r, t, k, thetaIn, thetaOut, base) * tl
				g2 := pathGain(a, t, r, k, thetaIn, thetaOut, base) * tl
				cpAntennaJones(&s, g1+g2)
				continue
			}
			addPath(&s, a, r, t, k, thetaIn, thetaOut, base, tl, leak)
			addPath(&s, a, t, r, k, thetaIn, thetaOut, base, tl, leak)
		}
	}

	// Structural (specular) mode: every metal patch, polarization
	// preserving. Connected arrays forward most captured energy into their
	// TLs, so only a residual scatters specularly; the residual is in
	// quadrature with the antenna mode (distinct phase centers).
	if structCal != 0 {
		base := structCal * patIn * patOut
		phase0 := complex(1, 0)
		if a.Kind != KindULA {
			base *= math.Pow(10, -ResidualSpecularDB/20)
			phase0 = complex(0, 1)
		}
		for e := 0; e < a.Elements(); e++ {
			x := a.elementPosition(e)
			ph := k * x * (math.Sin(thetaIn) + math.Sin(thetaOut))
			g := phase0 * complex(base*math.Cos(ph), base*math.Sin(ph))
			// Mirror-like: specular metal flips circular handedness
			// (em.MirrorScatter); linear magnitudes are unaffected.
			s.HH += g
			s.VV -= g
		}
	}
	return s
}

// pathGain returns the geometric path factor of one antenna-mode path
// (receive at element r, re-radiate at element t), excluding the TL.
func pathGain(a *Array, r, t int, k, thetaIn, thetaOut float64, base float64) complex128 {
	xr := a.elementPosition(r)
	xt := a.elementPosition(t)
	ph := k * (xr*math.Sin(thetaIn) + xt*math.Sin(thetaOut))
	return complex(base*math.Cos(ph), base*math.Sin(ph))
}

// addPath accumulates one antenna-mode path (receive at element r, re-radiate
// at element t) into the scattering matrix.
func addPath(s *em.ScatterMatrix, a *Array, r, t int, k, thetaIn, thetaOut float64, base float64, tl complex128, leak float64) {
	g := pathGain(a, r, t, k, thetaIn, thetaOut, base) * tl

	pr := a.elementPolarization(r)
	pt := a.elementPolarization(t)
	// Radiated polarization with finite purity: the orthogonal component
	// leaks at -PolPurityDB.
	ptLeak := pt.Orthogonal()

	// S += g * (pt + leak*ptOrth) (x) pr^dagger.
	addOuter(s, pt, pr, g)
	addOuter(s, ptLeak, pr, g*complex(leak, 0))
}

// addOuter accumulates g * |rad><rec| into s.
func addOuter(s *em.ScatterMatrix, rad, rec em.Polarization, g complex128) {
	s.HH += g * rad.H * cmplx.Conj(rec.H)
	s.HV += g * rad.H * cmplx.Conj(rec.V)
	s.VH += g * rad.V * cmplx.Conj(rec.H)
	s.VV += g * rad.V * cmplx.Conj(rec.V)
}

// MonostaticRCS returns the monostatic radar cross section in m^2 at angle
// theta and frequency f for the given transmit and receive polarizations.
func (a *Array) MonostaticRCS(theta, f float64, tx, rx em.Polarization) float64 {
	c := a.Scatter(theta, theta, f).Coupling(tx.Unit(), rx.Unit())
	return real(c)*real(c) + imag(c)*imag(c)
}

// BistaticRCS returns the bistatic RCS in m^2 for illumination from thetaIn
// observed at thetaOut.
func (a *Array) BistaticRCS(thetaIn, thetaOut, f float64, tx, rx em.Polarization) float64 {
	c := a.Scatter(thetaIn, thetaOut, f).Coupling(tx.Unit(), rx.Unit())
	return real(c)*real(c) + imag(c)*imag(c)
}

// MonostaticRCSdB is MonostaticRCS in dBsm.
func (a *Array) MonostaticRCSdB(theta, f float64, tx, rx em.Polarization) float64 {
	return em.DBsm(a.MonostaticRCS(theta, f, tx, rx))
}

// BandAveragedRCS returns the monostatic RCS averaged (in linear power) over
// [fLo, fHi] with the given number of frequency samples.
func (a *Array) BandAveragedRCS(theta, fLo, fHi float64, samples int, tx, rx em.Polarization) float64 {
	if samples < 1 {
		panic(fmt.Sprintf("vaa: BandAveragedRCS with %d samples", samples))
	}
	if samples == 1 {
		return a.MonostaticRCS(theta, (fLo+fHi)/2, tx, rx)
	}
	sum := 0.0
	for i := 0; i < samples; i++ {
		f := fLo + (fHi-fLo)*float64(i)/float64(samples-1)
		sum += a.MonostaticRCS(theta, f, tx, rx)
	}
	return sum / float64(samples)
}
