package vaa

import (
	"math"
	"testing"

	"ros/internal/em"
	"ros/internal/geom"
)

const fc = em.CenterFrequency

func TestConstructorsValidate(t *testing.T) {
	for _, a := range []*Array{NewVAA(3), NewPSVAA(3), NewULA(3)} {
		if err := a.Validate(); err != nil {
			t.Errorf("%v: %v", a.Kind, err)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindVAA.String() != "VAA" || KindPSVAA.String() != "PSVAA" || KindULA.String() != "ULA" || Kind(9).String() != "unknown" {
		t.Error("Kind names wrong")
	}
}

func TestNewPanicsOnZeroPairs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewVAA(0) did not panic")
		}
	}()
	NewVAA(0)
}

func TestGeometry(t *testing.T) {
	a := NewPSVAA(3)
	if a.Elements() != 6 {
		t.Errorf("Elements = %d, want 6", a.Elements())
	}
	// Element positions are symmetric about the center.
	for k := 0; k < a.Elements(); k++ {
		if math.Abs(a.elementPosition(k)+a.elementPosition(a.Elements()-1-k)) > 1e-15 {
			t.Errorf("positions not centro-symmetric at %d", k)
		}
	}
	if w := a.Width(); math.Abs(w-5*a.Spacing) > 1e-15 {
		t.Errorf("Width = %g, want 5 spacings", w)
	}
	// The paper says a PSVAA is 3*lambda wide (Sec 5: "a PSVAA is 3A wide").
	if w := a.Width() / em.Lambda79(); math.Abs(w-2.5) > 0.01 {
		t.Errorf("aperture = %g lambda; with the patch footprint the module is ~3 lambda", w)
	}
}

func TestPSVAAPairsAreCrossPolarized(t *testing.T) {
	a := NewPSVAA(3)
	n := a.Elements()
	for k := 0; k < a.Pairs; k++ {
		p1 := a.elementPolarization(k)
		p2 := a.elementPolarization(n - 1 - k)
		if d := p1.Dot(p2); math.Abs(real(d)) > 1e-12 || math.Abs(imag(d)) > 1e-12 {
			t.Errorf("pair (%d, %d) not cross-polarized", k, n-1-k)
		}
	}
	// The VAA is uniformly polarized.
	v := NewVAA(3)
	for k := 1; k < v.Elements(); k++ {
		d := v.elementPolarization(0).Dot(v.elementPolarization(k))
		if math.Abs(real(d)-1) > 1e-12 {
			t.Errorf("VAA element %d polarization differs", k)
		}
	}
}

func TestPSVAACalibrationAnchor(t *testing.T) {
	// Sec 4.2: "The PSVAA achieves an RCS of around -43 dBsm for the
	// orthogonally polarized return signal."
	a := NewPSVAA(3)
	got := a.MonostaticRCSdB(0, fc, em.PolV, em.PolH)
	if math.Abs(got-(-43)) > 0.5 {
		t.Errorf("PSVAA cross-pol broadside RCS = %g dBsm, want -43", got)
	}
}

func TestVAACoPolSixDBAbovePSVAA(t *testing.T) {
	// Sec 4.2: the PSVAA loses 6 dB because only half the elements
	// re-radiate; the original VAA's co-pol retro RCS is ~-37 dBsm.
	v := NewVAA(3)
	p := NewPSVAA(3)
	vco := v.MonostaticRCSdB(0, fc, em.PolV, em.PolV)
	pcross := p.MonostaticRCSdB(0, fc, em.PolV, em.PolH)
	diff := vco - pcross
	// The VAA's co-pol also contains the structural return, allow margin.
	if diff < 4.5 || diff > 8.5 {
		t.Errorf("VAA co-pol - PSVAA cross-pol = %g dB, want ~6", diff)
	}
}

func TestFig5aVAALeakage12dBBelowPSVAA(t *testing.T) {
	// Fig 5a: cross-polarized Tx/Rx sees the PSVAA at -43 dBsm and the
	// original VAA only via leakage at ~-55 dBsm (12 dB difference).
	v := NewVAA(3)
	p := NewPSVAA(3)
	vx := v.MonostaticRCSdB(0, fc, em.PolV, em.PolH)
	px := p.MonostaticRCSdB(0, fc, em.PolV, em.PolH)
	if math.Abs(px-vx-12) > 2.5 {
		t.Errorf("PSVAA - VAA cross-pol = %g dB, want ~12 (PSVAA %g, VAA %g)", px-vx, px, vx)
	}
}

func TestFig4aVAAFlatULASpecular(t *testing.T) {
	// Fig 4a: monostatic RCS across azimuth. The VAA is retroreflective:
	// flat within ~120 deg. The ULA is specular: strong at broadside only.
	v := NewVAA(3)
	u := NewULA(3)
	broadV := v.MonostaticRCSdB(0, fc, em.PolV, em.PolV)
	broadU := u.MonostaticRCSdB(0, fc, em.PolV, em.PolV)
	at45V := v.MonostaticRCSdB(geom.Rad(45), fc, em.PolV, em.PolV)
	at45U := u.MonostaticRCSdB(geom.Rad(45), fc, em.PolV, em.PolV)
	// VAA stays within ~6 dB of broadside at 45 deg.
	if broadV-at45V > 7 {
		t.Errorf("VAA rolls off %g dB at 45 deg, want < 7", broadV-at45V)
	}
	// ULA collapses by much more (specular).
	if broadU-at45U < 15 {
		t.Errorf("ULA rolls off only %g dB at 45 deg, want > 15", broadU-at45U)
	}
	// At broadside the two are within a few dB of each other (Fig 4a).
	if math.Abs(broadU-broadV) > 6 {
		t.Errorf("broadside ULA %g vs VAA %g dBsm differ too much", broadU, broadV)
	}
}

func TestFig4aFoV120(t *testing.T) {
	// The VAA's RCS at +/-60 deg stays within ~8 dB of broadside,
	// and collapses beyond (element pattern limit).
	v := NewVAA(3)
	broad := v.MonostaticRCSdB(0, fc, em.PolV, em.PolV)
	at60 := v.MonostaticRCSdB(geom.Rad(60), fc, em.PolV, em.PolV)
	at85 := v.MonostaticRCSdB(geom.Rad(85), fc, em.PolV, em.PolV)
	if broad-at60 > 8 {
		t.Errorf("VAA at 60 deg is %g dB below broadside, want < 8", broad-at60)
	}
	if broad-at85 < 15 {
		t.Errorf("VAA at 85 deg only %g dB below broadside, want > 15", broad-at85)
	}
}

func TestFig4bRetroVsSpecular(t *testing.T) {
	// Fig 4b: illuminate at 30 deg; the VAA re-radiates back to 30 deg,
	// the ULA to -30 deg, and VAA leakage elsewhere is >= ~5 dB down.
	v := NewVAA(3)
	u := NewULA(3)
	in := geom.Rad(30)
	retro := v.BistaticRCS(in, in, fc, em.PolV, em.PolV)
	mirrorV := v.BistaticRCS(in, -in, fc, em.PolV, em.PolV)
	if em.DB(retro/mirrorV) < 5 {
		t.Errorf("VAA retro only %g dB above its mirror leakage", em.DB(retro/mirrorV))
	}
	retroU := u.BistaticRCS(in, in, fc, em.PolV, em.PolV)
	mirrorU := u.BistaticRCS(in, -in, fc, em.PolV, em.PolV)
	if em.DB(mirrorU/retroU) < 5 {
		t.Errorf("ULA specular only %g dB above its retro direction", em.DB(mirrorU/retroU))
	}
	// The bistatic peak of the VAA is at the incidence angle: scan.
	best, bestAng := math.Inf(-1), 0.0
	for deg := -80.0; deg <= 80; deg += 1 {
		r := v.BistaticRCS(in, geom.Rad(deg), fc, em.PolV, em.PolV)
		if r > best {
			best, bestAng = r, deg
		}
	}
	if math.Abs(bestAng-30) > 5 {
		t.Errorf("VAA bistatic peak at %g deg, want ~30", bestAng)
	}
}

func TestMonostaticRetroFlatness(t *testing.T) {
	// The antenna-mode monostatic response of a Van Atta array must be
	// angle-independent up to the element pattern: dividing the RCS by the
	// pattern^4 should be flat across the FoV.
	v := NewVAA(3)
	ref := v.MonostaticRCS(0, fc, em.PolV, em.PolV)
	for deg := -55.0; deg <= 55; deg += 5 {
		th := geom.Rad(deg)
		pat := v.Element.Pattern(th)
		norm := v.MonostaticRCS(th, fc, em.PolV, em.PolV) / math.Pow(pat, 4)
		// Structural mode adds ripple away from broadside; allow 3 dB.
		if math.Abs(em.DB(norm/ref)) > 3 {
			t.Errorf("pattern-normalized RCS at %g deg off by %g dB", deg, em.DB(norm/ref))
		}
	}
}

func TestFig6PSVAAFlatAcrossBand(t *testing.T) {
	// Fig 6a: the PSVAA cross-pol RCS varies by < 4 dB across 76-81 GHz.
	p := NewPSVAA(3)
	lo, hi := math.Inf(1), math.Inf(-1)
	for f := 76e9; f <= 81e9; f += 0.2e9 {
		r := p.MonostaticRCSdB(0, f, em.PolV, em.PolH)
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	if hi-lo > 4 {
		t.Errorf("PSVAA cross-pol band variation = %g dB, want < 4", hi-lo)
	}
}

func TestFig5bPSVAACoPolSpecularOnly(t *testing.T) {
	// Fig 5b: with matched Tx/Rx polarization the PSVAA behaves as a
	// specular reflector: strong at broadside, collapsing off-normal, and
	// with no retro pedestal.
	p := NewPSVAA(3)
	broad := p.MonostaticRCSdB(0, fc, em.PolV, em.PolV)
	at45 := p.MonostaticRCSdB(geom.Rad(45), fc, em.PolV, em.PolV)
	if broad-at45 < 12 {
		t.Errorf("PSVAA co-pol rolls off only %g dB at 45 deg; expected specular collapse", broad-at45)
	}
}

func TestFig3PerPairRCSOptimum(t *testing.T) {
	// Fig 3: band-averaged RCS contribution per antenna pair is maximized
	// at 3 pairs and does not grow meaningfully beyond.
	perPair := make([]float64, 0, 6)
	for n := 1; n <= 6; n++ {
		a := NewVAA(n)
		avg := a.BandAveragedRCS(0, 76e9, 81e9, 26, em.PolV, em.PolV)
		perPair = append(perPair, avg/float64(n))
	}
	best := 0
	for i, v := range perPair {
		if v > perPair[best] {
			best = i
		}
	}
	if best+1 != 3 {
		t.Errorf("per-pair RCS maximized at %d pairs, want 3 (series: %v)", best+1, perPair)
	}
	// Total RCS beyond 3 pairs grows by < 2 dB per extra pair pair-over-pair.
	total3 := perPair[2] * 3
	total6 := perPair[5] * 6
	if gain := em.DB(total6 / total3); gain > 3 {
		t.Errorf("6-pair total RCS is %g dB above 3-pair; paper reports marginal growth", gain)
	}
}

func TestBandAveragedRCSEdges(t *testing.T) {
	a := NewVAA(2)
	single := a.BandAveragedRCS(0, fc, fc, 1, em.PolV, em.PolV)
	direct := a.MonostaticRCS(0, fc, em.PolV, em.PolV)
	if math.Abs(single-direct) > 1e-15 {
		t.Errorf("single-sample band average %g != direct %g", single, direct)
	}
	defer func() {
		if recover() == nil {
			t.Error("BandAveragedRCS with 0 samples did not panic")
		}
	}()
	a.BandAveragedRCS(0, 76e9, 81e9, 0, em.PolV, em.PolV)
}

func TestReciprocity(t *testing.T) {
	// Swapping illumination and observation angles must leave the coupling
	// magnitude unchanged (reciprocity of the passive structure).
	v := NewVAA(3)
	in, out := geom.Rad(20), geom.Rad(-35)
	fwd := v.BistaticRCS(in, out, fc, em.PolV, em.PolV)
	rev := v.BistaticRCS(out, in, fc, em.PolV, em.PolV)
	if math.Abs(em.DB(fwd/rev)) > 1e-9 {
		t.Errorf("reciprocity violated: %g vs %g", fwd, rev)
	}
}

func TestValidateRejectsBroken(t *testing.T) {
	a := NewVAA(3)
	a.Pairs = 0
	if a.Validate() == nil {
		t.Error("zero pairs accepted")
	}
	a = NewVAA(3)
	a.Spacing = 0
	if a.Validate() == nil {
		t.Error("zero spacing accepted")
	}
	a = NewVAA(3)
	a.TLLengths = a.TLLengths[:2]
	if a.Validate() == nil {
		t.Error("TL length mismatch accepted")
	}
}

func TestBackHemisphereDark(t *testing.T) {
	v := NewVAA(3)
	if r := v.MonostaticRCS(math.Pi, fc, em.PolV, em.PolV); r != 0 {
		t.Errorf("back hemisphere RCS = %g, want 0", r)
	}
}
