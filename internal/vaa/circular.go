package vaa

import (
	"math"

	"ros/internal/em"
)

// Circular-polarization extension (Sec 8): a PSVAA built from circularly
// polarized elements. Ordinary reflectors flip circular handedness
// (em.MirrorScatter), but a CP Van Atta pair — receive on one element,
// re-radiate from its partner — preserves it, so a radar with co-handed
// Tx/Rx separates tag from clutter without sacrificing half the elements:
// the 6 dB PSVAA loss is recovered.

// NewCPVAA builds a circularly polarized Van Atta array with the given pair
// count. Its antenna mode preserves handedness at the full (both-direction)
// VAA amplitude.
func NewCPVAA(pairs int) *Array {
	a := newArray(KindCPVAA, pairs)
	return a
}

// cpAntennaJones accumulates one CP antenna-mode path: handedness-preserving
// identity coupling (see em.HandednessPreservingScatter) scaled by g.
func cpAntennaJones(s *em.ScatterMatrix, g complex128) {
	s.HH += g
	s.VV += g
}

// CPRangeGainDB is the link-budget improvement of the CP extension over the
// linear PSVAA: the recovered 6 dB of RCS (Sec 4.2: halving the re-radiating
// elements costs 20*log10(0.5)).
const CPRangeGainDB = 6.0

// CPMaxRange evaluates the Sec 8 claim: the maximum reading range of a
// front end against the 32-module tag once the 6 dB PSVAA loss is recovered
// by CP elements.
func CPMaxRange(fe em.RadarFrontEnd, frequency float64) float64 {
	return fe.MaxRange(em.TagRCS32StackDBsm+CPRangeGainDB, frequency)
}

// HandednessDiscriminationDB returns how strongly a co-handed CP radar
// separates this array's antenna-mode return from a mirror-like clutter
// return of equal magnitude, in dB: the array's co-handed coupling over the
// clutter's. Only meaningful for KindCPVAA.
func (a *Array) HandednessDiscriminationDB(theta, f float64) float64 {
	s := a.Scatter(theta, theta, f)
	co := s.Coupling(em.PolRHC, em.PolRHC)
	coP := real(co)*real(co) + imag(co)*imag(co)
	if coP == 0 {
		return math.Inf(-1)
	}
	// A mirror of the same total amplitude returns everything in the
	// opposite handedness; its co-handed leakage is zero, so compare the
	// array's co-handed power against its own cross-handed residue.
	cross := s.Coupling(em.PolRHC, em.PolLHC)
	crossP := real(cross)*real(cross) + imag(cross)*imag(cross)
	if crossP == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(coP/crossP)
}
