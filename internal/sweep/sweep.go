// Package sweep runs independent simulation points concurrently: the
// evaluation figures are parameter sweeps over drive-by runs that share
// nothing, so a small worker pool cuts the wall-clock of cmd/rosbench and
// the benchmark suite by the core count.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// Run evaluates fn for every index 0..n-1 on a worker pool and returns the
// results in order. A worker count of 0 uses GOMAXPROCS. The first error
// cancels nothing (remaining points still run) but is returned.
func Run[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("sweep: negative point count %d", n)
	}
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil point function")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return out, nil
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Map evaluates fn over the inputs concurrently, preserving order.
func Map[In, Out any](inputs []In, workers int, fn func(In) (Out, error)) ([]Out, error) {
	return Run(len(inputs), workers, func(i int) (Out, error) {
		return fn(inputs[i])
	})
}
