// Package sweep runs independent simulation points concurrently: the
// evaluation figures are parameter sweeps over drive-by runs that share
// nothing, so a small worker pool cuts the wall-clock of cmd/rosbench and
// the benchmark suite by the core count. The same pool drives the per-frame
// radar synthesis loop of package detect, whose determinism rests on the
// per-point seed streams of SubSeed.
package sweep

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"ros/internal/obs"
)

// Pool metrics: points evaluated and points that failed, on the Default
// registry (incremented per batch, not per point).
var (
	mPoints = obs.Default.Counter("ros_sweep_points_total",
		"work items evaluated on the sweep pool")
	mPointErrors = obs.Default.Counter("ros_sweep_point_errors_total",
		"work items that returned an error or panicked")
)

// Run evaluates fn for every index 0..n-1 on a worker pool and returns the
// results in order. A worker count of 0 uses GOMAXPROCS. An error cancels
// nothing (remaining points still run); every failed point is logged with
// its index and the failures are returned joined (errors.Is still matches
// each cause), so no point error is silently dropped. A panic in fn is
// recovered and reported as an error tagged with the point index, so one
// bad point cannot take down the whole process from an anonymous goroutine.
func Run[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("sweep: negative point count %d", n)
	}
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil point function")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return out, nil
	}

	point := func(i int) (result T, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("sweep: point %d panicked: %v", i, r)
			}
		}()
		return fn(i)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = point(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	mPoints.Add(int64(n))
	var failed []error
	for i, err := range errs {
		if err != nil {
			obs.Logger().Error("sweep: point failed", "point", i, "of", n, "err", err)
			failed = append(failed, fmt.Errorf("point %d: %w", i, err))
		}
	}
	if len(failed) > 0 {
		mPointErrors.Add(int64(len(failed)))
		return out, errors.Join(failed...)
	}
	return out, nil
}

// Map evaluates fn over the inputs concurrently, preserving order.
func Map[In, Out any](inputs []In, workers int, fn func(In) (Out, error)) ([]Out, error) {
	return Run(len(inputs), workers, func(i int) (Out, error) {
		return fn(inputs[i])
	})
}

// SubSeed derives a deterministic per-point RNG seed from a base seed and a
// point index by mixing both through a SplitMix64 finalizer. Work items that
// each seed their own rand.Rand with SubSeed(seed, i) produce results that
// depend only on (seed, i) — never on worker count or scheduling — which is
// what makes the parallel frame loop of package detect byte-reproducible at
// any parallelism.
func SubSeed(seed int64, index int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(index)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// splitmix is a SplitMix64 rand.Source64. The stdlib's default source seeds
// a 607-word feedback table on every NewSource — measurably expensive when
// every frame of a pass opens its own stream — while SplitMix64 seeds in
// one word and passes the usual statistical batteries, which is plenty for
// thermal-noise draws.
type splitmix struct{ state uint64 }

func (s *splitmix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *splitmix) Seed(seed int64) { s.state = uint64(seed) }

// NewRand returns the deterministic RNG stream for one work item: a
// rand.Rand over a SplitMix64 source seeded with SubSeed(seed, index).
func NewRand(seed int64, index int) *rand.Rand {
	return rand.New(&splitmix{state: uint64(SubSeed(seed, index))})
}
