// Package sweep runs independent simulation points concurrently: the
// evaluation figures are parameter sweeps over drive-by runs that share
// nothing, so a small worker pool cuts the wall-clock of cmd/rosbench and
// the benchmark suite by the core count. The same pool drives the per-frame
// radar synthesis loop of package detect, whose determinism rests on the
// per-point seed streams of SubSeed.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"

	"ros/internal/obs"
	"ros/internal/roserr"
)

// Pool metrics: points evaluated, points that failed, and recovered worker
// panics, on the Default registry (incremented per batch, not per point).
var (
	mPoints = obs.Default.Counter("ros_sweep_points_total",
		"work items evaluated on the sweep pool")
	mPointErrors = obs.Default.Counter("ros_sweep_point_errors_total",
		"work items that returned an error or panicked")
	mPanics = obs.Default.Counter("ros_sweep_panics_total",
		"worker panics recovered on the sweep pool")
	mCancelled = obs.Default.Counter("ros_sweep_cancelled_total",
		"sweep batches cut short by context cancellation")
	mBatches = obs.Default.CounterVec("ros_sweep_batches_total",
		"sweep batches run, by outcome", "outcome")
)

// PanicError is a recovered worker panic, tagged with the point index and
// carrying the stack trace captured at recovery time. It matches both
// roserr.ErrWorkerPanic and — when the panic value was itself an error —
// that underlying error via errors.Is/As.
type PanicError struct {
	// Index is the work-item index whose fn panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: point %d panicked: %v", e.Index, e.Value)
}

// Unwrap exposes roserr.ErrWorkerPanic plus, when the panic value was an
// error, the value itself (so an injected typed panic stays matchable).
func (e *PanicError) Unwrap() []error {
	if err, ok := e.Value.(error); ok {
		return []error{roserr.ErrWorkerPanic, err}
	}
	return []error{roserr.ErrWorkerPanic}
}

// PointError tags a failed point with its index, so callers that tolerate
// partial batches (the degradation path of package detect) can walk the
// joined error and map failures back to work items.
type PointError struct {
	// Index is the failed work-item index.
	Index int
	// Err is the point's error (a *PanicError for recovered panics).
	Err error
}

func (e *PointError) Error() string { return fmt.Sprintf("point %d: %v", e.Index, e.Err) }

// Unwrap returns the underlying point error.
func (e *PointError) Unwrap() error { return e.Err }

// PointErrors walks an error returned by Run/RunCtx and collects every
// *PointError in it (nil and non-sweep errors yield nil).
func PointErrors(err error) []*PointError {
	var out []*PointError
	var walk func(error)
	walk = func(err error) {
		if err == nil {
			return
		}
		if pe, ok := err.(*PointError); ok {
			out = append(out, pe)
			return
		}
		switch u := err.(type) {
		case interface{ Unwrap() []error }:
			for _, e := range u.Unwrap() {
				walk(e)
			}
		case interface{ Unwrap() error }:
			walk(u.Unwrap())
		}
	}
	walk(err)
	return out
}

// Run evaluates fn for every index 0..n-1 on a worker pool and returns the
// results in order; see RunCtx for the error contract. Run never cancels:
// an error cancels nothing (remaining points still run).
func Run[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out, _, err := RunCtx(context.Background(), n, workers, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
	return out, err
}

// RunCtx evaluates fn for every index 0..n-1 on a worker pool, returning the
// results in order plus a done mask marking which points completed. A worker
// count of 0 uses GOMAXPROCS.
//
// Cancellation is cooperative: when ctx is cancelled, no new points are
// dispatched, in-flight points finish (fn may also watch ctx to return
// early), and RunCtx returns the completed prefix with an error wrapping
// both roserr.ErrReadCancelled and the context cause — so
// errors.Is(err, context.DeadlineExceeded) identifies an expired deadline.
// Completed points are exactly as they would have been in a full run, so
// deterministic workloads stay deterministic under partial completion.
//
// A point error cancels nothing: every failed point is logged with its index
// and the failures are returned joined as *PointError values (errors.Is
// still matches each cause, PointErrors recovers the indices). A panic in fn
// is recovered into a *PanicError carrying the stack trace, so one bad point
// cannot take down the whole process from an anonymous goroutine.
func RunCtx[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) (results []T, done []bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n < 0 {
		return nil, nil, fmt.Errorf("sweep: %w: negative point count %d", roserr.ErrConfig, n)
	}
	if fn == nil {
		return nil, nil, fmt.Errorf("sweep: %w: nil point function", roserr.ErrConfig)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	done = make([]bool, n)
	if n == 0 {
		return out, done, nil
	}

	point := func(i int) (result T, err error) {
		defer func() {
			if r := recover(); r != nil {
				mPanics.Inc()
				err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
				obs.Logger().Error("sweep: worker panic recovered",
					"point", i, "of", n, "panic", r,
					"stack", string(err.(*PanicError).Stack))
			}
		}()
		return fn(ctx, i)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// A point dequeued after cancellation is skipped, not run:
				// the caller sees it as not-done rather than paying for it.
				if ctx.Err() != nil {
					continue
				}
				out[i], errs[i] = point(i)
				done[i] = true
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	completed := 0
	for _, d := range done {
		if d {
			completed++
		}
	}
	mPoints.Add(int64(completed))

	var failed []error
	for i, perr := range errs {
		if perr != nil {
			obs.Logger().Error("sweep: point failed", "point", i, "of", n, "err", perr)
			failed = append(failed, &PointError{Index: i, Err: perr})
		}
	}
	if len(failed) > 0 {
		mPointErrors.Add(int64(len(failed)))
	}
	if cause := context.Cause(ctx); cause != nil {
		mCancelled.Inc()
		cancelErr := fmt.Errorf("sweep: cancelled after %d/%d points: %w: %w",
			completed, n, roserr.ErrReadCancelled, cause)
		failed = append(failed, cancelErr)
		mBatches.With("cancelled").Inc()
	} else if len(failed) > 0 {
		mBatches.With("errors").Inc()
	} else {
		mBatches.With("ok").Inc()
	}
	if len(failed) > 0 {
		return out, done, errors.Join(failed...)
	}
	return out, done, nil
}

// Map evaluates fn over the inputs concurrently, preserving order.
func Map[In, Out any](inputs []In, workers int, fn func(In) (Out, error)) ([]Out, error) {
	return Run(len(inputs), workers, func(i int) (Out, error) {
		return fn(inputs[i])
	})
}

// MapCtx is Map with cooperative cancellation; see RunCtx.
func MapCtx[In, Out any](ctx context.Context, inputs []In, workers int, fn func(ctx context.Context, in In) (Out, error)) ([]Out, []bool, error) {
	return RunCtx(ctx, len(inputs), workers, func(ctx context.Context, i int) (Out, error) {
		return fn(ctx, inputs[i])
	})
}

// SubSeed derives a deterministic per-point RNG seed from a base seed and a
// point index by mixing both through a SplitMix64 finalizer. Work items that
// each seed their own rand.Rand with SubSeed(seed, i) produce results that
// depend only on (seed, i) — never on worker count or scheduling — which is
// what makes the parallel frame loop of package detect byte-reproducible at
// any parallelism.
func SubSeed(seed int64, index int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(index)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// splitmix is a SplitMix64 rand.Source64. The stdlib's default source seeds
// a 607-word feedback table on every NewSource — measurably expensive when
// every frame of a pass opens its own stream — while SplitMix64 seeds in
// one word and passes the usual statistical batteries, which is plenty for
// thermal-noise draws.
type splitmix struct{ state uint64 }

func (s *splitmix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *splitmix) Seed(seed int64) { s.state = uint64(seed) }

// NewRand returns the deterministic RNG stream for one work item: a
// rand.Rand over a SplitMix64 source seeded with SubSeed(seed, index).
func NewRand(seed int64, index int) *rand.Rand {
	return rand.New(&splitmix{state: uint64(SubSeed(seed, index))})
}
