package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ros/internal/roserr"
)

func TestRunPreservesOrder(t *testing.T) {
	out, err := Run(100, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestRunActuallyConcurrent(t *testing.T) {
	// Each task waits (bounded) until it observes a second in-flight task,
	// which can only happen if the pool really runs them concurrently.
	var peak, cur atomic.Int32
	_, err := Run(16, 8, func(i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		for spin := 0; spin < 1_000_000 && cur.Load() < 2 && peak.Load() < 2; spin++ {
			runtime.Gosched()
		}
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Errorf("peak concurrency = %d, want >= 2", peak.Load())
	}
}

func TestRunReportsError(t *testing.T) {
	wantErr := errors.New("boom")
	out, err := Run(10, 4, func(i int) (int, error) {
		if i == 7 {
			return 0, wantErr
		}
		return i, nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v", err)
	}
	// Other points still computed.
	if out[3] != 3 {
		t.Errorf("out[3] = %d", out[3])
	}
}

func TestRunEdgeCases(t *testing.T) {
	if _, err := Run(-1, 2, func(int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := Run[int](3, 2, nil); err == nil {
		t.Error("nil fn accepted")
	}
	out, err := Run(0, 2, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("empty run: %v, %v", out, err)
	}
	// Default worker count.
	out, err = Run(5, 0, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 5 {
		t.Errorf("default workers: %v, %v", out, err)
	}
}

func TestMap(t *testing.T) {
	in := []string{"a", "bb", "ccc"}
	out, err := Map(in, 2, func(s string) (int, error) { return len(s), nil })
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out) != "[1 2 3]" {
		t.Errorf("out = %v", out)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	out, err := Run(10, 4, func(i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("panic in point 5 not reported")
	}
	if !strings.Contains(err.Error(), "point 5") || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("err = %v, want point index and panic value", err)
	}
	// The panicking worker keeps draining: the other points still ran.
	if out[9] != 9 {
		t.Errorf("out[9] = %d, want 9 (pool died with the panic)", out[9])
	}
}

func TestSubSeedStreamsAreStable(t *testing.T) {
	// Distinct indices give distinct seeds, and the derivation is pure.
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := SubSeed(42, i)
		if seen[s] {
			t.Fatalf("SubSeed(42, %d) collides", i)
		}
		seen[s] = true
		if s != SubSeed(42, i) {
			t.Fatalf("SubSeed(42, %d) not deterministic", i)
		}
	}
	if SubSeed(1, 0) == SubSeed(2, 0) {
		t.Error("different base seeds map to the same stream")
	}
}

func TestNewRandReproduces(t *testing.T) {
	a, b := NewRand(7, 3), NewRand(7, 3)
	for i := 0; i < 100; i++ {
		if a.NormFloat64() != b.NormFloat64() {
			t.Fatal("equal (seed, index) streams diverge")
		}
	}
	if NewRand(7, 3).NormFloat64() == NewRand(7, 4).NormFloat64() {
		t.Error("adjacent frame streams start identically")
	}
}

func TestRunCtxCancellationPartial(t *testing.T) {
	// Cancel after the first few points: RunCtx must return promptly with
	// the completed prefix marked done and a typed cancellation error.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	out, done, err := RunCtx(ctx, 1000, 2, func(ctx context.Context, i int) (int, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		return i * 2, nil
	})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, roserr.ErrReadCancelled) {
		t.Errorf("err = %v, want ErrReadCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled in chain", err)
	}
	completed := 0
	for i, d := range done {
		if d {
			completed++
			if out[i] != i*2 {
				t.Errorf("done point %d holds %d, want %d", i, out[i], i*2)
			}
		}
	}
	if completed == 0 || completed >= 1000 {
		t.Errorf("completed = %d, want a strict prefix subset", completed)
	}
}

func TestRunCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := RunCtx(ctx, 100000, 4, func(ctx context.Context, i int) (int, error) {
		time.Sleep(50 * time.Microsecond)
		return i, nil
	})
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("cancelled run took %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

func TestPanicErrorCarriesStack(t *testing.T) {
	_, _, err := RunCtx(context.Background(), 3, 2, func(ctx context.Context, i int) (int, error) {
		if i == 1 {
			panic("with stack")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *PanicError", err)
	}
	if pe.Index != 1 || pe.Value != "with stack" {
		t.Errorf("PanicError = %+v", pe)
	}
	if !strings.Contains(string(pe.Stack), "sweep_test.go") {
		t.Errorf("stack does not point at the panicking fn:\n%s", pe.Stack)
	}
	if !errors.Is(err, roserr.ErrWorkerPanic) {
		t.Error("panic error does not match roserr.ErrWorkerPanic")
	}
}

func TestPanicErrorUnwrapsErrorValue(t *testing.T) {
	sentinel := errors.New("typed panic")
	_, _, err := RunCtx(context.Background(), 1, 1, func(ctx context.Context, i int) (int, error) {
		panic(sentinel)
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want wrapped sentinel", err)
	}
}

func TestPointErrors(t *testing.T) {
	boom := errors.New("boom")
	_, _, err := RunCtx(context.Background(), 10, 3, func(ctx context.Context, i int) (int, error) {
		switch i {
		case 2:
			return 0, boom
		case 7:
			panic("pow")
		}
		return i, nil
	})
	pes := PointErrors(err)
	if len(pes) != 2 {
		t.Fatalf("PointErrors = %v, want 2 entries", pes)
	}
	idx := map[int]bool{}
	for _, pe := range pes {
		idx[pe.Index] = true
	}
	if !idx[2] || !idx[7] {
		t.Errorf("failed indices = %v, want {2, 7}", idx)
	}
	if PointErrors(nil) != nil {
		t.Error("PointErrors(nil) != nil")
	}
}
