package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunPreservesOrder(t *testing.T) {
	out, err := Run(100, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestRunActuallyConcurrent(t *testing.T) {
	// Each task waits (bounded) until it observes a second in-flight task,
	// which can only happen if the pool really runs them concurrently.
	var peak, cur atomic.Int32
	_, err := Run(16, 8, func(i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		for spin := 0; spin < 1_000_000 && cur.Load() < 2 && peak.Load() < 2; spin++ {
			runtime.Gosched()
		}
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Errorf("peak concurrency = %d, want >= 2", peak.Load())
	}
}

func TestRunReportsError(t *testing.T) {
	wantErr := errors.New("boom")
	out, err := Run(10, 4, func(i int) (int, error) {
		if i == 7 {
			return 0, wantErr
		}
		return i, nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v", err)
	}
	// Other points still computed.
	if out[3] != 3 {
		t.Errorf("out[3] = %d", out[3])
	}
}

func TestRunEdgeCases(t *testing.T) {
	if _, err := Run(-1, 2, func(int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := Run[int](3, 2, nil); err == nil {
		t.Error("nil fn accepted")
	}
	out, err := Run(0, 2, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("empty run: %v, %v", out, err)
	}
	// Default worker count.
	out, err = Run(5, 0, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 5 {
		t.Errorf("default workers: %v, %v", out, err)
	}
}

func TestMap(t *testing.T) {
	in := []string{"a", "bb", "ccc"}
	out, err := Map(in, 2, func(s string) (int, error) { return len(s), nil })
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out) != "[1 2 3]" {
		t.Errorf("out = %v", out)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	out, err := Run(10, 4, func(i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("panic in point 5 not reported")
	}
	if !strings.Contains(err.Error(), "point 5") || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("err = %v, want point index and panic value", err)
	}
	// The panicking worker keeps draining: the other points still ran.
	if out[9] != 9 {
		t.Errorf("out[9] = %d, want 9 (pool died with the panic)", out[9])
	}
}

func TestSubSeedStreamsAreStable(t *testing.T) {
	// Distinct indices give distinct seeds, and the derivation is pure.
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := SubSeed(42, i)
		if seen[s] {
			t.Fatalf("SubSeed(42, %d) collides", i)
		}
		seen[s] = true
		if s != SubSeed(42, i) {
			t.Fatalf("SubSeed(42, %d) not deterministic", i)
		}
	}
	if SubSeed(1, 0) == SubSeed(2, 0) {
		t.Error("different base seeds map to the same stream")
	}
}

func TestNewRandReproduces(t *testing.T) {
	a, b := NewRand(7, 3), NewRand(7, 3)
	for i := 0; i < 100; i++ {
		if a.NormFloat64() != b.NormFloat64() {
			t.Fatal("equal (seed, index) streams diverge")
		}
	}
	if NewRand(7, 3).NormFloat64() == NewRand(7, 4).NormFloat64() {
		t.Error("adjacent frame streams start identically")
	}
}
