package coding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ros/internal/em"
)

func synthesizeASK(l *ASKLayout, uLo, uHi float64, n int, noise float64, rng *rand.Rand) (us, rss []float64) {
	lambda := em.Lambda79()
	pos, w := l.PositionsAndWeights()
	us = make([]float64, n)
	rss = make([]float64, n)
	for i := range us {
		u := uLo + (uHi-uLo)*float64(i)/float64(n-1)
		us[i] = u
		v := (1 - 0.3*u*u) * WeightedMultiStackGain(pos, w, u, lambda)
		if noise > 0 {
			v *= 1 + noise*rng.NormFloat64()
			if v < 0 {
				v = 0
			}
		}
		rss[i] = v
	}
	return
}

func TestNewASKLayoutValidation(t *testing.T) {
	if _, err := NewASKLayout(nil, 4, 1); err == nil {
		t.Error("empty symbols accepted")
	}
	if _, err := NewASKLayout([]int{3}, 3, 1); err == nil {
		t.Error("non-power-of-two levels accepted")
	}
	if _, err := NewASKLayout([]int{3}, 4, 0); err == nil {
		t.Error("zero delta accepted")
	}
	if _, err := NewASKLayout([]int{4}, 4, 1); err == nil {
		t.Error("out-of-range symbol accepted")
	}
	if _, err := NewASKLayout([]int{1, 2}, 4, 1); err == nil {
		t.Error("codeword without a full-scale pilot accepted")
	}
	if _, err := NewASKLayout([]int{3, 0, 2, 1}, 4, DefaultDelta()); err != nil {
		t.Errorf("valid codeword rejected: %v", err)
	}
}

func TestASKCapacity(t *testing.T) {
	l, err := NewASKLayout([]int{3, 0, 2, 1}, 4, DefaultDelta())
	if err != nil {
		t.Fatal(err)
	}
	if l.BitsPerSlot() != 2 {
		t.Errorf("bits per slot = %d, want 2", l.BitsPerSlot())
	}
	// Sec 8: ASK improves capacity by multi-folds: 4 slots now carry 8
	// bits instead of 4.
	if l.Capacity() != 8 {
		t.Errorf("capacity = %d, want 8", l.Capacity())
	}
}

func TestASKPositionsAndWeights(t *testing.T) {
	l, err := NewASKLayout([]int{3, 0, 2, 1}, 4, DefaultDelta())
	if err != nil {
		t.Fatal(err)
	}
	pos, w := l.PositionsAndWeights()
	// Reference + 3 mounted (slot 2 is level 0).
	if len(pos) != 4 || len(w) != 4 {
		t.Fatalf("positions %v weights %v", pos, w)
	}
	if w[0] != 1 {
		t.Errorf("reference weight = %g", w[0])
	}
	if math.Abs(w[1]-1) > 1e-12 || math.Abs(w[2]-2.0/3) > 1e-12 || math.Abs(w[3]-1.0/3) > 1e-12 {
		t.Errorf("weights = %v, want 1, 2/3, 1/3", w[1:])
	}
}

func TestASKDecodeClean(t *testing.T) {
	for _, symbols := range [][]int{
		{3, 0, 2, 1},
		{3, 3, 3, 3},
		{1, 3, 0, 2},
		{0, 0, 0, 3},
	} {
		l, err := NewASKLayout(symbols, 4, DefaultDelta())
		if err != nil {
			t.Fatal(err)
		}
		us, rss := synthesizeASK(l, -0.55, 0.55, 1100, 0, nil)
		d, err := NewASKDecoder(4, 4, DefaultDelta(), em.Lambda79())
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Decode(us, rss)
		if err != nil {
			t.Fatalf("%v: %v", symbols, err)
		}
		if !SymbolsEqual(res.Symbols, symbols) {
			t.Errorf("decoded %v, want %v (amps %v)", res.Symbols, symbols, res.Amps)
		}
	}
}

func TestASKDecodeNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	symbols := []int{3, 1, 2, 0}
	l, err := NewASKLayout(symbols, 4, DefaultDelta())
	if err != nil {
		t.Fatal(err)
	}
	us, rss := synthesizeASK(l, -0.55, 0.55, 1100, 0.08, rng)
	d, err := NewASKDecoder(4, 4, DefaultDelta(), em.Lambda79())
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Decode(us, rss)
	if err != nil {
		t.Fatal(err)
	}
	if !SymbolsEqual(res.Symbols, symbols) {
		t.Errorf("noisy decode %v, want %v", res.Symbols, symbols)
	}
}

func TestASKMarginShrinksWithMoreLevels(t *testing.T) {
	// Binary OOK tolerates more amplitude error than 4-level ASK.
	make2 := func(levels int, symbols []int) float64 {
		l, err := NewASKLayout(symbols, levels, DefaultDelta())
		if err != nil {
			t.Fatal(err)
		}
		us, rss := synthesizeASK(l, -0.55, 0.55, 1100, 0, nil)
		d, err := NewASKDecoder(len(symbols), levels, DefaultDelta(), em.Lambda79())
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Decode(us, rss)
		if err != nil {
			t.Fatal(err)
		}
		return res.MarginDB
	}
	m2 := make2(2, []int{1, 0, 1, 1})
	m4 := make2(4, []int{3, 0, 2, 1})
	if m4 >= m2 {
		t.Errorf("4-level margin %g dB >= binary margin %g dB", m4, m2)
	}
}

func TestASKDecoderErrors(t *testing.T) {
	if _, err := NewASKDecoder(0, 4, 1, 1); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := NewASKDecoder(4, 3, 1, 1); err == nil {
		t.Error("non-power-of-two levels accepted")
	}
	if _, err := NewASKDecoder(4, 4, 0, 1); err == nil {
		t.Error("zero delta accepted")
	}
}

func TestWeightedMultiStackGainReducesToUnweighted(t *testing.T) {
	lambda := em.Lambda79()
	pos := []float64{0, 6 * lambda, -7.5 * lambda}
	w := []float64{1, 1, 1}
	for _, u := range []float64{-0.4, 0, 0.3} {
		a := WeightedMultiStackGain(pos, w, u, lambda)
		b := MultiStackGain(pos, u, lambda)
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("u=%g: weighted %g != unweighted %g", u, a, b)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	WeightedMultiStackGain(pos, w[:2], 0, lambda)
}

func TestHammingRoundTrip(t *testing.T) {
	for v := 0; v < 16; v++ {
		data := []bool{v&8 != 0, v&4 != 0, v&2 != 0, v&1 != 0}
		code, err := HammingEncode(data)
		if err != nil {
			t.Fatal(err)
		}
		back, corrected, err := HammingDecode(code)
		if err != nil {
			t.Fatal(err)
		}
		if corrected != 0 {
			t.Errorf("clean codeword %d reported correction at %d", v, corrected)
		}
		if !BitsEqual(back, data) {
			t.Errorf("round trip failed for %d: %v -> %v", v, data, back)
		}
	}
}

func TestHammingCorrectsEverySingleBitError(t *testing.T) {
	f := func(nibble uint8, pos uint8) bool {
		v := int(nibble % 16)
		p := int(pos % 7)
		data := []bool{v&8 != 0, v&4 != 0, v&2 != 0, v&1 != 0}
		code, err := HammingEncode(data)
		if err != nil {
			return false
		}
		code[p] = !code[p]
		back, corrected, err := HammingDecode(code)
		if err != nil {
			return false
		}
		return BitsEqual(back, data) && corrected == p+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHammingErrors(t *testing.T) {
	if _, err := HammingEncode([]bool{true}); err == nil {
		t.Error("short data accepted")
	}
	if _, _, err := HammingDecode([]bool{true}); err == nil {
		t.Error("short codeword accepted")
	}
}
