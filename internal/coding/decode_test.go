package coding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ros/internal/em"
)

// synthesizeRSS builds far-field RCS samples for a layout across a u span,
// with a smooth envelope and optional multiplicative noise.
func synthesizeRSS(l *Layout, uLo, uHi float64, n int, noise float64, rng *rand.Rand) (us, rss []float64) {
	lambda := em.Lambda79()
	pos := l.Positions()
	us = make([]float64, n)
	rss = make([]float64, n)
	for i := range us {
		u := uLo + (uHi-uLo)*float64(i)/float64(n-1)
		us[i] = u
		env := 1 - 0.4*u*u // broad single-stack envelope r_T
		v := env * MultiStackGain(pos, u, lambda)
		if noise > 0 {
			v *= 1 + noise*rng.NormFloat64()
			v += noise * rng.Float64() * 0.5
			if v < 0 {
				v = 0
			}
		}
		rss[i] = v
	}
	return
}

func newTestDecoder(t *testing.T, bits int) *Decoder {
	t.Helper()
	d, err := NewDecoder(bits, DefaultDelta(), em.Lambda79())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDecodeCleanAllOnes(t *testing.T) {
	l := mustLayout(t, "1111")
	us, rss := synthesizeRSS(l, -0.55, 0.55, 900, 0, nil)
	d := newTestDecoder(t, 4)
	res, err := d.Decode(us, rss)
	if err != nil {
		t.Fatal(err)
	}
	if got := BitsString(res.Bits); got != "1111" {
		t.Fatalf("decoded %q, want 1111 (amps %v, noise %g+/-%g)", got, res.PeakAmps, res.NoiseMean, res.NoiseStd)
	}
	if res.SNRdB < 15 {
		t.Errorf("clean decode SNR = %g dB, want > 15", res.SNRdB)
	}
	if res.BER > 0.01 {
		t.Errorf("clean decode BER = %g, want < 1%%", res.BER)
	}
}

func TestDecodeMixedPatterns(t *testing.T) {
	d := newTestDecoder(t, 4)
	for _, pattern := range []string{"1010", "0101", "1001", "1111", "1000", "0011", "1110"} {
		bits, err := ParseBits(pattern)
		if err != nil {
			t.Fatal(err)
		}
		l, err := NewLayout(bits, DefaultDelta())
		if err != nil {
			t.Fatal(err)
		}
		us, rss := synthesizeRSS(l, -0.55, 0.55, 900, 0, nil)
		res, err := d.Decode(us, rss)
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		if got := BitsString(res.Bits); got != pattern {
			t.Errorf("decoded %q, want %q (amps %v)", got, pattern, res.PeakAmps)
		}
	}
}

func TestDecodeWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := mustLayout(t, "1011")
	us, rss := synthesizeRSS(l, -0.55, 0.55, 900, 0.15, rng)
	d := newTestDecoder(t, 4)
	res, err := d.Decode(us, rss)
	if err != nil {
		t.Fatal(err)
	}
	if got := BitsString(res.Bits); got != "1011" {
		t.Fatalf("noisy decode %q, want 1011", got)
	}
	if res.SNRdB < 8 {
		t.Errorf("noisy SNR = %g dB, implausibly low", res.SNRdB)
	}
}

func TestSNRDecreasesWithNoise(t *testing.T) {
	d := newTestDecoder(t, 4)
	l := mustLayout(t, "1111")
	var prev float64 = math.Inf(1)
	for i, noise := range []float64{0.02, 0.3} {
		rng := rand.New(rand.NewSource(11))
		us, rss := synthesizeRSS(l, -0.55, 0.55, 900, noise, rng)
		res, err := d.Decode(us, rss)
		if err != nil {
			t.Fatal(err)
		}
		if res.SNRdB >= prev {
			t.Errorf("noise %g: SNR %g dB did not decrease (step %d)", noise, res.SNRdB, i)
		}
		prev = res.SNRdB
	}
}

func TestDecodeNarrowFoVDegrades(t *testing.T) {
	// Fig 17: a 20-degree FoV cannot separate the coding peaks as well as a
	// 60-degree FoV.
	d := newTestDecoder(t, 4)
	l := mustLayout(t, "1111")
	wide := func() float64 {
		us, rss := synthesizeRSS(l, -0.5, 0.5, 900, 0.05, rand.New(rand.NewSource(1)))
		res, err := d.Decode(us, rss)
		if err != nil {
			t.Fatal(err)
		}
		return res.SNRdB
	}()
	narrow := func() float64 {
		us, rss := synthesizeRSS(l, -0.17, 0.17, 900, 0.05, rand.New(rand.NewSource(1)))
		res, err := d.Decode(us, rss)
		if err != nil {
			t.Fatal(err)
		}
		return res.SNRdB
	}()
	if narrow >= wide {
		t.Errorf("narrow FoV SNR %g dB >= wide FoV %g dB", narrow, wide)
	}
}

func TestSpectrumPeaksAtPaperPositions(t *testing.T) {
	// Fig 10c / Fig 11d: peaks at 6, 7.5, 9, 10.5 lambda.
	l := mustLayout(t, "1111")
	us, rss := synthesizeRSS(l, -0.55, 0.55, 900, 0, nil)
	lambda := em.Lambda79()
	spec, err := ComputeSpectrum(us, rss, SpectrumOptions{Lambda: lambda})
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-band probe: 12 lambda sits between the last coding peak
	// (10.5) and the first cross-side secondary peak (6 + 7.5 = 13.5).
	floor := spec.AmplitudeAt(12*lambda, 0.1*lambda)
	for _, dk := range []float64{6, 7.5, 9, 10.5} {
		peak := spec.AmplitudeAt(dk*lambda, 0.3*lambda)
		// Prominent over the inter-peak valley and far above the
		// out-of-band floor.
		valley := spec.AmplitudeAt((dk+0.75)*lambda, 0.1*lambda)
		if peak < 2*valley {
			t.Errorf("peak at %g lambda (%g) not prominent over valley (%g)", dk, peak, valley)
		}
		if peak < 3*floor {
			t.Errorf("peak at %g lambda (%g) not above out-of-band floor (%g)", dk, peak, floor)
		}
	}
}

func TestSpectrumResolutionMatchesPaper(t *testing.T) {
	// Sec 5.1: u spans 2, so the spacing resolution is 0.25 lambda
	// (0.95 mm at 79 GHz). With oversampling the bin width is finer; the
	// physical resolution is set by the u span: lambda/2 / span.
	l := mustLayout(t, "1111")
	us, rss := synthesizeRSS(l, -1, 1, 2000, 0, nil)
	lambda := em.Lambda79()
	spec, err := ComputeSpectrum(us, rss, SpectrumOptions{Lambda: lambda})
	if err != nil {
		t.Fatal(err)
	}
	physical := lambda / 2 / 2 // lambda/2 per unit-u-frequency over span 2
	if math.Abs(physical-0.25*lambda) > 1e-12 {
		t.Fatalf("physical resolution = %g lambda", physical/lambda)
	}
	if spec.Resolution() > physical {
		t.Errorf("bin width %g coarser than physical resolution %g", spec.Resolution(), physical)
	}
}

func TestComputeSpectrumErrors(t *testing.T) {
	if _, err := ComputeSpectrum([]float64{1, 2}, []float64{1}, SpectrumOptions{Lambda: 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ComputeSpectrum([]float64{1, 2}, []float64{1, 2}, SpectrumOptions{}); err == nil {
		t.Error("zero lambda accepted")
	}
	short := []float64{1, 2, 3}
	if _, err := ComputeSpectrum(short, short, SpectrumOptions{Lambda: 1}); err == nil {
		t.Error("too-few samples accepted")
	}
	same := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	if _, err := ComputeSpectrum(same, same, SpectrumOptions{Lambda: 1}); err == nil {
		t.Error("degenerate u span accepted")
	}
}

func TestNewDecoderErrors(t *testing.T) {
	if _, err := NewDecoder(0, 1, 1); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := NewDecoder(4, 0, 1); err == nil {
		t.Error("zero delta accepted")
	}
	if _, err := NewDecoder(4, 1, 0); err == nil {
		t.Error("zero lambda accepted")
	}
}

func TestDecodeSpectrumOutOfBand(t *testing.T) {
	d := newTestDecoder(t, 4)
	spec := &Spectrum{Spacing: []float64{0, 0.001, 0.002}, Mag: []float64{1, 1, 1}}
	if _, err := d.DecodeSpectrum(spec); err == nil {
		t.Error("spectrum not covering the coding band accepted")
	}
	empty := &Spectrum{Spacing: []float64{0}, Mag: []float64{0}}
	if _, err := d.DecodeSpectrum(empty); err == nil {
		t.Error("resolution-less spectrum accepted")
	}
}

func TestBitsHelpers(t *testing.T) {
	b, err := ParseBits("1010")
	if err != nil {
		t.Fatal(err)
	}
	if BitsString(b) != "1010" {
		t.Errorf("round trip failed: %q", BitsString(b))
	}
	if !BitsEqual(b, []bool{true, false, true, false}) {
		t.Error("BitsEqual false negative")
	}
	if BitsEqual(b, []bool{true, false, true}) {
		t.Error("BitsEqual length confusion")
	}
	if BitsEqual(b, []bool{true, true, true, false}) {
		t.Error("BitsEqual false positive")
	}
	if _, err := ParseBits(""); err == nil {
		t.Error("empty string accepted")
	}
	if _, err := ParseBits("10x1"); err == nil {
		t.Error("invalid character accepted")
	}
}

func TestDecodeRoundTripProperty(t *testing.T) {
	// Property: any nonzero 4-bit pattern synthesized in the far field with
	// mild noise decodes back to itself.
	d := newTestDecoder(t, 4)
	f := func(pattern uint8, seed int64) bool {
		v := int(pattern % 16)
		if v == 0 {
			return true // all-absent tags are undetectable by design
		}
		bits := []bool{v&8 != 0, v&4 != 0, v&2 != 0, v&1 != 0}
		l, err := NewLayout(bits, DefaultDelta())
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		us, rss := synthesizeRSS(l, -0.55, 0.55, 900, 0.05, rng)
		res, err := d.Decode(us, rss)
		if err != nil {
			return false
		}
		return BitsEqual(res.Bits, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
