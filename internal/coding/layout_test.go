package coding

import (
	"math"
	"testing"
	"testing/quick"

	"ros/internal/em"
	"ros/internal/geom"
)

func mustLayout(t *testing.T, bits string) *Layout {
	t.Helper()
	b, err := ParseBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLayout(b, DefaultDelta())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestPaperExampleLayout(t *testing.T) {
	// Sec 5.2: M = 5, delta_c = 1.5 lambda, coding stacks at 6, -7.5, 9,
	// -10.5 lambda.
	l := mustLayout(t, "1111")
	lambda := em.Lambda79()
	want := []float64{6, -7.5, 9, -10.5}
	for k := 1; k <= 4; k++ {
		got := l.SlotPosition(k) / lambda
		if math.Abs(got-want[k-1]) > 1e-9 {
			t.Errorf("slot %d at %g lambda, want %g", k, got, want[k-1])
		}
	}
	pos := l.Positions()
	if len(pos) != 5 {
		t.Fatalf("got %d stacks, want 5 (reference + 4)", len(pos))
	}
	if pos[0] != 0 {
		t.Errorf("reference stack at %g, want 0", pos[0])
	}
}

func TestLayoutPartialBits(t *testing.T) {
	// Encoding "1010" removes the stacks at -7.5 and -10.5 lambda (Sec 5.2).
	l := mustLayout(t, "1010")
	pos := l.Positions()
	lambda := em.Lambda79()
	want := []float64{0, 6, 9}
	if len(pos) != len(want) {
		t.Fatalf("positions = %v", pos)
	}
	for i := range want {
		if math.Abs(pos[i]/lambda-want[i]) > 1e-9 {
			t.Errorf("pos[%d] = %g lambda, want %g", i, pos[i]/lambda, want[i])
		}
	}
}

func TestSecondaryPeaksOutsideCodingBand(t *testing.T) {
	// Sec 5.2's design guarantee: for every pair of coding stacks, the
	// inter-stack spacing |d_k - d_l| falls outside [d_1, d_{M-1}].
	for _, bits := range []string{"11", "111", "1111", "11111", "111111"} {
		l := mustLayout(t, bits)
		lo, hi := l.CodingBand()
		pos := l.Positions()[1:] // coding stacks only
		for i := 0; i < len(pos); i++ {
			for j := i + 1; j < len(pos); j++ {
				d := math.Abs(pos[i] - pos[j])
				if d >= lo && d <= hi {
					t.Errorf("%s: secondary peak |d%d-d%d| = %g lambda inside coding band [%g, %g]",
						bits, i+1, j+1, d/em.Lambda79(), lo/em.Lambda79(), hi/em.Lambda79())
				}
			}
		}
	}
}

func TestApertureAndFarFieldMatchPaper(t *testing.T) {
	l := mustLayout(t, "1111")
	lambda := em.Lambda79()
	// Aperture |d4| + |d3| = 10.5 + 9 = 19.5 lambda.
	if a := l.Aperture() / lambda; math.Abs(a-19.5) > 1e-9 {
		t.Errorf("aperture = %g lambda, want 19.5", a)
	}
	// Width D = 22.5 lambda (Sec 5.3).
	if w := l.Width() / lambda; math.Abs(w-22.5) > 1e-9 {
		t.Errorf("width = %g lambda, want 22.5", w)
	}
	// Far field 2*D^2/lambda = 2.9 m for the aperture (Sec 5.3).
	if ff := l.FarFieldDistance(em.CenterFrequency); math.Abs(ff-2.9) > 0.15 {
		t.Errorf("far field = %g m, want ~2.9", ff)
	}
}

func TestSixBitTagFarField(t *testing.T) {
	// Sec 5.3: a 6-bit tag at delta_c = 1.5 lambda has width 34.5 lambda
	// and a far field of ~9 m. (The paper evaluates Eq 8 with the full
	// 34.5-lambda width there but with the 19.5-lambda coding aperture for
	// the 4-bit tag; this package consistently uses the coding aperture,
	// which yields ~7.5 m for 6 bits — same growth trend.)
	l := mustLayout(t, "111111")
	lambda := em.Lambda79()
	if w := l.Width() / lambda; math.Abs(w-34.5) > 1e-9 {
		t.Errorf("6-bit width = %g lambda, want 34.5", w)
	}
	ff := l.FarFieldDistance(em.CenterFrequency)
	if ff < 7 || ff > 9.5 {
		t.Errorf("6-bit far field = %g m, want 7.5-9", ff)
	}
}

func TestWidthFormula(t *testing.T) {
	// Sec 5.3: D = ((4M - 7)c + 3) * lambda for delta_c = c*lambda.
	lambda := em.Lambda79()
	for m := 3; m <= 7; m++ {
		bits := make([]bool, m-1)
		for i := range bits {
			bits[i] = true
		}
		l, err := NewLayout(bits, 1.5*lambda)
		if err != nil {
			t.Fatal(err)
		}
		want := (float64(4*m-7)*1.5 + 3) * lambda
		if math.Abs(l.Width()-want) > 1e-9 {
			t.Errorf("M=%d: width %g, want %g", m, l.Width(), want)
		}
	}
}

func TestMaxSpeed(t *testing.T) {
	l := mustLayout(t, "1111")
	// At Fs = 1 kHz the paper quotes a ~38.5 m/s ceiling; with the Nyquist
	// geometry of Eq 9 that corresponds to a ~1.6 m closest pass. Sanity:
	// the bound scales linearly in frame rate and standoff.
	v1 := l.MaxSpeed(1000, 1.62, em.CenterFrequency)
	if math.Abs(v1-38.5) > 1.5 {
		t.Errorf("max speed at 1.62 m standoff = %g m/s, want ~38.5", v1)
	}
	if v2 := l.MaxSpeed(2000, 1.62, em.CenterFrequency); math.Abs(v2-2*v1) > 1e-9 {
		t.Errorf("max speed not linear in frame rate: %g vs %g", v2, 2*v1)
	}
	defer func() {
		if recover() == nil {
			t.Error("MaxSpeed with zero frame rate did not panic")
		}
	}()
	l.MaxSpeed(0, 1, em.CenterFrequency)
}

func TestNewLayoutErrors(t *testing.T) {
	if _, err := NewLayout(nil, 1); err == nil {
		t.Error("empty bits accepted")
	}
	if _, err := NewLayout([]bool{true}, 0); err == nil {
		t.Error("zero delta accepted")
	}
}

func TestSlotPositionPanics(t *testing.T) {
	l := mustLayout(t, "11")
	defer func() {
		if recover() == nil {
			t.Error("out-of-range slot did not panic")
		}
	}()
	l.SlotPosition(3)
}

func TestMultiStackGainPeaksAtStacks(t *testing.T) {
	// Eq 6: M stacks give gain M^2 at u = 0 and oscillate elsewhere.
	l := mustLayout(t, "1111")
	pos := l.Positions()
	lambda := em.Lambda79()
	if g := MultiStackGain(pos, 0, lambda); math.Abs(g-25) > 1e-9 {
		t.Errorf("gain at u=0 = %g, want M^2 = 25", g)
	}
	// Mean gain over u approximates M (incoherent sum), Eq 6's constant
	// term.
	sum, n := 0.0, 0
	for u := -0.9; u <= 0.9; u += 0.0005 {
		sum += MultiStackGain(pos, u, lambda)
		n++
	}
	mean := sum / float64(n)
	if math.Abs(mean-5) > 0.5 {
		t.Errorf("mean gain = %g, want ~M = 5", mean)
	}
}

func TestNearFieldConvergesToFarField(t *testing.T) {
	l := mustLayout(t, "1111")
	pos := l.Positions()
	lambda := em.Lambda79()
	// Far beyond Eq 8's bound the spherical and planar models agree.
	for _, thetaDeg := range []float64{60, 90, 120} {
		th := geom.Rad(thetaDeg)
		u := math.Cos(th)
		r := 120.0 // far field (bound is 2.9 m; curvature error ~ D^2/(4 r lambda))
		radar := geom.Vec2{X: r * math.Cos(th), Y: r * math.Sin(th)}
		nf := NearFieldGain(pos, radar, lambda)
		ff := MultiStackGain(pos, u, lambda)
		if math.Abs(nf-ff) > 0.08*25 {
			t.Errorf("theta=%g: near %g vs far %g", thetaDeg, nf, ff)
		}
	}
}

func TestNearFieldDistortsInsideBound(t *testing.T) {
	// Inside the far-field bound, the exact model must differ appreciably
	// from the plane-wave model somewhere across the pass.
	l := mustLayout(t, "1111")
	pos := l.Positions()
	lambda := em.Lambda79()
	r := 1.0 // well inside the 2.9 m bound
	worst := 0.0
	for deg := 50.0; deg <= 130; deg += 1 {
		th := geom.Rad(deg)
		radar := geom.Vec2{X: r * math.Cos(th), Y: r * math.Sin(th)}
		nf := NearFieldGain(pos, radar, lambda)
		ff := MultiStackGain(pos, math.Cos(th), lambda)
		if d := math.Abs(nf - ff); d > worst {
			worst = d
		}
	}
	if worst < 1 {
		t.Errorf("near-field distortion at 1 m only %g, expected significant", worst)
	}
}

func TestNearFieldGainEmpty(t *testing.T) {
	if g := NearFieldGain(nil, geom.Vec2{X: 1}, 0.004); g != 0 {
		t.Errorf("empty positions gain = %g", g)
	}
}

func TestMultiStackGainProperty(t *testing.T) {
	// Property: gain is bounded by M^2 and non-negative.
	lambda := em.Lambda79()
	f := func(seed uint8, u float64) bool {
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return true
		}
		u = math.Mod(u, 1)
		m := int(seed%5) + 1
		pos := make([]float64, m)
		for i := range pos {
			pos[i] = float64(i) * 2.5 * lambda
		}
		g := MultiStackGain(pos, u, lambda)
		return g >= -1e-9 && g <= float64(m*m)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
