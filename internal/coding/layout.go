// Package coding implements RoS's model-driven spatial encoding scheme
// (Sec 5 of the paper): information bits are embedded in the geometrical
// layout of PSVAA stacks, the superimposed multi-stack RCS follows Eq 6, and
// a Fourier transform over u = cos(theta) — the "RCS frequency spectrum" of
// Eq 7 — exposes one peak per coding stack at a position proportional to its
// distance from the reference stack. Presence/absence of each peak carries
// one on-off-keyed bit.
package coding

import (
	"fmt"
	"math"

	"ros/internal/em"
	"ros/internal/geom"
)

// DefaultDelta is the paper's basic unit spacing between coding stacks,
// delta_c = 1.5 lambda (Sec 5.2's verification example).
func DefaultDelta() float64 { return 1.5 * em.Lambda79() }

// Layout is the spatial code of one tag: a reference stack at the origin
// plus up to M-1 coding stacks whose presence encodes bits.
type Layout struct {
	// Bits are the M-1 coding bits, most significant (innermost coding
	// stack, k = 1) first.
	Bits []bool
	// Delta is the unit spacing delta_c in meters.
	Delta float64
}

// NewLayout builds the spatial code for the given bits with unit spacing
// delta (meters). Sec 5.2: the k-th coding stack (k = 1..M-1) sits at
//
//	d_k = s_k * (M + k - 2) * delta,  s_k alternating +1, -1,
//
// which confines all (M-1)^2 secondary inter-stack peaks outside the coding
// band [d_1, d_{M-1}].
func NewLayout(bits []bool, delta float64) (*Layout, error) {
	if len(bits) == 0 {
		return nil, fmt.Errorf("coding: empty bit string")
	}
	if delta <= 0 {
		return nil, fmt.Errorf("coding: non-positive unit spacing %g", delta)
	}
	return &Layout{Bits: append([]bool(nil), bits...), Delta: delta}, nil
}

// M returns the maximum stack count (reference + bit slots).
func (l *Layout) M() int { return len(l.Bits) + 1 }

// SlotPosition returns the designed position d_k of coding slot k (1-based)
// regardless of whether its stack is present.
func (l *Layout) SlotPosition(k int) float64 {
	if k < 1 || k > len(l.Bits) {
		panic(fmt.Sprintf("coding: slot %d outside 1..%d", k, len(l.Bits)))
	}
	sign := 1.0
	if k%2 == 0 {
		sign = -1
	}
	return sign * float64(l.M()+k-2) * l.Delta
}

// Positions returns the positions of the stacks that are physically present:
// the reference stack at 0 plus one per set bit.
func (l *Layout) Positions() []float64 {
	out := []float64{0}
	for k, b := range l.Bits {
		if b {
			out = append(out, l.SlotPosition(k+1))
		}
	}
	return out
}

// CodingBand returns the [lo, hi] interval of |d| where coding peaks live:
// [d_1, d_{M-1}].
func (l *Layout) CodingBand() (lo, hi float64) {
	m := l.M()
	return float64(m-1) * l.Delta, float64(2*m-3) * l.Delta
}

// Aperture returns the span between the two outermost coding slots,
// |d_{M-1}| + |d_{M-2}| — the aperture the paper uses for the far-field
// bound (19.5 lambda for the 4-bit example).
func (l *Layout) Aperture() float64 {
	m := l.M()
	if m == 2 {
		return float64(m-1) * l.Delta
	}
	return float64(2*m-3)*l.Delta + float64(2*m-4)*l.Delta
}

// Width returns the full physical tag width in meters, Sec 5.3:
// D = |d_{M-1}| + |d_{M-2}| + 3*lambda (the 3-lambda term is the PSVAA
// module width).
func (l *Layout) Width() float64 {
	return l.Aperture() + 3*em.Lambda79()
}

// FarFieldDistance evaluates Eq 8, 2*D^2/lambda, with D the coding aperture.
// Beyond it the plane-wave model of Eq 6 holds; the paper quotes 2.9 m for
// the 4-bit example.
func (l *Layout) FarFieldDistance(f float64) float64 {
	lambda := em.Wavelength(f)
	d := l.Aperture()
	return 2 * d * d / lambda
}

// MaxSpeed evaluates the Nyquist bound of Eq 9: the RCS is sampled once per
// radar frame, the fastest spectral component sits at 2*d_max/lambda cycles
// per unit u, and the per-frame u step is at most ds/standoff (worst case at
// broadside). The returned speed is in m/s for a radar frame rate frameRate
// (Hz) passing at the given closest distance (m).
func (l *Layout) MaxSpeed(frameRate, standoff, f float64) float64 {
	if frameRate <= 0 || standoff <= 0 {
		panic(fmt.Sprintf("coding: MaxSpeed(frameRate=%g, standoff=%g)", frameRate, standoff))
	}
	lambda := em.Wavelength(f)
	_, dMax := l.CodingBand()
	du := lambda / (4 * dMax)
	return du * standoff * frameRate
}

// MultiStackGain evaluates Eq 6's interference factor
//
//	| sum_k exp(i * 4*pi * d_k * u / lambda) |^2
//
// for stacks at the given positions, observation direction u = cos(theta),
// and wavelength lambda. It multiplies the single-stack RCS r_T(theta).
func MultiStackGain(positions []float64, u, lambda float64) float64 {
	var re, im float64
	k := 4 * math.Pi * u / lambda
	for _, d := range positions {
		re += math.Cos(k * d)
		im += math.Sin(k * d)
	}
	return re*re + im*im
}

// NearFieldGain is the exact-spherical-wavefront counterpart of
// MultiStackGain: the stacks sit at (d_k, 0) along the tag axis and the
// radar at the given 2-D position (tag frame). In the far field it converges
// to MultiStackGain with u = cos(theta); closer than Eq 8's bound the
// wavefront curvature distorts the peak structure — the near-field penalty
// the 32-stack tags pay in Fig 15b.
func NearFieldGain(positions []float64, radar geom.Vec2, lambda float64) float64 {
	if len(positions) == 0 {
		return 0
	}
	r0 := radar.Dist(geom.Vec2{})
	var re, im float64
	k := 4 * math.Pi / lambda
	for _, d := range positions {
		r := radar.Dist(geom.Vec2{X: d})
		ph := -k * (r - r0)
		re += math.Cos(ph)
		im += math.Sin(ph)
	}
	return re*re + im*im
}
