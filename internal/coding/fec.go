package coding

import "fmt"

// Forward error correction for multi-tag messages, the Sec 8 suggestion:
// "Larger encoding capacity also allows for error correction mechanisms to
// improve the reliability of decoding." A Hamming(7,4) code fits RoS
// naturally: one 4-bit data nibble expands to 7 bits carried by two tags (or
// one 8-bit ASK tag), and any single-bit read error is corrected.

// HammingEncode expands a 4-bit data word into a 7-bit Hamming(7,4)
// codeword, parity bits at positions 1, 2 and 4 (1-indexed).
func HammingEncode(data []bool) ([]bool, error) {
	if len(data) != 4 {
		return nil, fmt.Errorf("coding: Hamming(7,4) encodes exactly 4 bits, got %d", len(data))
	}
	d := data
	code := make([]bool, 7)
	// Data positions 3, 5, 6, 7 (1-indexed).
	code[2], code[4], code[5], code[6] = d[0], d[1], d[2], d[3]
	// Parity over positions with the respective bit set in their index.
	code[0] = xor(code[2], code[4], code[6]) // p1 covers 1,3,5,7
	code[1] = xor(code[2], code[5], code[6]) // p2 covers 2,3,6,7
	code[3] = xor(code[4], code[5], code[6]) // p4 covers 4,5,6,7
	return code, nil
}

// HammingDecode recovers the 4 data bits from a 7-bit codeword, correcting
// up to one flipped bit. It returns the data, the 1-indexed position of the
// corrected bit (0 when the codeword was clean), and an error for malformed
// input.
func HammingDecode(code []bool) (data []bool, corrected int, err error) {
	if len(code) != 7 {
		return nil, 0, fmt.Errorf("coding: Hamming(7,4) decodes exactly 7 bits, got %d", len(code))
	}
	c := append([]bool(nil), code...)
	s1 := xor(c[0], c[2], c[4], c[6])
	s2 := xor(c[1], c[2], c[5], c[6])
	s4 := xor(c[3], c[4], c[5], c[6])
	syndrome := 0
	if s1 {
		syndrome |= 1
	}
	if s2 {
		syndrome |= 2
	}
	if s4 {
		syndrome |= 4
	}
	if syndrome != 0 {
		c[syndrome-1] = !c[syndrome-1]
		corrected = syndrome
	}
	return []bool{c[2], c[4], c[5], c[6]}, corrected, nil
}

func xor(bits ...bool) bool {
	v := false
	for _, b := range bits {
		v = v != b
	}
	return v
}
