package coding

import (
	"fmt"
	"math"

	"ros/internal/dsp"
	"ros/internal/roserr"
)

// Spectrum is the RCS frequency spectrum of Eq 7: the Fourier transform of
// the measured RCS over u = cos(theta), with the frequency axis rescaled to
// stack spacing (a tone at spacing d appears at 2*d/lambda cycles per unit
// u, i.e. at axis position d).
type Spectrum struct {
	// Spacing is the axis in meters: entry i is the stack spacing whose
	// peak would appear in bin i.
	Spacing []float64
	// Mag is the spectrum magnitude per bin (arbitrary linear units,
	// normalized to the coding-band total as in Sec 6).
	Mag []float64
}

// Resolution returns the spacing-axis bin width in meters.
func (s *Spectrum) Resolution() float64 {
	if len(s.Spacing) < 2 {
		return 0
	}
	return s.Spacing[1] - s.Spacing[0]
}

// AmplitudeAt returns the maximum magnitude within +/- tol meters of the
// given spacing.
func (s *Spectrum) AmplitudeAt(spacing, tol float64) float64 {
	res := s.Resolution()
	if res == 0 {
		return 0
	}
	center := int(math.Round(spacing / res))
	hw := int(math.Ceil(tol / res))
	return dsp.MaxAround(s.Mag, center, hw)
}

// SpectrumOptions controls ComputeSpectrum.
type SpectrumOptions struct {
	// Lambda is the signal wavelength in meters (required).
	Lambda float64
	// Window tapers the u-domain samples; Hann by default.
	Window dsp.Window
	// OversampleFactor zero-pads the FFT by this factor for a finer
	// spacing axis (default 8).
	OversampleFactor int
	// GridPoints is the number of uniform u samples to interpolate onto
	// (default: next power of two >= 2x input length, min 256).
	GridPoints int
	// DetrendHalfWindow is the moving-average half window (in grid
	// samples) used to strip the single-stack envelope r_T(theta) before
	// the FFT (default: GridPoints/DetrendDivisor).
	DetrendHalfWindow int
	// DetrendDivisor sets the default half window as a fraction of the
	// grid (default 16). Amplitude-sensitive decoders (ASK) use a smaller
	// divisor — a wider average — because a short window leaves tone
	// residue in the envelope estimate and the division then distorts
	// relative peak amplitudes.
	DetrendDivisor int
	// DisableDetrend skips envelope removal entirely (mean subtraction
	// only); used by the detrending ablation.
	DisableDetrend bool
}

// ComputeSpectrum turns non-uniform RCS samples (u_i, rss_i) into the RCS
// frequency spectrum: resample onto a uniform u grid, strip the slowly
// varying envelope, window, zero-pad, FFT, and rescale the axis to stack
// spacing. Only non-negative spacings are returned (the RSS is real, so the
// spectrum is symmetric).
func ComputeSpectrum(u, rss []float64, opts SpectrumOptions) (*Spectrum, error) {
	if opts.Lambda <= 0 {
		return nil, fmt.Errorf("coding: %w: spectrum requires a positive wavelength, got %g", roserr.ErrConfig, opts.Lambda)
	}
	if len(u) != len(rss) {
		return nil, fmt.Errorf("coding: %w: %d u samples vs %d rss samples", roserr.ErrConfig, len(u), len(rss))
	}
	if len(u) < 8 {
		return nil, fmt.Errorf("coding: %w: need at least 8 samples, got %d", roserr.ErrUndecodable, len(u))
	}
	uMin, _ := dsp.Min(u)
	uMax, _ := dsp.Max(u)
	if uMax-uMin < 1e-6 {
		return nil, fmt.Errorf("coding: %w: degenerate u span [%g, %g]", roserr.ErrUndecodable, uMin, uMax)
	}
	n := opts.GridPoints
	if n == 0 {
		n = dsp.NextPow2(2 * len(u))
		if n < 256 {
			n = 256
		}
	}
	grid, vals, err := dsp.Resample(u, rss, uMin, uMax, n)
	if err != nil {
		return nil, err
	}
	var det []float64
	if opts.DisableDetrend {
		det = append([]float64(nil), vals...)
	} else {
		hw := opts.DetrendHalfWindow
		if hw == 0 {
			div := opts.DetrendDivisor
			if div == 0 {
				div = 16
			}
			hw = n / div
		}
		det, _ = dsp.Detrend(vals, hw)
	}
	// Non-finite samples — NaN/Inf in the input, or envelope division
	// overflowing on extreme magnitudes — would smear NaN across every FFT
	// bin and surface as a "decoded" read of garbage. Reject them here.
	for _, v := range det {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("coding: %w: non-finite RCS series after envelope removal", roserr.ErrUndecodable)
		}
	}
	mean := dsp.Mean(det)
	for i := range det {
		det[i] -= mean
	}
	opts.Window.ApplyFloat(det)

	over := opts.OversampleFactor
	if over == 0 {
		over = 8
	}
	m := dsp.NextPow2(n * over)
	x := make([]complex128, m)
	for i, v := range det {
		x[i] = complex(v, 0)
	}
	dsp.FFTInPlace(x)
	du := grid[1] - grid[0]
	mag := make([]float64, m/2)
	dsp.MagnitudeInto(mag, x[:m/2])
	spacing := make([]float64, m/2)
	for i := range spacing {
		// Bin i is frequency i/(m*du) cycles per unit u; a stack at
		// distance d contributes the tone 2*d/lambda, so d = f*lambda/2.
		spacing[i] = float64(i) / (float64(m) * du) * opts.Lambda / 2
	}
	return &Spectrum{Spacing: spacing, Mag: mag}, nil
}
