package coding

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"ros/internal/roserr"
)

// FuzzDecode feeds the spectral decoder arbitrary (u, rss) sample series and
// asserts its contract: no panics or hangs, every failure is a typed error
// (ErrConfig or ErrUndecodable via errors.Is), and every success carries the
// right number of bits with finite noise statistics — a NaN smuggled through
// the resample/detrend/FFT chain must never surface as a "decoded" read.
func FuzzDecode(f *testing.F) {
	// Seed with a clean synthetic read so the fuzzer starts from the happy
	// path: a "1011" tag's multi-stack gain sampled across the pass.
	bits, _ := ParseBits("1011")
	layout, _ := NewLayout(bits, DefaultDelta())
	pos := layout.Positions()
	const lambda = 0.0037948
	clean := make([]byte, 0, 64*16)
	for i := 0; i < 64; i++ {
		u := -0.55 + 1.1*float64(i)/63
		var ub, rb [8]byte
		binary.LittleEndian.PutUint64(ub[:], math.Float64bits(u))
		binary.LittleEndian.PutUint64(rb[:], math.Float64bits(MultiStackGain(pos, u, lambda)))
		clean = append(clean, ub[:]...)
		clean = append(clean, rb[:]...)
	}
	f.Add(clean, uint8(4))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint8(2))
	// Non-finite RSS and duplicate-u corpus entries.
	nan := make([]byte, 16*16)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint64(nan[i*16:], math.Float64bits(0.1))
		binary.LittleEndian.PutUint64(nan[i*16+8:], math.Float64bits(math.NaN()))
	}
	f.Add(nan, uint8(4))

	f.Fuzz(func(t *testing.T, data []byte, nbits uint8) {
		pairs := len(data) / 16
		if pairs > 512 {
			pairs = 512
		}
		u := make([]float64, pairs)
		rss := make([]float64, pairs)
		for i := 0; i < pairs; i++ {
			u[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*16:]))
			rss[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*16+8:]))
		}
		b := int(nbits)%8 + 1
		dec, err := NewDecoder(b, DefaultDelta(), lambda)
		if err != nil {
			t.Fatalf("NewDecoder(%d) rejected valid params: %v", b, err)
		}
		res, err := dec.Decode(u, rss)
		if err != nil {
			if !errors.Is(err, roserr.ErrConfig) && !errors.Is(err, roserr.ErrUndecodable) {
				t.Fatalf("Decode returned untyped error %v", err)
			}
			return
		}
		if len(res.Bits) != b {
			t.Fatalf("decoded %d bits, want %d", len(res.Bits), b)
		}
		if len(res.PeakAmps) != b {
			t.Fatalf("got %d peak amps, want %d", len(res.PeakAmps), b)
		}
		allFinite := true
		for i := range u {
			if math.IsNaN(u[i]) || math.IsInf(u[i], 0) || math.IsNaN(rss[i]) || math.IsInf(rss[i], 0) {
				allFinite = false
				break
			}
		}
		if !allFinite {
			return // garbage in, bounded garbage out — the typed-error and shape checks above still ran
		}
		if math.IsNaN(res.NoiseMean) || math.IsNaN(res.NoiseStd) {
			t.Fatalf("finite input produced NaN noise stats: mean=%g std=%g", res.NoiseMean, res.NoiseStd)
		}
		for i, a := range res.PeakAmps {
			if math.IsNaN(a) {
				t.Fatalf("finite input produced NaN peak amp at slot %d", i)
			}
		}
	})
}
