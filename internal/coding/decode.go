package coding

import (
	"fmt"
	"math"

	"ros/internal/dsp"
	"ros/internal/roserr"
)

// Decoder reads bits back out of measured RCS samples. It knows the code
// parameters (unit spacing, bit count, wavelength) that are fixed at tag
// fabrication time and published to vehicles, mirroring Sec 5.2.
type Decoder struct {
	// Bits is the number of coding bit slots (M-1).
	Bits int
	// Delta is the unit spacing delta_c in meters.
	Delta float64
	// Lambda is the radar wavelength in meters.
	Lambda float64
	// PeakTolerance is the search half-width around each designed peak
	// position, in meters (default: 0.35 * Delta).
	PeakTolerance float64
	// Spectrum options (window, oversampling) pass through to
	// ComputeSpectrum.
	Options SpectrumOptions
}

// NewDecoder returns a decoder for tags with the given bit count, unit
// spacing, and wavelength.
func NewDecoder(bits int, delta, lambda float64) (*Decoder, error) {
	if bits < 1 {
		return nil, fmt.Errorf("coding: %w: decoder needs at least 1 bit slot, got %d", roserr.ErrConfig, bits)
	}
	if delta <= 0 || lambda <= 0 {
		return nil, fmt.Errorf("coding: %w: decoder requires positive delta and lambda (got %g, %g)", roserr.ErrConfig, delta, lambda)
	}
	return &Decoder{
		Bits:          bits,
		Delta:         delta,
		Lambda:        lambda,
		PeakTolerance: 0.35 * delta,
		Options:       SpectrumOptions{Lambda: lambda, Window: dsp.Hann},
	}, nil
}

// Result is a decoded tag read.
type Result struct {
	// Bits are the decoded coding bits.
	Bits []bool
	// PeakAmps holds the measured spectrum amplitude at each coding slot,
	// normalized by the coding-band mean as in Sec 6.
	PeakAmps []float64
	// NoiseMean and NoiseStd describe the coding-band bins away from the
	// designed peak positions.
	NoiseMean, NoiseStd float64
	// SNRdB is the decoding SNR (mu1 - mu0)^2 / sigma^2 of Sec 7.1 in dB.
	SNRdB float64
	// BER is the OOK bit error rate implied by SNRdB.
	BER float64
	// Spectrum is the underlying RCS frequency spectrum.
	Spectrum *Spectrum
}

// Decode converts RCS samples (u_i = cos(theta_i), rss_i) into bits.
func (d *Decoder) Decode(u, rss []float64) (*Result, error) {
	opts := d.Options
	if opts.Lambda == 0 {
		opts.Lambda = d.Lambda
	}
	spec, err := ComputeSpectrum(u, rss, opts)
	if err != nil {
		return nil, err
	}
	return d.DecodeSpectrum(spec)
}

// DecodeSpectrum runs the bit decision on an already-computed spectrum.
func (d *Decoder) DecodeSpectrum(spec *Spectrum) (*Result, error) {
	res := spec.Resolution()
	if res <= 0 {
		return nil, fmt.Errorf("coding: %w: spectrum has no resolution", roserr.ErrUndecodable)
	}
	m := d.Bits + 1
	// Designed |d_k| for each slot.
	slots := make([]float64, d.Bits)
	for k := 1; k <= d.Bits; k++ {
		slots[k-1] = float64(m+k-2) * d.Delta
	}
	bandLo := slots[0] - d.PeakTolerance
	bandHi := slots[d.Bits-1] + d.PeakTolerance

	// Normalize by the overall power within the coding band (Sec 6).
	var bandSum float64
	var bandCount int
	for i, s := range spec.Spacing {
		if s >= bandLo && s <= bandHi {
			bandSum += spec.Mag[i]
			bandCount++
		}
	}
	if bandCount == 0 {
		return nil, fmt.Errorf("coding: %w: spectrum does not cover the coding band [%g, %g] m", roserr.ErrUndecodable, bandLo, bandHi)
	}
	norm := bandSum / float64(bandCount)
	if norm <= 0 {
		return nil, fmt.Errorf("coding: %w: coding band has no energy", roserr.ErrUndecodable)
	}

	// Peak amplitudes at the designed positions.
	amps := make([]float64, d.Bits)
	for i, s := range slots {
		amps[i] = spec.AmplitudeAt(s, d.PeakTolerance) / norm
	}

	// Noise statistics from coding-band bins away from any slot.
	var noise []float64
	for i, s := range spec.Spacing {
		if s < bandLo || s > bandHi {
			continue
		}
		nearSlot := false
		for _, c := range slots {
			if math.Abs(s-c) < 2*d.PeakTolerance {
				nearSlot = true
				break
			}
		}
		if !nearSlot {
			noise = append(noise, spec.Mag[i]/norm)
		}
	}
	noiseMean := dsp.Mean(noise)
	noiseStd := dsp.StdDev(noise)
	if noiseStd <= 0 {
		noiseStd = 1e-12
	}

	// Bit decision: a slot is "1" when its amplitude rises clearly above
	// the in-band noise AND above a fraction of the strongest peak — the
	// second criterion separates genuine peaks from windowing leakage when
	// the read is nearly noiseless.
	maxAmp, _ := dsp.Max(amps)
	threshold := noiseMean + 5*noiseStd
	if rel := 0.35 * maxAmp; rel > threshold && maxAmp > noiseMean+8*noiseStd {
		threshold = rel
	}
	bits := make([]bool, d.Bits)
	var ones, zeros []float64
	for i, a := range amps {
		if a > threshold {
			bits[i] = true
			ones = append(ones, a)
		} else {
			zeros = append(zeros, a)
		}
	}

	// Decoding SNR per Sec 7.1: (mu1 - mu0)^2 / sigma^2 with sigma the
	// amplitude standard deviation. mu0/sigma come from the in-band noise;
	// the spread of the "1" peaks adds to sigma when more than one is
	// present.
	mu1 := dsp.Mean(ones)
	mu0 := noiseMean
	if len(zeros) > 0 {
		mu0 = (dsp.Mean(zeros)*float64(len(zeros)) + noiseMean*float64(len(noise))) /
			float64(len(zeros)+len(noise))
	}
	sigma := noiseStd
	if len(ones) > 1 {
		s1 := dsp.StdDev(ones)
		sigma = math.Sqrt((sigma*sigma + s1*s1) / 2)
	}
	snrLin := 0.0
	if len(ones) > 0 {
		snrLin = dsp.DecodingSNR(mu1, mu0, sigma)
	}
	snrDB := dsp.DB(snrLin)

	return &Result{
		Bits:      bits,
		PeakAmps:  amps,
		NoiseMean: noiseMean,
		NoiseStd:  noiseStd,
		SNRdB:     snrDB,
		BER:       dsp.OOKBer(snrLin),
		Spectrum:  spec,
	}, nil
}

// BitsEqual reports whether two bit strings match.
func BitsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BitsString formats bits as a "1011"-style string.
func BitsString(bits []bool) string {
	out := make([]byte, len(bits))
	for i, b := range bits {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// ParseBits parses a "1011"-style string.
func ParseBits(s string) ([]bool, error) {
	if s == "" {
		return nil, fmt.Errorf("coding: %w: empty bit string", roserr.ErrConfig)
	}
	out := make([]bool, len(s))
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			out[i] = true
		default:
			return nil, fmt.Errorf("coding: %w: invalid bit %q at position %d", roserr.ErrConfig, c, i)
		}
	}
	return out, nil
}
