package coding

import (
	"fmt"
	"math"

	"ros/internal/dsp"
)

// ASK multi-level spatial coding, the Sec 8 capacity extension: "The RCS
// levels of each encoding bit '1' can be adjusted by varying the number of
// PSVAAs within a stack. Multiple RCS levels can enable ASK modulation which
// can improve the encoding capacity by multi-folds."
//
// A slot's spectrum-peak amplitude is proportional to the mounted stack's
// field amplitude, i.e. to its module count, so quantized module counts
// carry log2(levels) bits per slot. The decoder normalizes by the strongest
// peak, so every codeword must contain at least one full-scale symbol (a
// pilot) — NewASKLayout enforces this.

// ASKLayout is a multi-level spatial code.
type ASKLayout struct {
	// Symbols holds one level per coding slot, 0..Levels-1; level 0 means
	// no stack mounted.
	Symbols []int
	// Levels is the alphabet size (a power of two >= 2).
	Levels int
	// Delta is the unit spacing in meters.
	Delta float64
}

// NewASKLayout builds a multi-level code. At least one symbol must be at
// full scale (Levels-1) to serve as the amplitude pilot.
func NewASKLayout(symbols []int, levels int, delta float64) (*ASKLayout, error) {
	if len(symbols) == 0 {
		return nil, fmt.Errorf("coding: empty ASK symbol string")
	}
	if levels < 2 || levels&(levels-1) != 0 {
		return nil, fmt.Errorf("coding: ASK levels must be a power of two >= 2, got %d", levels)
	}
	if delta <= 0 {
		return nil, fmt.Errorf("coding: non-positive unit spacing %g", delta)
	}
	pilot := false
	for i, s := range symbols {
		if s < 0 || s >= levels {
			return nil, fmt.Errorf("coding: symbol %d at slot %d outside 0..%d", s, i, levels-1)
		}
		if s == levels-1 {
			pilot = true
		}
	}
	if !pilot {
		return nil, fmt.Errorf("coding: ASK codeword needs at least one full-scale pilot symbol (%d)", levels-1)
	}
	return &ASKLayout{Symbols: append([]int(nil), symbols...), Levels: levels, Delta: delta}, nil
}

// M returns the maximum stack count (reference + slots).
func (l *ASKLayout) M() int { return len(l.Symbols) + 1 }

// BitsPerSlot returns log2(Levels).
func (l *ASKLayout) BitsPerSlot() int {
	b := 0
	for v := l.Levels; v > 1; v >>= 1 {
		b++
	}
	return b
}

// Capacity returns the total bits carried.
func (l *ASKLayout) Capacity() int { return len(l.Symbols) * l.BitsPerSlot() }

// slotPosition mirrors Layout.SlotPosition for the ASK geometry.
func (l *ASKLayout) slotPosition(k int) float64 {
	if k < 1 || k > len(l.Symbols) {
		panic(fmt.Sprintf("coding: ASK slot %d outside 1..%d", k, len(l.Symbols)))
	}
	sign := 1.0
	if k%2 == 0 {
		sign = -1
	}
	return sign * float64(l.M()+k-2) * l.Delta
}

// PositionsAndWeights returns the mounted stack positions and their relative
// field amplitudes (reference stack at full scale 1).
func (l *ASKLayout) PositionsAndWeights() (positions, weights []float64) {
	positions = []float64{0}
	weights = []float64{1}
	full := float64(l.Levels - 1)
	for k, s := range l.Symbols {
		if s == 0 {
			continue
		}
		positions = append(positions, l.slotPosition(k+1))
		weights = append(weights, float64(s)/full)
	}
	return
}

// WeightedMultiStackGain generalizes Eq 6 to per-stack field weights:
// |sum_k w_k exp(i*4*pi*d_k*u/lambda)|^2.
func WeightedMultiStackGain(positions, weights []float64, u, lambda float64) float64 {
	if len(positions) != len(weights) {
		panic(fmt.Sprintf("coding: %d positions vs %d weights", len(positions), len(weights)))
	}
	var re, im float64
	k := 4 * math.Pi * u / lambda
	for i, d := range positions {
		re += weights[i] * math.Cos(k*d)
		im += weights[i] * math.Sin(k*d)
	}
	return re*re + im*im
}

// ASKDecoder recovers multi-level symbols from RCS samples.
type ASKDecoder struct {
	// Slots is the coding slot count.
	Slots int
	// Levels is the alphabet size.
	Levels int
	// Delta is the unit spacing in meters.
	Delta float64
	// Lambda is the radar wavelength.
	Lambda float64
	// PeakTolerance is the per-slot search half-width (default 0.35*Delta).
	PeakTolerance float64
	// Options pass through to ComputeSpectrum.
	Options SpectrumOptions
}

// NewASKDecoder builds a decoder for the given geometry.
func NewASKDecoder(slots, levels int, delta, lambda float64) (*ASKDecoder, error) {
	if slots < 1 {
		return nil, fmt.Errorf("coding: ASK decoder needs at least 1 slot, got %d", slots)
	}
	if levels < 2 || levels&(levels-1) != 0 {
		return nil, fmt.Errorf("coding: ASK levels must be a power of two >= 2, got %d", levels)
	}
	if delta <= 0 || lambda <= 0 {
		return nil, fmt.Errorf("coding: ASK decoder requires positive delta and lambda")
	}
	return &ASKDecoder{
		Slots:         slots,
		Levels:        levels,
		Delta:         delta,
		Lambda:        lambda,
		PeakTolerance: 0.35 * delta,
		// DetrendDivisor 4: a wide envelope average preserves the relative
		// peak amplitudes the level decisions depend on.
		Options: SpectrumOptions{Lambda: lambda, Window: dsp.Hann, DetrendDivisor: 4},
	}, nil
}

// ASKResult is a decoded multi-level read.
type ASKResult struct {
	// Symbols are the recovered levels.
	Symbols []int
	// Amps are the measured normalized peak amplitudes per slot
	// (full scale = 1).
	Amps []float64
	// MarginDB is the worst-case decision margin: the gap between the
	// noisiest measured amplitude and its nearest decision boundary,
	// relative to the level spacing, in dB (higher is safer).
	MarginDB float64
}

// Decode recovers symbols from samples (u_i, rss_i).
func (d *ASKDecoder) Decode(u, rss []float64) (*ASKResult, error) {
	opts := d.Options
	if opts.Lambda == 0 {
		opts.Lambda = d.Lambda
	}
	spec, err := ComputeSpectrum(u, rss, opts)
	if err != nil {
		return nil, err
	}
	m := d.Slots + 1
	amps := make([]float64, d.Slots)
	for k := 1; k <= d.Slots; k++ {
		pos := float64(m+k-2) * d.Delta
		amps[k-1] = spec.AmplitudeAt(pos, d.PeakTolerance)
	}
	full, _ := dsp.Max(amps)
	if full <= 0 {
		return nil, fmt.Errorf("coding: no energy at any ASK slot")
	}

	symbols := make([]int, d.Slots)
	norm := make([]float64, d.Slots)
	step := 1 / float64(d.Levels-1)
	worst := math.Inf(1)
	for i, a := range amps {
		v := a / full
		norm[i] = v
		lvl := int(math.Round(v / step))
		if lvl < 0 {
			lvl = 0
		}
		if lvl > d.Levels-1 {
			lvl = d.Levels - 1
		}
		symbols[i] = lvl
		margin := step/2 - math.Abs(v-float64(lvl)*step)
		if margin < worst {
			worst = margin
		}
	}
	marginDB := math.Inf(-1)
	if worst > 0 {
		marginDB = 20 * math.Log10(worst/(step/2))
	}
	return &ASKResult{Symbols: symbols, Amps: norm, MarginDB: marginDB}, nil
}

// SymbolsEqual reports whether two symbol strings match.
func SymbolsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
