// Package signs gives RoS bit patterns road-sign semantics — the layer
// Fig 1 of the paper sketches ("Coding Bit 1111 -> Traffic Light Ahead!") —
// and packs longer, error-protected messages across multiple tags, combining
// the Sec 5.3 side-by-side deployment with the Sec 8 suggestion of error
// correction.
package signs

import (
	"fmt"

	"ros/internal/coding"
)

// Sign is a roadside message a 4-bit tag can carry.
type Sign int

// The 4-bit sign catalog. Code 0000 is reserved (an all-absent tag has no
// coding stacks to detect).
const (
	SignReserved Sign = iota
	SignSpeedLimit25
	SignSpeedLimit35
	SignSpeedLimit45
	SignSpeedLimit55
	SignSpeedLimit65
	SignStopAhead
	SignYieldAhead
	SignCrosswalkAhead
	SignSchoolZone
	SignLaneEndsMerge
	SignSharpCurve
	SignRoadWorkAhead
	SignLowClearance
	SignRailroadCrossing
	SignTrafficLightAhead // 1111, the paper's Fig 1 example
)

// String names the sign.
func (s Sign) String() string {
	names := [...]string{
		"reserved",
		"speed limit 25",
		"speed limit 35",
		"speed limit 45",
		"speed limit 55",
		"speed limit 65",
		"stop ahead",
		"yield ahead",
		"crosswalk ahead",
		"school zone",
		"lane ends, merge",
		"sharp curve",
		"road work ahead",
		"low clearance",
		"railroad crossing",
		"traffic light ahead",
	}
	if s < 0 || int(s) >= len(names) {
		return "unknown"
	}
	return names[s]
}

// Bits returns the 4-bit tag pattern for the sign, most significant bit
// first.
func (s Sign) Bits() (string, error) {
	if s <= SignReserved || s > SignTrafficLightAhead {
		return "", fmt.Errorf("signs: %d is not an encodable sign", s)
	}
	v := int(s)
	out := make([]byte, 4)
	for i := 0; i < 4; i++ {
		if v&(8>>i) != 0 {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out), nil
}

// Parse recovers the sign from decoded tag bits.
func Parse(bits string) (Sign, error) {
	b, err := coding.ParseBits(bits)
	if err != nil {
		return SignReserved, err
	}
	if len(b) != 4 {
		return SignReserved, fmt.Errorf("signs: need 4 bits, got %d", len(b))
	}
	v := 0
	for i, bit := range b {
		if bit {
			v |= 8 >> i
		}
	}
	if v == 0 {
		return SignReserved, fmt.Errorf("signs: 0000 is reserved")
	}
	return Sign(v), nil
}

// EncodeMessage packs an arbitrary byte message onto 5-bit tags with
// Hamming(7,4) protection: each nibble becomes a 7-bit codeword plus an
// overall parity bit (8 bits), carried by two 5-bit tags. Each tag holds 4
// payload bits and a forced-one trailing bit, so no tag is ever the
// undetectable all-absent pattern, and a flip of the forced bit is directly
// detectable while a flip of any payload bit is a single codeword error the
// Hamming decoder corrects.
func EncodeMessage(data []byte) ([]string, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("signs: empty message")
	}
	var tags []string
	for _, b := range data {
		for _, nibble := range [2]byte{b >> 4, b & 0x0f} {
			bits := []bool{nibble&8 != 0, nibble&4 != 0, nibble&2 != 0, nibble&1 != 0}
			code, err := coding.HammingEncode(bits)
			if err != nil {
				return nil, err
			}
			// Append an overall parity bit, then frame 4+4 payload bits
			// into two 5-bit tags with forced-one trailers.
			parity := false
			for _, c := range code {
				parity = parity != c
			}
			word := append(append([]bool(nil), code...), parity)
			tags = append(tags, frameTag(word[:4]), frameTag(word[4:]))
		}
	}
	return tags, nil
}

// frameTag appends the forced-one trailer to 4 payload bits.
func frameTag(payload []bool) string {
	return coding.BitsString(append(append([]bool(nil), payload...), true))
}

// DecodeMessage reassembles a byte message from decoded tag bit strings,
// correcting single-bit errors per tag pair. It returns the message and the
// number of corrected bits.
func DecodeMessage(tags []string) (data []byte, corrected int, err error) {
	if len(tags) == 0 || len(tags)%4 != 0 {
		return nil, 0, fmt.Errorf("signs: need a multiple of 4 tags (2 per nibble, 2 nibbles per byte), got %d", len(tags))
	}
	var nibbles []byte
	for i := 0; i+1 < len(tags); i += 2 {
		hi, fixHi, err := unframeTag(tags[i])
		if err != nil {
			return nil, 0, fmt.Errorf("signs: tag %d: %w", i, err)
		}
		lo, fixLo, err := unframeTag(tags[i+1])
		if err != nil {
			return nil, 0, fmt.Errorf("signs: tag %d: %w", i+1, err)
		}
		corrected += fixHi + fixLo
		word := append(append([]bool(nil), hi...), lo...)
		nib, fixes, err := decodeProtectedNibble(word)
		if err != nil {
			return nil, 0, err
		}
		corrected += fixes
		nibbles = append(nibbles, nib)
	}
	data = make([]byte, len(nibbles)/2)
	for i := range data {
		data[i] = nibbles[2*i]<<4 | nibbles[2*i+1]
	}
	return data, corrected, nil
}

// unframeTag strips a 5-bit tag's forced-one trailer, reporting 1 fix when
// the trailer itself was flipped (the payload is then known-clean).
func unframeTag(tag string) (payload []bool, fixes int, err error) {
	bits, err := coding.ParseBits(tag)
	if err != nil {
		return nil, 0, err
	}
	if len(bits) != 5 {
		return nil, 0, fmt.Errorf("signs: message tags carry 5 bits, got %d", len(bits))
	}
	if !bits[4] {
		fixes = 1 // the forced bit flipped; payload bits are intact
	}
	return bits[:4], fixes, nil
}

// decodeProtectedNibble decodes one 8-bit (codeword + parity) word.
func decodeProtectedNibble(word []bool) (byte, int, error) {
	code := word[:7]
	parity := word[7]
	want := false
	for _, c := range code {
		want = want != c
	}
	bits, fixed, err := coding.HammingDecode(code)
	if err != nil {
		return 0, 0, err
	}
	fixes := 0
	if fixed != 0 {
		fixes = 1
	} else if want != parity {
		// The error hit the parity bit itself; the codeword is clean.
		fixes = 1
	}
	var nib byte
	for i, b := range bits {
		if b {
			nib |= 8 >> i
		}
	}
	return nib, fixes, nil
}
