package signs

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSignBitsRoundTrip(t *testing.T) {
	for s := SignSpeedLimit25; s <= SignTrafficLightAhead; s++ {
		bits, err := s.Bits()
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		back, err := Parse(bits)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if back != s {
			t.Errorf("%v -> %q -> %v", s, bits, back)
		}
	}
}

func TestFig1Example(t *testing.T) {
	// Fig 1: "Coding Bit 1111 -> Traffic Light Ahead!".
	bits, err := SignTrafficLightAhead.Bits()
	if err != nil {
		t.Fatal(err)
	}
	if bits != "1111" {
		t.Errorf("traffic light ahead = %q, want 1111", bits)
	}
	s, err := Parse("1111")
	if err != nil {
		t.Fatal(err)
	}
	if s != SignTrafficLightAhead {
		t.Errorf("1111 parsed as %v", s)
	}
	if s.String() != "traffic light ahead" {
		t.Errorf("name = %q", s.String())
	}
}

func TestReservedAndInvalid(t *testing.T) {
	if _, err := SignReserved.Bits(); err == nil {
		t.Error("reserved sign encodable")
	}
	if _, err := Sign(99).Bits(); err == nil {
		t.Error("out-of-range sign encodable")
	}
	if _, err := Parse("0000"); err == nil {
		t.Error("0000 parsed")
	}
	if _, err := Parse("111"); err == nil {
		t.Error("3-bit string parsed")
	}
	if _, err := Parse("11x1"); err == nil {
		t.Error("invalid characters parsed")
	}
	if Sign(99).String() != "unknown" {
		t.Error("out-of-range name")
	}
}

func TestEncodeMessageShape(t *testing.T) {
	tags, err := EncodeMessage([]byte("Go"))
	if err != nil {
		t.Fatal(err)
	}
	// 2 bytes -> 4 nibbles -> 8 tags.
	if len(tags) != 8 {
		t.Fatalf("got %d tags, want 8", len(tags))
	}
	for i, tag := range tags {
		if len(tag) != 5 {
			t.Errorf("tag %d = %q, want 5 bits", i, tag)
		}
		if tag == "00000" {
			t.Errorf("tag %d is the undetectable all-absent pattern", i)
		}
	}
}

func TestMessageRoundTrip(t *testing.T) {
	msg := []byte("SPEED LIMIT 65 / school zone 0700-1600")
	tags, err := EncodeMessage(msg)
	if err != nil {
		t.Fatal(err)
	}
	back, corrected, err := DecodeMessage(tags)
	if err != nil {
		t.Fatal(err)
	}
	if corrected != 0 {
		t.Errorf("clean message reported %d corrections", corrected)
	}
	if !bytes.Equal(back, msg) {
		t.Errorf("round trip failed: %q -> %q", msg, back)
	}
}

func TestMessageCorrectsSingleBitPerPair(t *testing.T) {
	// Any single flipped bit anywhere in a 10-bit tag pair — payload,
	// parity, or forced trailer — must be corrected.
	f := func(b byte, flip uint8) bool {
		tags, err := EncodeMessage([]byte{b})
		if err != nil {
			return false
		}
		pos := int(flip % 10)
		pair := tags[0] + tags[1]
		flipped := []byte(pair)
		if flipped[pos] == '0' {
			flipped[pos] = '1'
		} else {
			flipped[pos] = '0'
		}
		tags[0], tags[1] = string(flipped[:5]), string(flipped[5:])
		back, corrected, err := DecodeMessage(tags)
		if err != nil {
			return false
		}
		return corrected >= 1 && len(back) == 1 && back[0] == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMessageCorrectsParityBitError(t *testing.T) {
	tags, err := EncodeMessage([]byte{0xA7})
	if err != nil {
		t.Fatal(err)
	}
	// The overall parity bit is the 4th payload bit of the second tag.
	flipped := []byte(tags[1])
	if flipped[3] == '0' {
		flipped[3] = '1'
	} else {
		flipped[3] = '0'
	}
	tags[1] = string(flipped)
	back, corrected, err := DecodeMessage(tags)
	if err != nil {
		t.Fatal(err)
	}
	if corrected != 1 || back[0] != 0xA7 {
		t.Errorf("parity-bit error: corrected=%d back=%x", corrected, back)
	}
}

func TestDecodeMessageErrors(t *testing.T) {
	if _, _, err := DecodeMessage(nil); err == nil {
		t.Error("empty tags accepted")
	}
	if _, _, err := DecodeMessage([]string{"11111", "00001"}); err == nil {
		t.Error("non-multiple-of-4 accepted")
	}
	if _, _, err := DecodeMessage([]string{"11x11", "00001", "11111", "00001"}); err == nil {
		t.Error("malformed bits accepted")
	}
	if _, _, err := DecodeMessage([]string{"1111", "00001", "11111", "00001"}); err == nil {
		t.Error("4-bit tag accepted")
	}
}

func TestEncodeMessageErrors(t *testing.T) {
	if _, err := EncodeMessage(nil); err == nil {
		t.Error("empty message accepted")
	}
}
