// Package engine ties the per-layer resource handles — dsp.PlanSet,
// radar.Session, scene.ResponseCache, radar.ScanStatePool — into one Engine
// owning every piece of memoized state a radar+scene configuration
// accumulates: transform plans, steering tables, scene-response memos,
// pooled frame buffers, and scan states. An Engine is constructed once per
// configuration handle, passed explicitly through the simulation and
// detection layers, and released deterministically with Close, which drops
// the caches and their metric label sets in one step. Code without a handle
// keeps using the per-package default caches; an Engine never shares state
// with them or with another Engine.
package engine

import (
	"fmt"
	"sync/atomic"

	"ros/internal/dsp"
	"ros/internal/obs"
	"ros/internal/radar"
	"ros/internal/scene"
)

// cacheEntries is the one labeled gauge every engine-owned cache reports
// under, replacing the per-cache global gauges of the default handles. The
// capacity bounds label-set growth from engine churn; Close deletes an
// engine's sets, so only leaked engines consume it permanently.
var cacheEntries = obs.Default.GaugeVecCapacity(
	"ros_engine_cache_entries",
	"Resident entries per engine-owned cache.",
	1024,
	"cache", "engine",
)

// nextID numbers anonymous engines.
var nextID atomic.Uint64

// Engine owns the memoized state for one radar+scene configuration. The
// exported handles are immutable after New; the Engine is safe for
// concurrent use, including Close racing in-flight reads (values already
// handed out stay valid — Close only drops cache entries and metrics).
type Engine struct {
	id string
	// Plans owns the transform memo caches (fused window+FFT plans, window
	// tables, twiddle tables, chirp plans).
	Plans *dsp.PlanSet
	// Session owns the radar memo caches (synthesis plans with their frame
	// pools, steering tables), drawing transforms from Plans.
	Session *radar.Session
	// Responses owns the scene-response memo.
	Responses *scene.ResponseCache
	// ScanStates recycles per-worker incremental scan states.
	ScanStates *radar.ScanStatePool

	// labels records the cache label sets registered under cacheEntries,
	// so Close can delete exactly what New created.
	labels [][]string
	closed atomic.Bool
}

// New returns a fresh Engine whose caches report under
// ros_engine_cache_entries{cache,engine=id}. An empty id is replaced with a
// unique generated one.
func New(id string) *Engine {
	if id == "" {
		id = fmt.Sprintf("engine-%d", nextID.Add(1))
	}
	e := &Engine{id: id, ScanStates: &radar.ScanStatePool{}}
	gauge := func(cache string) *obs.Gauge {
		e.labels = append(e.labels, []string{cache, e.id})
		return cacheEntries.With(cache, e.id)
	}
	e.Plans = dsp.NewPlanSet(gauge)
	e.Session = radar.NewSession(e.Plans, gauge)
	e.Responses = scene.NewResponseCache(gauge(scene.CacheResponses), 0)
	return e
}

// ID returns the engine's metric label value.
func (e *Engine) ID() string { return e.id }

// Closed reports whether Close has run.
func (e *Engine) Closed() bool { return e.closed.Load() }

// Close drops every cache the engine owns and deletes its label sets from
// the shared gauge vector. Idempotent; safe to call while reads against the
// engine are still in flight (they keep the plans and memo entries they
// already hold, and any entry repopulated by a straggler after Close only
// occupies memory until the straggler finishes — the gauges are already
// unregistered).
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	e.Responses.Clear()
	e.Session.Clear()
	e.Plans.Clear()
	for _, ls := range e.labels {
		cacheEntries.Delete(ls...)
	}
}
