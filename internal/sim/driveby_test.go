package sim

import (
	"math"
	"testing"
)

func TestBaselinePassDecodes(t *testing.T) {
	out, err := Run(DriveBy{Bits: "1111", BeamShaped: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatal("tag not detected in the baseline pass")
	}
	if !out.Correct {
		t.Fatalf("decoded %q, want 1111 (SNR %g dB)", out.Bits, out.SNRdB)
	}
	// Sec 7.2: decoding SNR consistently exceeds 14 dB in typical
	// scenarios.
	if out.SNRdB < 14 {
		t.Errorf("baseline SNR = %g dB, want > 14", out.SNRdB)
	}
	if out.BER > 0.006 {
		t.Errorf("baseline BER = %g, want <= 0.6%%", out.BER)
	}
}

func TestMixedBitsPass(t *testing.T) {
	for _, bits := range []string{"1010", "1001"} {
		out, err := Run(DriveBy{Bits: bits, BeamShaped: true, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Detected || out.Bits != bits {
			t.Errorf("bits %s: detected=%v decoded=%q SNR=%g", bits, out.Detected, out.Bits, out.SNRdB)
		}
	}
}

func TestClutterDoesNotBreakDecoding(t *testing.T) {
	out, err := Run(DriveBy{Bits: "1111", BeamShaped: true, WithClutter: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected || !out.Correct {
		t.Fatalf("with clutter: detected=%v decoded=%q", out.Detected, out.Bits)
	}
	if out.SNRdB < 12 {
		t.Errorf("SNR with clutter = %g dB", out.SNRdB)
	}
}

func TestBeamShapingHelpsAtElevationOffset(t *testing.T) {
	// Fig 14: at ~3-4 deg of elevation misalignment the shaped tag keeps
	// its SNR while the unshaped baseline collapses.
	el := 3.5 * math.Pi / 180
	h := 3 * math.Tan(el)
	shaped, err := Run(DriveBy{BeamShaped: true, HeightOffset: h, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Run(DriveBy{BeamShaped: false, HeightOffset: h, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !shaped.Detected {
		t.Fatal("shaped tag lost at 3.5 deg elevation offset")
	}
	if shaped.SNRdB < 12 {
		t.Errorf("shaped SNR at offset = %g dB, want > 12", shaped.SNRdB)
	}
	if baseline.Detected && baseline.SNRdB > shaped.SNRdB {
		t.Errorf("baseline (%g dB) beat shaped (%g dB) at elevation offset", baseline.SNRdB, shaped.SNRdB)
	}
}

func TestRSSFallsWithDistance(t *testing.T) {
	// Fig 15a: the received RSS follows the d^-4 law.
	var prev = math.Inf(1)
	for _, d := range []float64{2, 3, 4} {
		out, err := Run(DriveBy{BeamShaped: true, Standoff: d, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Detected {
			t.Fatalf("tag lost at %g m", d)
		}
		if out.MedianRSSdBm >= prev {
			t.Errorf("RSS did not fall from %g to %g m", prev, out.MedianRSSdBm)
		}
		prev = out.MedianRSSdBm
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := DriveBy{}
	d.defaults()
	if d.Bits != "1111" || d.StackModules != 32 || d.Standoff != 3 || d.Speed != 2 {
		t.Errorf("defaults = %+v", d)
	}
	if math.Abs(d.HalfSpan-4.2) > 1e-9 {
		t.Errorf("half span default = %g", d.HalfSpan)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(DriveBy{Bits: "10x"}); err == nil {
		t.Error("invalid bits accepted")
	}
	if _, err := Run(DriveBy{Speed: 500}); err == nil {
		t.Error("too-fast pass (too few frames) accepted")
	}
}

func TestDeterministicOutcome(t *testing.T) {
	a, err := Run(DriveBy{BeamShaped: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DriveBy{BeamShaped: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.SNRdB != b.SNRdB || a.Bits != b.Bits || a.MedianRSSdBm != b.MedianRSSdBm {
		t.Errorf("same seed, different outcomes: %+v vs %+v", a, b)
	}
}

func TestFoVTruncationDegrades(t *testing.T) {
	// Fig 17's mechanism at the sim level: a 20-degree view cannot resolve
	// the coding peaks as well as the full view.
	narrow, err := Run(DriveBy{BeamShaped: true, FoVDeg: 20, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(DriveBy{BeamShaped: true, FoVDeg: 100, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if !narrow.Detected || !wide.Detected {
		t.Fatal("detection failed")
	}
	if narrow.SNRdB >= wide.SNRdB {
		t.Errorf("narrow FoV SNR %g >= wide %g", narrow.SNRdB, wide.SNRdB)
	}
}

func TestSecondTagStillDecodes(t *testing.T) {
	out, err := Run(DriveBy{BeamShaped: true, SecondTagSpreadDeg: 25, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected || !out.Correct {
		t.Errorf("two-tag scene: detected=%v bits=%q", out.Detected, out.Bits)
	}
}

func TestInterfererCostsALittle(t *testing.T) {
	clean, err := Run(DriveBy{BeamShaped: true, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	jammed, err := Run(DriveBy{BeamShaped: true, InterfererSeparation: 1, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if !jammed.Detected {
		t.Fatal("interferer broke detection entirely")
	}
	// The paper reports only slight degradation; allow a few dB either way
	// but not a collapse.
	if jammed.SNRdB < clean.SNRdB-8 {
		t.Errorf("interferer cost %g dB", clean.SNRdB-jammed.SNRdB)
	}
}

func TestFullBlockageLosesTag(t *testing.T) {
	out, err := Run(DriveBy{BeamShaped: true, BlockerHalfLength: 6, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected {
		t.Error("fully blocked tag still detected (Sec 7.3 says it must fail)")
	}
}

func TestRedundantTagSurvivesBlockage(t *testing.T) {
	out, err := Run(DriveBy{
		BeamShaped: true, BlockerHalfLength: 6, RedundantTagOffset: 8,
		HalfSpan: 12, FrameBudget: 520, Seed: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected || !out.Correct {
		t.Errorf("redundant tag did not rescue the read: detected=%v bits=%q", out.Detected, out.Bits)
	}
}

func TestGroundMultipathUsuallySurvives(t *testing.T) {
	out, err := Run(DriveBy{BeamShaped: true, GroundMultipath: true, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected || !out.Correct {
		t.Errorf("ground bounce broke the read: detected=%v bits=%q", out.Detected, out.Bits)
	}
}
