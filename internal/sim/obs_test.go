package sim

import (
	"bytes"
	"log/slog"
	"testing"

	"ros/internal/detect"
	"ros/internal/obs"
)

// TestRunSpanTree checks that a pass produces the documented trace shape and
// that the legacy Stats view is exactly the flattened span tree.
func TestRunSpanTree(t *testing.T) {
	out, err := Run(DriveBy{BeamShaped: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	root := out.Span
	if root == nil || root.Name() != SpanRead {
		t.Fatalf("missing %q root span", SpanRead)
	}
	det := root.Child(detect.SpanRun)
	if det == nil {
		t.Fatalf("root has no %q child", detect.SpanRun)
	}
	for _, stage := range []string{
		detect.SpanSynthesize, detect.SpanRangeFFT, detect.SpanPointCloud,
		detect.SpanCluster, detect.SpanSpotlight,
	} {
		if det.Child(stage) == nil {
			t.Errorf("detect span missing stage %q", stage)
		}
	}
	if out.Detected && root.Child(SpanDecode) == nil {
		t.Error("detected pass has no decode span")
	}
	if got := StatsFromSpan(root); got != out.Stats {
		t.Errorf("Stats diverged from span view:\n got %+v\nwant %+v", got, out.Stats)
	}
	if out.Stats.Frames == 0 || out.Stats.SynthesizeNS <= 0 || out.Stats.WallNS <= 0 {
		t.Errorf("span-derived stats look empty: %+v", out.Stats)
	}
	if det.IntAttr("fft_size") == 0 {
		t.Error("detect span has no fft_size attribute")
	}
}

// TestRunLogsUndecodable checks the previously-silent path: logging can be
// redirected per test and captures pipeline context.
func TestObsLoggerSwap(t *testing.T) {
	var buf bytes.Buffer
	prev := obs.SetLogger(slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug})))
	defer obs.SetLogger(prev)
	if _, err := Run(DriveBy{BeamShaped: true, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("detect: run complete")) {
		t.Errorf("expected pipeline debug log, got:\n%s", buf.String())
	}
}
