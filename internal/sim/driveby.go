// Package sim runs end-to-end drive-by experiments: a vehicle-mounted FMCW
// radar passes an RoS tag on a straight trajectory, detects it among
// clutter (package detect), samples its RCS over u = cos(theta), and decodes
// the spatial code (package coding). Every evaluation figure of Sec 7
// (Fig 13-18) is a parameter sweep over this runner.
package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"ros/internal/beamshape"
	"ros/internal/coding"
	"ros/internal/detect"
	"ros/internal/dsp"
	"ros/internal/em"
	"ros/internal/engine"
	"ros/internal/fault"
	"ros/internal/geom"
	"ros/internal/obs"
	"ros/internal/radar"
	"ros/internal/roserr"
	"ros/internal/scene"
	"ros/internal/stack"
	"ros/internal/track"
)

// SpanRead is the root span of one drive-by pass; SpanDecode times the
// spectral decoder. The other stages live in the adopted detect.SpanRun
// subtree.
const (
	SpanRead   = "read"
	SpanDecode = "decode"
)

// Pass-level metrics on the Default registry, one observation per pass.
var (
	mReads = obs.Default.Counter("ros_reads_total",
		"drive-by passes run")
	mDetected = obs.Default.Counter("ros_reads_detected_total",
		"passes whose tag was detected and classified")
	mUndecodable = obs.Default.Counter("ros_reads_undecodable_total",
		"passes whose detected tag failed spectral decoding")
	hWall = obs.Default.Histogram("ros_read_wall_seconds",
		"end-to-end wall time of one pass", obs.LogBuckets(1e-3, 100, 3))
	hSNR = obs.Default.Histogram("ros_read_snr_db",
		"decoding SNR of detected passes (dB)", obs.LinearBuckets(-10, 5, 13))
	hBER = obs.Default.Histogram("ros_read_ber",
		"OOK bit error rate implied by the decoding SNR", obs.LogBuckets(1e-12, 1, 1))
	mPartial = obs.Default.Counter("ros_reads_partial_total",
		"passes cut short by cancellation or frame loss beyond budget")
	mReadsByOutcome = obs.Default.CounterVec("ros_reads_by_outcome_total",
		"passes by outcome and worker-count bucket", "outcome", "workers")
	hStage = obs.Default.HistogramVec("ros_stage_seconds",
		"per-stage time of one pass (worker-summed for the frame-loop stages)",
		obs.LogBuckets(1e-4, 10, 2), "stage")
)

// Pass outcome labels for ros_reads_by_outcome_total and the flight
// recorder. "error" covers passes that failed outright (not partials, which
// keep their own label).
const (
	OutcomeOK          = "ok"
	OutcomePartial     = "partial"
	OutcomeError       = "error"
	OutcomeNoTag       = "no_tag"
	OutcomeUndecodable = "undecodable"
)

// classify maps a finished pass onto its outcome label.
func classify(out *Outcome, err error) string {
	switch {
	case out.Partial:
		return OutcomePartial
	case err != nil:
		return OutcomeError
	case !out.Detected:
		return OutcomeNoTag
	case out.Bits == "":
		return OutcomeUndecodable
	}
	return OutcomeOK
}

// fingerprint condenses the pass configuration into the short hex id flight
// entries carry. Pointer fields are rendered by value (or dropped when nil)
// and the seed is excluded — the fingerprint identifies the configuration,
// the seed identifies the read.
func fingerprint(cfg DriveBy, rcfg radar.Config) string {
	c := cfg
	c.Radar, c.Fault, c.Seed = nil, nil, 0
	parts := []string{fmt.Sprintf("%+v", c), fmt.Sprintf("%+v", rcfg)}
	if cfg.Fault != nil {
		parts = append(parts, fmt.Sprintf("%+v", *cfg.Fault))
	}
	return obs.Fingerprint(parts...)
}

// DriveBy configures one pass.
type DriveBy struct {
	// Bits is the tag's bit string (e.g. "1111").
	Bits string
	// StackModules is the number of PSVAAs per stack (8, 16 or 32).
	StackModules int
	// BeamShaped selects elevation beam shaping (Sec 4.3); the Fig 14
	// baseline sets it false.
	BeamShaped bool
	// Standoff is the radar-to-tag closest distance in meters.
	Standoff float64
	// HalfSpan is half the along-road pass length in meters (default
	// 1.4x standoff, covering ~+/-54 deg of viewing angle).
	HalfSpan float64
	// Speed is the vehicle speed in m/s (default 2, the cart of Sec 7.1).
	Speed float64
	// HeightOffset raises the radar above the tag center (elevation
	// misalignment, Fig 14).
	HeightOffset float64
	// Fog is the weather condition (Fig 16c).
	Fog em.FogLevel
	// RainMMPerHour adds rain at the given precipitation rate (Sec 7.3).
	RainMMPerHour float64
	// TrackingError is the relative self-tracking drift (Fig 16d).
	TrackingError float64
	// FoVDeg truncates the angular view of the tag (Fig 17); 0 means the
	// default 120 deg (the radar-pattern-limited view).
	FoVDeg float64
	// WithClutter adds the Fig 13 object lineup near the tag.
	WithClutter bool
	// DisablePolSwitching ablates the PSVAA design (see scene.Scene).
	DisablePolSwitching bool
	// BlockerHalfLength parks an opaque vehicle-height slab of this
	// half-length (m) halfway between the radar lane and the tag, centered
	// on the tag (Sec 7.3's blockage scenario); 0 disables it.
	BlockerHalfLength float64
	// RedundantTagOffset places a second identical tag this far down the
	// road (the paper's blockage mitigation: "installing redundant RoS
	// tags along the road"); 0 disables it.
	RedundantTagOffset float64
	// GroundMultipath adds the two-ray road-surface bounce to every path
	// (bumper-height radar over asphalt).
	GroundMultipath bool
	// SecondTagSpreadDeg places a second identical tag at this spread
	// angle seen from the closest pass point (Fig 16a); 0 disables it.
	SecondTagSpreadDeg float64
	// InterfererSeparation enables a second interrogating radar this many
	// meters away (Fig 16b); 0 disables it.
	InterfererSeparation float64
	// FrameBudget caps the number of simulated frames (processing
	// decimation; the radar's 1 kHz frame rate is far above the Nyquist
	// need of Eq 9). Default 280.
	FrameBudget int
	// Radar overrides the radar configuration (default TI1443).
	Radar *radar.Config
	// Seed drives all randomness. Equal seeds reproduce the outcome
	// exactly at any Workers setting.
	Seed int64
	// Workers is the worker count for the per-frame radar loop; 0 uses
	// GOMAXPROCS.
	Workers int
	// Fault enables deterministic fault injection in the frame loop (see
	// internal/fault); nil injects nothing. Fault decisions draw from a
	// salted seed stream, so they never perturb the physics randomness.
	Fault *fault.Config
	// MaxFrameLoss is the tolerated fraction of frames lost before the pass
	// fails with roserr.ErrFrameCorrupt; 0 uses the pipeline default (0.5).
	MaxFrameLoss float64
	// DisableIncrementalScan forces every per-frame point-cloud scan to
	// walk all range bins instead of seeding candidates from the previous
	// frame. The output is byte-identical either way (the incremental scan
	// is exact); this exists for A/B verification and perf forensics.
	DisableIncrementalScan bool
	// Engine, when non-nil, supplies the resource handle all memoized state
	// of the pass — transform plans, steering tables, scene-response memos,
	// pooled frame buffers, scan states — is drawn from and accounted
	// against; nil uses the process-wide default caches. Results are
	// byte-identical either way.
	Engine *engine.Engine
}

// Validate reports whether the pass configuration is usable. It checks the
// fields as given (before defaulting), wrapping every rejection in
// roserr.ErrConfig.
func (d DriveBy) Validate() error {
	switch {
	case d.StackModules < 0:
		return fmt.Errorf("sim: %w: negative stack modules %d", roserr.ErrConfig, d.StackModules)
	case d.Standoff < 0 || math.IsNaN(d.Standoff):
		return fmt.Errorf("sim: %w: negative standoff %g", roserr.ErrConfig, d.Standoff)
	case d.HalfSpan < 0 || math.IsNaN(d.HalfSpan):
		return fmt.Errorf("sim: %w: negative half-span %g", roserr.ErrConfig, d.HalfSpan)
	case d.Speed < 0 || math.IsNaN(d.Speed):
		return fmt.Errorf("sim: %w: negative speed %g", roserr.ErrConfig, d.Speed)
	case d.RainMMPerHour < 0 || math.IsNaN(d.RainMMPerHour):
		return fmt.Errorf("sim: %w: negative rain rate %g", roserr.ErrConfig, d.RainMMPerHour)
	case d.TrackingError < 0 || math.IsNaN(d.TrackingError):
		return fmt.Errorf("sim: %w: negative tracking error %g", roserr.ErrConfig, d.TrackingError)
	case d.FoVDeg < 0 || d.FoVDeg > 180:
		return fmt.Errorf("sim: %w: FoV %g outside [0, 180]", roserr.ErrConfig, d.FoVDeg)
	case d.FrameBudget < 0:
		return fmt.Errorf("sim: %w: negative frame budget %d", roserr.ErrConfig, d.FrameBudget)
	case d.Workers < 0:
		return fmt.Errorf("sim: %w: negative worker count %d", roserr.ErrConfig, d.Workers)
	case d.MaxFrameLoss < 0 || d.MaxFrameLoss > 1 || math.IsNaN(d.MaxFrameLoss):
		return fmt.Errorf("sim: %w: max frame loss %g outside [0, 1]", roserr.ErrConfig, d.MaxFrameLoss)
	}
	if d.Fault != nil {
		if err := d.Fault.Validate(); err != nil {
			return err
		}
	}
	if d.Radar != nil {
		if err := d.Radar.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Stats counts the work done by one pass. It is a flat view derived from
// the pass's span tree (Outcome.Span); per-stage frame-loop times are summed
// across workers (CPU time), WallNS is the end-to-end wall clock.
type Stats struct {
	// Frames is the number of radar frames synthesized (two polarization
	// modes per pose).
	Frames int
	// FFTCalls is the number of fast-time FFTs run by the range
	// transforms.
	FFTCalls int64
	// Workers is the resolved frame-loop worker count.
	Workers int
	// SynthesizeNS, RangeFFTNS and PointCloudNS are summed per-worker
	// nanoseconds of the frame loop's three stages.
	SynthesizeNS, RangeFFTNS, PointCloudNS int64
	// ClusterNS and SpotlightNS time the sequential clustering and
	// beamforming passes.
	ClusterNS, SpotlightNS int64
	// DecodeNS times the spectral decoder.
	DecodeNS int64
	// WallNS is the wall clock of the whole pass.
	WallNS int64
}

// Outcome reports one pass.
type Outcome struct {
	// Detected tells whether the tag cluster was found and classified.
	Detected bool
	// Bits is the decoded bit string (empty when undetected).
	Bits string
	// Correct tells whether Bits matches the encoded string.
	Correct bool
	// SNRdB is the decoding SNR (Sec 7.1); -Inf when undetected.
	SNRdB float64
	// BER is the OOK bit error rate implied by SNRdB.
	BER float64
	// MedianRSSdBm is the median decode-mode spotlight RSS of the tag
	// across the pass (the y axis of Fig 14a/15a).
	MedianRSSdBm float64
	// RSSLossDB is the tag's polarization loss feature.
	RSSLossDB float64
	// Samples is the number of (u, RSS) samples that reached the decoder.
	Samples int
	// Detection carries the full pipeline result for diagnostics.
	Detection *detect.Result
	// Decode carries the decoder result (nil when undetected).
	Decode *coding.Result
	// Partial marks a pass cut short by cancellation or frame loss beyond
	// the budget; the accompanying error carries the cause (it matches
	// roserr.ErrReadCancelled or roserr.ErrFrameCorrupt by errors.Is).
	Partial bool
	// FramesCompleted and FramesDropped count frame poses that produced
	// usable profiles and poses lost to faults; SamplesScrubbed counts
	// non-finite baseband samples repaired before the range transform.
	FramesCompleted, FramesDropped, SamplesScrubbed int
	// FlightSeq is the pass's sequence number in the flight recorder
	// (obs.DefaultFlight), or -1 when the sampling policy skipped it.
	FlightSeq int64
	// Span is the pass's trace tree: a "read" root adopting the "detect"
	// subtree plus a "decode" stage. Callers that do not retain it may
	// Release it to return the nodes to the span pool.
	Span *obs.Span
	// Stats counts the pass's work (a flat view of Span).
	Stats Stats
}

// StatsFromSpan flattens a pass span tree into the legacy Stats view.
func StatsFromSpan(root *obs.Span) Stats {
	if root == nil {
		return Stats{}
	}
	det := detect.StatsFromSpan(root.Child(detect.SpanRun))
	return Stats{
		Frames:       det.Frames,
		FFTCalls:     det.FFTCalls,
		Workers:      det.Workers,
		SynthesizeNS: det.SynthesizeNS,
		RangeFFTNS:   det.RangeFFTNS,
		PointCloudNS: det.PointCloudNS,
		ClusterNS:    det.ClusterNS,
		SpotlightNS:  det.SpotlightNS,
		DecodeNS:     root.ChildDuration(SpanDecode).Nanoseconds(),
		WallNS:       root.Wall().Nanoseconds(),
	}
}

// defaults fills zero-valued fields.
func (d *DriveBy) defaults() {
	if d.Bits == "" {
		d.Bits = "1111"
	}
	if d.StackModules == 0 {
		d.StackModules = 32
	}
	if d.Standoff == 0 {
		d.Standoff = 3
	}
	if d.HalfSpan == 0 {
		d.HalfSpan = 1.4 * d.Standoff
	}
	if d.Speed == 0 {
		d.Speed = 2
	}
	if d.FrameBudget == 0 {
		d.FrameBudget = 280
	}
}

// buildStack assembles the tag's vertical stack.
func buildStack(modules int, shaped bool) *stack.Stack {
	if shaped {
		return beamshape.Shaped(modules)
	}
	return stack.NewUniform(modules)
}

// Run executes the pass without cancellation; see RunContext.
func Run(cfg DriveBy) (*Outcome, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes the pass under ctx. Cancellation is cooperative at
// frame and stage boundaries: a cancelled or deadline-expired pass returns
// promptly with a partial Outcome (Partial set, frame counters filled) and
// an error matching both roserr.ErrReadCancelled and the context cause.
func RunContext(ctx context.Context, cfg DriveBy) (_ *Outcome, rerr error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := obs.StartSpan(SpanRead)
	// Release the root span on paths that never hand it to an Outcome, so
	// configuration errors do not strand pool nodes.
	adopted := false
	defer func() {
		if !adopted {
			root.Release()
		}
	}()
	cfg.defaults()
	// The root rng drives the sequential setup (clutter geometry, platform
	// vibration, tracking drift); the per-frame noise streams inside the
	// detection pipeline are derived independently from cfg.Seed, so the
	// parallel frame loop stays deterministic at any worker count.
	rng := rand.New(rand.NewSource(cfg.Seed))

	bits, err := coding.ParseBits(cfg.Bits)
	if err != nil {
		return nil, err
	}
	layout, err := coding.NewLayout(bits, coding.DefaultDelta())
	if err != nil {
		return nil, err
	}
	st := buildStack(cfg.StackModules, cfg.BeamShaped)
	tag, err := scene.NewTag(layout, st, geom.Vec3{})
	if err != nil {
		return nil, err
	}
	sc := &scene.Scene{
		Tags:                []*scene.Tag{tag},
		Fog:                 cfg.Fog,
		RainMMPerHour:       cfg.RainMMPerHour,
		DisablePolSwitching: cfg.DisablePolSwitching,
	}
	if cfg.Engine != nil {
		sc.Responses = cfg.Engine.Responses
	}
	if cfg.GroundMultipath {
		sc.Ground = scene.DefaultGround()
	}
	if cfg.BlockerHalfLength > 0 {
		sc.Blockers = append(sc.Blockers, scene.Blocker{
			X0:  -cfg.BlockerHalfLength,
			X1:  cfg.BlockerHalfLength,
			Y:   cfg.Standoff / 2,
			Top: 1.5, // a sedan-height slab relative to the radar plane
		})
	}

	if cfg.SecondTagSpreadDeg > 0 {
		off := cfg.Standoff * math.Tan(geom.Rad(cfg.SecondTagSpreadDeg))
		tag2, err := scene.NewTag(layout, st, geom.Vec3{X: off})
		if err != nil {
			return nil, err
		}
		sc.Tags = append(sc.Tags, tag2)
	}
	if cfg.RedundantTagOffset > 0 {
		spare, err := scene.NewTag(layout, st, geom.Vec3{X: cfg.RedundantTagOffset})
		if err != nil {
			return nil, err
		}
		sc.Tags = append(sc.Tags, spare)
	}
	if cfg.WithClutter {
		sc.Clutter = append(sc.Clutter,
			scene.NewObject(scene.ClassParkingMeter, geom.Vec3{X: -1.5, Y: -0.3}, rng),
			scene.NewObject(scene.ClassStreetLamp, geom.Vec3{X: 1.8, Y: -0.4}, rng),
			scene.NewObject(scene.ClassTree, geom.Vec3{X: 3.0, Y: -0.8}, rng),
		)
	}

	rcfg := radar.TI1443()
	if cfg.Radar != nil {
		rcfg = *cfg.Radar
	}
	if cfg.InterfererSeparation > 0 {
		// A second radar interrogating the same tag raises the victim's
		// noise floor; retroreflection (Fig 4b) and the angular
		// transience of specular cross-paths (Sec 7.3) keep the raise
		// small and falling with separation.
		rcfg.FrontEnd.NoiseFigureDB += 2.5 / cfg.InterfererSeparation
	}

	// Trajectory: decimate the radar's native frame rate to the budget.
	totalDist := 2 * cfg.HalfSpan
	nativeFrames := int(totalDist / cfg.Speed * rcfg.FrameRate)
	frames := cfg.FrameBudget
	if nativeFrames < frames {
		frames = nativeFrames
	}
	if frames < 32 {
		return nil, fmt.Errorf("sim: %w: only %d frames over the pass; slow down or extend the span", roserr.ErrConfig, frames)
	}
	truth := make([]geom.Vec3, frames)
	for i := range truth {
		x := -cfg.HalfSpan + totalDist*float64(i)/float64(frames-1)
		truth[i] = geom.Vec3{X: x, Y: cfg.Standoff, Z: cfg.HeightOffset}
	}
	// Speed-dependent platform vibration (Sec 7.3 attributes the SNR
	// variation at driving speeds to the more dynamic condition).
	if cfg.Speed > 3 {
		jitter := 0.0005 * cfg.Speed // ~7 mm at 30 mph
		for i := range truth {
			truth[i].Z += rng.NormFloat64() * jitter
			truth[i].Y += rng.NormFloat64() * jitter * 0.5
		}
	}

	est := truth
	if cfg.TrackingError > 0 {
		est, err = track.Tracker{RelativeError: cfg.TrackingError}.Estimate(truth, rng)
		if err != nil {
			return nil, err
		}
	}

	p := detect.NewPipeline(rcfg)
	if cfg.Standoff > 3 {
		// Cross-range blur grows linearly with range (r * angular error);
		// scale the point-cloud size threshold to match.
		p.TagMaxExtent *= cfg.Standoff / 3
	}
	if cfg.FoVDeg > 0 {
		p.DecodeAzimuthCapDeg = cfg.FoVDeg / 2
	}
	if cfg.SecondTagSpreadDeg > 0 {
		// The two-tag micro-benchmark (Fig 16a) places tags at known
		// positions; decode the first tag even when the two clouds fuse.
		p.ForceTagNear = &geom.Vec2{}
	}
	p.Workers = cfg.Workers
	p.MaxFrameLoss = cfg.MaxFrameLoss
	p.Detect.DisableIncremental = cfg.DisableIncrementalScan
	if cfg.Engine != nil {
		p.Session = cfg.Engine.Session
		p.ScanStates = cfg.Engine.ScanStates
	}
	var inj *fault.Injector
	if cfg.Fault != nil {
		inj, err = fault.New(*cfg.Fault)
		if err != nil {
			return nil, err
		}
		p.Fault = inj
	}
	vel := geom.Vec3{X: cfg.Speed}
	res, err := p.RunContext(ctx, sc, truth, est, vel, cfg.Seed)
	if err != nil && res == nil {
		obs.Logger().Error("sim: pipeline failed",
			"bits", cfg.Bits, "seed", cfg.Seed, "err", err)
		return nil, err
	}
	root.Adopt(res.Span)
	adopted = true

	out := &Outcome{Detection: res, SNRdB: math.Inf(-1), BER: 0.5, MedianRSSdBm: math.Inf(-1),
		Partial:         res.Partial,
		FramesCompleted: res.FramesCompleted,
		FramesDropped:   res.FramesDropped,
		SamplesScrubbed: res.SamplesScrubbed,
	}
	// Close the span tree and derive the flat Stats view on every return
	// path below; the pass-level metrics observe the same numbers and the
	// flight recorder gets the finished pass offered for sampling.
	out.FlightSeq = -1
	defer func() {
		root.End()
		root.SetAttr("detected", out.Detected)
		out.Span = root
		out.Stats = StatsFromSpan(root)
		mReads.Inc()
		if out.Partial {
			mPartial.Inc()
		}
		hWall.Observe(float64(out.Stats.WallNS) / 1e9)
		if out.Detected {
			mDetected.Inc()
			if !math.IsInf(out.SNRdB, -1) {
				hSNR.Observe(out.SNRdB)
				hBER.Observe(out.BER)
			}
		}
		outcome := classify(out, rerr)
		mReadsByOutcome.With(outcome, obs.BucketWorkers(out.Stats.Workers)).Inc()
		for _, st := range []struct {
			name string
			ns   int64
		}{
			{detect.SpanSynthesize, out.Stats.SynthesizeNS},
			{detect.SpanRangeFFT, out.Stats.RangeFFTNS},
			{detect.SpanPointCloud, out.Stats.PointCloudNS},
			{detect.SpanCluster, out.Stats.ClusterNS},
			{detect.SpanSpotlight, out.Stats.SpotlightNS},
			{SpanDecode, out.Stats.DecodeNS},
		} {
			if st.ns > 0 {
				hStage.With(st.name).Observe(float64(st.ns) / 1e9)
			}
		}
		// Flight entry: the cheap fields feed the sampling policy; the
		// config fingerprint and span tree view are captured only for
		// entries the policy keeps. The view deep-copies the tree, so the
		// entry survives callers releasing Outcome.Span back to the pool.
		entry := &obs.FlightEntry{
			Outcome:         outcome,
			Seed:            cfg.Seed,
			Workers:         out.Stats.Workers,
			SNRdB:           obs.JSONFloat(out.SNRdB),
			BER:             obs.JSONFloat(out.BER),
			WallMs:          float64(out.Stats.WallNS) / 1e6,
			FramesCompleted: out.FramesCompleted,
			FramesDropped:   out.FramesDropped,
			SamplesScrubbed: out.SamplesScrubbed,
			FaultKinds:      inj.Kinds(frames).Labels(),
		}
		if rerr != nil {
			entry.Err = rerr.Error()
		}
		if seq, ok := obs.DefaultFlight.Offer(entry, func(e *obs.FlightEntry) {
			e.ConfigFP = fingerprint(cfg, rcfg)
			v := root.View()
			e.Spans = &v
		}); ok {
			out.FlightSeq = seq
		}
	}()
	if err != nil {
		// Partial pipeline result: cancellation or frame loss past the
		// budget. Surface what completed alongside the typed error.
		return out, fmt.Errorf("sim: %w", err)
	}
	if res.TagIndex < 0 || len(res.TagU) < 16 {
		if res.TagIndex >= 0 {
			obs.Logger().Info("sim: tag found but too few RCS samples to decode",
				"samples", len(res.TagU), "seed", cfg.Seed)
		}
		return out, nil
	}
	out.Detected = true
	out.RSSLossDB = res.Objects[res.TagIndex].RSSLossDB
	out.Samples = len(res.TagU)

	// Median decode-mode RSS: TagRSS is d^4-compensated for decoding, so
	// undo the compensation with the per-sample ranges to report the raw
	// received power of Fig 14a/15a.
	var rssDBm []float64
	for i, r := range res.TagRange {
		if r > 0 {
			rssDBm = append(rssDBm, em.DBm(res.TagRSS[i]/(r*r*r*r)))
		}
	}
	// dsp.Median returns -Inf for an empty slice, so an all-invalid-range
	// pass reports "lost" rather than a bogus 0 dBm.
	out.MedianRSSdBm = dsp.Median(rssDBm)

	// Stage boundary: detection done, decoding next.
	if cerr := context.Cause(ctx); cerr != nil {
		out.Partial = true
		return out, fmt.Errorf("sim: read cancelled before decoding: %w: %w", roserr.ErrReadCancelled, cerr)
	}
	dec, err := coding.NewDecoder(len(bits), layout.Delta, rcfg.Wavelength())
	if err != nil {
		return out, err
	}
	decSp := root.StartChild(SpanDecode)
	decoded, err := dec.Decode(res.TagU, res.TagRSS)
	decSp.End()
	if err != nil {
		// Detected but undecodable: report as such — but no longer
		// silently (this was a swallowed-error path before the obs layer).
		mUndecodable.Inc()
		obs.Logger().Warn("sim: tag detected but undecodable",
			"bits", cfg.Bits, "seed", cfg.Seed,
			"samples", len(res.TagU), "err", err)
		return out, nil
	}
	out.Decode = decoded
	out.Bits = coding.BitsString(decoded.Bits)
	out.Correct = out.Bits == cfg.Bits
	out.SNRdB = decoded.SNRdB
	out.BER = decoded.BER
	return out, nil
}
