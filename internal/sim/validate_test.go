package sim

import (
	"errors"
	"math"
	"testing"

	"ros/internal/fault"
	"ros/internal/radar"
	"ros/internal/roserr"
)

// TestDriveByValidateRejections drives every rejection branch of
// DriveBy.Validate, including the delegated fault and radar configs. The
// zero value relies on defaults and must pass.
func TestDriveByValidateRejections(t *testing.T) {
	if err := (DriveBy{}).Validate(); err != nil {
		t.Fatalf("zero DriveBy means defaults and must validate: %v", err)
	}
	badRadar := radar.TI1443()
	badRadar.NumRx = 0
	cases := []struct {
		name string
		cfg  DriveBy
	}{
		{"negative stack modules", DriveBy{StackModules: -1}},
		{"negative standoff", DriveBy{Standoff: -3}},
		{"NaN standoff", DriveBy{Standoff: math.NaN()}},
		{"negative half-span", DriveBy{HalfSpan: -1}},
		{"negative speed", DriveBy{Speed: -4}},
		{"negative rain", DriveBy{RainMMPerHour: -10}},
		{"negative tracking error", DriveBy{TrackingError: -0.04}},
		{"FoV above 180", DriveBy{FoVDeg: 200}},
		{"negative frame budget", DriveBy{FrameBudget: -1}},
		{"negative workers", DriveBy{Workers: -1}},
		{"frame loss above 1", DriveBy{MaxFrameLoss: 2}},
		{"bad fault config", DriveBy{Fault: &fault.Config{FrameDropRate: 1.5}}},
		{"bad radar override", DriveBy{Radar: &badRadar}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid pass config")
			}
			if !errors.Is(err, roserr.ErrConfig) {
				t.Fatalf("rejection not typed ErrConfig: %v", err)
			}
		})
	}
}

// TestRunRejectsInvalidConfig asserts Run surfaces validation failures as
// typed errors before any synthesis work happens.
func TestRunRejectsInvalidConfig(t *testing.T) {
	_, err := Run(DriveBy{Bits: "1011", Speed: -1})
	if err == nil {
		t.Fatal("Run accepted a negative speed")
	}
	if !errors.Is(err, roserr.ErrConfig) {
		t.Fatalf("Run rejection not typed ErrConfig: %v", err)
	}
}
