package dsp

// Structure-of-arrays tone kernels for the frame synthesizer. One scatterer
// contributes the same complex tone cur*step^t to every Rx channel, rotated
// by a per-channel steering phasor; the old executor re-ran the
// latency-bound rotation recurrence once per channel. The kernel splits the
// work instead: ToneFill runs the recurrence exactly once per scatterer
// into split re/im float64 lanes, and AccumulateTone/AccumulateRotated
// spread the finished lanes across the channels as independent
// multiply-adds with no loop-carried dependency — the loops the superscalar
// core (or a vectorizing compiler) can actually overlap.
//
// Two implementations sit behind build tags with identical signatures and
// contracts: the default lane kernel (tone_lanes.go) advances four phasor
// lanes a stride of step^4 apart, and the `ros_purego` portable kernel
// (tone_purego.go) is a plain single-lane scalar loop. Both renormalize
// their phasors every toneRenormInterval samples so multiplicative rounding
// drift stays bounded on arbitrarily long frames, and both are pinned to a
// per-sample Sincos reference at 1e-9 by the cross-tag kernel suite
// (tone_test.go), which CI runs under each tag.

// toneRenormInterval is the phasor renormalization period of both kernels:
// |step| = 1 up to rounding, so lane magnitude drifts by ~1 ulp per
// multiply; rescaling back to the scatterer amplitude every 512 samples
// bounds the drift at ~1e-13 relative regardless of frame length.
const toneRenormInterval = 512

// ToneKernel names the tone kernel compiled into this binary ("lanes4" or
// "purego"), for benchmarks and the build-tag CI matrix.
func ToneKernel() string { return toneKernelName }
