package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference implementation used to validate FFT.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := sign * 2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, angle))
		}
		if inverse {
			sum /= complex(float64(n), 0)
		}
		out[k] = sum
	}
	return out
}

func randomComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	worst := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > worst {
			worst = e
		}
	}
	return worst
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 65536} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false, want true", n)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 12, 100} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true, want false", n)
		}
	}
}

func TestFFTMatchesNaiveDFTPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randomComplex(rng, n)
		got := FFT(x)
		want := naiveDFT(x, false)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: FFT differs from naive DFT by %g", n, e)
		}
	}
}

func TestFFTMatchesNaiveDFTArbitrary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 6, 7, 9, 11, 12, 15, 17, 100, 255} {
		x := randomComplex(rng, n)
		got := FFT(x)
		want := naiveDFT(x, false)
		if e := maxErr(got, want); e > 1e-8*float64(n) {
			t.Errorf("n=%d: Bluestein FFT differs from naive DFT by %g", n, e)
		}
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 7, 16, 33, 128, 129} {
		x := randomComplex(rng, n)
		back := IFFT(FFT(x))
		if e := maxErr(back, x); e > 1e-9*float64(n) {
			t.Errorf("n=%d: IFFT(FFT(x)) differs from x by %g", n, e)
		}
	}
}

func TestFFTDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randomComplex(rng, 16)
	orig := make([]complex128, len(x))
	copy(orig, x)
	FFT(x)
	IFFT(x)
	if e := maxErr(x, orig); e != 0 {
		t.Errorf("FFT/IFFT modified their input (max diff %g)", e)
	}
}

func TestFFTSingleToneBin(t *testing.T) {
	// A complex exponential at bin k must concentrate all energy in bin k.
	n, k := 64, 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k)*float64(i)/float64(n)))
	}
	spec := FFT(x)
	for i, v := range spec {
		want := 0.0
		if i == k {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Errorf("bin %d amplitude = %g, want %g", i, cmplx.Abs(v), want)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Property: sum |x|^2 == (1/N) sum |X|^2.
	f := func(re, im [8]float64) bool {
		x := make([]complex128, 8)
		for i := range x {
			// Skip extreme magnitudes whose squared energy overflows.
			if math.Abs(re[i]) > 1e6 || math.Abs(im[i]) > 1e6 {
				return true
			}
			x[i] = complex(re[i], im[i])
		}
		spec := FFT(x)
		var et, ef float64
		for i := range x {
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ef += real(spec[i])*real(spec[i]) + imag(spec[i])*imag(spec[i])
		}
		ef /= 8
		return math.Abs(et-ef) <= 1e-9*(1+et)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFFTLinearity(t *testing.T) {
	// Property: FFT(a*x + y) == a*FFT(x) + FFT(y).
	f := func(xr, yr [16]float64, a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			return true
		}
		x := make([]complex128, 16)
		y := make([]complex128, 16)
		z := make([]complex128, 16)
		for i := range x {
			x[i] = complex(xr[i], 0)
			y[i] = complex(yr[i], 0)
			z[i] = complex(a, 0)*x[i] + y[i]
		}
		fx, fy, fz := FFT(x), FFT(y), FFT(z)
		for i := range fz {
			want := complex(a, 0)*fx[i] + fy[i]
			if cmplx.Abs(fz[i]-want) > 1e-6*(1+cmplx.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFFTShift(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	got := FFTShift(x)
	want := []complex128{2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FFTShift = %v, want %v", got, want)
		}
	}
	odd := []complex128{0, 1, 2, 3, 4}
	gotOdd := FFTShift(odd)
	wantOdd := []complex128{3, 4, 0, 1, 2}
	for i := range wantOdd {
		if gotOdd[i] != wantOdd[i] {
			t.Fatalf("FFTShift odd = %v, want %v", gotOdd, wantOdd)
		}
	}
}

func TestFFTFreqs(t *testing.T) {
	f := FFTFreqs(4, 0.5)
	want := []float64{0, 0.5, -1, -0.5}
	for i := range want {
		if math.Abs(f[i]-want[i]) > 1e-12 {
			t.Fatalf("FFTFreqs(4, 0.5) = %v, want %v", f, want)
		}
	}
	if got := FFTFreqs(0, 1); got != nil {
		t.Errorf("FFTFreqs(0, 1) = %v, want nil", got)
	}
}

func TestZeroPad(t *testing.T) {
	x := []complex128{1, 2}
	p := ZeroPad(x, 4)
	if len(p) != 4 || p[0] != 1 || p[1] != 2 || p[2] != 0 || p[3] != 0 {
		t.Errorf("ZeroPad = %v", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("ZeroPad with shrinking target did not panic")
		}
	}()
	ZeroPad(x, 1)
}

func TestMagnitudePower(t *testing.T) {
	x := []complex128{3 + 4i, 0, -2}
	mag := Magnitude(x)
	pow := Power(x)
	wantMag := []float64{5, 0, 2}
	wantPow := []float64{25, 0, 4}
	for i := range x {
		if math.Abs(mag[i]-wantMag[i]) > 1e-12 {
			t.Errorf("Magnitude[%d] = %g, want %g", i, mag[i], wantMag[i])
		}
		if math.Abs(pow[i]-wantPow[i]) > 1e-12 {
			t.Errorf("Power[%d] = %g, want %g", i, pow[i], wantPow[i])
		}
	}
}
