package dsp

import (
	"math"
	"testing"
)

func TestWindowNames(t *testing.T) {
	cases := map[Window]string{
		Rectangular: "rectangular",
		Hann:        "hann",
		Hamming:     "hamming",
		Blackman:    "blackman",
		Window(99):  "unknown",
	}
	for w, want := range cases {
		if got := w.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", w, got, want)
		}
	}
}

func TestWindowSymmetry(t *testing.T) {
	for _, w := range []Window{Hann, Hamming, Blackman} {
		c := w.Coefficients(33)
		for i := range c {
			j := len(c) - 1 - i
			if math.Abs(c[i]-c[j]) > 1e-12 {
				t.Errorf("%v: coefficient %d (%g) != mirror %d (%g)", w, i, c[i], j, c[j])
			}
		}
	}
}

func TestWindowBounds(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		for _, v := range w.Coefficients(64) {
			if v < -1e-12 || v > 1+1e-12 {
				t.Errorf("%v: coefficient %g out of [0, 1]", w, v)
			}
		}
	}
}

func TestHannEndpointsAndCenter(t *testing.T) {
	c := Hann.Coefficients(5)
	if math.Abs(c[0]) > 1e-12 || math.Abs(c[4]) > 1e-12 {
		t.Errorf("Hann endpoints = %g, %g, want 0", c[0], c[4])
	}
	if math.Abs(c[2]-1) > 1e-12 {
		t.Errorf("Hann center = %g, want 1", c[2])
	}
}

func TestRectangularIsAllOnes(t *testing.T) {
	for _, v := range Rectangular.Coefficients(10) {
		if v != 1 {
			t.Fatalf("rectangular coefficient = %g, want 1", v)
		}
	}
	if g := Rectangular.CoherentGain(10); g != 1 {
		t.Errorf("rectangular coherent gain = %g, want 1", g)
	}
}

func TestHannCoherentGain(t *testing.T) {
	// The Hann coherent gain tends to 0.5 for large n.
	if g := Hann.CoherentGain(4096); math.Abs(g-0.5) > 1e-3 {
		t.Errorf("Hann coherent gain = %g, want ~0.5", g)
	}
}

func TestApplyWindows(t *testing.T) {
	x := []float64{1, 1, 1, 1, 1}
	Hann.ApplyFloat(x)
	c := Hann.Coefficients(5)
	for i := range x {
		if math.Abs(x[i]-c[i]) > 1e-12 {
			t.Errorf("ApplyFloat[%d] = %g, want %g", i, x[i], c[i])
		}
	}
	y := []float64{2, 2, 2}
	Rectangular.ApplyFloat(y)
	for _, v := range y {
		if v != 2 {
			t.Errorf("rectangular ApplyFloat changed values: %v", y)
		}
	}
}

func TestCoefficientsEdgeCases(t *testing.T) {
	if c := Hann.Coefficients(0); c != nil {
		t.Errorf("Coefficients(0) = %v, want nil", c)
	}
	c := Blackman.Coefficients(1)
	if len(c) != 1 || c[0] != 1 {
		t.Errorf("Coefficients(1) = %v, want [1]", c)
	}
}
