package dsp

import (
	"math"
	"testing"
)

// TestToneFill32MatchesToneFill pins the f32 tone kernel to its f64 twin
// under whichever tag is active: the recurrence is identical, only the
// stores narrow, so every lane value must be exactly the f64 value rounded
// once to float32.
func TestToneFill32MatchesToneFill(t *testing.T) {
	for _, n := range []int{1, 3, 4, 7, 256, 1300} {
		re64 := make([]float64, n)
		im64 := make([]float64, n)
		re32 := make([]float32, n)
		im32 := make([]float32, n)
		amp := 0.37
		ang := 0.83
		sr, si := math.Cos(0.0021), math.Sin(0.0021)
		cr, ci := amp*math.Cos(ang), amp*math.Sin(ang)
		ToneFill(re64, im64, cr, ci, sr, si)
		ToneFill32(re32, im32, cr, ci, sr, si)
		for i := 0; i < n; i++ {
			if re32[i] != float32(re64[i]) || im32[i] != float32(im64[i]) {
				t.Fatalf("n=%d idx %d: (%v,%v) != narrowed (%v,%v)",
					n, i, re32[i], im32[i], float32(re64[i]), float32(im64[i]))
			}
		}
	}
}

// TestAccumulateRotated32MatchesComplexMul checks the widening rotate-add
// against the plain complex multiply it replaces.
func TestAccumulateRotated32MatchesComplexMul(t *testing.T) {
	const n = 97
	re := make([]float32, n)
	im := make([]float32, n)
	for i := range re {
		re[i] = float32(math.Sin(float64(i) * 0.71))
		im[i] = float32(math.Cos(float64(i) * 0.29))
	}
	aRe, aIm := 0.6, -0.8
	dst := make([]complex128, n)
	want := make([]complex128, n)
	for i := range dst {
		dst[i] = complex(float64(i)*0.01, -float64(i)*0.02)
		want[i] = dst[i] + complex(aRe, aIm)*complex(float64(re[i]), float64(im[i]))
	}
	AccumulateRotated32(dst, re, im, aRe, aIm)
	for i := range dst {
		if d := cAbs(dst[i] - want[i]); d > 1e-15 {
			t.Fatalf("idx %d: got %v want %v", i, dst[i], want[i])
		}
	}
}

// TestStoreVariants32MatchAccumulateIntoZero pins the = variants to the +=
// variants over a zeroed destination, and AccumulateTone32 to the identity
// rotation.
func TestStoreVariants32MatchAccumulateIntoZero(t *testing.T) {
	const n = 64
	re := make([]float32, n)
	im := make([]float32, n)
	for i := range re {
		re[i] = float32(i)*0.125 - 3
		im[i] = 5 - float32(i)*0.25
	}
	aRe, aIm := 0.31, 0.77
	stored := make([]complex128, n)
	accum := make([]complex128, n)
	StoreRotated32(stored, re, im, aRe, aIm)
	AccumulateRotated32(accum, re, im, aRe, aIm)
	for i := range stored {
		if stored[i] != accum[i] {
			t.Fatalf("StoreRotated32 idx %d: %v != %v", i, stored[i], accum[i])
		}
	}
	storedT := make([]complex128, n)
	accumT := make([]complex128, n)
	StoreTone32(storedT, re, im)
	AccumulateTone32(accumT, re, im)
	ident := make([]complex128, n)
	AccumulateRotated32(ident, re, im, 1, 0)
	for i := range storedT {
		if storedT[i] != accumT[i] || storedT[i] != ident[i] {
			t.Fatalf("StoreTone32 idx %d: %v / %v / %v disagree", i, storedT[i], accumT[i], ident[i])
		}
	}
}

func cAbs(v complex128) float64 {
	return math.Hypot(real(v), imag(v))
}

func BenchmarkToneFill32(b *testing.B) {
	re := make([]float32, 256)
	im := make([]float32, 256)
	sr, si := math.Cos(0.01), math.Sin(0.01)
	b.SetBytes(256 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ToneFill32(re, im, 1, 0, sr, si)
	}
}

func BenchmarkAccumulateRotated32_256(b *testing.B) {
	re := make([]float32, 256)
	im := make([]float32, 256)
	sr, si := math.Cos(0.01), math.Sin(0.01)
	ToneFill32(re, im, 1, 0, sr, si)
	dst := make([]complex128, 256)
	b.SetBytes(256 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AccumulateRotated32(dst, re, im, 0.6, -0.8)
	}
}
