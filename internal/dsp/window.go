package dsp

import (
	"math"
)

// Window identifies a tapering window applied before spectral analysis to
// control leakage from the strong coding peaks into neighbouring bins.
type Window int

// Supported windows.
const (
	// Rectangular applies no tapering.
	Rectangular Window = iota
	// Hann is the raised-cosine window; the default for RCS spectra.
	Hann
	// Hamming is the classic Hamming window.
	Hamming
	// Blackman trades main-lobe width for very low sidelobes.
	Blackman
)

// String returns the conventional window name.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window coefficients. For n <= 1 a single unit
// coefficient is returned (up to n entries).
func (w Window) Coefficients(n int) []float64 {
	if n <= 0 {
		return nil
	}
	c := make([]float64, n)
	if n == 1 {
		c[0] = 1
		return c
	}
	den := float64(n - 1)
	for i := range c {
		t := float64(i) / den
		switch w {
		case Hann:
			c[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case Hamming:
			c[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case Blackman:
			c[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		default:
			c[i] = 1
		}
	}
	return c
}

// Coefficient tables are memoized per (window, length) in a PlanSet (see
// planset.go): the range transform windows every channel of every frame with
// the same table, and recomputing the cosines dominated its profile. Entries
// are shared read-only across goroutines.

type windowEntry struct {
	coeffs []float64
	gain   float64
}

// CachedCoefficients returns the window coefficients alongside the coherent
// gain from the default plan set. The returned slice is shared: callers must
// treat it as read-only (use Coefficients for a private copy).
func (w Window) CachedCoefficients(n int) ([]float64, float64) {
	return defaultPlans.WindowCoefficients(w, n)
}

// ApplyFloat multiplies x by the window coefficients in place and returns x.
// (The complex-input variant was removed: every complex windowing path now
// runs through a fused Plan, which applies the coefficients inside the
// transform's first butterfly pass.)
func (w Window) ApplyFloat(x []float64) []float64 {
	c := w.Coefficients(len(x))
	for i := range x {
		x[i] *= c[i]
	}
	return x
}

// CoherentGain returns the mean of the window coefficients, i.e. the factor
// by which the window scales the amplitude of a coherent tone. Dividing the
// spectrum by this restores calibrated peak amplitudes.
func (w Window) CoherentGain(n int) float64 {
	c := w.Coefficients(n)
	if len(c) == 0 {
		return 1
	}
	sum := 0.0
	for _, v := range c {
		sum += v
	}
	return sum / float64(len(c))
}
