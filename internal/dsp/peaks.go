package dsp

import "sort"

// Peak describes a local maximum found in a sampled spectrum.
type Peak struct {
	// Index is the sample index of the maximum.
	Index int
	// Pos is the refined, sub-bin position of the maximum obtained by
	// quadratic interpolation through the three samples around Index,
	// expressed in (possibly fractional) sample units.
	Pos float64
	// Value is the refined peak amplitude.
	Value float64
}

// FindPeaks locates local maxima of x that are at least minHeight tall and
// at least minSep samples away from any taller already-accepted peak.
// Peaks are returned sorted by descending Value.
func FindPeaks(x []float64, minHeight float64, minSep int) []Peak {
	var cands []Peak
	for i := 1; i < len(x)-1; i++ {
		if x[i] < minHeight {
			continue
		}
		if x[i] >= x[i-1] && x[i] > x[i+1] {
			pos, val := refinePeak(x, i)
			cands = append(cands, Peak{Index: i, Pos: pos, Value: val})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].Value > cands[b].Value })
	var out []Peak
	for _, c := range cands {
		ok := true
		for _, p := range out {
			d := c.Index - p.Index
			if d < 0 {
				d = -d
			}
			if d < minSep {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// refinePeak fits a parabola through (i-1, i, i+1) and returns the refined
// position and amplitude of the vertex.
func refinePeak(x []float64, i int) (pos, val float64) {
	a, b, c := x[i-1], x[i], x[i+1]
	den := a - 2*b + c
	if den == 0 {
		return float64(i), b
	}
	d := 0.5 * (a - c) / den
	if d > 0.5 {
		d = 0.5
	} else if d < -0.5 {
		d = -0.5
	}
	return float64(i) + d, b - 0.25*(a-c)*d
}

// SampleAt returns the value of x at a fractional index using linear
// interpolation, clamping to the valid range.
func SampleAt(x []float64, pos float64) float64 {
	if len(x) == 0 {
		return 0
	}
	if pos <= 0 {
		return x[0]
	}
	if pos >= float64(len(x)-1) {
		return x[len(x)-1]
	}
	lo := int(pos)
	frac := pos - float64(lo)
	return x[lo]*(1-frac) + x[lo+1]*frac
}

// MaxAround returns the maximum value of x within +/- halfWidth samples of
// center (clamped to the slice bounds).
func MaxAround(x []float64, center, halfWidth int) float64 {
	lo := center - halfWidth
	hi := center + halfWidth
	if lo < 0 {
		lo = 0
	}
	if hi > len(x)-1 {
		hi = len(x) - 1
	}
	best := 0.0
	for i := lo; i <= hi; i++ {
		if x[i] > best {
			best = x[i]
		}
	}
	return best
}
