package dsp

import "math"

// Float32-precision lane of the batched Gaussian generator. The f64 path
// spends one SplitMix64 step (counter add + mix64) per normal draw; at
// float32 precision a 24-bit signed fixed-point uniform is enough for the
// ziggurat's fast path, so one 64-bit mix funds TWO draws — the low and high
// halves of the word — and the per-draw integer work halves. The values are
// quantized to the 24-bit lattice float64(j)*zigW32[i] (j a signed 24-bit
// integer), i.e. exactly the resolution a float32 mantissa carries at the
// layer scale; wedge and tail draws fall through to the full-precision f64
// slow path, so the distribution's tails are not clipped. The frame
// synthesizer selects this lane when the radar's ADC word is short enough
// that the quantizer step dwarfs the lattice pitch (see radar.SynthPlan).
//
// Stream contract: the f32 methods consume the same SplitMix64 counter the
// f64 methods do, but at half the rate — one step per PAIR of draws (plus
// the occasional extra step from wedge/tail rejections). FillNorm32 over an
// even-length lane and AddNoise32 over half as many complex samples consume
// identical stream positions and produce the same draw sequence; the f64 and
// f32 sequences are unrelated (a deliberate noise-contract change, exactly
// like the PR-6 stdlib->ziggurat swap — see docs/PERF.md).

// zigK32[i] is the 24-bit fast-accept threshold, floor(zigT[i] * 2^23), and
// zigW32[i] the layer width scaled to the 24-bit lattice, zigX[i] * 2^-23.
// Borderline draws excluded by the floor fall through to the exact
// wedge/tail test, as in the 52-bit tables.
var (
	zigK32 [zigLayers]uint32
	zigW32 [zigLayers]float64
)

func init() {
	for i := range zigK32 {
		zigK32[i] = uint32(zigT[i] * 0x1p23)
		zigW32[i] = zigX[i] * 0x1p-23
	}
}

// pairNorm32 returns the next two f32-lattice normal draws — the low and
// high halves of one SplitMix64 output, resolved in that order.
func (g *Gauss) pairNorm32() (lo, hi float64) {
	u := g.next()
	return g.resolve32(uint32(u)), g.resolve32(uint32(u >> 32))
}

// resolve32 turns one 32-bit half into a draw: layer from the low 8 bits,
// signed 24-bit fixed-point uniform from the rest (the same bit overlap the
// 64-bit path uses). Rejections redraw from the low half of a fresh stream
// step.
func (g *Gauss) resolve32(x uint32) float64 {
	for {
		i := x & (zigLayers - 1)
		j := int32(x) >> 8
		neg := j >> 31
		if uint32((j^neg)-neg) < zigK32[i] {
			return float64(j) * zigW32[i]
		}
		if v, ok := g.normSlow32(x); ok {
			return v
		}
		x = uint32(g.next())
	}
}

// normSlow32 handles the wedge and tail of the layer selected by x; ok is
// false when the wedge rejects and the caller must redraw. The wedge and
// tail tests run at full f64 precision on fresh full-width uniforms — only
// the fast path is lattice-quantized, so the distribution's tails are exact.
func (g *Gauss) normSlow32(x uint32) (float64, bool) {
	i := x & (zigLayers - 1)
	s := float64(int32(x)>>8) * 0x1p-23
	v := s * zigX[i]
	if i == 0 {
		// Tail beyond R: Marsaglia's exponential wrap.
		for {
			ex := -math.Log(g.uniform()) / zigR
			ey := -math.Log(g.uniform())
			if ey+ey >= ex*ex {
				if s < 0 {
					return -(zigR + ex), true
				}
				return zigR + ex, true
			}
		}
	}
	// Wedge: identical bracketed squeeze to the f64 path (see normSlow).
	pf := zigF[i] + g.uniform()*(zigF[i-1]-zigF[i])
	d := 0.5*v*v - zigE[i]
	lo := 1 - d*(1-d*(0.5-d*(1.0/6)))
	top := zigF[i-1]
	switch {
	case pf < top*lo:
		return v, true
	case pf > top*(lo+d*d*d*(1.0/6)):
		return 0, false
	case pf < math.Exp(-0.5*v*v):
		return v, true
	}
	return 0, false
}

// FillNorm32 fills dst with f32-lattice standard-normal draws, consuming one
// stream step per pair (an odd tail discards the final step's high half).
// The hot loop resolves eight draws from four future counter mixes per
// iteration with one combined sign-bit accept branch, mirroring FillNorm;
// any rejection replays the group through pairNorm32 in stream order, which
// reproduces the accepted draws bit-identically and resolves the rejected
// ones through the exact wedge/tail path.
func (g *Gauss) FillNorm32(dst []float32) {
	s := g.state
	n := 0
	const lm = zigLayers - 1
	for n+8 <= len(dst) {
		s1 := s + gaussGamma
		s2 := s1 + gaussGamma
		s3 := s2 + gaussGamma
		s4 := s3 + gaussGamma
		u0 := mix64(s1)
		u1 := mix64(s2)
		u2 := mix64(s3)
		u3 := mix64(s4)
		x0, x1 := uint32(u0), uint32(u0>>32)
		x2, x3 := uint32(u1), uint32(u1>>32)
		x4, x5 := uint32(u2), uint32(u2>>32)
		x6, x7 := uint32(u3), uint32(u3>>32)
		j0 := int32(x0) >> 8
		j1 := int32(x1) >> 8
		j2 := int32(x2) >> 8
		j3 := int32(x3) >> 8
		j4 := int32(x4) >> 8
		j5 := int32(x5) >> 8
		j6 := int32(x6) >> 8
		j7 := int32(x7) >> 8
		a0, a1, a2, a3 := j0>>31, j1>>31, j2>>31, j3>>31
		a4, a5, a6, a7 := j4>>31, j5>>31, j6>>31, j7>>31
		m0 := uint32((j0 ^ a0) - a0)
		m1 := uint32((j1 ^ a1) - a1)
		m2 := uint32((j2 ^ a2) - a2)
		m3 := uint32((j3 ^ a3) - a3)
		m4 := uint32((j4 ^ a4) - a4)
		m5 := uint32((j5 ^ a5) - a5)
		m6 := uint32((j6 ^ a6) - a6)
		m7 := uint32((j7 ^ a7) - a7)
		d := dst[n : n+8 : len(dst)]
		acc := (m0 - zigK32[x0&lm]) & (m1 - zigK32[x1&lm]) & (m2 - zigK32[x2&lm]) & (m3 - zigK32[x3&lm]) &
			(m4 - zigK32[x4&lm]) & (m5 - zigK32[x5&lm]) & (m6 - zigK32[x6&lm]) & (m7 - zigK32[x7&lm])
		if int32(acc) < 0 {
			d[0] = float32(float64(j0) * zigW32[x0&lm])
			d[1] = float32(float64(j1) * zigW32[x1&lm])
			d[2] = float32(float64(j2) * zigW32[x2&lm])
			d[3] = float32(float64(j3) * zigW32[x3&lm])
			d[4] = float32(float64(j4) * zigW32[x4&lm])
			d[5] = float32(float64(j5) * zigW32[x5&lm])
			d[6] = float32(float64(j6) * zigW32[x6&lm])
			d[7] = float32(float64(j7) * zigW32[x7&lm])
			s = s4
			n += 8
			continue
		}
		g.state = s
		for k := 0; k < 8; k += 2 {
			lo, hi := g.pairNorm32()
			d[k], d[k+1] = float32(lo), float32(hi)
		}
		s = g.state
		n += 8
	}
	g.state = s
	for ; n+2 <= len(dst); n += 2 {
		lo, hi := g.pairNorm32()
		dst[n], dst[n+1] = float32(lo), float32(hi)
	}
	if n < len(dst) {
		lo, _ := g.pairNorm32()
		dst[n] = float32(lo)
	}
}

// AddNoise32 adds sigma-scaled f32-lattice normal noise to every sample of
// dst: sample t consumes the two halves of stream step t, real from the low
// half — the positions FillNorm32 over a 2*len(dst) lane would consume. The
// sigma scale folds into the per-call width table as in AddNoise, and the
// group structure is four complex samples (four counter mixes, eight
// halves) per combined accept branch — half the mixes of the f64 pass.
func (g *Gauss) AddNoise32(dst []complex128, sigma float64) {
	s := g.state
	n := 0
	const lm = zigLayers - 1
	var ws [zigLayers]float64
	for i, w := range zigW32 {
		ws[i] = w * sigma
	}
	for n+4 <= len(dst) {
		s1 := s + gaussGamma
		s2 := s1 + gaussGamma
		s3 := s2 + gaussGamma
		s4 := s3 + gaussGamma
		u0 := mix64(s1)
		u1 := mix64(s2)
		u2 := mix64(s3)
		u3 := mix64(s4)
		x0, x1 := uint32(u0), uint32(u0>>32)
		x2, x3 := uint32(u1), uint32(u1>>32)
		x4, x5 := uint32(u2), uint32(u2>>32)
		x6, x7 := uint32(u3), uint32(u3>>32)
		j0 := int32(x0) >> 8
		j1 := int32(x1) >> 8
		j2 := int32(x2) >> 8
		j3 := int32(x3) >> 8
		j4 := int32(x4) >> 8
		j5 := int32(x5) >> 8
		j6 := int32(x6) >> 8
		j7 := int32(x7) >> 8
		a0, a1, a2, a3 := j0>>31, j1>>31, j2>>31, j3>>31
		a4, a5, a6, a7 := j4>>31, j5>>31, j6>>31, j7>>31
		m0 := uint32((j0 ^ a0) - a0)
		m1 := uint32((j1 ^ a1) - a1)
		m2 := uint32((j2 ^ a2) - a2)
		m3 := uint32((j3 ^ a3) - a3)
		m4 := uint32((j4 ^ a4) - a4)
		m5 := uint32((j5 ^ a5) - a5)
		m6 := uint32((j6 ^ a6) - a6)
		m7 := uint32((j7 ^ a7) - a7)
		d := dst[n : n+4 : len(dst)]
		acc := (m0 - zigK32[x0&lm]) & (m1 - zigK32[x1&lm]) & (m2 - zigK32[x2&lm]) & (m3 - zigK32[x3&lm]) &
			(m4 - zigK32[x4&lm]) & (m5 - zigK32[x5&lm]) & (m6 - zigK32[x6&lm]) & (m7 - zigK32[x7&lm])
		if int32(acc) < 0 {
			d[0] += complex(float64(j0)*ws[x0&lm], float64(j1)*ws[x1&lm])
			d[1] += complex(float64(j2)*ws[x2&lm], float64(j3)*ws[x3&lm])
			d[2] += complex(float64(j4)*ws[x4&lm], float64(j5)*ws[x5&lm])
			d[3] += complex(float64(j6)*ws[x6&lm], float64(j7)*ws[x7&lm])
			s = s4
			n += 4
			continue
		}
		// A rejection anywhere in the group: replay it through pairNorm32 in
		// stream order (accepted draws reproduce bit-identically up to the
		// sigma-fold rounding, within 1 ulp as in AddNoise — and
		// deterministically, since the path taken is a pure function of the
		// stream).
		g.state = s
		var v [8]float64
		for k := 0; k < 8; k += 2 {
			v[k], v[k+1] = g.pairNorm32()
		}
		s = g.state
		d[0] += complex(v[0]*sigma, v[1]*sigma)
		d[1] += complex(v[2]*sigma, v[3]*sigma)
		d[2] += complex(v[4]*sigma, v[5]*sigma)
		d[3] += complex(v[6]*sigma, v[7]*sigma)
		n += 4
	}
	g.state = s
	for ; n < len(dst); n++ {
		lo, hi := g.pairNorm32()
		dst[n] += complex(lo*sigma, hi*sigma)
	}
}

// Norms32 returns an internal scratch lane of n f32-lattice normal draws,
// valid until the next Norms32 call; it grows amortized like Norms.
func (g *Gauss) Norms32(n int) []float32 {
	if cap(g.scratch32) < n {
		g.scratch32 = make([]float32, n)
	}
	s := g.scratch32[:n]
	g.FillNorm32(s)
	return s
}
