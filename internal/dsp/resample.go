package dsp

import (
	"fmt"
	"sort"
)

// Resample linearly interpolates the samples (xs, ys) onto a uniform grid of
// n points spanning [x0, x1]. The input need not be sorted; it is sorted by
// x internally (the inputs are not modified). Points outside the input span
// are clamped to the nearest sample. It returns the uniform grid and the
// interpolated values.
//
// An error is returned if fewer than two samples are supplied, the slice
// lengths differ, n < 2, or x1 <= x0.
func Resample(xs, ys []float64, x0, x1 float64, n int) (grid, vals []float64, err error) {
	if len(xs) != len(ys) {
		return nil, nil, fmt.Errorf("dsp: Resample length mismatch: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return nil, nil, fmt.Errorf("dsp: Resample needs at least 2 samples, got %d", len(xs))
	}
	if n < 2 {
		return nil, nil, fmt.Errorf("dsp: Resample target grid must have at least 2 points, got %d", n)
	}
	if x1 <= x0 {
		return nil, nil, fmt.Errorf("dsp: Resample requires x1 > x0, got [%g, %g]", x0, x1)
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	sx := make([]float64, len(xs))
	sy := make([]float64, len(ys))
	for i, j := range idx {
		sx[i] = xs[j]
		sy[i] = ys[j]
	}

	grid = make([]float64, n)
	vals = make([]float64, n)
	step := (x1 - x0) / float64(n-1)
	j := 0
	for i := 0; i < n; i++ {
		x := x0 + float64(i)*step
		grid[i] = x
		for j < len(sx)-2 && sx[j+1] < x {
			j++
		}
		vals[i] = lerpClamped(sx, sy, j, x)
	}
	return grid, vals, nil
}

// lerpClamped interpolates between samples j and j+1, clamping outside the
// covered span.
func lerpClamped(sx, sy []float64, j int, x float64) float64 {
	if x <= sx[0] {
		return sy[0]
	}
	if x >= sx[len(sx)-1] {
		return sy[len(sy)-1]
	}
	x0, x1 := sx[j], sx[j+1]
	if x1 == x0 {
		return sy[j]
	}
	t := (x - x0) / (x1 - x0)
	return sy[j]*(1-t) + sy[j+1]*t
}

// Detrend divides ys by a moving-average envelope of half-window hw samples
// and returns the detrended series together with the envelope. It is used to
// strip the slowly varying single-stack RCS envelope r_T(theta) from the
// multi-stack interference pattern before spectral analysis (Sec 5.1).
// Envelope entries are floored at a small fraction of the series mean so the
// division never blows up in nulls.
func Detrend(ys []float64, hw int) (detrended, envelope []float64) {
	n := len(ys)
	detrended = make([]float64, n)
	envelope = make([]float64, n)
	if n == 0 {
		return
	}
	if hw < 1 {
		hw = 1
	}
	// Prefix sums for O(n) moving average.
	prefix := make([]float64, n+1)
	for i, v := range ys {
		prefix[i+1] = prefix[i] + v
	}
	mean := prefix[n] / float64(n)
	floor := mean * 1e-6
	if floor <= 0 {
		floor = 1e-30
	}
	for i := 0; i < n; i++ {
		lo := i - hw
		hi := i + hw
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		env := (prefix[hi+1] - prefix[lo]) / float64(hi-lo+1)
		if env < floor {
			env = floor
		}
		envelope[i] = env
		detrended[i] = ys[i] / env
	}
	return
}
