package dsp

import (
	"math"
	"testing"
)

// TestNorm32Moments checks the first four moments of the f32-lattice
// sampler. The 24-bit quantization perturbs each moment by far less than
// the Monte Carlo tolerance, so the same bounds as the f64 sampler apply.
func TestNorm32Moments(t *testing.T) {
	g := NewGauss(42)
	const n = 4_000_000
	dst := make([]float32, n)
	g.FillNorm32(dst)
	var m1, m2, m3, m4 float64
	for _, v := range dst {
		x := float64(v)
		m1 += x
		m2 += x * x
		m3 += x * x * x
		m4 += x * x * x * x
	}
	m1 /= n
	m2 /= n
	m3 /= n
	m4 /= n
	if math.Abs(m1) > 0.005 || math.Abs(m2-1) > 0.01 || math.Abs(m3) > 0.02 || math.Abs(m4-3) > 0.05 {
		t.Fatalf("moments off: mean=%g var=%g skew=%g kurt=%g", m1, m2, m3, m4)
	}
}

// TestZigguratFastPath32 pins the 24-bit layer-table geometry: the halved
// thresholds must keep the same ~1.5% rejection rate as the 52-bit tables —
// a mis-scaled zigK32 (wrong exponent, truncation off by a bit) multiplies
// this rate long before it distorts the distribution.
func TestZigguratFastPath32(t *testing.T) {
	g := NewGauss(1)
	slow := 0
	const steps = 500_000
	for k := 0; k < steps; k++ {
		u := g.next()
		for _, x := range [2]uint32{uint32(u), uint32(u >> 32)} {
			i := x & (zigLayers - 1)
			j := int32(x) >> 8
			neg := j >> 31
			if uint32((j^neg)-neg) >= zigK32[i] {
				slow++
			}
		}
	}
	if rate := float64(slow) / (2 * steps); rate > 0.03 {
		t.Fatalf("slow-path rate = %.4f, want < 0.03", rate)
	}
}

// TestFillNorm32MatchesPairSequence pins the batched f32 generator to the
// scalar pair resolver: FillNorm32 must produce bit-identical values to
// repeated pairNorm32 calls and leave the stream at the same position, for
// lengths around and across the 8-wide unroll boundary (including an odd
// tail, which consumes a full step and discards the high half).
func TestFillNorm32MatchesPairSequence(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 9, 15, 16, 17, 2048} {
		a := NewGauss(99)
		b := NewGauss(99)
		dst := make([]float32, n)
		a.FillNorm32(dst)
		for i := 0; i < n; i += 2 {
			lo, hi := b.pairNorm32()
			if got := dst[i]; got != float32(lo) {
				t.Fatalf("n=%d idx %d: FillNorm32 %v != pair lo %v", n, i, got, float32(lo))
			}
			if i+1 < n {
				if got := dst[i+1]; got != float32(hi) {
					t.Fatalf("n=%d idx %d: FillNorm32 %v != pair hi %v", n, i+1, got, float32(hi))
				}
			}
		}
		if a.state != b.state {
			t.Fatalf("n=%d: state diverged", n)
		}
	}
}

// TestAddNoise32MatchesFillNorm32 pins the fused f32 noise kernel's stream
// contract: AddNoise32 over n complex samples consumes the same stream
// positions as FillNorm32 over a 2n lane, real from the pair's low half,
// each component within 1 ulp of draw*sigma (the fast path folds sigma into
// the width table, reassociating one rounding).
func TestAddNoise32MatchesFillNorm32(t *testing.T) {
	const sigma = 0.37
	for _, n := range []int{1, 2, 3, 4, 5, 8, 256} {
		a := NewGauss(7)
		b := NewGauss(7)
		dst := make([]complex128, n)
		for i := range dst {
			dst[i] = complex(float64(i), -float64(i))
		}
		a.AddNoise32(dst, sigma)
		for i := range dst {
			lo, hi := b.pairNorm32()
			wantRe := float64(i) + lo*sigma
			wantIm := -float64(i) + hi*sigma
			if re := real(dst[i]); re != wantRe && !withinOneUlp(re, wantRe) {
				t.Fatalf("n=%d idx %d re: got %v want %v", n, i, re, wantRe)
			}
			if im := imag(dst[i]); im != wantIm && !withinOneUlp(im, wantIm) {
				t.Fatalf("n=%d idx %d im: got %v want %v", n, i, im, wantIm)
			}
		}
		if a.state != b.state {
			t.Fatalf("n=%d: AddNoise32 left the stream at a different position", n)
		}
	}
}

// TestAddNoise32Deterministic checks byte-for-byte reproducibility across
// identical seeds — the worker-count-independence property the detection
// pipeline's per-frame sub-streams rely on, now for the f32 lane.
func TestAddNoise32Deterministic(t *testing.T) {
	mk := func() []complex128 {
		g := NewGauss(123)
		dst := make([]complex128, 300)
		g.AddNoise32(dst, 1.5)
		return dst
	}
	x, y := mk(), mk()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("idx %d: %v != %v across identical seeds", i, x[i], y[i])
		}
	}
}

// TestNorms32ReusesScratch checks the scratch lane grows once and then
// reuses its backing array, and that its draws match FillNorm32.
func TestNorms32ReusesScratch(t *testing.T) {
	g := NewGauss(5)
	first := g.Norms32(64)
	second := g.Norms32(32)
	if &first[0] != &second[0] {
		t.Fatalf("Norms32 reallocated a scratch lane that already fit")
	}
	w := NewGauss(5)
	want := make([]float32, 64)
	w.FillNorm32(want)
	g.Reseed(5)
	got := g.Norms32(64)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("idx %d: Norms32 %v != FillNorm32 %v", i, got[i], want[i])
		}
	}
}

func BenchmarkGaussFill32_2048(b *testing.B) {
	g := NewGauss(1)
	dst := make([]float32, 2048)
	b.SetBytes(2048 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FillNorm32(dst)
	}
}

func BenchmarkGaussAddNoise32(b *testing.B) {
	g := NewGauss(1)
	dst := make([]complex128, 1024)
	b.SetBytes(1024 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AddNoise32(dst, 0.5)
	}
}
