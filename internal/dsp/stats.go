package dsp

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// Variance returns the population variance of x, or 0 for fewer than two
// samples.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	sum := 0.0
	for _, v := range x {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	return math.Sqrt(Variance(x))
}

// Median returns the median of x, or -Inf for an empty slice. x is not
// modified.
func Median(x []float64) float64 {
	return Percentile(x, 50)
}

// Percentile returns the p-th percentile (0..100) of x using linear
// interpolation between closest ranks. x is not modified.
//
// An empty slice returns -Inf rather than 0: the callers aggregate received
// power in dBm, where 0 is a real (very strong) level but -Inf reads
// unambiguously as "no signal" (an all-invalid pass previously reported a
// bogus 0 dBm median RSS).
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Max returns the maximum of x and its index, or (0, -1) for an empty slice.
func Max(x []float64) (float64, int) {
	if len(x) == 0 {
		return 0, -1
	}
	best, idx := x[0], 0
	for i, v := range x {
		if v > best {
			best, idx = v, i
		}
	}
	return best, idx
}

// Min returns the minimum of x and its index, or (0, -1) for an empty slice.
func Min(x []float64) (float64, int) {
	if len(x) == 0 {
		return 0, -1
	}
	best, idx := x[0], 0
	for i, v := range x {
		if v < best {
			best, idx = v, i
		}
	}
	return best, idx
}
