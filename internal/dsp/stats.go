package dsp

import "math"

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// Variance returns the population variance of x, or 0 for fewer than two
// samples.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	sum := 0.0
	for _, v := range x {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	return math.Sqrt(Variance(x))
}

// Median returns the median of the finite samples of x, or -Inf when none
// are finite. x is not modified.
func Median(x []float64) float64 {
	return Percentile(x, 50)
}

// MedianInPlace is Median without the defensive copy; see PercentileInPlace
// for how x is disturbed.
func MedianInPlace(x []float64) float64 {
	return PercentileInPlace(x, 50)
}

// Percentile returns the p-th percentile (0..100) of the finite samples of
// x using linear interpolation between closest ranks. x is not modified.
//
// Non-finite samples are dropped before ranking: a NaN is unordered (a
// comparison sort fed NaNs returns an arbitrary element — the pre-fix code
// could report NaN or any sample as the median of an otherwise clean
// window), and an injected ±Inf would otherwise pin the extreme ranks.
// When no finite sample survives — including an empty slice — the result
// is -Inf rather than 0: the callers aggregate received power in dBm,
// where 0 is a real (very strong) level but -Inf reads unambiguously as
// "no signal". A NaN p returns NaN.
func Percentile(x []float64, p float64) float64 {
	s := make([]float64, len(x))
	copy(s, x)
	return PercentileInPlace(s, p)
}

// PercentileInPlace is Percentile for callers that own x as scratch: it
// compacts the finite samples to a reordered prefix of x (partial
// quickselect order) instead of copying. Sample values are preserved, only
// their positions change. The selection is rank-exact — the same order
// statistics a full sort would produce — but runs O(n) instead of
// O(n log n), which matters to the per-frame noise-floor estimate on the
// point-cloud path.
func PercentileInPlace(x []float64, p float64) float64 {
	if math.IsNaN(p) {
		return math.NaN()
	}
	// Compact the finite samples: v-v is 0 for finite v and NaN for both
	// NaN and ±Inf.
	n := 0
	for _, v := range x {
		if v-v == 0 {
			x[n] = v
			n++
		}
	}
	if n == 0 {
		return math.Inf(-1)
	}
	s := x[:n]
	if p <= 0 {
		m, _ := Min(s)
		return m
	}
	if p >= 100 {
		m, _ := Max(s)
		return m
	}
	pos := p / 100 * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	v := selectKth(s, lo)
	if frac == 0 {
		return v
	}
	// After selectKth, s[lo+1:] holds exactly the ranks above lo, so the
	// interpolation partner (rank lo+1) is its minimum.
	w, _ := Min(s[lo+1:])
	return v*(1-frac) + w*frac
}

// PercentileInPlaceSeeded is PercentileInPlace primed with a pivot hint — a
// caller's guess at the result, e.g. the previous frame's noise floor on the
// point-cloud path, where the median moves little frame to frame. The
// compaction pass doubles as a partition around the hint, so when the hint
// lands inside the sample range the rank selection starts on one side only;
// a non-finite hint falls back to the unseeded path. The result is
// bit-identical to PercentileInPlace for every hint: rank selection is
// value-exact regardless of pivot choice, and the interpolation reads the
// same rank pair.
func PercentileInPlaceSeeded(x []float64, p, hint float64) float64 {
	if math.IsNaN(p) {
		return math.NaN()
	}
	if hint-hint != 0 {
		return PercentileInPlace(x, p)
	}
	// Fused compaction and Lomuto partition around the hint: the single
	// pass that drops non-finite values also groups the values below the
	// hint in front, so the selection starts with one side already carved
	// off. Selection is by rank over the surviving multiset, so any
	// partition layout returns the value PercentileInPlace would.
	n, lt := 0, 0
	for _, v := range x {
		if v-v == 0 {
			x[n] = v
			if v < hint {
				x[n], x[lt] = x[lt], x[n]
				lt++
			}
			n++
		}
	}
	if n == 0 {
		return math.Inf(-1)
	}
	s := x[:n]
	if p <= 0 {
		m, _ := Min(s)
		return m
	}
	if p >= 100 {
		m, _ := Max(s)
		return m
	}
	pos := p / 100 * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	// s[:lt] < hint <= s[lt:]: recurse only on the side holding rank lo. A
	// hint beyond either extreme leaves an empty side and degenerates to
	// the full-range selection — no pre-scan is needed for safety.
	var v float64
	if lo < lt {
		v = selectKth(s[:lt], lo)
	} else {
		v = selectKth(s[lt:], lo-lt)
	}
	if frac == 0 {
		return v
	}
	w, _ := Min(s[lo+1:])
	return v*(1-frac) + w*frac
}

// selectKth places the k-th smallest element of s at index k (with smaller
// elements before it and larger after) and returns it: Hoare partitions
// around a median-of-three pivot, recursing only into the side holding k,
// and finishes small ranges by insertion sort. s must be NaN-free.
func selectKth(s []float64, k int) float64 {
	lo, hi := 0, len(s)-1
	for lo < hi {
		if hi-lo < 12 {
			part := s[lo : hi+1]
			for i := 1; i < len(part); i++ {
				for j := i; j > 0 && part[j] < part[j-1]; j-- {
					part[j], part[j-1] = part[j-1], part[j]
				}
			}
			break
		}
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		pivot := s[mid]
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if s[i] >= pivot {
					break
				}
			}
			for {
				j--
				if s[j] <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			s[i], s[j] = s[j], s[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return s[k]
}

// Max returns the maximum of x and its index, or (0, -1) for an empty slice.
func Max(x []float64) (float64, int) {
	if len(x) == 0 {
		return 0, -1
	}
	best, idx := x[0], 0
	for i, v := range x {
		if v > best {
			best, idx = v, i
		}
	}
	return best, idx
}

// Min returns the minimum of x and its index, or (0, -1) for an empty slice.
func Min(x []float64) (float64, int) {
	if len(x) == 0 {
		return 0, -1
	}
	best, idx := x[0], 0
	for i, v := range x {
		if v < best {
			best, idx = v, i
		}
	}
	return best, idx
}
