package dsp

import (
	"math/cmplx"
	"testing"

	"ros/internal/obs"
)

// TestCacheGaugesAndReset pins the retention contract of the dsp memo
// caches: building a plan registers entries in the obs gauges, ResetCaches
// zeroes them, and transforms built afterwards reproduce the pre-reset
// output exactly.
func TestCacheGaugesAndReset(t *testing.T) {
	planG := obs.Default.Gauge("ros_dsp_plan_cache_entries", "")
	twidG := obs.Default.Gauge("ros_dsp_twiddle_cache_entries", "")
	winG := obs.Default.Gauge("ros_dsp_window_cache_entries", "")

	ResetCaches()
	for _, g := range []*obs.Gauge{planG, twidG, winG} {
		if v := g.Value(); v != 0 {
			t.Fatalf("gauge = %v after reset, want 0", v)
		}
	}

	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(float64(i%7)-3, float64(i%5)-2)
	}
	p := PlanFor(len(x), Hann)
	before := make([]complex128, len(x))
	p.Forward(before, x)
	Hann.CachedCoefficients(len(x))

	if v := planG.Value(); v < 1 {
		t.Fatalf("plan gauge = %v after PlanFor, want >= 1", v)
	}
	if v := twidG.Value(); v < 1 {
		t.Fatalf("twiddle gauge = %v after transform, want >= 1", v)
	}
	if v := winG.Value(); v < 1 {
		t.Fatalf("window gauge = %v after CachedCoefficients, want >= 1", v)
	}

	ResetCaches()
	for _, g := range []*obs.Gauge{planG, twidG, winG} {
		if v := g.Value(); v != 0 {
			t.Fatalf("gauge = %v after second reset, want 0", v)
		}
	}

	// Rebuilt plans must be bit-identical to the pre-reset ones.
	p2 := PlanFor(len(x), Hann)
	after := make([]complex128, len(x))
	p2.Forward(after, x)
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("bin %d changed across reset: %v -> %v (|d|=%g)",
				i, before[i], after[i], cmplx.Abs(after[i]-before[i]))
		}
	}
}
