package dsp

// Cross-tag kernel suite: these tests compile and pass under both the
// default lane kernel and `-tags ros_purego` (CI runs the matrix), pinning
// whichever ToneFill/Accumulate* implementation is built to a per-sample
// math.Sincos reference at 1e-9 relative — so the two kernels agree with
// each other to the same bound on any scene the synthesizer can produce.

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// refTone is the exact tone: cur * step^t evaluated by per-sample Sincos,
// immune to recurrence drift.
func refTone(n int, cur, step complex128) []complex128 {
	out := make([]complex128, n)
	amp := cmplx.Abs(cur)
	phi0 := cmplx.Phase(cur)
	dphi := cmplx.Phase(step)
	for t := range out {
		s, c := math.Sincos(phi0 + float64(t)*dphi)
		out[t] = complex(amp*c, amp*s)
	}
	return out
}

func TestToneFillMatchesSincos(t *testing.T) {
	t.Logf("tone kernel: %s", ToneKernel())
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		// Frame lengths past several renormalization intervals, plus odd
		// (Bluestein-style) and tail (non-multiple-of-4) sizes.
		n := []int{8, 200, 256, 1024, 2048, 4096 + 3}[trial%6]
		amp := math.Pow(10, -6+4*rng.Float64())
		phi := rng.Float64() * 2 * math.Pi
		dphi := (rng.Float64() - 0.5) * math.Pi
		s0, c0 := math.Sincos(phi)
		ds, dc := math.Sincos(dphi)
		re := make([]float64, n)
		im := make([]float64, n)
		ToneFill(re, im, amp*c0, amp*s0, dc, ds)
		ref := refTone(n, complex(amp*c0, amp*s0), complex(dc, ds))
		worst := 0.0
		for i := range ref {
			d := cmplx.Abs(complex(re[i], im[i]) - ref[i])
			if e := d / amp; e > worst {
				worst = e
			}
		}
		if worst > 1e-9 {
			t.Errorf("trial %d (n=%d): ToneFill drifts %.3g relative from Sincos reference", trial, n, worst)
		}
	}
}

func TestToneFillRenormBoundsDrift(t *testing.T) {
	// A frame much longer than the renorm interval: an unrenormalized
	// recurrence would drift in magnitude; the kernel must stay at 1e-9.
	const n = 1 << 16
	amp := 3.5
	ds, dc := math.Sincos(0.7213)
	re := make([]float64, n)
	im := make([]float64, n)
	ToneFill(re, im, amp, 0, dc, ds)
	worst := 0.0
	for i := 0; i < n; i++ {
		m := math.Hypot(re[i], im[i])
		if e := math.Abs(m-amp) / amp; e > worst {
			worst = e
		}
	}
	if worst > 1e-9 {
		t.Errorf("magnitude drifts %.3g relative over %d samples", worst, n)
	}
}

func TestAccumulateRotatedMatchesComplexMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{5, 64, 256} {
		re := make([]float64, n)
		im := make([]float64, n)
		for i := range re {
			re[i] = rng.NormFloat64()
			im[i] = rng.NormFloat64()
		}
		s, c := math.Sincos(rng.Float64() * 2 * math.Pi)
		rot := complex(c, s)
		dst := make([]complex128, n)
		want := make([]complex128, n)
		for i := range dst {
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			dst[i], want[i] = v, v
		}
		AccumulateRotated(dst, re, im, c, s)
		plain := make([]complex128, n)
		copy(plain, want)
		AccumulateTone(plain, re, im)
		for i := range dst {
			want[i] += rot * complex(re[i], im[i])
			if d := cmplx.Abs(dst[i] - want[i]); d > 1e-12 {
				t.Fatalf("n=%d AccumulateRotated[%d]: |d|=%g", n, i, d)
			}
		}
		// AccumulateTone is the identity rotation.
		dst2 := make([]complex128, n)
		AccumulateTone(dst2, re, im)
		for i := range dst2 {
			if dst2[i] != complex(re[i], im[i]) {
				t.Fatalf("AccumulateTone[%d] = %v, want %v", i, dst2[i], complex(re[i], im[i]))
			}
		}
	}
}

func BenchmarkToneFill256(b *testing.B) {
	re := make([]float64, 256)
	im := make([]float64, 256)
	ds, dc := math.Sincos(0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ToneFill(re, im, 1e-5, 0, dc, ds)
	}
}

func BenchmarkAccumulateRotated256(b *testing.B) {
	re := make([]float64, 256)
	im := make([]float64, 256)
	dst := make([]complex128, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AccumulateRotated(dst, re, im, 0.6, 0.8)
	}
}

// TestStoreVariantsMatchAccumulateIntoZero pins the overwrite variants to
// their accumulate counterparts: storing into a dirty buffer must equal
// accumulating into a zeroed one, bit for bit — the property Synthesize
// relies on to skip the full-frame clear when the first scatterer writes.
func TestStoreVariantsMatchAccumulateIntoZero(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{5, 64, 256} {
		re := make([]float64, n)
		im := make([]float64, n)
		for i := range re {
			re[i] = rng.NormFloat64()
			im[i] = rng.NormFloat64()
		}
		s, c := math.Sincos(rng.Float64() * 2 * math.Pi)

		dirty := make([]complex128, n)
		for i := range dirty {
			dirty[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		zeroed := make([]complex128, n)
		StoreTone(dirty, re, im)
		AccumulateTone(zeroed, re, im)
		for i := range dirty {
			if dirty[i] != zeroed[i] {
				t.Fatalf("n=%d StoreTone[%d] = %v, want %v", n, i, dirty[i], zeroed[i])
			}
		}

		for i := range dirty {
			dirty[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			zeroed[i] = 0
		}
		StoreRotated(dirty, re, im, c, s)
		AccumulateRotated(zeroed, re, im, c, s)
		for i := range dirty {
			if dirty[i] != zeroed[i] {
				t.Fatalf("n=%d StoreRotated[%d] = %v, want %v", n, i, dirty[i], zeroed[i])
			}
		}
	}
}
