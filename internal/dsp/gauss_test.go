package dsp

import (
	"math"
	"testing"
)

// TestNormMoments checks the first four moments of the ziggurat sampler
// against the standard normal. Tolerances are ~5 sigma for 4M draws, so a
// table or squeeze bug fails deterministically while a healthy sampler
// never does.
func TestNormMoments(t *testing.T) {
	g := NewGauss(42)
	const n = 4_000_000
	var m1, m2, m3, m4 float64
	for i := 0; i < n; i++ {
		x := g.Norm()
		m1 += x
		m2 += x * x
		m3 += x * x * x
		m4 += x * x * x * x
	}
	m1 /= n
	m2 /= n
	m3 /= n
	m4 /= n
	if math.Abs(m1) > 0.005 || math.Abs(m2-1) > 0.01 || math.Abs(m3) > 0.02 || math.Abs(m4-3) > 0.05 {
		t.Fatalf("moments off: mean=%g var=%g skew=%g kurt=%g", m1, m2, m3, m4)
	}
}

// TestZigguratFastPath pins the layer-table geometry: the rectangle accept
// test must take the multiply-free fast path for the overwhelming majority
// of draws (the 256-layer ziggurat rejects ~1.5%). A mis-derived zigK
// table would push a large fraction of draws onto the slow path and show
// up here long before it showed up as a distribution error.
func TestZigguratFastPath(t *testing.T) {
	g := NewGauss(1)
	slow := 0
	const draws = 1_000_000
	for k := 0; k < draws; k++ {
		u := g.next()
		i := u & (zigLayers - 1)
		j := int64(u) >> 11
		neg := j >> 63
		if uint64((j^neg)-neg) >= zigK[i] {
			slow++
		}
	}
	if rate := float64(slow) / draws; rate > 0.03 {
		t.Fatalf("slow-path rate = %.4f, want < 0.03", rate)
	}
}

// TestFillNormMatchesNormSequence pins the batched generator to the scalar
// one: FillNorm must produce bit-identical values to repeated Norm calls
// and leave the stream at the same position, for lengths around and across
// the 4-wide unroll boundary.
func TestFillNormMatchesNormSequence(t *testing.T) {
	for _, n := range []int{1, 3, 4, 7, 2048} {
		a := NewGauss(99)
		b := NewGauss(99)
		dst := make([]float64, n)
		a.FillNorm(dst)
		for i := range dst {
			if v := b.Norm(); v != dst[i] {
				t.Fatalf("n=%d idx %d: FillNorm %v != Norm %v", n, i, dst[i], v)
			}
		}
		if a.state != b.state {
			t.Fatalf("n=%d: state diverged", n)
		}
	}
}

// TestAddNoiseMatchesNormSequence pins the fused noise kernel's stream
// contract: AddNoise(dst, sigma) consumes exactly 2*len(dst) draws from
// the same positions Norm would, adds Norm()*sigma within 1 ulp per
// component (the fast path folds sigma into the layer-width table, which
// reassociates one rounding), and leaves the stream at the same position.
func TestAddNoiseMatchesNormSequence(t *testing.T) {
	const sigma = 0.37
	for _, n := range []int{1, 2, 3, 4, 5, 8, 256} {
		a := NewGauss(7)
		b := NewGauss(7)
		dst := make([]complex128, n)
		for i := range dst {
			dst[i] = complex(float64(i), -float64(i))
		}
		a.AddNoise(dst, sigma)
		for i := range dst {
			wantRe := float64(i) + b.Norm()*sigma
			wantIm := -float64(i) + b.Norm()*sigma
			if re := real(dst[i]); re != wantRe && !withinOneUlp(re, wantRe) {
				t.Fatalf("n=%d idx %d re: got %v want %v", n, i, re, wantRe)
			}
			if im := imag(dst[i]); im != wantIm && !withinOneUlp(im, wantIm) {
				t.Fatalf("n=%d idx %d im: got %v want %v", n, i, im, wantIm)
			}
		}
		if a.state != b.state {
			t.Fatalf("n=%d: AddNoise left the stream at a different position", n)
		}
	}
}

// withinOneUlp reports whether got is within one unit in the last place of
// want.
func withinOneUlp(got, want float64) bool {
	return got == math.Nextafter(want, math.Inf(1)) || got == math.Nextafter(want, math.Inf(-1))
}

// TestAddNoiseDeterministic checks that the same seed reproduces the same
// noise byte-for-byte — the property the detection pipeline's per-frame
// sub-streams rely on for worker-count-independent output.
func TestAddNoiseDeterministic(t *testing.T) {
	mk := func() []complex128 {
		g := NewGauss(123)
		dst := make([]complex128, 300)
		g.AddNoise(dst, 1.5)
		return dst
	}
	x, y := mk(), mk()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("idx %d: %v != %v across identical seeds", i, x[i], y[i])
		}
	}
}

func BenchmarkGaussNorm(b *testing.B) {
	g := NewGauss(1)
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += g.Norm()
	}
	_ = s
}

func BenchmarkGaussFill2048(b *testing.B) {
	g := NewGauss(1)
	dst := make([]float64, 2048)
	b.SetBytes(2048 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FillNorm(dst)
	}
}

func BenchmarkGaussAddNoise1024(b *testing.B) {
	g := NewGauss(1)
	dst := make([]complex128, 1024)
	b.SetBytes(1024 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AddNoise(dst, 0.5)
	}
}
