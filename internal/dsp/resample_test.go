package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResampleLinearFunction(t *testing.T) {
	// Resampling a linear function must be exact regardless of the input
	// sample placement.
	xs := []float64{0, 0.3, 1.1, 2.0, 3.7, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2*x + 1
	}
	grid, vals, err := Resample(xs, ys, 0.5, 4.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range grid {
		want := 2*grid[i] + 1
		if math.Abs(vals[i]-want) > 1e-12 {
			t.Errorf("vals[%d] = %g at x=%g, want %g", i, vals[i], grid[i], want)
		}
	}
}

func TestResampleUnsortedInput(t *testing.T) {
	xs := []float64{3, 1, 2, 0}
	ys := []float64{9, 1, 4, 0} // y = x^2 at those points
	_, vals, err := Resample(xs, ys, 0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 4, 9}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Errorf("vals[%d] = %g, want %g", i, vals[i], want[i])
		}
	}
}

func TestResampleClampsOutsideSpan(t *testing.T) {
	xs := []float64{1, 2}
	ys := []float64{10, 20}
	_, vals, err := Resample(xs, ys, 0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 10 {
		t.Errorf("left clamp = %g, want 10", vals[0])
	}
	if vals[3] != 20 {
		t.Errorf("right clamp = %g, want 20", vals[3])
	}
}

func TestResampleErrors(t *testing.T) {
	if _, _, err := Resample([]float64{1, 2}, []float64{1}, 0, 1, 4); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, _, err := Resample([]float64{1}, []float64{1}, 0, 1, 4); err == nil {
		t.Error("single sample not rejected")
	}
	if _, _, err := Resample([]float64{1, 2}, []float64{1, 2}, 0, 1, 1); err == nil {
		t.Error("n < 2 not rejected")
	}
	if _, _, err := Resample([]float64{1, 2}, []float64{1, 2}, 2, 1, 4); err == nil {
		t.Error("x1 <= x0 not rejected")
	}
}

func TestResampleDoesNotModifyInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	ys := []float64{30, 10, 20}
	_, _, err := Resample(xs, ys, 1, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("xs modified: %v", xs)
	}
	if ys[0] != 30 || ys[1] != 10 || ys[2] != 20 {
		t.Errorf("ys modified: %v", ys)
	}
}

func TestResampleGridProperty(t *testing.T) {
	// Property: output grid is uniform, spans [x0, x1], and values stay
	// within the min/max of the inputs (linear interpolation cannot
	// overshoot).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
			ys[i] = rng.Float64() * 5
		}
		// Ensure at least two distinct xs.
		xs[0], xs[1] = 0, 10
		grid, vals, err := Resample(xs, ys, 1, 9, 17)
		if err != nil {
			return false
		}
		lo, _ := Min(ys)
		hi, _ := Max(ys)
		step := grid[1] - grid[0]
		for i := range grid {
			if i > 0 && math.Abs(grid[i]-grid[i-1]-step) > 1e-9 {
				return false
			}
			if vals[i] < lo-1e-9 || vals[i] > hi+1e-9 {
				return false
			}
		}
		return math.Abs(grid[0]-1) < 1e-12 && math.Abs(grid[16]-9) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDetrendFlattensEnvelope(t *testing.T) {
	// A slowly varying envelope times a fast ripple: detrending should
	// recover a series with mean ~1 regardless of the envelope.
	n := 400
	ys := make([]float64, n)
	for i := range ys {
		env := 5 + 4*math.Sin(float64(i)/200)
		ripple := 1 + 0.3*math.Cos(float64(i)*0.9)
		ys[i] = env * ripple
	}
	det, envEst := Detrend(ys, 25)
	if m := Mean(det); math.Abs(m-1) > 0.05 {
		t.Errorf("detrended mean = %g, want ~1", m)
	}
	for i, e := range envEst {
		if e <= 0 {
			t.Fatalf("envelope[%d] = %g, want > 0", i, e)
		}
	}
}

func TestDetrendEdgeCases(t *testing.T) {
	det, env := Detrend(nil, 4)
	if len(det) != 0 || len(env) != 0 {
		t.Errorf("Detrend(nil) = %v, %v", det, env)
	}
	det, _ = Detrend([]float64{0, 0, 0}, 0)
	for _, v := range det {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("Detrend of zeros produced %g", v)
		}
	}
}
