//go:build !ros_purego

package dsp

import "math"

const toneKernelName = "lanes4"

// ToneFill writes the tone cur*step^t into the split re/im lanes for
// t = 0..len(re)-1. Four phasor lanes advance by step^4 so the four complex
// multiply chains overlap in flight instead of serializing on one; the
// lanes renormalize to the starting magnitude every toneRenormInterval
// samples. re and im must have equal length.
func ToneFill(re, im []float64, curRe, curIm, stepRe, stepIm float64) {
	n := len(re)
	im = im[:n]
	// step^2 and step^4 for the lane offsets and the lane stride.
	s2r := stepRe*stepRe - stepIm*stepIm
	s2i := 2 * stepRe * stepIm
	s4r := s2r*s2r - s2i*s2i
	s4i := 2 * s2r * s2i
	c0r, c0i := curRe, curIm
	c1r := curRe*stepRe - curIm*stepIm
	c1i := curRe*stepIm + curIm*stepRe
	c2r := curRe*s2r - curIm*s2i
	c2i := curRe*s2i + curIm*s2r
	c3r := c2r*stepRe - c2i*stepIm
	c3i := c2r*stepIm + c2i*stepRe
	amp2 := curRe*curRe + curIm*curIm
	t := 0
	renorm := toneRenormInterval
	for ; t+4 <= n; t += 4 {
		re[t], im[t] = c0r, c0i
		re[t+1], im[t+1] = c1r, c1i
		re[t+2], im[t+2] = c2r, c2i
		re[t+3], im[t+3] = c3r, c3i
		c0r, c0i = c0r*s4r-c0i*s4i, c0r*s4i+c0i*s4r
		c1r, c1i = c1r*s4r-c1i*s4i, c1r*s4i+c1i*s4r
		c2r, c2i = c2r*s4r-c2i*s4i, c2r*s4i+c2i*s4r
		c3r, c3i = c3r*s4r-c3i*s4i, c3r*s4i+c3i*s4r
		if t >= renorm && amp2 > 0 {
			renorm += toneRenormInterval
			if m := c0r*c0r + c0i*c0i; m > 0 {
				s := math.Sqrt(amp2 / m)
				c0r, c0i = c0r*s, c0i*s
			}
			if m := c1r*c1r + c1i*c1i; m > 0 {
				s := math.Sqrt(amp2 / m)
				c1r, c1i = c1r*s, c1i*s
			}
			if m := c2r*c2r + c2i*c2i; m > 0 {
				s := math.Sqrt(amp2 / m)
				c2r, c2i = c2r*s, c2i*s
			}
			if m := c3r*c3r + c3i*c3i; m > 0 {
				s := math.Sqrt(amp2 / m)
				c3r, c3i = c3r*s, c3i*s
			}
		}
	}
	for ; t < n; t++ {
		re[t], im[t] = c0r, c0i
		c0r, c0i = c0r*stepRe-c0i*stepIm, c0r*stepIm+c0i*stepRe
	}
}

// ToneFill32 is ToneFill with float32 lane stores: the four phasor lanes
// still advance in float64 (the recurrence's drift bound depends on it — a
// float32 recurrence would need renorms every ~32 samples), only the stores
// narrow. Halving the lane traffic is the entire win; the arithmetic is
// identical, so the narrowed values are the f64 tone rounded once.
func ToneFill32(re, im []float32, curRe, curIm, stepRe, stepIm float64) {
	n := len(re)
	im = im[:n]
	s2r := stepRe*stepRe - stepIm*stepIm
	s2i := 2 * stepRe * stepIm
	s4r := s2r*s2r - s2i*s2i
	s4i := 2 * s2r * s2i
	c0r, c0i := curRe, curIm
	c1r := curRe*stepRe - curIm*stepIm
	c1i := curRe*stepIm + curIm*stepRe
	c2r := curRe*s2r - curIm*s2i
	c2i := curRe*s2i + curIm*s2r
	c3r := c2r*stepRe - c2i*stepIm
	c3i := c2r*stepIm + c2i*stepRe
	amp2 := curRe*curRe + curIm*curIm
	t := 0
	renorm := toneRenormInterval
	for ; t+4 <= n; t += 4 {
		re[t], im[t] = float32(c0r), float32(c0i)
		re[t+1], im[t+1] = float32(c1r), float32(c1i)
		re[t+2], im[t+2] = float32(c2r), float32(c2i)
		re[t+3], im[t+3] = float32(c3r), float32(c3i)
		c0r, c0i = c0r*s4r-c0i*s4i, c0r*s4i+c0i*s4r
		c1r, c1i = c1r*s4r-c1i*s4i, c1r*s4i+c1i*s4r
		c2r, c2i = c2r*s4r-c2i*s4i, c2r*s4i+c2i*s4r
		c3r, c3i = c3r*s4r-c3i*s4i, c3r*s4i+c3i*s4r
		if t >= renorm && amp2 > 0 {
			renorm += toneRenormInterval
			if m := c0r*c0r + c0i*c0i; m > 0 {
				s := math.Sqrt(amp2 / m)
				c0r, c0i = c0r*s, c0i*s
			}
			if m := c1r*c1r + c1i*c1i; m > 0 {
				s := math.Sqrt(amp2 / m)
				c1r, c1i = c1r*s, c1i*s
			}
			if m := c2r*c2r + c2i*c2i; m > 0 {
				s := math.Sqrt(amp2 / m)
				c2r, c2i = c2r*s, c2i*s
			}
			if m := c3r*c3r + c3i*c3i; m > 0 {
				s := math.Sqrt(amp2 / m)
				c3r, c3i = c3r*s, c3i*s
			}
		}
	}
	for ; t < n; t++ {
		re[t], im[t] = float32(c0r), float32(c0i)
		c0r, c0i = c0r*stepRe-c0i*stepIm, c0r*stepIm+c0i*stepRe
	}
}

// AccumulateTone adds the split-lane tone to dst: dst[t] += re[t] + i*im[t].
// This is the steering identity rotation (channel 0) — a pure streaming add
// with no dependency between iterations.
func AccumulateTone(dst []complex128, re, im []float64) {
	re = re[:len(dst)]
	im = im[:len(dst)]
	for t := range dst {
		dst[t] += complex(re[t], im[t])
	}
}

// AccumulateRotated adds the split-lane tone rotated by the constant phasor
// a = aRe + i*aIm to dst: dst[t] += a * (re[t] + i*im[t]). Iterations are
// independent, so the four multiplies and four adds per sample pipeline
// freely.
func AccumulateRotated(dst []complex128, re, im []float64, aRe, aIm float64) {
	re = re[:len(dst)]
	im = im[:len(dst)]
	for t := range dst {
		tr, ti := re[t], im[t]
		dst[t] += complex(aRe*tr-aIm*ti, aRe*ti+aIm*tr)
	}
}

// StoreTone is AccumulateTone with = instead of +=: the first scatterer of a
// frame defines the buffer contents outright, so the synthesis loop skips
// zeroing the pooled frame beforehand.
func StoreTone(dst []complex128, re, im []float64) {
	re = re[:len(dst)]
	im = im[:len(dst)]
	for t := range dst {
		dst[t] = complex(re[t], im[t])
	}
}

// StoreRotated is AccumulateRotated with = instead of +=.
func StoreRotated(dst []complex128, re, im []float64, aRe, aIm float64) {
	re = re[:len(dst)]
	im = im[:len(dst)]
	for t := range dst {
		tr, ti := re[t], im[t]
		dst[t] = complex(aRe*tr-aIm*ti, aRe*ti+aIm*tr)
	}
}
