package dsp

import "math"

// The RoS decoder treats presence/absence of coding peaks as on-off keying
// (OOK). Following Sec 7.1 of the paper, the decoding SNR of a read is
//
//	SNR = (mu1 - mu0)^2 / sigma^2
//
// where mu1 and mu0 are the mean amplitudes of "1" and "0" coding positions
// and sigma is the standard deviation of the coding-peak amplitudes, and the
// bit error rate follows the OOK model
//
//	BER = 1/2 * erfc( sqrt(SNR) / (2*sqrt(2)) ).
//
// The paper's anchor points reproduce exactly: 15.8 dB -> 0.1%, 14 dB ->
// 0.6%, 10 dB -> 5.7%.

// OOKBer converts a linear decoding SNR to the OOK bit error rate.
func OOKBer(snrLinear float64) float64 {
	if snrLinear <= 0 {
		return 0.5
	}
	return 0.5 * math.Erfc(math.Sqrt(snrLinear)/(2*math.Sqrt2))
}

// OOKBerFromDB converts an SNR in dB to the OOK bit error rate.
func OOKBerFromDB(snrDB float64) float64 {
	return OOKBer(math.Pow(10, snrDB/10))
}

// OOKSnrForBer returns the linear SNR required to achieve the target BER,
// inverting OOKBer numerically by bisection. Targets outside (0, 0.5) are
// clamped.
func OOKSnrForBer(ber float64) float64 {
	if ber >= 0.5 {
		return 0
	}
	if ber < 1e-15 {
		ber = 1e-15
	}
	lo, hi := 0.0, 1e6
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if OOKBer(mid) > ber {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// DecodingSNR computes the paper's decoding SNR from the measured "1" peak
// amplitudes, the measured "0"/noise amplitudes, and the amplitude standard
// deviation sigma. It returns the linear SNR; a non-positive sigma yields
// +Inf for separated means and 0 otherwise.
func DecodingSNR(mu1, mu0, sigma float64) float64 {
	d := mu1 - mu0
	if sigma <= 0 {
		if d != 0 {
			return math.Inf(1)
		}
		return 0
	}
	return d * d / (sigma * sigma)
}
