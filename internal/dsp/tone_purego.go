//go:build ros_purego

package dsp

import "math"

const toneKernelName = "purego"

// ToneFill writes the tone cur*step^t into the split re/im lanes for
// t = 0..len(re)-1. Portable single-lane rotation recurrence: the reference
// shape of the kernel, kept behind the ros_purego tag so the lane kernel
// always has a plainly-auditable twin to agree with. The phasor
// renormalizes to the starting magnitude every toneRenormInterval samples,
// matching the lane kernel's drift bound. re and im must have equal length.
func ToneFill(re, im []float64, curRe, curIm, stepRe, stepIm float64) {
	n := len(re)
	im = im[:n]
	amp2 := curRe*curRe + curIm*curIm
	cr, ci := curRe, curIm
	renorm := toneRenormInterval
	for t := 0; t < n; t++ {
		re[t], im[t] = cr, ci
		cr, ci = cr*stepRe-ci*stepIm, cr*stepIm+ci*stepRe
		if t >= renorm && amp2 > 0 {
			renorm += toneRenormInterval
			if m := cr*cr + ci*ci; m > 0 {
				s := math.Sqrt(amp2 / m)
				cr, ci = cr*s, ci*s
			}
		}
	}
}

// ToneFill32 is ToneFill with float32 lane stores: the recurrence stays in
// float64 (the drift bound depends on it), only the stores narrow.
func ToneFill32(re, im []float32, curRe, curIm, stepRe, stepIm float64) {
	n := len(re)
	im = im[:n]
	amp2 := curRe*curRe + curIm*curIm
	cr, ci := curRe, curIm
	renorm := toneRenormInterval
	for t := 0; t < n; t++ {
		re[t], im[t] = float32(cr), float32(ci)
		cr, ci = cr*stepRe-ci*stepIm, cr*stepIm+ci*stepRe
		if t >= renorm && amp2 > 0 {
			renorm += toneRenormInterval
			if m := cr*cr + ci*ci; m > 0 {
				s := math.Sqrt(amp2 / m)
				cr, ci = cr*s, ci*s
			}
		}
	}
}

// AccumulateTone adds the split-lane tone to dst: dst[t] += re[t] + i*im[t].
func AccumulateTone(dst []complex128, re, im []float64) {
	re = re[:len(dst)]
	im = im[:len(dst)]
	for t := range dst {
		dst[t] += complex(re[t], im[t])
	}
}

// AccumulateRotated adds the split-lane tone rotated by the constant phasor
// a = aRe + i*aIm to dst: dst[t] += a * (re[t] + i*im[t]).
func AccumulateRotated(dst []complex128, re, im []float64, aRe, aIm float64) {
	re = re[:len(dst)]
	im = im[:len(dst)]
	for t := range dst {
		tr, ti := re[t], im[t]
		dst[t] += complex(aRe*tr-aIm*ti, aRe*ti+aIm*tr)
	}
}

// StoreTone is AccumulateTone with = instead of +=: the first scatterer of a
// frame defines the buffer contents outright, so the synthesis loop skips
// zeroing the pooled frame beforehand.
func StoreTone(dst []complex128, re, im []float64) {
	re = re[:len(dst)]
	im = im[:len(dst)]
	for t := range dst {
		dst[t] = complex(re[t], im[t])
	}
}

// StoreRotated is AccumulateRotated with = instead of +=.
func StoreRotated(dst []complex128, re, im []float64, aRe, aIm float64) {
	re = re[:len(dst)]
	im = im[:len(dst)]
	for t := range dst {
		tr, ti := re[t], im[t]
		dst[t] = complex(aRe*tr-aIm*ti, aRe*ti+aIm*tr)
	}
}
