package dsp

import (
	"math"
	"testing"
)

func TestOOKBerPaperAnchors(t *testing.T) {
	// Sec 7.1: 15.8 dB -> 0.1%, 14 dB -> 0.6%, 10 dB -> 5.7%, 15 dB -> 0.3%.
	cases := []struct {
		snrDB float64
		ber   float64
		tol   float64
	}{
		{15.8, 0.001, 0.0005},
		{14.0, 0.006, 0.002},
		{10.0, 0.057, 0.01},
		{15.0, 0.003, 0.001},
	}
	for _, c := range cases {
		got := OOKBerFromDB(c.snrDB)
		if math.Abs(got-c.ber) > c.tol {
			t.Errorf("BER(%g dB) = %g, want %g +/- %g", c.snrDB, got, c.ber, c.tol)
		}
	}
}

func TestOOKBerMonotone(t *testing.T) {
	prev := 1.0
	for snr := 0.0; snr < 40; snr += 0.5 {
		b := OOKBerFromDB(snr)
		if b > prev {
			t.Fatalf("BER increased with SNR at %g dB: %g > %g", snr, b, prev)
		}
		prev = b
	}
}

func TestOOKBerDegenerate(t *testing.T) {
	if got := OOKBer(0); got != 0.5 {
		t.Errorf("BER(0) = %g, want 0.5", got)
	}
	if got := OOKBer(-1); got != 0.5 {
		t.Errorf("BER(-1) = %g, want 0.5", got)
	}
}

func TestOOKSnrForBerInverts(t *testing.T) {
	for _, ber := range []float64{0.1, 0.01, 0.001, 1e-6} {
		snr := OOKSnrForBer(ber)
		back := OOKBer(snr)
		if math.Abs(back-ber) > ber*0.01 {
			t.Errorf("round trip BER %g -> SNR %g -> BER %g", ber, snr, back)
		}
	}
	if got := OOKSnrForBer(0.5); got != 0 {
		t.Errorf("SNR for BER 0.5 = %g, want 0", got)
	}
}

func TestDecodingSNR(t *testing.T) {
	if got := DecodingSNR(3, 1, 1); got != 4 {
		t.Errorf("DecodingSNR(3, 1, 1) = %g, want 4", got)
	}
	if got := DecodingSNR(1, 1, 0); got != 0 {
		t.Errorf("DecodingSNR equal means, zero sigma = %g, want 0", got)
	}
	if got := DecodingSNR(2, 1, 0); !math.IsInf(got, 1) {
		t.Errorf("DecodingSNR separated means, zero sigma = %g, want +Inf", got)
	}
}

func TestDBHelpers(t *testing.T) {
	if got := DB(100); math.Abs(got-20) > 1e-12 {
		t.Errorf("DB(100) = %g, want 20", got)
	}
	if got := FromDB(30); math.Abs(got-1000) > 1e-9 {
		t.Errorf("FromDB(30) = %g, want 1000", got)
	}
	if got := AmpDB(10); math.Abs(got-20) > 1e-12 {
		t.Errorf("AmpDB(10) = %g, want 20", got)
	}
	if got := AmpFromDB(40); math.Abs(got-100) > 1e-9 {
		t.Errorf("AmpFromDB(40) = %g, want 100", got)
	}
	if !math.IsInf(DB(0), -1) || !math.IsInf(AmpDB(-1), -1) {
		t.Error("DB/AmpDB of non-positive input should be -Inf")
	}
}

func TestStatsHelpers(t *testing.T) {
	x := []float64{4, 1, 3, 2}
	if m := Mean(x); m != 2.5 {
		t.Errorf("Mean = %g, want 2.5", m)
	}
	if v := Variance(x); math.Abs(v-1.25) > 1e-12 {
		t.Errorf("Variance = %g, want 1.25", v)
	}
	if s := StdDev(x); math.Abs(s-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("StdDev = %g", s)
	}
	if m := Median(x); m != 2.5 {
		t.Errorf("Median = %g, want 2.5", m)
	}
	if p := Percentile(x, 0); p != 1 {
		t.Errorf("P0 = %g, want 1", p)
	}
	if p := Percentile(x, 100); p != 4 {
		t.Errorf("P100 = %g, want 4", p)
	}
	if v, i := Max(x); v != 4 || i != 0 {
		t.Errorf("Max = %g at %d", v, i)
	}
	if v, i := Min(x); v != 1 || i != 1 {
		t.Errorf("Min = %g at %d", v, i)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %g", m)
	}
	if v, i := Max(nil); v != 0 || i != -1 {
		t.Errorf("Max(nil) = %g, %d", v, i)
	}
	if v := Variance([]float64{1}); v != 0 {
		t.Errorf("Variance of singleton = %g", v)
	}
	// Empty input reads as "no signal", not 0 dBm.
	if p := Percentile(nil, 50); !math.IsInf(p, -1) {
		t.Errorf("Percentile(nil) = %g, want -Inf", p)
	}
	if m := Median(nil); !math.IsInf(m, -1) {
		t.Errorf("Median(nil) = %g, want -Inf", m)
	}
}
