// PlanSet is the dsp layer's resource handle: one set of transform memo
// caches — fused window+FFT plans, window coefficient tables, twiddle
// tables, Bluestein chirp plans — owned by whoever constructed it instead of
// by the process. The package-level entry points (PlanFor,
// Window.CachedCoefficients, the FFT helpers) remain as thin shims over one
// default set, so existing callers keep their process-lifetime behavior;
// long-lived servers juggling many radar configurations build one PlanSet
// per configuration handle and Clear it deterministically when the handle is
// retired.
package dsp

import (
	"fmt"

	"ros/internal/obs"
)

// Cache names a PlanSet reports under, passed to the CacheGauge provider so
// an owning handle can label one shared gauge vector per cache instead of
// colliding on global gauge names.
const (
	CachePlans    = "dsp_plan"
	CacheWindows  = "dsp_window"
	CacheTwiddles = "dsp_twiddle"
	CacheChirps   = "dsp_chirp"
)

// CacheGauge provisions the entry-count gauge for one named cache of a
// resource handle. The default set binds the legacy ros_dsp_*_entries
// gauges; per-Engine sets bind labeled children of one shared vector.
type CacheGauge func(cache string) *obs.Gauge

// PlanSet owns the transform memo caches for one configuration handle.
// Entries are immutable and safe for concurrent use; the set itself is safe
// for concurrent use by any number of goroutines.
type PlanSet struct {
	plans    *obs.CountedMap
	windows  *obs.CountedMap
	twiddles *obs.CountedMap
	chirps   *obs.CountedMap
}

// NewPlanSet returns an empty plan set whose caches mirror their entry
// counts into the gauges the provider hands out.
func NewPlanSet(gauge CacheGauge) *PlanSet {
	return &PlanSet{
		plans:    obs.NewCountedMap(gauge(CachePlans)),
		windows:  obs.NewCountedMap(gauge(CacheWindows)),
		twiddles: obs.NewCountedMap(gauge(CacheTwiddles)),
		chirps:   obs.NewCountedMap(gauge(CacheChirps)),
	}
}

// PlanFor returns the set's cached execution plan for n-point transforms
// under the given window, building it on first use. It panics if n < 1.
func (s *PlanSet) PlanFor(n int, w Window) *Plan {
	if n < 1 {
		panic(fmt.Sprintf("dsp: PlanFor with size %d", n))
	}
	key := [2]int{n, int(w)}
	if p, ok := s.plans.Load(key); ok {
		return p.(*Plan)
	}
	p := s.newPlan(n, w)
	actual, _ := s.plans.LoadOrStore(key, p)
	return actual.(*Plan)
}

// WindowCoefficients returns the window coefficients alongside the coherent
// gain from the set's cache. The returned slice is shared: callers must
// treat it as read-only (use Window.Coefficients for a private copy).
func (s *PlanSet) WindowCoefficients(w Window, n int) ([]float64, float64) {
	key := [2]int{int(w), n}
	if e, ok := s.windows.Load(key); ok {
		ent := e.(*windowEntry)
		return ent.coeffs, ent.gain
	}
	c := w.Coefficients(n)
	sum := 0.0
	for _, v := range c {
		sum += v
	}
	gain := 1.0
	if len(c) > 0 {
		gain = sum / float64(len(c))
	}
	actual, _ := s.windows.LoadOrStore(key, &windowEntry{coeffs: c, gain: gain})
	ent := actual.(*windowEntry)
	return ent.coeffs, ent.gain
}

// twiddleTable returns the set's cached forward roots of unity for size n:
// table[j] = exp(-2*pi*i*j/n) for j < n/2.
func (s *PlanSet) twiddleTable(n int) []complex128 {
	if t, ok := s.twiddles.Load(n); ok {
		return t.([]complex128)
	}
	t := newTwiddleTable(n)
	actual, _ := s.twiddles.LoadOrStore(n, t)
	return actual.([]complex128)
}

// chirpPlanFor returns the set's cached Bluestein precomputation for one
// (length, direction) pair.
func (s *PlanSet) chirpPlanFor(n int, inverse bool) *chirpPlan {
	sign := 0
	if inverse {
		sign = 1
	}
	key := [2]int{n, sign}
	if p, ok := s.chirps.Load(key); ok {
		return p.(*chirpPlan)
	}
	p := newChirpPlan(n, inverse, s.twiddleTable)
	actual, _ := s.chirps.LoadOrStore(key, p)
	return actual.(*chirpPlan)
}

// Clear drops every cache in the set and zeroes the gauges. Plans already
// handed out stay valid — each Plan captured its tables at build time — and
// subsequent calls rebuild.
func (s *PlanSet) Clear() {
	s.plans.Clear()
	s.windows.Clear()
	s.twiddles.Clear()
	s.chirps.Clear()
}
