package dsp

import (
	"math"
	"testing"
)

func TestFindPeaksBasic(t *testing.T) {
	x := []float64{0, 1, 0, 0, 3, 0, 0, 2, 0}
	peaks := FindPeaks(x, 0.5, 1)
	if len(peaks) != 3 {
		t.Fatalf("got %d peaks, want 3: %+v", len(peaks), peaks)
	}
	// Sorted by descending value.
	if peaks[0].Index != 4 || peaks[1].Index != 7 || peaks[2].Index != 1 {
		t.Errorf("peak order = %d, %d, %d; want 4, 7, 1", peaks[0].Index, peaks[1].Index, peaks[2].Index)
	}
}

func TestFindPeaksMinHeight(t *testing.T) {
	x := []float64{0, 1, 0, 0, 3, 0}
	peaks := FindPeaks(x, 2, 1)
	if len(peaks) != 1 || peaks[0].Index != 4 {
		t.Fatalf("peaks = %+v, want single peak at 4", peaks)
	}
}

func TestFindPeaksMinSeparation(t *testing.T) {
	x := []float64{0, 5, 0, 4, 0, 0, 0, 0, 3, 0}
	peaks := FindPeaks(x, 0.5, 4)
	// The peak at 3 is within 4 samples of the taller peak at 1 and must be
	// suppressed; the peak at 8 survives.
	if len(peaks) != 2 {
		t.Fatalf("got %d peaks, want 2: %+v", len(peaks), peaks)
	}
	if peaks[0].Index != 1 || peaks[1].Index != 8 {
		t.Errorf("peaks at %d, %d; want 1, 8", peaks[0].Index, peaks[1].Index)
	}
}

func TestRefinePeakQuadratic(t *testing.T) {
	// Sample a parabola with vertex at 4.3: refined position should recover
	// it to high accuracy.
	vertex := 4.3
	x := make([]float64, 9)
	for i := range x {
		d := float64(i) - vertex
		x[i] = 10 - d*d
	}
	peaks := FindPeaks(x, 0, 1)
	if len(peaks) == 0 {
		t.Fatal("no peak found")
	}
	if math.Abs(peaks[0].Pos-vertex) > 1e-9 {
		t.Errorf("refined position = %g, want %g", peaks[0].Pos, vertex)
	}
	if math.Abs(peaks[0].Value-10) > 1e-9 {
		t.Errorf("refined value = %g, want 10", peaks[0].Value)
	}
}

func TestFindPeaksEmptyAndFlat(t *testing.T) {
	if p := FindPeaks(nil, 0, 1); len(p) != 0 {
		t.Errorf("peaks of nil = %+v", p)
	}
	if p := FindPeaks([]float64{1, 1, 1, 1}, 0, 1); len(p) != 0 {
		t.Errorf("peaks of flat = %+v", p)
	}
}

func TestSampleAt(t *testing.T) {
	x := []float64{0, 10, 20}
	cases := []struct{ pos, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.25, 12.5}, {2, 20}, {5, 20},
	}
	for _, c := range cases {
		if got := SampleAt(x, c.pos); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SampleAt(%g) = %g, want %g", c.pos, got, c.want)
		}
	}
	if got := SampleAt(nil, 1); got != 0 {
		t.Errorf("SampleAt(nil) = %g, want 0", got)
	}
}

func TestMaxAround(t *testing.T) {
	x := []float64{1, 9, 2, 3, 8, 0}
	if got := MaxAround(x, 3, 1); got != 8 {
		t.Errorf("MaxAround(center=3, hw=1) = %g, want 8", got)
	}
	if got := MaxAround(x, 0, 2); got != 9 {
		t.Errorf("MaxAround(center=0, hw=2) = %g, want 9", got)
	}
	if got := MaxAround(x, 5, 0); got != 0 {
		t.Errorf("MaxAround(center=5, hw=0) = %g, want 0", got)
	}
}
