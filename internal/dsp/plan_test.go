package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// planReference computes the unfused pipeline the Plan replaces: window the
// input, divide by the coherent gain, and run the allocating (I)FFT.
func planReference(x []complex128, w Window, inverse bool) []complex128 {
	n := len(x)
	c := w.Coefficients(n)
	g := w.CoherentGain(n)
	y := make([]complex128, n)
	for i, v := range x {
		y[i] = v * complex(c[i]/g, 0)
	}
	if inverse {
		return IFFT(y)
	}
	return FFT(y)
}

func randomSignal(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxRelErr(got, want []complex128) float64 {
	scale := 0.0
	for _, v := range want {
		if a := cmplx.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		scale = 1
	}
	worst := 0.0
	for i := range want {
		if d := cmplx.Abs(got[i]-want[i]) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

func TestPlanMatchesUnfusedPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 12, 100, 255} {
		for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
			for _, inverse := range []bool{false, true} {
				p := PlanFor(n, w)
				if p.Size() != n || p.PlanWindow() != w {
					t.Fatalf("plan identity: size %d window %v", p.Size(), p.PlanWindow())
				}
				x := randomSignal(rng, n)
				want := planReference(x, w, inverse)
				dst := make([]complex128, n)
				if inverse {
					p.Inverse(dst, x)
				} else {
					p.Forward(dst, x)
				}
				if err := maxRelErr(dst, want); err > 1e-12 {
					t.Errorf("n=%d w=%v inverse=%v: max rel err %g", n, w, inverse, err)
				}
			}
		}
	}
}

func TestPlanInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{16, 100} {
		p := PlanFor(n, Hann)
		x := randomSignal(rng, n)
		want := make([]complex128, n)
		p.Forward(want, x)
		p.Forward(x, x)
		if err := maxRelErr(x, want); err > 0 {
			t.Errorf("n=%d: in-place execution differs from out-of-place by %g", n, err)
		}
	}
}

func TestPlanCached(t *testing.T) {
	if PlanFor(64, Hann) != PlanFor(64, Hann) {
		t.Error("PlanFor rebuilt an existing plan")
	}
	if PlanFor(64, Hann) == PlanFor(64, Hamming) {
		t.Error("plans of different windows shared")
	}
	if PlanFor(64, Hann) == PlanFor(128, Hann) {
		t.Error("plans of different sizes shared")
	}
}

func TestPlanForwardMany(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, channels = 32, 4
	p := PlanFor(n, Hann)
	src := randomSignal(rng, channels*n)
	dst := make([]complex128, channels*n)
	p.ForwardMany(dst, src, channels, n)
	for k := 0; k < channels; k++ {
		want := make([]complex128, n)
		p.Forward(want, src[k*n:(k+1)*n])
		if err := maxRelErr(dst[k*n:(k+1)*n], want); err > 0 {
			t.Errorf("channel %d differs from single-channel execution by %g", k, err)
		}
	}
}

func TestPlanInverseManyRoundTrip(t *testing.T) {
	// A calibrated Rectangular inverse of a forward transform recovers the
	// signal: Inverse(FFT(x)) == x.
	rng := rand.New(rand.NewSource(10))
	const n, channels = 64, 3
	p := PlanFor(n, Rectangular)
	src := randomSignal(rng, channels*n)
	mid := make([]complex128, channels*n)
	p.ForwardMany(mid, src, channels, n)
	back := make([]complex128, channels*n)
	p.InverseMany(back, mid, channels, n)
	if err := maxRelErr(back, src); err > 1e-12 {
		t.Errorf("round trip error %g", err)
	}
}

func TestPlanCalibratedToneAmplitude(t *testing.T) {
	// A full-bin tone of amplitude A must peak at |A| under any window once
	// the coherent gain is divided out — the calibration RangeProfile
	// depends on.
	const n = 128
	const amp = 3.5
	for _, w := range []Window{Rectangular, Hann, Hamming} {
		p := PlanFor(n, w)
		x := make([]complex128, n)
		for i := range x {
			s, c := math.Sincos(2 * math.Pi * 5 * float64(i) / n)
			x[i] = complex(amp*c, amp*s)
		}
		dst := make([]complex128, n)
		p.Inverse(dst, x)
		peak := 0.0
		for _, v := range dst {
			if a := cmplx.Abs(v); a > peak {
				peak = a
			}
		}
		if math.Abs(peak-amp) > 1e-9 {
			t.Errorf("%v: calibrated peak %g, want %g", w, peak, amp)
		}
	}
}

func TestPlanPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("PlanFor(0)", func() { PlanFor(0, Hann) })
	p := PlanFor(16, Hann)
	mustPanic("short dst", func() { p.Forward(make([]complex128, 8), make([]complex128, 16)) })
	mustPanic("short stride", func() {
		p.ForwardMany(make([]complex128, 64), make([]complex128, 64), 2, 8)
	})
	mustPanic("short buffer", func() {
		p.ForwardMany(make([]complex128, 24), make([]complex128, 64), 2, 16)
	})
}

func BenchmarkPlanInverse256(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	p := PlanFor(256, Hann)
	src := randomSignal(rng, 256)
	dst := make([]complex128, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Inverse(dst, src)
	}
}

func BenchmarkUnfusedInverse256(b *testing.B) {
	// The pre-plan pipeline: window multiply + in-place IFFT.
	rng := rand.New(rand.NewSource(11))
	src := randomSignal(rng, 256)
	dst := make([]complex128, 256)
	win, gain := Hann.CachedCoefficients(256)
	invGain := 1 / gain
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range src {
			dst[j] = v * complex(win[j]*invGain, 0)
		}
		IFFTInPlace(dst)
	}
}
