package dsp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Regression: a NaN sample used to poison the rank order — sort.Float64s
// leaves NaNs in arbitrary positions, so Median([1,2,3,NaN]) could report
// NaN or any sample. The contract now drops non-finite samples first.
func TestMedianIgnoresNaN(t *testing.T) {
	got := Median([]float64{1, 2, 3, math.NaN()})
	if got != 2 {
		t.Fatalf("Median([1,2,3,NaN]) = %g, want 2", got)
	}
	got = Median([]float64{math.NaN(), 5, math.NaN()})
	if got != 5 {
		t.Fatalf("Median([NaN,5,NaN]) = %g, want 5", got)
	}
}

func TestPercentileIgnoresInf(t *testing.T) {
	x := []float64{math.Inf(1), 10, 20, math.Inf(-1), 30}
	if got := Median(x); got != 20 {
		t.Fatalf("Median with ±Inf = %g, want 20", got)
	}
	if got := Percentile(x, 0); got != 10 {
		t.Fatalf("P0 with ±Inf = %g, want 10", got)
	}
	if got := Percentile(x, 100); got != 30 {
		t.Fatalf("P100 with ±Inf = %g, want 30", got)
	}
}

func TestPercentileAllNonFinite(t *testing.T) {
	for _, x := range [][]float64{
		nil,
		{},
		{math.NaN()},
		{math.Inf(1), math.Inf(-1), math.NaN()},
	} {
		if got := Median(x); !math.IsInf(got, -1) {
			t.Fatalf("Median(%v) = %g, want -Inf", x, got)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	x := []float64{5, 1, 4, 2, 3}
	Percentile(x, 50)
	want := []float64{5, 1, 4, 2, 3}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("Percentile mutated x: %v", x)
		}
	}
}

// TestPercentileMatchesSortReference pins the quickselect path to the
// sort-based estimator rank for rank: identical results, not merely close
// ones.
func TestPercentileMatchesSortReference(t *testing.T) {
	ref := func(x []float64, p float64) float64 {
		s := append([]float64(nil), x...)
		sort.Float64s(s)
		if p <= 0 {
			return s[0]
		}
		if p >= 100 {
			return s[len(s)-1]
		}
		pos := p / 100 * float64(len(s)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			return s[lo]
		}
		frac := pos - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		x := make([]float64, n)
		for i := range x {
			switch rng.Intn(4) {
			case 0:
				x[i] = float64(rng.Intn(5)) // heavy duplicates
			default:
				x[i] = rng.NormFloat64() * 100
			}
		}
		p := rng.Float64() * 100
		if got, want := Percentile(x, p), ref(x, p); got != want {
			t.Fatalf("trial %d: Percentile(n=%d, p=%g) = %g, want %g", trial, n, p, got, want)
		}
		cp := append([]float64(nil), x...)
		if got, want := PercentileInPlace(cp, p), ref(x, p); got != want {
			t.Fatalf("trial %d: PercentileInPlace = %g, want %g", trial, got, want)
		}
	}
}

func TestPercentileEdgeRanks(t *testing.T) {
	x := []float64{3, 1, 2}
	if got := Percentile(x, 0); got != 1 {
		t.Fatalf("P0 = %g", got)
	}
	if got := Percentile(x, 100); got != 3 {
		t.Fatalf("P100 = %g", got)
	}
	if got := Percentile(x, 50); got != 2 {
		t.Fatalf("P50 = %g", got)
	}
	if got := Percentile([]float64{7}, 33); got != 7 {
		t.Fatalf("single sample P33 = %g", got)
	}
	if got := Percentile(x, math.NaN()); !math.IsNaN(got) {
		t.Fatalf("NaN p = %g, want NaN", got)
	}
}

func BenchmarkMedianInPlace256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]float64, 256)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	x := make([]float64, len(src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(x, src)
		MedianInPlace(x)
	}
}

func BenchmarkMedianSortRef256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]float64, 256)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	x := make([]float64, len(src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(x, src)
		sort.Float64s(x)
	}
}

// TestPercentileSeededMatchesUnseeded pins the seeded selection to the
// unseeded one bit-for-bit across random data (with NaN/Inf pollution) and
// adversarial hints: good guesses, the extremes themselves, values outside
// the range, and non-finite hints — every one must fall back or partition
// into the identical result.
func TestPercentileSeededMatchesUnseeded(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(300)
		x := make([]float64, n)
		for i := range x {
			switch rng.Intn(6) {
			case 0:
				x[i] = float64(rng.Intn(5)) // heavy duplicates
			case 1:
				x[i] = math.NaN()
			case 2:
				x[i] = math.Inf(1 - 2*rng.Intn(2))
			default:
				x[i] = rng.NormFloat64() * 100
			}
		}
		p := rng.Float64() * 100
		var hint float64
		switch rng.Intn(6) {
		case 0:
			hint = rng.NormFloat64() * 100 // plausible guess
		case 1:
			hint = rng.NormFloat64() * 1e6 // far outside
		case 2:
			hint = math.NaN()
		case 3:
			hint = math.Inf(1)
		case 4:
			hint = x[rng.Intn(n)] // an actual sample (possibly min or max)
		case 5:
			hint = Percentile(x, p) // the exact answer
		}
		cp := append([]float64(nil), x...)
		want := PercentileInPlace(cp, p)
		cp2 := append([]float64(nil), x...)
		got := PercentileInPlaceSeeded(cp2, p, hint)
		same := got == want || (math.IsNaN(got) && math.IsNaN(want))
		if !same {
			t.Fatalf("trial %d: seeded(n=%d, p=%g, hint=%g) = %g, want %g", trial, n, p, hint, got, want)
		}
	}
}

// TestPercentileSeededEdges covers the paths random trials can miss: empty
// input, all-non-finite input, and the P0/P100 shortcuts with a hint.
func TestPercentileSeededEdges(t *testing.T) {
	if got := PercentileInPlaceSeeded(nil, 50, 1); !math.IsInf(got, -1) {
		t.Fatalf("empty = %g, want -Inf", got)
	}
	bad := []float64{math.NaN(), math.Inf(1)}
	if got := PercentileInPlaceSeeded(bad, 50, 1); !math.IsInf(got, -1) {
		t.Fatalf("all non-finite = %g, want -Inf", got)
	}
	x := []float64{3, 1, 2}
	if got := PercentileInPlaceSeeded(append([]float64(nil), x...), 0, 2); got != 1 {
		t.Fatalf("P0 = %g", got)
	}
	if got := PercentileInPlaceSeeded(append([]float64(nil), x...), 100, 2); got != 3 {
		t.Fatalf("P100 = %g", got)
	}
	if got := PercentileInPlaceSeeded(append([]float64(nil), x...), math.NaN(), 2); !math.IsNaN(got) {
		t.Fatalf("NaN p = %g, want NaN", got)
	}
}

func BenchmarkMedianSeeded256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]float64, 256)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	hint := Percentile(src, 50) * 1.02 // a near-miss guess, like frame t-1's floor
	x := make([]float64, len(src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(x, src)
		PercentileInPlaceSeeded(x, 50, hint)
	}
}
