// Cache registry of the dsp package. Every memo cache here is a
// process-lifetime map keyed by transform geometry — sizes, windows,
// directions — whose entries are immutable once built and shared across
// goroutines. None of them evict: the working set is bounded by the number
// of distinct geometries the process touches, which for a radar pipeline is
// a handful, but a long-lived server fed adversarial sizes could grow them
// without limit. Each cache therefore mirrors its entry count into an
// internal/obs gauge (ros_dsp_*_entries), and ResetCaches drops them all.
//
// The scratch pools (Gauss streams, in-place transform buffers) are
// sync.Pools: the garbage collector already bounds those, so they are not
// counted here.
package dsp

import "ros/internal/obs"

var (
	// planCache memoizes fused window+FFT plans per (size, window).
	planCache = obs.NewCountedMap(obs.Default.Gauge("ros_dsp_plan_cache_entries",
		"Resident fused window+FFT plans, one per (size, window) pair."))
	// windowCache memoizes window coefficient tables per (window, length).
	windowCache = obs.NewCountedMap(obs.Default.Gauge("ros_dsp_window_cache_entries",
		"Resident window coefficient tables, one per (window, length) pair."))
	// twiddles caches forward roots of unity per transform size.
	twiddles = obs.NewCountedMap(obs.Default.Gauge("ros_dsp_twiddle_cache_entries",
		"Resident FFT twiddle tables, one per transform size."))
	// chirpPlans caches Bluestein precomputations per (length, direction).
	chirpPlans = obs.NewCountedMap(obs.Default.Gauge("ros_dsp_chirp_cache_entries",
		"Resident Bluestein chirp plans, one per (length, direction) pair."))
	// framePools holds the scratch-buffer pools behind in-place plan
	// executions, one pool per size. The pools themselves are GC-bounded;
	// the per-size pool directory is what is counted.
	framePools = obs.NewCountedMap(obs.Default.Gauge("ros_dsp_frame_pool_sizes",
		"Distinct transform sizes with a resident in-place scratch pool."))
)

// ResetCaches drops every dsp memo cache — plans, window tables, twiddle
// tables, chirp plans, and the in-place scratch pool directory — and zeroes
// their gauges. Values already handed out stay valid (entries are
// immutable); subsequent calls simply rebuild. Intended for long-lived
// processes cycling through unbounded transform geometries and for tests
// that need a cold start.
func ResetCaches() {
	planCache.Clear()
	windowCache.Clear()
	twiddles.Clear()
	chirpPlans.Clear()
	framePools.Clear()
}
