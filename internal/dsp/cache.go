// Default-set compatibility shim of the dsp package. Every memo cache —
// fused plans, window tables, twiddle tables, chirp plans — lives in a
// PlanSet (see planset.go); this file owns the one default set behind the
// package-level entry points, so callers without an explicit resource handle
// keep the process-lifetime behavior. The default set's caches mirror their
// entry counts into the legacy ros_dsp_*_entries gauges, and ResetCaches
// drops them all.
//
// The scratch pools (Gauss streams, per-plan in-place transform buffers) are
// sync.Pools: the garbage collector already bounds those, so they are not
// counted here.
package dsp

import "ros/internal/obs"

// defaultPlans is the process-wide plan set behind the package-level shims.
var defaultPlans = NewPlanSet(func(cache string) *obs.Gauge {
	switch cache {
	case CachePlans:
		return obs.Default.Gauge("ros_dsp_plan_cache_entries",
			"Resident fused window+FFT plans, one per (size, window) pair.")
	case CacheWindows:
		return obs.Default.Gauge("ros_dsp_window_cache_entries",
			"Resident window coefficient tables, one per (window, length) pair.")
	case CacheTwiddles:
		return obs.Default.Gauge("ros_dsp_twiddle_cache_entries",
			"Resident FFT twiddle tables, one per transform size.")
	default:
		return obs.Default.Gauge("ros_dsp_chirp_cache_entries",
			"Resident Bluestein chirp plans, one per (length, direction) pair.")
	}
})

// DefaultPlanSet returns the process-wide plan set the package-level entry
// points (PlanFor, Window.CachedCoefficients, FFT/IFFT) memoize into.
func DefaultPlanSet() *PlanSet { return defaultPlans }

// ResetCaches drops every default-set memo cache — plans, window tables,
// twiddle tables, and chirp plans — and zeroes their gauges. Values already
// handed out stay valid (entries are immutable); subsequent calls simply
// rebuild. Intended for long-lived processes cycling through unbounded
// transform geometries and for tests that need a cold start.
func ResetCaches() {
	defaultPlans.Clear()
}
