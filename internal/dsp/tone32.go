package dsp

// Float32-lane store/accumulate companions to the tone kernels. The lanes
// hold the tone at float32 precision (written by ToneFill32, half the lane
// traffic of the f64 lanes); the rotation and accumulation run in float64
// after a free widening load, and dst stays complex128 — the narrowing
// happened once at tone-store time, not per scatterer-accumulate. These are
// tag-independent (no per-tag specialization to pick between), so unlike
// ToneFill32 they live outside the ros_purego matrix.

// AccumulateTone32 adds the float32-lane tone to dst:
// dst[t] += re[t] + i*im[t].
func AccumulateTone32(dst []complex128, re, im []float32) {
	re = re[:len(dst)]
	im = im[:len(dst)]
	for t := range dst {
		dst[t] += complex(float64(re[t]), float64(im[t]))
	}
}

// AccumulateRotated32 adds the float32-lane tone rotated by the constant
// phasor a = aRe + i*aIm to dst: dst[t] += a * (re[t] + i*im[t]).
func AccumulateRotated32(dst []complex128, re, im []float32, aRe, aIm float64) {
	re = re[:len(dst)]
	im = im[:len(dst)]
	for t := range dst {
		tr, ti := float64(re[t]), float64(im[t])
		dst[t] += complex(aRe*tr-aIm*ti, aRe*ti+aIm*tr)
	}
}

// StoreTone32 is AccumulateTone32 with = instead of +=: the first scatterer
// of a frame defines the buffer contents outright, so the synthesis loop
// skips zeroing the pooled frame beforehand.
func StoreTone32(dst []complex128, re, im []float32) {
	re = re[:len(dst)]
	im = im[:len(dst)]
	for t := range dst {
		dst[t] = complex(float64(re[t]), float64(im[t]))
	}
}

// StoreRotated32 is AccumulateRotated32 with = instead of +=.
func StoreRotated32(dst []complex128, re, im []float32, aRe, aIm float64) {
	re = re[:len(dst)]
	im = im[:len(dst)]
	for t := range dst {
		tr, ti := float64(re[t]), float64(im[t])
		dst[t] = complex(aRe*tr-aIm*ti, aRe*ti+aIm*tr)
	}
}
