// Package dsp provides the signal-processing substrate used throughout the
// RoS reproduction: fast Fourier transforms, window functions, resampling of
// non-uniform samples onto uniform grids, spectral peak detection, and the
// on-off-keying (OOK) SNR/BER model from Sec 7.1 of the paper.
//
// Everything is implemented from scratch on top of the standard library so
// the repository has no external dependencies.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two that is >= n.
// NextPow2(0) == 1.
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// FFT computes the discrete Fourier transform of x and returns a new slice.
//
//	X[k] = sum_n x[n] * exp(-2*pi*i*k*n/N)
//
// Any length is accepted: power-of-two lengths use an iterative radix-2
// Cooley-Tukey transform, other lengths fall back to Bluestein's chirp-z
// algorithm. The input slice is not modified.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT computes the inverse discrete Fourier transform of x, including the
// 1/N normalization, and returns a new slice.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	return out
}

// FFTInPlace transforms x in place, avoiding the output allocation of FFT.
// Hot paths that own their buffer (e.g. the per-frame range transform) use
// it to keep the per-call allocation at zero.
func FFTInPlace(x []complex128) { fftInPlace(x, false) }

// IFFTInPlace is FFTInPlace for the inverse transform, including the 1/N
// normalization.
func IFFTInPlace(x []complex128) { fftInPlace(x, true) }

// fftInPlace transforms x in place. If inverse is true the conjugate
// transform with 1/N scaling is applied.
func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if IsPow2(n) {
		radix2(x, inverse)
	} else {
		bluestein(x, inverse)
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// newTwiddleTable builds the forward roots of unity for size n:
// table[j] = exp(-2*pi*i*j/n) for j < n/2. PlanSet.twiddleTable memoizes
// the result; the tables are shared read-only across goroutines (the frame
// loop of package detect runs FFTs from many workers at once).
func newTwiddleTable(n int) []complex128 {
	half := n / 2
	t := make([]complex128, half)
	for j := 0; j < half; j++ {
		s, c := math.Sincos(-2 * math.Pi * float64(j) / float64(n))
		t[j] = complex(c, s)
	}
	return t
}

// twiddleTable returns the default set's cached table for size n.
func twiddleTable(n int) []complex128 { return defaultPlans.twiddleTable(n) }

// radix2 is an iterative in-place Cooley-Tukey FFT for power-of-two lengths,
// drawing its twiddle table from the default plan set. Scaling is left to
// the caller.
func radix2(x []complex128, inverse bool) {
	radix2Roots(x, twiddleTable(len(x)), inverse)
}

// radix2Roots is radix2 over a caller-supplied forward twiddle table
// (conjugated per butterfly for the inverse transform), which both removes
// the per-butterfly complex multiply chain of the textbook formulation (and
// its accumulated rounding) and keeps the per-call allocation at zero.
// Plans capture their table at build time and call this, so plan execution
// never touches a shared cache.
func radix2Roots(x []complex128, roots []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	for span := 1; span < n; span <<= 1 {
		step := span << 1
		stride := n / step // twiddle index stride at this stage
		for start := 0; start < n; start += step {
			for k := 0; k < span; k++ {
				w := roots[k*stride]
				if inverse {
					w = cmplx.Conj(w)
				}
				a := x[start+k]
				b := x[start+k+span] * w
				x[start+k] = a + b
				x[start+k+span] = a - b
			}
		}
	}
}

// chirpPlan caches the Bluestein precomputation for one (length, direction)
// pair: the chirp sequence and the forward FFT of the convolution kernel.
type chirpPlan struct {
	w    []complex128 // chirp w[k] = exp(sign*i*pi*k^2/n)
	bfft []complex128 // FFT of the zero-padded conj(w) kernel, length m
	m    int
}

// chirpPlanFor returns the default set's cached chirp plan.
func chirpPlanFor(n int, inverse bool) *chirpPlan {
	return defaultPlans.chirpPlanFor(n, inverse)
}

// newChirpPlan builds the Bluestein precomputation for one (length,
// direction) pair; twiddle supplies the radix-2 table for the kernel FFT so
// the build draws from the owning plan set, not the process.
func newChirpPlan(n int, inverse bool, twiddle func(int) []complex128) *chirpPlan {
	s := -1.0
	if inverse {
		s = 1.0
	}
	// Chirp w[k] = exp(sign * i*pi*k^2/n). Indices are reduced mod 2n to
	// keep k^2 from losing precision for large n.
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := int64(k) * int64(k) % int64(2*n)
		w[k] = cmplx.Exp(complex(0, s*math.Pi*float64(kk)/float64(n)))
	}
	m := NextPow2(2*n - 1)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		b[k] = cmplx.Conj(w[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(w[k])
	}
	radix2Roots(b, twiddle(m), false)
	return &chirpPlan{w: w, bfft: b, m: m}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform,
// expressing it as a convolution that is evaluated with power-of-two FFTs.
// The chirp and the kernel's FFT depend only on (length, direction) and are
// cached across calls.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	p := chirpPlanFor(n, inverse)
	a := make([]complex128, p.m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * p.w[k]
	}
	radix2(a, false)
	for i := range a {
		a[i] *= p.bfft[i]
	}
	radix2(a, true)
	scale := complex(1/float64(p.m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * p.w[k]
	}
}

// FFTShift reorders spectrum bins so the zero-frequency bin is centered,
// matching the conventional two-sided spectrum layout. It returns a new
// slice; hot paths that own a destination buffer use FFTShiftInto.
func FFTShift(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	FFTShiftInto(out, x)
	return out
}

// FFTShiftInto is FFTShift writing into a caller-provided buffer. dst must
// have the length of src and must not alias it.
func FFTShiftInto(dst, src []complex128) {
	n := len(src)
	if len(dst) != n {
		panic(fmt.Sprintf("dsp: FFTShift dst has %d slots for %d bins", len(dst), n))
	}
	half := (n + 1) / 2
	copy(dst, src[half:])
	copy(dst[n-half:], src[:half])
}

// FFTFreqs returns the frequency associated with each FFT bin for a
// transform of length n over samples spaced d apart, in the standard FFT
// order (DC first, then positive, then negative frequencies).
func FFTFreqs(n int, d float64) []float64 {
	if n <= 0 {
		return nil
	}
	if d == 0 {
		panic("dsp: FFTFreqs with zero sample spacing")
	}
	f := make([]float64, n)
	for i := 0; i <= (n-1)/2; i++ {
		f[i] = float64(i) / (float64(n) * d)
	}
	for i := (n-1)/2 + 1; i < n; i++ {
		f[i] = float64(i-n) / (float64(n) * d)
	}
	return f
}

// Magnitude returns |x| element-wise. Hot paths that own a destination
// buffer use MagnitudeInto.
func Magnitude(x []complex128) []float64 {
	out := make([]float64, len(x))
	MagnitudeInto(out, x)
	return out
}

// MagnitudeInto writes |src| element-wise into dst, which must have the
// length of src.
func MagnitudeInto(dst []float64, src []complex128) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("dsp: Magnitude dst has %d slots for %d samples", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = cmplx.Abs(v)
	}
}

// Power returns |x|^2 element-wise. Hot paths that own a destination buffer
// use PowerInto.
func Power(x []complex128) []float64 {
	out := make([]float64, len(x))
	PowerInto(out, x)
	return out
}

// PowerInto writes |src|^2 element-wise into dst, which must have the
// length of src.
func PowerInto(dst []float64, src []complex128) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("dsp: Power dst has %d slots for %d samples", len(dst), len(src)))
	}
	for i, v := range src {
		re, im := real(v), imag(v)
		dst[i] = re*re + im*im
	}
}

// ZeroPad returns x extended with zeros to length n. It panics if n is
// smaller than len(x). Retained for tests and offline tooling; the
// transform hot paths zero-pad inside their plans instead.
func ZeroPad(x []complex128, n int) []complex128 {
	if n < len(x) {
		panic(fmt.Sprintf("dsp: ZeroPad target %d shorter than input %d", n, len(x)))
	}
	out := make([]complex128, n)
	copy(out, x)
	return out
}
