package dsp

import "math"

// DB converts a linear power ratio to decibels. Non-positive inputs map to
// -Inf.
func DB(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(p)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// AmpDB converts a linear amplitude ratio to decibels (20*log10).
func AmpDB(a float64) float64 {
	if a <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(a)
}

// AmpFromDB converts decibels to a linear amplitude ratio.
func AmpFromDB(db float64) float64 {
	return math.Pow(10, db/20)
}
