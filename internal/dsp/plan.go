package dsp

import (
	"fmt"
	"sync"
)

// Plan is an immutable execution plan for windowed, calibrated FFTs of one
// (size, window) pair. It owns every table the transform needs — the
// bit-reversal permutation, forward and inverse twiddle factors, and the
// window coefficients pre-permuted and pre-scaled — so executing a transform
// touches no process-wide cache and allocates nothing (power-of-two sizes;
// Bluestein sizes draw one scratch buffer from the plan's pool).
//
// The window multiply is fused into the transform's first butterfly pass:
// the input gather through the bit-reversal permutation scales each sample
// by its (permuted) window coefficient and immediately applies the
// twiddle-free first stage, removing the separate window pass, the swap
// loop, and — because the coherent-gain and 1/N normalizations are folded
// into the same coefficients — the trailing scale pass of the unfused
// pipeline.
//
// Semantics: Forward computes FFT(win .* x) / coherentGain and Inverse
// computes IFFT(win .* x) / coherentGain including the conventional 1/N, so
// a coherent tone's peak magnitude equals its time-domain amplitude in both
// directions. A Rectangular plan degenerates to the plain (I)FFT.
//
// Plans are safe for concurrent use: the frame workers of package detect
// execute one shared plan from many goroutines at once.
type Plan struct {
	n      int
	window Window
	gain   float64

	// Power-of-two path: perm is the bit-reversal permutation, fwdCoef and
	// invCoef the window coefficients permuted to gather order and scaled by
	// 1/gain (forward) and 1/(gain*n) (inverse), roots/rootsInv the twiddle
	// tables exp(∓2πij/n) for j < n/2.
	perm     []int32
	fwdCoef  []float64
	invCoef  []float64
	roots    []complex128
	rootsInv []complex128

	// Bluestein path (non-power-of-two sizes): preFwd/preInv fold the window
	// coefficient, the calibration scale, and the chirp w[k] into one complex
	// factor per input sample; postFwd/postInv fold the chirp and the 1/m
	// (and, for the inverse, 1/n) normalization of the convolution. broots is
	// the captured radix-2 twiddle table of the length-m convolution FFTs, so
	// execution touches no cache outside the plan.
	m       int
	bfftF   []complex128
	bfftI   []complex128
	preFwd  []complex128
	preInv  []complex128
	postFwd []complex128
	postInv []complex128
	broots  []complex128
	scratch *sync.Pool

	// inplace recycles the staging copy of in-place power-of-two
	// executions. Owned by the plan (not a package directory) so retiring a
	// plan set cannot strand per-size pools process-wide.
	inplace *sync.Pool
}

// PlanFor returns the default set's cached execution plan for n-point
// transforms under the given window, building it on first use. It panics if
// n < 1. Callers holding an explicit resource handle use PlanSet.PlanFor.
func PlanFor(n int, w Window) *Plan {
	return defaultPlans.PlanFor(n, w)
}

func (s *PlanSet) newPlan(n int, w Window) *Plan {
	win, gain := s.WindowCoefficients(w, n)
	p := &Plan{n: n, window: w, gain: gain}
	invGain := 1 / gain
	if IsPow2(n) {
		p.perm = make([]int32, n)
		for i, j := 0, 0; i < n; i++ {
			p.perm[i] = int32(j)
			mask := n >> 1
			for ; j&mask != 0; mask >>= 1 {
				j &^= mask
			}
			j |= mask
		}
		p.fwdCoef = make([]float64, n)
		p.invCoef = make([]float64, n)
		for j, src := range p.perm {
			p.fwdCoef[j] = win[src] * invGain
			p.invCoef[j] = win[src] * invGain / float64(n)
		}
		p.roots = s.twiddleTable(n)
		p.rootsInv = make([]complex128, len(p.roots))
		for i, r := range p.roots {
			p.rootsInv[i] = complex(real(r), -imag(r))
		}
		p.inplace = &sync.Pool{New: func() any {
			buf := make([]complex128, n)
			return &buf
		}}
		return p
	}
	// Bluestein: reuse the cached chirp precomputation per direction and
	// fold the window and calibration scales into the chirp factors.
	fwd := s.chirpPlanFor(n, false)
	inv := s.chirpPlanFor(n, true)
	p.m = fwd.m
	p.bfftF = fwd.bfft
	p.bfftI = inv.bfft
	p.broots = s.twiddleTable(fwd.m)
	p.preFwd = make([]complex128, n)
	p.preInv = make([]complex128, n)
	p.postFwd = make([]complex128, n)
	p.postInv = make([]complex128, n)
	mScale := 1 / float64(p.m)
	for k := 0; k < n; k++ {
		c := win[k] * invGain
		p.preFwd[k] = fwd.w[k] * complex(c, 0)
		p.preInv[k] = inv.w[k] * complex(c, 0)
		p.postFwd[k] = fwd.w[k] * complex(mScale, 0)
		p.postInv[k] = inv.w[k] * complex(mScale/float64(n), 0)
	}
	p.scratch = &sync.Pool{New: func() any {
		buf := make([]complex128, fwd.m)
		return &buf
	}}
	return p
}

// Size returns the transform length the plan was built for.
func (p *Plan) Size() int { return p.n }

// PlanWindow returns the window the plan fuses into the transform.
func (p *Plan) PlanWindow() Window { return p.window }

// CoherentGain returns the window's coherent gain, already divided out of
// the plan's outputs.
func (p *Plan) CoherentGain() float64 { return p.gain }

// Forward executes the windowed forward transform: dst = FFT(win .* src) /
// coherentGain. dst and src must both have the plan's length; dst may be the
// same slice as src (the transform is then in place at the cost of one
// internal copy for power-of-two sizes). Distinct but overlapping slices are
// not supported.
func (p *Plan) Forward(dst, src []complex128) { p.execute(dst, src, false) }

// Inverse executes the windowed inverse transform including the 1/N
// normalization: dst = IFFT(win .* src) / coherentGain. Aliasing rules match
// Forward.
func (p *Plan) Inverse(dst, src []complex128) { p.execute(dst, src, true) }

// ForwardMany runs Forward over channels independent signals stored in one
// contiguous buffer with the given stride: channel k occupies
// src[k*stride : k*stride+Size()], and its transform lands at the same
// offsets in dst. All channels share the plan's tables; nothing is
// allocated. It panics if stride < Size() or either buffer is too short.
func (p *Plan) ForwardMany(dst, src []complex128, channels, stride int) {
	p.executeMany(dst, src, channels, stride, false)
}

// InverseMany is ForwardMany for the inverse transform.
func (p *Plan) InverseMany(dst, src []complex128, channels, stride int) {
	p.executeMany(dst, src, channels, stride, true)
}

func (p *Plan) executeMany(dst, src []complex128, channels, stride int, inverse bool) {
	if stride < p.n {
		panic(fmt.Sprintf("dsp: plan stride %d below transform size %d", stride, p.n))
	}
	if need := (channels-1)*stride + p.n; channels > 0 && (len(dst) < need || len(src) < need) {
		panic(fmt.Sprintf("dsp: plan buffers hold %d/%d samples, need %d", len(dst), len(src), need))
	}
	for k := 0; k < channels; k++ {
		off := k * stride
		p.execute(dst[off:off+p.n], src[off:off+p.n], inverse)
	}
}

func (p *Plan) execute(dst, src []complex128, inverse bool) {
	n := p.n
	if len(dst) != n || len(src) != n {
		panic(fmt.Sprintf("dsp: plan of size %d executed on %d -> %d samples", n, len(src), len(dst)))
	}
	if p.perm == nil {
		p.bluestein(dst, src, inverse)
		return
	}
	coef, roots := p.fwdCoef, p.roots
	if inverse {
		coef, roots = p.invCoef, p.rootsInv
	}
	if &dst[0] == &src[0] {
		// In-place request: the fused gather reads src through the
		// permutation while writing dst, so stage through a scratch copy
		// from the plan's own pool.
		tmp := p.inplace.Get().(*[]complex128)
		copy(*tmp, src)
		p.stages(dst, *tmp, coef, roots)
		p.inplace.Put(tmp)
		return
	}
	p.stages(dst, src, coef, roots)
}

// stages runs the radix-2 pipeline: a fused gather (bit-reversal permutation
// + window/normalization scale + the first butterfly stages) followed by the
// remaining stages with the twiddle factor hoisted out of the butterfly loop
// — no per-butterfly direction branch, conjugation or final scale pass.
//
// For n >= 8 the gather carries the first THREE stages in registers before
// anything is stored: an 8-point group touches memory once instead of once
// per stage, removing two full load/store passes over the signal. The
// butterfly operations and their order are exactly those of the generic
// stage loop (same twiddles roots[k*n/8], same pairing), so the output is
// bit-identical to the unfused pipeline.
func (p *Plan) stages(dst, src []complex128, coef []float64, roots []complex128) {
	n := p.n
	perm := p.perm
	if n == 1 {
		v := src[0]
		dst[0] = complex(real(v)*coef[0], imag(v)*coef[0])
		return
	}
	if n >= 8 {
		wq := roots[n>>2]
		w81 := roots[n>>3]
		w83 := roots[3*(n>>3)]
		for j := 0; j < n; j += 8 {
			s0 := scale(src[perm[j]], coef[j])
			s1 := scale(src[perm[j+1]], coef[j+1])
			s2 := scale(src[perm[j+2]], coef[j+2])
			s3 := scale(src[perm[j+3]], coef[j+3])
			s4 := scale(src[perm[j+4]], coef[j+4])
			s5 := scale(src[perm[j+5]], coef[j+5])
			s6 := scale(src[perm[j+6]], coef[j+6])
			s7 := scale(src[perm[j+7]], coef[j+7])
			t0, t1 := s0+s1, s0-s1
			t2, t3 := s2+s3, s2-s3
			t4, t5 := s4+s5, s4-s5
			t6, t7 := s6+s7, s6-s7
			b1 := t3 * wq
			b5 := t7 * wq
			u0, u2 := t0+t2, t0-t2
			u1, u3 := t1+b1, t1-b1
			u4, u6 := t4+t6, t4-t6
			u5, u7 := t5+b5, t5-b5
			c5 := u5 * w81
			c6 := u6 * wq
			c7 := u7 * w83
			dst[j], dst[j+4] = u0+u4, u0-u4
			dst[j+1], dst[j+5] = u1+c5, u1-c5
			dst[j+2], dst[j+6] = u2+c6, u2-c6
			dst[j+3], dst[j+7] = u3+c7, u3-c7
		}
		// The remaining stages run two at a time: the four elements a
		// radix-2 stage pair couples — {i, i+span, i+2*span, i+3*span} —
		// stay in registers across both butterflies, so two stages cost
		// one pass over the signal. roots[0] is exactly (1, 0) and complex
		// multiplication by it is exact, so the fused form needs no
		// twiddle-free special case to stay bit-identical to the serial
		// stage loop.
		span := 8
		for ; span<<1 < n; span <<= 2 {
			s1 := n / (span << 1)
			s2 := n / (span << 2)
			// q = 0 has twiddle 1 in both stages; skip those multiplies
			// (a multiply by (1, 0) could still flip the sign of a zero).
			w3 := roots[n>>2]
			for i0 := 0; i0 < n; i0 += span << 2 {
				i1 := i0 + span
				i2 := i1 + span
				i3 := i2 + span
				a, b := dst[i0], dst[i1]
				c, d := dst[i2], dst[i3]
				t0, t1 := a+b, a-b
				e2 := c + d
				e3 := (c - d) * w3
				dst[i0], dst[i2] = t0+e2, t0-e2
				dst[i1], dst[i3] = t1+e3, t1-e3
			}
			for q := 1; q < span; q++ {
				w1 := roots[q*s1]
				w2 := roots[q*s2]
				w3 := roots[q*s2+(n>>2)]
				for i0 := q; i0 < n; i0 += span << 2 {
					i1 := i0 + span
					i2 := i1 + span
					i3 := i2 + span
					a, b := dst[i0], dst[i1]*w1
					c, d := dst[i2], dst[i3]*w1
					t0, t1 := a+b, a-b
					e2 := (c + d) * w2
					e3 := (c - d) * w3
					dst[i0], dst[i2] = t0+e2, t0-e2
					dst[i1], dst[i3] = t1+e3, t1-e3
				}
			}
		}
		if span < n {
			step := span << 1
			stride := n / step
			// k = 0 has twiddle 1; skip the multiply.
			for i := 0; i < n; i += step {
				a := dst[i]
				b := dst[i+span]
				dst[i] = a + b
				dst[i+span] = a - b
			}
			for k := 1; k < span; k++ {
				w := roots[k*stride]
				for i := k; i < n; i += step {
					a := dst[i]
					b := dst[i+span] * w
					dst[i] = a + b
					dst[i+span] = a - b
				}
			}
		}
		return
	}
	for j := 0; j < n; j += 2 {
		a := src[perm[j]]
		b := src[perm[j+1]]
		ca, cb := coef[j], coef[j+1]
		a = complex(real(a)*ca, imag(a)*ca)
		b = complex(real(b)*cb, imag(b)*cb)
		dst[j] = a + b
		dst[j+1] = a - b
	}
	for span := 2; span < n; span <<= 1 {
		step := span << 1
		stride := n / step
		// k = 0 has twiddle 1; skip the multiply.
		for i := 0; i < n; i += step {
			a := dst[i]
			b := dst[i+span]
			dst[i] = a + b
			dst[i+span] = a - b
		}
		for k := 1; k < span; k++ {
			w := roots[k*stride]
			for i := k; i < n; i += step {
				a := dst[i]
				b := dst[i+span] * w
				dst[i] = a + b
				dst[i+span] = a - b
			}
		}
	}
}

// scale multiplies both components of v by c (the permuted window/
// normalization coefficient of the fused gather).
func scale(v complex128, c float64) complex128 {
	return complex(real(v)*c, imag(v)*c)
}

// bluestein executes the windowed chirp-z transform for non-power-of-two
// sizes, with the window and normalizations folded into the plan's chirp
// tables. One scratch buffer comes from the plan's pool.
func (p *Plan) bluestein(dst, src []complex128, inverse bool) {
	pre, post, bf := p.preFwd, p.postFwd, p.bfftF
	if inverse {
		pre, post, bf = p.preInv, p.postInv, p.bfftI
	}
	buf := p.scratch.Get().(*[]complex128)
	a := *buf
	n := p.n
	for k := 0; k < n; k++ {
		a[k] = src[k] * pre[k]
	}
	clear(a[n:])
	radix2Roots(a, p.broots, false)
	for i := range a {
		a[i] *= bf[i]
	}
	radix2Roots(a, p.broots, true)
	for k := 0; k < n; k++ {
		dst[k] = a[k] * post[k]
	}
	p.scratch.Put(buf)
}
