package dsp

import (
	"math"
	"sync"
)

// Batched Gaussian generation for the frame synthesizer. The per-sample
// thermal-noise pass draws 2*Samples*NumRx normals per frame — with the
// stdlib's rand.Rand every draw pays an interface dispatch into the
// underlying source on top of the ziggurat itself, and the profile of the
// canonical read showed those draws costing more than the tone synthesis
// they perturb. Gauss owns its SplitMix64 state directly (the same
// generator the sweep sub-streams use, one word of state, seeded in one
// multiply) so the fill loop is a handful of inlined integer ops plus two
// table loads per draw, and FillNorm amortizes the call overhead across a
// whole lane of draws.
//
// The distribution is a 256-layer Marsaglia–Tsang ziggurat over float64.
// It is NOT the stdlib's NormFloat64 sequence: swapping the generator was a
// deliberate FP-contract change (see docs/PERF.md), and the frame
// equivalence suite pins both paths to the same Gauss stream.

// zigR is the ziggurat tail cut-off and zigV the common layer area for the
// 256-layer table (twice Marsaglia–Tsang's canonical 128: the tables still
// fit in a few cache lines and the fast-accept rate rises from ≈97.2% to
// ≈98.6%, halving the traffic into the wedge/tail slow path that dominates
// the amortized cost).
const (
	zigLayers = 256
	zigR      = 3.6541528853610088
	zigV      = 4.92867323399e-3
)

// zigX[i] is the width of layer i (zigX[0] is the stretched base width),
// zigT[i] the fast-accept threshold on the signed uniform (the width ratio
// to the next narrower layer), and zigF[i] = exp(-zigX[i]^2/2). The fast
// path itself runs on two derived tables so a draw costs one integer
// compare and one multiply: zigK[i] = floor(zigT[i] * 2^52) is the accept
// threshold on the raw 52-bit magnitude, and zigW[i] = zigX[i] * 2^-52
// folds the fixed-point scale into the layer width. Borderline draws that
// the floor excludes (measure ~2^-52) fall through to the exact wedge/tail
// test, so the distribution is unchanged.
// zigE[i] = zigX[i-1]^2/2 is the top-of-layer exponent offset the wedge
// squeeze subtracts so its series argument stays small (zigE[1] = 0: layer
// 1's offset is the distribution peak).
var (
	zigX [zigLayers]float64
	zigT [zigLayers]float64
	zigF [zigLayers]float64
	zigK [zigLayers]uint64
	zigW [zigLayers]float64
	zigE [zigLayers]float64
)

func init() {
	f := math.Exp(-0.5 * zigR * zigR)
	q := zigV / f
	zigX[0] = q
	zigF[0] = 1
	zigT[0] = zigR / q
	zigT[1] = 0
	zigX[zigLayers-1] = zigR
	zigF[zigLayers-1] = f
	dn, tn := zigR, zigR
	for i := zigLayers - 2; i >= 1; i-- {
		dn = math.Sqrt(-2 * math.Log(zigV/dn+math.Exp(-0.5*dn*dn)))
		zigT[i+1] = dn / tn
		tn = dn
		zigX[i] = dn
		zigF[i] = math.Exp(-0.5 * dn * dn)
	}
	for i := range zigK {
		zigK[i] = uint64(zigT[i] * 0x1p52)
		zigW[i] = zigX[i] * 0x1p-52
		if i >= 1 {
			zigE[i] = 0.5 * zigX[i-1] * zigX[i-1]
		}
	}
	zigE[1] = 0
}

// Gauss is a deterministic Gaussian stream: a SplitMix64 counter feeding a
// ziggurat sampler, plus a reusable scratch lane for batched fills. The
// zero value is a valid stream seeded with 0; it is not safe for concurrent
// use — give each worker its own (Acquire/ReleaseGauss pool one per frame
// with zero steady-state allocation).
type Gauss struct {
	state     uint64
	scratch   []float64
	scratch32 []float32
}

// NewGauss returns a stream seeded with the given sub-stream seed (the same
// int64 seeds sweep.SubSeed hands out).
func NewGauss(seed int64) *Gauss {
	return &Gauss{state: uint64(seed)}
}

// Reseed rewinds the stream to a fresh seed; the scratch lane is kept.
func (g *Gauss) Reseed(seed int64) { g.state = uint64(seed) }

// gaussGamma is the SplitMix64 state increment.
const gaussGamma = 0x9e3779b97f4a7c15

// mix64 is the SplitMix64 output mix — the identical mixing used by the
// sweep package's sub-stream sources. It is a pure function of the counter,
// so FillNorm can evaluate several future outputs of the stream in parallel
// and commit the counter afterwards.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next is one SplitMix64 step.
func (g *Gauss) next() uint64 {
	g.state += gaussGamma
	return mix64(g.state)
}

// uniform returns a uniform draw in (0, 1) (never 0, so it is log-safe).
func (g *Gauss) uniform() float64 {
	return (float64(g.next()>>11) + 0.5) * 0x1p-53
}

// Norm returns one standard-normal draw. The fast path is the
// integer-compare form of the layer test: the signed 53-bit fixed-point
// uniform j accepts when its magnitude is below zigK[i], and the draw is
// then a single multiply float64(j)*zigW[i]. Norm and FillNorm consume the
// stream identically — n calls to Norm produce the same n values as one
// FillNorm over an n-lane.
func (g *Gauss) Norm() float64 {
	for {
		u := g.next()
		i := u & (zigLayers - 1)
		j := int64(u) >> 11
		neg := j >> 63
		if uint64((j^neg)-neg) < zigK[i] {
			return float64(j) * zigW[i]
		}
		if x, ok := g.normSlow(u); ok {
			return x
		}
	}
}

// normSlow handles the wedge and tail of the layer selected by u; ok is
// false when the wedge rejects and the caller must redraw.
func (g *Gauss) normSlow(u uint64) (float64, bool) {
	i := u & (zigLayers - 1)
	s := float64(int64(u)>>11) * 0x1p-52
	x := s * zigX[i]
	if i == 0 {
		// Tail beyond R: Marsaglia's exponential wrap.
		for {
			ex := -math.Log(g.uniform()) / zigR
			ey := -math.Log(g.uniform())
			if ey+ey >= ex*ex {
				if s < 0 {
					return -(zigR + ex), true
				}
				return zigR + ex, true
			}
		}
	}
	// Wedge: accept iff pf < exp(-x^2/2). Factoring the exponent about the
	// top of the layer, exp(-x^2/2) = zigF[i-1]*exp(-d) with
	// d = x^2/2 - zigE[i] in [0, ~0.7), small enough that the alternating
	// Taylor partial sums bracket exp(-d); the exact Exp only runs for the
	// sliver of draws (O(d^3/6) of the wedge) that land between the bounds.
	pf := zigF[i] + g.uniform()*(zigF[i-1]-zigF[i])
	d := 0.5*x*x - zigE[i]
	lo := 1 - d*(1-d*(0.5-d*(1.0/6)))
	top := zigF[i-1]
	switch {
	case pf < top*lo:
		return x, true
	case pf > top*(lo+d*d*d*(1.0/6)):
		return 0, false
	case pf < math.Exp(-0.5*x*x):
		return x, true
	}
	return 0, false
}

// FillNorm fills dst with standard-normal draws, producing exactly the
// sequence len(dst) Norm calls would. The hot loop evaluates four future
// SplitMix64 outputs per iteration — mix64 is a pure function of the
// counter, so the four mixes carry no dependency chain and pipeline across
// each other, which the one-at-a-time loop cannot do. When all four draws
// fast-accept (≈90% of groups) the group commits with one branch: m < k on
// 52-bit magnitudes is equivalent to the subtraction m-k wrapping negative,
// so ANDing the four differences tests all four sign bits at once. Any
// rejection commits the accepted prefix, resolves the first rejected draw
// through Norm in stream order, and regroups from the post-slow-path
// counter.
func (g *Gauss) FillNorm(dst []float64) {
	s := g.state
	n := 0
	for n+4 <= len(dst) {
		s1 := s + gaussGamma
		s2 := s1 + gaussGamma
		s3 := s2 + gaussGamma
		s4 := s3 + gaussGamma
		u0 := mix64(s1)
		u1 := mix64(s2)
		u2 := mix64(s3)
		u3 := mix64(s4)
		j0 := int64(u0) >> 11
		j1 := int64(u1) >> 11
		j2 := int64(u2) >> 11
		j3 := int64(u3) >> 11
		a0, a1, a2, a3 := j0>>63, j1>>63, j2>>63, j3>>63
		m0 := uint64((j0 ^ a0) - a0)
		m1 := uint64((j1 ^ a1) - a1)
		m2 := uint64((j2 ^ a2) - a2)
		m3 := uint64((j3 ^ a3) - a3)
		const lm = zigLayers - 1
		d := dst[n : n+4 : len(dst)]
		if int64((m0-zigK[u0&lm])&(m1-zigK[u1&lm])&(m2-zigK[u2&lm])&(m3-zigK[u3&lm])) < 0 {
			d[0] = float64(j0) * zigW[u0&lm]
			d[1] = float64(j1) * zigW[u1&lm]
			d[2] = float64(j2) * zigW[u2&lm]
			d[3] = float64(j3) * zigW[u3&lm]
			s = s4
			n += 4
			continue
		}
		// Some draw in the group rejected: commit the accepted prefix
		// as-is, resolve the rejected draw through Norm (which replays the
		// identical counter value and falls into the wedge/tail), and let
		// the remainder of the group — whose counters shifted past the
		// slow path's extra consumption — re-enter the loop as fresh
		// groups.
		us := [4]uint64{u0, u1, u2, u3}
		js := [4]int64{j0, j1, j2, j3}
		ms := [4]uint64{m0, m1, m2, m3}
		g.state = s
		k := 0
		for ; k < 4; k++ {
			i := us[k] & lm
			if ms[k] >= zigK[i] {
				break
			}
			d[k] = float64(js[k]) * zigW[i]
			g.state += gaussGamma
		}
		d[k] = g.Norm()
		s = g.state
		n += k + 1
	}
	g.state = s
	for ; n < len(dst); n++ {
		dst[n] = g.Norm()
	}
}

// AddNoise adds sigma-scaled standard-normal noise to every sample of dst:
// sample t consumes two stream draws, real then imaginary — the same stream
// positions 2*len(dst) Norm calls would consume. The sigma scale is folded
// into the layer-width table, so a fast-path draw rounds as
// j*(zigW[i]*sigma) rather than (j*zigW[i])*sigma — within 1 ulp of
// Norm()*sigma, never different in distribution. Fusing the generator into
// the accumulate pass skips the intermediate lane a FillNorm-then-add pair
// would write and re-read (48KB of traffic per 256x4 frame), which on the
// canonical read costs about as much as the draws themselves. The group
// structure mirrors FillNorm but twice as wide: eight counter mixes per
// iteration (four complex samples), a single ANDed sign-bit accept branch,
// and a stream-order replay through Norm when any draw rejects.
func (g *Gauss) AddNoise(dst []complex128, sigma float64) {
	s := g.state
	n := 0
	const lm = zigLayers - 1
	// Scaled width table: folding sigma into the layer widths once per call
	// (256 multiplies) drops one multiply from each of the 2*len(dst) draws.
	var ws [zigLayers]float64
	for i, w := range zigW {
		ws[i] = w * sigma
	}
	for n+4 <= len(dst) {
		s1 := s + gaussGamma
		s2 := s1 + gaussGamma
		s3 := s2 + gaussGamma
		s4 := s3 + gaussGamma
		s5 := s4 + gaussGamma
		s6 := s5 + gaussGamma
		s7 := s6 + gaussGamma
		s8 := s7 + gaussGamma
		u0 := mix64(s1)
		u1 := mix64(s2)
		u2 := mix64(s3)
		u3 := mix64(s4)
		u4 := mix64(s5)
		u5 := mix64(s6)
		u6 := mix64(s7)
		u7 := mix64(s8)
		j0 := int64(u0) >> 11
		j1 := int64(u1) >> 11
		j2 := int64(u2) >> 11
		j3 := int64(u3) >> 11
		j4 := int64(u4) >> 11
		j5 := int64(u5) >> 11
		j6 := int64(u6) >> 11
		j7 := int64(u7) >> 11
		a0, a1, a2, a3 := j0>>63, j1>>63, j2>>63, j3>>63
		a4, a5, a6, a7 := j4>>63, j5>>63, j6>>63, j7>>63
		m0 := uint64((j0 ^ a0) - a0)
		m1 := uint64((j1 ^ a1) - a1)
		m2 := uint64((j2 ^ a2) - a2)
		m3 := uint64((j3 ^ a3) - a3)
		m4 := uint64((j4 ^ a4) - a4)
		m5 := uint64((j5 ^ a5) - a5)
		m6 := uint64((j6 ^ a6) - a6)
		m7 := uint64((j7 ^ a7) - a7)
		d := dst[n : n+4 : len(dst)]
		lo := (m0 - zigK[u0&lm]) & (m1 - zigK[u1&lm]) & (m2 - zigK[u2&lm]) & (m3 - zigK[u3&lm])
		hi := (m4 - zigK[u4&lm]) & (m5 - zigK[u5&lm]) & (m6 - zigK[u6&lm]) & (m7 - zigK[u7&lm])
		if int64(lo&hi) < 0 {
			d[0] += complex(float64(j0)*ws[u0&lm], float64(j1)*ws[u1&lm])
			d[1] += complex(float64(j2)*ws[u2&lm], float64(j3)*ws[u3&lm])
			d[2] += complex(float64(j4)*ws[u4&lm], float64(j5)*ws[u5&lm])
			d[3] += complex(float64(j6)*ws[u6&lm], float64(j7)*ws[u7&lm])
			s = s8
			n += 4
			continue
		}
		// A complex sample cannot commit half-drawn, so the whole group
		// resolves here: accepted prefix from the precomputed mixes, the
		// rest through Norm in stream order.
		us := [8]uint64{u0, u1, u2, u3, u4, u5, u6, u7}
		js := [8]int64{j0, j1, j2, j3, j4, j5, j6, j7}
		ms := [8]uint64{m0, m1, m2, m3, m4, m5, m6, m7}
		var v [8]float64
		g.state = s
		k := 0
		for ; k < 8; k++ {
			i := us[k] & lm
			if ms[k] >= zigK[i] {
				break
			}
			v[k] = float64(js[k]) * ws[i]
			g.state += gaussGamma
		}
		for ; k < 8; k++ {
			v[k] = g.Norm() * sigma
		}
		s = g.state
		d[0] += complex(v[0], v[1])
		d[1] += complex(v[2], v[3])
		d[2] += complex(v[4], v[5])
		d[3] += complex(v[6], v[7])
		n += 4
	}
	g.state = s
	for ; n < len(dst); n++ {
		dst[n] += complex(g.Norm()*sigma, g.Norm()*sigma)
	}
}

// Norms returns an internal scratch lane of n standard-normal draws. The
// lane is valid until the next Norms call and must not be retained; it
// grows amortized, so steady-state fills allocate nothing.
func (g *Gauss) Norms(n int) []float64 {
	if cap(g.scratch) < n {
		g.scratch = make([]float64, n)
	}
	s := g.scratch[:n]
	g.FillNorm(s)
	return s
}

// gaussPool recycles Gauss streams (and their scratch lanes) across frames;
// a reader synthesizes hundreds of frames per pass, each on its own
// sub-stream seed.
var gaussPool = sync.Pool{New: func() any { return new(Gauss) }}

// AcquireGauss returns a pooled stream reseeded to seed.
func AcquireGauss(seed int64) *Gauss {
	g := gaussPool.Get().(*Gauss)
	g.Reseed(seed)
	return g
}

// ReleaseGauss returns a stream to the pool. The caller must not use it
// afterwards.
func ReleaseGauss(g *Gauss) { gaussPool.Put(g) }
