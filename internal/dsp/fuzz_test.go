package dsp

import (
	"encoding/binary"
	"math"
	"math/cmplx"
	"testing"
)

// floatsFromBytes decodes the fuzzer's byte soup into float64 samples,
// clamping the count so a large input cannot stall the harness.
func floatsFromBytes(data []byte, maxN int) []float64 {
	n := len(data) / 8
	if n > maxN {
		n = maxN
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out
}

// FuzzPercentile asserts the estimator's contract on arbitrary inputs: it
// never panics, ranks only the finite samples (NaN and ±Inf are dropped),
// returns -Inf exactly when no finite sample survives, stays within
// [min, max] of the finite samples otherwise, never fabricates a NaN (for a
// non-NaN p), and leaves the input slice untouched (the doc promises x is
// not modified).
func FuzzPercentile(f *testing.F) {
	f.Add([]byte{}, 50.0)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, 0.0)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 100.0)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xf0, 0x7f}, 50.0) // +Inf sample
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0xf0, 0x7f}, -3.5)                   // NaN sample
	// NaN mixed with finite samples: the pre-fix sort could report the NaN
	// (or an arbitrary sample) as the median of the clean values.
	f.Add([]byte{
		1, 0, 0, 0, 0, 0, 0xf0, 0x7f, // NaN
		0, 0, 0, 0, 0, 0, 0xf0, 0x3f, // 1.0
		0, 0, 0, 0, 0, 0, 0, 0x40, // 2.0
		0, 0, 0, 0, 0, 0, 8, 0x40, // 3.0
	}, 50.0)
	f.Fuzz(func(t *testing.T, data []byte, p float64) {
		x := floatsFromBytes(data, 1024)
		orig := append([]float64(nil), x...)
		got := Percentile(x, p)
		for i := range x {
			if x[i] != orig[i] && !(math.IsNaN(x[i]) && math.IsNaN(orig[i])) {
				t.Fatalf("Percentile mutated input at %d: %g -> %g", i, orig[i], x[i])
			}
		}
		if math.IsNaN(p) {
			if !math.IsNaN(got) {
				t.Fatalf("NaN p returned %g, want NaN", got)
			}
			return
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		finite := 0
		for _, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			finite++
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if finite == 0 {
			if !math.IsInf(got, -1) {
				t.Fatalf("no finite samples returned %g, want -Inf", got)
			}
			return
		}
		if math.IsNaN(got) {
			t.Fatalf("Percentile(%v, %g) fabricated NaN", x, p)
		}
		if got < lo || got > hi {
			t.Fatalf("Percentile(%v, %g) = %g outside finite range [%g, %g]", x, p, got, lo, hi)
		}
	})
}

// FuzzPlanRoundTrip asserts that a Rectangular plan's Inverse undoes its
// Forward for every transform size, power-of-two or Bluestein, without
// panics, hangs, or NaN fabrication.
func FuzzPlanRoundTrip(f *testing.F) {
	f.Add(uint16(8), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint16(256), []byte{9, 8, 7, 6})
	f.Add(uint16(3), []byte{0xaa, 0xbb})  // Bluestein path
	f.Add(uint16(60), []byte{1, 0, 0, 1}) // composite size
	f.Fuzz(func(t *testing.T, size uint16, data []byte) {
		n := int(size)%512 + 1
		src := make([]complex128, n)
		for i := range src {
			// Bounded real samples derived from the corpus bytes: the
			// round-trip tolerance below assumes sane magnitudes (the FFT
			// of ±1e300 inputs legitimately overflows).
			var b byte
			if len(data) > 0 {
				b = data[i%len(data)]
			}
			src[i] = complex(float64(b)/255-0.5, float64(i%7)/7-0.5)
		}
		p := PlanFor(n, Rectangular)
		freq := make([]complex128, n)
		back := make([]complex128, n)
		p.Forward(freq, src)
		p.Inverse(back, freq)
		for i := range src {
			if d := cmplx.Abs(back[i] - src[i]); d > 1e-9 || math.IsNaN(d) {
				t.Fatalf("n=%d: round trip diverges at %d: %v vs %v (|d|=%g)", n, i, back[i], src[i], d)
			}
		}
	})
}

// FuzzResample asserts the non-uniform resampler never panics and produces
// finite output from finite input — it feeds the decoder directly, so NaN
// propagation here would poison the spectrum.
func FuzzResample(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint8(16))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 1, 2, 3, 4}, uint8(64))
	f.Fuzz(func(t *testing.T, data []byte, gridBits uint8) {
		vals := floatsFromBytes(data, 256)
		if len(vals) < 2 {
			return
		}
		u := make([]float64, len(vals))
		y := make([]float64, len(vals))
		allFinite := true
		for i, v := range vals {
			u[i] = float64(i) / float64(len(vals)-1)
			y[i] = v
			if math.IsNaN(v) || math.IsInf(v, 0) {
				allFinite = false
			}
		}
		n := int(gridBits)%256 + 2
		grid, out, err := Resample(u, y, 0, 1, n)
		if err != nil {
			return
		}
		if len(grid) != n || len(out) != n {
			t.Fatalf("Resample returned %d/%d points, want %d", len(grid), len(out), n)
		}
		if !allFinite {
			return
		}
		for i, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("Resample fabricated non-finite %g at %d from finite input", v, i)
			}
		}
	})
}
