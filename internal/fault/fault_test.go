package fault

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"
	"time"

	"ros/internal/roserr"
)

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"drop rate above 1", Config{FrameDropRate: 1.5}},
		{"negative drop rate", Config{FrameDropRate: -0.1}},
		{"NaN drop rate", Config{FrameDropRate: math.NaN()}},
		{"corrupt rate above 1", Config{CorruptRate: 2}},
		{"burst rate below 0", Config{BurstRate: -1}},
		{"panic rate above 1", Config{PanicRate: 1.01}},
		{"delay rate above 1", Config{DelayRate: 7}},
		{"corrupt fraction above 1", Config{CorruptFraction: 1.2}},
		{"burst fraction negative", Config{BurstFraction: -0.5}},
		{"negative burst amplitude", Config{BurstAmplitude: -1e-6}},
		{"negative delay", Config{Delay: -time.Millisecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.cfg)
			}
			if !errors.Is(err, roserr.ErrConfig) {
				t.Errorf("err = %v, want ErrConfig", err)
			}
			if _, err := New(tc.cfg); err == nil {
				t.Error("New accepted the invalid config")
			}
		})
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	ok := Config{Seed: 3, FrameDropRate: 0.2, CorruptRate: 1, BurstRate: 0.5,
		PanicRate: 0.01, DelayRate: 0.1, Delay: time.Millisecond}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if in.Frame(i).Any() {
			t.Fatalf("nil injector faulted frame %d", i)
		}
	}
}

func TestDecisionsDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, FrameDropRate: 0.3, CorruptRate: 0.3, BurstRate: 0.3,
		PanicRate: 0.1, DelayRate: 0.2}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(cfg)
	for i := 0; i < 500; i++ {
		fa, fb := a.Frame(i), b.Frame(i)
		if fa.Drop != fb.Drop || fa.Panic != fb.Panic || fa.Corrupt != fb.Corrupt ||
			fa.Burst != fb.Burst || fa.Delay != fb.Delay {
			t.Fatalf("frame %d decisions diverge: %+v vs %+v", i, fa, fb)
		}
	}
	// A different seed produces a different pattern.
	c, _ := New(Config{Seed: 43, FrameDropRate: 0.3})
	same := 0
	for i := 0; i < 500; i++ {
		if a.Frame(i).Drop == c.Frame(i).Drop {
			same++
		}
	}
	if same == 500 {
		t.Error("seed does not change the drop pattern")
	}
}

// TestGateDrawsIndependent verifies that enabling one knob does not
// reshuffle another's pattern: the drop decisions with and without panics
// enabled must be identical.
func TestGateDrawsIndependent(t *testing.T) {
	plain, _ := New(Config{Seed: 7, FrameDropRate: 0.25})
	mixed, _ := New(Config{Seed: 7, FrameDropRate: 0.25, PanicRate: 0.5, BurstRate: 0.9})
	for i := 0; i < 1000; i++ {
		if plain.Frame(i).Drop != mixed.Frame(i).Drop {
			t.Fatalf("frame %d: drop decision depends on unrelated knobs", i)
		}
	}
}

func TestDropRateApproximatelyHolds(t *testing.T) {
	in, _ := New(Config{Seed: 9, FrameDropRate: 0.2})
	drops := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if in.Frame(i).Drop {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.17 || got > 0.23 {
		t.Errorf("empirical drop rate %.3f, want ~0.2", got)
	}
}

func TestApplyCorruptsAndBursts(t *testing.T) {
	const numRx, samples = 4, 64
	in, _ := New(Config{Seed: 5, CorruptRate: 1, BurstRate: 1, BurstAmplitude: 1})
	data := make([]complex128, numRx*samples)
	ff := in.Frame(0)
	if !ff.Corrupt || !ff.Burst {
		t.Fatal("rate-1 faults not selected")
	}
	n := ff.Apply(data, numRx, samples)
	if n == 0 {
		t.Fatal("Apply corrupted no samples")
	}
	nonFinite, energetic := 0, 0
	for _, v := range data {
		if math.IsNaN(real(v)) || math.IsNaN(imag(v)) || math.IsInf(real(v), 0) || math.IsInf(imag(v), 0) {
			nonFinite++
		} else if cmplx.Abs(v) > 0.5 {
			energetic++
		}
	}
	if nonFinite == 0 {
		t.Error("no NaN/Inf samples written")
	}
	if nonFinite > n {
		t.Errorf("reported %d non-finite writes, found %d", n, nonFinite)
	}
	if energetic == 0 {
		t.Error("no burst-noise samples found")
	}

	// Same frame, same buffer: the corruption pattern is reproducible.
	again := make([]complex128, numRx*samples)
	in.Frame(0).Apply(again, numRx, samples)
	for i := range data {
		same := data[i] == again[i] ||
			(math.IsNaN(real(data[i])) && math.IsNaN(real(again[i]))) ||
			(math.IsNaN(imag(data[i])) && math.IsNaN(imag(again[i])))
		if !same {
			t.Fatalf("sample %d not reproducible: %v vs %v", i, data[i], again[i])
		}
	}
}

func TestDefaultsFilled(t *testing.T) {
	in, err := New(Config{CorruptRate: 0.1, DelayRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := in.Config()
	if cfg.CorruptFraction != 0.02 || cfg.BurstFraction != 0.1 ||
		cfg.BurstAmplitude != 1e-4 || cfg.Delay != time.Millisecond {
		t.Errorf("defaults not filled: %+v", cfg)
	}
}

// TestKindsMatchesFrameSchedule pins the Kinds replay to the per-frame
// decisions: the totals must agree with counting Frame(i) by hand, and a
// kind's count must be invariant to enabling other kinds (the fixed gate-draw
// order contract).
func TestKindsMatchesFrameSchedule(t *testing.T) {
	cfg := Config{Seed: 11, FrameDropRate: 0.2, CorruptRate: 0.1,
		BurstRate: 0.05, PanicRate: 0.02, DelayRate: 0.3}
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	var want KindCounts
	for i := 0; i < n; i++ {
		ff := in.Frame(i)
		if ff.Drop {
			want.Drop++
		}
		if ff.Panic {
			want.Panic++
		}
		if ff.Corrupt {
			want.Corrupt++
		}
		if ff.Burst {
			want.Burst++
		}
		if ff.Delay > 0 {
			want.Delay++
		}
	}
	if got := in.Kinds(n); got != want {
		t.Errorf("Kinds(%d) = %+v, want %+v", n, got, want)
	}
	if want.Total() == 0 {
		t.Fatal("schedule injected nothing; rates or seed broken")
	}
	// Drop-only config at the same seed schedules the same drops.
	dropOnly, err := New(Config{Seed: 11, FrameDropRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if got := dropOnly.Kinds(n).Drop; got != want.Drop {
		t.Errorf("drop-only schedule drops %d frames, want %d (other knobs reshuffled the gate draws)", got, want.Drop)
	}
	var nilInj *Injector
	if got := nilInj.Kinds(n); got != (KindCounts{}) {
		t.Errorf("nil injector Kinds = %+v, want zero", got)
	}
}

func TestKindCountsLabels(t *testing.T) {
	k := KindCounts{Drop: 2, Burst: 1, Delay: 3}
	got := k.Labels()
	want := []string{"drop", "burst", "delay"}
	if len(got) != len(want) {
		t.Fatalf("Labels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels = %v, want %v (fixed gate order)", got, want)
		}
	}
	if (KindCounts{}).Labels() != nil {
		t.Error("zero counts should yield no labels")
	}
	if k.Total() != 6 {
		t.Errorf("Total = %d, want 6", k.Total())
	}
}
