// Package fault is a deterministic, seedable fault-injection layer for the
// read pipeline. It models the failure modes a roadside reader meets in the
// field — frames lost whole (occlusion, bus stalls), samples corrupted to
// NaN/Inf (front-end glitches), finite burst interference, workers that
// panic, and stage latency — behind the existing radar/detect seams, off by
// default and exercised by the chaos test suite.
//
// Every decision is a pure function of (Config.Seed, frame index), derived
// through the same SplitMix64 mixing as the frame noise streams but on a
// salted seed, so fault patterns reproduce exactly at any worker count and
// never perturb the physics RNG: a run with fault injection disabled is
// byte-identical to one that never imported this package.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"ros/internal/roserr"
	"ros/internal/sweep"
)

// seedSalt decorrelates the fault decision streams from the frame noise
// streams, which are seeded from the same root seed.
const seedSalt int64 = 0x6661756c74 // "fault"

// Config holds the fault-injection knobs. The zero value injects nothing.
type Config struct {
	// Seed drives every fault decision; independent of the physics seed.
	Seed int64
	// FrameDropRate is the per-frame probability of losing the frame whole.
	FrameDropRate float64
	// CorruptRate is the per-frame probability of sample corruption: one
	// channel per polarization mode gets CorruptFraction of its samples
	// overwritten with NaN/±Inf.
	CorruptRate float64
	// CorruptFraction is the fraction of the hit channel's samples
	// overwritten (default 0.02). Fractions past the scrubber's repair
	// threshold turn corruption into frame loss.
	CorruptFraction float64
	// BurstRate is the per-frame probability of a finite burst-noise event:
	// a contiguous run of BurstFraction of one channel's samples gets
	// high-power noise of amplitude BurstAmplitude added.
	BurstRate float64
	// BurstFraction is the burst length as a fraction of the channel
	// (default 0.1).
	BurstFraction float64
	// BurstAmplitude is the linear burst amplitude in sqrt-watts (default
	// 1e-4, ~12 dB above the TI front end's thermal floor).
	BurstAmplitude float64
	// PanicRate is the per-frame probability of an injected worker panic,
	// exercising the sweep pool's recovery path.
	PanicRate float64
	// DelayRate is the per-frame probability of artificial stage latency.
	DelayRate float64
	// Delay is the injected latency per affected frame (default 1 ms when
	// DelayRate is set).
	Delay time.Duration
}

// Validate reports whether the configuration is usable. Rates must be
// probabilities and fractions must stay in (0, 1]; a bad fault config is a
// configuration error, never a runtime fault.
func (c Config) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"FrameDropRate", c.FrameDropRate},
		{"CorruptRate", c.CorruptRate},
		{"BurstRate", c.BurstRate},
		{"PanicRate", c.PanicRate},
		{"DelayRate", c.DelayRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return fmt.Errorf("fault: %w: %s %g outside [0, 1]", roserr.ErrConfig, r.name, r.v)
		}
	}
	if f := c.CorruptFraction; f < 0 || f > 1 || math.IsNaN(f) {
		return fmt.Errorf("fault: %w: CorruptFraction %g outside [0, 1]", roserr.ErrConfig, f)
	}
	if f := c.BurstFraction; f < 0 || f > 1 || math.IsNaN(f) {
		return fmt.Errorf("fault: %w: BurstFraction %g outside [0, 1]", roserr.ErrConfig, f)
	}
	if c.BurstAmplitude < 0 || math.IsNaN(c.BurstAmplitude) {
		return fmt.Errorf("fault: %w: negative BurstAmplitude %g", roserr.ErrConfig, c.BurstAmplitude)
	}
	if c.Delay < 0 {
		return fmt.Errorf("fault: %w: negative Delay %v", roserr.ErrConfig, c.Delay)
	}
	return nil
}

// Injector hands out deterministic per-frame fault decisions. A nil
// *Injector is valid and injects nothing.
type Injector struct {
	cfg Config
}

// New validates the configuration and returns an injector for it.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CorruptFraction == 0 {
		cfg.CorruptFraction = 0.02
	}
	if cfg.BurstFraction == 0 {
		cfg.BurstFraction = 0.1
	}
	if cfg.BurstAmplitude == 0 {
		cfg.BurstAmplitude = 1e-4
	}
	if cfg.Delay == 0 && cfg.DelayRate > 0 {
		cfg.Delay = time.Millisecond
	}
	return &Injector{cfg: cfg}, nil
}

// Config returns the (defaults-filled) configuration behind the injector.
func (in *Injector) Config() Config { return in.cfg }

// FrameFaults is the fault decision for one frame. The zero value injects
// nothing.
type FrameFaults struct {
	// Drop loses the frame whole.
	Drop bool
	// Panic makes the frame's worker panic (the pool recovers it).
	Panic bool
	// Corrupt overwrites samples with NaN/±Inf via Apply.
	Corrupt bool
	// Burst adds finite high-power noise via Apply.
	Burst bool
	// Delay is artificial stage latency to sleep before the frame.
	Delay time.Duration

	cfg Config
	rng *rand.Rand
}

// Any reports whether the decision injects anything at all.
func (ff FrameFaults) Any() bool {
	return ff.Drop || ff.Panic || ff.Corrupt || ff.Burst || ff.Delay > 0
}

// Frame returns the fault decision for frame i. The decision depends only on
// (Config.Seed, i) — the five gate draws happen in fixed order regardless of
// which faults are enabled, so enabling one knob never reshuffles another's
// pattern. A nil injector returns the zero decision.
func (in *Injector) Frame(i int) FrameFaults {
	if in == nil {
		return FrameFaults{}
	}
	rng := sweep.NewRand(in.cfg.Seed^seedSalt, i)
	ff := FrameFaults{cfg: in.cfg, rng: rng}
	ff.Drop = rng.Float64() < in.cfg.FrameDropRate
	ff.Panic = rng.Float64() < in.cfg.PanicRate
	ff.Corrupt = rng.Float64() < in.cfg.CorruptRate
	ff.Burst = rng.Float64() < in.cfg.BurstRate
	if rng.Float64() < in.cfg.DelayRate {
		ff.Delay = in.cfg.Delay
	}
	return ff
}

// KindCounts totals a fault schedule by kind over a frame range.
type KindCounts struct {
	Drop, Panic, Corrupt, Burst, Delay int
}

// Total is the number of scheduled fault events across all kinds.
func (k KindCounts) Total() int {
	return k.Drop + k.Panic + k.Corrupt + k.Burst + k.Delay
}

// Labels lists the kinds that fired at least once, in the fixed gate-draw
// order — the flight recorder's FaultKinds field.
func (k KindCounts) Labels() []string {
	var out []string
	for _, e := range []struct {
		name string
		n    int
	}{
		{"drop", k.Drop},
		{"panic", k.Panic},
		{"corrupt", k.Corrupt},
		{"burst", k.Burst},
		{"delay", k.Delay},
	} {
		if e.n > 0 {
			out = append(out, e.name)
		}
	}
	return out
}

// Kinds replays the injector's decision schedule for frames 0..n-1 and
// totals it by kind. Because Frame(i) is a pure function of (seed, i), the
// counts predict exactly what a run over n frame poses injects — the chaos
// suite compares them against the flight recorder's per-read counters. A nil
// injector schedules nothing.
func (in *Injector) Kinds(n int) KindCounts {
	var k KindCounts
	if in == nil {
		return k
	}
	for i := 0; i < n; i++ {
		ff := in.Frame(i)
		if ff.Drop {
			k.Drop++
		}
		if ff.Panic {
			k.Panic++
		}
		if ff.Corrupt {
			k.Corrupt++
		}
		if ff.Burst {
			k.Burst++
		}
		if ff.Delay > 0 {
			k.Delay++
		}
	}
	return k
}

// Apply injects the decision's sample-level faults into one channel-major
// frame buffer (channel k occupies data[k*samples : (k+1)*samples]) and
// returns how many samples were overwritten with non-finite values. The
// positions continue the frame's decision stream, so they too depend only on
// (seed, frame index). Drop/Panic/Delay are the caller's to enforce.
func (ff FrameFaults) Apply(data []complex128, numRx, samples int) (nonFinite int) {
	if ff.rng == nil || numRx < 1 || samples < 1 {
		return 0
	}
	if ff.Corrupt {
		ch := ff.rng.Intn(numRx)
		hits := int(math.Ceil(ff.cfg.CorruptFraction * float64(samples)))
		base := ch * samples
		for h := 0; h < hits; h++ {
			t := base + ff.rng.Intn(samples)
			switch h % 3 {
			case 0:
				data[t] = complex(math.NaN(), imag(data[t]))
			case 1:
				data[t] = complex(math.Inf(1), math.Inf(1))
			default:
				data[t] = complex(real(data[t]), math.Inf(-1))
			}
			nonFinite++
		}
	}
	if ff.Burst {
		ch := ff.rng.Intn(numRx)
		length := int(math.Ceil(ff.cfg.BurstFraction * float64(samples)))
		start := ff.rng.Intn(samples)
		base := ch * samples
		amp := ff.cfg.BurstAmplitude
		for t := 0; t < length; t++ {
			idx := base + (start+t)%samples
			phase := 2 * math.Pi * ff.rng.Float64()
			s, c := math.Sincos(phase)
			data[idx] += complex(amp*c, amp*s)
		}
	}
	return nonFinite
}
