package em

import (
	"math"
	"testing"
)

func TestWavelength(t *testing.T) {
	l := Wavelength(CenterFrequency)
	if math.Abs(l-0.0037948) > 1e-6 {
		t.Errorf("lambda(79 GHz) = %g m, want ~3.795 mm", l)
	}
	if Lambda79() != l {
		t.Error("Lambda79 differs from Wavelength(CenterFrequency)")
	}
	defer func() {
		if recover() == nil {
			t.Error("Wavelength(0) did not panic")
		}
	}()
	Wavelength(0)
}

func TestDBmConversions(t *testing.T) {
	if got := DBm(1); got != 30 {
		t.Errorf("DBm(1 W) = %g, want 30", got)
	}
	if got := DBm(0.001); math.Abs(got) > 1e-12 {
		t.Errorf("DBm(1 mW) = %g, want 0", got)
	}
	if got := FromDBm(0); math.Abs(got-0.001) > 1e-15 {
		t.Errorf("FromDBm(0) = %g, want 0.001", got)
	}
	if !math.IsInf(DBm(0), -1) {
		t.Error("DBm(0) should be -Inf")
	}
	for _, w := range []float64{1e-9, 1e-3, 2.5} {
		if back := FromDBm(DBm(w)); math.Abs(back-w) > 1e-12*w {
			t.Errorf("dBm round trip %g -> %g", w, back)
		}
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, x := range []float64{1e-6, 1, 42, 1e9} {
		if back := FromDB(DB(x)); math.Abs(back-x) > 1e-9*x {
			t.Errorf("dB round trip %g -> %g", x, back)
		}
	}
	if FromDBsm(DBsm(0.005)) != FromDB(DB(0.005)) {
		t.Error("DBsm should alias DB")
	}
}

func TestReceivedPowerMatchesDBForm(t *testing.T) {
	lambda := Lambda79()
	pt := FromDBm(12.0) // 12 dBm Tx
	gt := FromDB(9)
	gr := FromDB(55)
	sigma := FromDBsm(-23)
	d := 5.0
	lin := ReceivedPower(pt, gt, gr, lambda, d, sigma)
	dbm := ReceivedPowerDBm(12+9, 55, lambda, d, -23)
	if math.Abs(DBm(lin)-dbm) > 1e-9 {
		t.Errorf("linear form %g dBm vs dB form %g dBm", DBm(lin), dbm)
	}
}

func TestReceivedPowerFourthPowerLaw(t *testing.T) {
	lambda := Lambda79()
	p1 := ReceivedPower(1, 1, 1, lambda, 2, 1)
	p2 := ReceivedPower(1, 1, 1, lambda, 4, 1)
	if math.Abs(p1/p2-16) > 1e-9 {
		t.Errorf("doubling distance changed power by %g, want 16x", p1/p2)
	}
}

func TestReceivedPowerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ReceivedPower at d=0 did not panic")
		}
	}()
	ReceivedPower(1, 1, 1, 0.004, 0, 1)
}

func TestTIRadarNoiseFloorMatchesPaper(t *testing.T) {
	// Sec 5.3: "the minimum RSS level is Pr = -62 dBm".
	fe := TIRadar()
	if nf := fe.NoiseFloorDBm(); math.Abs(nf-(-62)) > 0.5 {
		t.Errorf("TI noise floor = %g dBm, want ~-62 dBm", nf)
	}
	if g := fe.RxGainDB(); g != 55 {
		t.Errorf("TI Rx gain = %g dB, want 55 dB", g)
	}
}

func TestTIRadarMaxRangeMatchesPaper(t *testing.T) {
	// Sec 5.3: "the maximum achievable distance is d ~ 6.9 m" for the
	// -23 dBsm 32-array tag.
	fe := TIRadar()
	d := fe.MaxRange(TagRCS32StackDBsm, CenterFrequency)
	if math.Abs(d-6.9) > 0.3 {
		t.Errorf("TI max range = %g m, want ~6.9 m", d)
	}
}

func TestCommercialRadarMaxRangeMatchesPaper(t *testing.T) {
	// Sec 8: "a maximum distance of 52 m can be achieved".
	fe := CommercialRadar()
	d := fe.MaxRange(TagRCS32StackDBsm, CenterFrequency)
	if math.Abs(d-52) > 3 {
		t.Errorf("commercial max range = %g m, want ~52 m", d)
	}
}

func TestSNRAtRangeConsistentWithMaxRange(t *testing.T) {
	fe := TIRadar()
	dMax := fe.MaxRange(TagRCS32StackDBsm, CenterFrequency)
	if snr := fe.SNRAtRange(TagRCS32StackDBsm, CenterFrequency, dMax); math.Abs(snr) > 1e-9 {
		t.Errorf("SNR at max range = %g dB, want 0", snr)
	}
	if snr := fe.SNRAtRange(TagRCS32StackDBsm, CenterFrequency, dMax/2); math.Abs(snr-12.04) > 0.1 {
		t.Errorf("SNR at half max range = %g dB, want ~12 dB", snr)
	}
}

func TestSNRAtRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SNRAtRange at d=0 did not panic")
		}
	}()
	TIRadar().SNRAtRange(-23, CenterFrequency, 0)
}
