package em

// Atmospheric attenuation models for the 79 GHz band, used by the adverse
// weather experiments (Fig 16c). The paper cites [4] for fog (about 2 dB per
// 100 m for a heavy fog of 1 g/m^3 water content) and [64] for rain (about
// 3.2 dB per 100 m at 100 mm/h).

import "math"

// FogLevel enumerates the fog conditions evaluated in Fig 16c.
type FogLevel int

// Fog levels of Fig 16c.
const (
	FogClear FogLevel = iota
	FogLight
	FogHeavy
)

// String names the fog level as in Fig 16c.
func (f FogLevel) String() string {
	switch f {
	case FogClear:
		return "clear"
	case FogLight:
		return "light fog"
	case FogHeavy:
		return "heavy fog"
	default:
		return "unknown"
	}
}

// AttenuationDBPerMeter returns the one-way specific attenuation of the fog
// level at 79 GHz in dB/m. Heavy fog follows the paper's quoted 2 dB per
// 100 m; light fog is scaled to a quarter of the droplet concentration;
// clear air keeps the standard ~0.4 dB/km gaseous absorption.
func (f FogLevel) AttenuationDBPerMeter() float64 {
	switch f {
	case FogLight:
		return 0.5 / 100
	case FogHeavy:
		return 2.0 / 100
	default:
		return 0.0004
	}
}

// RainAttenuationDBPerMeter returns the one-way specific attenuation of rain
// at 79 GHz for the given precipitation rate in mm/h, following the power-law
// fit of the paper's reference [64] anchored at 3.2 dB/100 m for 100 mm/h.
func RainAttenuationDBPerMeter(mmPerHour float64) float64 {
	if mmPerHour <= 0 {
		return 0
	}
	// k * R^alpha with alpha = 0.77 (typical for W band) and k anchored so
	// that R = 100 mm/h gives 0.032 dB/m.
	const alpha = 0.77
	k := 0.032 / math.Pow(100, alpha)
	return k * math.Pow(mmPerHour, alpha)
}

// RoundTripLoss returns the two-way atmospheric power loss factor (linear,
// <= 1) over a one-way path of d meters at the given one-way specific
// attenuation in dB/m.
func RoundTripLoss(attenDBPerMeter, d float64) float64 {
	if d < 0 {
		d = 0
	}
	return FromDB(-2 * attenDBPerMeter * d)
}
