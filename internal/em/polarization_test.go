package em

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestPolLinearBasis(t *testing.T) {
	h := PolLinear(0)
	v := PolLinear(math.Pi / 2)
	if cmplx.Abs(h.H-1) > 1e-12 || cmplx.Abs(h.V) > 1e-12 {
		t.Errorf("PolLinear(0) = %+v, want H", h)
	}
	if cmplx.Abs(v.V-1) > 1e-12 || cmplx.Abs(v.H) > 1e-12 {
		t.Errorf("PolLinear(pi/2) = %+v, want V", v)
	}
}

func TestOrthogonality(t *testing.T) {
	for _, ang := range []float64{0, 0.3, 1.1, math.Pi / 2} {
		p := PolLinear(ang)
		q := p.Orthogonal()
		if d := cmplx.Abs(p.Dot(q)); d > 1e-12 {
			t.Errorf("angle %g: |<p, p_perp>| = %g, want 0", ang, d)
		}
		if n := q.Norm(); math.Abs(n-1) > 1e-12 {
			t.Errorf("angle %g: |p_perp| = %g, want 1", ang, n)
		}
	}
}

func TestUnitNormalizes(t *testing.T) {
	p := Polarization{H: 3, V: 4i}
	if n := p.Unit().Norm(); math.Abs(n-1) > 1e-12 {
		t.Errorf("unit norm = %g", n)
	}
	z := Polarization{}
	if z.Unit() != z {
		t.Error("zero polarization changed by Unit")
	}
}

func TestIdentityScatterPreservesPolarization(t *testing.T) {
	s := IdentityScatter(2)
	out := s.Apply(PolV)
	if cmplx.Abs(out.V-2) > 1e-12 || cmplx.Abs(out.H) > 1e-12 {
		t.Errorf("identity scatter of V = %+v", out)
	}
	// Cross coupling of a pure co-pol scatterer is zero.
	if c := s.Coupling(PolV, PolH); cmplx.Abs(c) > 1e-12 {
		t.Errorf("identity cross coupling = %g", cmplx.Abs(c))
	}
	if !math.IsInf(CrossPolRejectionDB(s), 1) {
		t.Error("identity rejection should be +Inf")
	}
}

func TestSwitchScatterSwapsPolarization(t *testing.T) {
	// The PSVAA model: incident V comes back as H and vice versa (Sec 4.2).
	s := SwitchScatter(1)
	out := s.Apply(PolV)
	if cmplx.Abs(out.H-1) > 1e-12 || cmplx.Abs(out.V) > 1e-12 {
		t.Errorf("switch scatter of V = %+v, want H", out)
	}
	// Co-pol coupling through a switcher is zero: the radar with matched
	// Tx/Rx polarization sees nothing of the antenna mode (Fig 5b).
	if c := s.Coupling(PolV, PolV); cmplx.Abs(c) > 1e-12 {
		t.Errorf("switcher co-pol coupling = %g", cmplx.Abs(c))
	}
	// Orthogonal Tx/Rx sees the full amplitude (Fig 5a).
	if c := cmplx.Abs(s.Coupling(PolV, PolH)); math.Abs(c-1) > 1e-12 {
		t.Errorf("switcher cross-pol coupling = %g, want 1", c)
	}
}

func TestClutterScatterRejection(t *testing.T) {
	for _, rej := range []float64{16, 17.5, 19} {
		s := ClutterScatter(1, rej)
		got := CrossPolRejectionDB(s)
		if math.Abs(got-rej) > 1e-9 {
			t.Errorf("rejection %g dB: measured %g dB", rej, got)
		}
	}
}

func TestCouplingEnergyConservationProperty(t *testing.T) {
	// Property: for any incident polarization, projecting the scattered
	// field on an orthonormal basis conserves the scattered energy.
	f := func(angle float64) bool {
		if math.IsNaN(angle) || math.IsInf(angle, 0) {
			return true
		}
		in := PolLinear(angle)
		s := ClutterScatter(1, 17)
		out := s.Apply(in)
		eH := cmplx.Abs(PolH.Dot(out))
		eV := cmplx.Abs(PolV.Dot(out))
		total := eH*eH + eV*eV
		want := out.Norm() * out.Norm()
		return math.Abs(total-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFogAttenuation(t *testing.T) {
	// Paper Sec 7.3: heavy fog at 79 GHz attenuates ~2 dB per 100 m.
	if a := FogHeavy.AttenuationDBPerMeter() * 100; math.Abs(a-2) > 1e-9 {
		t.Errorf("heavy fog = %g dB/100m, want 2", a)
	}
	if FogLight.AttenuationDBPerMeter() >= FogHeavy.AttenuationDBPerMeter() {
		t.Error("light fog should attenuate less than heavy fog")
	}
	if FogClear.AttenuationDBPerMeter() >= FogLight.AttenuationDBPerMeter() {
		t.Error("clear air should attenuate less than light fog")
	}
	names := map[FogLevel]string{FogClear: "clear", FogLight: "light fog", FogHeavy: "heavy fog", FogLevel(9): "unknown"}
	for l, want := range names {
		if got := l.String(); got != want {
			t.Errorf("FogLevel(%d).String() = %q, want %q", l, got, want)
		}
	}
}

func TestRainAttenuation(t *testing.T) {
	// Anchored at the paper's 3.2 dB per 100 m for 100 mm/h.
	if a := RainAttenuationDBPerMeter(100) * 100; math.Abs(a-3.2) > 1e-9 {
		t.Errorf("rain(100 mm/h) = %g dB/100m, want 3.2", a)
	}
	if RainAttenuationDBPerMeter(0) != 0 || RainAttenuationDBPerMeter(-5) != 0 {
		t.Error("non-positive rain rate should not attenuate")
	}
	if RainAttenuationDBPerMeter(10) >= RainAttenuationDBPerMeter(100) {
		t.Error("rain attenuation should grow with rate")
	}
}

func TestRoundTripLoss(t *testing.T) {
	// 2 dB/100m one way over 100 m -> 4 dB round trip.
	loss := RoundTripLoss(0.02, 100)
	if math.Abs(DB(loss)-(-4)) > 1e-9 {
		t.Errorf("round trip loss = %g dB, want -4", DB(loss))
	}
	if RoundTripLoss(0.02, -1) != 1 {
		t.Error("negative distance should mean no loss")
	}
	// Fog is negligible at tag ranges: < 0.3 dB at 6 m.
	atTag := -DB(RoundTripLoss(FogHeavy.AttenuationDBPerMeter(), 6))
	if atTag > 0.3 {
		t.Errorf("heavy fog at 6 m costs %g dB, expected negligible", atTag)
	}
}
