// Package em provides the electromagnetic groundwork for the RoS
// reproduction: physical constants, the monostatic radar range equation
// (Eq 1 of the paper), the receiver noise floor and link budget of Sec 5.3,
// polarization (Jones vector) algebra for the PSVAA's polarization
// switching, and the atmospheric attenuation models used in the fog
// experiments (Fig 16c).
package em

import (
	"fmt"
	"math"
)

// C is the speed of light in vacuum, m/s.
const C = 299_792_458.0

// Automotive radar band constants used throughout the paper.
const (
	// BandLow and BandHigh delimit the 76-81 GHz automotive radar band.
	BandLow  = 76e9
	BandHigh = 81e9
	// CenterFrequency is the paper's design frequency (79 GHz).
	CenterFrequency = 79e9
)

// Wavelength returns the free-space wavelength in meters at frequency f Hz.
func Wavelength(f float64) float64 {
	if f <= 0 {
		panic(fmt.Sprintf("em: Wavelength of non-positive frequency %g", f))
	}
	return C / f
}

// Lambda79 is the free-space wavelength at the 79 GHz design frequency.
func Lambda79() float64 { return Wavelength(CenterFrequency) }

// DBm converts watts to dBm.
func DBm(watts float64) float64 {
	if watts <= 0 {
		return math.Inf(-1)
	}
	return 10*math.Log10(watts) + 30
}

// FromDBm converts dBm to watts.
func FromDBm(dbm float64) float64 {
	return math.Pow(10, (dbm-30)/10)
}

// DB converts a linear power ratio to dB.
func DB(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(x)
}

// FromDB converts dB to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// DBsm converts an RCS in square meters to dBsm.
func DBsm(sigma float64) float64 { return DB(sigma) }

// FromDBsm converts dBsm to square meters.
func FromDBsm(dbsm float64) float64 { return FromDB(dbsm) }

// ReceivedPower evaluates the paper's Eq 1, the monostatic round-trip radar
// equation:
//
//	Pr = Pt * Gt * Gr * lambda^2 * sigma / ((4*pi)^3 * d^4)
//
// All gains are linear, powers in watts, sigma in m^2, d in meters.
func ReceivedPower(pt, gt, gr, lambda, d, sigma float64) float64 {
	if d <= 0 {
		panic(fmt.Sprintf("em: ReceivedPower at non-positive distance %g", d))
	}
	fourPi := 4 * math.Pi
	return pt * gt * gr * lambda * lambda * sigma / (fourPi * fourPi * fourPi * d * d * d * d)
}

// ReceivedPowerDBm is ReceivedPower with dB-domain inputs: EIRP (Pt*Gt) in
// dBm, Rx gain in dB, RCS in dBsm. It returns dBm.
func ReceivedPowerDBm(eirpDBm, rxGainDB, lambda, d, rcsDBsm float64) float64 {
	if d <= 0 {
		panic(fmt.Sprintf("em: ReceivedPowerDBm at non-positive distance %g", d))
	}
	fourPiCubedDB := 30 * math.Log10(4*math.Pi)
	return eirpDBm + rxGainDB + 20*math.Log10(lambda) + rcsDBsm - fourPiCubedDB - 40*math.Log10(d)
}
