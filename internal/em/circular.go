package em

import "math"

// Circular polarization support for the Sec 8 extension: "The range can be
// further improved by overcoming the 6 dB RCS loss of the PSVAA with
// circularly polarized (CP) antenna elements. While common objects change
// the left/right-hand direction of circular polarized signals upon
// reflection, the PSVAA with CP antennas does not, enabling the radar to
// separate the reflections without the 6 dB loss."

// Circular Jones vectors (IEEE convention, unit power).
var (
	// PolRHC is right-hand circular polarization.
	PolRHC = Polarization{H: complex(1/math.Sqrt2, 0), V: complex(0, -1/math.Sqrt2)}
	// PolLHC is left-hand circular polarization.
	PolLHC = Polarization{H: complex(1/math.Sqrt2, 0), V: complex(0, 1/math.Sqrt2)}
)

// MirrorScatter returns the scattering matrix of an ordinary (specular)
// reflector of amplitude a expressed so that its effect on circular
// polarization is explicit: a mirror preserves linear polarization but flips
// circular handedness (RHC in -> LHC out). In the (H, V) Jones basis this is
// diag(a, -a): the tangential field component reverses on reflection.
func MirrorScatter(a complex128) ScatterMatrix {
	return ScatterMatrix{HH: a, VV: -a}
}

// HandednessPreservingScatter returns the scattering matrix of a reflector
// that preserves circular handedness (RHC in -> RHC out), the behaviour of
// the CP Van Atta retroreflector of Sec 8: receive on one CP antenna,
// re-radiate from its partner with the same handedness. In the (H, V) basis
// this is diag(a, a) — the identity, which maps RHC to RHC under the
// monostatic convention used by MirrorScatter.
func HandednessPreservingScatter(a complex128) ScatterMatrix {
	return IdentityScatter(a)
}

// HandednessRejectionDB measures how strongly a scatterer's response to an
// RHC interrogation separates into same-handed (CP tag) vs opposite-handed
// (mirror-like clutter) receive channels: positive values mean the
// co-handed channel dominates.
func HandednessRejectionDB(s ScatterMatrix) float64 {
	co := s.Coupling(PolRHC, PolRHC)
	cross := s.Coupling(PolRHC, PolLHC)
	coP := real(co)*real(co) + imag(co)*imag(co)
	crossP := real(cross)*real(cross) + imag(cross)*imag(cross)
	if crossP == 0 {
		if coP == 0 {
			return 0
		}
		return math.Inf(1)
	}
	if coP == 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(coP/crossP)
}
