package em

import (
	"fmt"
	"math"
)

// ThermalNoiseDBmPerHz is the thermal noise constant c0 used by the paper's
// noise-floor expression (Sec 5.3), in dBm/Hz.
const ThermalNoiseDBmPerHz = -173.9

// RadarFrontEnd captures the link-budget-relevant parameters of a radar,
// mirroring the bookkeeping of Sec 5.3.
type RadarFrontEnd struct {
	// Name labels the configuration in reports.
	Name string
	// EIRPdBm is the transmit EIRP, Pt + Gt, in dBm.
	EIRPdBm float64
	// NoiseFigureDB is the receiver noise figure Nf in dB.
	NoiseFigureDB float64
	// IFBandwidthHz is the intermediate-frequency bandwidth B_IF in Hz.
	IFBandwidthHz float64
	// RxAntennaGainDB is the per-antenna receive gain G_ra in dB.
	RxAntennaGainDB float64
	// RxProcessingGainDB is the multi-antenna combining gain G_rs in dB.
	RxProcessingGainDB float64
	// RxIntegrationGainDB is the remaining receive-chain gain G_ri in dB
	// (coherent chirp integration), so that the total Rx gain
	// Gr = G_ra + G_ri + G_rs used in Eq 1.
	RxIntegrationGainDB float64
}

// TIRadar returns the front-end parameters of the TI IWR1443 evaluation
// module as quoted in Sec 5.3: Nf = 15 dB, B_IF = 37.5 MHz, G_ra = 9 dB,
// G_rs = 12 dB (4 Rx antennas), G_ri = 34 dB, EIRP = 21 dBm.
func TIRadar() RadarFrontEnd {
	return RadarFrontEnd{
		Name:                "TI IWR1443",
		EIRPdBm:             21,
		NoiseFigureDB:       15,
		IFBandwidthHz:       37.5e6,
		RxAntennaGainDB:     9,
		RxProcessingGainDB:  12,
		RxIntegrationGainDB: 34,
	}
}

// CommercialRadar returns the commercial automotive radar of Sec 8:
// Nf = 9 dB [34] and EIRP = 50 dBm [36]; the receive chain is kept as on
// the TI radar.
func CommercialRadar() RadarFrontEnd {
	fe := TIRadar()
	fe.Name = "commercial automotive"
	fe.NoiseFigureDB = 9
	fe.EIRPdBm = 50
	return fe
}

// RxGainDB returns the total receive gain Gr = G_ra + G_ri + G_rs in dB
// (55 dB for the TI radar).
func (fe RadarFrontEnd) RxGainDB() float64 {
	return fe.RxAntennaGainDB + fe.RxIntegrationGainDB + fe.RxProcessingGainDB
}

// NoiseFloorDBm evaluates the paper's noise-floor expression
//
//	Lo = c0 * Nf * B_IF * G_ra * G_rs
//
// on the dB scale. Note the paper folds the receive antenna and processing
// gains into the floor so it can be compared directly against Eq 1's Pr
// (which carries the full Gr): for the TI radar this yields the paper's
// -62 dBm minimum detectable RSS.
func (fe RadarFrontEnd) NoiseFloorDBm() float64 {
	return ThermalNoiseDBmPerHz + fe.NoiseFigureDB + 10*math.Log10(fe.IFBandwidthHz) +
		fe.RxAntennaGainDB + fe.RxProcessingGainDB
}

// MaxRange returns the maximum distance in meters at which a target of the
// given RCS (dBsm) stays above the noise floor, solving Eq 1 for d. The
// frequency sets the wavelength (use em.CenterFrequency for the paper's
// numbers).
func (fe RadarFrontEnd) MaxRange(rcsDBsm, frequency float64) float64 {
	lambda := Wavelength(frequency)
	// Pr(d) = EIRP + Gr + 20log10(lambda) + rcs - 30log10(4pi) - 40log10(d)
	// Set Pr(d) = noise floor and solve for d.
	num := fe.EIRPdBm + fe.RxGainDB() + 20*math.Log10(lambda) + rcsDBsm -
		30*math.Log10(4*math.Pi) - fe.NoiseFloorDBm()
	return math.Pow(10, num/40)
}

// SNRAtRange returns the excess of the received power over the noise floor
// in dB for a target of the given RCS at distance d.
func (fe RadarFrontEnd) SNRAtRange(rcsDBsm, frequency, d float64) float64 {
	if d <= 0 {
		panic(fmt.Sprintf("em: SNRAtRange at non-positive distance %g", d))
	}
	lambda := Wavelength(frequency)
	pr := ReceivedPowerDBm(fe.EIRPdBm, fe.RxGainDB(), lambda, d, rcsDBsm)
	return pr - fe.NoiseFloorDBm()
}

// TagRCS32StackDBsm is the HFSS-simulated RCS of the paper's 32-array RoS
// tag: sigma = -23 dBsm (Sec 5.3).
const TagRCS32StackDBsm = -23.0
