package em

import (
	"math"
	"math/cmplx"
)

// Polarization is a (possibly complex) Jones vector describing the
// transverse field of a linearly or circularly polarized wave in the (H, V)
// basis.
type Polarization struct {
	H, V complex128
}

// Canonical polarizations.
var (
	// PolH is horizontal linear polarization.
	PolH = Polarization{H: 1}
	// PolV is vertical linear polarization (the paper's patch antennas are
	// linearly polarized; the radar's stock antennas are V).
	PolV = Polarization{V: 1}
)

// PolLinear returns a linear polarization at the given rotation angle from
// horizontal (radians). PolLinear(0) == PolH, PolLinear(pi/2) == PolV.
func PolLinear(angle float64) Polarization {
	return Polarization{H: complex(math.Cos(angle), 0), V: complex(math.Sin(angle), 0)}
}

// Dot returns the Hermitian inner product <p, q> used to project a received
// field q onto a receive antenna of polarization p.
func (p Polarization) Dot(q Polarization) complex128 {
	return cmplx.Conj(p.H)*q.H + cmplx.Conj(p.V)*q.V
}

// Norm returns the Jones-vector magnitude.
func (p Polarization) Norm() float64 {
	return math.Sqrt(real(p.Dot(p)))
}

// Unit returns p normalized; the zero vector is returned unchanged.
func (p Polarization) Unit() Polarization {
	n := p.Norm()
	if n == 0 {
		return p
	}
	inv := complex(1/n, 0)
	return Polarization{H: p.H * inv, V: p.V * inv}
}

// Orthogonal returns a unit polarization orthogonal to p (for linear p this
// is the 90-degree-rotated polarization).
func (p Polarization) Orthogonal() Polarization {
	u := p.Unit()
	return Polarization{H: -cmplx.Conj(u.V), V: cmplx.Conj(u.H)}
}

// ScatterMatrix is a 2x2 Jones scattering matrix mapping incident to
// scattered polarization: Es = S * Ei in the (H, V) basis.
type ScatterMatrix struct {
	HH, HV complex128 // scattered H from incident H, V
	VH, VV complex128 // scattered V from incident H, V
}

// Apply scatters an incident polarization.
func (s ScatterMatrix) Apply(in Polarization) Polarization {
	return Polarization{
		H: s.HH*in.H + s.HV*in.V,
		V: s.VH*in.H + s.VV*in.V,
	}
}

// Coupling returns the complex amplitude coupled from a transmit
// polarization through the scatterer into a receive polarization:
// <rx, S * tx>.
func (s ScatterMatrix) Coupling(tx, rx Polarization) complex128 {
	return rx.Dot(s.Apply(tx))
}

// IdentityScatter returns the scattering matrix of an ideal
// polarization-preserving reflector with amplitude a.
func IdentityScatter(a complex128) ScatterMatrix {
	return ScatterMatrix{HH: a, VV: a}
}

// SwitchScatter returns the scattering matrix of an ideal polarization
// switching reflector (the PSVAA of Sec 4.2) with amplitude a: incident H
// re-radiates as V and vice versa.
func SwitchScatter(a complex128) ScatterMatrix {
	return ScatterMatrix{HV: a, VH: a}
}

// ClutterScatter returns the scattering matrix of an ordinary roadside
// object: mirror-like co-polarized reflection with amplitude a (the VV sign
// flip encodes the handedness reversal every specular reflector applies to
// circular polarization, see MirrorScatter) plus a weaker cross-pol leakage
// crossRejectionDB below it (Fig 13a measures 16-19 dB median rejection for
// parking meters, lamps, signs, humans, and trees).
func ClutterScatter(a complex128, crossRejectionDB float64) ScatterMatrix {
	leak := a * complex(math.Pow(10, -crossRejectionDB/20), 0)
	return ScatterMatrix{HH: a, VV: -a, HV: leak, VH: leak}
}

// CrossPolRejectionDB measures how much weaker the cross-polarized response
// of s is relative to its co-polarized response, in power dB, probing with
// H transmit. It returns +Inf for a pure co-pol scatterer.
func CrossPolRejectionDB(s ScatterMatrix) float64 {
	co := cmplx.Abs(s.Coupling(PolH, PolH))
	cross := cmplx.Abs(s.Coupling(PolH, PolV))
	if cross == 0 {
		return math.Inf(1)
	}
	return 20 * math.Log10(co/cross)
}
