package cluster

import (
	"math"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"ros/internal/geom"
)

// blob generates n points normally distributed around center.
func blob(rng *rand.Rand, center geom.Vec2, sigma float64, n int) []Point {
	out := make([]Point, n)
	for i := range out {
		out[i] = Point{
			Pos:    geom.Vec2{X: center.X + rng.NormFloat64()*sigma, Y: center.Y + rng.NormFloat64()*sigma},
			Weight: 1,
		}
	}
	return out
}

func TestDBSCANTwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := append(blob(rng, geom.Vec2{X: 0, Y: 0}, 0.05, 50), blob(rng, geom.Vec2{X: 5, Y: 0}, 0.05, 50)...)
	labels := DBSCAN(pts, 0.3, 4)
	// All points in blob A share one label, blob B another, and they differ.
	la, lb := labels[0], labels[50]
	if la == Noise || lb == Noise {
		t.Fatalf("blob cores marked as noise: %d, %d", la, lb)
	}
	if la == lb {
		t.Fatal("two distant blobs merged")
	}
	for i := 0; i < 50; i++ {
		if labels[i] != la {
			t.Fatalf("point %d of blob A labelled %d, want %d", i, labels[i], la)
		}
		if labels[i+50] != lb {
			t.Fatalf("point %d of blob B labelled %d, want %d", i, labels[i+50], lb)
		}
	}
}

func TestDBSCANNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := blob(rng, geom.Vec2{}, 0.05, 30)
	pts = append(pts, Point{Pos: geom.Vec2{X: 100, Y: 100}, Weight: 1})
	labels := DBSCAN(pts, 0.3, 4)
	if labels[len(labels)-1] != Noise {
		t.Errorf("isolated point labelled %d, want Noise", labels[len(labels)-1])
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	pts := []Point{
		{Pos: geom.Vec2{X: 0, Y: 0}},
		{Pos: geom.Vec2{X: 10, Y: 0}},
		{Pos: geom.Vec2{X: 0, Y: 10}},
	}
	labels := DBSCAN(pts, 1, 2)
	for i, l := range labels {
		if l != Noise {
			t.Errorf("point %d labelled %d, want Noise", i, l)
		}
	}
}

func TestDBSCANEmptyAndDegenerate(t *testing.T) {
	if l := DBSCAN(nil, 1, 2); len(l) != 0 {
		t.Errorf("labels of nil = %v", l)
	}
	pts := []Point{{Pos: geom.Vec2{}}}
	if l := DBSCAN(pts, 0, 2); l[0] != Noise {
		t.Errorf("eps=0 labelled %d", l[0])
	}
	if l := DBSCAN(pts, 1, 0); l[0] != Noise {
		t.Errorf("minPts=0 labelled %d", l[0])
	}
}

func TestDBSCANBorderPoints(t *testing.T) {
	// A chain: dense core plus one border point within eps of a core point
	// but with too few neighbours of its own.
	pts := []Point{
		{Pos: geom.Vec2{X: 0.0}}, {Pos: geom.Vec2{X: 0.1}}, {Pos: geom.Vec2{X: 0.2}},
		{Pos: geom.Vec2{X: 0.3}}, {Pos: geom.Vec2{X: 0.4}},
		{Pos: geom.Vec2{X: 0.8}}, // border: only the core point at 0.4 within eps
	}
	labels := DBSCAN(pts, 0.45, 3)
	if labels[5] == Noise {
		t.Error("border point not absorbed into the cluster")
	}
	if labels[5] != labels[0] {
		t.Errorf("border point labelled %d, core labelled %d", labels[5], labels[0])
	}
}

func TestDBSCANLabelInvariants(t *testing.T) {
	// Property: labels are either Noise or in [0, k), and every non-noise
	// label is used by at least minPts points or absorbed as border points
	// (at least 1 point).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var pts []Point
		nBlobs := 1 + rng.Intn(3)
		for b := 0; b < nBlobs; b++ {
			c := geom.Vec2{X: rng.Float64() * 20, Y: rng.Float64() * 20}
			pts = append(pts, blob(rng, c, 0.1, 5+rng.Intn(20))...)
		}
		labels := DBSCAN(pts, 0.5, 4)
		if len(labels) != len(pts) {
			return false
		}
		maxL := -1
		counts := map[int]int{}
		for _, l := range labels {
			if l < Noise {
				return false
			}
			if l > maxL {
				maxL = l
			}
			counts[l]++
		}
		for l := 0; l <= maxL; l++ {
			if counts[l] == 0 {
				return false // label gap
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// bruteDBSCAN runs the expansion loop over the O(n^2) reference query the
// grid index replaced; the equivalence tests compare against it.
func bruteDBSCAN(points []Point, eps float64, minPts int) []int {
	labels := make([]int, len(points))
	for i := range labels {
		labels[i] = Noise
	}
	if len(points) == 0 || eps <= 0 || minPts < 1 {
		return labels
	}
	eps2 := eps * eps
	return dbscan(points, minPts, labels, func(i int, buf []int) []int {
		return bruteNeighbours(points, eps2, i, buf)
	})
}

func TestDBSCANGridMatchesBruteForce(t *testing.T) {
	// Property: the grid-indexed neighbourhood query yields exactly the
	// labels of the brute-force reference on random clouds — blobs of
	// varying density, uniform noise, random eps and minPts.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var pts []Point
		nBlobs := 1 + rng.Intn(4)
		for b := 0; b < nBlobs; b++ {
			c := geom.Vec2{X: rng.Float64()*8 - 4, Y: rng.Float64()*8 - 4}
			pts = append(pts, blob(rng, c, 0.05+rng.Float64()*0.4, 5+rng.Intn(40))...)
		}
		for i := rng.Intn(25); i > 0; i-- {
			pts = append(pts, Point{Pos: geom.Vec2{X: rng.Float64()*40 - 20, Y: rng.Float64()*40 - 20}, Weight: 1})
		}
		eps := 0.1 + rng.Float64()*0.6
		minPts := 1 + rng.Intn(6)
		return slices.Equal(DBSCAN(pts, eps, minPts), bruteDBSCAN(pts, eps, minPts))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDBSCANEpsBoundary(t *testing.T) {
	// Points exactly eps apart are neighbours (the <= in the distance
	// test); they land in adjacent grid cells, so the 3x3 cell walk must
	// keep the boundary pair. Exactly representable coordinates make the
	// distances exact in floating point.
	pts := []Point{
		{Pos: geom.Vec2{X: 0}}, {Pos: geom.Vec2{X: 1}}, {Pos: geom.Vec2{X: 2}},
		{Pos: geom.Vec2{X: 3.5}}, // beyond eps of the chain: noise
	}
	labels := DBSCAN(pts, 1, 3)
	if want := bruteDBSCAN(pts, 1, 3); !slices.Equal(labels, want) {
		t.Fatalf("grid labels %v != brute-force %v", labels, want)
	}
	for i := 0; i < 3; i++ {
		if labels[i] != 0 {
			t.Errorf("chain point %d labelled %d, want 0", i, labels[i])
		}
	}
	if labels[3] != Noise {
		t.Errorf("distant point labelled %d, want Noise", labels[3])
	}
}

func TestDBSCANGridNegativeAndSpreadCoords(t *testing.T) {
	// Negative coordinates exercise the signed cell packing; a far-flung
	// cloud exercises the sparse map (no dense allocation by extent).
	rng := rand.New(rand.NewSource(9))
	pts := append(blob(rng, geom.Vec2{X: -1e6, Y: -1e6}, 0.05, 30),
		blob(rng, geom.Vec2{X: 1e6, Y: 1e6}, 0.05, 30)...)
	labels := DBSCAN(pts, 0.3, 4)
	if want := bruteDBSCAN(pts, 0.3, 4); !slices.Equal(labels, want) {
		t.Fatalf("grid labels diverge from brute force on spread cloud")
	}
	if labels[0] == Noise || labels[30] == Noise || labels[0] == labels[30] {
		t.Errorf("far-apart blobs mislabelled: %d vs %d", labels[0], labels[30])
	}
}

func BenchmarkDBSCANGrid(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := make([]Point, 800)
	for i := range pts {
		pts[i] = Point{Pos: geom.Vec2{X: rng.Float64() * 10, Y: rng.Float64() * 2}, Weight: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DBSCAN(pts, 0.25, 10)
	}
}

func BenchmarkDBSCANBrute(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := make([]Point, 800)
	for i := range pts {
		pts[i] = Point{Pos: geom.Vec2{X: rng.Float64() * 10, Y: rng.Float64() * 2}, Weight: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bruteDBSCAN(pts, 0.25, 10)
	}
}

func TestSummarizeCentroidAndExtent(t *testing.T) {
	pts := []Point{
		{Pos: geom.Vec2{X: -1, Y: 0}, Weight: 1},
		{Pos: geom.Vec2{X: 1, Y: 0}, Weight: 1},
		{Pos: geom.Vec2{X: 0, Y: 1}, Weight: 1},
		{Pos: geom.Vec2{X: 0, Y: -1}, Weight: 1},
		{Pos: geom.Vec2{X: 50, Y: 50}, Weight: 1}, // noise
	}
	labels := []int{0, 0, 0, 0, Noise}
	stats := Summarize(pts, labels, 0.01)
	if len(stats) != 1 {
		t.Fatalf("got %d clusters, want 1", len(stats))
	}
	s := stats[0]
	if s.Count != 4 {
		t.Errorf("Count = %d, want 4", s.Count)
	}
	if math.Abs(s.Centroid.X) > 1e-12 || math.Abs(s.Centroid.Y) > 1e-12 {
		t.Errorf("Centroid = %v, want origin", s.Centroid)
	}
	if math.Abs(s.Extent-1) > 1e-12 {
		t.Errorf("Extent = %g, want 1", s.Extent)
	}
	if s.TotalWeight != 4 {
		t.Errorf("TotalWeight = %g, want 4", s.TotalWeight)
	}
	wantDensity := 4 / math.Pi
	if math.Abs(s.Density-wantDensity) > 1e-9 {
		t.Errorf("Density = %g, want %g", s.Density, wantDensity)
	}
}

func TestSummarizeWeighted(t *testing.T) {
	// A heavy point pulls the centroid toward it.
	pts := []Point{
		{Pos: geom.Vec2{X: 0}, Weight: 3},
		{Pos: geom.Vec2{X: 4}, Weight: 1},
	}
	labels := []int{0, 0}
	s := Summarize(pts, labels, 0.01)[0]
	if math.Abs(s.Centroid.X-1) > 1e-12 {
		t.Errorf("weighted centroid X = %g, want 1", s.Centroid.X)
	}
}

func TestSummarizeZeroWeight(t *testing.T) {
	pts := []Point{{Pos: geom.Vec2{X: 1}, Weight: 0}, {Pos: geom.Vec2{X: 1}, Weight: 0}}
	s := Summarize(pts, []int{0, 0}, 0.01)
	if len(s) != 1 || s[0].Count != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if math.IsNaN(s[0].Centroid.X) {
		t.Error("zero-weight cluster produced NaN centroid")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil, nil, 0.01); s != nil {
		t.Errorf("Summarize(nil) = %v", s)
	}
	labels := []int{Noise, Noise}
	pts := []Point{{}, {}}
	if s := Summarize(pts, labels, 0.01); s != nil {
		t.Errorf("all-noise Summarize = %v", s)
	}
}

func TestSummarizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Summarize([]Point{{}}, []int{0, 0}, 0.01)
}
