// Package cluster implements the DBSCAN density-based clustering algorithm
// (Ester et al., the paper's [15]) that RoS uses to group radar point-cloud
// detections into candidate objects (Sec 6), plus the per-cluster statistics
// (size, density, centroid) the tag-detection features are computed from.
package cluster

import (
	"math"

	"ros/internal/geom"
)

// Noise is the label assigned to points that belong to no cluster.
const Noise = -1

// Point is a weighted 2-D point-cloud sample. Weight carries the detected
// reflected signal strength so cluster statistics can be power-weighted.
type Point struct {
	Pos    geom.Vec2
	Weight float64
}

// DBSCAN clusters points with neighbourhood radius eps and core threshold
// minPts. It returns one label per point: 0..k-1 for cluster membership or
// Noise. The classic algorithm from the paper's reference [15] is used. The
// neighbourhood query runs against an eps-sized uniform grid index — a point
// only needs its own and the 8 adjacent cells — so a whole-pass merged cloud
// clusters in O(n) expected instead of the O(n^2) a brute-force scan costs.
// Labels are independent of the order neighbours are enumerated in (cluster
// expansion reaches the same density-connected set either way), so the grid
// returns exactly the labels of the brute-force reference — a property the
// package tests check.
func DBSCAN(points []Point, eps float64, minPts int) []int {
	labels := make([]int, len(points))
	for i := range labels {
		labels[i] = Noise
	}
	if len(points) == 0 || eps <= 0 || minPts < 1 {
		return labels
	}
	g := newGridIndex(points, eps)
	return dbscan(points, minPts, labels, g.neighbours)
}

// dbscan is the expansion loop over an arbitrary neighbourhood query.
// neighbours must append every index j (including i itself) with
// dist(i, j) <= eps to buf and return it; buf comes in with length 0 so
// queries can reuse its capacity.
func dbscan(points []Point, minPts int, labels []int, neighbours func(i int, buf []int) []int) []int {
	visited := make([]bool, len(points))
	next := 0
	var seeds, buf []int
	for i := range points {
		if visited[i] {
			continue
		}
		visited[i] = true
		seeds = neighbours(i, seeds[:0])
		if len(seeds) < minPts {
			continue // noise (may later be claimed as a border point)
		}
		c := next
		next++
		labels[i] = c
		for k := 0; k < len(seeds); k++ {
			j := seeds[k]
			if !visited[j] {
				visited[j] = true
				buf = neighbours(j, buf[:0])
				if len(buf) >= minPts {
					seeds = append(seeds, buf...)
				}
			}
			if labels[j] == Noise {
				labels[j] = c
			}
		}
	}
	return labels
}

// gridIndex is a uniform grid over the point cloud with cell size eps: every
// neighbour of a point lies in its own or one of the 8 adjacent cells. Cells
// are identified by packed integer coordinates in a map (the occupied-cell
// count is at most n, so memory stays O(n) no matter how sparse the cloud),
// and member indices live in one CSR-style array grouped by cell.
type gridIndex struct {
	points []Point
	eps2   float64
	inv    float64 // 1/eps
	cells  map[uint64]int32
	start  []int32 // CSR offsets per compact cell id, len(cells)+1
	idx    []int32 // point indices grouped by cell
}

// cellKey packs signed cell coordinates into one map key. A coordinate
// collision (beyond 2^31 cells apart) only merges far-apart buckets, adding
// candidates the exact distance test filters out — never missing one.
func cellKey(ix, iy int64) uint64 {
	return uint64(ix)<<32 ^ (uint64(iy) & 0xffffffff)
}

func newGridIndex(points []Point, eps float64) *gridIndex {
	n := len(points)
	g := &gridIndex{points: points, eps2: eps * eps, inv: 1 / eps}
	g.cells = make(map[uint64]int32, n/4+1)
	cellOf := make([]int32, n)
	var counts []int32
	for i, p := range points {
		k := cellKey(g.cellCoords(p.Pos))
		id, ok := g.cells[k]
		if !ok {
			id = int32(len(counts))
			g.cells[k] = id
			counts = append(counts, 0)
		}
		cellOf[i] = id
		counts[id]++
	}
	g.start = make([]int32, len(counts)+1)
	for c, cnt := range counts {
		g.start[c+1] = g.start[c] + cnt
	}
	g.idx = make([]int32, n)
	fill := append([]int32(nil), g.start[:len(counts)]...)
	for i := range points {
		c := cellOf[i]
		g.idx[fill[c]] = int32(i)
		fill[c]++
	}
	return g
}

func (g *gridIndex) cellCoords(p geom.Vec2) (int64, int64) {
	return int64(math.Floor(p.X * g.inv)), int64(math.Floor(p.Y * g.inv))
}

// neighbours appends every point within eps of point i (i included) to out.
func (g *gridIndex) neighbours(i int, out []int) []int {
	p := g.points[i].Pos
	ix, iy := g.cellCoords(p)
	for dx := int64(-1); dx <= 1; dx++ {
		for dy := int64(-1); dy <= 1; dy++ {
			id, ok := g.cells[cellKey(ix+dx, iy+dy)]
			if !ok {
				continue
			}
			for _, j := range g.idx[g.start[id]:g.start[id+1]] {
				d := p.Sub(g.points[j].Pos)
				if d.X*d.X+d.Y*d.Y <= g.eps2 {
					out = append(out, int(j))
				}
			}
		}
	}
	return out
}

// bruteNeighbours is the O(n^2) reference query the grid index replaced,
// kept for the equivalence property tests.
func bruteNeighbours(points []Point, eps2 float64, i int, out []int) []int {
	pi := points[i].Pos
	for j := range points {
		d := pi.Sub(points[j].Pos)
		if d.X*d.X+d.Y*d.Y <= eps2 {
			out = append(out, j)
		}
	}
	return out
}

// Stats summarizes one cluster.
type Stats struct {
	// Label is the cluster id.
	Label int
	// Count is the number of member points.
	Count int
	// Centroid is the weight-weighted center of gravity (Sec 6: "RoS
	// calculates its center of gravity and assigns it as the location of
	// the corresponding object").
	Centroid geom.Vec2
	// Extent is the RMS distance of the members from the centroid — the
	// "point cloud size" feature of Fig 13b.
	Extent float64
	// Density is Count divided by the area of the bounding circle of
	// radius max(Extent, epsFloor); larger for compact, persistent
	// reflectors.
	Density float64
	// TotalWeight sums the member weights (aggregate RSS).
	TotalWeight float64
}

// Summarize computes per-cluster statistics from DBSCAN labels. Noise points
// are skipped. Clusters are returned indexed by label. epsFloor bounds the
// radius used in the density computation away from zero.
func Summarize(points []Point, labels []int, epsFloor float64) []Stats {
	if len(points) != len(labels) {
		panic("cluster: points and labels length mismatch")
	}
	maxLabel := -1
	for _, l := range labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	if maxLabel < 0 {
		return nil
	}
	out := make([]Stats, maxLabel+1)
	for i := range out {
		out[i].Label = i
	}
	// First pass: centroids.
	for i, p := range points {
		l := labels[i]
		if l == Noise {
			continue
		}
		s := &out[l]
		w := p.Weight
		if w <= 0 {
			w = 1e-12
		}
		s.Count++
		s.TotalWeight += w
		s.Centroid = s.Centroid.Add(p.Pos.Scale(w))
	}
	for i := range out {
		if out[i].TotalWeight > 0 {
			out[i].Centroid = out[i].Centroid.Scale(1 / out[i].TotalWeight)
		}
	}
	// Second pass: extent.
	for i, p := range points {
		l := labels[i]
		if l == Noise {
			continue
		}
		d := p.Pos.Dist(out[l].Centroid)
		out[l].Extent += d * d
	}
	for i := range out {
		if out[i].Count > 0 {
			out[i].Extent = math.Sqrt(out[i].Extent / float64(out[i].Count))
			r := out[i].Extent
			if r < epsFloor {
				r = epsFloor
			}
			out[i].Density = float64(out[i].Count) / (math.Pi * r * r)
		}
	}
	return out
}
