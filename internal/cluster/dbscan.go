// Package cluster implements the DBSCAN density-based clustering algorithm
// (Ester et al., the paper's [15]) that RoS uses to group radar point-cloud
// detections into candidate objects (Sec 6), plus the per-cluster statistics
// (size, density, centroid) the tag-detection features are computed from.
package cluster

import (
	"math"

	"ros/internal/geom"
)

// Noise is the label assigned to points that belong to no cluster.
const Noise = -1

// Point is a weighted 2-D point-cloud sample. Weight carries the detected
// reflected signal strength so cluster statistics can be power-weighted.
type Point struct {
	Pos    geom.Vec2
	Weight float64
}

// DBSCAN clusters points with neighbourhood radius eps and core threshold
// minPts. It returns one label per point: 0..k-1 for cluster membership or
// Noise. The classic algorithm from the paper's reference [15] is used, with
// a brute-force neighbourhood query (point clouds here are a few thousand
// points at most).
func DBSCAN(points []Point, eps float64, minPts int) []int {
	n := len(points)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	if n == 0 || eps <= 0 || minPts < 1 {
		return labels
	}
	eps2 := eps * eps
	visited := make([]bool, n)
	next := 0

	neighbours := func(i int) []int {
		var out []int
		pi := points[i].Pos
		for j := range points {
			d := pi.Sub(points[j].Pos)
			if d.X*d.X+d.Y*d.Y <= eps2 {
				out = append(out, j)
			}
		}
		return out
	}

	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		seeds := neighbours(i)
		if len(seeds) < minPts {
			continue // noise (may later be claimed as a border point)
		}
		c := next
		next++
		labels[i] = c
		for k := 0; k < len(seeds); k++ {
			j := seeds[k]
			if !visited[j] {
				visited[j] = true
				more := neighbours(j)
				if len(more) >= minPts {
					seeds = append(seeds, more...)
				}
			}
			if labels[j] == Noise {
				labels[j] = c
			}
		}
	}
	return labels
}

// Stats summarizes one cluster.
type Stats struct {
	// Label is the cluster id.
	Label int
	// Count is the number of member points.
	Count int
	// Centroid is the weight-weighted center of gravity (Sec 6: "RoS
	// calculates its center of gravity and assigns it as the location of
	// the corresponding object").
	Centroid geom.Vec2
	// Extent is the RMS distance of the members from the centroid — the
	// "point cloud size" feature of Fig 13b.
	Extent float64
	// Density is Count divided by the area of the bounding circle of
	// radius max(Extent, epsFloor); larger for compact, persistent
	// reflectors.
	Density float64
	// TotalWeight sums the member weights (aggregate RSS).
	TotalWeight float64
}

// Summarize computes per-cluster statistics from DBSCAN labels. Noise points
// are skipped. Clusters are returned indexed by label. epsFloor bounds the
// radius used in the density computation away from zero.
func Summarize(points []Point, labels []int, epsFloor float64) []Stats {
	if len(points) != len(labels) {
		panic("cluster: points and labels length mismatch")
	}
	maxLabel := -1
	for _, l := range labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	if maxLabel < 0 {
		return nil
	}
	out := make([]Stats, maxLabel+1)
	for i := range out {
		out[i].Label = i
	}
	// First pass: centroids.
	for i, p := range points {
		l := labels[i]
		if l == Noise {
			continue
		}
		s := &out[l]
		w := p.Weight
		if w <= 0 {
			w = 1e-12
		}
		s.Count++
		s.TotalWeight += w
		s.Centroid = s.Centroid.Add(p.Pos.Scale(w))
	}
	for i := range out {
		if out[i].TotalWeight > 0 {
			out[i].Centroid = out[i].Centroid.Scale(1 / out[i].TotalWeight)
		}
	}
	// Second pass: extent.
	for i, p := range points {
		l := labels[i]
		if l == Noise {
			continue
		}
		d := p.Pos.Dist(out[l].Centroid)
		out[l].Extent += d * d
	}
	for i := range out {
		if out[i].Count > 0 {
			out[i].Extent = math.Sqrt(out[i].Extent / float64(out[i].Count))
			r := out[i].Extent
			if r < epsFloor {
				r = epsFloor
			}
			out[i].Density = float64(out[i].Count) / (math.Pi * r * r)
		}
	}
	return out
}
