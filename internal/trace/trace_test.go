package trace

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ros/internal/coding"
	"ros/internal/em"
)

func sampleCapture() *Capture {
	n := 64
	c := &Capture{
		Version:      CurrentVersion,
		Bits:         4,
		DeltaMeters:  coding.DefaultDelta(),
		LambdaMeters: em.Lambda79(),
		U:            make([]float64, n),
		RSS:          make([]float64, n),
		Note:         "unit test",
	}
	for i := range c.U {
		c.U[i] = -0.5 + float64(i)/float64(n-1)
		c.RSS[i] = 1 + 0.5*math.Cos(40*c.U[i])
	}
	return c
}

func TestRoundTripBuffer(t *testing.T) {
	c := sampleCapture()
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bits != c.Bits || back.Note != c.Note || len(back.U) != len(c.U) {
		t.Errorf("round trip mismatch: %+v", back)
	}
	for i := range c.U {
		if back.U[i] != c.U[i] || back.RSS[i] != c.RSS[i] {
			t.Fatalf("sample %d changed", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "read.json")
	c := sampleCapture()
	if err := Save(path, c); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.DeltaMeters != c.DeltaMeters {
		t.Errorf("delta changed: %g", back.DeltaMeters)
	}
}

func TestValidateRejects(t *testing.T) {
	base := sampleCapture()
	cases := []func(*Capture){
		func(c *Capture) { c.Version = 99 },
		func(c *Capture) { c.Bits = 0 },
		func(c *Capture) { c.DeltaMeters = 0 },
		func(c *Capture) { c.LambdaMeters = 0 },
		func(c *Capture) { c.RSS = c.RSS[:3] },
		func(c *Capture) { c.U = c.U[:4]; c.RSS = c.RSS[:4] },
		func(c *Capture) { c.Range = []float64{1, 2} },
	}
	for i, mut := range cases {
		c := *base
		c.U = append([]float64(nil), base.U...)
		c.RSS = append([]float64(nil), base.RSS...)
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"version":1}`)); err == nil {
		t.Error("empty capture accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCaptureDecodes(t *testing.T) {
	// A capture built from the far-field model must decode through the
	// standard decoder after a round trip.
	lambda := em.Lambda79()
	bits, err := coding.ParseBits("1010")
	if err != nil {
		t.Fatal(err)
	}
	layout, err := coding.NewLayout(bits, coding.DefaultDelta())
	if err != nil {
		t.Fatal(err)
	}
	pos := layout.Positions()
	n := 900
	c := &Capture{
		Version: CurrentVersion, Bits: 4,
		DeltaMeters: coding.DefaultDelta(), LambdaMeters: lambda,
		U: make([]float64, n), RSS: make([]float64, n),
	}
	for i := range c.U {
		u := -0.55 + 1.1*float64(i)/float64(n-1)
		c.U[i] = u
		c.RSS[i] = coding.MultiStackGain(pos, u, lambda)
	}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := coding.NewDecoder(back.Bits, back.DeltaMeters, back.LambdaMeters)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dec.Decode(back.U, back.RSS)
	if err != nil {
		t.Fatal(err)
	}
	if got := coding.BitsString(res.Bits); got != "1010" {
		t.Errorf("decoded %q from capture, want 1010", got)
	}
}

func TestSaveFailureKeepsExistingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "read.json")
	good := sampleCapture()
	if err := Save(path, good); err != nil {
		t.Fatal(err)
	}
	// A capture that fails validation must not clobber the good file on
	// disk (the old implementation truncated it before validating).
	bad := sampleCapture()
	bad.U = bad.U[:4]
	bad.RSS = bad.RSS[:4]
	if err := Save(path, bad); err == nil {
		t.Fatal("invalid capture saved")
	}
	back, err := Load(path)
	if err != nil {
		t.Fatalf("previous capture corrupted: %v", err)
	}
	if len(back.U) != len(good.U) {
		t.Errorf("previous capture overwritten: %d samples", len(back.U))
	}
	// No temp-file litter either.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want just the capture", len(entries))
	}
}

func TestSaveToMissingDirFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-dir", "read.json")
	if err := Save(path, sampleCapture()); err == nil {
		t.Error("save into missing directory succeeded")
	}
}
