// Package trace saves and loads RCS captures: the (u, RSS) sample series a
// drive-by produces, plus the code parameters needed to decode them later.
// Captures let users archive reads, regression-test decoders against
// recorded data, and decode offline with cmd/rosdecode — the workflow a real
// deployment would use with radar logs.
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ros/internal/roserr"
)

// Capture is one recorded tag read.
type Capture struct {
	// Version identifies the capture format.
	Version int `json:"version"`
	// Bits is the coding slot count of the tag being read.
	Bits int `json:"bits"`
	// DeltaMeters is the code's unit spacing delta_c.
	DeltaMeters float64 `json:"delta_m"`
	// LambdaMeters is the radar wavelength.
	LambdaMeters float64 `json:"lambda_m"`
	// U holds the observation coordinates cos(theta) per sample.
	U []float64 `json:"u"`
	// RSS holds the path-loss-compensated reflected strengths per sample.
	RSS []float64 `json:"rss"`
	// Range optionally holds the radar-to-tag distance per sample.
	Range []float64 `json:"range_m,omitempty"`
	// Note is a free-form annotation (scenario, date, vehicle).
	Note string `json:"note,omitempty"`
}

// CurrentVersion is the capture format written by this package.
const CurrentVersion = 1

// Validate reports whether the capture is decodable.
func (c *Capture) Validate() error {
	switch {
	case c.Version != CurrentVersion:
		return fmt.Errorf("trace: %w: unsupported capture version %d", roserr.ErrConfig, c.Version)
	case c.Bits < 1:
		return fmt.Errorf("trace: %w: capture needs at least 1 coding slot, got %d", roserr.ErrConfig, c.Bits)
	case c.DeltaMeters <= 0:
		return fmt.Errorf("trace: %w: non-positive unit spacing %g", roserr.ErrConfig, c.DeltaMeters)
	case c.LambdaMeters <= 0:
		return fmt.Errorf("trace: %w: non-positive wavelength %g", roserr.ErrConfig, c.LambdaMeters)
	case len(c.U) != len(c.RSS):
		return fmt.Errorf("trace: %w: %d u samples vs %d rss samples", roserr.ErrConfig, len(c.U), len(c.RSS))
	case len(c.U) < 8:
		return fmt.Errorf("trace: %w: too few samples (%d)", roserr.ErrConfig, len(c.U))
	case len(c.Range) != 0 && len(c.Range) != len(c.U):
		return fmt.Errorf("trace: %w: %d range samples vs %d u samples", roserr.ErrConfig, len(c.Range), len(c.U))
	}
	return nil
}

// Write serializes the capture as indented JSON.
func (c *Capture) Write(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(c)
}

// Read parses and validates a capture.
func Read(r io.Reader) (*Capture, error) {
	var c Capture
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Save writes the capture to a file. The capture is encoded to a temporary
// file in the destination's directory and renamed into place, so a failed
// validation or write can never leave a truncated half-capture behind an
// existing file.
func Save(path string, c *Capture) error {
	// Validate before touching the filesystem at all.
	if err := c.Validate(); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	tmp := f.Name()
	if err := c.Write(f); err != nil {
		// The close and remove failures are secondary but not silent: a
		// temp file left behind is worth knowing about.
		return errors.Join(err, f.Close(), os.Remove(tmp))
	}
	if err := f.Close(); err != nil {
		return errors.Join(fmt.Errorf("trace: %w", err), os.Remove(tmp))
	}
	if err := os.Rename(tmp, path); err != nil {
		return errors.Join(fmt.Errorf("trace: %w", err), os.Remove(tmp))
	}
	return nil
}

// Load reads a capture from a file.
func Load(path string) (*Capture, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	// Read-only file: a Close failure cannot lose data, but the decode
	// error (if any) should win, so close explicitly rather than deferred.
	c, err := Read(f)
	if cerr := f.Close(); cerr != nil && err == nil {
		return nil, fmt.Errorf("trace: %w", cerr)
	}
	return c, err
}
