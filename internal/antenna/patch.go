// Package antenna models the aperture-coupled rectangular patch antenna
// element used by the PSVAA (Sec 4.2, Fig 7a). Only the properties the RoS
// analysis depends on are modeled:
//
//   - an element radiation pattern with a limited angular view, which caps
//     the retroreflective field of view of the Van Atta array at ~120 deg
//     (Fig 4a: "the FoV of the VAA or ULA cannot reach 180 deg since each
//     patch antenna element itself has a limited radiation angle");
//   - linear polarization along the patch's feed axis, rotatable by 90 deg
//     to build the polarization-switching array;
//   - a return-loss (s11) resonance model that keeps the element matched
//     (|s11| < -10 dB) across 77-81 GHz, as the HFSS optimization in the
//     paper enforces.
package antenna

import (
	"fmt"
	"math"

	"ros/internal/em"
)

// Patch is a single rectangular patch element.
type Patch struct {
	// PatternExponent is the exponent q of the cos^q(theta) amplitude
	// element pattern. The default 0.5 yields a one-way power pattern of
	// cos(theta), i.e. a -6 dB round-trip roll-off at 60 deg off broadside,
	// consistent with the "relatively flat RCS within a FoV of
	// approximately 120 deg" of Fig 4a.
	PatternExponent float64
	// PolarizationAngle is the rotation of the patch's linear polarization
	// from horizontal, in radians (0 = H, pi/2 = V).
	PolarizationAngle float64
	// ResonantFrequency is the patch's center resonance in Hz.
	ResonantFrequency float64
	// MatchedBandwidth is the -10 dB return-loss bandwidth in Hz; the HFSS
	// sweep in the paper targets the full 77-81 GHz band.
	MatchedBandwidth float64
	// BoresightGainDBi is the element gain at broadside in dBi. A typical
	// aperture-coupled patch on this stackup reaches ~5 dBi.
	BoresightGainDBi float64
}

// Paper dimensions of the fabricated element (Fig 7a/7b), in meters.
const (
	// PaperPatchSide is the square patch edge length (725 um at 0.725
	// normalized units in Fig 8a translates to ~0.725*lambda element pitch;
	// the physical patch edge is 725 um).
	PaperPatchSide = 725e-6
	// PaperCouplingStub is the optimized feed coupling stub (837.5 um).
	PaperCouplingStub = 837.5e-6
	// PaperStubSetback is the stub termination setback from the patch edge
	// (25 um).
	PaperStubSetback = 25e-6
)

// Default returns the fabricated RoS patch element with the given
// polarization angle.
func Default(polarizationAngle float64) Patch {
	return Patch{
		PatternExponent:   0.5,
		PolarizationAngle: polarizationAngle,
		ResonantFrequency: em.CenterFrequency,
		MatchedBandwidth:  6e9,
		BoresightGainDBi:  5,
	}
}

// Validate reports whether the element parameters are usable.
func (p Patch) Validate() error {
	if p.PatternExponent < 0 {
		return fmt.Errorf("antenna: negative pattern exponent %g", p.PatternExponent)
	}
	if p.ResonantFrequency <= 0 {
		return fmt.Errorf("antenna: non-positive resonant frequency %g", p.ResonantFrequency)
	}
	if p.MatchedBandwidth <= 0 {
		return fmt.Errorf("antenna: non-positive matched bandwidth %g", p.MatchedBandwidth)
	}
	return nil
}

// Pattern returns the normalized amplitude element pattern at the given
// off-broadside angle (radians). Angles beyond +/- pi/2 radiate nothing
// (the ground plane blocks the back hemisphere).
func (p Patch) Pattern(theta float64) float64 {
	c := math.Cos(theta)
	if c <= 0 {
		return 0
	}
	return math.Pow(c, p.PatternExponent)
}

// PatternCos is Pattern expressed in the angle's cosine: callers that
// already hold cos(theta) from geometry (adjacent over hypotenuse side
// lengths) skip the Atan2/Cos round trip, which dominates the per-module
// cost of the scene's coherent stack sums. The default q = 0.5 resolves to
// a hardware square root (the same value math.Pow's y == 0.5 fast path
// returns).
func (p Patch) PatternCos(c float64) float64 {
	if c <= 0 {
		return 0
	}
	if p.PatternExponent == 0.5 {
		return math.Sqrt(c)
	}
	return math.Pow(c, p.PatternExponent)
}

// Pattern2D combines the azimuth and elevation cuts multiplicatively, the
// standard separable-pattern approximation.
func (p Patch) Pattern2D(az, el float64) float64 {
	return p.Pattern(az) * p.Pattern(el)
}

// Polarization returns the element's linear polarization Jones vector.
func (p Patch) Polarization() em.Polarization {
	return em.PolLinear(p.PolarizationAngle)
}

// Rotated returns a copy of the element with its polarization rotated by
// 90 degrees, used to build the switching half of a PSVAA.
func (p Patch) Rotated() Patch {
	q := p
	q.PolarizationAngle = p.PolarizationAngle + math.Pi/2
	return q
}

// S11DB returns the return loss in dB at frequency f from a symmetric
// resonance model: -20 dB at resonance degrading quadratically to -10 dB at
// the matched band edges.
func (p Patch) S11DB(f float64) float64 {
	df := (f - p.ResonantFrequency) / (p.MatchedBandwidth / 2)
	s := -20 + 10*df*df
	if s > -0.1 {
		s = -0.1
	}
	return s
}

// MatchEfficiency returns the fraction of incident power accepted by the
// element at frequency f: 1 - |s11|^2.
func (p Patch) MatchEfficiency(f float64) float64 {
	s11 := math.Pow(10, p.S11DB(f)/20)
	return 1 - s11*s11
}

// GainLinear returns the boresight element gain as a linear power ratio.
func (p Patch) GainLinear() float64 {
	return math.Pow(10, p.BoresightGainDBi/10)
}
