package antenna

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"ros/internal/em"
	"ros/internal/geom"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default(0).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	p := Default(0)
	p.PatternExponent = -1
	if p.Validate() == nil {
		t.Error("negative exponent accepted")
	}
	p = Default(0)
	p.ResonantFrequency = 0
	if p.Validate() == nil {
		t.Error("zero resonance accepted")
	}
	p = Default(0)
	p.MatchedBandwidth = 0
	if p.Validate() == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestPatternBroadsideAndRollOff(t *testing.T) {
	p := Default(0)
	if got := p.Pattern(0); got != 1 {
		t.Errorf("broadside pattern = %g, want 1", got)
	}
	// Monotone decreasing away from broadside.
	prev := 1.0
	for a := 0.1; a < math.Pi/2; a += 0.1 {
		v := p.Pattern(a)
		if v > prev {
			t.Fatalf("pattern not monotone at %g rad", a)
		}
		prev = v
	}
	// Back hemisphere is dark.
	if p.Pattern(math.Pi/2+0.01) != 0 || p.Pattern(math.Pi) != 0 {
		t.Error("back hemisphere radiates")
	}
	// Symmetric.
	if p.Pattern(0.7) != p.Pattern(-0.7) {
		t.Error("pattern not symmetric")
	}
}

func TestPatternFoV(t *testing.T) {
	// The round-trip power pattern (Pattern^4) at 60 deg must be within
	// ~6 dB of broadside so the VAA's ~120 deg FoV of Fig 4a holds.
	p := Default(0)
	rt := math.Pow(p.Pattern(geom.Rad(60)), 4)
	db := 10 * math.Log10(rt)
	if db < -7 || db > -4 {
		t.Errorf("round-trip pattern at 60 deg = %g dB, want about -6 dB", db)
	}
}

func TestPattern2DSeparable(t *testing.T) {
	p := Default(0)
	az, el := 0.4, 0.3
	want := p.Pattern(az) * p.Pattern(el)
	if got := p.Pattern2D(az, el); math.Abs(got-want) > 1e-15 {
		t.Errorf("Pattern2D = %g, want %g", got, want)
	}
}

func TestPolarizationRotation(t *testing.T) {
	h := Default(0)
	v := h.Rotated()
	ph := h.Polarization()
	pv := v.Polarization()
	if d := cmplx.Abs(ph.Dot(pv)); d > 1e-12 {
		t.Errorf("rotated element polarization not orthogonal: %g", d)
	}
	// Rotating twice flips sign but stays on the same axis (anti-parallel).
	hh := v.Rotated().Polarization()
	if d := cmplx.Abs(ph.Dot(hh)); math.Abs(d-1) > 1e-12 {
		t.Errorf("double rotation lost the axis: |dot| = %g", d)
	}
}

func TestS11MatchedAcrossBand(t *testing.T) {
	// The paper's HFSS optimization terminates at -10 dB return loss across
	// the radar band; the model must honor that.
	p := Default(0)
	for f := 77e9; f <= 81e9; f += 0.25e9 {
		if s := p.S11DB(f); s > -10 {
			t.Errorf("s11(%g GHz) = %g dB, want <= -10", f/1e9, s)
		}
	}
	if s := p.S11DB(em.CenterFrequency); math.Abs(s-(-20)) > 1e-9 {
		t.Errorf("s11 at resonance = %g dB, want -20", s)
	}
	// Far out of band the match degrades but stays physical (< 0 dB).
	if s := p.S11DB(60e9); s >= 0 {
		t.Errorf("s11 far out of band = %g dB, want < 0", s)
	}
}

func TestMatchEfficiencyBounds(t *testing.T) {
	p := Default(0)
	f := func(df float64) bool {
		if math.IsNaN(df) || math.IsInf(df, 0) {
			return true
		}
		e := p.MatchEfficiency(em.CenterFrequency + math.Mod(df, 50e9))
		return e >= 0 && e <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// At resonance almost all power is accepted.
	if e := p.MatchEfficiency(em.CenterFrequency); e < 0.98 {
		t.Errorf("match efficiency at resonance = %g, want > 0.98", e)
	}
}

func TestGainLinear(t *testing.T) {
	p := Default(0)
	if g := p.GainLinear(); math.Abs(g-math.Pow(10, 0.5)) > 1e-12 {
		t.Errorf("gain = %g, want 10^0.5", g)
	}
}

func TestPaperDimensionsSane(t *testing.T) {
	// The coupling stub terminates 25 um from the patch edge and is shorter
	// than the patch side plus margin (Fig 7b).
	if PaperCouplingStub >= 2*PaperPatchSide {
		t.Error("coupling stub implausibly long")
	}
	if PaperStubSetback <= 0 || PaperStubSetback > PaperPatchSide {
		t.Error("stub setback implausible")
	}
}
