package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterVecBasics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ros_reads_by_outcome_total", "reads by outcome", "outcome")
	v.With("ok").Add(3)
	v.With("partial").Inc()
	v.With("ok").Inc()
	if got := v.With("ok").Value(); got != 4 {
		t.Errorf(`With("ok") = %d, want 4`, got)
	}
	if v.With("ok") != v.With("ok") {
		t.Error("With is not get-or-create")
	}
	if r.CounterVec("ros_reads_by_outcome_total", "ignored", "ignored") != v {
		t.Error("CounterVec is not get-or-create")
	}

	var snaps []CounterSnap
	for _, c := range r.Snapshot().Counters {
		if c.Name == "ros_reads_by_outcome_total" {
			snaps = append(snaps, c)
		}
	}
	if len(snaps) != 2 {
		t.Fatalf("snapshot has %d children, want 2: %+v", len(snaps), snaps)
	}
	// Sorted by label values: ok before partial.
	if snaps[0].Labels["outcome"] != "ok" || snaps[0].Value != 4 {
		t.Errorf("first child = %+v, want outcome=ok value=4", snaps[0])
	}
	if snaps[1].Labels["outcome"] != "partial" || snaps[1].Value != 1 {
		t.Errorf("second child = %+v, want outcome=partial value=1", snaps[1])
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("ros_stage_ms", "per-stage gauge", "stage")
	v.With("synthesize").Set(8.5)
	v.With("decode").Set(0.25)
	var got []string
	for _, g := range r.Snapshot().Gauges {
		got = append(got, fmt.Sprintf("%s=%g", g.Labels["stage"], g.Value))
	}
	want := []string{"decode=0.25", "synthesize=8.5"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("gauge children = %v, want %v", got, want)
	}
}

func TestHistogramVecSharedBounds(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("ros_stage_seconds", "per-stage seconds", []float64{0.01, 0.1}, "stage")
	v.With("synthesize").Observe(0.05)
	v.With("cluster").Observe(0.005)
	v.With("synthesize").Observe(0.5)
	for _, h := range r.Snapshot().Histograms {
		if h.Name != "ros_stage_seconds" {
			continue
		}
		if len(h.Buckets) != 3 {
			t.Fatalf("child %v has %d buckets, want 3", h.Labels, len(h.Buckets))
		}
		switch h.Labels["stage"] {
		case "synthesize":
			if h.Count != 2 || h.Sum != 0.55 {
				t.Errorf("synthesize child = count %d sum %g", h.Count, h.Sum)
			}
		case "cluster":
			if h.Count != 1 {
				t.Errorf("cluster child count = %d", h.Count)
			}
		}
	}
}

// TestVecCardinalityCap: past MaxLabelSets distinct labelsets a vector stops
// allocating, routes observations to an unexported overflow child, and counts
// them on obs_dropped_labelsets_total.
func TestVecCardinalityCap(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ros_capped_total", "cap test", "tenant")
	for i := 0; i < MaxLabelSets+10; i++ {
		v.With(fmt.Sprintf("tenant-%03d", i)).Inc()
	}
	snap := r.Snapshot()
	children, dropped := 0, int64(-1)
	for _, c := range snap.Counters {
		switch {
		case c.Name == "ros_capped_total":
			children++
		case c.Name == DroppedLabelSetsMetric:
			dropped = c.Value
		}
	}
	if children != MaxLabelSets {
		t.Errorf("resident children = %d, want %d", children, MaxLabelSets)
	}
	if dropped != 10 {
		t.Errorf("%s = %d, want 10", DroppedLabelSetsMetric, dropped)
	}
	// An already-rejected labelset keeps incrementing the self-metric but
	// still hands back a usable (unexported) counter.
	c := v.With("tenant-200")
	c.Inc()
	if c == nil {
		t.Fatal("overflow child is nil")
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ros_two_labels_total", "", "stage", "outcome")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestVecNameCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("name", "", "l")
	defer func() {
		if recover() == nil {
			t.Error("registering a counter over a counter vector did not panic")
		}
	}()
	r.Counter("name", "")
}

// TestVecConcurrent exercises the copy-on-write index under -race: creation
// races resolve to one child per labelset and no observation is lost.
func TestVecConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ros_concurrent_total", "", "k")
	var wg sync.WaitGroup
	const workers, iters = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v.With(fmt.Sprintf("k%d", i%4)).Inc()
			}
		}()
	}
	wg.Wait()
	total := int64(0)
	for _, c := range r.Snapshot().Counters {
		if c.Name == "ros_concurrent_total" {
			total += c.Value
		}
	}
	if total != workers*iters {
		t.Errorf("summed children = %d, want %d", total, workers*iters)
	}
}

func TestLabeledPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ros_outcomes_total", "labeled", "outcome", "workers")
	v.With("ok", "4").Add(2)
	v.With("partial", "1").Inc()
	h := r.HistogramVec("ros_labeled_seconds", "labeled hist", []float64{1}, "stage")
	h.With("decode").Observe(0.5)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`ros_outcomes_total{outcome="ok",workers="4"} 2`,
		`ros_outcomes_total{outcome="partial",workers="1"} 1`,
		`ros_labeled_seconds_bucket{stage="decode",le="1"} 1`,
		`ros_labeled_seconds_bucket{stage="decode",le="+Inf"} 1`,
		`ros_labeled_seconds_sum{stage="decode"} 0.5`,
		`ros_labeled_seconds_count{stage="decode"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One header per family, not per child.
	if n := strings.Count(out, "# TYPE ros_outcomes_total counter"); n != 1 {
		t.Errorf("family header appears %d times, want 1", n)
	}
}

func TestBucketWorkers(t *testing.T) {
	cases := map[int]string{0: "1", 1: "1", 2: "2", 3: "4", 4: "4", 5: "8", 8: "8", 9: "16+", 64: "16+"}
	for n, want := range cases {
		if got := BucketWorkers(n); got != want {
			t.Errorf("BucketWorkers(%d) = %q, want %q", n, got, want)
		}
	}
}
