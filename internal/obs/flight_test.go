package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestFlightAlwaysRecordsBadReads(t *testing.T) {
	f := NewFlight(8)
	f.SetSampleEvery(1 << 30) // background sample effectively off
	cases := []FlightEntry{
		{Outcome: "partial", Seed: 1},
		{Outcome: "ok", Seed: 2, Err: "boom"},
		{Outcome: "ok", Seed: 3, FramesDropped: 4},
		{Outcome: "ok", Seed: 4, SamplesScrubbed: 9},
		{Outcome: "ok", Seed: 5, FaultKinds: []string{"burst"}},
		{Outcome: "undecodable", Seed: 6},
	}
	wantWhy := []string{
		FlightWhyError, FlightWhyError, FlightWhyFault,
		FlightWhyFault, FlightWhyFault, FlightWhyError,
	}
	for i := range cases {
		e := cases[i]
		seq, ok := f.Offer(&e, nil)
		if !ok {
			t.Fatalf("case %d (seed %d) not recorded", i, e.Seed)
		}
		if seq != int64(i) {
			t.Errorf("case %d seq = %d, want %d", i, seq, i)
		}
		if e.Why != wantWhy[i] {
			t.Errorf("case %d why = %q, want %q", i, e.Why, wantWhy[i])
		}
	}
	if got := len(f.Snapshot()); got != len(cases) {
		t.Errorf("snapshot holds %d entries, want %d", got, len(cases))
	}
}

func TestFlightSamplesHealthyReads(t *testing.T) {
	f := NewFlight(512)
	const n = 400
	kept := 0
	for i := 0; i < n; i++ {
		e := &FlightEntry{Outcome: "ok", Seed: int64(i), WallMs: 10}
		if _, ok := f.Offer(e, nil); ok {
			kept++
		}
	}
	// Background sampling keeps roughly 1 in flightSampleEvery; the hash is
	// deterministic so the exact count is stable, but assert only the band.
	if kept == 0 || kept == n {
		t.Fatalf("kept %d of %d healthy reads; want strict sampling between", kept, n)
	}
	if lo, hi := n/(4*flightSampleEvery), 4*n/flightSampleEvery; kept < lo || kept > hi {
		t.Errorf("kept %d of %d, outside plausible band [%d, %d]", kept, n, lo, hi)
	}
}

func TestFlightSlowReadAlwaysKept(t *testing.T) {
	f := NewFlight(64)
	f.SetSampleEvery(1 << 30)
	// Establish a healthy mean around 10 ms.
	for i := 0; i < 50; i++ {
		f.Offer(&FlightEntry{Outcome: "ok", Seed: int64(i), WallMs: 10}, nil)
	}
	e := &FlightEntry{Outcome: "ok", Seed: 999, WallMs: 100}
	if _, ok := f.Offer(e, nil); !ok {
		t.Fatal("10x-mean read not recorded")
	}
	if e.Why != FlightWhySlow {
		t.Errorf("why = %q, want %q", e.Why, FlightWhySlow)
	}
}

func TestFlightSampleEveryOneRecordsAll(t *testing.T) {
	f := NewFlight(32)
	f.SetSampleEvery(1)
	for i := 0; i < 20; i++ {
		if _, ok := f.Offer(&FlightEntry{Outcome: "ok", Seed: int64(i), WallMs: 5}, nil); !ok {
			t.Fatalf("read %d not recorded with sample-every 1", i)
		}
	}
}

func TestFlightRingWraps(t *testing.T) {
	f := NewFlight(4)
	f.SetSampleEvery(1)
	for i := 0; i < 10; i++ {
		f.Offer(&FlightEntry{Outcome: "ok", Seed: int64(i)}, nil)
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(snap))
	}
	// Newest first: seqs 9, 8, 7, 6.
	for i, want := range []int64{9, 8, 7, 6} {
		if snap[i].Seq != want {
			t.Errorf("snapshot[%d].Seq = %d, want %d", i, snap[i].Seq, want)
		}
	}
	if f.Find(9) == nil || f.Find(0) != nil {
		t.Error("Find: want seed 9 resident and seed 0 evicted")
	}
}

func TestFlightDisabled(t *testing.T) {
	f := NewFlight(8)
	if prev := f.SetEnabled(false); !prev {
		t.Error("SetEnabled(false) previous state = false, want true")
	}
	if _, ok := f.Offer(&FlightEntry{Outcome: "partial", Seed: 1}, nil); ok {
		t.Error("disabled recorder still recorded an error read")
	}
	f.SetEnabled(true)
	if _, ok := f.Offer(&FlightEntry{Outcome: "partial", Seed: 1}, nil); !ok {
		t.Error("re-enabled recorder did not record")
	}
}

func TestFlightFillOnlyOnRecord(t *testing.T) {
	f := NewFlight(8)
	f.SetSampleEvery(1 << 30)
	filled := 0
	fill := func(e *FlightEntry) { filled++ }
	f.Offer(&FlightEntry{Outcome: "ok", Seed: 1, WallMs: 5}, fill)
	f.Offer(&FlightEntry{Outcome: "partial", Seed: 2}, fill)
	if filled != 1 {
		t.Errorf("fill ran %d times, want 1 (only for the recorded entry)", filled)
	}
}

func TestFlightWriteJSON(t *testing.T) {
	f := NewFlight(8)
	f.SetSampleEvery(1)
	e := &FlightEntry{
		Outcome: "no_tag", Seed: 7, Workers: 4,
		SNRdB: JSONFloat(math.Inf(-1)), BER: 0.5, WallMs: 12.5,
		FaultKinds: []string{"drop", "burst"},
		Spans:      &SpanView{Name: "read", WallMs: 12.5},
	}
	f.Offer(e, nil)
	var b bytes.Buffer
	if err := f.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var dump FlightDump
	if err := json.Unmarshal(b.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, b.String())
	}
	if dump.Capacity != 8 || dump.Recorded != 1 || dump.Offered != 1 {
		t.Errorf("dump header = %+v, want capacity 8, recorded 1, offered 1", dump)
	}
	if len(dump.Entries) != 1 {
		t.Fatalf("dump holds %d entries, want 1", len(dump.Entries))
	}
	got := dump.Entries[0]
	if !math.IsNaN(float64(got.SNRdB)) {
		t.Errorf("-Inf SNR round-tripped to %v, want null -> NaN", got.SNRdB)
	}
	if !strings.Contains(b.String(), `"snr_db": null`) {
		t.Errorf("dump does not render non-finite SNR as null:\n%s", b.String())
	}
	if got.Spans == nil || got.Spans.Name != "read" {
		t.Errorf("span view lost in round trip: %+v", got.Spans)
	}
	if got.Time == "" {
		t.Error("recorded entry has no timestamp")
	}
}

func TestFlightConcurrent(t *testing.T) {
	f := NewFlight(64)
	f.SetSampleEvery(1)
	var wg sync.WaitGroup
	const workers, iters = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f.Offer(&FlightEntry{Outcome: "ok", Seed: int64(w*iters + i)}, nil)
				_ = f.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if got := f.seq.Load(); got != workers*iters {
		t.Errorf("recorded %d entries, want %d", got, workers*iters)
	}
	if got := len(f.Snapshot()); got != 64 {
		t.Errorf("snapshot holds %d entries, want full ring 64", got)
	}
}

func TestFingerprint(t *testing.T) {
	a := Fingerprint("cfg-a", "radar-1")
	if b := Fingerprint("cfg-a", "radar-1"); b != a {
		t.Errorf("equal inputs fingerprint differently: %s vs %s", a, b)
	}
	if b := Fingerprint("cfg-b", "radar-1"); b == a {
		t.Error("different inputs share a fingerprint")
	}
	// The separator keeps boundaries significant.
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Error("fingerprint ignores part boundaries")
	}
	if len(a) != 16 {
		t.Errorf("fingerprint %q is not 16 hex chars", a)
	}
}
