package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	root := StartSpan("read")
	det := root.StartChild("detect")
	synth := det.StartChild("synthesize")
	synth.Add(3 * time.Millisecond)
	synth.Add(2 * time.Millisecond)
	clusterSp := det.StartChild("cluster")
	clusterSp.End()
	det.End()
	root.End()

	if root.Child("detect") != det {
		t.Fatal("root does not find its detect child")
	}
	if det.Child("synthesize") != synth {
		t.Fatal("detect does not find its synthesize child")
	}
	if root.Child("synthesize") != nil {
		t.Error("Child must not recurse into grandchildren")
	}
	if got := len(det.Children()); got != 2 {
		t.Errorf("detect has %d children, want 2", got)
	}
	if got := synth.Self(); got != 5*time.Millisecond {
		t.Errorf("synthesize self time = %v, want 5ms", got)
	}
	// Duration prefers accumulated self time, falls back to wall time.
	if got := synth.Duration(); got != 5*time.Millisecond {
		t.Errorf("synthesize Duration = %v, want 5ms", got)
	}
	if clusterSp.Duration() != clusterSp.Wall() {
		t.Error("cluster Duration should be its wall time")
	}
	if det.Wall() <= 0 || root.Wall() < det.Wall() {
		t.Errorf("wall times inverted: root %v, detect %v", root.Wall(), det.Wall())
	}
	if got := root.ChildDuration("missing"); got != 0 {
		t.Errorf("ChildDuration of missing child = %v, want 0", got)
	}
}

func TestSpanAdopt(t *testing.T) {
	root := StartSpan("read")
	orphan := StartSpan("detect")
	orphan.End()
	root.Adopt(orphan)
	root.Adopt(nil) // must be a no-op
	if root.Child("detect") != orphan {
		t.Fatal("adopted span not found")
	}
	if got := len(root.Children()); got != 1 {
		t.Fatalf("root has %d children, want 1", got)
	}
}

func TestSpanAttrs(t *testing.T) {
	s := StartSpan("x")
	s.SetAttr("frames", 560)
	s.SetAttr("fft_calls", int64(2240))
	s.SetAttr("frames", 561) // overwrite
	if got := s.IntAttr("frames"); got != 561 {
		t.Errorf("frames = %d, want 561", got)
	}
	if got := s.IntAttr("fft_calls"); got != 2240 {
		t.Errorf("fft_calls = %d, want 2240", got)
	}
	if got := s.IntAttr("missing"); got != 0 {
		t.Errorf("missing attr = %d, want 0", got)
	}
	if s.Attr("missing") != nil {
		t.Error("missing Attr should be nil")
	}
}

func TestSpanReleaseResets(t *testing.T) {
	s := StartSpan("a")
	s.StartChild("b")
	s.SetAttr("k", 1)
	s.Add(time.Second)
	s.End()
	s.Release()
	// Whatever the pool hands out next must look freshly started.
	n := StartSpan("fresh")
	if len(n.Children()) != 0 || n.Attr("k") != nil || n.Self() != 0 || n.Wall() != 0 {
		t.Errorf("pooled span not reset: %+v", n.View())
	}
	n.Release()
}

func TestSpanConcurrentAdd(t *testing.T) {
	root := StartSpan("read")
	stage := root.StartChild("synthesize")
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				stage.Add(time.Microsecond)
				root.SetAttr("frames", i)
				_ = root.Child("synthesize")
			}
		}()
	}
	wg.Wait()
	if got, want := stage.Self(), workers*perWorker*time.Microsecond; got != want {
		t.Errorf("accumulated %v, want %v", got, want)
	}
}

func TestSpanView(t *testing.T) {
	root := StartSpan("read")
	root.SetAttr("detected", true)
	stage := root.StartChild("synthesize")
	stage.Add(2 * time.Millisecond)
	root.End()
	v := root.View()
	if v.Name != "read" || v.Attrs["detected"] != true {
		t.Errorf("bad root view: %+v", v)
	}
	if len(v.Children) != 1 || v.Children[0].Name != "synthesize" {
		t.Fatalf("bad children: %+v", v.Children)
	}
	if got := v.Children[0].SelfMs; got != 2 {
		t.Errorf("synthesize self_ms = %v, want 2", got)
	}
}
