package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a concurrent metrics registry. Metric handles are get-or-create
// and safe to cache in package variables; observation methods are lock-free
// (atomic adds / CAS), so the registry can sit on the per-frame hot path.
type Registry struct {
	mu            sync.RWMutex
	counters      map[string]*Counter
	gauges        map[string]*Gauge
	histograms    map[string]*Histogram
	counterVecs   map[string]*CounterVec
	gaugeVecs     map[string]*GaugeVec
	histogramVecs map[string]*HistogramVec
}

// Default is the process-wide registry used by the instrumented pipeline and
// served by rosbench -serve.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:      make(map[string]*Counter),
		gauges:        make(map[string]*Gauge),
		histograms:    make(map[string]*Histogram),
		counterVecs:   make(map[string]*CounterVec),
		gaugeVecs:     make(map[string]*GaugeVec),
		histogramVecs: make(map[string]*HistogramVec),
	}
}

// Counter is a monotonically increasing int64.
type Counter struct {
	help string
	v    atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float64.
type Gauge struct {
	help string
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram in the Prometheus cumulative style:
// bucket i counts observations <= bounds[i], plus one overflow bucket.
// Observation is a binary search plus two atomic adds.
type Histogram struct {
	help      string
	bounds    []float64      // strictly increasing upper bounds
	counts    []atomic.Int64 // len(bounds)+1, last is +Inf
	count     atomic.Int64
	sum       atomic.Uint64 // float64 bits, CAS-accumulated
	nonFinite atomic.Int64  // NaN/±Inf observations diverted from sum
}

// Observe records one value. NaN and ±Inf observations are diverted to a
// dedicated non-finite counter (NonFinite, exposed as <name>_nonfinite_total)
// instead of the buckets: a single NaN CAS-ed into sum would poison every
// later mean, and an Inf would saturate it, turning one bad sample into a
// permanently corrupt metric.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.nonFinite.Add(1)
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// NonFinite returns the number of NaN/±Inf observations diverted from the
// buckets.
func (h *Histogram) NonFinite() int64 { return h.nonFinite.Load() }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// LogBuckets returns perDecade logarithmically spaced upper bounds per
// decade from min to max inclusive — the fixed log-scale buckets used for
// latency, SNR ratios, and BER, whose natural ranges span decades.
func LogBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade < 1 {
		panic(fmt.Sprintf("obs: bad log buckets [%g, %g] x%d", min, max, perDecade))
	}
	var b []float64
	step := 1 / float64(perDecade)
	for e := math.Log10(min); ; e += step {
		v := math.Pow(10, e)
		if v > max*(1+1e-9) {
			break
		}
		b = append(b, v)
	}
	return b
}

// LinearBuckets returns n upper bounds start, start+width, ... — for
// quantities like SNR in dB that are already logarithmic.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic(fmt.Sprintf("obs: bad linear buckets %g+%g x%d", start, width, n))
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start + width*float64(i)
	}
	return b
}

// Counter returns the named counter, creating it on first use. Registering
// the same name as a different metric kind panics — that is a programming
// error, caught at init time because handles live in package variables.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	r.checkFreeLocked(name, "counter")
	c = &Counter{help: help}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	r.checkFreeLocked(name, "gauge")
	g = &Gauge{help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls ignore the bounds argument).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.histograms[name]; h != nil {
		return h
	}
	r.checkFreeLocked(name, "histogram")
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not increasing at %d", name, i))
		}
	}
	h = &Histogram{
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// checkFreeLocked panics when name is already registered as another kind.
func (r *Registry) checkFreeLocked(name, kind string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as counter, not %s", name, kind))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as gauge, not %s", name, kind))
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as histogram, not %s", name, kind))
	}
	if _, ok := r.counterVecs[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as counter vector, not %s", name, kind))
	}
	if _, ok := r.gaugeVecs[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as gauge vector, not %s", name, kind))
	}
	if _, ok := r.histogramVecs[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as histogram vector, not %s", name, kind))
	}
}
