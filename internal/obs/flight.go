package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Flight sampling reasons, in the order the policy checks them. Every
// recorded entry carries the reason it was kept, so a dump separates "kept
// because something went wrong" from "kept by the background sample".
const (
	FlightWhyError   = "error"   // read returned an error or a non-ok outcome
	FlightWhyFault   = "fault"   // frames dropped, samples scrubbed, or faults injected
	FlightWhySlow    = "slow"    // wall time above the slow-read threshold
	FlightWhySampled = "sampled" // healthy read kept by the 1-in-N background sample
)

// JSONFloat is a float64 whose JSON rendering maps NaN/±Inf to null, so a
// flight entry for an undetected read (SNR -Inf) still serializes.
type JSONFloat float64

// MarshalJSON renders non-finite values as null.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return []byte(strconv.FormatFloat(v, 'g', -1, 64)), nil
}

// UnmarshalJSON accepts numbers and maps null back to NaN.
func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = JSONFloat(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}

// FlightEntry is one read's forensic record in the flight recorder: enough
// to reconstruct *why this specific read* was slow, partial, or undecodable
// after the fact — outcome, seed, config fingerprint, degradation counters,
// injected fault kinds, quality numbers, and the full span tree view.
type FlightEntry struct {
	// Seq is the recorder-assigned sequence number (monotonic across the
	// process; the ring keeps the newest entries).
	Seq int64 `json:"seq"`
	// Time is the wall-clock record time (RFC3339Nano, UTC). It is stamped
	// by the recorder, never read by the pipeline, so recording stays
	// byte-deterministic for the read itself.
	Time string `json:"time"`
	// Why is the sampling reason (FlightWhy*).
	Why string `json:"why"`
	// Outcome classifies the read: ok, partial, undecodable, no_tag, error.
	Outcome string `json:"outcome"`
	// Seed and ConfigFP identify the read: equal (seed, fingerprint) pairs
	// reproduce the read byte-identically.
	Seed     int64  `json:"seed"`
	ConfigFP string `json:"config_fp"`
	// Workers is the resolved frame-loop worker count.
	Workers int `json:"workers"`
	// SNRdB and BER are the decode quality (null when undetected).
	SNRdB JSONFloat `json:"snr_db"`
	BER   JSONFloat `json:"ber"`
	// WallMs is the end-to-end read time.
	WallMs float64 `json:"wall_ms"`
	// FramesCompleted/FramesDropped/SamplesScrubbed are the degradation
	// counters of the read.
	FramesCompleted int `json:"frames_completed"`
	FramesDropped   int `json:"frames_dropped"`
	SamplesScrubbed int `json:"samples_scrubbed"`
	// FaultKinds lists the injected fault kinds whose schedule fired at
	// least once during the read (empty without injection).
	FaultKinds []string `json:"fault_kinds,omitempty"`
	// Err is the read's error string (empty on success).
	Err string `json:"err,omitempty"`
	// Spans is the read's span tree view (filled only for recorded entries).
	Spans *SpanView `json:"spans,omitempty"`
}

// Flight is a fixed-size lock-free ring of per-read flight entries. Writers
// claim a slot with one atomic add and publish the entry with one atomic
// pointer store; readers snapshot the slots without blocking writers. The
// sampling policy always keeps reads that erred, degraded, or ran slow, and
// keeps a deterministic 1-in-N background sample of healthy reads (decided
// by a SplitMix64 hash of the offer counter — the recorder draws no
// randomness that could perturb the simulation).
type Flight struct {
	slots   []atomic.Pointer[FlightEntry]
	seq     atomic.Int64 // recorded entries (ring head)
	offers  atomic.Int64 // reads offered to the policy
	enabled atomic.Bool
	every   atomic.Int64 // background sample period (1 records everything)
	meanNS  atomic.Int64 // EWMA of healthy read wall time, for the slow test
}

// DefaultFlightSize is the ring capacity of DefaultFlight.
const DefaultFlightSize = 256

// flightSampleEvery is the default background sampling period for healthy
// reads: 1 in 8.
const flightSampleEvery = 8

// DefaultFlight is the process-wide flight recorder, wired into sim.Run and
// served at /debug/flight.
var DefaultFlight = NewFlight(DefaultFlightSize)

// Flight self-metrics on the Default registry, labeled by sampling reason.
var (
	mFlightRecorded = Default.CounterVec("obs_flight_recorded_total",
		"flight-recorder entries kept, by sampling reason", "why")
	mFlightSkipped = Default.Counter("obs_flight_skipped_total",
		"healthy reads the flight recorder sampled out")
)

// NewFlight returns a recorder with the given ring capacity.
func NewFlight(size int) *Flight {
	if size < 1 {
		size = DefaultFlightSize
	}
	f := &Flight{slots: make([]atomic.Pointer[FlightEntry], size)}
	f.enabled.Store(true)
	f.every.Store(flightSampleEvery)
	return f
}

// SetEnabled switches recording on or off and returns the previous state —
// the obs-overhead benchmark measures with recording off.
func (f *Flight) SetEnabled(on bool) bool { return f.enabled.Swap(on) }

// SetSampleEvery sets the background sampling period for healthy reads
// (n <= 1 records every read) and returns the previous period. Error, fault,
// and slow reads are always recorded regardless.
func (f *Flight) SetSampleEvery(n int) int {
	if n < 1 {
		n = 1
	}
	return int(f.every.Swap(int64(n)))
}

// splitmix64 is the finalizer used for the deterministic background sample.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Offer runs the sampling policy over e and records it when sampled,
// returning the assigned sequence number (-1 when skipped). The fill
// callback, when non-nil, runs only for entries that will be recorded — put
// the expensive captures there (the span tree view), so sampled-out reads
// pay only for the policy check.
//
// Policy, in order: always record reads whose Outcome is not "ok" or that
// carry an error; always record degraded or fault-injected reads (drops,
// scrubs, fault kinds); always record slow reads (wall above 2x the running
// mean of healthy reads); keep a 1-in-N background sample of the rest.
func (f *Flight) Offer(e *FlightEntry, fill func(*FlightEntry)) (int64, bool) {
	if f == nil || !f.enabled.Load() {
		return -1, false
	}
	n := f.offers.Add(1)
	wallNS := int64(e.WallMs * 1e6)
	why := ""
	switch {
	case e.Err != "" || (e.Outcome != "" && e.Outcome != "ok"):
		why = FlightWhyError
	case e.FramesDropped > 0 || e.SamplesScrubbed > 0 || len(e.FaultKinds) > 0:
		why = FlightWhyFault
	default:
		mean := f.meanNS.Load()
		if mean > 0 && wallNS > 2*mean {
			why = FlightWhySlow
		} else if every := f.every.Load(); every <= 1 || splitmix64(uint64(n))%uint64(every) == 0 {
			why = FlightWhySampled
		}
		// Healthy reads update the slow-read threshold (EWMA, alpha 1/8)
		// whether or not they were sampled.
		if mean == 0 {
			f.meanNS.CompareAndSwap(0, wallNS)
		} else {
			f.meanNS.Store(mean + (wallNS-mean)/8)
		}
	}
	if why == "" {
		mFlightSkipped.Inc()
		return -1, false
	}
	if fill != nil {
		fill(e)
	}
	e.Why = why
	e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	seq := f.seq.Add(1) - 1
	e.Seq = seq
	f.slots[seq%int64(len(f.slots))].Store(e)
	mFlightRecorded.With(why).Inc()
	return seq, true
}

// Snapshot returns the resident entries, newest first. Entries are shared
// with the ring — treat them as immutable.
func (f *Flight) Snapshot() []*FlightEntry {
	out := make([]*FlightEntry, 0, len(f.slots))
	for i := range f.slots {
		if e := f.slots[i].Load(); e != nil {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// Find returns the newest entry with the given seed, or nil — the chaos
// suite's lookup path.
func (f *Flight) Find(seed int64) *FlightEntry {
	var best *FlightEntry
	for i := range f.slots {
		if e := f.slots[i].Load(); e != nil && e.Seed == seed {
			if best == nil || e.Seq > best.Seq {
				best = e
			}
		}
	}
	return best
}

// FlightDump is the JSON document served at /debug/flight and written by
// rosbench -flight.
type FlightDump struct {
	Capacity int            `json:"capacity"`
	Recorded int64          `json:"recorded"`
	Offered  int64          `json:"offered"`
	Entries  []*FlightEntry `json:"entries"`
}

// Dump snapshots the ring into a serializable document.
func (f *Flight) Dump() FlightDump {
	return FlightDump{
		Capacity: len(f.slots),
		Recorded: f.seq.Load(),
		Offered:  f.offers.Load(),
		Entries:  f.Snapshot(),
	}
}

// WriteJSON writes the ring snapshot as indented JSON, newest entry first.
func (f *Flight) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f.Dump())
}

// Fingerprint hashes a config rendering into the short hex id flight entries
// carry: equal configurations (and only equal renderings) share an id.
func Fingerprint(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		io.WriteString(h, p)
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
