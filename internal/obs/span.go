// Package obs is the repo's zero-dependency observability substrate:
// hierarchical spans for per-stage timing of the read pipeline, a concurrent
// metrics registry (counters, gauges, log-bucket histograms) with Prometheus
// and JSON exposition, and a package-level structured logger. Everything in
// the hot path is lock-free (atomic adds, pooled span nodes) so instrumenting
// the per-frame radar loop costs well under the 2% budget guarded by
// BenchmarkSpanOverhead, and nothing here draws randomness or feeds back into
// the simulation, so instrumented runs stay byte-deterministic.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute (frame count, FFT size, worker count, ...).
type Attr struct {
	Key   string
	Value any
}

// Span is one node of a trace tree. It carries two notions of time:
//
//   - wall time, the Start..End interval of the span itself, and
//   - self time, durations accumulated with Add — the worker-summed CPU
//     time of a stage that runs concurrently on a pool, where a wall-clock
//     interval would undercount the work by the worker count.
//
// Duration returns self time when any was accumulated and wall time
// otherwise, so stage views read uniformly. All methods are safe for
// concurrent use; Add is a single atomic add, cheap enough for per-frame
// accounting.
type Span struct {
	name   string
	start  time.Time
	wallNS atomic.Int64
	selfNS atomic.Int64

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
}

var spanPool = sync.Pool{New: func() any { return new(Span) }}

// StartSpan begins a new root span.
func StartSpan(name string) *Span {
	s := spanPool.Get().(*Span)
	s.name = name
	s.start = time.Now()
	s.wallNS.Store(0)
	s.selfNS.Store(0)
	s.attrs = s.attrs[:0]
	s.children = s.children[:0]
	return s
}

// StartChild begins a child span under s.
func (s *Span) StartChild(name string) *Span {
	c := StartSpan(name)
	s.Adopt(c)
	return c
}

// Adopt attaches an existing span (and its subtree) as a child of s.
func (s *Span) Adopt(child *Span) {
	if child == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
}

// End records the span's wall duration. Calling End again overwrites it.
func (s *Span) End() {
	s.wallNS.Store(time.Since(s.start).Nanoseconds())
}

// Add accumulates worker-summed self time. It is a single atomic add.
func (s *Span) Add(d time.Duration) {
	s.selfNS.Add(d.Nanoseconds())
}

// Name returns the span name.
func (s *Span) Name() string { return s.name }

// Wall returns the End-recorded wall duration (0 before End).
func (s *Span) Wall() time.Duration { return time.Duration(s.wallNS.Load()) }

// Self returns the Add-accumulated worker-summed duration.
func (s *Span) Self() time.Duration { return time.Duration(s.selfNS.Load()) }

// Duration returns the span's stage time: self time when any was
// accumulated, wall time otherwise.
func (s *Span) Duration() time.Duration {
	if self := s.selfNS.Load(); self != 0 {
		return time.Duration(self)
	}
	return time.Duration(s.wallNS.Load())
}

// SetAttr sets an attribute, overwriting an existing key.
func (s *Span) SetAttr(key string, value any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Attr returns the attribute value for key, or nil when unset.
func (s *Span) Attr(key string) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			return s.attrs[i].Value
		}
	}
	return nil
}

// IntAttr returns an integer attribute (int or int64), or 0 when unset.
func (s *Span) IntAttr(key string) int64 {
	switch v := s.Attr(key).(type) {
	case int:
		return int64(v)
	case int64:
		return v
	}
	return 0
}

// Child returns the first direct child with the given name, or nil.
func (s *Span) Child(name string) *Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.children {
		if c.name == name {
			return c
		}
	}
	return nil
}

// Children returns a copy of the direct children.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// ChildDuration is shorthand for the named child's Duration (0 when the
// child does not exist) — the accessor Stats views are built from.
func (s *Span) ChildDuration(name string) time.Duration {
	if c := s.Child(name); c != nil {
		return c.Duration()
	}
	return 0
}

// Release returns the span and its whole subtree to the pool. The caller
// must not touch the span afterwards; only release trees that no result
// struct still references.
func (s *Span) Release() {
	if s == nil {
		return
	}
	s.mu.Lock()
	children := s.children
	s.children = nil
	s.mu.Unlock()
	for _, c := range children {
		c.Release()
	}
	spanPool.Put(s)
}

// SpanView is the JSON-friendly rendering of a span tree, embedded in
// rosbench's trend records.
type SpanView struct {
	Name     string         `json:"name"`
	WallMs   float64        `json:"wall_ms,omitempty"`
	SelfMs   float64        `json:"self_ms,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []SpanView     `json:"children,omitempty"`
}

// View snapshots the span tree into a SpanView.
func (s *Span) View() SpanView {
	v := SpanView{
		Name:   s.name,
		WallMs: float64(s.wallNS.Load()) / 1e6,
		SelfMs: float64(s.selfNS.Load()) / 1e6,
	}
	s.mu.Lock()
	if len(s.attrs) > 0 {
		v.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			v.Attrs[a.Key] = a.Value
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		v.Children = append(v.Children, c.View())
	}
	return v
}
