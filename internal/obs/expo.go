package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CounterSnap is one counter in a Snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a Snapshot.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value"`
}

// BucketSnap is one cumulative histogram bucket: Count observations <= LE.
type BucketSnap struct {
	LE    float64 `json:"le"` // +Inf encoded as JSON null by encoding/json rules is invalid, so use math.Inf handling below
	Count int64   `json:"count"`
}

// MarshalJSON encodes +Inf as the string "+Inf" (JSON has no infinities).
func (b BucketSnap) MarshalJSON() ([]byte, error) {
	le := "\"+Inf\""
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

// HistogramSnap is one histogram in a Snapshot; buckets are cumulative.
type HistogramSnap struct {
	Name    string       `json:"name"`
	Help    string       `json:"help,omitempty"`
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []BucketSnap `json:"buckets"`
}

// Snapshot is a point-in-time copy of a registry, sorted by name so that
// equal registry states serialize identically (golden-file friendly).
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Help: c.help, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Help: g.help, Value: g.Value()})
	}
	for name, h := range r.histograms {
		hs := HistogramSnap{Name: name, Help: h.help, Count: h.Count(), Sum: h.Sum()}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			hs.Buckets = append(hs.Buckets, BucketSnap{LE: b, Count: cum})
		}
		cum += h.counts[len(h.bounds)].Load()
		hs.Buckets = append(hs.Buckets, BucketSnap{LE: math.Inf(1), Count: cum})
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (text/plain; version=0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	for _, c := range s.Counters {
		writeHeader(&b, c.Name, c.Help, "counter")
		fmt.Fprintf(&b, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		writeHeader(&b, g.Name, g.Help, "gauge")
		fmt.Fprintf(&b, "%s %s\n", g.Name, formatFloat(g.Value))
	}
	for _, h := range s.Histograms {
		writeHeader(&b, h.Name, h.Help, "histogram")
		for _, bk := range h.Buckets {
			le := "+Inf"
			if !math.IsInf(bk.LE, 1) {
				le = formatFloat(bk.LE)
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", h.Name, le, bk.Count)
		}
		fmt.Fprintf(&b, "%s_sum %s\n", h.Name, formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", h.Name, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Snapshot())
}

func writeHeader(b *strings.Builder, name, help, kind string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, kind)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
