package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CounterSnap is one counter in a Snapshot. Labels is set for the children
// of a CounterVec and empty for scalar counters.
type CounterSnap struct {
	Name   string            `json:"name"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugeSnap is one gauge in a Snapshot.
type GaugeSnap struct {
	Name   string            `json:"name"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// BucketSnap is one cumulative histogram bucket: Count observations <= LE.
type BucketSnap struct {
	LE    float64 `json:"le"` // +Inf encoded as JSON null by encoding/json rules is invalid, so use math.Inf handling below
	Count int64   `json:"count"`
}

// MarshalJSON encodes +Inf as the string "+Inf" (JSON has no infinities).
func (b BucketSnap) MarshalJSON() ([]byte, error) {
	le := "\"+Inf\""
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

// HistogramSnap is one histogram in a Snapshot; buckets are cumulative.
// NonFinite counts NaN/±Inf observations diverted from the buckets.
type HistogramSnap struct {
	Name      string            `json:"name"`
	Help      string            `json:"help,omitempty"`
	Labels    map[string]string `json:"labels,omitempty"`
	Count     int64             `json:"count"`
	Sum       float64           `json:"sum"`
	NonFinite int64             `json:"nonfinite,omitempty"`
	Buckets   []BucketSnap      `json:"buckets"`
}

// Snapshot is a point-in-time copy of a registry, sorted by name so that
// equal registry states serialize identically (golden-file friendly).
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

// histSnap renders one histogram (scalar or vector child) into a snapshot.
func histSnap(name, help string, labels map[string]string, h *Histogram) HistogramSnap {
	hs := HistogramSnap{Name: name, Help: help, Labels: labels,
		Count: h.Count(), Sum: h.Sum(), NonFinite: h.NonFinite()}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		hs.Buckets = append(hs.Buckets, BucketSnap{LE: b, Count: cum})
	}
	cum += h.counts[len(h.bounds)].Load()
	hs.Buckets = append(hs.Buckets, BucketSnap{LE: math.Inf(1), Count: cum})
	return hs
}

// Snapshot copies the registry's current state, including every resident
// child of the labeled vectors (the overflow children past the cardinality
// cap are deliberately absent — obs_dropped_labelsets_total accounts for
// them).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Help: c.help, Value: c.Value()})
	}
	for name, cv := range r.counterVecs {
		for _, l := range cv.v.snapshot() {
			s.Counters = append(s.Counters, CounterSnap{Name: name, Help: cv.v.help,
				Labels: cv.v.labelMap(l.values), Value: l.child.Value()})
		}
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Help: g.help, Value: g.Value()})
	}
	for name, gv := range r.gaugeVecs {
		for _, l := range gv.v.snapshot() {
			s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Help: gv.v.help,
				Labels: gv.v.labelMap(l.values), Value: l.child.Value()})
		}
	}
	for name, h := range r.histograms {
		s.Histograms = append(s.Histograms, histSnap(name, h.help, nil, h))
	}
	for name, hv := range r.histogramVecs {
		for _, l := range hv.v.snapshot() {
			s.Histograms = append(s.Histograms, histSnap(name, hv.v.help, hv.v.labelMap(l.values), l.child))
		}
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		return snapLess(s.Counters[i].Name, s.Counters[i].Labels, s.Counters[j].Name, s.Counters[j].Labels)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return snapLess(s.Gauges[i].Name, s.Gauges[i].Labels, s.Gauges[j].Name, s.Gauges[j].Labels)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return snapLess(s.Histograms[i].Name, s.Histograms[i].Labels, s.Histograms[j].Name, s.Histograms[j].Labels)
	})
	return s
}

// snapLess orders snapshot entries by name, then rendered label set, so equal
// registry states serialize identically.
func snapLess(nameA string, labelsA map[string]string, nameB string, labelsB map[string]string) bool {
	if nameA != nameB {
		return nameA < nameB
	}
	return labelString(labelsA) < labelString(labelsB)
}

// labelString renders a label set as the Prometheus {k="v",...} selector with
// keys sorted; empty labels render as "".
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (text/plain; version=0.0.4). Vector children render as
// name{label="value"} series; the HELP/TYPE header is written once per
// family (children sort adjacently).
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	prev := ""
	for _, c := range s.Counters {
		if c.Name != prev {
			writeHeader(&b, c.Name, c.Help, "counter")
			prev = c.Name
		}
		fmt.Fprintf(&b, "%s%s %d\n", c.Name, labelString(c.Labels), c.Value)
	}
	prev = ""
	for _, g := range s.Gauges {
		if g.Name != prev {
			writeHeader(&b, g.Name, g.Help, "gauge")
			prev = g.Name
		}
		fmt.Fprintf(&b, "%s%s %s\n", g.Name, labelString(g.Labels), formatFloat(g.Value))
	}
	prev = ""
	for _, h := range s.Histograms {
		if h.Name != prev {
			writeHeader(&b, h.Name, h.Help, "histogram")
			prev = h.Name
		}
		ls := labelString(h.Labels)
		for _, bk := range h.Buckets {
			le := "+Inf"
			if !math.IsInf(bk.LE, 1) {
				le = formatFloat(bk.LE)
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", h.Name, withLE(ls, le), bk.Count)
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", h.Name, ls, formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.Name, ls, h.Count)
		if h.NonFinite > 0 {
			fmt.Fprintf(&b, "%s_nonfinite_total%s %d\n", h.Name, ls, h.NonFinite)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// withLE merges the le bucket label into a rendered label selector.
func withLE(labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("%s,le=%q}", labels[:len(labels)-1], le)
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Snapshot())
}

func writeHeader(b *strings.Builder, name, help, kind string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, kind)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
