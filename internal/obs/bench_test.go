package obs

import (
	"testing"
	"time"
)

// BenchmarkFrameInstrumentation measures exactly what the per-frame hot loop
// of detect.Run pays for observability: four timestamps and three atomic
// stage adds. The budget is <2% of a frame's ~250us of real work, i.e. the
// whole pattern must stay under ~5us; it measures in the low hundreds of
// nanoseconds. BenchmarkEndToEndRead (root package) is the end-to-end gate.
func BenchmarkFrameInstrumentation(b *testing.B) {
	root := StartSpan("detect")
	synth := root.StartChild("synthesize")
	rng := root.StartChild("range_fft")
	cloud := root.StartChild("point_cloud")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		t1 := time.Now()
		t2 := time.Now()
		t3 := time.Now()
		synth.Add(t1.Sub(t0))
		rng.Add(t2.Sub(t1))
		cloud.Add(t3.Sub(t2))
	}
	b.StopTimer()
	root.Release()
}

// BenchmarkSpanLifecycle covers the per-run cost: building, ending and
// releasing a read-shaped span tree with attributes.
func BenchmarkSpanLifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		root := StartSpan("read")
		det := root.StartChild("detect")
		det.SetAttr("frames", 560)
		det.SetAttr("workers", 8)
		for _, name := range []string{"synthesize", "range_fft", "point_cloud", "cluster", "spotlight"} {
			det.StartChild(name).Add(time.Millisecond)
		}
		det.End()
		root.StartChild("decode").End()
		root.End()
		root.Release()
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("c", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", "", LogBuckets(1e-3, 100, 3))
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0015
		for pb.Next() {
			h.Observe(v)
			v *= 1.1
			if v > 50 {
				v = 0.0015
			}
		}
	})
}
