package obs

import "testing"

func TestCountedMapTracksEntries(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_cache_entries", "test")
	c := NewCountedMap(g)

	if _, ok := c.Load("a"); ok {
		t.Fatal("empty map reported a hit")
	}
	if v, loaded := c.LoadOrStore("a", 1); loaded || v.(int) != 1 {
		t.Fatalf("first store: v=%v loaded=%v", v, loaded)
	}
	if g.Value() != 1 || c.Len() != 1 {
		t.Fatalf("after first store: gauge=%v len=%d, want 1, 1", g.Value(), c.Len())
	}
	// A racing second store must return the resident value and not bump the
	// count — memo caches never overwrite.
	if v, loaded := c.LoadOrStore("a", 2); !loaded || v.(int) != 1 {
		t.Fatalf("duplicate store: v=%v loaded=%v", v, loaded)
	}
	if g.Value() != 1 {
		t.Fatalf("duplicate store moved gauge to %v", g.Value())
	}
	c.LoadOrStore("b", 3)
	if g.Value() != 2 || c.Len() != 2 {
		t.Fatalf("after second key: gauge=%v len=%d, want 2, 2", g.Value(), c.Len())
	}
}

func TestCountedMapClear(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_cache_clear_entries", "test")
	c := NewCountedMap(g)
	c.LoadOrStore("a", 1)
	c.LoadOrStore("b", 2)

	c.Clear()
	if g.Value() != 0 || c.Len() != 0 {
		t.Fatalf("after Clear: gauge=%v len=%d, want 0, 0", g.Value(), c.Len())
	}
	if _, ok := c.Load("a"); ok {
		t.Fatal("cleared map still holds an entry")
	}
	// The cache keeps working after a reset.
	if v, loaded := c.LoadOrStore("a", 7); loaded || v.(int) != 7 {
		t.Fatalf("refill after Clear: v=%v loaded=%v", v, loaded)
	}
	if g.Value() != 1 || c.Len() != 1 {
		t.Fatalf("after refill: gauge=%v len=%d, want 1, 1", g.Value(), c.Len())
	}
}
