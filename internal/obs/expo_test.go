package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden exposition files")

// goldenRegistry builds a deterministic registry state: fixed values, fixed
// observation order, so both expositions are byte-stable. It covers scalars,
// labeled vectors, and the non-finite histogram diversion.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("ros_frames_synthesized_total", "radar frames synthesized").Add(560)
	r.Counter("ros_fft_calls_total", "fast-time FFTs run").Add(2240)
	r.Gauge("ros_workers", "resolved worker count").Set(8)
	h := r.Histogram("ros_read_wall_seconds", "end-to-end wall time of one pass",
		LogBuckets(0.01, 1, 1))
	for _, v := range []float64{0.005, 0.03, 0.04, 0.25, 2, math.NaN(), math.Inf(1)} {
		h.Observe(v)
	}
	oc := r.CounterVec("ros_reads_by_outcome_total", "reads by outcome and worker bucket",
		"outcome", "workers")
	oc.With("ok", "4").Add(12)
	oc.With("partial", "4").Add(2)
	oc.With("ok", "1").Add(3)
	sg := r.GaugeVec("ros_cache_entries", "memo cache entries", "cache")
	sg.With("plans").Set(3)
	sh := r.HistogramVec("ros_stage_seconds", "per-stage pass time", []float64{0.01, 0.1}, "stage")
	sh.With("synthesize").Observe(0.02)
	sh.With("synthesize").Observe(0.2)
	sh.With("decode").Observe(0.004)
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/obs -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestPrometheusGolden(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Spot-check the format invariants independent of the golden bytes.
	for _, want := range []string{
		"# TYPE ros_frames_synthesized_total counter",
		"ros_frames_synthesized_total 560",
		"# TYPE ros_read_wall_seconds histogram",
		`ros_read_wall_seconds_bucket{le="+Inf"} 5`,
		"ros_read_wall_seconds_count 5",
		"ros_read_wall_seconds_nonfinite_total 2",
		`ros_reads_by_outcome_total{outcome="ok",workers="4"} 12`,
		`ros_cache_entries{cache="plans"} 3`,
		`ros_stage_seconds_bucket{stage="synthesize",le="0.1"} 1`,
		`ros_stage_seconds_count{stage="decode"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	checkGolden(t, "metrics.prom", b.Bytes())
}

func TestJSONGolden(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json", b.Bytes())
}
