package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// sampleView builds a read-shaped span tree: wall-clocked root and
// sequential stages, plus worker-summed frame-loop stages that carry only
// self time.
func sampleView() SpanView {
	return SpanView{
		Name: "read", WallMs: 20,
		Children: []SpanView{
			{
				Name: "detect", WallMs: 16,
				Attrs: map[string]any{"frames": 560, "workers": 4},
				Children: []SpanView{
					{Name: "synthesize", SelfMs: 40, Attrs: map[string]any{"workers": 4}},
					{Name: "range_fft", SelfMs: 12, Attrs: map[string]any{"workers": 4}},
					{Name: "cluster", WallMs: 2},
					{Name: "spotlight", WallMs: 3, SelfMs: 9, Attrs: map[string]any{"workers": 4}},
				},
			},
			{Name: "decode", WallMs: 1},
		},
	}
}

// TestTraceEventsSchema validates the exporter against the trace_event
// format contract: strict JSON, known fields only, complete events with
// non-negative ts/dur, metadata events naming every referenced track.
func TestTraceEventsSchema(t *testing.T) {
	var b bytes.Buffer
	if err := sampleView().WriteTraceEvents(&b); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(b.Bytes()))
	dec.DisallowUnknownFields()
	var doc TraceDoc
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("trace is not schema-clean JSON: %v\n%s", err, b.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events emitted")
	}
	named := map[int]bool{}
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name != "thread_name" {
				t.Errorf("event %d: metadata name %q, want thread_name", i, e.Name)
			}
			if n, ok := e.Args["name"].(string); !ok || n == "" {
				t.Errorf("event %d: thread_name without args.name", i)
			}
			named[e.TID] = true
		case "X":
			if e.Name == "" {
				t.Errorf("event %d: empty name", i)
			}
			if e.TS < 0 || e.Dur < 0 {
				t.Errorf("event %d (%s): negative ts %g or dur %g", i, e.Name, e.TS, e.Dur)
			}
			if !named[e.TID] {
				t.Errorf("event %d (%s): track %d not named before use", i, e.Name, e.TID)
			}
		default:
			t.Errorf("event %d: unexpected phase %q", i, e.Ph)
		}
		if e.PID != 1 {
			t.Errorf("event %d: pid %d, want 1", i, e.PID)
		}
	}
}

func TestTraceEventsLayout(t *testing.T) {
	events := sampleView().TraceEvents()
	find := func(name string, tid int) *TraceEvent {
		for i := range events {
			if events[i].Ph == "X" && events[i].Name == name && events[i].TID == tid {
				return &events[i]
			}
		}
		return nil
	}
	tids := map[string]int{}
	for _, e := range events {
		if e.Ph == "M" {
			tids[e.Args["name"].(string)] = e.TID
		}
	}
	wall := tids["wall"]
	root := find("read", wall)
	if root == nil || root.TS != 0 || root.Dur != 20000 {
		t.Fatalf("root event = %+v, want ts 0 dur 20000us on the wall track", root)
	}
	det := find("detect", wall)
	if det == nil || det.TS != 0 || det.Dur != 16000 {
		t.Fatalf("detect = %+v, want ts 0 dur 16000us", det)
	}
	// decode stacks after detect on the wall track.
	dec := find("decode", wall)
	if dec == nil || dec.TS != 16000 {
		t.Fatalf("decode = %+v, want ts 16000us (stacked after detect)", dec)
	}
	// synthesize: self 40ms over 4 workers -> 10ms per worker track, starting
	// at detect's start.
	for w := 0; w < 4; w++ {
		tid, ok := tids[fmt4(w)]
		if !ok {
			t.Fatalf("no track for worker %d", w)
		}
		s := find("synthesize", tid)
		if s == nil || s.TS != 0 || s.Dur != 10000 {
			t.Fatalf("synthesize on worker %d = %+v, want ts 0 dur 10000us", w, s)
		}
	}
	// cluster consumes wall time inside detect after the self-only stages
	// (which consume none).
	cl := find("cluster", wall)
	if cl == nil || cl.TS != 0 || cl.Dur != 2000 {
		t.Fatalf("cluster = %+v, want ts 0 dur 2000us", cl)
	}
	// spotlight has wall time too and stacks after cluster.
	sp := find("spotlight", wall)
	if sp == nil || sp.TS != 2000 {
		t.Fatalf("spotlight = %+v, want ts 2000us", sp)
	}
	if sp.Args["self_ms"] != 9.0 {
		t.Errorf("spotlight args = %v, want self_ms 9", sp.Args)
	}
}

func fmt4(w int) string { return "worker " + string(rune('0'+w)) }

// TestSpanWriteTraceEvents exercises the live-span entry point end to end.
func TestSpanWriteTraceEvents(t *testing.T) {
	root := StartSpan("read")
	child := root.StartChild("detect")
	child.Add(3 * time.Millisecond)
	child.SetAttr("workers", 2)
	child.End()
	root.End()
	defer root.Release()
	var b bytes.Buffer
	if err := root.WriteTraceEvents(&b); err != nil {
		t.Fatal(err)
	}
	var doc TraceDoc
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	sawRead, sawDetect := false, false
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		switch e.Name {
		case "read":
			sawRead = true
		case "detect":
			sawDetect = true
		}
	}
	if !sawRead || !sawDetect {
		t.Errorf("trace missing spans: read=%v detect=%v\n%s", sawRead, sawDetect, b.String())
	}
}
