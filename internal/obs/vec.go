package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MaxLabelSets is the per-vector cardinality cap: the number of distinct
// label-value combinations a CounterVec/GaugeVec/HistogramVec will allocate
// before routing further combinations to a shared overflow child and counting
// them on obs_dropped_labelsets_total. The label *scheme* of this codebase is
// bounded by construction — stage names, outcome enums, worker-count buckets,
// fault kinds — so hitting the cap means a caller is interpolating unbounded
// input (tenant ids without bucketing, raw error strings) into a label, which
// the cap turns from a memory leak into a visible self-metric.
const MaxLabelSets = 64

// DroppedLabelSetsMetric is the self-metric counting observations routed to
// an overflow child because a vector hit MaxLabelSets.
const DroppedLabelSetsMetric = "obs_dropped_labelsets_total"

// labelValuesKey joins label values into one map key. \xff cannot appear in
// metric label values (exposition is UTF-8 text), so the join is unambiguous.
func labelValuesKey(values []string) string {
	return strings.Join(values, "\xff")
}

// labeled pairs one child's label values with its position in exposition.
type labeled[T any] struct {
	values []string
	child  T
}

// vecIndex is the immutable labelset index published behind an atomic
// pointer: the observe path is one pointer load plus one read-only map
// lookup, with no locks. Growth copies the map under the vector's mutex and
// swaps the pointer (labelsets are bounded by MaxLabelSets, so copies are
// rare and small).
type vecIndex[T any] struct {
	m map[string]labeled[T]
}

// vec is the shared machinery of the three vector kinds.
type vec[T any] struct {
	name   string
	help   string
	labels []string
	idx    atomic.Pointer[vecIndex[T]]

	mu       sync.Mutex // guards growth only, never the observe path
	maxSets  int        // cardinality cap; MaxLabelSets unless overridden
	overflow T          // shared child returned past the cardinality cap
	dropped  *Counter   // the registry's obs_dropped_labelsets_total
	make     func() T
}

func newVec[T any](name, help string, labels []string, maxSets int, dropped *Counter, make func() T) *vec[T] {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: vector %q needs at least one label", name))
	}
	for _, l := range labels {
		if l == "" || l == "le" {
			panic(fmt.Sprintf("obs: vector %q has reserved or empty label %q", name, l))
		}
	}
	if maxSets <= 0 {
		maxSets = MaxLabelSets
	}
	v := &vec[T]{name: name, help: help, labels: append([]string(nil), labels...),
		maxSets: maxSets, dropped: dropped, overflow: make(), make: make}
	v.idx.Store(&vecIndex[T]{m: map[string]labeled[T]{}})
	return v
}

// with returns the child for the given label values, creating it on first
// use. Past MaxLabelSets distinct labelsets it returns the vector's shared
// overflow child (whose observations are never exposed) and increments
// obs_dropped_labelsets_total — callers should cache hot children, at which
// point with is one atomic load plus a map hit.
func (v *vec[T]) with(values []string) T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: vector %q got %d label values for %d labels",
			v.name, len(values), len(v.labels)))
	}
	key := labelValuesKey(values)
	if l, ok := v.idx.Load().m[key]; ok {
		return l.child
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	cur := v.idx.Load()
	if l, ok := cur.m[key]; ok {
		return l.child
	}
	if len(cur.m) >= v.maxSets {
		v.dropped.Inc()
		return v.overflow
	}
	next := &vecIndex[T]{m: make(map[string]labeled[T], len(cur.m)+1)}
	for k, l := range cur.m {
		next.m[k] = l
	}
	child := v.make()
	next.m[key] = labeled[T]{values: append([]string(nil), values...), child: child}
	v.idx.Store(next)
	return child
}

// delete removes the child with the given label values, freeing its slot
// under the cardinality cap and dropping it from exposition. It reports
// whether a child was resident. Deletion publishes a fresh index, so
// concurrent observers either see the old child (and their observations die
// with it) or miss — the same semantics a cache Clear has.
func (v *vec[T]) delete(values []string) bool {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: vector %q got %d label values for %d labels",
			v.name, len(values), len(v.labels)))
	}
	key := labelValuesKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	cur := v.idx.Load()
	if _, ok := cur.m[key]; !ok {
		return false
	}
	next := &vecIndex[T]{m: make(map[string]labeled[T], len(cur.m)-1)}
	for k, l := range cur.m {
		if k != key {
			next.m[k] = l
		}
	}
	v.idx.Store(next)
	return true
}

// snapshot returns the resident children sorted by label values, for
// deterministic exposition.
func (v *vec[T]) snapshot() []labeled[T] {
	m := v.idx.Load().m
	out := make([]labeled[T], 0, len(m))
	for _, l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		return labelValuesKey(out[i].values) < labelValuesKey(out[j].values)
	})
	return out
}

// labelMap pairs the vector's label names with one child's values.
func (v *vec[T]) labelMap(values []string) map[string]string {
	m := make(map[string]string, len(v.labels))
	for i, name := range v.labels {
		m[name] = values[i]
	}
	return m
}

// CounterVec is a counter family indexed by a fixed, pre-registered label
// scheme. With is lock-free after a labelset's first observation.
type CounterVec struct{ v *vec[*Counter] }

// With returns the counter for the given label values (in registration
// order).
func (c *CounterVec) With(values ...string) *Counter { return c.v.with(values) }

// GaugeVec is a gauge family indexed by a fixed label scheme.
type GaugeVec struct{ v *vec[*Gauge] }

// With returns the gauge for the given label values.
func (g *GaugeVec) With(values ...string) *Gauge { return g.v.with(values) }

// Delete removes the labelset's gauge from the vector, freeing its slot
// under the cardinality cap and dropping it from exposition. It reports
// whether the labelset was resident. Resource handles use it to retire their
// per-instance gauges deterministically on Close.
func (g *GaugeVec) Delete(values ...string) bool { return g.v.delete(values) }

// HistogramVec is a histogram family indexed by a fixed label scheme; every
// child shares the bucket bounds given at registration.
type HistogramVec struct{ v *vec[*Histogram] }

// With returns the histogram for the given label values.
func (h *HistogramVec) With(values ...string) *Histogram { return h.v.with(values) }

// CounterVec returns the named counter vector with the given label scheme,
// creating it on first use (later calls ignore help and labels, like the
// scalar constructors).
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	r.mu.RLock()
	v := r.counterVecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	dropped := r.Counter(DroppedLabelSetsMetric,
		"observations routed to a vector's overflow child past the labelset cap")
	r.mu.Lock()
	defer r.mu.Unlock()
	if v := r.counterVecs[name]; v != nil {
		return v
	}
	r.checkFreeLocked(name, "counter vector")
	v = &CounterVec{v: newVec(name, help, labels, 0, dropped, func() *Counter { return &Counter{} })}
	r.counterVecs[name] = v
	return v
}

// GaugeVec returns the named gauge vector, creating it on first use.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return r.GaugeVecCapacity(name, help, 0, labels...)
}

// GaugeVecCapacity is GaugeVec with an explicit labelset cap (0 means
// MaxLabelSets; later calls ignore the cap, like every other constructor
// argument). Per-instance resource gauges — many short-lived handles, each
// registering a few labelsets and Delete-ing them on Close — size their cap
// to the handle population instead of the global default.
func (r *Registry) GaugeVecCapacity(name, help string, maxSets int, labels ...string) *GaugeVec {
	r.mu.RLock()
	v := r.gaugeVecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	dropped := r.Counter(DroppedLabelSetsMetric,
		"observations routed to a vector's overflow child past the labelset cap")
	r.mu.Lock()
	defer r.mu.Unlock()
	if v := r.gaugeVecs[name]; v != nil {
		return v
	}
	r.checkFreeLocked(name, "gauge vector")
	v = &GaugeVec{v: newVec(name, help, labels, maxSets, dropped, func() *Gauge { return &Gauge{} })}
	r.gaugeVecs[name] = v
	return v
}

// HistogramVec returns the named histogram vector whose children share the
// given bucket bounds, creating it on first use.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	r.mu.RLock()
	v := r.histogramVecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	dropped := r.Counter(DroppedLabelSetsMetric,
		"observations routed to a vector's overflow child past the labelset cap")
	r.mu.Lock()
	defer r.mu.Unlock()
	if v := r.histogramVecs[name]; v != nil {
		return v
	}
	r.checkFreeLocked(name, "histogram vector")
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram vector %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram vector %q bounds not increasing at %d", name, i))
		}
	}
	shared := append([]float64(nil), bounds...)
	v = &HistogramVec{v: newVec(name, help, labels, 0, dropped, func() *Histogram {
		return &Histogram{bounds: shared, counts: make([]atomic.Int64, len(shared)+1)}
	})}
	r.histogramVecs[name] = v
	return v
}

// BucketWorkers maps a resolved worker count onto the bounded label values
// used by the worker-count metric dimension: "1", "2", "4", "8", "16+"
// (rounded up to the next bucket). Keeping the axis enumerable is what lets
// worker-labeled vectors stay under MaxLabelSets by construction.
func BucketWorkers(n int) string {
	switch {
	case n <= 1:
		return "1"
	case n <= 2:
		return "2"
	case n <= 4:
		return "4"
	case n <= 8:
		return "8"
	default:
		return "16+"
	}
}
