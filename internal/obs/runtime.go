package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// runtimeSamples maps runtime/metrics sample names onto registry gauge
// names. Scalar samples publish directly; histogram samples publish p50,
// p99, and max quantile gauges.
var runtimeScalars = []struct {
	sample, gauge, help string
}{
	{"/sched/goroutines:goroutines", "ros_runtime_goroutines",
		"live goroutines"},
	{"/memory/classes/heap/objects:bytes", "ros_runtime_heap_objects_bytes",
		"bytes of live heap objects"},
	{"/memory/classes/total:bytes", "ros_runtime_memory_total_bytes",
		"total bytes mapped by the Go runtime"},
	{"/gc/cycles/total:gc-cycles", "ros_runtime_gc_cycles_total",
		"completed GC cycles"},
	{"/gc/heap/allocs:bytes", "ros_runtime_alloc_bytes_total",
		"cumulative bytes allocated on the heap"},
}

var runtimeHists = []struct {
	sample, prefix, help string
}{
	{"/gc/pauses:seconds", "ros_runtime_gc_pause",
		"stop-the-world GC pause latency (seconds)"},
	{"/sched/latencies:seconds", "ros_runtime_sched_latency",
		"time goroutines spend runnable before running (seconds)"},
}

// Runtime polls runtime/metrics into registry gauges on a fixed interval —
// heap and GC telemetry for long sweeps, served alongside the pipeline
// metrics. It reads runtime state only and never draws randomness, so a
// polling collector cannot perturb simulation determinism.
type Runtime struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartRuntime begins polling runtime/metrics into reg (nil uses Default)
// every interval (<= 0 uses 1s). One sample is taken synchronously before
// returning, so the gauges are live immediately. Stop the collector with
// Stop.
func StartRuntime(reg *Registry, interval time.Duration) *Runtime {
	if reg == nil {
		reg = Default
	}
	if interval <= 0 {
		interval = time.Second
	}
	samples := make([]metrics.Sample, 0, len(runtimeScalars)+len(runtimeHists))
	scalarGauges := make([]*Gauge, len(runtimeScalars))
	for i, s := range runtimeScalars {
		samples = append(samples, metrics.Sample{Name: s.sample})
		scalarGauges[i] = reg.Gauge(s.gauge, s.help)
	}
	type histGauges struct{ p50, p99, max *Gauge }
	hists := make([]histGauges, len(runtimeHists))
	for i, h := range runtimeHists {
		samples = append(samples, metrics.Sample{Name: h.sample})
		hists[i] = histGauges{
			p50: reg.Gauge(h.prefix+"_p50_seconds", h.help+", p50"),
			p99: reg.Gauge(h.prefix+"_p99_seconds", h.help+", p99"),
			max: reg.Gauge(h.prefix+"_max_seconds", h.help+", max"),
		}
	}
	poll := func() {
		metrics.Read(samples)
		for i := range runtimeScalars {
			if v, ok := sampleValue(samples[i]); ok {
				scalarGauges[i].Set(v)
			}
		}
		for i := range runtimeHists {
			s := samples[len(runtimeScalars)+i]
			if s.Value.Kind() != metrics.KindFloat64Histogram {
				continue
			}
			h := s.Value.Float64Histogram()
			hists[i].p50.Set(histQuantile(h, 0.50))
			hists[i].p99.Set(histQuantile(h, 0.99))
			hists[i].max.Set(histMax(h))
		}
	}
	poll()
	r := &Runtime{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				poll()
			}
		}
	}()
	return r
}

// Stop halts the poller and waits for its goroutine to exit. Safe to call
// more than once.
func (r *Runtime) Stop() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}

// sampleValue extracts a scalar runtime/metrics value as float64.
func sampleValue(s metrics.Sample) (float64, bool) {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64()), true
	case metrics.KindFloat64:
		return s.Value.Float64(), true
	}
	return 0, false
}

// histQuantile estimates quantile q from a runtime/metrics histogram,
// reporting the upper bound of the bucket the quantile falls in (the
// convention Prometheus' histogram_quantile uses). Unbounded edge buckets
// fall back to their finite side.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return finiteBound(h.Buckets, i+1, i)
		}
	}
	return finiteBound(h.Buckets, len(h.Buckets)-1, len(h.Buckets)-2)
}

// histMax returns the upper bound of the highest non-empty bucket.
func histMax(h *metrics.Float64Histogram) float64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			return finiteBound(h.Buckets, i+1, i)
		}
	}
	return 0
}

// finiteBound returns Buckets[i] unless it is infinite, then Buckets[alt]
// (clamped to 0 when that is infinite too — an all-unbounded histogram).
func finiteBound(buckets []float64, i, alt int) float64 {
	if i >= 0 && i < len(buckets) && !math.IsInf(buckets[i], 0) {
		return buckets[i]
	}
	if alt >= 0 && alt < len(buckets) && !math.IsInf(buckets[alt], 0) {
		return buckets[alt]
	}
	return 0
}
