package obs

import (
	"sync"
	"sync/atomic"
)

// CountedMap is a sync.Map whose entry count is mirrored into a Gauge, for
// process-lifetime memo caches (FFT plans, steering tables, window tables)
// that otherwise grow silently. The count tracks successful first stores —
// exactly the cache's resident entries, since memo caches never overwrite.
//
// Retention contract for caches built on CountedMap: entries are immutable,
// shared, and live until Clear. The working set is bounded by the number of
// distinct keys the process touches (for this codebase: distinct radar
// configurations and transform sizes), not by time — a long-lived server
// cycling through unbounded configurations must call the owning package's
// ResetCaches hook (or watch the gauge) to bound memory. Clear is safe
// under concurrency: values already handed out keep working, and in-flight
// fills simply repopulate.
type CountedMap struct {
	m sync.Map
	n atomic.Int64
	g *Gauge
}

// NewCountedMap returns a map that mirrors its entry count into g.
func NewCountedMap(g *Gauge) *CountedMap {
	return &CountedMap{g: g}
}

// Load returns the value stored under key, if any.
func (c *CountedMap) Load(key any) (any, bool) { return c.m.Load(key) }

// LoadOrStore returns the existing value for key if present, otherwise it
// stores value and bumps the entry gauge.
func (c *CountedMap) LoadOrStore(key, value any) (any, bool) {
	actual, loaded := c.m.LoadOrStore(key, value)
	if !loaded {
		c.g.Set(float64(c.n.Add(1)))
	}
	return actual, loaded
}

// Len returns the resident entry count.
func (c *CountedMap) Len() int { return int(c.n.Load()) }

// Clear drops every entry and zeroes the gauge.
func (c *CountedMap) Clear() {
	c.m.Range(func(k, _ any) bool {
		c.m.Delete(k)
		return true
	})
	c.n.Store(0)
	c.g.Set(0)
}
