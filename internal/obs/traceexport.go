package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceEvent is one Chrome trace_event record. The exporter emits complete
// events ("X", with ts and dur in microseconds) for spans and metadata
// events ("M") naming the tracks, which is the subset Perfetto and
// chrome://tracing load without preprocessing.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceDoc is the trace_event JSON object format: an event array plus the
// display unit.
type TraceDoc struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// traceBuilder lays a span tree out on tracks. Track 0 is the wall-clock
// timeline; worker-summed stages additionally get one track per worker
// showing their CPU share.
type traceBuilder struct {
	events []TraceEvent
	tids   map[string]int
}

// tid returns the track id for a named track, creating it (and its
// thread_name metadata event) on first use.
func (b *traceBuilder) tid(name string) int {
	if id, ok := b.tids[name]; ok {
		return id
	}
	id := len(b.tids)
	b.tids[name] = id
	b.events = append(b.events, TraceEvent{
		Name: "thread_name", Ph: "M", PID: 1, TID: id,
		Args: map[string]any{"name": name},
	})
	return id
}

// layout emits v and its subtree starting at ts microseconds on the given
// track and returns the wall-track time the span consumed (its wall
// duration, or 0 for stages that only accumulated worker-summed self time —
// those overlap their siblings on per-worker tracks instead of advancing the
// timeline).
func (b *traceBuilder) layout(v SpanView, ts float64, track string) float64 {
	wallUS := v.WallMs * 1000
	selfUS := v.SelfMs * 1000
	args := map[string]any{}
	for k, val := range v.Attrs {
		args[k] = val
	}
	if v.SelfMs > 0 {
		args["self_ms"] = v.SelfMs
	}
	if len(args) == 0 {
		args = nil
	}
	if wallUS > 0 {
		b.events = append(b.events, TraceEvent{
			Name: v.Name, Ph: "X", TS: ts, Dur: wallUS,
			PID: 1, TID: b.tid(track), Args: args,
		})
	}
	if selfUS > 0 {
		// Worker-summed self time: split evenly across the stage's workers
		// so each per-worker track shows the stage's CPU share over the
		// parent interval.
		workers := 1
		if w, ok := v.Attrs["workers"]; ok {
			switch n := w.(type) {
			case int:
				workers = n
			case int64:
				workers = int(n)
			case float64:
				workers = int(n)
			}
		}
		if workers < 1 {
			workers = 1
		}
		share := selfUS / float64(workers)
		for w := 0; w < workers; w++ {
			b.events = append(b.events, TraceEvent{
				Name: v.Name, Ph: "X", TS: ts, Dur: share,
				PID: 1, TID: b.tid(fmt.Sprintf("worker %d", w)), Args: args,
			})
		}
	}
	// Children stack sequentially on the wall track; self-time-only children
	// consume no wall time and therefore overlap at the parent's cursor.
	cursor := ts
	for _, c := range v.Children {
		cursor += b.layout(c, cursor, track)
	}
	return wallUS
}

// TraceEvents renders the span tree view as trace_event records.
func (v SpanView) TraceEvents() []TraceEvent {
	b := &traceBuilder{tids: map[string]int{}}
	b.tid("wall") // track 0 is always the wall-clock timeline
	b.layout(v, 0, "wall")
	return b.events
}

// WriteTraceEvents serializes the span tree view as Chrome trace_event JSON
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing: the root's
// wall interval on track 0, children stacked sequentially, and worker-summed
// stages split across per-worker tracks showing CPU share.
func (v SpanView) WriteTraceEvents(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(TraceDoc{
		TraceEvents:     v.TraceEvents(),
		DisplayTimeUnit: "ms",
	})
}

// WriteTraceEvents snapshots the span tree and serializes it; see
// SpanView.WriteTraceEvents.
func (s *Span) WriteTraceEvents(w io.Writer) error {
	return s.View().WriteTraceEvents(w)
}
