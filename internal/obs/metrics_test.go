package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c", "ignored") != c {
		t.Error("Counter is not get-or-create")
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Errorf("gauge = %v, want -1.25", got)
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("name", "")
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge over a counter did not panic")
		}
	}()
	r.Gauge("name", "")
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 10, 100})
	// Buckets are cumulative with <= bounds: a value equal to a bound lands
	// in that bound's bucket.
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	snap := findHist(t, r, "h")
	wantLE := []float64{1, 10, 100, math.Inf(1)}
	wantCum := []int64{2, 4, 5, 6}
	if len(snap.Buckets) != len(wantLE) {
		t.Fatalf("got %d buckets, want %d", len(snap.Buckets), len(wantLE))
	}
	for i, b := range snap.Buckets {
		if b.LE != wantLE[i] || b.Count != wantCum[i] {
			t.Errorf("bucket %d = {le %v, n %d}, want {le %v, n %d}",
				i, b.LE, b.Count, wantLE[i], wantCum[i])
		}
	}
	if snap.Count != 6 {
		t.Errorf("count = %d, want 6", snap.Count)
	}
	if got, want := snap.Sum, 0.5+1+5+10+50+1000; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

// TestHistogramNonFiniteGuard is the regression test for the NaN/±Inf
// diversion: one bad observation must not poison sum or count, and must stay
// visible on the NonFinite counter.
func TestHistogramNonFiniteGuard(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 10})
	h.Observe(5)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(3)
	if got := h.Count(); got != 2 {
		t.Errorf("count = %d, want 2 (non-finite diverted)", got)
	}
	if got := h.Sum(); got != 8 {
		t.Errorf("sum = %v, want 8 (non-finite diverted)", got)
	}
	if math.IsNaN(h.Sum()) || math.IsInf(h.Sum(), 0) {
		t.Errorf("sum corrupted to %v", h.Sum())
	}
	if got := h.NonFinite(); got != 3 {
		t.Errorf("NonFinite = %d, want 3", got)
	}
	snap := findHist(t, r, "h")
	if snap.NonFinite != 3 {
		t.Errorf("snapshot NonFinite = %d, want 3", snap.NonFinite)
	}
	if snap.Buckets[len(snap.Buckets)-1].Count != 2 {
		t.Errorf("+Inf bucket = %d, want 2", snap.Buckets[len(snap.Buckets)-1].Count)
	}
}

func findHist(t *testing.T, r *Registry, name string) HistogramSnap {
	t.Helper()
	for _, h := range r.Snapshot().Histograms {
		if h.Name == name {
			return h
		}
	}
	t.Fatalf("histogram %q not in snapshot", name)
	return HistogramSnap{}
}

func TestLogBuckets(t *testing.T) {
	got := LogBuckets(0.001, 1, 1)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(got) != len(want) {
		t.Fatalf("LogBuckets = %v, want %v", got, want)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	if n := len(LogBuckets(1e-3, 100, 3)); n != 16 {
		t.Errorf("3/decade over 5 decades = %d bounds, want 16", n)
	}
}

func TestLinearBuckets(t *testing.T) {
	got := LinearBuckets(-10, 5, 4)
	want := []float64{-10, -5, 0, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LinearBuckets = %v, want %v", got, want)
		}
	}
}

// TestRegistryConcurrent exercises handle creation and observation from many
// goroutines; run with -race (make ci does).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, iters = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c", "").Inc()
				r.Gauge("g", "").Set(float64(i))
				r.Histogram("h", "", []float64{1, 10}).Observe(float64(i % 20))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", "").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	h := findHist(t, r, "h")
	if h.Count != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*iters)
	}
}
