package obs

import (
	"context"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
)

// The package logger defaults to a handler whose Enabled always reports
// false, so library code can log unconditionally (slog checks Enabled before
// building the record) and silent production paths stay silent until a
// binary or test opts in with SetLogger.
var logger atomic.Pointer[slog.Logger]

func init() { logger.Store(slog.New(discardHandler{})) }

// Logger returns the process-wide structured logger.
func Logger() *slog.Logger { return logger.Load() }

// SetLogger replaces the process-wide logger and returns the previous one,
// so tests can restore it: defer obs.SetLogger(obs.SetLogger(testLogger)).
// A nil l resets to the discarding default.
func SetLogger(l *slog.Logger) *slog.Logger {
	if l == nil {
		l = slog.New(discardHandler{})
	}
	return logger.Swap(l)
}

// NewTextLogger builds a slog text logger at the given level, for wiring
// into SetLogger from command-line flags.
func NewTextLogger(w io.Writer, level slog.Level) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// ParseLevel maps a flag string to a slog level: "debug", "info", "warn",
// "error", or "off" (the discarding default). Unknown strings report ok =
// false.
func ParseLevel(s string) (level slog.Level, off, ok bool) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, false, true
	case "info":
		return slog.LevelInfo, false, true
	case "warn", "warning":
		return slog.LevelWarn, false, true
	case "error":
		return slog.LevelError, false, true
	case "off", "none", "":
		return 0, true, true
	}
	return 0, false, false
}

// discardHandler drops everything before any record is built.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
