package obs

import (
	"runtime/metrics"
	"testing"
	"time"
)

func TestStartRuntimePopulatesGauges(t *testing.T) {
	r := NewRegistry()
	rt := StartRuntime(r, time.Hour) // synchronous first sample; ticker idle
	defer rt.Stop()
	snap := r.Snapshot()
	byName := map[string]float64{}
	for _, g := range snap.Gauges {
		byName[g.Name] = g.Value
	}
	if v, ok := byName["ros_runtime_goroutines"]; !ok || v < 1 {
		t.Errorf("ros_runtime_goroutines = %v (present %v), want >= 1", v, ok)
	}
	if v, ok := byName["ros_runtime_heap_objects_bytes"]; !ok || v <= 0 {
		t.Errorf("ros_runtime_heap_objects_bytes = %v (present %v), want > 0", v, ok)
	}
	for _, name := range []string{
		"ros_runtime_memory_total_bytes",
		"ros_runtime_gc_cycles_total",
		"ros_runtime_alloc_bytes_total",
		"ros_runtime_gc_pause_p50_seconds",
		"ros_runtime_gc_pause_p99_seconds",
		"ros_runtime_gc_pause_max_seconds",
		"ros_runtime_sched_latency_p50_seconds",
		"ros_runtime_sched_latency_p99_seconds",
		"ros_runtime_sched_latency_max_seconds",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("gauge %s not registered", name)
		}
	}
}

func TestRuntimeStopIdempotent(t *testing.T) {
	rt := StartRuntime(NewRegistry(), time.Millisecond)
	time.Sleep(5 * time.Millisecond) // let the ticker fire at least once
	rt.Stop()
	rt.Stop() // second Stop must not panic or deadlock
}

func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{10, 80, 10},
		Buckets: []float64{0, 1, 2, 3},
	}
	if got := histQuantile(h, 0.50); got != 2 {
		t.Errorf("p50 = %v, want 2 (upper bound of the middle bucket)", got)
	}
	if got := histQuantile(h, 0.99); got != 3 {
		t.Errorf("p99 = %v, want 3", got)
	}
	if got := histMax(h); got != 3 {
		t.Errorf("max = %v, want 3", got)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0, 0}, Buckets: []float64{0, 1, 2}}
	if got := histQuantile(empty, 0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", got)
	}
	if got := histMax(empty); got != 0 {
		t.Errorf("empty histogram max = %v, want 0", got)
	}
}
