package httpserve

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"ros/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("ros_test_total", "test counter").Add(7)
	srv, err := Start("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "ros_test_total 7") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}
	if ct, _ := get(t, base+"/metrics.json"); ct != http.StatusOK {
		t.Errorf("/metrics.json status %d", ct)
	}
	code, body = get(t, base+"/metrics.json")
	if !strings.Contains(body, `"ros_test_total"`) {
		t.Errorf("/metrics.json missing counter: %s", body)
	}

	// expvar always carries cmdline/memstats plus the published Default
	// registry snapshot.
	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "memstats") ||
		!strings.Contains(body, "ros_metrics") {
		t.Errorf("/debug/vars = %d, body %.200s", code, body)
	}

	code, body = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK || len(body) == 0 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
	code, body = get(t, base+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK || !strings.Contains(body, "goroutine profile") {
		t.Errorf("/debug/pprof/goroutine = %d, body %.100s", code, body)
	}

	code, body = get(t, base+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d, body %.100s", code, body)
	}
	if code, _ = get(t, base+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

// TestStartTwice ensures the expvar publication does not panic when several
// servers run in one process.
func TestStartTwice(t *testing.T) {
	a, err := Start("localhost:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Start("localhost:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.Addr() == b.Addr() {
		t.Error("two servers share an address")
	}
}
