package httpserve

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"ros/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("ros_test_total", "test counter").Add(7)
	srv, err := Start("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "ros_test_total 7") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}
	if ct, _ := get(t, base+"/metrics.json"); ct != http.StatusOK {
		t.Errorf("/metrics.json status %d", ct)
	}
	code, body = get(t, base+"/metrics.json")
	if !strings.Contains(body, `"ros_test_total"`) {
		t.Errorf("/metrics.json missing counter: %s", body)
	}

	// expvar always carries cmdline/memstats plus the published Default
	// registry snapshot.
	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "memstats") ||
		!strings.Contains(body, "ros_metrics") {
		t.Errorf("/debug/vars = %d, body %.200s", code, body)
	}

	code, body = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK || len(body) == 0 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
	code, body = get(t, base+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK || !strings.Contains(body, "goroutine profile") {
		t.Errorf("/debug/pprof/goroutine = %d, body %.100s", code, body)
	}

	code, body = get(t, base+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d, body %.100s", code, body)
	}
	if code, _ = get(t, base+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

// TestStartTwice ensures the expvar publication does not panic when several
// servers run in one process.
func TestStartTwice(t *testing.T) {
	a, err := Start("localhost:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Start("localhost:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.Addr() == b.Addr() {
		t.Error("two servers share an address")
	}
}

// getFull fetches a URL and returns status, Content-Type, and body.
func getFull(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestRouteContentTypes pins status and Content-Type for every route the mux
// serves, including the flight recorder.
func TestRouteContentTypes(t *testing.T) {
	// Seed the process-global flight recorder so /debug/flight has an entry.
	obs.DefaultFlight.Offer(&obs.FlightEntry{Outcome: "partial", Seed: 424242}, nil)
	srv, err := Start("localhost:0", nil) // nil serves the Default registry
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	cases := []struct {
		path, wantCT, wantBody string
	}{
		{"/", "text/plain", "/debug/flight"},
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8", "obs_dropped_labelsets_total"},
		{"/metrics.json", "application/json", `"counters"`},
		{"/debug/flight", "application/json", `"capacity"`},
		{"/debug/vars", "application/json", "ros_metrics"},
		{"/debug/pprof/", "text/html; charset=utf-8", "pprof"},
	}
	for _, tc := range cases {
		code, ct, body := getFull(t, base+tc.path)
		if code != http.StatusOK {
			t.Errorf("%s status = %d, want 200", tc.path, code)
		}
		if !strings.HasPrefix(ct, tc.wantCT) {
			t.Errorf("%s Content-Type = %q, want prefix %q", tc.path, ct, tc.wantCT)
		}
		if !strings.Contains(body, tc.wantBody) {
			t.Errorf("%s body missing %q:\n%.300s", tc.path, tc.wantBody, body)
		}
	}

	// The seeded entry round-trips through the endpoint.
	_, _, body := getFull(t, base+"/debug/flight")
	if !strings.Contains(body, `"seed": 424242`) {
		t.Errorf("/debug/flight missing the seeded entry:\n%.400s", body)
	}
}
