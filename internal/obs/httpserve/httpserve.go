// Package httpserve exposes an obs.Registry over HTTP for live inspection of
// long sweeps: Prometheus text at /metrics, the JSON snapshot at
// /metrics.json, the flight-recorder ring at /debug/flight, expvar at
// /debug/vars, and the stdlib pprof profiler under /debug/pprof/.
// rosbench -serve is the canonical user.
package httpserve

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"ros/internal/obs"
)

// publishOnce guards the expvar registration: expvar.Publish panics on
// duplicate names, and tests start several servers per process.
var publishOnce sync.Once

// Mux returns the observability mux for the given registry.
func Mux(reg *obs.Registry) *http.ServeMux {
	if reg == nil {
		reg = obs.Default
	}
	publishOnce.Do(func() {
		expvar.Publish("ros_metrics", expvar.Func(func() any { return obs.Default.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "ros observability endpoints:\n"+
			"  /metrics       Prometheus text exposition\n"+
			"  /metrics.json  JSON snapshot\n"+
			"  /debug/flight  flight recorder (recent reads, newest first)\n"+
			"  /debug/vars    expvar (includes ros_metrics)\n"+
			"  /debug/pprof/  runtime profiles\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			obs.Logger().Error("metrics exposition failed", "err", err)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			obs.Logger().Error("metrics JSON exposition failed", "err", err)
		}
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.DefaultFlight.WriteJSON(w); err != nil {
			obs.Logger().Error("flight exposition failed", "err", err)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability HTTP server.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Start listens on addr (e.g. "localhost:6060", or ":0" for an ephemeral
// port) and serves the observability mux in a background goroutine.
func Start(addr string, reg *obs.Registry) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpserve: %w", err)
	}
	srv := &http.Server{Handler: Mux(reg)}
	go func() {
		if err := srv.Serve(lis); err != nil && err != http.ErrServerClosed {
			obs.Logger().Error("observability server stopped", "err", err)
		}
	}()
	obs.Logger().Info("observability server listening", "addr", lis.Addr().String())
	return &Server{lis: lis, srv: srv}, nil
}

// Addr returns the bound address (resolves ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
