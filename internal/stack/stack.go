// Package stack models vertical stacks of PSVAAs (Sec 4.3 of the RoS
// paper). Each PSVAA in a stack is retro-directive in azimuth but behaves as
// an ordinary radiating element in elevation, so a stack of N modules forms
// an elevation array whose two-way pattern follows the array factor
//
//	AF(el) = sum_j exp(i * (2k * z_j * sin(el) + phi_j))
//
// where z_j are the module heights and phi_j the phase weights imprinted by
// lengthening all three of a module's transmission lines (the reflected
// signal traverses a TL exactly once, so the weight enters the round trip
// once, while the geometric elevation phase enters twice — this factor of
// two is why Eq 5's beamwidth carries a 2 in the denominator).
package stack

import (
	"fmt"
	"math"

	"ros/internal/em"
	"ros/internal/vaa"
)

// DefaultPitch is the vertical module pitch of the fabricated stacks in
// units of the free-space wavelength: 0.725 lambda (Fig 8a), i.e. ~2.75 mm.
const DefaultPitch = 0.725

// Stack is a vertical stack of identical PSVAAs.
type Stack struct {
	// Module is the per-row PSVAA.
	Module *vaa.Array
	// Heights are the module center heights in meters, relative to the
	// stack center.
	Heights []float64
	// Phases are the per-module phase weights in radians applied through
	// TL lengthening.
	Phases []float64
}

// NewUniform builds the baseline stack of n modules at the default pitch
// with zero phase weights (Fig 8a, right).
func NewUniform(n int) *Stack {
	if n < 1 {
		panic(fmt.Sprintf("stack: need at least 1 module, got %d", n))
	}
	pitch := DefaultPitch * em.Lambda79()
	heights := make([]float64, n)
	for j := range heights {
		heights[j] = (float64(j) - float64(n-1)/2) * pitch
	}
	return &Stack{
		Module:  vaa.NewPSVAA(3),
		Heights: heights,
		Phases:  make([]float64, n),
	}
}

// NewShaped builds a stack from explicit module pitches (meters, n-1 gaps
// between n modules, centered) and phase weights.
func NewShaped(pitches, phases []float64) (*Stack, error) {
	n := len(phases)
	if n < 1 {
		return nil, fmt.Errorf("stack: need at least 1 module")
	}
	if len(pitches) != n-1 {
		return nil, fmt.Errorf("stack: %d pitches for %d modules, want %d", len(pitches), n, n-1)
	}
	heights := make([]float64, n)
	for j := 1; j < n; j++ {
		if pitches[j-1] <= 0 {
			return nil, fmt.Errorf("stack: non-positive pitch %g at gap %d", pitches[j-1], j-1)
		}
		heights[j] = heights[j-1] + pitches[j-1]
	}
	// Center.
	mid := (heights[0] + heights[n-1]) / 2
	for j := range heights {
		heights[j] -= mid
	}
	out := &Stack{Module: vaa.NewPSVAA(3), Heights: heights, Phases: append([]float64(nil), phases...)}
	return out, out.Validate()
}

// Validate reports whether the stack is consistent.
func (s *Stack) Validate() error {
	if len(s.Heights) == 0 {
		return fmt.Errorf("stack: empty stack")
	}
	if len(s.Heights) != len(s.Phases) {
		return fmt.Errorf("stack: %d heights vs %d phases", len(s.Heights), len(s.Phases))
	}
	if s.Module == nil {
		return fmt.Errorf("stack: nil module")
	}
	return s.Module.Validate()
}

// N returns the number of modules.
func (s *Stack) N() int { return len(s.Heights) }

// Height returns the overall stack height in meters (top to bottom module
// centers plus one pitch of module extent).
func (s *Stack) Height() float64 {
	if len(s.Heights) == 0 {
		return 0
	}
	span := s.Heights[len(s.Heights)-1] - s.Heights[0]
	return span + DefaultPitch*em.Lambda79()
}

// ArrayFactor returns the complex two-way elevation array factor at
// elevation angle el (radians) and frequency f.
func (s *Stack) ArrayFactor(el, f float64) complex128 {
	k := 2 * math.Pi * f / em.C
	var re, im float64
	sinEl := math.Sin(el)
	for j, z := range s.Heights {
		ph := 2*k*z*sinEl + s.Phases[j]
		re += math.Cos(ph)
		im += math.Sin(ph)
	}
	return complex(re, im)
}

// ElevationGain returns |AF(el)|^2, the two-way elevation power pattern
// (peaks at N^2 for a uniform unweighted stack at el = 0).
func (s *Stack) ElevationGain(el, f float64) float64 {
	af := s.ArrayFactor(el, f)
	return real(af)*real(af) + imag(af)*imag(af)
}

// RCS returns the monostatic RCS of the stack in m^2 at the given azimuth
// and elevation for the given Tx/Rx polarizations: the module's azimuth RCS
// scaled by the elevation array factor and the module's elevation element
// pattern.
func (s *Stack) RCS(az, el, f float64, tx, rx em.Polarization) float64 {
	single := s.Module.MonostaticRCS(az, f, tx, rx)
	elemEl := s.Module.Element.Pattern(el)
	return single * s.ElevationGain(el, f) * elemEl * elemEl
}

// RCSdB is RCS in dBsm.
func (s *Stack) RCSdB(az, el, f float64, tx, rx em.Polarization) float64 {
	return em.DBsm(s.RCS(az, el, f, tx, rx))
}

// Beamwidth evaluates the paper's Eq 5 for a uniformly spaced stack:
//
//	theta = 0.886 * lambda / (2 * N * d_v)   [radians]
//
// where d_v is the vertical module pitch. For the 32-module stack at the
// default pitch this is the paper's 1.1 degrees.
func Beamwidth(n int, pitch, lambda float64) float64 {
	if n < 1 || pitch <= 0 || lambda <= 0 {
		panic(fmt.Sprintf("stack: Beamwidth(n=%d, pitch=%g, lambda=%g)", n, pitch, lambda))
	}
	return 0.886 * lambda / (2 * float64(n) * pitch)
}

// MeasuredBeamwidth scans the elevation pattern and returns the full width
// (radians) over which the gain stays within -3 dB of its peak.
func (s *Stack) MeasuredBeamwidth(f float64) float64 {
	const step = 1e-4 // rad (~0.006 deg)
	peak := 0.0
	for el := -0.5; el <= 0.5; el += step {
		if g := s.ElevationGain(el, f); g > peak {
			peak = g
		}
	}
	if peak == 0 {
		return 0
	}
	half := peak / 2
	lo, hi := math.NaN(), math.NaN()
	for el := -0.5; el <= 0.5; el += step {
		if s.ElevationGain(el, f) >= half {
			if math.IsNaN(lo) {
				lo = el
			}
			hi = el
		}
	}
	if math.IsNaN(lo) {
		return 0
	}
	return hi - lo
}

// FarFieldDistance returns the Fraunhofer distance 2*D^2/lambda (Eq 8) for
// the stack's height aperture; within it the plane-wave decoding model is
// inaccurate (the effect behind the 32-stack SNR penalty of Fig 15b).
func (s *Stack) FarFieldDistance(f float64) float64 {
	d := s.Height()
	lambda := em.Wavelength(f)
	return 2 * d * d / lambda
}
