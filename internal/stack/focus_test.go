package stack

import (
	"math"
	"testing"

	"ros/internal/em"
)

func TestNewFocusedErrors(t *testing.T) {
	if _, err := NewFocused(0, 3, fc); err == nil {
		t.Error("zero modules accepted")
	}
	if _, err := NewFocused(8, 0, fc); err == nil {
		t.Error("zero focal distance accepted")
	}
	if _, err := NewFocused(8, 3, 0); err == nil {
		t.Error("zero frequency accepted")
	}
}

func TestFocusedReachesFullGainAtFocus(t *testing.T) {
	// A 64-module stack (Fraunhofer bound ~16 m) focused at 3 m recovers
	// the full N^2 coherent gain there, while the uniform stack defocuses.
	n := 64
	focused, err := NewFocused(n, 3, fc)
	if err != nil {
		t.Fatal(err)
	}
	uniform := NewUniform(n)
	want := float64(n * n)
	gF := focused.NearFieldBoresightGain(3, fc)
	gU := uniform.NearFieldBoresightGain(3, fc)
	if gF < 0.95*want {
		t.Errorf("focused gain at focus = %g, want ~%g", gF, want)
	}
	if gU > 0.6*want {
		t.Errorf("uniform gain at 3 m = %g, expected strong defocus (bound %g)", gU, want)
	}
	// Sec 8's claim: higher RCS from larger stacks inside the near field.
	if em.DB(gF/gU) < 3 {
		t.Errorf("focusing gain = %g dB, want > 3", em.DB(gF/gU))
	}
}

func TestFocusedTradesFarFieldForNearField(t *testing.T) {
	// Far away, the uniform stack out-gains the near-focused one.
	n := 64
	focused, err := NewFocused(n, 3, fc)
	if err != nil {
		t.Fatal(err)
	}
	uniform := NewUniform(n)
	far := 100.0
	if focused.NearFieldBoresightGain(far, fc) >= uniform.NearFieldBoresightGain(far, fc) {
		t.Error("near-focused stack should not beat uniform in the far field")
	}
}

func TestUniformNearFieldConvergesToFarField(t *testing.T) {
	// Beyond the Fraunhofer distance the exact gain approaches N^2.
	n := 16
	s := NewUniform(n)
	ff := s.FarFieldDistance(fc)
	g := s.NearFieldBoresightGain(4*ff, fc)
	if math.Abs(g-float64(n*n))/float64(n*n) > 0.05 {
		t.Errorf("gain at 4x far field = %g, want ~%d", g, n*n)
	}
}

func TestNearFieldGainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive distance accepted")
		}
	}()
	NewUniform(4).NearFieldBoresightGain(0, fc)
}
