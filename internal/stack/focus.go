package stack

import (
	"fmt"
	"math"

	"ros/internal/em"
)

// Near-field focusing, the Sec 8 extension: "By using near-field-focusing
// antennas (NFFA), the requirement can be relaxed. That is, a larger tag
// encoding more bits can be decoded by a radar within the near field. In
// addition, with larger vertically stacked VAAs enabled by NFFAs, a higher
// RCS level can be achieved." A focused stack pre-compensates the two-way
// spherical phase curvature at a chosen focal distance, so a tall stack
// stays coherent well inside its Fraunhofer bound.

// NewFocused builds an n-module stack whose phase weights cancel the
// round-trip wavefront curvature at focalDistance meters (broadside) for
// frequency f.
func NewFocused(n int, focalDistance, f float64) (*Stack, error) {
	if n < 1 {
		return nil, fmt.Errorf("stack: need at least 1 module, got %d", n)
	}
	if focalDistance <= 0 {
		return nil, fmt.Errorf("stack: non-positive focal distance %g", focalDistance)
	}
	if f <= 0 {
		return nil, fmt.Errorf("stack: non-positive frequency %g", f)
	}
	s := NewUniform(n)
	k := 2 * math.Pi * f / em.C
	for j, z := range s.Heights {
		r := math.Sqrt(focalDistance*focalDistance + z*z)
		// Two-way curvature: the extra path is traversed twice.
		s.Phases[j] = math.Mod(2*k*(r-focalDistance), 2*math.Pi)
	}
	return s, nil
}

// NearFieldBoresightGain evaluates the exact two-way coherent gain of the
// stack for a radar broadside at the given distance: the finite-distance
// counterpart of ElevationGain(0, f). It peaks at N^2 when the stack is
// focused at that distance.
func (s *Stack) NearFieldBoresightGain(distance, f float64) float64 {
	if distance <= 0 {
		panic(fmt.Sprintf("stack: NearFieldBoresightGain at distance %g", distance))
	}
	k := 2 * math.Pi * f / em.C
	var re, im float64
	for j, z := range s.Heights {
		r := math.Sqrt(distance*distance + z*z)
		el := math.Atan2(z, distance)
		amp := s.Module.Element.Pattern(el)
		ph := -2*k*(r-distance) + s.Phases[j]
		re += amp * math.Cos(ph)
		im += amp * math.Sin(ph)
	}
	return re*re + im*im
}
