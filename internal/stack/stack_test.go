package stack

import (
	"math"
	"testing"

	"ros/internal/em"
	"ros/internal/geom"
)

const fc = em.CenterFrequency

func TestNewUniformGeometry(t *testing.T) {
	s := NewUniform(8)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	// Heights are centered and uniformly pitched at 0.725 lambda.
	pitch := DefaultPitch * em.Lambda79()
	for j := 1; j < s.N(); j++ {
		if math.Abs(s.Heights[j]-s.Heights[j-1]-pitch) > 1e-12 {
			t.Errorf("pitch at %d = %g, want %g", j, s.Heights[j]-s.Heights[j-1], pitch)
		}
	}
	if math.Abs(s.Heights[0]+s.Heights[7]) > 1e-12 {
		t.Error("heights not centered")
	}
}

func TestStackHeightMatchesPaper(t *testing.T) {
	// Sec 7.2: "the height of a 32-array PSVAA stack is about 10.8 cm"
	// (including beam-shaping overhead; the bare uniform stack is ~8.9 cm).
	s := NewUniform(32)
	h := s.Height()
	if h < 0.085 || h > 0.11 {
		t.Errorf("32-stack height = %g m, want ~0.088-0.108", h)
	}
}

func TestEq5BeamwidthMatchesPaper(t *testing.T) {
	lambda := em.Lambda79()
	pitch := DefaultPitch * lambda
	// Sec 4.3: stacking 32 PSVAAs gives a beamwidth of ~1.1 degrees.
	bw := geom.Deg(Beamwidth(32, pitch, lambda))
	if math.Abs(bw-1.1) > 0.1 {
		t.Errorf("Eq 5 beamwidth for 32 modules = %g deg, want ~1.1", bw)
	}
}

func TestMeasuredBeamwidthMatchesEq5(t *testing.T) {
	// The scanned -3 dB width of the two-way array factor must agree with
	// Eq 5's closed form.
	for _, n := range []int{8, 16, 32} {
		s := NewUniform(n)
		got := s.MeasuredBeamwidth(fc)
		want := Beamwidth(n, DefaultPitch*em.Lambda79(), em.Lambda79())
		if math.Abs(got-want)/want > 0.08 {
			t.Errorf("n=%d: measured %g rad vs Eq 5 %g rad", n, got, want)
		}
	}
}

func TestElevationGainPeak(t *testing.T) {
	s := NewUniform(16)
	if g := s.ElevationGain(0, fc); math.Abs(g-256) > 1e-9 {
		t.Errorf("boresight gain = %g, want N^2 = 256", g)
	}
	// Off the narrow main beam the gain collapses.
	if g := s.ElevationGain(geom.Rad(5), fc); g > 30 {
		t.Errorf("gain at 5 deg = %g, want far below peak", g)
	}
}

func TestRCSStackingGain(t *testing.T) {
	// 32 coherent modules add 20*log10(32) ~ 30 dB over a single PSVAA:
	// -43 dBsm -> ~-13 dBsm at boresight (the flat-top shaping of Sec 4.3
	// later spends ~10 dB of this to widen the beam, yielding the paper's
	// -23 dBsm tag).
	s := NewUniform(32)
	got := s.RCSdB(0, 0, fc, em.PolV, em.PolH)
	if math.Abs(got-(-13)) > 1.5 {
		t.Errorf("32-stack boresight RCS = %g dBsm, want ~-13", got)
	}
}

func TestNewShaped(t *testing.T) {
	pitches := []float64{0.003, 0.003, 0.004}
	phases := []float64{0, 1, 1, 0}
	s, err := NewShaped(pitches, phases)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 4 {
		t.Errorf("N = %d", s.N())
	}
	// Centered: first + last heights sum to zero.
	if math.Abs(s.Heights[0]+s.Heights[3]) > 1e-12 {
		t.Errorf("not centered: %v", s.Heights)
	}
	if math.Abs(s.Heights[1]-s.Heights[0]-0.003) > 1e-12 {
		t.Error("pitch 0 wrong")
	}
}

func TestNewShapedErrors(t *testing.T) {
	if _, err := NewShaped(nil, nil); err == nil {
		t.Error("empty stack accepted")
	}
	if _, err := NewShaped([]float64{1}, []float64{0, 0, 0}); err == nil {
		t.Error("pitch count mismatch accepted")
	}
	if _, err := NewShaped([]float64{-1}, []float64{0, 0}); err == nil {
		t.Error("negative pitch accepted")
	}
}

func TestPhaseWeightsSteerAndSpread(t *testing.T) {
	// A linear phase progression steers the beam off boresight.
	n := 8
	s := NewUniform(n)
	for j := range s.Phases {
		s.Phases[j] = float64(j) * 0.8
	}
	g0 := s.ElevationGain(0, fc)
	best, bestEl := 0.0, 0.0
	for el := -0.3; el <= 0.3; el += 1e-3 {
		if g := s.ElevationGain(el, fc); g > best {
			best, bestEl = g, el
		}
	}
	if bestEl == 0 {
		t.Error("linear phase did not steer the beam")
	}
	if best <= g0 {
		t.Error("steered peak not above boresight gain")
	}
	// The steered peak still reaches ~N^2 (phase weights are lossless).
	if math.Abs(best-float64(n*n)) > 2 {
		t.Errorf("steered peak = %g, want ~%d", best, n*n)
	}
}

func TestFarFieldDistance(t *testing.T) {
	// Sec 7.2 quotes ~0.31, 1.36, 6.14 m for the fabricated (beam-shaped,
	// hence taller) 8/16/32-module stacks; the bare uniform stacks are
	// ~20 percent shorter, so their Fraunhofer distances land below those
	// figures. The beamshape package verifies the paper values on shaped
	// stacks.
	cases := []struct {
		n    int
		want float64
		tol  float64
	}{
		{8, 0.26, 0.06},
		{16, 1.02, 0.15},
		{32, 4.09, 0.5},
	}
	for _, c := range cases {
		s := NewUniform(c.n)
		got := s.FarFieldDistance(fc)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("far field of %d-stack = %g m, want ~%g", c.n, got, c.want)
		}
	}
}

func TestValidateCatchesMismatch(t *testing.T) {
	s := NewUniform(4)
	s.Phases = s.Phases[:3]
	if s.Validate() == nil {
		t.Error("length mismatch accepted")
	}
	s = NewUniform(4)
	s.Module = nil
	if s.Validate() == nil {
		t.Error("nil module accepted")
	}
}

func TestNewUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewUniform(0) did not panic")
		}
	}()
	NewUniform(0)
}

func TestBeamwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Beamwidth with bad args did not panic")
		}
	}()
	Beamwidth(0, 1, 1)
}

func TestElevationPatternSymmetric(t *testing.T) {
	s := NewUniform(8)
	for _, el := range []float64{0.01, 0.05, 0.1} {
		up := s.ElevationGain(el, fc)
		dn := s.ElevationGain(-el, fc)
		if math.Abs(up-dn) > 1e-9*(1+up) {
			t.Errorf("pattern asymmetric at %g rad: %g vs %g", el, up, dn)
		}
	}
}
