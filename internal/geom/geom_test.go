package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVec2Ops(t *testing.T) {
	a := Vec2{1, 2}
	b := Vec2{3, -1}
	if got := a.Add(b); got != (Vec2{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec2{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec2{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 1 {
		t.Errorf("Dot = %g", got)
	}
	if got := (Vec2{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %g", got)
	}
	if got := a.Dist(b); !almost(got, math.Sqrt(13), 1e-12) {
		t.Errorf("Dist = %g", got)
	}
	if got := (Vec2{0, 1}).Angle(); !almost(got, math.Pi/2, 1e-12) {
		t.Errorf("Angle = %g", got)
	}
}

func TestVec2Unit(t *testing.T) {
	u := Vec2{3, 4}.Unit()
	if !almost(u.Norm(), 1, 1e-12) {
		t.Errorf("unit norm = %g", u.Norm())
	}
	z := Vec2{}.Unit()
	if z != (Vec2{}) {
		t.Errorf("zero unit = %v", z)
	}
}

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-1, 0, 2}
	if got := a.Add(b); got != (Vec3{0, 2, 5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{2, 2, 1}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 5 {
		t.Errorf("Dot = %g", got)
	}
	if got := (Vec3{2, 3, 6}).Norm(); got != 7 {
		t.Errorf("Norm = %g", got)
	}
	if got := a.XY(); got != (Vec2{1, 2}) {
		t.Errorf("XY = %v", got)
	}
	if u := a.Unit(); !almost(u.Norm(), 1, 1e-12) {
		t.Errorf("unit norm = %g", u.Norm())
	}
	if z := (Vec3{}).Unit(); z != (Vec3{}) {
		t.Errorf("zero unit = %v", z)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.Abs(ax) > 1e100 || math.Abs(ay) > 1e100 || math.Abs(bx) > 1e100 || math.Abs(by) > 1e100 {
			return true
		}
		a := Vec2{ax, ay}
		b := Vec2{bx, by}
		return a.Add(b).Norm() <= a.Norm()+b.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleConversions(t *testing.T) {
	if !almost(Deg(math.Pi), 180, 1e-12) {
		t.Errorf("Deg(pi) = %g", Deg(math.Pi))
	}
	if !almost(Rad(90), math.Pi/2, 1e-12) {
		t.Errorf("Rad(90) = %g", Rad(90))
	}
	if !almost(Rad(Deg(1.234)), 1.234, 1e-12) {
		t.Error("Rad/Deg round trip failed")
	}
}

func TestWrapPi(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{math.Pi + 0.5, -math.Pi + 0.5},
	}
	for _, c := range cases {
		if got := WrapPi(c.in); !almost(got, c.want, 1e-12) {
			t.Errorf("WrapPi(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestWrap2Pi(t *testing.T) {
	for _, a := range []float64{-7, -1, 0, 1, 7, 13} {
		got := Wrap2Pi(a)
		if got < 0 || got >= 2*math.Pi {
			t.Errorf("Wrap2Pi(%g) = %g out of range", a, got)
		}
		if !almost(math.Sin(got), math.Sin(a), 1e-12) || !almost(math.Cos(got), math.Cos(a), 1e-12) {
			t.Errorf("Wrap2Pi(%g) = %g changed the angle", a, got)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestTrajectoryPositions(t *testing.T) {
	tr := Trajectory{
		Start:     Vec3{X: -10, Y: 3},
		Velocity:  Vec3{X: 5},
		FrameRate: 10,
		Frames:    21,
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	ps := tr.Positions()
	if len(ps) != 21 {
		t.Fatalf("got %d positions", len(ps))
	}
	if ps[0] != (Vec3{X: -10, Y: 3}) {
		t.Errorf("first = %v", ps[0])
	}
	// After 20 frames at 10 Hz = 2 s at 5 m/s -> +10 m.
	if !almost(ps[20].X, 0, 1e-12) {
		t.Errorf("last X = %g, want 0", ps[20].X)
	}
	if !almost(tr.Duration(), 2.1, 1e-12) {
		t.Errorf("Duration = %g", tr.Duration())
	}
	if tr.Speed() != 5 {
		t.Errorf("Speed = %g", tr.Speed())
	}
}

func TestTrajectoryValidate(t *testing.T) {
	if err := (Trajectory{FrameRate: 0, Frames: 1}).Validate(); err == nil {
		t.Error("zero frame rate accepted")
	}
	if err := (Trajectory{FrameRate: 1, Frames: 0}).Validate(); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestPassBy(t *testing.T) {
	tr := PassBy(3, 6, 0.1, 2, 100)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	ps := tr.Positions()
	first, last := ps[0], ps[len(ps)-1]
	if first.X != -6 || first.Y != 3 || first.Z != 0.1 {
		t.Errorf("start = %v", first)
	}
	if !almost(last.X, 6, 0.05) {
		t.Errorf("end X = %g, want ~6", last.X)
	}
	// Closest approach distance equals the standoff.
	minD := math.Inf(1)
	for _, p := range ps {
		if d := p.XY().Norm(); d < minD {
			minD = d
		}
	}
	if !almost(minD, 3, 0.01) {
		t.Errorf("closest approach = %g, want 3", minD)
	}
}

func TestPassByPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PassBy with zero speed did not panic")
		}
	}()
	PassBy(3, 6, 0, 0, 100)
}

func TestMPH(t *testing.T) {
	if !almost(MPH(30), 13.4112, 1e-9) {
		t.Errorf("MPH(30) = %g", MPH(30))
	}
}
