package geom

import "fmt"

// Trajectory describes a straight-line constant-speed vehicle pass, the
// motion model used throughout the paper's field experiments ("the radar ...
// moved along straight trajectories passing by the RoS tag", Sec 7.1).
type Trajectory struct {
	// Start is the vehicle (radar) position at t = 0.
	Start Vec3
	// Velocity is the constant velocity vector in m/s.
	Velocity Vec3
	// FrameRate is the radar frame repetition rate Fs in Hz.
	FrameRate float64
	// Frames is the number of radar frames captured along the pass.
	Frames int
}

// Validate reports whether the trajectory parameters are usable.
func (tr Trajectory) Validate() error {
	if tr.FrameRate <= 0 {
		return fmt.Errorf("geom: trajectory frame rate must be positive, got %g", tr.FrameRate)
	}
	if tr.Frames < 1 {
		return fmt.Errorf("geom: trajectory must have at least 1 frame, got %d", tr.Frames)
	}
	return nil
}

// At returns the vehicle position at frame i (which may be fractional).
func (tr Trajectory) At(i float64) Vec3 {
	t := i / tr.FrameRate
	return tr.Start.Add(tr.Velocity.Scale(t))
}

// Positions returns the vehicle position at every frame.
func (tr Trajectory) Positions() []Vec3 {
	out := make([]Vec3, tr.Frames)
	for i := range out {
		out[i] = tr.At(float64(i))
	}
	return out
}

// Duration returns the total pass duration in seconds.
func (tr Trajectory) Duration() float64 {
	if tr.FrameRate <= 0 {
		return 0
	}
	return float64(tr.Frames) / tr.FrameRate
}

// Speed returns the scalar speed in m/s.
func (tr Trajectory) Speed() float64 { return tr.Velocity.Norm() }

// PassBy constructs a trajectory that drives along +x past a target at the
// origin, offset laterally by standoff meters (the radar-to-tag closest
// distance), covering x in [-halfSpan, +halfSpan] at the given speed and
// frame rate. Height z is the radar mounting height relative to the tag
// center.
func PassBy(standoff, halfSpan, height, speed, frameRate float64) Trajectory {
	if speed <= 0 || frameRate <= 0 || halfSpan <= 0 {
		panic(fmt.Sprintf("geom: PassBy requires positive speed, frameRate, halfSpan (got %g, %g, %g)",
			speed, frameRate, halfSpan))
	}
	frames := int(2*halfSpan/speed*frameRate) + 1
	return Trajectory{
		Start:     Vec3{X: -halfSpan, Y: standoff, Z: height},
		Velocity:  Vec3{X: speed},
		FrameRate: frameRate,
		Frames:    frames,
	}
}

// MPH converts miles per hour to meters per second.
func MPH(mph float64) float64 { return mph * 0.44704 }
