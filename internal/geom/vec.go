// Package geom provides the small geometric toolkit used by the RoS
// reproduction: 2-D/3-D vectors, angle conventions, and vehicle
// trajectories.
//
// Coordinate convention (matching the paper's road scenario, Fig 1/Fig 11):
// the x axis runs along the road (the direction of travel), the y axis
// points across the road from the tag toward the lanes, and the z axis is
// height above the radar's mounting plane. The RoS tag's horizontal stack
// axis is parallel to x, so the spatial-coding angle theta in Sec 5.1 is the
// angle between the radar's line of sight and +x, and u = cos(theta).
package geom

import "math"

// Vec2 is a 2-D vector (x along the road, y across it).
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Angle returns the angle of v measured from the +x axis in radians,
// in (-pi, pi].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Unit returns v normalized to unit length. The zero vector is returned
// unchanged.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Vec3 is a 3-D vector; z is height.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// XY projects v onto the ground plane.
func (v Vec3) XY() Vec2 { return Vec2{v.X, v.Y} }

// Unit returns v normalized to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}
