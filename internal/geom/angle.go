package geom

import "math"

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }

// WrapPi wraps an angle to (-pi, pi].
func WrapPi(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// Wrap2Pi wraps an angle to [0, 2*pi).
func Wrap2Pi(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
