//go:build !race

package radar

// raceEnabled reports whether the race detector is on; the allocation
// regression tests skip under it because sync.Pool deliberately drops
// items when racing to widen the schedule space.
const raceEnabled = false
