package radar

import (
	"fmt"
	"math"
	"math/cmplx"

	"ros/internal/dsp"
)

// RangeProfile is the per-channel range response of one frame (Eq 3).
type RangeProfile struct {
	// Bins is indexed [rx][rangeBin]; magnitudes are normalized so a point
	// scatterer's peak equals its Scatterer.Amplitude. The channel slices
	// are views over one contiguous buffer.
	Bins [][]complex128
	// BinSize is the range per bin in meters.
	BinSize float64

	// buf is the pooled backing store, nil for hand-built profiles.
	buf *chanBuf
}

// RangeProfile applies the range transform of Eq 3 to a frame via the
// per-read plan: one batched, fused Hann-window IFFT over all channels.
// See SynthPlan.RangeProfile.
func (c Config) RangeProfile(f Frame) RangeProfile {
	return c.NewSynthPlan().RangeProfile(f)
}

// RangeProfile applies the range transform of Eq 3 to a frame: an IFFT over
// fast time per channel, Hann-windowed against range sidelobes (a -2 dBsm
// street lamp would otherwise smear -13 dB rectangular sidelobes across the
// whole profile) and normalized by the window's coherent gain and the
// sample count so bin magnitudes are calibrated amplitudes. (The beat phase
// decreases with time — see Synthesize — so the range peak appears in the
// IFFT, exactly as Eq 3 writes it.)
//
// All channels are transformed in one batched call of the plan's fused
// window+FFT kernel (dsp.Plan.InverseMany) straight from the frame's
// contiguous buffer into the pooled profile buffer: no window pass, no
// scale pass, no per-call allocation in steady state.
func (p *SynthPlan) RangeProfile(f Frame) RangeProfile {
	c := p.cfg
	if f.NumRx != c.NumRx || len(f.Data) != c.NumRx*c.Samples {
		panic(fmt.Sprintf("radar: frame has %dx%d samples, config wants %dx%d",
			f.NumRx, f.Samples, c.NumRx, c.Samples))
	}
	if f.Samples != c.Samples {
		panic(fmt.Sprintf("radar: frame channels hold %d samples, config %d", f.Samples, c.Samples))
	}
	buf := p.pool.acquire(c.NumRx, c.Samples, false)
	p.rangePlan.InverseMany(buf.flat, f.Data, c.NumRx, c.Samples)
	return RangeProfile{Bins: buf.views, BinSize: c.RangeBinSize(), buf: buf}
}

// BinForRange returns the range bin index closest to r meters.
func (c Config) BinForRange(r float64) int {
	b := int(math.Round(r / c.RangeBinSize()))
	if b < 0 {
		b = 0
	}
	if b >= c.Samples {
		b = c.Samples - 1
	}
	return b
}

// AoASpectrum evaluates Eq 4 at one range bin: conventional beamforming
// across the Rx array over the given steering angles (radians from
// boresight). It returns the beamformed power (watts) per angle. When angles
// is the cached scan grid (ScanAngles), the per-Config precomputed steering
// kernels are used and the loop runs no trig at all.
func (c Config) AoASpectrum(rp RangeProfile, bin int, angles []float64) []float64 {
	out := make([]float64, len(angles))
	c.AoASpectrumInto(out, rp, bin, angles)
	return out
}

// AoASpectrumInto is AoASpectrum writing into a caller-provided buffer (one
// power per angle), so per-bin scans inside the point-cloud loop allocate
// nothing. dst must have length len(angles).
func (c Config) AoASpectrumInto(dst []float64, rp RangeProfile, bin int, angles []float64) {
	c.aoaSpectrumTab(dst, rp, bin, angles, c.steering())
}

// ScanAngles returns the plan's AoA scan grid; see Config.ScanAngles. The
// slice is shared and must be treated as read-only.
func (p *SynthPlan) ScanAngles() []float64 { return p.steer.angles }

// AoASpectrumInto is Config.AoASpectrumInto against the plan's captured
// steering table, so the per-bin scan never touches a shared cache.
func (p *SynthPlan) AoASpectrumInto(dst []float64, rp RangeProfile, bin int, angles []float64) {
	p.cfg.aoaSpectrumTab(dst, rp, bin, angles, p.steer)
}

// aoaSpectrumTab evaluates Eq 4 at one range bin against an explicit
// steering table. When angles is the table's own scan grid the precomputed
// kernels are used and the loop runs no trig at all.
func (c Config) aoaSpectrumTab(dst []float64, rp RangeProfile, bin int, angles []float64, tab *steeringTable) {
	if bin < 0 || bin >= len(rp.Bins[0]) {
		panic(fmt.Sprintf("radar: AoA at bin %d of %d", bin, len(rp.Bins[0])))
	}
	if len(dst) != len(angles) {
		panic(fmt.Sprintf("radar: AoA dst has %d slots for %d angles", len(dst), len(angles)))
	}
	if len(angles) > 0 && len(angles) == len(tab.angles) && &angles[0] == &tab.angles[0] {
		// Cached-kernel path: gather the bin across channels once, then one
		// NumRx-length complex dot product per angle.
		var vbuf [16]complex128
		v := vbuf[:0]
		if c.NumRx > len(vbuf) {
			v = make([]complex128, 0, c.NumRx)
		}
		for k := 0; k < c.NumRx; k++ {
			v = append(v, rp.Bins[k][bin])
		}
		inv := complex(1/float64(c.NumRx), 0)
		for a := range angles {
			w := tab.weights[a*tab.numRx : (a+1)*tab.numRx]
			var sum complex128
			for k, x := range v {
				sum += x * w[k]
			}
			sum *= inv
			dst[a] = real(sum)*real(sum) + imag(sum)*imag(sum)
		}
		return
	}
	for i, th := range angles {
		dst[i] = c.beamPowerAt(rp, bin, th)
	}
}

// BeamPower is the fast single-angle beamformer used by the spotlight pass
// (Sec 6): the beamformed received power (watts) at one range bin and
// azimuth. It costs one Sincos for the element-to-element phase rotation;
// the steering weights follow by complex recurrence.
func (c Config) BeamPower(rp RangeProfile, bin int, azimuth float64) float64 {
	if bin < 0 || bin >= len(rp.Bins[0]) {
		panic(fmt.Sprintf("radar: AoA at bin %d of %d", bin, len(rp.Bins[0])))
	}
	return c.beamPowerAt(rp, bin, azimuth)
}

func (c Config) beamPowerAt(rp RangeProfile, bin int, th float64) float64 {
	w := 2 * math.Pi * c.RxSpacing * math.Sin(th) / c.Wavelength()
	sin, cos := math.Sincos(w)
	rot := complex(cos, sin)
	steer := complex(1, 0)
	var sum complex128
	for k := 0; k < c.NumRx; k++ {
		sum += rp.Bins[k][bin] * steer
		steer *= rot
	}
	sum /= complex(float64(c.NumRx), 0)
	return real(sum)*real(sum) + imag(sum)*imag(sum)
}

// BeamformRSS "spotlights" a known target (Sec 6): it steers the array to
// the given azimuth at the given range and returns the received power in
// watts.
func (c Config) BeamformRSS(f Frame, rangeM, azimuth float64) float64 {
	rp := c.RangeProfile(f)
	return c.BeamPower(rp, c.BinForRange(rangeM), azimuth)
}

// Detection is one point in the radar point cloud.
type Detection struct {
	// Range in meters.
	Range float64
	// Azimuth in radians from boresight.
	Azimuth float64
	// Power is the beamformed received power in watts.
	Power float64
}

// DetectOptions tunes point-cloud extraction.
type DetectOptions struct {
	// ThresholdDB is the detection threshold above the estimated noise
	// floor (default 12 dB).
	ThresholdDB float64
	// MaxPerBin caps the number of angular peaks kept per range bin
	// (default 2).
	MaxPerBin int
	// MinRange drops the DC/leakage region (default: 4 range bins).
	MinRange float64
	// UseCFAR replaces the global median threshold with cell-averaging
	// CFAR (see CFARDetect), which stays calibrated when clutter raises
	// the floor locally.
	UseCFAR bool
	// CFAR tunes the CFAR detector when UseCFAR is set.
	CFAR CFAROptions
	// DisableIncremental makes PointCloudScan ignore any supplied
	// ScanState and walk every bin each frame — the reference behavior the
	// incremental scan is pinned against.
	DisableIncremental bool
}

// PointCloud extracts detections from a frame: per range bin, non-coherent
// power across channels against a median-based noise estimate, then an AoA
// scan for bins above threshold (the standard flow of Sec 3.2).
func (c Config) PointCloud(f Frame, opts DetectOptions) []Detection {
	return c.PointCloudFromProfile(c.RangeProfile(f), opts)
}

// PointCloudFromProfile is PointCloud for an already-computed range profile
// (callers that also spotlight objects reuse the profile). It always runs a
// full scan; streaming callers thread a ScanState through PointCloudScan
// instead.
func (c Config) PointCloudFromProfile(rp RangeProfile, opts DetectOptions) []Detection {
	return c.PointCloudScan(rp, opts, nil)
}

// PointCloudScan is PointCloudFromProfile with frame-to-frame scan state:
// st seeds the noise-floor median with the previous frame's estimate and —
// when a coverage check proves it exact — restricts the candidate loop to
// the previous frame's above-threshold bins plus a guard band (see
// scan.go). The detections are byte-identical to the full scan for every
// state; st only changes how much work the scan does. A nil st (or
// opts.DisableIncremental, or opts.UseCFAR, whose local thresholds need
// every bin) always walks the full profile.
func (c Config) PointCloudScan(rp RangeProfile, opts DetectOptions, st *ScanState) []Detection {
	return c.pointCloudScanTab(rp, opts, st, c.steering())
}

// PointCloudScan is Config.PointCloudScan against the plan's captured
// steering table, so the per-frame detection pass never touches a shared
// cache.
func (p *SynthPlan) PointCloudScan(rp RangeProfile, opts DetectOptions, st *ScanState) []Detection {
	return p.cfg.pointCloudScanTab(rp, opts, st, p.steer)
}

// pointCloudScanTab is the scan body against an explicit steering table.
func (c Config) pointCloudScanTab(rp RangeProfile, opts DetectOptions, st *ScanState, tab *steeringTable) []Detection {
	if opts.ThresholdDB == 0 {
		opts.ThresholdDB = 12
	}
	if opts.MaxPerBin == 0 {
		opts.MaxPerBin = 2
	}
	if opts.MinRange == 0 {
		opts.MinRange = 4 * c.RangeBinSize()
	}
	if opts.DisableIncremental {
		st = nil
	}
	n := len(rp.Bins[0])

	// Non-coherent channel-summed power per range bin. A pooled profile
	// carries two idle scratch lanes of exactly this length (the synthesis
	// kernel's tone lanes); borrowing them for the power sum and the median
	// scratch makes the per-frame detection pass allocation-free.
	var power, scratch []float64
	if rp.buf != nil {
		power, scratch = rp.buf.lanes(n)
	} else {
		flat := make([]float64, 2*n)
		power, scratch = flat[:n], flat[n:]
	}
	for ci, ch := range rp.Bins {
		if ci == 0 {
			for i, v := range ch {
				power[i] = real(v)*real(v) + imag(v)*imag(v)
			}
			continue
		}
		for i, v := range ch {
			power[i] += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	// The median is rank-exact either way; a valid state seeds the
	// selection with the previous frame's floor, which partitions most of
	// the scratch away in one pass.
	copy(scratch, power)
	var noise float64
	if st != nil && st.valid {
		noise = dsp.PercentileInPlaceSeeded(scratch, 50, st.noise)
	} else {
		noise = dsp.MedianInPlace(scratch)
	}
	if noise <= 0 {
		noise = 1e-30
	}
	thresh := noise * dsp.FromDB(opts.ThresholdDB)
	var cfarHits []bool
	if opts.UseCFAR {
		cfar := opts.CFAR
		if cfar.ThresholdDB == 0 {
			cfar.ThresholdDB = opts.ThresholdDB
		}
		cfarHits = make([]bool, n)
		for _, idx := range CFARDetect(power, cfar) {
			cfarHits[idx] = true
		}
	}

	// Hint-restriction coverage check: the scan may skip unhinted bins only
	// when none of them clears this frame's threshold — then every possible
	// candidate (above threshold AND a local maximum) is hinted, and the
	// restricted loop provably emits the full scan's detections. A target
	// popping in outside the guard band, or a floor shift, fails the check
	// and takes the full loop.
	incremental := false
	if st != nil && !opts.UseCFAR && st.valid && len(st.active) == n && st.frames < scanRefreshInterval {
		maxOut := 0.0
		for i, p := range power {
			if !st.active[i] && p > maxOut {
				maxOut = p
			}
		}
		incremental = maxOut < thresh
	}

	angles := tab.angles
	// The median scratch is free again; it holds the AoA spectrum when the
	// scan grid fits (it does for every config with Samples >= 121 bins).
	var spec []float64
	if len(angles) <= len(scratch) {
		spec = scratch[:len(angles)]
	} else {
		spec = make([]float64, len(angles))
	}
	var out []Detection
	scanBin := func(i int) {
		r := float64(i) * rp.BinSize
		if r < opts.MinRange {
			return
		}
		if opts.UseCFAR {
			if !cfarHits[i] {
				return
			}
		} else if power[i] < thresh || power[i] < power[i-1] || power[i] <= power[i+1] {
			return
		}
		c.aoaSpectrumTab(spec, rp, i, angles, tab)
		// Gate at 20 percent of the strongest response so the 4-element
		// array's -11 dB sidelobes do not spawn ghost points.
		maxSpec, _ := dsp.Max(spec)
		minHeight := math.Max(dsp.Mean(spec), 0.2*maxSpec)
		peaks := dsp.FindPeaks(spec, minHeight, 3)
		if len(peaks) > opts.MaxPerBin {
			peaks = peaks[:opts.MaxPerBin]
		}
		for _, p := range peaks {
			az := angles[0] + p.Pos*(angles[1]-angles[0])
			out = append(out, Detection{Range: r, Azimuth: az, Power: p.Value})
		}
	}
	if incremental {
		mScanIncremental.Inc()
		for _, i := range st.hints {
			scanBin(i)
		}
	} else {
		mScanFull.Inc()
		for i := 1; i < n-1; i++ {
			scanBin(i)
		}
	}
	if st != nil {
		if opts.UseCFAR {
			// CFAR thresholds are local; the global-floor hint machinery
			// does not describe them. Leave the state cold.
			st.Reset()
		} else {
			st.update(n, power, thresh, noise, incremental)
		}
	}
	return out
}

// ChannelPower returns the total power in one channel of a frame (useful for
// diagnostics and tests).
func ChannelPower(f Frame, k int) float64 {
	sum := 0.0
	for _, v := range f.Channel(k) {
		sum += cmplx.Abs(v) * cmplx.Abs(v)
	}
	return sum
}
