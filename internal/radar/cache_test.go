package radar

import (
	"testing"

	"ros/internal/obs"
)

// TestCacheGaugesAndReset pins the retention contract of the radar memo
// caches: first use registers an entry in the corresponding obs gauge,
// ResetCaches zeroes both, and the pipeline keeps producing identical
// results after a reset (entries are pure memoization, never state).
func TestCacheGaugesAndReset(t *testing.T) {
	synthG := obs.Default.Gauge("ros_radar_synth_plan_entries", "")
	steerG := obs.Default.Gauge("ros_radar_steering_entries", "")

	ResetCaches()
	if v := synthG.Value(); v != 0 {
		t.Fatalf("synth plan gauge = %v after reset, want 0", v)
	}
	if v := steerG.Value(); v != 0 {
		t.Fatalf("steering gauge = %v after reset, want 0", v)
	}

	c := TI1443()
	p := c.NewSynthPlan()
	sc := []Scatterer{{Range: 3, Azimuth: 0.1, Amplitude: 1e-5}}
	before := p.Synthesize(sc, nil)
	beforeCloud := c.PointCloud(before, DetectOptions{})
	ReleaseFrame(before)
	if v := synthG.Value(); v < 1 {
		t.Fatalf("synth plan gauge = %v after first plan, want >= 1", v)
	}
	if v := steerG.Value(); v < 1 {
		t.Fatalf("steering gauge = %v after first scan, want >= 1", v)
	}

	ResetCaches()
	if v := synthG.Value(); v != 0 {
		t.Fatalf("synth plan gauge = %v after second reset, want 0", v)
	}
	if v := steerG.Value(); v != 0 {
		t.Fatalf("steering gauge = %v after second reset, want 0", v)
	}

	// Rebuilt entries must reproduce the pre-reset output exactly.
	p2 := c.NewSynthPlan()
	after := p2.Synthesize(sc, nil)
	afterCloud := c.PointCloud(after, DetectOptions{})
	ReleaseFrame(after)
	if len(afterCloud) != len(beforeCloud) {
		t.Fatalf("point cloud size changed across reset: %d -> %d", len(beforeCloud), len(afterCloud))
	}
	for i := range afterCloud {
		if afterCloud[i] != beforeCloud[i] {
			t.Fatalf("point %d changed across reset: %+v -> %+v", i, beforeCloud[i], afterCloud[i])
		}
	}
}
