package radar

import (
	"sync"
	"testing"

	"ros/internal/obs"
)

// testGauge hands a session throwaway gauges from the default registry
// (registry constructors are get-or-create, so reuse across tests is fine).
func testGauge(cache string) *obs.Gauge {
	return obs.Default.Gauge("test_radar_session_"+cache, "session test scratch gauge")
}

// TestSessionSynthPlanConcurrentConstruction pins the losing-racer contract
// of SynthPlanFor: many goroutines requesting the same configuration at once
// all get the same plan pointer, the cache holds exactly one entry, and the
// racers' discarded plans leave no trace (their pre-warmed frame buffers are
// adopted by the winner's pool instead of leaking with the loser).
func TestSessionSynthPlanConcurrentConstruction(t *testing.T) {
	s := NewSession(nil, testGauge)
	cfg := TI1443()

	const goroutines = 32
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		gate  = make(chan struct{})
		plans [goroutines]*SynthPlan
	)
	start.Add(goroutines)
	done.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer done.Done()
			start.Done()
			<-gate
			plans[i] = s.SynthPlanFor(cfg)
		}(i)
	}
	start.Wait()
	close(gate)
	done.Wait()

	for i := 1; i < goroutines; i++ {
		if plans[i] != plans[0] {
			t.Fatalf("goroutine %d got a different plan pointer", i)
		}
	}
	if got := s.synthPlans.Len(); got != 1 {
		t.Fatalf("synth plan cache holds %d entries after one racing config, want 1", got)
	}

	// The surviving plan must work: synthesize one frame through it.
	f := plans[0].Synthesize(nil, nil)
	if f.NumRx != cfg.NumRx || f.Samples != cfg.Samples {
		t.Fatalf("frame shape %dx%d from the raced plan, want %dx%d",
			f.NumRx, f.Samples, cfg.NumRx, cfg.Samples)
	}
	ReleaseFrame(f)
}

// TestFramePoolAdoption pins the race fix itself: a buffer pre-warmed into a
// discarded racer's pool is handed to the winner's pool and comes back out
// re-homed to the winner. Under the race detector sync.Pool intentionally
// drops a fraction of Put calls, so a single put→adopt→acquire round trip may
// lose the buffer without any bug in adoption; retry until the buffer
// survives both puts and assert the contract on that surviving round trip.
func TestFramePoolAdoption(t *testing.T) {
	for attempt := 0; attempt < 256; attempt++ {
		var winner, loser framePool
		b := newChanBuf(4, 256)
		loser.put(b)
		winner.adoptFrom(&loser)

		got := winner.acquire(4, 256, false)
		if got != b {
			continue // the pool dropped the buffer on a put; retry
		}
		if got.home != &winner {
			t.Fatal("adopted buffer still homed to the discarded pool")
		}
		if extra := loser.acquire(4, 256, false); extra == b {
			t.Fatal("buffer resident in both pools after adoption")
		}
		return
	}
	t.Fatal("adopted buffer never survived a pool round trip in 256 attempts")
}

// TestSessionClear drops both caches and lets the session repopulate.
func TestSessionClear(t *testing.T) {
	s := NewSession(nil, testGauge)
	cfg := TI1443()
	p1 := s.SynthPlanFor(cfg)
	if s.synthPlans.Len() != 1 {
		t.Fatalf("synth plan cache = %d entries, want 1", s.synthPlans.Len())
	}
	s.Clear()
	if s.synthPlans.Len() != 0 || s.steering.Len() != 0 {
		t.Fatalf("caches not empty after Clear: %d plans, %d steering",
			s.synthPlans.Len(), s.steering.Len())
	}
	p2 := s.SynthPlanFor(cfg)
	if p2 == p1 {
		t.Fatal("plan survived Clear")
	}
	if s.synthPlans.Len() != 1 {
		t.Fatalf("cache did not repopulate after Clear")
	}
}
